file(REMOVE_RECURSE
  "CMakeFiles/example_replica_failover.dir/replica_failover.cpp.o"
  "CMakeFiles/example_replica_failover.dir/replica_failover.cpp.o.d"
  "example_replica_failover"
  "example_replica_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_replica_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
