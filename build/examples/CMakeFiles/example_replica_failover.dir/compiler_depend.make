# Empty compiler generated dependencies file for example_replica_failover.
# This may be replaced when dependencies are built.
