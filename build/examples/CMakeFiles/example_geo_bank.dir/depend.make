# Empty dependencies file for example_geo_bank.
# This may be replaced when dependencies are built.
