file(REMOVE_RECURSE
  "CMakeFiles/example_geo_bank.dir/geo_bank.cpp.o"
  "CMakeFiles/example_geo_bank.dir/geo_bank.cpp.o.d"
  "example_geo_bank"
  "example_geo_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_geo_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
