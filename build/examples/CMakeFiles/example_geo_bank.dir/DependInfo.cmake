
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/geo_bank.cpp" "examples/CMakeFiles/example_geo_bank.dir/geo_bank.cpp.o" "gcc" "examples/CMakeFiles/example_geo_bank.dir/geo_bank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/globaldb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
