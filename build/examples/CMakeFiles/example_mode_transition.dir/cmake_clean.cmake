file(REMOVE_RECURSE
  "CMakeFiles/example_mode_transition.dir/mode_transition.cpp.o"
  "CMakeFiles/example_mode_transition.dir/mode_transition.cpp.o.d"
  "example_mode_transition"
  "example_mode_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mode_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
