# Empty dependencies file for example_mode_transition.
# This may be replaced when dependencies are built.
