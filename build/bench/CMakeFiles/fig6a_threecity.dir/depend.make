# Empty dependencies file for fig6a_threecity.
# This may be replaced when dependencies are built.
