file(REMOVE_RECURSE
  "CMakeFiles/fig6a_threecity.dir/fig6a_threecity.cc.o"
  "CMakeFiles/fig6a_threecity.dir/fig6a_threecity.cc.o.d"
  "fig6a_threecity"
  "fig6a_threecity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_threecity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
