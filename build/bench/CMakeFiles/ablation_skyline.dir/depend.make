# Empty dependencies file for ablation_skyline.
# This may be replaced when dependencies are built.
