file(REMOVE_RECURSE
  "CMakeFiles/ablation_skyline.dir/ablation_skyline.cc.o"
  "CMakeFiles/ablation_skyline.dir/ablation_skyline.cc.o.d"
  "ablation_skyline"
  "ablation_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
