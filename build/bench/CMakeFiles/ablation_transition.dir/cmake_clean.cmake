file(REMOVE_RECURSE
  "CMakeFiles/ablation_transition.dir/ablation_transition.cc.o"
  "CMakeFiles/ablation_transition.dir/ablation_transition.cc.o.d"
  "ablation_transition"
  "ablation_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
