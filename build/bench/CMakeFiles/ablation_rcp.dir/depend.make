# Empty dependencies file for ablation_rcp.
# This may be replaced when dependencies are built.
