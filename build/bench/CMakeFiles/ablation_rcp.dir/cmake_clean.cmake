file(REMOVE_RECURSE
  "CMakeFiles/ablation_rcp.dir/ablation_rcp.cc.o"
  "CMakeFiles/ablation_rcp.dir/ablation_rcp.cc.o.d"
  "ablation_rcp"
  "ablation_rcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
