# Empty compiler generated dependencies file for fig1a_region_span.
# This may be replaced when dependencies are built.
