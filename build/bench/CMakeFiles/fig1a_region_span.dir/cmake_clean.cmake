file(REMOVE_RECURSE
  "CMakeFiles/fig1a_region_span.dir/fig1a_region_span.cc.o"
  "CMakeFiles/fig1a_region_span.dir/fig1a_region_span.cc.o.d"
  "fig1a_region_span"
  "fig1a_region_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_region_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
