file(REMOVE_RECURSE
  "CMakeFiles/fig6b_delay_sweep.dir/fig6b_delay_sweep.cc.o"
  "CMakeFiles/fig6b_delay_sweep.dir/fig6b_delay_sweep.cc.o.d"
  "fig6b_delay_sweep"
  "fig6b_delay_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_delay_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
