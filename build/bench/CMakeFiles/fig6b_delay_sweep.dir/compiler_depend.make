# Empty compiler generated dependencies file for fig6b_delay_sweep.
# This may be replaced when dependencies are built.
