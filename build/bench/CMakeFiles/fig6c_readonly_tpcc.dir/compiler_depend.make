# Empty compiler generated dependencies file for fig6c_readonly_tpcc.
# This may be replaced when dependencies are built.
