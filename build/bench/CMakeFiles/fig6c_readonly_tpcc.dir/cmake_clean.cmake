file(REMOVE_RECURSE
  "CMakeFiles/fig6c_readonly_tpcc.dir/fig6c_readonly_tpcc.cc.o"
  "CMakeFiles/fig6c_readonly_tpcc.dir/fig6c_readonly_tpcc.cc.o.d"
  "fig6c_readonly_tpcc"
  "fig6c_readonly_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_readonly_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
