# Empty compiler generated dependencies file for ablation_logship.
# This may be replaced when dependencies are built.
