file(REMOVE_RECURSE
  "CMakeFiles/ablation_logship.dir/ablation_logship.cc.o"
  "CMakeFiles/ablation_logship.dir/ablation_logship.cc.o.d"
  "ablation_logship"
  "ablation_logship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_logship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
