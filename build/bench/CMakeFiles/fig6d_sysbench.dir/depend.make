# Empty dependencies file for fig6d_sysbench.
# This may be replaced when dependencies are built.
