file(REMOVE_RECURSE
  "CMakeFiles/fig6d_sysbench.dir/fig6d_sysbench.cc.o"
  "CMakeFiles/fig6d_sysbench.dir/fig6d_sysbench.cc.o.d"
  "fig6d_sysbench"
  "fig6d_sysbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6d_sysbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
