add_test([=[RcpPaperExampleTest.Figure4]=]  /root/repo/build/tests/cluster_rcp_paper_example_test [==[--gtest_filter=RcpPaperExampleTest.Figure4]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[RcpPaperExampleTest.Figure4]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  cluster_rcp_paper_example_test_TESTS RcpPaperExampleTest.Figure4)
