add_test([=[BankInvariantTest.TotalConservedUnderFaultsAndTransitions]=]  /root/repo/build/tests/integration_bank_invariant_test [==[--gtest_filter=BankInvariantTest.TotalConservedUnderFaultsAndTransitions]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[BankInvariantTest.TotalConservedUnderFaultsAndTransitions]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_bank_invariant_test_TESTS BankInvariantTest.TotalConservedUnderFaultsAndTransitions)
