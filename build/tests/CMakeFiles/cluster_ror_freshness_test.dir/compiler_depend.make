# Empty compiler generated dependencies file for cluster_ror_freshness_test.
# This may be replaced when dependencies are built.
