file(REMOVE_RECURSE
  "CMakeFiles/cluster_ror_freshness_test.dir/cluster/ror_freshness_test.cc.o"
  "CMakeFiles/cluster_ror_freshness_test.dir/cluster/ror_freshness_test.cc.o.d"
  "cluster_ror_freshness_test"
  "cluster_ror_freshness_test.pdb"
  "cluster_ror_freshness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_ror_freshness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
