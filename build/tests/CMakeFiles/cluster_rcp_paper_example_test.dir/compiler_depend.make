# Empty compiler generated dependencies file for cluster_rcp_paper_example_test.
# This may be replaced when dependencies are built.
