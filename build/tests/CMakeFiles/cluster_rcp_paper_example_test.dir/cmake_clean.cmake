file(REMOVE_RECURSE
  "CMakeFiles/cluster_rcp_paper_example_test.dir/cluster/rcp_paper_example_test.cc.o"
  "CMakeFiles/cluster_rcp_paper_example_test.dir/cluster/rcp_paper_example_test.cc.o.d"
  "cluster_rcp_paper_example_test"
  "cluster_rcp_paper_example_test.pdb"
  "cluster_rcp_paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_rcp_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
