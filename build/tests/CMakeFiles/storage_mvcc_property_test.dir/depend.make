# Empty dependencies file for storage_mvcc_property_test.
# This may be replaced when dependencies are built.
