file(REMOVE_RECURSE
  "CMakeFiles/replication_replication_test.dir/replication/replication_test.cc.o"
  "CMakeFiles/replication_replication_test.dir/replication/replication_test.cc.o.d"
  "replication_replication_test"
  "replication_replication_test.pdb"
  "replication_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
