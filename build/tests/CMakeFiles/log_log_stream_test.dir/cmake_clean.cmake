file(REMOVE_RECURSE
  "CMakeFiles/log_log_stream_test.dir/log/log_stream_test.cc.o"
  "CMakeFiles/log_log_stream_test.dir/log/log_stream_test.cc.o.d"
  "log_log_stream_test"
  "log_log_stream_test.pdb"
  "log_log_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_log_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
