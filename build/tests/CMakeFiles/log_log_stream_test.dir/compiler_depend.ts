# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for log_log_stream_test.
