# Empty compiler generated dependencies file for txn_gtm_server_test.
# This may be replaced when dependencies are built.
