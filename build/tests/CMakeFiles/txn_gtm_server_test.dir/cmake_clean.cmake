file(REMOVE_RECURSE
  "CMakeFiles/txn_gtm_server_test.dir/txn/gtm_server_test.cc.o"
  "CMakeFiles/txn_gtm_server_test.dir/txn/gtm_server_test.cc.o.d"
  "txn_gtm_server_test"
  "txn_gtm_server_test.pdb"
  "txn_gtm_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_gtm_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
