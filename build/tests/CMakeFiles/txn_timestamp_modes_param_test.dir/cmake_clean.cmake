file(REMOVE_RECURSE
  "CMakeFiles/txn_timestamp_modes_param_test.dir/txn/timestamp_modes_param_test.cc.o"
  "CMakeFiles/txn_timestamp_modes_param_test.dir/txn/timestamp_modes_param_test.cc.o.d"
  "txn_timestamp_modes_param_test"
  "txn_timestamp_modes_param_test.pdb"
  "txn_timestamp_modes_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_timestamp_modes_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
