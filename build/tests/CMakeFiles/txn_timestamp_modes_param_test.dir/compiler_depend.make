# Empty compiler generated dependencies file for txn_timestamp_modes_param_test.
# This may be replaced when dependencies are built.
