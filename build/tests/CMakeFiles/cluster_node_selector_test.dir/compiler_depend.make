# Empty compiler generated dependencies file for cluster_node_selector_test.
# This may be replaced when dependencies are built.
