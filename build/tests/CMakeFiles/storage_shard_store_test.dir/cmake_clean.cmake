file(REMOVE_RECURSE
  "CMakeFiles/storage_shard_store_test.dir/storage/shard_store_test.cc.o"
  "CMakeFiles/storage_shard_store_test.dir/storage/shard_store_test.cc.o.d"
  "storage_shard_store_test"
  "storage_shard_store_test.pdb"
  "storage_shard_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_shard_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
