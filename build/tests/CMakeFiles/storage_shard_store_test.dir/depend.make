# Empty dependencies file for storage_shard_store_test.
# This may be replaced when dependencies are built.
