# Empty dependencies file for log_redo_record_test.
# This may be replaced when dependencies are built.
