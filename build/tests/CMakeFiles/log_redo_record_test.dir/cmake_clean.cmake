file(REMOVE_RECURSE
  "CMakeFiles/log_redo_record_test.dir/log/redo_record_test.cc.o"
  "CMakeFiles/log_redo_record_test.dir/log/redo_record_test.cc.o.d"
  "log_redo_record_test"
  "log_redo_record_test.pdb"
  "log_redo_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_redo_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
