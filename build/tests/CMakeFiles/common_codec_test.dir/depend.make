# Empty dependencies file for common_codec_test.
# This may be replaced when dependencies are built.
