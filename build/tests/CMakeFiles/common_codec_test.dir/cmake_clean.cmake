file(REMOVE_RECURSE
  "CMakeFiles/common_codec_test.dir/common/codec_test.cc.o"
  "CMakeFiles/common_codec_test.dir/common/codec_test.cc.o.d"
  "common_codec_test"
  "common_codec_test.pdb"
  "common_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
