file(REMOVE_RECURSE
  "CMakeFiles/txn_timestamp_test.dir/txn/timestamp_test.cc.o"
  "CMakeFiles/txn_timestamp_test.dir/txn/timestamp_test.cc.o.d"
  "txn_timestamp_test"
  "txn_timestamp_test.pdb"
  "txn_timestamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_timestamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
