# Empty dependencies file for integration_bank_invariant_test.
# This may be replaced when dependencies are built.
