file(REMOVE_RECURSE
  "CMakeFiles/integration_bank_invariant_test.dir/integration/bank_invariant_test.cc.o"
  "CMakeFiles/integration_bank_invariant_test.dir/integration/bank_invariant_test.cc.o.d"
  "integration_bank_invariant_test"
  "integration_bank_invariant_test.pdb"
  "integration_bank_invariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_bank_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
