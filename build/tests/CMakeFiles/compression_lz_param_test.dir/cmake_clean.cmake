file(REMOVE_RECURSE
  "CMakeFiles/compression_lz_param_test.dir/compression/lz_param_test.cc.o"
  "CMakeFiles/compression_lz_param_test.dir/compression/lz_param_test.cc.o.d"
  "compression_lz_param_test"
  "compression_lz_param_test.pdb"
  "compression_lz_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_lz_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
