# Empty dependencies file for compression_lz_param_test.
# This may be replaced when dependencies are built.
