# Empty compiler generated dependencies file for storage_mvcc_table_test.
# This may be replaced when dependencies are built.
