file(REMOVE_RECURSE
  "CMakeFiles/storage_mvcc_table_test.dir/storage/mvcc_table_test.cc.o"
  "CMakeFiles/storage_mvcc_table_test.dir/storage/mvcc_table_test.cc.o.d"
  "storage_mvcc_table_test"
  "storage_mvcc_table_test.pdb"
  "storage_mvcc_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_mvcc_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
