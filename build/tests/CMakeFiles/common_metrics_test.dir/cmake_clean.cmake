file(REMOVE_RECURSE
  "CMakeFiles/common_metrics_test.dir/common/metrics_test.cc.o"
  "CMakeFiles/common_metrics_test.dir/common/metrics_test.cc.o.d"
  "common_metrics_test"
  "common_metrics_test.pdb"
  "common_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
