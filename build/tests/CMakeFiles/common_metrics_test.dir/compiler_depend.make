# Empty compiler generated dependencies file for common_metrics_test.
# This may be replaced when dependencies are built.
