# Empty dependencies file for cluster_partition_test.
# This may be replaced when dependencies are built.
