# Empty compiler generated dependencies file for sim_transfer_delay_test.
# This may be replaced when dependencies are built.
