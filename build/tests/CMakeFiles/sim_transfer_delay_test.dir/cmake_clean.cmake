file(REMOVE_RECURSE
  "CMakeFiles/sim_transfer_delay_test.dir/sim/transfer_delay_test.cc.o"
  "CMakeFiles/sim_transfer_delay_test.dir/sim/transfer_delay_test.cc.o.d"
  "sim_transfer_delay_test"
  "sim_transfer_delay_test.pdb"
  "sim_transfer_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_transfer_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
