file(REMOVE_RECURSE
  "CMakeFiles/globaldb_common.dir/common/codec.cc.o"
  "CMakeFiles/globaldb_common.dir/common/codec.cc.o.d"
  "CMakeFiles/globaldb_common.dir/common/hash.cc.o"
  "CMakeFiles/globaldb_common.dir/common/hash.cc.o.d"
  "CMakeFiles/globaldb_common.dir/common/logging.cc.o"
  "CMakeFiles/globaldb_common.dir/common/logging.cc.o.d"
  "CMakeFiles/globaldb_common.dir/common/rng.cc.o"
  "CMakeFiles/globaldb_common.dir/common/rng.cc.o.d"
  "CMakeFiles/globaldb_common.dir/common/status.cc.o"
  "CMakeFiles/globaldb_common.dir/common/status.cc.o.d"
  "libglobaldb_common.a"
  "libglobaldb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
