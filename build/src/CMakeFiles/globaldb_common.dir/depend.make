# Empty dependencies file for globaldb_common.
# This may be replaced when dependencies are built.
