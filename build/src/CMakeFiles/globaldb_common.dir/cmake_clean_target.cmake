file(REMOVE_RECURSE
  "libglobaldb_common.a"
)
