file(REMOVE_RECURSE
  "CMakeFiles/globaldb_log.dir/log/log_stream.cc.o"
  "CMakeFiles/globaldb_log.dir/log/log_stream.cc.o.d"
  "CMakeFiles/globaldb_log.dir/log/redo_record.cc.o"
  "CMakeFiles/globaldb_log.dir/log/redo_record.cc.o.d"
  "libglobaldb_log.a"
  "libglobaldb_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
