file(REMOVE_RECURSE
  "libglobaldb_log.a"
)
