# Empty compiler generated dependencies file for globaldb_log.
# This may be replaced when dependencies are built.
