file(REMOVE_RECURSE
  "CMakeFiles/globaldb_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/globaldb_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/globaldb_storage.dir/storage/mvcc_table.cc.o"
  "CMakeFiles/globaldb_storage.dir/storage/mvcc_table.cc.o.d"
  "CMakeFiles/globaldb_storage.dir/storage/schema.cc.o"
  "CMakeFiles/globaldb_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/globaldb_storage.dir/storage/value.cc.o"
  "CMakeFiles/globaldb_storage.dir/storage/value.cc.o.d"
  "libglobaldb_storage.a"
  "libglobaldb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
