# Empty dependencies file for globaldb_storage.
# This may be replaced when dependencies are built.
