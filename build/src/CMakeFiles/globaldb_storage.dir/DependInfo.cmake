
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/globaldb_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/globaldb_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/mvcc_table.cc" "src/CMakeFiles/globaldb_storage.dir/storage/mvcc_table.cc.o" "gcc" "src/CMakeFiles/globaldb_storage.dir/storage/mvcc_table.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/globaldb_storage.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/globaldb_storage.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/globaldb_storage.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/globaldb_storage.dir/storage/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/globaldb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_compression.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
