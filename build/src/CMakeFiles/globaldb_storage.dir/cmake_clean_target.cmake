file(REMOVE_RECURSE
  "libglobaldb_storage.a"
)
