file(REMOVE_RECURSE
  "CMakeFiles/globaldb_compression.dir/compression/lz.cc.o"
  "CMakeFiles/globaldb_compression.dir/compression/lz.cc.o.d"
  "libglobaldb_compression.a"
  "libglobaldb_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
