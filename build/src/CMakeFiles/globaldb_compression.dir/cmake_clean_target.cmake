file(REMOVE_RECURSE
  "libglobaldb_compression.a"
)
