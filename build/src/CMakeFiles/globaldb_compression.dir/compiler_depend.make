# Empty compiler generated dependencies file for globaldb_compression.
# This may be replaced when dependencies are built.
