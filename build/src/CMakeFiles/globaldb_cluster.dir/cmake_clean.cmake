file(REMOVE_RECURSE
  "CMakeFiles/globaldb_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/globaldb_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/globaldb_cluster.dir/cluster/coordinator_node.cc.o"
  "CMakeFiles/globaldb_cluster.dir/cluster/coordinator_node.cc.o.d"
  "CMakeFiles/globaldb_cluster.dir/cluster/data_node.cc.o"
  "CMakeFiles/globaldb_cluster.dir/cluster/data_node.cc.o.d"
  "CMakeFiles/globaldb_cluster.dir/cluster/rcp_service.cc.o"
  "CMakeFiles/globaldb_cluster.dir/cluster/rcp_service.cc.o.d"
  "CMakeFiles/globaldb_cluster.dir/cluster/replica_node.cc.o"
  "CMakeFiles/globaldb_cluster.dir/cluster/replica_node.cc.o.d"
  "libglobaldb_cluster.a"
  "libglobaldb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
