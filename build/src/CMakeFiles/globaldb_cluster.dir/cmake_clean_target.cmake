file(REMOVE_RECURSE
  "libglobaldb_cluster.a"
)
