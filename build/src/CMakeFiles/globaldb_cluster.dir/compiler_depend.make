# Empty compiler generated dependencies file for globaldb_cluster.
# This may be replaced when dependencies are built.
