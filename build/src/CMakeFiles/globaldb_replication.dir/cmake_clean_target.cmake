file(REMOVE_RECURSE
  "libglobaldb_replication.a"
)
