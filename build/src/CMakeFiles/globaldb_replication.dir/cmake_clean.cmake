file(REMOVE_RECURSE
  "CMakeFiles/globaldb_replication.dir/replication/log_shipper.cc.o"
  "CMakeFiles/globaldb_replication.dir/replication/log_shipper.cc.o.d"
  "CMakeFiles/globaldb_replication.dir/replication/replica_applier.cc.o"
  "CMakeFiles/globaldb_replication.dir/replication/replica_applier.cc.o.d"
  "libglobaldb_replication.a"
  "libglobaldb_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
