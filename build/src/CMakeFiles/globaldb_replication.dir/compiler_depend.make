# Empty compiler generated dependencies file for globaldb_replication.
# This may be replaced when dependencies are built.
