# Empty compiler generated dependencies file for globaldb_sim.
# This may be replaced when dependencies are built.
