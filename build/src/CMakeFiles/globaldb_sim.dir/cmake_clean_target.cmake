file(REMOVE_RECURSE
  "libglobaldb_sim.a"
)
