file(REMOVE_RECURSE
  "CMakeFiles/globaldb_sim.dir/sim/hardware_clock.cc.o"
  "CMakeFiles/globaldb_sim.dir/sim/hardware_clock.cc.o.d"
  "CMakeFiles/globaldb_sim.dir/sim/network.cc.o"
  "CMakeFiles/globaldb_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/globaldb_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/globaldb_sim.dir/sim/simulator.cc.o.d"
  "libglobaldb_sim.a"
  "libglobaldb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
