file(REMOVE_RECURSE
  "CMakeFiles/globaldb_workload.dir/workload/driver.cc.o"
  "CMakeFiles/globaldb_workload.dir/workload/driver.cc.o.d"
  "CMakeFiles/globaldb_workload.dir/workload/sysbench.cc.o"
  "CMakeFiles/globaldb_workload.dir/workload/sysbench.cc.o.d"
  "CMakeFiles/globaldb_workload.dir/workload/tpcc.cc.o"
  "CMakeFiles/globaldb_workload.dir/workload/tpcc.cc.o.d"
  "libglobaldb_workload.a"
  "libglobaldb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
