file(REMOVE_RECURSE
  "libglobaldb_workload.a"
)
