# Empty dependencies file for globaldb_workload.
# This may be replaced when dependencies are built.
