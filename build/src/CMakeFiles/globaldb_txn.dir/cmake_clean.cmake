file(REMOVE_RECURSE
  "CMakeFiles/globaldb_txn.dir/txn/gtm_server.cc.o"
  "CMakeFiles/globaldb_txn.dir/txn/gtm_server.cc.o.d"
  "CMakeFiles/globaldb_txn.dir/txn/lock_manager.cc.o"
  "CMakeFiles/globaldb_txn.dir/txn/lock_manager.cc.o.d"
  "CMakeFiles/globaldb_txn.dir/txn/timestamp_source.cc.o"
  "CMakeFiles/globaldb_txn.dir/txn/timestamp_source.cc.o.d"
  "CMakeFiles/globaldb_txn.dir/txn/transition.cc.o"
  "CMakeFiles/globaldb_txn.dir/txn/transition.cc.o.d"
  "libglobaldb_txn.a"
  "libglobaldb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globaldb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
