file(REMOVE_RECURSE
  "libglobaldb_txn.a"
)
