# Empty dependencies file for globaldb_txn.
# This may be replaced when dependencies are built.
