
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/gtm_server.cc" "src/CMakeFiles/globaldb_txn.dir/txn/gtm_server.cc.o" "gcc" "src/CMakeFiles/globaldb_txn.dir/txn/gtm_server.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/globaldb_txn.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/globaldb_txn.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/timestamp_source.cc" "src/CMakeFiles/globaldb_txn.dir/txn/timestamp_source.cc.o" "gcc" "src/CMakeFiles/globaldb_txn.dir/txn/timestamp_source.cc.o.d"
  "/root/repo/src/txn/transition.cc" "src/CMakeFiles/globaldb_txn.dir/txn/transition.cc.o" "gcc" "src/CMakeFiles/globaldb_txn.dir/txn/transition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/globaldb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/globaldb_compression.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
