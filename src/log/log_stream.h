#ifndef GLOBALDB_SRC_LOG_LOG_STREAM_H_
#define GLOBALDB_SRC_LOG_LOG_STREAM_H_

#include <deque>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/compression/lz.h"
#include "src/log/redo_record.h"

namespace globaldb {

/// An in-memory per-shard redo stream. The primary data node appends; the
/// log shipper reads batches from an LSN cursor and ships them to replicas.
/// LSNs start at 1 and are dense.
class LogStream {
 public:
  LogStream() = default;

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  /// Appends a record, assigning the next LSN. Returns the assigned LSN.
  Lsn Append(RedoRecord record);

  /// First retained LSN (records below were truncated away).
  Lsn begin_lsn() const { return begin_lsn_; }
  /// LSN the next Append will get.
  Lsn next_lsn() const { return begin_lsn_ + records_.size(); }
  /// Number of retained records.
  size_t size() const { return records_.size(); }
  /// Total encoded bytes appended over the stream's lifetime.
  uint64_t total_bytes() const { return total_bytes_; }
  /// Encoded bytes of the currently retained records (lifetime bytes minus
  /// what truncation reclaimed) — the soak bench asserts this flat-lines.
  uint64_t retained_bytes() const { return retained_bytes_; }

  /// Returns up to max_records records starting at `from` (inclusive),
  /// stopping early once max_bytes of encoded size is reached (at least one
  /// record is returned if available). Fails if `from` was truncated.
  StatusOr<std::vector<RedoRecord>> Read(Lsn from, size_t max_records,
                                         size_t max_bytes) const;

  /// The boundary a Read(from, max_records, max_bytes) would produce, without
  /// copying any records. The shipper uses this to key its encoded-batch
  /// cache before deciding whether it needs to read + encode at all.
  struct BatchExtent {
    /// Last LSN the batch would include (valid only when records > 0).
    Lsn end_lsn = kInvalidLsn;
    size_t records = 0;
    /// Encoded size of the included records (pre-compression).
    size_t bytes = 0;
  };
  StatusOr<BatchExtent> Extent(Lsn from, size_t max_records,
                               size_t max_bytes) const;

  /// Returns the record at `lsn` (for tests / recovery inspection).
  StatusOr<RedoRecord> At(Lsn lsn) const;

  /// Drops records with lsn < until (replicas all caught up past them).
  void TruncateUntil(Lsn until);

  /// Re-bases an *empty* stream so the next Append gets LSN `first`. Used
  /// when a promoted replica adopts the primary role: its new log continues
  /// the shard's LSN sequence from its applied position instead of
  /// restarting at 1. Must not be called on a non-empty stream.
  void ResetBase(Lsn first);

  /// Serializes records for the wire, optionally compressed. The batch is
  /// self-describing: [u8 compression][payload], payload = concatenated
  /// record encodings (LSNs travel inside the records).
  static std::string EncodeBatch(const std::vector<RedoRecord>& records,
                                 CompressionType compression);
  static Status DecodeBatch(Slice batch, std::vector<RedoRecord>* out);

 private:
  std::deque<RedoRecord> records_;
  Lsn begin_lsn_ = 1;
  uint64_t total_bytes_ = 0;
  uint64_t retained_bytes_ = 0;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_LOG_LOG_STREAM_H_
