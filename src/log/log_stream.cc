#include "src/log/log_stream.h"

#include "src/common/logging.h"

namespace globaldb {

Lsn LogStream::Append(RedoRecord record) {
  record.lsn = next_lsn();
  const size_t sz = record.EncodedSize();
  total_bytes_ += sz;
  retained_bytes_ += sz;
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

StatusOr<std::vector<RedoRecord>> LogStream::Read(Lsn from, size_t max_records,
                                                  size_t max_bytes) const {
  if (from < begin_lsn_) {
    return Status::OutOfRange("lsn " + std::to_string(from) + " truncated");
  }
  std::vector<RedoRecord> out;
  size_t bytes = 0;
  for (Lsn lsn = from; lsn < next_lsn() && out.size() < max_records; ++lsn) {
    const RedoRecord& rec = records_[lsn - begin_lsn_];
    const size_t sz = rec.EncodedSize();
    if (!out.empty() && bytes + sz > max_bytes) break;
    out.push_back(rec);
    bytes += sz;
  }
  return out;
}

StatusOr<LogStream::BatchExtent> LogStream::Extent(Lsn from,
                                                   size_t max_records,
                                                   size_t max_bytes) const {
  if (from < begin_lsn_) {
    return Status::OutOfRange("lsn " + std::to_string(from) + " truncated");
  }
  BatchExtent extent;
  for (Lsn lsn = from; lsn < next_lsn() && extent.records < max_records;
       ++lsn) {
    const size_t sz = records_[lsn - begin_lsn_].EncodedSize();
    if (extent.records > 0 && extent.bytes + sz > max_bytes) break;
    extent.end_lsn = lsn;
    ++extent.records;
    extent.bytes += sz;
  }
  return extent;
}

StatusOr<RedoRecord> LogStream::At(Lsn lsn) const {
  if (lsn < begin_lsn_ || lsn >= next_lsn()) {
    return Status::NotFound("lsn " + std::to_string(lsn));
  }
  return records_[lsn - begin_lsn_];
}

void LogStream::TruncateUntil(Lsn until) {
  while (begin_lsn_ < until && !records_.empty()) {
    retained_bytes_ -= records_.front().EncodedSize();
    records_.pop_front();
    ++begin_lsn_;
  }
}

void LogStream::ResetBase(Lsn first) {
  GDB_CHECK(records_.empty()) << "ResetBase on non-empty stream";
  begin_lsn_ = first;
}

std::string LogStream::EncodeBatch(const std::vector<RedoRecord>& records,
                                   CompressionType compression) {
  std::string payload;
  for (const RedoRecord& rec : records) {
    rec.EncodeTo(&payload);
  }
  std::string batch;
  if (compression == CompressionType::kLz) {
    std::string compressed;
    LzCodec::Compress(payload, &compressed);
    // Fall back to raw framing if compression expanded the payload.
    if (compressed.size() < payload.size()) {
      batch.push_back(static_cast<char>(CompressionType::kLz));
      batch += compressed;
      return batch;
    }
  }
  batch.push_back(static_cast<char>(CompressionType::kNone));
  batch += payload;
  return batch;
}

Status LogStream::DecodeBatch(Slice batch, std::vector<RedoRecord>* out) {
  out->clear();
  if (batch.empty()) return Status::Corruption("batch: empty");
  const auto compression = static_cast<CompressionType>(batch[0]);
  batch.RemovePrefix(1);
  std::string decompressed;
  Slice payload = batch;
  if (compression == CompressionType::kLz) {
    GDB_RETURN_IF_ERROR(LzCodec::Decompress(batch, &decompressed));
    payload = decompressed;
  } else if (compression != CompressionType::kNone) {
    return Status::Corruption("batch: unknown compression");
  }
  while (!payload.empty()) {
    RedoRecord rec;
    GDB_RETURN_IF_ERROR(RedoRecord::DecodeFrom(&payload, &rec));
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

}  // namespace globaldb
