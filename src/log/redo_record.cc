#include "src/log/redo_record.h"

#include "src/common/codec.h"

namespace globaldb {

const char* RedoTypeName(RedoType type) {
  switch (type) {
    case RedoType::kInsert:
      return "INSERT";
    case RedoType::kUpdate:
      return "UPDATE";
    case RedoType::kDelete:
      return "DELETE";
    case RedoType::kPendingCommit:
      return "PENDING_COMMIT";
    case RedoType::kCommit:
      return "COMMIT";
    case RedoType::kAbort:
      return "ABORT";
    case RedoType::kPrepare:
      return "PREPARE";
    case RedoType::kCommitPrepared:
      return "COMMIT_PREPARED";
    case RedoType::kAbortPrepared:
      return "ABORT_PREPARED";
    case RedoType::kHeartbeat:
      return "HEARTBEAT";
    case RedoType::kDdl:
      return "DDL";
    case RedoType::kCheckpoint:
      return "CHECKPOINT";
  }
  return "?";
}

void RedoRecord::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, lsn);
  PutVarint64(dst, txn_id);
  PutVarint64(dst, timestamp);
  PutVarint32(dst, table_id);
  PutLengthPrefixed(dst, key);
  PutLengthPrefixed(dst, value);
}

Status RedoRecord::DecodeFrom(Slice* input, RedoRecord* out) {
  if (input->empty()) return Status::Corruption("redo: empty input");
  const uint8_t type_byte = static_cast<uint8_t>((*input)[0]);
  if (type_byte < static_cast<uint8_t>(RedoType::kInsert) ||
      type_byte > static_cast<uint8_t>(RedoType::kCheckpoint)) {
    return Status::Corruption("redo: bad record type");
  }
  out->type = static_cast<RedoType>(type_byte);
  input->RemovePrefix(1);
  Slice key, value;
  if (!GetVarint64(input, &out->lsn) || !GetVarint64(input, &out->txn_id) ||
      !GetVarint64(input, &out->timestamp) ||
      !GetVarint32(input, &out->table_id) ||
      !GetLengthPrefixed(input, &key) || !GetLengthPrefixed(input, &value)) {
    return Status::Corruption("redo: truncated record");
  }
  out->key = key.ToString();
  out->value = value.ToString();
  return Status::OK();
}

size_t RedoRecord::EncodedSize() const {
  return 1 + VarintLength(lsn) + VarintLength(txn_id) +
         VarintLength(timestamp) + VarintLength(table_id) +
         VarintLength(key.size()) + key.size() + VarintLength(value.size()) +
         value.size();
}

RedoRecord RedoRecord::Insert(TxnId txn, TableId table, RowKey key,
                              std::string value) {
  RedoRecord r;
  r.type = RedoType::kInsert;
  r.txn_id = txn;
  r.table_id = table;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

RedoRecord RedoRecord::Update(TxnId txn, TableId table, RowKey key,
                              std::string value) {
  RedoRecord r = Insert(txn, table, std::move(key), std::move(value));
  r.type = RedoType::kUpdate;
  return r;
}

RedoRecord RedoRecord::Delete(TxnId txn, TableId table, RowKey key) {
  RedoRecord r;
  r.type = RedoType::kDelete;
  r.txn_id = txn;
  r.table_id = table;
  r.key = std::move(key);
  return r;
}

RedoRecord RedoRecord::PendingCommit(TxnId txn) {
  RedoRecord r;
  r.type = RedoType::kPendingCommit;
  r.txn_id = txn;
  return r;
}

RedoRecord RedoRecord::Commit(TxnId txn, Timestamp ts) {
  RedoRecord r;
  r.type = RedoType::kCommit;
  r.txn_id = txn;
  r.timestamp = ts;
  return r;
}

RedoRecord RedoRecord::Abort(TxnId txn) {
  RedoRecord r;
  r.type = RedoType::kAbort;
  r.txn_id = txn;
  return r;
}

RedoRecord RedoRecord::Prepare(TxnId txn) {
  RedoRecord r;
  r.type = RedoType::kPrepare;
  r.txn_id = txn;
  return r;
}

RedoRecord RedoRecord::Prepare(TxnId txn, const std::vector<ShardId>& shards) {
  RedoRecord r = Prepare(txn);
  r.value = EncodeParticipants(shards);
  return r;
}

RedoRecord RedoRecord::CommitPrepared(TxnId txn, Timestamp ts) {
  RedoRecord r;
  r.type = RedoType::kCommitPrepared;
  r.txn_id = txn;
  r.timestamp = ts;
  return r;
}

RedoRecord RedoRecord::AbortPrepared(TxnId txn) {
  RedoRecord r;
  r.type = RedoType::kAbortPrepared;
  r.txn_id = txn;
  return r;
}

RedoRecord RedoRecord::Heartbeat(Timestamp ts) {
  RedoRecord r;
  r.type = RedoType::kHeartbeat;
  r.timestamp = ts;
  return r;
}

RedoRecord RedoRecord::Ddl(Timestamp ts, std::string payload) {
  RedoRecord r;
  r.type = RedoType::kDdl;
  r.timestamp = ts;
  r.value = std::move(payload);
  return r;
}

RedoRecord RedoRecord::Checkpoint(Timestamp ts) {
  RedoRecord r;
  r.type = RedoType::kCheckpoint;
  r.timestamp = ts;
  return r;
}

std::string EncodeParticipants(const std::vector<ShardId>& shards) {
  std::string s;
  PutVarint32(&s, static_cast<uint32_t>(shards.size()));
  for (ShardId shard : shards) PutVarint32(&s, shard);
  return s;
}

std::vector<ShardId> DecodeParticipants(Slice in) {
  std::vector<ShardId> shards;
  uint32_t n = 0;
  if (!GetVarint32(&in, &n)) return shards;
  shards.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ShardId shard = kInvalidShardId;
    if (!GetVarint32(&in, &shard)) return {};
    shards.push_back(shard);
  }
  return shards;
}

bool operator==(const RedoRecord& a, const RedoRecord& b) {
  return a.type == b.type && a.txn_id == b.txn_id &&
         a.timestamp == b.timestamp && a.table_id == b.table_id &&
         a.key == b.key && a.value == b.value && a.lsn == b.lsn;
}

}  // namespace globaldb
