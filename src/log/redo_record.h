#ifndef GLOBALDB_SRC_LOG_REDO_RECORD_H_
#define GLOBALDB_SRC_LOG_REDO_RECORD_H_

#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace globaldb {

/// Redo log record types (Section IV-A of the paper).
///
/// PENDING_COMMIT is the paper's safeguard for out-of-order commit records:
/// it is written at the primary *before* the transaction obtains its commit
/// timestamp, and locks the associated tuples on the replica until a COMMIT
/// or ABORT for the same transaction is replayed. PREPARE plays the same
/// role for two-phase commit (visibility blocked until COMMIT_PREPARED /
/// ABORT_PREPARED).
enum class RedoType : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kPendingCommit = 4,
  kCommit = 5,
  kAbort = 6,
  kPrepare = 7,
  kCommitPrepared = 8,
  kAbortPrepared = 9,
  kHeartbeat = 10,  // advances replica max-commit-timestamp on idle shards
  kDdl = 11,        // schema change; payload carries the catalog mutation
  kCheckpoint = 12,
};

/// Returns a stable name like "INSERT".
const char* RedoTypeName(RedoType type);

/// One redo record. Data records (INSERT/UPDATE/DELETE) carry the table,
/// key, and new tuple image; control records carry the transaction id and,
/// for commits and heartbeats, the commit timestamp.
struct RedoRecord {
  RedoType type = RedoType::kHeartbeat;
  TxnId txn_id = kInvalidTxnId;
  Timestamp timestamp = kInvalidTimestamp;
  TableId table_id = kInvalidTableId;
  RowKey key;
  std::string value;
  Lsn lsn = kInvalidLsn;  // assigned by LogStream::Append

  /// Appends the binary encoding to *dst.
  void EncodeTo(std::string* dst) const;
  /// Consumes one record from *input.
  static Status DecodeFrom(Slice* input, RedoRecord* out);
  /// Bytes EncodeTo would emit.
  size_t EncodedSize() const;

  bool IsData() const {
    return type == RedoType::kInsert || type == RedoType::kUpdate ||
           type == RedoType::kDelete;
  }
  bool IsCommit() const {
    return type == RedoType::kCommit || type == RedoType::kCommitPrepared;
  }

  // Convenience constructors.
  static RedoRecord Insert(TxnId txn, TableId table, RowKey key,
                           std::string value);
  static RedoRecord Update(TxnId txn, TableId table, RowKey key,
                           std::string value);
  static RedoRecord Delete(TxnId txn, TableId table, RowKey key);
  static RedoRecord PendingCommit(TxnId txn);
  static RedoRecord Commit(TxnId txn, Timestamp ts);
  static RedoRecord Abort(TxnId txn);
  static RedoRecord Prepare(TxnId txn);
  /// PREPARE carrying the transaction's participant shard list in `value`
  /// (see EncodeParticipants). A promoted primary that finds the prepare
  /// in-doubt decodes it to know which peer shards to query for the durable
  /// decision (DESIGN.md §13).
  static RedoRecord Prepare(TxnId txn, const std::vector<ShardId>& shards);
  static RedoRecord CommitPrepared(TxnId txn, Timestamp ts);
  static RedoRecord AbortPrepared(TxnId txn);
  static RedoRecord Heartbeat(Timestamp ts);
  static RedoRecord Ddl(Timestamp ts, std::string payload);
  /// Marks a checkpoint: everything below this record's LSN is captured in a
  /// snapshot; `ts` is the vacuum horizon the checkpoint was taken at
  /// (replicas vacuum their version chains at the same horizon on replay).
  static RedoRecord Checkpoint(Timestamp ts);
};

bool operator==(const RedoRecord& a, const RedoRecord& b);

/// Participant-list payload of a 2PC PREPARE record (varint count + varint
/// shard ids). An empty / undecodable payload yields an empty list — the
/// reader falls back to querying every shard.
std::string EncodeParticipants(const std::vector<ShardId>& shards);
std::vector<ShardId> DecodeParticipants(Slice in);

}  // namespace globaldb

#endif  // GLOBALDB_SRC_LOG_REDO_RECORD_H_
