#include "src/storage/catalog.h"

#include "src/common/codec.h"

namespace globaldb {

namespace {
constexpr char kDdlCreate = 'C';
constexpr char kDdlDrop = 'D';
}  // namespace

StatusOr<TableId> Catalog::CreateTable(TableSchema schema) {
  if (schema.name.empty()) {
    return Status::InvalidArgument("table name empty");
  }
  if (by_name_.count(schema.name)) {
    return Status::AlreadyExists("table " + schema.name);
  }
  if (schema.columns.empty()) {
    return Status::InvalidArgument("table has no columns");
  }
  if (schema.key_columns.empty()) {
    return Status::InvalidArgument("table has no primary key");
  }
  for (int k : schema.key_columns) {
    if (k < 0 || static_cast<size_t>(k) >= schema.columns.size()) {
      return Status::InvalidArgument("key column out of range");
    }
  }
  if (schema.distribution_column < 0 ||
      static_cast<size_t>(schema.distribution_column) >=
          schema.columns.size()) {
    return Status::InvalidArgument("distribution column out of range");
  }
  if (schema.id == kInvalidTableId) {
    schema.id = next_id_++;
  } else {
    if (by_id_.count(schema.id)) {
      return Status::AlreadyExists("table id " + std::to_string(schema.id));
    }
    next_id_ = std::max(next_id_, schema.id + 1);
  }
  const TableId id = schema.id;
  by_name_[schema.name] = id;
  by_id_[id] = std::move(schema);
  return id;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("table " + name);
  by_id_.erase(it->second);
  ddl_ts_.erase(it->second);
  by_name_.erase(it);
  return Status::OK();
}

const TableSchema* Catalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &by_id_.at(it->second);
}

const TableSchema* Catalog::FindTableById(TableId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::vector<const TableSchema*> Catalog::AllTables() const {
  std::vector<const TableSchema*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, schema] : by_id_) out.push_back(&schema);
  return out;
}

void Catalog::RecordDdlTimestamp(TableId table, Timestamp ts) {
  Timestamp& slot = ddl_ts_[table];
  slot = std::max(slot, ts);
  max_ddl_ts_ = std::max(max_ddl_ts_, ts);
}

Timestamp Catalog::LastDdlTimestamp(TableId table) const {
  auto it = ddl_ts_.find(table);
  return it == ddl_ts_.end() ? 0 : it->second;
}

std::string Catalog::MakeCreatePayload(const TableSchema& schema) {
  std::string payload(1, kDdlCreate);
  schema.EncodeTo(&payload);
  return payload;
}

std::string Catalog::MakeDropPayload(const std::string& name) {
  std::string payload(1, kDdlDrop);
  PutLengthPrefixed(&payload, name);
  return payload;
}

Status Catalog::ApplyDdl(Slice payload, Timestamp ts) {
  if (payload.empty()) return Status::Corruption("ddl: empty payload");
  const char op = payload[0];
  payload.RemovePrefix(1);
  switch (op) {
    case kDdlCreate: {
      GDB_ASSIGN_OR_RETURN(TableSchema schema, TableSchema::Decode(payload));
      const TableId id = schema.id;
      auto result = CreateTable(std::move(schema));
      if (!result.ok() &&
          result.status().code() != StatusCode::kAlreadyExists) {
        return result.status();
      }
      RecordDdlTimestamp(result.ok() ? *result : id, ts);
      return Status::OK();
    }
    case kDdlDrop: {
      Slice name;
      if (!GetLengthPrefixed(&payload, &name)) {
        return Status::Corruption("ddl: bad drop payload");
      }
      const TableSchema* schema = FindTable(name.ToString());
      if (schema != nullptr) {
        const TableId id = schema->id;
        GDB_RETURN_IF_ERROR(DropTable(name.ToString()));
        max_ddl_ts_ = std::max(max_ddl_ts_, ts);
        (void)id;
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("ddl: unknown op");
  }
}

}  // namespace globaldb
