#ifndef GLOBALDB_SRC_STORAGE_CATALOG_H_
#define GLOBALDB_SRC_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/storage/schema.h"

namespace globaldb {

/// Table metadata registry. Every node (CN and DN) holds a catalog; DDL
/// statements mutate the CN's catalog first and propagate to DNs/replicas
/// via DDL redo records, so replicas see schema changes in log order.
///
/// The catalog records each table's last DDL timestamp: the ROR path uses it
/// to decide whether a replica has replayed all schema changes relevant to a
/// query (Section IV-A, DDL visibility conditions).
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table. Assigns an id when schema.id == kInvalidTableId.
  StatusOr<TableId> CreateTable(TableSchema schema);

  Status DropTable(const std::string& name);

  const TableSchema* FindTable(const std::string& name) const;
  const TableSchema* FindTableById(TableId id) const;
  std::vector<const TableSchema*> AllTables() const;
  size_t NumTables() const { return by_id_.size(); }

  /// Records that a DDL affecting `table` committed at `ts`.
  void RecordDdlTimestamp(TableId table, Timestamp ts);
  /// Last DDL timestamp for one table (0 if never).
  Timestamp LastDdlTimestamp(TableId table) const;
  /// Largest DDL timestamp across all tables (condition 1 of the ROR DDL
  /// visibility check).
  Timestamp MaxDdlTimestamp() const { return max_ddl_ts_; }

  // --- DDL redo payloads -------------------------------------------------

  static std::string MakeCreatePayload(const TableSchema& schema);
  static std::string MakeDropPayload(const std::string& name);

  /// Applies a DDL payload produced by the Make*Payload helpers, recording
  /// `ts` as the DDL timestamp. Idempotent for replayed CREATEs.
  Status ApplyDdl(Slice payload, Timestamp ts);

 private:
  std::map<TableId, TableSchema> by_id_;
  std::map<std::string, TableId> by_name_;
  std::map<TableId, Timestamp> ddl_ts_;
  Timestamp max_ddl_ts_ = 0;
  TableId next_id_ = 1;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_STORAGE_CATALOG_H_
