#ifndef GLOBALDB_SRC_STORAGE_BTREE_H_
#define GLOBALDB_SRC_STORAGE_BTREE_H_

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace globaldb {

/// In-memory B+-tree keyed by binary strings (the order-preserving key
/// encoding from storage/value.h), used as the primary index of every MVCC
/// table. Leaves are linked for ordered range scans.
///
/// Erase uses lazy deletion: entries are removed from leaves without
/// rebalancing (underfull leaves are tolerated; an empty leaf is unlinked
/// from scans logically by skipping). This keeps the code simple; MVCC
/// deletes are version markers, so physical erase only happens on table
/// truncation and in tests.
template <typename V>
class BTree {
 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
    bool is_leaf;
  };

  struct Leaf : Node {
    Leaf() : Node(true) {}
    std::vector<std::pair<std::string, V>> entries;
    Leaf* next = nullptr;
  };

  struct Internal : Node {
    Internal() : Node(false) {}
    // children.size() == keys.size() + 1; keys[i] is the smallest key in
    // children[i + 1]'s subtree.
    std::vector<std::string> keys;
    std::vector<std::unique_ptr<Node>> children;
  };

 public:
  static constexpr int kFanout = 64;        // max children per internal node
  static constexpr int kLeafCapacity = 64;  // max entries per leaf

  BTree() {
    root_ = MakeLeaf();
    first_leaf_ = static_cast<Leaf*>(root_.get());
  }

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts or assigns. Returns a pointer to the stored value (stable until
  /// the next structural modification of its leaf).
  V* Put(const std::string& key, V value) {
    SplitResult split = InsertRec(root_.get(), key, &value);
    if (split.happened) {
      auto new_root = std::make_unique<Internal>();
      new_root->keys.push_back(split.separator);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split.right));
      root_ = std::move(new_root);
    }
    return Find(key);
  }

  /// Returns the value for `key`, or nullptr.
  V* Find(const std::string& key) {
    Node* node = root_.get();
    while (!node->is_leaf) {
      Internal* in = static_cast<Internal*>(node);
      node = in->children[ChildIndex(in, key)].get();
    }
    Leaf* leaf = static_cast<Leaf*>(node);
    auto it = LowerBound(leaf, key);
    if (it != leaf->entries.end() && it->first == key) return &it->second;
    return nullptr;
  }
  const V* Find(const std::string& key) const {
    return const_cast<BTree*>(this)->Find(key);
  }

  /// Gets-or-default-constructs.
  V& operator[](const std::string& key) {
    V* v = Find(key);
    if (v != nullptr) return *v;
    return *Put(key, V{});
  }

  /// Removes `key`. Returns true if it was present.
  bool Erase(const std::string& key) {
    Node* node = root_.get();
    while (!node->is_leaf) {
      Internal* in = static_cast<Internal*>(node);
      node = in->children[ChildIndex(in, key)].get();
    }
    Leaf* leaf = static_cast<Leaf*>(node);
    auto it = LowerBound(leaf, key);
    if (it == leaf->entries.end() || it->first != key) return false;
    leaf->entries.erase(it);
    --size_;
    return true;
  }

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(Leaf* leaf, size_t index) : leaf_(leaf), index_(index) {
      SkipEmpty();
    }

    bool Valid() const { return leaf_ != nullptr; }
    const std::string& key() const { return leaf_->entries[index_].first; }
    V& value() const { return leaf_->entries[index_].second; }

    void Next() {
      ++index_;
      SkipEmpty();
    }

   private:
    void SkipEmpty() {
      while (leaf_ != nullptr && index_ >= leaf_->entries.size()) {
        leaf_ = leaf_->next;
        index_ = 0;
      }
    }
    Leaf* leaf_ = nullptr;
    size_t index_ = 0;

    friend class BTree;
  };

  /// Iterator at the first entry with key >= `key`.
  Iterator LowerBound(const std::string& key) {
    Node* node = root_.get();
    while (!node->is_leaf) {
      Internal* in = static_cast<Internal*>(node);
      node = in->children[ChildIndex(in, key)].get();
    }
    Leaf* leaf = static_cast<Leaf*>(node);
    auto it = LowerBound(leaf, key);
    return Iterator(leaf, static_cast<size_t>(it - leaf->entries.begin()));
  }

  Iterator Begin() { return Iterator(first_leaf_, 0); }

  /// Tree height (1 = just a leaf); for tests.
  int Height() const {
    int h = 1;
    const Node* node = root_.get();
    while (!node->is_leaf) {
      node = static_cast<const Internal*>(node)->children[0].get();
      ++h;
    }
    return h;
  }

  /// Verifies structural invariants (key ordering within and across nodes);
  /// for tests. Returns false on violation.
  bool CheckInvariants() const {
    std::string prev;
    bool first = true;
    const Leaf* leaf = first_leaf_;
    size_t counted = 0;
    while (leaf != nullptr) {
      for (const auto& e : leaf->entries) {
        if (!first && !(prev < e.first)) return false;
        prev = e.first;
        first = false;
        ++counted;
      }
      leaf = leaf->next;
    }
    return counted == size_;
  }

 private:
  struct SplitResult {
    bool happened = false;
    std::string separator;
    std::unique_ptr<Node> right;
  };

  static std::unique_ptr<Node> MakeLeaf() { return std::make_unique<Leaf>(); }

  static typename std::vector<std::pair<std::string, V>>::iterator LowerBound(
      Leaf* leaf, const std::string& key) {
    return std::lower_bound(
        leaf->entries.begin(), leaf->entries.end(), key,
        [](const auto& entry, const std::string& k) { return entry.first < k; });
  }

  static size_t ChildIndex(Internal* in, const std::string& key) {
    // First key > `key` determines the child: children[i] holds keys in
    // [keys[i-1], keys[i]).
    auto it = std::upper_bound(in->keys.begin(), in->keys.end(), key);
    return static_cast<size_t>(it - in->keys.begin());
  }
  static size_t ChildIndex(const Internal* in, const std::string& key) {
    return ChildIndex(const_cast<Internal*>(in), key);
  }

  SplitResult InsertRec(Node* node, const std::string& key, V* value) {
    if (node->is_leaf) {
      Leaf* leaf = static_cast<Leaf*>(node);
      auto it = LowerBound(leaf, key);
      if (it != leaf->entries.end() && it->first == key) {
        it->second = std::move(*value);  // assign
        return {};
      }
      leaf->entries.insert(it, {key, std::move(*value)});
      ++size_;
      if (leaf->entries.size() <= kLeafCapacity) return {};
      // Split the leaf.
      auto right = std::make_unique<Leaf>();
      const size_t mid = leaf->entries.size() / 2;
      right->entries.assign(
          std::make_move_iterator(leaf->entries.begin() + mid),
          std::make_move_iterator(leaf->entries.end()));
      leaf->entries.resize(mid);
      right->next = leaf->next;
      leaf->next = right.get();
      SplitResult result;
      result.happened = true;
      result.separator = right->entries.front().first;
      result.right = std::move(right);
      return result;
    }

    Internal* in = static_cast<Internal*>(node);
    const size_t idx = ChildIndex(in, key);
    SplitResult child_split = InsertRec(in->children[idx].get(), key, value);
    if (!child_split.happened) return {};
    in->keys.insert(in->keys.begin() + idx, child_split.separator);
    in->children.insert(in->children.begin() + idx + 1,
                        std::move(child_split.right));
    if (in->children.size() <= kFanout) return {};
    // Split the internal node.
    auto right = std::make_unique<Internal>();
    const size_t mid_key = in->keys.size() / 2;
    SplitResult result;
    result.happened = true;
    result.separator = in->keys[mid_key];
    right->keys.assign(std::make_move_iterator(in->keys.begin() + mid_key + 1),
                       std::make_move_iterator(in->keys.end()));
    right->children.assign(
        std::make_move_iterator(in->children.begin() + mid_key + 1),
        std::make_move_iterator(in->children.end()));
    in->keys.resize(mid_key);
    in->children.resize(mid_key + 1);
    result.right = std::move(right);
    return result;
  }

  std::unique_ptr<Node> root_;
  Leaf* first_leaf_ = nullptr;
  size_t size_ = 0;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_STORAGE_BTREE_H_
