#ifndef GLOBALDB_SRC_STORAGE_VALUE_H_
#define GLOBALDB_SRC_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace globaldb {

/// Column data types supported by the engine (sufficient for TPC-C,
/// Sysbench, and the SQL subset).
enum class ColumnType : uint8_t { kInt64 = 1, kDouble = 2, kString = 3 };

const char* ColumnTypeName(ColumnType type);

/// A single column value. Null is represented by std::monostate.
using Value = std::variant<std::monostate, int64_t, double, std::string>;

/// A row is a vector of values, positionally matching a TableSchema.
using Row = std::vector<Value>;

bool ValueIsNull(const Value& v);
/// SQL-style three-way comparison; nulls sort first.
int CompareValues(const Value& a, const Value& b);
std::string ValueToString(const Value& v);

/// Tagged (self-describing) row serialization for tuple images in redo
/// records and storage.
void EncodeRow(const Row& row, std::string* dst);
Status DecodeRow(Slice* input, Row* out);
inline Status DecodeRow(Slice input, Row* out) { return DecodeRow(&input, out); }

/// Order-preserving key encoding: the byte-wise (memcmp) order of encoded
/// keys equals the logical order of the values. Multi-column keys simply
/// concatenate encoded parts.
///
///  - int64: tag 'i', big-endian with the sign bit flipped.
///  - double: tag 'd', IEEE bits transformed for total order.
///  - string: tag 's', bytes with 0x00 -> 0x00 0xff escaping, 0x00 0x00
///    terminator (so "a" < "a\x00b" < "ab").
void EncodeKeyPart(const Value& v, std::string* dst);
RowKey EncodeKey(const Row& row, const std::vector<int>& key_columns);

/// Decodes one key part (tests / diagnostics).
Status DecodeKeyPart(Slice* input, Value* out);

/// Smallest key strictly greater than every key beginning with `prefix`
/// (for prefix range scans). Returns "" (= unbounded) when the prefix is
/// all 0xff bytes.
RowKey PrefixSuccessor(const RowKey& prefix);

}  // namespace globaldb

#endif  // GLOBALDB_SRC_STORAGE_VALUE_H_
