#ifndef GLOBALDB_SRC_STORAGE_SNAPSHOT_H_
#define GLOBALDB_SRC_STORAGE_SNAPSHOT_H_

#include <string>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/catalog.h"
#include "src/storage/shard_store.h"

namespace globaldb {

/// A checkpoint image of one shard: the full MVCC state (including
/// provisional versions of in-flight transactions) plus the catalog, taken
/// atomically with the kCheckpoint redo record at `checkpoint_lsn`. A
/// replica that installs the image and then replays the log from
/// checkpoint_lsn + 1 reaches exactly the primary's state.
struct ShardSnapshot {
  Lsn checkpoint_lsn = kInvalidLsn;
  /// Vacuum horizon the checkpoint was taken at (version chains below it
  /// were pruned before the image was cut).
  Timestamp checkpoint_ts = 0;
  /// Largest commit timestamp replayed into the image; seeds the
  /// installer's max-commit-timestamp (RCP input).
  Timestamp max_commit_ts = 0;
  std::string catalog_image;
  std::string store_image;

  bool valid() const { return checkpoint_lsn != kInvalidLsn; }
};

/// Serializes every table's version chains, keyed by table id.
std::string EncodeShardStore(const ShardStore& store);

/// Replaces `store`'s contents with the image (existing tables dropped).
Status InstallShardStore(Slice image, ShardStore* store);

/// Serializes the catalog as (create payload, ddl timestamp) pairs.
std::string EncodeCatalog(const Catalog& catalog);

/// Replays the image's DDL payloads into `catalog` (idempotent for tables
/// the catalog already knows).
Status InstallCatalog(Slice image, Catalog* catalog);

}  // namespace globaldb

#endif  // GLOBALDB_SRC_STORAGE_SNAPSHOT_H_
