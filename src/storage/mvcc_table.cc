#include "src/storage/mvcc_table.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/storage/value.h"

namespace globaldb {

namespace {

/// True if the chain has a live version: committed (or provisional) with
/// end_ts == kTimestampMax and no provisional end marker.
const TupleVersion* NewestLive(
    const std::vector<TupleVersion>& versions) {
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (it->end_ts == kTimestampMax && it->ended_by == kInvalidTxnId) {
      return &*it;
    }
    // A provisionally-ended version is still "live" for conflict purposes;
    // report it too (caller inspects ended_by).
    if (it->end_ts == kTimestampMax) return &*it;
  }
  return nullptr;
}

}  // namespace

Status MvccTable::Insert(const RowKey& key, std::string value, TxnId txn) {
  VersionChain& chain = chains_[key];
  const TupleVersion* live = NewestLive(chain.versions);
  if (live != nullptr) {
    if (live->begin_ts == 0 && live->created_by == txn &&
        live->ended_by == kInvalidTxnId) {
      return Status::AlreadyExists("duplicate key (own write)");
    }
    if (live->ended_by == txn) {
      // Re-insert after own delete: new provisional version.
    } else if (live->ended_by != kInvalidTxnId) {
      return Status::Aborted("write conflict with txn " +
                             std::to_string(live->ended_by));
    } else {
      return Status::AlreadyExists("duplicate key");
    }
  }
  TupleVersion v;
  v.created_by = txn;
  v.value = std::move(value);
  chain.versions.push_back(std::move(v));
  Touch(txn, key);
  return Status::OK();
}

Status MvccTable::Update(const RowKey& key, std::string value, TxnId txn,
                         Timestamp snapshot) {
  VersionChain* chain = FindChain(key);
  if (chain == nullptr || chain->versions.empty()) {
    return Status::NotFound("update: no such key");
  }
  TupleVersion* live = nullptr;
  for (auto it = chain->versions.rbegin(); it != chain->versions.rend();
       ++it) {
    if (it->end_ts == kTimestampMax) {
      live = &*it;
      break;
    }
  }
  if (live == nullptr) return Status::NotFound("update: key deleted");

  if (live->begin_ts == 0) {
    // Provisional version.
    if (live->created_by == txn) {
      live->value = std::move(value);  // overwrite own write
      return Status::OK();
    }
    return Status::Aborted("write conflict with txn " +
                           std::to_string(live->created_by));
  }
  if (live->ended_by != kInvalidTxnId && live->ended_by != txn) {
    return Status::Aborted("write conflict with txn " +
                           std::to_string(live->ended_by));
  }
  if (live->begin_ts > snapshot) {
    // First committer won; under SI the later writer must abort.
    return Status::Aborted("write conflict: version newer than snapshot");
  }
  live->ended_by = txn;
  TupleVersion v;
  v.created_by = txn;
  v.value = std::move(value);
  chain->versions.push_back(std::move(v));
  Touch(txn, key);
  return Status::OK();
}

Status MvccTable::Delete(const RowKey& key, TxnId txn, Timestamp snapshot) {
  VersionChain* chain = FindChain(key);
  if (chain == nullptr || chain->versions.empty()) {
    return Status::NotFound("delete: no such key");
  }
  TupleVersion* live = nullptr;
  for (auto it = chain->versions.rbegin(); it != chain->versions.rend();
       ++it) {
    if (it->end_ts == kTimestampMax) {
      live = &*it;
      break;
    }
  }
  if (live == nullptr) return Status::NotFound("delete: key already deleted");

  if (live->begin_ts == 0) {
    if (live->created_by == txn) {
      // Delete own provisional insert: mark so commit hides it entirely.
      live->ended_by = txn;
      return Status::OK();
    }
    return Status::Aborted("write conflict with txn " +
                           std::to_string(live->created_by));
  }
  if (live->ended_by != kInvalidTxnId && live->ended_by != txn) {
    return Status::Aborted("write conflict with txn " +
                           std::to_string(live->ended_by));
  }
  if (live->begin_ts > snapshot) {
    return Status::Aborted("write conflict: version newer than snapshot");
  }
  live->ended_by = txn;
  Touch(txn, key);
  return Status::OK();
}

void MvccTable::ApplyInsert(const RowKey& key, std::string value, TxnId txn) {
  VersionChain& chain = chains_[key];
  TupleVersion v;
  v.created_by = txn;
  v.value = std::move(value);
  chain.versions.push_back(std::move(v));
  Touch(txn, key);
}

void MvccTable::ApplyUpdate(const RowKey& key, std::string value, TxnId txn) {
  VersionChain& chain = chains_[key];
  for (auto it = chain.versions.rbegin(); it != chain.versions.rend(); ++it) {
    if (it->end_ts == kTimestampMax) {
      if (it->begin_ts == 0 && it->created_by == txn) {
        // Second update by the same txn overwrites its provisional version.
        it->value = std::move(value);
        return;
      }
      it->ended_by = txn;
      break;
    }
  }
  TupleVersion v;
  v.created_by = txn;
  v.value = std::move(value);
  chain.versions.push_back(std::move(v));
  Touch(txn, key);
}

void MvccTable::ApplyDelete(const RowKey& key, TxnId txn) {
  VersionChain& chain = chains_[key];
  for (auto it = chain.versions.rbegin(); it != chain.versions.rend(); ++it) {
    if (it->end_ts == kTimestampMax) {
      it->ended_by = txn;
      Touch(txn, key);
      return;
    }
  }
}

void MvccTable::CommitTxn(TxnId txn, Timestamp ts) {
  auto it = touched_.find(txn);
  if (it == touched_.end()) return;
  for (const RowKey& key : it->second) {
    VersionChain* chain = FindChain(key);
    if (chain == nullptr) continue;
    for (TupleVersion& v : chain->versions) {
      if (v.created_by == txn && v.begin_ts == 0) v.begin_ts = ts;
      if (v.ended_by == txn) {
        v.end_ts = ts;
        v.ended_by = kInvalidTxnId;
      }
    }
  }
  touched_.erase(it);
}

void MvccTable::AbortTxn(TxnId txn) {
  auto it = touched_.find(txn);
  if (it == touched_.end()) return;
  for (const RowKey& key : it->second) {
    VersionChain* chain = FindChain(key);
    if (chain == nullptr) continue;
    auto& versions = chain->versions;
    versions.erase(
        std::remove_if(versions.begin(), versions.end(),
                       [txn](const TupleVersion& v) {
                         return v.created_by == txn && v.begin_ts == 0;
                       }),
        versions.end());
    for (TupleVersion& v : versions) {
      if (v.ended_by == txn) v.ended_by = kInvalidTxnId;
    }
  }
  touched_.erase(it);
}

bool MvccTable::VisibleValue(const VersionChain& chain, Timestamp snapshot,
                             TxnId reader, std::string* value,
                             TxnId* provisional) {
  for (auto it = chain.versions.rbegin(); it != chain.versions.rend(); ++it) {
    const TupleVersion& v = *it;
    if (v.begin_ts == 0) {
      // Provisional version.
      if (v.created_by == reader) {
        if (v.ended_by == reader) return false;  // deleted own insert
        *value = v.value;
        return true;
      }
      if (*provisional == kInvalidTxnId) *provisional = v.created_by;
      continue;  // invisible to other snapshots
    }
    // Committed version: standard MVCC window check. A provisional end by
    // the reader itself hides the version from the reader.
    if (v.ended_by == reader && reader != kInvalidTxnId) {
      if (v.begin_ts <= snapshot) return false;  // reader deleted it
      continue;
    }
    if (v.ended_by != kInvalidTxnId && *provisional == kInvalidTxnId) {
      // Another txn is deleting/updating; the committed value is still
      // visible, but note the writer for replica pending-waits.
      *provisional = v.ended_by;
    }
    if (v.begin_ts <= snapshot && snapshot < v.end_ts) {
      *value = v.value;
      return true;
    }
  }
  return false;
}

ReadResult MvccTable::Read(const RowKey& key, Timestamp snapshot,
                           TxnId reader) const {
  ReadResult result;
  const VersionChain* chain = chains_.Find(key);
  if (chain == nullptr) return result;
  result.found = VisibleValue(*chain, snapshot, reader, &result.value,
                              &result.provisional_txn);
  return result;
}

std::vector<MvccTable::ScanEntry> MvccTable::Scan(
    const RowKey& start, const RowKey& end, Timestamp snapshot, TxnId reader,
    size_t limit, std::vector<TxnId>* provisional) const {
  std::vector<ScanEntry> out;
  for (auto it = chains_.LowerBound(start); it.Valid(); it.Next()) {
    if (!end.empty() && !(it.key() < end)) break;
    if (out.size() >= limit) break;
    TxnId pending = kInvalidTxnId;
    std::string value;
    if (VisibleValue(it.value(), snapshot, reader, &value, &pending)) {
      out.push_back({it.key(), std::move(value)});
    }
    if (pending != kInvalidTxnId && provisional != nullptr) {
      provisional->push_back(pending);
    }
  }
  return out;
}

MvccTable::PagedScanResult MvccTable::ScanPaged(
    const RowKey& start, const RowKey& end, const PagedScanOptions& opts,
    std::vector<TxnId>* provisional) const {
  PagedScanResult out;
  size_t bytes = 0;
  for (auto it = chains_.LowerBound(start); it.Valid(); it.Next()) {
    if (!end.empty() && !(it.key() < end)) break;
    if (!opts.reverse && out.rows.size() >= opts.limit) {
      out.limit_hit = true;
      break;
    }
    ++out.rows_examined;
    TxnId pending = kInvalidTxnId;
    std::string value;
    const bool visible =
        VisibleValue(it.value(), opts.snapshot, opts.reader, &value, &pending);
    if (pending != kInvalidTxnId && provisional != nullptr) {
      provisional->push_back(pending);
    }
    if (!visible) continue;
    if (opts.filter_col >= 0) {
      Row row;
      bool match = false;
      if (DecodeRow(Slice(value), &row).ok() &&
          static_cast<size_t>(opts.filter_col) < row.size()) {
        const int64_t* v = std::get_if<int64_t>(&row[opts.filter_col]);
        match = v != nullptr && *v == opts.filter_eq;
      }
      if (!match) {
        ++out.rows_filtered;
        continue;
      }
    }
    if (opts.reverse) {
      // Forward-only leaves: keep a sliding window of the last `limit`
      // matches, reversed on return.
      out.rows.push_back({it.key(), std::move(value)});
      if (out.rows.size() > opts.limit) {
        out.rows.erase(out.rows.begin());
        out.limit_hit = true;
      }
      continue;
    }
    const size_t row_bytes = it.key().size() + value.size() + 8;
    if (bytes + row_bytes > opts.max_bytes && !out.rows.empty()) {
      out.truncated = true;
      out.resume_key = it.key();
      break;
    }
    bytes += row_bytes;
    out.rows.push_back({it.key(), std::move(value)});
    if (out.rows.size() >= opts.limit) {
      out.limit_hit = true;
      break;
    }
  }
  if (opts.reverse) {
    std::reverse(out.rows.begin(), out.rows.end());
    if (out.rows.size() >= opts.limit) out.limit_hit = true;
  }
  return out;
}

size_t MvccTable::VersionCount() const {
  size_t total = 0;
  for (auto it = chains_.Begin(); it.Valid(); it.Next()) {
    total += it.value().versions.size();
  }
  return total;
}

void MvccTable::EncodeTo(std::string* dst) const {
  PutVarint64(dst, chains_.size());
  for (auto it = chains_.Begin(); it.Valid(); it.Next()) {
    PutLengthPrefixed(dst, it.key());
    const auto& versions = it.value().versions;
    PutVarint64(dst, versions.size());
    for (const TupleVersion& v : versions) {
      PutVarint64(dst, v.begin_ts);
      PutVarint64(dst, v.end_ts);
      PutVarint64(dst, v.created_by);
      PutVarint64(dst, v.ended_by);
      PutLengthPrefixed(dst, v.value);
    }
  }
}

Status MvccTable::DecodeFrom(Slice* input) {
  uint64_t num_chains = 0;
  if (!GetVarint64(input, &num_chains)) {
    return Status::Corruption("table image: chain count");
  }
  for (uint64_t c = 0; c < num_chains; ++c) {
    Slice key;
    uint64_t num_versions = 0;
    if (!GetLengthPrefixed(input, &key) ||
        !GetVarint64(input, &num_versions)) {
      return Status::Corruption("table image: chain header");
    }
    const RowKey row_key = key.ToString();
    VersionChain& chain = chains_[row_key];
    chain.versions.reserve(num_versions);
    for (uint64_t i = 0; i < num_versions; ++i) {
      TupleVersion v;
      Slice value;
      if (!GetVarint64(input, &v.begin_ts) || !GetVarint64(input, &v.end_ts) ||
          !GetVarint64(input, &v.created_by) ||
          !GetVarint64(input, &v.ended_by) ||
          !GetLengthPrefixed(input, &value)) {
        return Status::Corruption("table image: version");
      }
      v.value = value.ToString();
      // Rebuild provisional bookkeeping so replayed COMMIT/ABORT records
      // (and promotion-time in-doubt aborts) resolve installed versions.
      if (v.begin_ts == 0) Touch(v.created_by, row_key);
      if (v.ended_by != kInvalidTxnId && v.ended_by != v.created_by) {
        Touch(v.ended_by, row_key);
      }
      chain.versions.push_back(std::move(v));
    }
  }
  return Status::OK();
}

std::vector<TxnId> MvccTable::ProvisionalTxns() const {
  std::vector<TxnId> out;
  out.reserve(touched_.size());
  for (const auto& [txn, keys] : touched_) out.push_back(txn);
  return out;
}

size_t MvccTable::Vacuum(Timestamp horizon) {
  size_t reclaimed = 0;
  for (auto it = chains_.Begin(); it.Valid(); it.Next()) {
    auto& versions = it.value().versions;
    const size_t before = versions.size();
    versions.erase(std::remove_if(versions.begin(), versions.end(),
                                  [horizon](const TupleVersion& v) {
                                    return v.begin_ts != 0 &&
                                           v.end_ts != kTimestampMax &&
                                           v.end_ts <= horizon;
                                  }),
                   versions.end());
    reclaimed += before - versions.size();
  }
  return reclaimed;
}

}  // namespace globaldb
