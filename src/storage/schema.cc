#include "src/storage/schema.h"

#include "src/common/codec.h"
#include "src/common/hash.h"
#include "src/common/logging.h"

namespace globaldb {

void TableSchema::EncodeTo(std::string* dst) const {
  PutVarint32(dst, id);
  PutLengthPrefixed(dst, name);
  PutVarint32(dst, static_cast<uint32_t>(columns.size()));
  for (const Column& c : columns) {
    PutLengthPrefixed(dst, c.name);
    dst->push_back(static_cast<char>(c.type));
  }
  PutVarint32(dst, static_cast<uint32_t>(key_columns.size()));
  for (int k : key_columns) PutVarint32(dst, static_cast<uint32_t>(k));
  PutVarint32(dst, static_cast<uint32_t>(distribution_column));
  dst->push_back(static_cast<char>(distribution));
}

StatusOr<TableSchema> TableSchema::Decode(Slice input) {
  TableSchema s;
  Slice name_slice;
  uint32_t ncols = 0;
  if (!GetVarint32(&input, &s.id) || !GetLengthPrefixed(&input, &name_slice) ||
      !GetVarint32(&input, &ncols)) {
    return Status::Corruption("schema: header");
  }
  s.name = name_slice.ToString();
  for (uint32_t i = 0; i < ncols; ++i) {
    Slice cname;
    if (!GetLengthPrefixed(&input, &cname) || input.empty()) {
      return Status::Corruption("schema: column");
    }
    Column c;
    c.name = cname.ToString();
    c.type = static_cast<ColumnType>(input[0]);
    input.RemovePrefix(1);
    s.columns.push_back(std::move(c));
  }
  uint32_t nkeys = 0;
  if (!GetVarint32(&input, &nkeys)) return Status::Corruption("schema: keys");
  for (uint32_t i = 0; i < nkeys; ++i) {
    uint32_t k = 0;
    if (!GetVarint32(&input, &k)) return Status::Corruption("schema: key");
    s.key_columns.push_back(static_cast<int>(k));
  }
  uint32_t dist_col = 0;
  if (!GetVarint32(&input, &dist_col) || input.empty()) {
    return Status::Corruption("schema: distribution");
  }
  s.distribution_column = static_cast<int>(dist_col);
  s.distribution = static_cast<DistributionKind>(input[0]);
  return s;
}

Status TableSchema::ValidateRow(const Row& row) const {
  if (row.size() != columns.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " +
                                   std::to_string(columns.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (ValueIsNull(row[i])) {
      for (int k : key_columns) {
        if (static_cast<size_t>(k) == i) {
          return Status::InvalidArgument("null in key column " +
                                         columns[i].name);
        }
      }
      continue;
    }
    const bool type_ok =
        (columns[i].type == ColumnType::kInt64 &&
         std::holds_alternative<int64_t>(row[i])) ||
        (columns[i].type == ColumnType::kDouble &&
         (std::holds_alternative<double>(row[i]) ||
          std::holds_alternative<int64_t>(row[i]))) ||
        (columns[i].type == ColumnType::kString &&
         std::holds_alternative<std::string>(row[i]));
    if (!type_ok) {
      return Status::InvalidArgument("type mismatch in column " +
                                     columns[i].name);
    }
  }
  return Status::OK();
}

ShardId RouteToShard(const TableSchema& schema, const Value& dist_value,
                     uint32_t num_shards) {
  GDB_CHECK(num_shards > 0);
  if (schema.distribution == DistributionKind::kReplicated) {
    return 0;  // canonical home shard; reads may use any shard
  }
  std::string encoded;
  EncodeKeyPart(dist_value, &encoded);
  return static_cast<ShardId>(Hash64(encoded) % num_shards);
}

ShardId RouteRowToShard(const TableSchema& schema, const Row& row,
                        uint32_t num_shards) {
  GDB_CHECK(schema.distribution_column >= 0 &&
            static_cast<size_t>(schema.distribution_column) < row.size());
  return RouteToShard(schema, row[schema.distribution_column], num_shards);
}

}  // namespace globaldb
