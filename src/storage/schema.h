#ifndef GLOBALDB_SRC_STORAGE_SCHEMA_H_
#define GLOBALDB_SRC_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/storage/value.h"

namespace globaldb {

/// One column definition.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

/// How a table's rows map to shards.
enum class DistributionKind : uint8_t {
  kHash = 0,       // Hash64(distribution column) % num_shards
  kReplicated = 1  // full copy on every shard (small dimension tables)
};

/// Table definition. Rows are positional; the primary key is a subset of
/// columns; the distribution column routes rows to shards.
struct TableSchema {
  TableId id = kInvalidTableId;
  std::string name;
  std::vector<Column> columns;
  std::vector<int> key_columns;
  int distribution_column = 0;
  DistributionKind distribution = DistributionKind::kHash;

  int FindColumn(const std::string& column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Encodes the full primary key of `row`.
  RowKey PrimaryKeyOf(const Row& row) const {
    return EncodeKey(row, key_columns);
  }

  /// Serialization (used as the DDL redo payload and for catalog gossip).
  void EncodeTo(std::string* dst) const;
  static StatusOr<TableSchema> Decode(Slice input);

  /// Validates `row` against the schema (arity and types; nulls allowed in
  /// non-key columns).
  Status ValidateRow(const Row& row) const;
};

/// Routes a row (or a distribution-key value) to a shard.
ShardId RouteToShard(const TableSchema& schema, const Value& dist_value,
                     uint32_t num_shards);
ShardId RouteRowToShard(const TableSchema& schema, const Row& row,
                        uint32_t num_shards);

}  // namespace globaldb

#endif  // GLOBALDB_SRC_STORAGE_SCHEMA_H_
