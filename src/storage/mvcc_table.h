#ifndef GLOBALDB_SRC_STORAGE_MVCC_TABLE_H_
#define GLOBALDB_SRC_STORAGE_MVCC_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/btree.h"

namespace globaldb {

/// One version of a tuple. A version is *provisional* while its creating
/// transaction is uncommitted (begin_ts == 0); commit stamps begin_ts.
/// A live version has end_ts == kTimestampMax; a delete/update stamps
/// end_ts at the deleting transaction's commit.
struct TupleVersion {
  Timestamp begin_ts = 0;             // 0 => provisional
  Timestamp end_ts = kTimestampMax;   // kTimestampMax => live
  TxnId created_by = kInvalidTxnId;
  TxnId ended_by = kInvalidTxnId;     // provisional delete/update marker
  std::string value;
};

/// Result of a snapshot read.
struct ReadResult {
  bool found = false;
  std::string value;
  /// Non-zero when the chain contains an unresolved provisional write by
  /// another transaction. Replica readers use this with the pending-commit
  /// set to implement the paper's tuple-lock wait; primary snapshot readers
  /// ignore it (provisional versions are simply invisible).
  TxnId provisional_txn = kInvalidTxnId;
};

/// A multi-versioned table shard: a B+-tree of version chains keyed by the
/// encoded primary key. The same code runs on primaries (with write-conflict
/// checks) and replicas (blind replay via the Apply* methods).
///
/// Visibility (MVCC): version v is visible at snapshot S iff
///   v.begin_ts != 0 && v.begin_ts <= S && S < v.end_ts.
/// This realizes the paper's R.1/R.2 once timestamps respect real-time
/// order (GClock commit-wait or the GTM total order).
class MvccTable {
 public:
  explicit MvccTable(TableId id) : id_(id) {}

  MvccTable(const MvccTable&) = delete;
  MvccTable& operator=(const MvccTable&) = delete;

  TableId id() const { return id_; }

  // --- Primary write path (returns conflicts) ----------------------------

  /// Fails with AlreadyExists if a live version is visible at latest.
  Status Insert(const RowKey& key, std::string value, TxnId txn);

  /// Fails with Aborted on a write-write conflict: the newest committed
  /// version is newer than `snapshot` (first-committer-wins under SI), or
  /// another transaction holds a provisional write. Fails with NotFound if
  /// no live version exists.
  Status Update(const RowKey& key, std::string value, TxnId txn,
                Timestamp snapshot);
  Status Delete(const RowKey& key, TxnId txn, Timestamp snapshot);

  // --- Replica replay path (no checks; log order is authoritative) -------

  void ApplyInsert(const RowKey& key, std::string value, TxnId txn);
  void ApplyUpdate(const RowKey& key, std::string value, TxnId txn);
  void ApplyDelete(const RowKey& key, TxnId txn);

  // --- Commit / abort -----------------------------------------------------

  /// Stamps all of txn's provisional versions/ends with `ts`.
  void CommitTxn(TxnId txn, Timestamp ts);
  /// Discards txn's provisional versions and clears its end markers.
  void AbortTxn(TxnId txn);
  /// True if txn has provisional state in this table.
  bool HasTxn(TxnId txn) const { return touched_.count(txn) > 0; }

  // --- Read path -----------------------------------------------------------

  ReadResult Read(const RowKey& key, Timestamp snapshot,
                  TxnId reader = kInvalidTxnId) const;

  struct ScanEntry {
    RowKey key;
    std::string value;
  };
  /// Ordered scan of [start, end) — an empty `end` means "to +inf". Collects
  /// unresolved provisional txns seen along the way into *provisional (may
  /// be null).
  std::vector<ScanEntry> Scan(const RowKey& start, const RowKey& end,
                              Timestamp snapshot, TxnId reader, size_t limit,
                              std::vector<TxnId>* provisional) const;

  /// Pushed-down scan options for the batched scan path (DESIGN.md §14).
  struct PagedScanOptions {
    Timestamp snapshot = 0;
    TxnId reader = kInvalidTxnId;
    size_t limit = SIZE_MAX;  // post-filter row cap
    /// Return the LAST `limit` matching rows of the range, descending by
    /// key. Requires a finite limit; reverse scans are never byte-capped
    /// (the last rows aren't known until the walk finishes).
    bool reverse = false;
    int32_t filter_col = -1;  // -1 = none; else int64 equality on column
    int64_t filter_eq = 0;
    /// Approximate reply byte budget (forward scans). The scan stops with
    /// `truncated` once emitting the next row would exceed it — but always
    /// emits at least one row so continuation makes progress.
    size_t max_bytes = SIZE_MAX;
  };
  struct PagedScanResult {
    std::vector<ScanEntry> rows;
    bool truncated = false;   // stopped on max_bytes; resume_key valid
    RowKey resume_key;        // next key a resumed scan should start from
    bool limit_hit = false;   // the pushed-down limit was satisfied
    size_t rows_examined = 0; // version chains visited (CPU accounting)
    size_t rows_filtered = 0; // visible rows dropped by the filter
  };
  /// Scan with server-side filtering, limit pushdown, reverse emulation
  /// (forward walk keeping the last `limit` matches — the B+-tree links
  /// leaves forward only), and byte-capped pagination. Collects unresolved
  /// provisional txns for every examined chain, filtered or not.
  PagedScanResult ScanPaged(const RowKey& start, const RowKey& end,
                            const PagedScanOptions& opts,
                            std::vector<TxnId>* provisional) const;

  /// Number of distinct keys ever written (including dead ones).
  size_t KeyCount() const { return chains_.size(); }

  /// Total versions across all chains (the `storage.versions_live` gauge).
  size_t VersionCount() const;

  /// Drops versions that ended at or before `horizon` (no snapshot at or
  /// below the horizon is active). Returns versions reclaimed.
  size_t Vacuum(Timestamp horizon);

  // --- Checkpoint snapshot -------------------------------------------------

  /// Appends a binary image of every version chain (including provisional
  /// versions of in-flight transactions) to *dst.
  void EncodeTo(std::string* dst) const;

  /// Rebuilds a freshly constructed table from an EncodeTo image, restoring
  /// chains and the provisional-transaction bookkeeping (touched_) so
  /// commit/abort replay works after install. Call only on an empty table.
  Status DecodeFrom(Slice* input);

  /// Transactions with unresolved provisional state in this table. A
  /// snapshot installer uses this to rebuild the replica's pending-commit
  /// set; a promoted primary uses it to abort in-doubt transactions.
  std::vector<TxnId> ProvisionalTxns() const;

  /// Keys `txn` has provisionally written in this table (nullptr when none).
  /// A promoted primary pins these with row locks while the transaction's
  /// outcome is in doubt, so new writers queue instead of racing the
  /// resolution (DESIGN.md §13).
  const std::vector<RowKey>* TouchedKeys(TxnId txn) const {
    auto it = touched_.find(txn);
    return it == touched_.end() ? nullptr : &it->second;
  }

 private:
  struct VersionChain {
    // Oldest first; newest at the back.
    std::vector<TupleVersion> versions;
  };

  /// Core visibility walk shared by Read and Scan.
  static bool VisibleValue(const VersionChain& chain, Timestamp snapshot,
                           TxnId reader, std::string* value,
                           TxnId* provisional);

  VersionChain* FindChain(const RowKey& key) { return chains_.Find(key); }
  void Touch(TxnId txn, const RowKey& key) { touched_[txn].push_back(key); }

  TableId id_;
  mutable BTree<VersionChain> chains_;
  std::unordered_map<TxnId, std::vector<RowKey>> touched_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_STORAGE_MVCC_TABLE_H_
