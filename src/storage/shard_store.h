#ifndef GLOBALDB_SRC_STORAGE_SHARD_STORE_H_
#define GLOBALDB_SRC_STORAGE_SHARD_STORE_H_

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/storage/mvcc_table.h"

namespace globaldb {

/// The collection of MVCC tables hosted by one data-node shard (primary or
/// replica). Commit/abort fan out to every table the transaction touched.
class ShardStore {
 public:
  explicit ShardStore(ShardId shard) : shard_(shard) {}

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  ShardId shard() const { return shard_; }

  MvccTable* GetOrCreateTable(TableId id) {
    auto it = tables_.find(id);
    if (it == tables_.end()) {
      it = tables_.emplace(id, std::make_unique<MvccTable>(id)).first;
    }
    return it->second.get();
  }

  MvccTable* GetTable(TableId id) const {
    auto it = tables_.find(id);
    return it == tables_.end() ? nullptr : it->second.get();
  }

  void DropTable(TableId id) { tables_.erase(id); }

  void CommitTxn(TxnId txn, Timestamp ts) {
    for (auto& [id, table] : tables_) {
      if (table->HasTxn(txn)) table->CommitTxn(txn, ts);
    }
  }

  void AbortTxn(TxnId txn) {
    for (auto& [id, table] : tables_) {
      if (table->HasTxn(txn)) table->AbortTxn(txn);
    }
  }

  size_t NumTables() const { return tables_.size(); }

  size_t Vacuum(Timestamp horizon) {
    size_t reclaimed = 0;
    for (auto& [id, table] : tables_) reclaimed += table->Vacuum(horizon);
    return reclaimed;
  }

  /// Total live versions across all tables (the `storage.versions_live`
  /// gauge the soak bench asserts stays bounded).
  size_t VersionCount() const {
    size_t total = 0;
    for (const auto& [id, table] : tables_) total += table->VersionCount();
    return total;
  }

  /// Total distinct row chains across all tables. VersionCount() minus this
  /// is the reclaimable-garbage gauge (superseded versions + provisional
  /// writes) the durability soak bench asserts stays bounded.
  size_t KeyCount() const {
    size_t total = 0;
    for (const auto& [id, table] : tables_) total += table->KeyCount();
    return total;
  }

  /// Transactions with unresolved provisional state anywhere in the shard.
  std::vector<TxnId> ProvisionalTxns() const {
    std::vector<TxnId> out;
    for (const auto& [id, table] : tables_) {
      for (TxnId txn : table->ProvisionalTxns()) out.push_back(txn);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Drops every table; snapshot install rebuilds from the image.
  void Clear() { tables_.clear(); }

  const std::map<TableId, std::unique_ptr<MvccTable>>& tables() const {
    return tables_;
  }

 private:
  ShardId shard_;
  std::map<TableId, std::unique_ptr<MvccTable>> tables_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_STORAGE_SHARD_STORE_H_
