#include "src/storage/snapshot.h"

#include "src/common/codec.h"

namespace globaldb {

std::string EncodeShardStore(const ShardStore& store) {
  std::string image;
  PutVarint64(&image, store.tables().size());
  for (const auto& [id, table] : store.tables()) {
    PutVarint32(&image, id);
    std::string table_image;
    table->EncodeTo(&table_image);
    PutLengthPrefixed(&image, table_image);
  }
  return image;
}

Status InstallShardStore(Slice image, ShardStore* store) {
  store->Clear();
  uint64_t num_tables = 0;
  if (!GetVarint64(&image, &num_tables)) {
    return Status::Corruption("store image: table count");
  }
  for (uint64_t i = 0; i < num_tables; ++i) {
    uint32_t id = 0;
    Slice table_image;
    if (!GetVarint32(&image, &id) ||
        !GetLengthPrefixed(&image, &table_image)) {
      return Status::Corruption("store image: table header");
    }
    MvccTable* table = store->GetOrCreateTable(id);
    GDB_RETURN_IF_ERROR(table->DecodeFrom(&table_image));
    if (!table_image.empty()) {
      return Status::Corruption("store image: trailing table bytes");
    }
  }
  return Status::OK();
}

std::string EncodeCatalog(const Catalog& catalog) {
  std::string image;
  const auto tables = catalog.AllTables();
  PutVarint64(&image, tables.size());
  for (const TableSchema* schema : tables) {
    PutLengthPrefixed(&image, Catalog::MakeCreatePayload(*schema));
    PutVarint64(&image, catalog.LastDdlTimestamp(schema->id));
  }
  return image;
}

Status InstallCatalog(Slice image, Catalog* catalog) {
  uint64_t num_tables = 0;
  if (!GetVarint64(&image, &num_tables)) {
    return Status::Corruption("catalog image: table count");
  }
  for (uint64_t i = 0; i < num_tables; ++i) {
    Slice payload;
    uint64_t ddl_ts = 0;
    if (!GetLengthPrefixed(&image, &payload) ||
        !GetVarint64(&image, &ddl_ts)) {
      return Status::Corruption("catalog image: entry");
    }
    GDB_RETURN_IF_ERROR(catalog->ApplyDdl(payload, ddl_ts));
  }
  return Status::OK();
}

}  // namespace globaldb
