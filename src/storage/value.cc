#include "src/storage/value.h"

#include <cmath>
#include <cstring>

#include "src/common/codec.h"
#include "src/common/logging.h"

namespace globaldb {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

// Maps a double to a uint64 whose unsigned order equals the double's total
// order (negative values get their bits flipped; positives get the sign bit
// set).
uint64_t DoubleToOrderedBits(double d) {
  uint64_t bits;
  memcpy(&bits, &d, 8);
  if (bits & (1ULL << 63)) {
    return ~bits;
  }
  return bits | (1ULL << 63);
}

double OrderedBitsToDouble(uint64_t bits) {
  if (bits & (1ULL << 63)) {
    bits &= ~(1ULL << 63);
  } else {
    bits = ~bits;
  }
  double d;
  memcpy(&d, &bits, 8);
  return d;
}

void PutBigEndian64(std::string* dst, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool GetBigEndian64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r = (r << 8) | static_cast<unsigned char>((*input)[i]);
  }
  input->RemovePrefix(8);
  *v = r;
  return true;
}

}  // namespace

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "?";
}

bool ValueIsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

int CompareValues(const Value& a, const Value& b) {
  if (a.index() != b.index()) {
    // Cross-type numeric comparison (int vs double) compares numerically.
    if (std::holds_alternative<int64_t>(a) &&
        std::holds_alternative<double>(b)) {
      double av = static_cast<double>(std::get<int64_t>(a));
      double bv = std::get<double>(b);
      return av < bv ? -1 : (av > bv ? 1 : 0);
    }
    if (std::holds_alternative<double>(a) &&
        std::holds_alternative<int64_t>(b)) {
      return -CompareValues(b, a);
    }
    return a.index() < b.index() ? -1 : 1;  // nulls first
  }
  if (ValueIsNull(a)) return 0;
  if (std::holds_alternative<int64_t>(a)) {
    int64_t av = std::get<int64_t>(a), bv = std::get<int64_t>(b);
    return av < bv ? -1 : (av > bv ? 1 : 0);
  }
  if (std::holds_alternative<double>(a)) {
    double av = std::get<double>(a), bv = std::get<double>(b);
    return av < bv ? -1 : (av > bv ? 1 : 0);
  }
  const std::string& as = std::get<std::string>(a);
  const std::string& bs = std::get<std::string>(b);
  return as < bs ? -1 : (as > bs ? 1 : 0);
}

std::string ValueToString(const Value& v) {
  if (ValueIsNull(v)) return "NULL";
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%g", std::get<double>(v));
    return buf;
  }
  return std::get<std::string>(v);
}

void EncodeRow(const Row& row, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    if (ValueIsNull(v)) {
      dst->push_back(static_cast<char>(kTagNull));
    } else if (std::holds_alternative<int64_t>(v)) {
      dst->push_back(static_cast<char>(kTagInt));
      PutVarsint64(dst, std::get<int64_t>(v));
    } else if (std::holds_alternative<double>(v)) {
      dst->push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      double d = std::get<double>(v);
      memcpy(&bits, &d, 8);
      PutFixed64(dst, bits);
    } else {
      dst->push_back(static_cast<char>(kTagString));
      PutLengthPrefixed(dst, std::get<std::string>(v));
    }
  }
}

Status DecodeRow(Slice* input, Row* out) {
  out->clear();
  uint32_t n = 0;
  if (!GetVarint32(input, &n)) return Status::Corruption("row: bad count");
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (input->empty()) return Status::Corruption("row: truncated");
    const uint8_t tag = static_cast<uint8_t>((*input)[0]);
    input->RemovePrefix(1);
    switch (tag) {
      case kTagNull:
        out->emplace_back(std::monostate{});
        break;
      case kTagInt: {
        int64_t v;
        if (!GetVarsint64(input, &v)) return Status::Corruption("row: int");
        out->emplace_back(v);
        break;
      }
      case kTagDouble: {
        uint64_t bits;
        if (!GetFixed64(input, &bits)) return Status::Corruption("row: dbl");
        double d;
        memcpy(&d, &bits, 8);
        out->emplace_back(d);
        break;
      }
      case kTagString: {
        Slice s;
        if (!GetLengthPrefixed(input, &s)) {
          return Status::Corruption("row: str");
        }
        out->emplace_back(s.ToString());
        break;
      }
      default:
        return Status::Corruption("row: bad tag");
    }
  }
  return Status::OK();
}

void EncodeKeyPart(const Value& v, std::string* dst) {
  if (ValueIsNull(v)) {
    dst->push_back('0');  // nulls sort before all typed values
    return;
  }
  if (std::holds_alternative<int64_t>(v)) {
    dst->push_back('i');
    const uint64_t flipped =
        static_cast<uint64_t>(std::get<int64_t>(v)) ^ (1ULL << 63);
    PutBigEndian64(dst, flipped);
    return;
  }
  if (std::holds_alternative<double>(v)) {
    dst->push_back('d');
    PutBigEndian64(dst, DoubleToOrderedBits(std::get<double>(v)));
    return;
  }
  dst->push_back('s');
  for (char c : std::get<std::string>(v)) {
    dst->push_back(c);
    if (c == '\x00') dst->push_back('\xff');  // escape embedded zero
  }
  dst->push_back('\x00');
  dst->push_back('\x00');
}

RowKey EncodeKey(const Row& row, const std::vector<int>& key_columns) {
  RowKey key;
  for (int col : key_columns) {
    GDB_CHECK(col >= 0 && static_cast<size_t>(col) < row.size())
        << "key column " << col << " out of range";
    EncodeKeyPart(row[col], &key);
  }
  return key;
}

Status DecodeKeyPart(Slice* input, Value* out) {
  if (input->empty()) return Status::Corruption("key: empty");
  const char tag = (*input)[0];
  input->RemovePrefix(1);
  switch (tag) {
    case '0':
      *out = std::monostate{};
      return Status::OK();
    case 'i': {
      uint64_t bits;
      if (!GetBigEndian64(input, &bits)) return Status::Corruption("key: int");
      *out = static_cast<int64_t>(bits ^ (1ULL << 63));
      return Status::OK();
    }
    case 'd': {
      uint64_t bits;
      if (!GetBigEndian64(input, &bits)) return Status::Corruption("key: dbl");
      *out = OrderedBitsToDouble(bits);
      return Status::OK();
    }
    case 's': {
      std::string s;
      while (true) {
        if (input->empty()) return Status::Corruption("key: unterminated str");
        char c = (*input)[0];
        input->RemovePrefix(1);
        if (c == '\x00') {
          if (input->empty()) return Status::Corruption("key: bad escape");
          char next = (*input)[0];
          input->RemovePrefix(1);
          if (next == '\x00') break;  // terminator
          if (next != '\xff') return Status::Corruption("key: bad escape");
          s.push_back('\x00');
        } else {
          s.push_back(c);
        }
      }
      *out = std::move(s);
      return Status::OK();
    }
    default:
      return Status::Corruption("key: bad tag");
  }
}

RowKey PrefixSuccessor(const RowKey& prefix) {
  RowKey result = prefix;
  while (!result.empty()) {
    const unsigned char last = static_cast<unsigned char>(result.back());
    if (last != 0xff) {
      result.back() = static_cast<char>(last + 1);
      return result;
    }
    result.pop_back();
  }
  return result;  // empty = unbounded
}

}  // namespace globaldb
