#include "src/replication/replica_applier.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace globaldb {

ReplicaApplier::ReplicaApplier(sim::Simulator* sim, sim::Network* network,
                               NodeId self, ShardId shard, ShardStore* store,
                               Catalog* catalog, sim::CpuScheduler* cpu,
                               ApplierOptions options)
    : sim_(sim),
      self_(self),
      server_(network, self),
      shard_(shard),
      store_(store),
      catalog_(catalog),
      cpu_(cpu),
      options_(options),
      resolved_signal_(sim) {
  server_.Handle(kReplAppend, [this](NodeId from, ReplAppendRequest request) {
    return HandleAppend(from, std::move(request));
  });
}

sim::Task<StatusOr<ReplAppendReply>> ReplicaApplier::HandleAppend(
    NodeId from, ReplAppendRequest request) {
  // Every exit acks the current applied LSN: the shipper treats the ack as
  // the cursor to resume from, so bad batches / stalls / gaps all resolve to
  // "resend from applied_lsn_ + 1".
  ReplAppendReply ack;
  if (request.shard != shard_) {
    metrics_.Add("apply.bad_batches");
    ack.applied_lsn = applied_lsn_;
    co_return ack;
  }
  if (stalled_) {
    // Pretend the batch was lost; the shipper will retry.
    ack.applied_lsn = applied_lsn_;
    co_return ack;
  }
  std::vector<RedoRecord> records;
  if (!LogStream::DecodeBatch(Slice(request.batch), &records).ok()) {
    metrics_.Add("apply.bad_batches");
    ack.applied_lsn = applied_lsn_;
    co_return ack;
  }
  if (request.start_lsn > applied_lsn_ + 1) {
    // Gap: refuse; shipper rewinds to our ack.
    metrics_.Add("apply.gaps");
    ack.applied_lsn = applied_lsn_;
    co_return ack;
  }

  if (extra_apply_delay_ > 0) co_await sim_->Sleep(extra_apply_delay_);

  size_t applied = 0;
  for (const RedoRecord& record : records) {
    if (record.lsn <= applied_lsn_) continue;  // duplicate from a resend
    // Replay cost (the node's multi-core CpuScheduler models the paper's
    // parallel replay).
    co_await cpu_->Consume(options_.apply_cost_per_record);
    ApplyRecord(record);
    applied_lsn_ = record.lsn;
    ++applied;
  }
  metrics_.Add("apply.records", static_cast<int64_t>(applied));
  metrics_.Add("apply.batches");
  ack.applied_lsn = applied_lsn_;
  co_return ack;
}

void ReplicaApplier::ApplyRecord(const RedoRecord& record) {
  switch (record.type) {
    case RedoType::kInsert:
      store_->GetOrCreateTable(record.table_id)
          ->ApplyInsert(record.key, record.value, record.txn_id);
      break;
    case RedoType::kUpdate:
      store_->GetOrCreateTable(record.table_id)
          ->ApplyUpdate(record.key, record.value, record.txn_id);
      break;
    case RedoType::kDelete:
      store_->GetOrCreateTable(record.table_id)
          ->ApplyDelete(record.key, record.txn_id);
      break;
    case RedoType::kPendingCommit:
    case RedoType::kPrepare:
      // Value = lower bound on the eventual commit timestamp.
      pending_[record.txn_id] = record.timestamp;
      break;
    case RedoType::kCommit:
    case RedoType::kCommitPrepared:
      store_->CommitTxn(record.txn_id, record.timestamp);
      max_commit_ts_ = std::max(max_commit_ts_, record.timestamp);
      ResolveTxn(record.txn_id);
      break;
    case RedoType::kAbort:
    case RedoType::kAbortPrepared:
      store_->AbortTxn(record.txn_id);
      ResolveTxn(record.txn_id);
      break;
    case RedoType::kHeartbeat:
      // Guarantees the max commit timestamp advances on idle shards
      // (Section IV-A) so the RCP keeps moving forward.
      max_commit_ts_ = std::max(max_commit_ts_, record.timestamp);
      break;
    case RedoType::kDdl: {
      Status s = catalog_->ApplyDdl(record.value, record.timestamp);
      if (!s.ok()) {
        GDB_LOG(Error) << "replica " << self_
                       << ": DDL replay failed: " << s.ToString();
      }
      max_commit_ts_ = std::max(max_commit_ts_, record.timestamp);
      break;
    }
    case RedoType::kCheckpoint:
      break;
  }
}

void ReplicaApplier::ResolveTxn(TxnId txn) {
  if (pending_.erase(txn) > 0) {
    resolved_signal_.NotifyAll();
  }
}

sim::Task<void> ReplicaApplier::WaitResolved(TxnId txn) {
  metrics_.Add("apply.pending_waits");
  while (pending_.count(txn) > 0) {
    co_await resolved_signal_.Wait();
  }
}

}  // namespace globaldb
