#include "src/replication/replica_applier.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/storage/snapshot.h"

namespace globaldb {

ReplicaApplier::ReplicaApplier(sim::Simulator* sim, sim::Network* network,
                               NodeId self, ShardId shard, ShardStore* store,
                               Catalog* catalog, sim::CpuScheduler* cpu,
                               ApplierOptions options)
    : sim_(sim),
      self_(self),
      server_(network, self),
      shard_(shard),
      store_(store),
      catalog_(catalog),
      cpu_(cpu),
      options_(options),
      decisions_(options.decision_memo_capacity),
      resolved_signal_(sim) {
  server_.Handle(kReplAppend, [this](NodeId from, ReplAppendRequest request) {
    return HandleAppend(from, std::move(request));
  });
  server_.Handle(kReplSnapshot,
                 [this](NodeId from, ReplSnapshotRequest request) {
                   return HandleSnapshot(from, std::move(request));
                 });
}

sim::Task<StatusOr<ReplSnapshotReply>> ReplicaApplier::HandleSnapshot(
    NodeId from, ReplSnapshotRequest request) {
  ReplSnapshotReply ack;
  // A reset install is always allowed (a newer promotion may change the
  // primary again); a plain catch-up snapshot must come from the current
  // primary once a reset pinned one.
  if (request.shard != shard_ || stalled_ ||
      (!request.reset && primary_filter_ != kInvalidNodeId &&
       from != primary_filter_)) {
    ack.applied_lsn = applied_lsn_;
    ack.accepted = false;
    co_return ack;
  }
  if (!request.reset && request.checkpoint_lsn <= applied_lsn_) {
    // Already at or past the checkpoint (a redo batch beat the snapshot):
    // nothing to install, report where we are.
    ack.applied_lsn = applied_lsn_;
    ack.accepted = true;
    co_return ack;
  }

  // Charge the install like a replay of the image (rough: one record per
  // live version).
  co_await cpu_->Consume(options_.apply_cost_per_record *
                         std::max<size_t>(1, request.store_image.size() /
                                                 128));

  // Hold the apply gate across the install: in-flight HandleAppend replays
  // must not interleave with the wholesale state swap. Re-check staleness
  // under the gate — a batch that drained while we waited may have advanced
  // the applied LSN past the checkpoint.
  co_await AcquireApply();
  if (!request.reset && request.checkpoint_lsn <= applied_lsn_) {
    ReleaseApply();
    ack.applied_lsn = applied_lsn_;
    ack.accepted = true;
    co_return ack;
  }
  Status s = InstallCatalog(Slice(request.catalog_image), catalog_);
  if (s.ok()) s = InstallShardStore(Slice(request.store_image), store_);
  if (!s.ok()) {
    GDB_LOG(Error) << "replica " << self_
                   << ": snapshot install failed: " << s.ToString();
    metrics_.Add("apply.bad_snapshots");
    ReleaseApply();
    ack.applied_lsn = applied_lsn_;
    ack.accepted = false;
    co_return ack;
  }
  applied_lsn_ = request.checkpoint_lsn;
  max_commit_ts_ = std::max(max_commit_ts_, request.max_commit_ts);
  if (request.reset) {
    // History reset: from here on, only the new primary's stream is valid.
    primary_filter_ = from;
    ++install_epoch_;
  }
  // Drop every buffered out-of-order batch: anything parked below the new
  // applied LSN is stale (pre-checkpoint history — with `reset`, possibly
  // from a dead primary) and must never replay on top of the fresh image;
  // anything above it the shipper resends from checkpoint_lsn + 1 anyway.
  reorder_.clear();
  reorder_bytes_ = 0;
  // Rebuild the pending-commit set from the image's provisional state: the
  // in-flight transactions captured mid-2PC. Lower bound 0 (unknown) —
  // replica readers wait until the replayed COMMIT/ABORT resolves them.
  // Participant lists do not survive the install (the image carries only
  // provisional tuples, not PREPARE payloads): if this replica is later
  // promoted with one of these still pending, resolution queries every
  // shard.
  pending_.clear();
  pending_participants_.clear();
  for (TxnId txn : store_->ProvisionalTxns()) pending_[txn] = 0;
  resolved_signal_.NotifyAll();
  ReleaseApply();
  metrics_.Add("apply.snapshot_installs");
  ack.applied_lsn = applied_lsn_;
  ack.accepted = true;
  co_return ack;
}

sim::Task<StatusOr<ReplAppendReply>> ReplicaApplier::HandleAppend(
    NodeId from, ReplAppendRequest request) {
  // Every exit acks the current applied LSN — cumulative, never covering
  // batches that are merely buffered — so the shipper can always fall back
  // to "resend from applied_lsn_ + 1". `accepted=false` marks batches the
  // replica dropped (stall, decode failure, refused gap): those make the
  // shipper rewind immediately instead of waiting out the window.
  ReplAppendReply ack;
  if (request.shard != shard_ ||
      (primary_filter_ != kInvalidNodeId && from != primary_filter_)) {
    metrics_.Add("apply.bad_batches");
    ack.applied_lsn = applied_lsn_;
    ack.accepted = false;
    co_return ack;
  }
  if (stalled_) {
    // Pretend the batch was lost; the shipper will retry.
    ack.applied_lsn = applied_lsn_;
    ack.accepted = false;
    co_return ack;
  }
  std::vector<RedoRecord> records;
  if (!LogStream::DecodeBatch(Slice(request.batch), &records).ok()) {
    metrics_.Add("apply.bad_batches");
    ack.applied_lsn = applied_lsn_;
    ack.accepted = false;
    co_return ack;
  }
  if (request.start_lsn > applied_lsn_ + 1) {
    // LSN gap: an earlier window slot is still in flight (or was lost).
    // Park the batch for an in-order drain instead of refusing, unless
    // reordering is disabled or the buffer is full. The gap check and the
    // buffer insert are one synchronous region — no suspension point —
    // so a concurrent handler draining the buffer cannot miss this batch.
    if (options_.reorder_buffer_bytes == 0) {
      metrics_.Add("apply.gaps");
      ack.applied_lsn = applied_lsn_;
      ack.accepted = false;
      co_return ack;
    }
    BufferedBatch batch;
    batch.end_lsn = records.empty() ? request.start_lsn : records.back().lsn;
    batch.bytes = request.batch.size();
    batch.records = std::move(records);
    ack.accepted = TryBuffer(request.start_lsn, std::move(batch));
    ack.applied_lsn = applied_lsn_;
    co_return ack;
  }

  if (extra_apply_delay_ > 0) co_await sim_->Sleep(extra_apply_delay_);

  // In-order (or duplicate) batch: replay it, then drain whatever buffered
  // batches it made contiguous. Pipelined shipping makes this handler
  // reentrant, so the replay region is serialized behind a FIFO gate.
  const uint64_t epoch = install_epoch_;
  co_await AcquireApply();
  if (epoch != install_epoch_) {
    // A reset install landed while this batch waited at the gate: its
    // records belong to the dead primary's timeline. Drop them.
    ReleaseApply();
    metrics_.Add("apply.bad_batches");
    ack.applied_lsn = applied_lsn_;
    ack.accepted = false;
    co_return ack;
  }
  size_t applied = co_await ApplyRecords(records);
  applied += co_await DrainReorder();
  ReleaseApply();
  metrics_.Add("apply.records", static_cast<int64_t>(applied));
  metrics_.Add("apply.batches");
  ack.applied_lsn = applied_lsn_;
  co_return ack;
}

sim::Task<void> ReplicaApplier::AcquireApply() {
  if (!apply_busy_) {
    apply_busy_ = true;
    co_return;
  }
  apply_waiters_.emplace_back(sim_);
  sim::Future<bool> turn = apply_waiters_.back().GetFuture();
  (void)co_await turn;
}

void ReplicaApplier::ReleaseApply() {
  if (apply_waiters_.empty()) {
    apply_busy_ = false;
    return;
  }
  // Hand the gate to the next waiter directly (stays busy).
  sim::Promise<bool> next = std::move(apply_waiters_.front());
  apply_waiters_.pop_front();
  next.TrySet(true);
}

sim::Task<size_t> ReplicaApplier::ApplyRecords(
    const std::vector<RedoRecord>& records) {
  size_t applied = 0;
  for (const RedoRecord& record : records) {
    if (record.lsn <= applied_lsn_) continue;  // duplicate from a resend
    // Replay cost (the node's multi-core CpuScheduler models the paper's
    // parallel replay).
    co_await cpu_->Consume(options_.apply_cost_per_record);
    ApplyRecord(record);
    applied_lsn_ = record.lsn;
    ++applied;
  }
  co_return applied;
}

sim::Task<size_t> ReplicaApplier::DrainReorder() {
  size_t applied = 0;
  while (!reorder_.empty() && reorder_.begin()->first <= applied_lsn_ + 1) {
    auto it = reorder_.begin();
    BufferedBatch batch = std::move(it->second);
    reorder_bytes_ -= batch.bytes;
    reorder_.erase(it);
    applied += co_await ApplyRecords(batch.records);
    metrics_.Add("apply.reorder_drained");
  }
  co_return applied;
}

bool ReplicaApplier::TryBuffer(Lsn start_lsn, BufferedBatch batch) {
  auto it = reorder_.find(start_lsn);
  if (it != reorder_.end()) {
    metrics_.Add("apply.reorder_duplicates");
    if (batch.end_lsn <= it->second.end_lsn) return true;  // already covered
    reorder_bytes_ -= it->second.bytes;
    reorder_.erase(it);
  }
  while (reorder_bytes_ + batch.bytes > options_.reorder_buffer_bytes) {
    // Over the cap: evict the farthest-ahead batch (it is the one the
    // shipper will get to resending last). If the newcomer is the farthest,
    // refuse it instead — the shipper falls back to its cumulative-ack
    // rewind.
    if (reorder_.empty() || std::prev(reorder_.end())->first <= start_lsn) {
      metrics_.Add("apply.reorder_refused");
      return false;
    }
    auto last = std::prev(reorder_.end());
    reorder_bytes_ -= last->second.bytes;
    reorder_.erase(last);
    metrics_.Add("apply.reorder_evictions");
  }
  reorder_bytes_ += batch.bytes;
  reorder_.emplace(start_lsn, std::move(batch));
  metrics_.Add("apply.reordered");
  return true;
}

void ReplicaApplier::ApplyRecord(const RedoRecord& record) {
  switch (record.type) {
    case RedoType::kInsert:
      store_->GetOrCreateTable(record.table_id)
          ->ApplyInsert(record.key, record.value, record.txn_id);
      break;
    case RedoType::kUpdate:
      store_->GetOrCreateTable(record.table_id)
          ->ApplyUpdate(record.key, record.value, record.txn_id);
      break;
    case RedoType::kDelete:
      store_->GetOrCreateTable(record.table_id)
          ->ApplyDelete(record.key, record.txn_id);
      break;
    case RedoType::kPendingCommit:
    case RedoType::kPrepare:
      // Timestamp = lower bound on the eventual commit timestamp.
      pending_[record.txn_id] = record.timestamp;
      if (record.type == RedoType::kPrepare && !record.value.empty()) {
        pending_participants_[record.txn_id] =
            DecodeParticipants(Slice(record.value));
      }
      break;
    case RedoType::kCommit:
    case RedoType::kCommitPrepared:
      store_->CommitTxn(record.txn_id, record.timestamp);
      max_commit_ts_ = std::max(max_commit_ts_, record.timestamp);
      decisions_.Record(record.txn_id, /*committed=*/true, record.timestamp);
      ResolveTxn(record.txn_id);
      break;
    case RedoType::kAbort:
    case RedoType::kAbortPrepared:
      store_->AbortTxn(record.txn_id);
      decisions_.Record(record.txn_id, /*committed=*/false, 0);
      ResolveTxn(record.txn_id);
      break;
    case RedoType::kHeartbeat:
      // Guarantees the max commit timestamp advances on idle shards
      // (Section IV-A) so the RCP keeps moving forward.
      max_commit_ts_ = std::max(max_commit_ts_, record.timestamp);
      break;
    case RedoType::kDdl: {
      Status s = catalog_->ApplyDdl(record.value, record.timestamp);
      if (!s.ok()) {
        GDB_LOG(Error) << "replica " << self_
                       << ": DDL replay failed: " << s.ToString();
      }
      max_commit_ts_ = std::max(max_commit_ts_, record.timestamp);
      break;
    }
    case RedoType::kCheckpoint:
      // The primary checkpointed at this vacuum horizon; prune our version
      // chains at the same horizon so replica memory tracks the primary's.
      metrics_.Add("storage.versions_gced",
                   static_cast<int64_t>(store_->Vacuum(record.timestamp)));
      break;
  }
}

void ReplicaApplier::ResolveTxn(TxnId txn) {
  pending_participants_.erase(txn);
  if (pending_.erase(txn) > 0) {
    resolved_signal_.NotifyAll();
  }
}

sim::Task<void> ReplicaApplier::WaitResolved(TxnId txn) {
  metrics_.Add("apply.pending_waits");
  while (pending_.count(txn) > 0) {
    co_await resolved_signal_.Wait();
  }
}

}  // namespace globaldb
