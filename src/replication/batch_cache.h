#ifndef GLOBALDB_SRC_REPLICATION_BATCH_CACHE_H_
#define GLOBALDB_SRC_REPLICATION_BATCH_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "src/common/types.h"
#include "src/compression/lz.h"

namespace globaldb {

/// Identifies one fully-encoded kReplAppend payload: the redo range it
/// covers and how it was compressed. LSNs are immutable once appended, so
/// an entry never goes stale — eviction is purely capacity-driven.
struct BatchCacheKey {
  Lsn start_lsn = kInvalidLsn;
  Lsn end_lsn = kInvalidLsn;
  CompressionType compression = CompressionType::kNone;

  bool operator<(const BatchCacheKey& other) const {
    return std::tie(start_lsn, end_lsn, compression) <
           std::tie(other.start_lsn, other.end_lsn, other.compression);
  }
};

/// Small LRU of encoded ship batches, shared by the primary's per-replica
/// ship loops so a redo range is read + compressed + framed once instead of
/// once per replica. Payloads are shared_ptr<const string>: an evicted
/// entry stays alive for any in-flight send still holding it.
class EncodedBatchCache {
 public:
  explicit EncodedBatchCache(size_t capacity) : capacity_(capacity) {}

  EncodedBatchCache(const EncodedBatchCache&) = delete;
  EncodedBatchCache& operator=(const EncodedBatchCache&) = delete;

  /// Returns the cached payload and marks it most-recently-used, or nullptr.
  std::shared_ptr<const std::string> Get(const BatchCacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used one
  /// when over capacity. No-op when capacity is 0.
  void Put(const BatchCacheKey& key,
           std::shared_ptr<const std::string> payload);

  /// Drops entries whose range starts below `watermark` — called after log
  /// truncation so the cache is keyed off the retained log, not LSN 0.
  /// Entries at or above the watermark stay valid (LSNs are immutable).
  /// Returns the number of entries evicted.
  size_t EvictBelow(Lsn watermark);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  using LruList =
      std::list<std::pair<BatchCacheKey, std::shared_ptr<const std::string>>>;

  size_t capacity_;
  LruList lru_;  // most-recently-used at the front
  std::map<BatchCacheKey, LruList::iterator> entries_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_BATCH_CACHE_H_
