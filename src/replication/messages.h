#ifndef GLOBALDB_SRC_REPLICATION_MESSAGES_H_
#define GLOBALDB_SRC_REPLICATION_MESSAGES_H_

#include <string>
#include <utility>

#include "src/common/codec.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_method.h"

namespace globaldb {

/// One shipped redo batch: the shard it belongs to, the LSN of the first
/// record, and the (optionally compressed) LogStream::EncodeBatch bytes.
struct ReplAppendRequest {
  uint32_t shard = 0;
  Lsn start_lsn = kInvalidLsn;
  std::string batch;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, shard);
    PutVarint64(&s, start_lsn);
    s += batch;
    return s;
  }
  static StatusOr<ReplAppendRequest> Decode(Slice in) {
    ReplAppendRequest r;
    if (!GetVarint32(&in, &r.shard) || !GetVarint64(&in, &r.start_lsn)) {
      return Status::Corruption("repl append req");
    }
    r.batch = in.ToString();
    return r;
  }
};

/// Cumulative ack: the highest LSN the replica has applied (or buffered
/// while stalled). The shipper resumes from `applied_lsn + 1`.
struct ReplAppendReply {
  Lsn applied_lsn = 0;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, applied_lsn);
    return s;
  }
  static StatusOr<ReplAppendReply> Decode(Slice in) {
    ReplAppendReply r;
    if (!GetVarint64(&in, &r.applied_lsn)) {
      return Status::Corruption("repl append reply");
    }
    return r;
  }
};

/// Sent by a replica to its primary after a restart: announces the highest
/// LSN the replica holds durably so the shipper can rewind its cursor and
/// resume immediately instead of waiting out its retry backoff (and without
/// risking a silent gap if the replica lost its applied tail).
struct ReplHelloRequest {
  uint32_t shard = 0;
  Lsn durable_lsn = 0;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, shard);
    PutVarint64(&s, durable_lsn);
    return s;
  }
  static StatusOr<ReplHelloRequest> Decode(Slice in) {
    ReplHelloRequest r;
    if (!GetVarint32(&in, &r.shard) || !GetVarint64(&in, &r.durable_lsn)) {
      return Status::Corruption("repl hello req");
    }
    return r;
  }
};

// --- Method descriptors ------------------------------------------------------

// Served by replica appliers.
inline constexpr rpc::RpcMethod<ReplAppendRequest, ReplAppendReply>
    kReplAppend{"repl.append"};

// Served by the primary data node (forwarded to its log shipper).
inline constexpr rpc::RpcMethod<ReplHelloRequest, rpc::EmptyMessage>
    kReplHello{"repl.hello"};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_MESSAGES_H_
