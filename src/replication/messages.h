#ifndef GLOBALDB_SRC_REPLICATION_MESSAGES_H_
#define GLOBALDB_SRC_REPLICATION_MESSAGES_H_

#include <string>
#include <utility>

#include "src/common/codec.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_method.h"

namespace globaldb {

/// One shipped redo batch: the shard it belongs to, the LSN of the first
/// record, and the (optionally compressed) LogStream::EncodeBatch bytes.
struct ReplAppendRequest {
  uint32_t shard = 0;
  Lsn start_lsn = kInvalidLsn;
  std::string batch;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, shard);
    PutVarint64(&s, start_lsn);
    s += batch;
    return s;
  }
  static StatusOr<ReplAppendRequest> Decode(Slice in) {
    ReplAppendRequest r;
    if (!GetVarint32(&in, &r.shard) || !GetVarint64(&in, &r.start_lsn)) {
      return Status::Corruption("repl append req");
    }
    r.batch = in.ToString();
    return r;
  }
};

/// Cumulative ack: the highest LSN the replica has applied. The ack never
/// covers batches parked in the replica's reorder buffer, so the shipper can
/// always fall back to resending from `applied_lsn + 1`.
///
/// `accepted` distinguishes "the replica kept this batch" (applied now, or
/// buffered out-of-order for a later drain) from "the replica dropped it"
/// (stall, decode failure, gap with reordering disabled, reorder buffer
/// full). A refused batch makes the shipper rewind its send cursor to the
/// cumulative ack; an accepted one does not.
struct ReplAppendReply {
  Lsn applied_lsn = 0;
  bool accepted = true;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, applied_lsn);
    PutVarint32(&s, accepted ? 1 : 0);
    return s;
  }
  static StatusOr<ReplAppendReply> Decode(Slice in) {
    ReplAppendReply r;
    uint32_t accepted = 0;
    if (!GetVarint64(&in, &r.applied_lsn) || !GetVarint32(&in, &accepted)) {
      return Status::Corruption("repl append reply");
    }
    r.accepted = accepted != 0;
    return r;
  }
};

/// Sent by a replica to its primary after a restart: announces the highest
/// LSN the replica holds durably so the shipper can rewind its cursor and
/// resume immediately instead of waiting out its retry backoff (and without
/// risking a silent gap if the replica lost its applied tail).
///
/// `epoch` is the shard's promotion epoch as the sender last knew it. A
/// hello carrying a stale epoch comes from a node that missed one or more
/// promotions (typically a revived ex-primary): its history may have
/// diverged, so the current primary answers by forcing a reset snapshot
/// instead of resuming redo shipping from the announced LSN (DESIGN.md §13).
struct ReplHelloRequest {
  uint32_t shard = 0;
  Lsn durable_lsn = 0;
  uint64_t epoch = 0;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, shard);
    PutVarint64(&s, durable_lsn);
    PutVarint64(&s, epoch);
    return s;
  }
  static StatusOr<ReplHelloRequest> Decode(Slice in) {
    ReplHelloRequest r;
    if (!GetVarint32(&in, &r.shard) || !GetVarint64(&in, &r.durable_lsn) ||
        !GetVarint64(&in, &r.epoch)) {
      return Status::Corruption("repl hello req");
    }
    return r;
  }
};

/// Full-state transfer: sent by the shipper when a replica's resume LSN
/// falls below the log's truncation point (or after a primary promotion
/// re-bases the shard's log). The replica installs the catalog + store
/// images, adopts `checkpoint_lsn` as its applied LSN, and replays the log
/// tail from checkpoint_lsn + 1.
struct ReplSnapshotRequest {
  uint32_t shard = 0;
  Lsn checkpoint_lsn = kInvalidLsn;
  /// Vacuum horizon the image was cut at.
  Timestamp checkpoint_ts = 0;
  /// Largest commit timestamp contained in the image (seeds the replica's
  /// max-commit-timestamp so RCP stays monotone across the install).
  Timestamp max_commit_ts = 0;
  /// Force installation even if the replica's applied LSN is not behind —
  /// set after a promotion, when the shard's history diverged.
  bool reset = false;
  std::string catalog_image;
  std::string store_image;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, shard);
    PutVarint64(&s, checkpoint_lsn);
    PutVarint64(&s, checkpoint_ts);
    PutVarint64(&s, max_commit_ts);
    PutVarint32(&s, reset ? 1 : 0);
    PutLengthPrefixed(&s, catalog_image);
    PutLengthPrefixed(&s, store_image);
    return s;
  }
  static StatusOr<ReplSnapshotRequest> Decode(Slice in) {
    ReplSnapshotRequest r;
    uint32_t reset = 0;
    Slice catalog_image, store_image;
    if (!GetVarint32(&in, &r.shard) || !GetVarint64(&in, &r.checkpoint_lsn) ||
        !GetVarint64(&in, &r.checkpoint_ts) ||
        !GetVarint64(&in, &r.max_commit_ts) || !GetVarint32(&in, &reset) ||
        !GetLengthPrefixed(&in, &catalog_image) ||
        !GetLengthPrefixed(&in, &store_image)) {
      return Status::Corruption("repl snapshot req");
    }
    r.reset = reset != 0;
    r.catalog_image = catalog_image.ToString();
    r.store_image = store_image.ToString();
    return r;
  }
};

struct ReplSnapshotReply {
  /// The replica's applied LSN after the install (== checkpoint_lsn, or its
  /// own higher LSN if it was already ahead and the install was skipped).
  Lsn applied_lsn = 0;
  bool accepted = true;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, applied_lsn);
    PutVarint32(&s, accepted ? 1 : 0);
    return s;
  }
  static StatusOr<ReplSnapshotReply> Decode(Slice in) {
    ReplSnapshotReply r;
    uint32_t accepted = 0;
    if (!GetVarint64(&in, &r.applied_lsn) || !GetVarint32(&in, &accepted)) {
      return Status::Corruption("repl snapshot reply");
    }
    r.accepted = accepted != 0;
    return r;
  }
};

// --- Method descriptors ------------------------------------------------------

// Served by replica appliers.
inline constexpr rpc::RpcMethod<ReplAppendRequest, ReplAppendReply>
    kReplAppend{"repl.append"};

// Served by the primary data node (forwarded to its log shipper).
inline constexpr rpc::RpcMethod<ReplHelloRequest, rpc::EmptyMessage>
    kReplHello{"repl.hello"};

// Served by replica appliers (full-state install).
inline constexpr rpc::RpcMethod<ReplSnapshotRequest, ReplSnapshotReply>
    kReplSnapshot{"repl.snapshot"};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_MESSAGES_H_
