#ifndef GLOBALDB_SRC_REPLICATION_MESSAGES_H_
#define GLOBALDB_SRC_REPLICATION_MESSAGES_H_

#include <string>
#include <utility>

#include "src/common/codec.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_method.h"

namespace globaldb {

/// One shipped redo batch: the shard it belongs to, the LSN of the first
/// record, and the (optionally compressed) LogStream::EncodeBatch bytes.
struct ReplAppendRequest {
  uint32_t shard = 0;
  Lsn start_lsn = kInvalidLsn;
  std::string batch;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, shard);
    PutVarint64(&s, start_lsn);
    s += batch;
    return s;
  }
  static StatusOr<ReplAppendRequest> Decode(Slice in) {
    ReplAppendRequest r;
    if (!GetVarint32(&in, &r.shard) || !GetVarint64(&in, &r.start_lsn)) {
      return Status::Corruption("repl append req");
    }
    r.batch = in.ToString();
    return r;
  }
};

/// Cumulative ack: the highest LSN the replica has applied. The ack never
/// covers batches parked in the replica's reorder buffer, so the shipper can
/// always fall back to resending from `applied_lsn + 1`.
///
/// `accepted` distinguishes "the replica kept this batch" (applied now, or
/// buffered out-of-order for a later drain) from "the replica dropped it"
/// (stall, decode failure, gap with reordering disabled, reorder buffer
/// full). A refused batch makes the shipper rewind its send cursor to the
/// cumulative ack; an accepted one does not.
struct ReplAppendReply {
  Lsn applied_lsn = 0;
  bool accepted = true;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, applied_lsn);
    PutVarint32(&s, accepted ? 1 : 0);
    return s;
  }
  static StatusOr<ReplAppendReply> Decode(Slice in) {
    ReplAppendReply r;
    uint32_t accepted = 0;
    if (!GetVarint64(&in, &r.applied_lsn) || !GetVarint32(&in, &accepted)) {
      return Status::Corruption("repl append reply");
    }
    r.accepted = accepted != 0;
    return r;
  }
};

/// Sent by a replica to its primary after a restart: announces the highest
/// LSN the replica holds durably so the shipper can rewind its cursor and
/// resume immediately instead of waiting out its retry backoff (and without
/// risking a silent gap if the replica lost its applied tail).
struct ReplHelloRequest {
  uint32_t shard = 0;
  Lsn durable_lsn = 0;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, shard);
    PutVarint64(&s, durable_lsn);
    return s;
  }
  static StatusOr<ReplHelloRequest> Decode(Slice in) {
    ReplHelloRequest r;
    if (!GetVarint32(&in, &r.shard) || !GetVarint64(&in, &r.durable_lsn)) {
      return Status::Corruption("repl hello req");
    }
    return r;
  }
};

// --- Method descriptors ------------------------------------------------------

// Served by replica appliers.
inline constexpr rpc::RpcMethod<ReplAppendRequest, ReplAppendReply>
    kReplAppend{"repl.append"};

// Served by the primary data node (forwarded to its log shipper).
inline constexpr rpc::RpcMethod<ReplHelloRequest, rpc::EmptyMessage>
    kReplHello{"repl.hello"};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_MESSAGES_H_
