#ifndef GLOBALDB_SRC_REPLICATION_REPLICA_APPLIER_H_
#define GLOBALDB_SRC_REPLICATION_REPLICA_APPLIER_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/log/log_stream.h"
#include "src/replication/messages.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/cpu.h"
#include "src/sim/future.h"
#include "src/sim/network.h"
#include "src/storage/catalog.h"
#include "src/storage/shard_store.h"
#include "src/txn/txn_decisions.h"

namespace globaldb {

struct ApplierOptions {
  /// CPU cost charged per replayed record (divided across the node's cores,
  /// which models the paper's parallel redo replay).
  SimDuration apply_cost_per_record = 1 * kMicrosecond;
  /// Byte cap on the out-of-order reorder buffer: batches arriving ahead of
  /// `applied_lsn + 1` (the pipelined shipper's later window slots racing
  /// an earlier one) wait here and drain in LSN order once the gap fills.
  /// 0 restores the strict refuse-any-gap policy.
  size_t reorder_buffer_bytes = 4 * 1024 * 1024;
  /// Capacity of the replayed-decision memo (DESIGN.md §13): how many
  /// COMMIT/ABORT outcomes the replica remembers so a post-promotion
  /// duplicate phase-2 delivery is rejected instead of re-applied.
  size_t decision_memo_capacity = DecisionMemo::kDefaultCapacity;
};

/// Replica-side redo replay (Section IV-A).
///
/// Applies shipped batches strictly in LSN order, maintains the replica's
/// max commit timestamp (the per-replica input to the RCP calculation), and
/// tracks *pending* transactions: a PENDING_COMMIT or PREPARE record locks
/// the transaction's tuples until its COMMIT/ABORT (or COMMIT_PREPARED/
/// ABORT_PREPARED) is replayed — readers encountering such tuples wait via
/// WaitResolved.
class ReplicaApplier {
 public:
  ReplicaApplier(sim::Simulator* sim, sim::Network* network, NodeId self,
                 ShardId shard, ShardStore* store, Catalog* catalog,
                 sim::CpuScheduler* cpu, ApplierOptions options = {});

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  NodeId node_id() const { return self_; }
  ShardId shard() const { return shard_; }

  /// Highest commit timestamp replayed (advanced by commits, DDLs, and
  /// heartbeats). This is what the RCP collector polls.
  Timestamp max_commit_ts() const { return max_commit_ts_; }
  /// Last LSN applied (the ack returned to the shipper).
  Lsn applied_lsn() const { return applied_lsn_; }

  /// True if `txn` has an unresolved PENDING_COMMIT / PREPARE on this
  /// replica.
  bool IsPending(TxnId txn) const { return pending_.count(txn) > 0; }
  /// True if a reader at `snapshot` must wait for `txn` to resolve: the
  /// transaction is pending and its commit-timestamp lower bound does not
  /// already place it after the snapshot.
  bool MustWait(TxnId txn, Timestamp snapshot) const {
    auto it = pending_.find(txn);
    return it != pending_.end() && it->second <= snapshot;
  }
  /// Suspends until `txn` is no longer pending.
  sim::Task<void> WaitResolved(TxnId txn);

  /// Promotion transfer (Cluster::PromoteShard reads these synchronously
  /// while the applier is stalled): the unresolved prepared/pending set with
  /// commit-ts lower bounds, the participant shard lists decoded from
  /// replayed PREPARE records (empty vector = unknown — query every shard),
  /// and the replayed-decision memo the new primary adopts.
  const std::map<TxnId, Timestamp>& pending() const { return pending_; }
  const std::map<TxnId, std::vector<ShardId>>& pending_participants() const {
    return pending_participants_;
  }
  const DecisionMemo& decisions() const { return decisions_; }

  /// Called when the hosting replica node restarts. Batch application is
  /// write-ahead durable (an ack implies the batch is persisted), so the
  /// store, applied LSN, and the pending map — rebuilt by the recovery log
  /// scan — all survive; this clears fault-injection state plus the
  /// volatile reorder buffer (its batches were never acked as applied, so
  /// the shipper's rewind to the durable LSN resends them) and counts the
  /// restart.
  void OnRestart() {
    stalled_ = false;
    reorder_.clear();
    reorder_bytes_ = 0;
    metrics_.Add("apply.restarts");
  }

  /// Reorder-buffer occupancy (buffered out-of-order batches / bytes).
  size_t reorder_batches() const { return reorder_.size(); }
  size_t reorder_bytes() const { return reorder_bytes_; }

  /// Artificially delays replay by `d` per batch (fault injection: a slow /
  /// lagging replica for staleness and skyline tests).
  void set_extra_apply_delay(SimDuration d) { extra_apply_delay_ = d; }
  /// When true the applier acknowledges nothing (stuck replica).
  void set_stalled(bool stalled) { stalled_ = stalled; }

  Metrics& metrics() { return metrics_; }

 private:
  /// One out-of-order batch parked until the LSN gap before it fills.
  struct BufferedBatch {
    Lsn end_lsn = 0;
    size_t bytes = 0;
    std::vector<RedoRecord> records;
  };

  sim::Task<StatusOr<ReplAppendReply>> HandleAppend(NodeId from,
                                                    ReplAppendRequest request);
  /// Full-state install (kReplSnapshot): replaces the store + catalog with
  /// the checkpoint image, adopts its LSN, clears the reorder buffer (stale
  /// pre-checkpoint batches must not double-apply), and rebuilds the
  /// pending-commit set from the image's provisional transactions. Skipped
  /// (but acked) when the replica is already at or past the checkpoint,
  /// unless the request carries the post-promotion `reset` flag.
  sim::Task<StatusOr<ReplSnapshotReply>> HandleSnapshot(
      NodeId from, ReplSnapshotRequest request);
  /// FIFO mutual exclusion around record replay: pipelined batches make
  /// HandleAppend reentrant, and the replay loop suspends on the CPU model,
  /// so without a gate two overlapping handlers could interleave (and
  /// double-apply) records.
  sim::Task<void> AcquireApply();
  void ReleaseApply();
  /// Replays `records` in order (skipping duplicates at or below the
  /// applied LSN); returns how many were applied. Must hold the apply gate.
  sim::Task<size_t> ApplyRecords(const std::vector<RedoRecord>& records);
  /// Drains buffered batches that became contiguous with the applied tail.
  /// Must hold the apply gate.
  sim::Task<size_t> DrainReorder();
  /// Parks an out-of-order batch, evicting the farthest-ahead batches when
  /// over the byte cap (or refusing the newcomer if it *is* the farthest).
  /// Returns false when the batch was refused.
  bool TryBuffer(Lsn start_lsn, BufferedBatch batch);
  void ApplyRecord(const RedoRecord& record);
  void ResolveTxn(TxnId txn);

  sim::Simulator* sim_;
  NodeId self_;
  rpc::RpcServer server_;
  ShardId shard_;
  ShardStore* store_;
  Catalog* catalog_;
  sim::CpuScheduler* cpu_;
  ApplierOptions options_;

  Lsn applied_lsn_ = 0;
  Timestamp max_commit_ts_ = 0;
  /// After a reset (post-promotion) install, only the installing primary's
  /// batches are accepted: the dead primary's unreplicated tail must never
  /// replay on top of the new timeline (its LSNs collide with the promoted
  /// primary's fresh appends).
  NodeId primary_filter_ = kInvalidNodeId;
  /// Bumped by every reset install; in-flight appends that pre-date the
  /// bump re-check it after the apply gate and drop themselves.
  uint64_t install_epoch_ = 0;
  std::map<TxnId, Timestamp> pending_;
  /// Participant shard lists of pending 2PC transactions (from the PREPARE
  /// record payload); entries without one fall back to an empty list.
  std::map<TxnId, std::vector<ShardId>> pending_participants_;
  /// Replayed COMMIT/ABORT outcomes (idempotency across promotion).
  DecisionMemo decisions_;
  sim::CondVar resolved_signal_;
  /// Out-of-order batches keyed by start LSN, waiting for their gap to fill.
  std::map<Lsn, BufferedBatch> reorder_;
  size_t reorder_bytes_ = 0;
  /// Apply-gate state: one holder, FIFO waiters.
  bool apply_busy_ = false;
  std::deque<sim::Promise<bool>> apply_waiters_;
  SimDuration extra_apply_delay_ = 0;
  bool stalled_ = false;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_REPLICA_APPLIER_H_
