#include "src/replication/batch_cache.h"

namespace globaldb {

std::shared_ptr<const std::string> EncodedBatchCache::Get(
    const BatchCacheKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void EncodedBatchCache::Put(const BatchCacheKey& key,
                            std::shared_ptr<const std::string> payload) {
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

}  // namespace globaldb
