#include "src/replication/batch_cache.h"

namespace globaldb {

std::shared_ptr<const std::string> EncodedBatchCache::Get(
    const BatchCacheKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void EncodedBatchCache::Put(const BatchCacheKey& key,
                            std::shared_ptr<const std::string> payload) {
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t EncodedBatchCache::EvictBelow(Lsn watermark) {
  size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.start_lsn < watermark) {
      lru_.erase(it->second);
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace globaldb
