#ifndef GLOBALDB_SRC_REPLICATION_CHECKPOINTER_H_
#define GLOBALDB_SRC_REPLICATION_CHECKPOINTER_H_

#include <functional>

#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/replication/durability_manager.h"
#include "src/sim/simulator.h"
#include "src/storage/catalog.h"
#include "src/storage/shard_store.h"

namespace globaldb {

/// Periodic durability-lifecycle driver on a DN primary (DESIGN.md §12).
/// Each cycle, synchronously (no suspension between the steps, so the image
/// is exact as of the checkpoint record's LSN):
///
///   1. vacuums the shard's version chains at the cluster read horizon,
///   2. appends a kCheckpoint redo record carrying that horizon (replicas
///      vacuum at the same horizon when they replay it),
///   3. cuts a full-state image of the store + catalog, and
///   4. publishes (checkpoint_lsn, image) to the DurabilityManager, which
///      truncates the redo stream up to min(checkpoint, quorum ack).
class Checkpointer {
 public:
  struct Options {
    SimDuration interval = 1 * kSecond;
  };

  /// `append` must append a redo record to the shard's log and notify the
  /// shipper, returning the assigned LSN (DataNode::AppendAndNotify).
  Checkpointer(sim::Simulator* sim, ShardStore* store, Catalog* catalog,
               DurabilityManager* durability,
               std::function<Lsn(RedoRecord)> append,
               std::function<Timestamp()> max_commit_ts, Metrics* metrics,
               Options options)
      : sim_(sim),
        store_(store),
        catalog_(catalog),
        durability_(durability),
        append_(std::move(append)),
        max_commit_ts_(std::move(max_commit_ts)),
        metrics_(metrics),
        options_(options) {}

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Runs one checkpoint immediately, then spawns the periodic loop.
  void Start();
  void Stop() { stopped_ = true; }

  /// One vacuum + checkpoint + publish cycle. Synchronous so the image is
  /// consistent with the kCheckpoint record's LSN.
  void RunOnce();

 private:
  sim::Task<void> Loop();

  sim::Simulator* sim_;
  ShardStore* store_;
  Catalog* catalog_;
  DurabilityManager* durability_;
  std::function<Lsn(RedoRecord)> append_;
  std::function<Timestamp()> max_commit_ts_;
  Metrics* metrics_;
  Options options_;
  bool stopped_ = false;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_CHECKPOINTER_H_
