#include "src/replication/log_shipper.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/common/logging.h"

namespace globaldb {

namespace {

/// The ship loop is its own retry mechanism (it must re-read the stream and
/// rewind the cursor on failure), so the RPC layer never retries for it.
rpc::RpcPolicy ShipperRpcPolicy() {
  rpc::RpcPolicy policy;
  policy.max_attempts = 1;
  return policy;
}

}  // namespace

LogShipper::LogShipper(sim::Simulator* sim, sim::Network* network, NodeId self,
                       ShardId shard, LogStream* stream,
                       std::vector<NodeId> replicas, ShipperOptions options)
    : sim_(sim),
      self_(self),
      shard_(shard),
      stream_(stream),
      replicas_(std::move(replicas)),
      options_(options),
      client_(network, self, ShipperRpcPolicy()),
      append_signal_(sim) {
  for (NodeId r : replicas_) acked_[r] = 0;
}

void LogShipper::Start() {
  for (NodeId replica : replicas_) {
    sim_->Spawn(ShipLoop(replica));
  }
}

void LogShipper::NotifyAppend() { append_signal_.NotifyAll(); }

sim::Task<void> LogShipper::ShipLoop(NodeId replica) {
  Lsn cursor = stream_->begin_lsn();
  while (!stopped_) {
    auto batch_or = stream_->Read(cursor, options_.max_batch_records,
                                  options_.max_batch_bytes);
    if (!batch_or.ok()) {
      // Our cursor was truncated away (should not happen: truncation waits
      // for acks). Resync from the stream start.
      cursor = stream_->begin_lsn();
      continue;
    }
    if (batch_or->empty()) {
      // Nothing to ship. A bounded idle sleep (rather than waiting solely
      // on the append signal) keeps the loop robust against notifications
      // that race with the read above.
      co_await sim_->Sleep(options_.idle_wait);
      continue;
    }

    const std::vector<RedoRecord>& batch = *batch_or;
    ReplAppendRequest request;
    request.shard = shard_;
    request.start_lsn = batch.front().lsn;
    request.batch = LogStream::EncodeBatch(batch, options_.compression);

    metrics_.Add("ship.batches");
    metrics_.Add("ship.records", static_cast<int64_t>(batch.size()));
    metrics_.Add("ship.bytes",
                 static_cast<int64_t>(request.Encode().size()));

    auto reply = co_await client_.Call(replica, kReplAppend, request);
    if (!reply.ok()) {
      metrics_.Add("ship.failures");
      co_await sim_->Sleep(options_.retry_backoff);
      continue;
    }
    const Lsn applied = reply->applied_lsn;
    // Advance past the ack; if the replica is behind our cursor (e.g. it
    // restarted) this rewinds to resend.
    cursor = applied + 1;
    OnAck(replica, applied);
  }
}

void LogShipper::OnAck(NodeId replica, Lsn acked) {
  Lsn& slot = acked_[replica];
  slot = std::max(slot, acked);
  // Resolve durability waiters.
  for (auto& waiter : waiters_) {
    if (waiter.lsn != kInvalidLsn && DurabilityReached(waiter.lsn)) {
      waiter.done.TrySet(true);
      waiter.lsn = kInvalidLsn;  // mark resolved
    }
  }
  waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                [](const DurabilityWaiter& w) {
                                  return w.lsn == kInvalidLsn;
                                }),
                 waiters_.end());
}

Lsn LogShipper::AckedLsn(NodeId replica) const {
  auto it = acked_.find(replica);
  return it == acked_.end() ? 0 : it->second;
}

Lsn LogShipper::QuorumAckedLsn() const {
  if (acked_.empty()) return stream_->next_lsn() - 1;
  std::vector<Lsn> lsns;
  lsns.reserve(acked_.size());
  for (const auto& [node, lsn] : acked_) lsns.push_back(lsn);
  std::sort(lsns.begin(), lsns.end(), std::greater<>());
  const int k = std::min<int>(options_.quorum_replicas,
                              static_cast<int>(lsns.size()));
  return lsns[k - 1];
}

Lsn LogShipper::AllAckedLsn() const {
  Lsn min_lsn = stream_->next_lsn() - 1;
  for (const auto& [node, lsn] : acked_) min_lsn = std::min(min_lsn, lsn);
  return min_lsn;
}

bool LogShipper::DurabilityReached(Lsn lsn) const {
  switch (options_.mode) {
    case ReplicationMode::kAsync:
      return true;
    case ReplicationMode::kSyncQuorum:
      return QuorumAckedLsn() >= lsn;
    case ReplicationMode::kSyncAll:
      return AllAckedLsn() >= lsn;
  }
  return true;
}

sim::Task<Status> LogShipper::WaitDurable(Lsn lsn) {
  if (DurabilityReached(lsn)) co_return Status::OK();
  metrics_.Add("ship.durability_waits");
  waiters_.emplace_back(lsn, sim_);
  sim::Future<bool> future = waiters_.back().done.GetFuture();
  co_await future;
  co_return Status::OK();
}

}  // namespace globaldb
