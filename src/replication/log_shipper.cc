#include "src/replication/log_shipper.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/replication/durability_manager.h"
#include "src/rpc/wire.h"

namespace globaldb {

namespace {

/// The ship loop is its own retry mechanism (it must re-read the stream and
/// rewind the cursor on failure), so the RPC layer never retries for it.
rpc::RpcPolicy ShipperRpcPolicy() {
  rpc::RpcPolicy policy;
  policy.max_attempts = 1;
  return policy;
}

}  // namespace

LogShipper::LogShipper(sim::Simulator* sim, sim::Network* network, NodeId self,
                       ShardId shard, LogStream* stream,
                       std::vector<NodeId> replicas, ShipperOptions options)
    : sim_(sim),
      self_(self),
      shard_(shard),
      stream_(stream),
      replicas_(std::move(replicas)),
      options_(options),
      client_(network, self, ShipperRpcPolicy()),
      cache_(options.encode_cache_entries) {
  for (NodeId r : replicas_) {
    acked_[r] = 0;
    peers_[r].cursor = stream_->begin_lsn();
  }
  sorted_acks_.assign(acked_.size(), 0);
}

void LogShipper::Start() {
  started_ = true;
  for (NodeId replica : replicas_) {
    sim_->Spawn(ShipLoop(replica));
  }
}

void LogShipper::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Fail blocked durability waiters: their commits cannot become durable
  // once shipping stops, and leaving the coroutines suspended forever would
  // leak them (and hang the commits they serve).
  for (auto& waiter : waiters_) {
    if (waiter.lsn == kInvalidLsn) continue;
    waiter.done.TrySet(false);
    waiter.lsn = kInvalidLsn;
  }
  waiters_.clear();
  // Wake loops sleeping on idle/backoff timers so they observe stopped_ and
  // exit now rather than when their timer would have fired.
  WakeLoops();
}

void LogShipper::NotifyAppend() { WakeLoops(); }

void LogShipper::AnnounceReplica(NodeId replica, Lsn durable_lsn) {
  auto it = peers_.find(replica);
  if (it == peers_.end()) return;
  metrics_.Add("ship.hellos");
  PeerState& peer = it->second;
  peer.resume_hint = durable_lsn;
  peer.consecutive_failures = 0;
  peer.backoff = 0;
  peer.next_send_at = 0;
  WakeLoops();
}

bool LogShipper::IsReplicaHealthy(NodeId replica) const {
  auto it = peers_.find(replica);
  return it == peers_.end() || it->second.healthy;
}

size_t LogShipper::InflightBatches(NodeId replica) const {
  auto it = peers_.find(replica);
  return it == peers_.end() ? 0 : it->second.inflight;
}

void LogShipper::WakeLoops() {
  auto sleepers = std::move(sleepers_);
  sleepers_.clear();
  for (auto& sleeper : sleepers) sleeper.TrySet(true);
}

sim::Task<void> LogShipper::InterruptibleSleep(SimDuration d) {
  if (d <= 0) co_return;
  // Prune sleepers already resolved by their timer (nobody moved them out).
  sleepers_.erase(std::remove_if(sleepers_.begin(), sleepers_.end(),
                                 [](const sim::Promise<bool>& p) {
                                   return p.has_value();
                                 }),
                  sleepers_.end());
  sim::Promise<bool> wake(sim_);
  sleepers_.push_back(wake);
  sim::Future<bool> future = wake.GetFuture();
  sim_->Schedule(d, [wake]() mutable { wake.TrySet(true); });
  (void)co_await future;
}

void LogShipper::Rewind(PeerState* peer, Lsn to) {
  // Invalidate the window: replies from batches sent before this rewind are
  // stale (their acks are still consumed — they are cumulative — but they
  // no longer touch failure / backoff / window state).
  ++peer->epoch;
  peer->inflight = 0;
  if (to < stream_->begin_lsn()) {
    // The resume position was truncated away: clamping the cursor forward
    // would silently skip records. Redo replay cannot catch this replica up
    // — it needs the latest checkpoint snapshot first.
    peer->needs_snapshot = true;
    peer->cursor = stream_->begin_lsn();
    return;
  }
  peer->cursor = to;
}

void LogShipper::RequireSnapshotAll() {
  for (auto& [replica, peer] : peers_) {
    ++peer.epoch;
    peer.inflight = 0;
    peer.needs_snapshot = true;
    peer.snapshot_reset = true;
    peer.resume_hint = kInvalidLsn;
    peer.consecutive_failures = 0;
    peer.backoff = 0;
    peer.next_send_at = 0;
  }
  WakeLoops();
}

void LogShipper::RequireSnapshot(NodeId replica) {
  auto it = peers_.find(replica);
  if (it == peers_.end()) return;
  PeerState& peer = it->second;
  ++peer.epoch;
  peer.inflight = 0;
  peer.needs_snapshot = true;
  peer.snapshot_reset = true;
  peer.resume_hint = kInvalidLsn;
  peer.consecutive_failures = 0;
  peer.backoff = 0;
  peer.next_send_at = 0;
  WakeLoops();
}

void LogShipper::AddReplica(NodeId replica) {
  if (peers_.count(replica) > 0) return;
  replicas_.push_back(replica);
  acked_[replica] = 0;
  // A zero ack is the vector's minimum, so appending keeps it descending.
  sorted_acks_.push_back(0);
  const size_t k = std::min<size_t>(std::max(options_.quorum_replicas, 1),
                                    sorted_acks_.size());
  quorum_acked_ = sorted_acks_[k - 1];
  all_acked_ = sorted_acks_.back();
  PeerState& peer = peers_[replica];
  peer.cursor = stream_->begin_lsn();
  // The newcomer's history may have diverged (a revived ex-primary): force
  // a reset install before any redo shipping.
  peer.needs_snapshot = true;
  peer.snapshot_reset = true;
  metrics_.Add("ship.replicas_added");
  if (started_ && !stopped_) sim_->Spawn(ShipLoop(replica));
}

void LogShipper::OnTruncate(Lsn new_begin) {
  metrics_.Add("ship.cache_evictions",
               static_cast<int64_t>(cache_.EvictBelow(new_begin)));
}

std::shared_ptr<const std::string> LogShipper::EncodedRequest(
    Lsn start, const LogStream::BatchExtent& extent) {
  const BatchCacheKey key{start, extent.end_lsn, options_.compression};
  if (options_.encode_cache_entries > 0) {
    if (auto hit = cache_.Get(key)) {
      metrics_.Add("ship.cache_hits");
      return hit;
    }
    metrics_.Add("ship.cache_misses");
  }
  // Re-read exactly the extent's record count: the stream may have grown
  // since Extent(), and the payload must match the (start, end) cache key.
  auto batch_or =
      stream_->Read(start, extent.records, std::numeric_limits<size_t>::max());
  if (!batch_or.ok() || batch_or->empty()) return nullptr;
  ReplAppendRequest request;
  request.shard = shard_;
  request.start_lsn = start;
  request.batch = LogStream::EncodeBatch(*batch_or, options_.compression);
  auto payload = std::make_shared<const std::string>(request.Encode());
  if (options_.encode_cache_entries > 0) cache_.Put(key, payload);
  return payload;
}

sim::Task<void> LogShipper::ShipLoop(NodeId replica) {
  PeerState& peer = peers_[replica];
  const size_t window = std::max<size_t>(1, options_.max_inflight_batches);
  while (!stopped_) {
    if (peer.resume_hint != kInvalidLsn) {
      // Restart announcement: resume from the replica's durable tail (this
      // may rewind past acks if the replica lost state, or skip ahead past
      // records it already holds). A pending history reset (promotion)
      // outranks the announcement; otherwise Rewind re-derives whether the
      // announced tail is still replayable from the retained log.
      if (!peer.snapshot_reset) peer.needs_snapshot = false;
      Rewind(&peer, peer.resume_hint + 1);
      peer.resume_hint = kInvalidLsn;
    }
    if (peer.next_send_at > sim_->now()) {
      // Backoff gate after a failure burst. An announcement clears the gate
      // and wakes us early.
      co_await InterruptibleSleep(peer.next_send_at - sim_->now());
      continue;
    }
    if (peer.needs_snapshot) {
      if (durability_ != nullptr && durability_->HasSnapshot()) {
        // Stop-and-wait full-state transfer, then resume redo shipping
        // from the installed checkpoint.
        co_await SendSnapshot(replica);
      } else if (durability_ != nullptr) {
        // Checkpoint not yet published (promotion startup window): the
        // checkpointer runs shortly; park until it does.
        co_await InterruptibleSleep(options_.idle_wait);
      } else {
        // No durability manager (standalone shipper, nothing ever
        // truncates): the legacy resync from the stream start is lossless.
        peer.needs_snapshot = false;
        peer.cursor = stream_->begin_lsn();
      }
      continue;
    }
    if (peer.inflight >= window) {
      // Window full: park until an ack frees a slot (every SendBatch
      // completion wakes the loops).
      metrics_.Add("ship.window_full");
      co_await InterruptibleSleep(options_.idle_wait);
      continue;
    }
    auto extent_or = stream_->Extent(peer.cursor, options_.max_batch_records,
                                     options_.max_batch_bytes);
    if (!extent_or.ok()) {
      // Our cursor was truncated away: a checkpoint outran this replica
      // (its acks lagged the quorum). Redo replay cannot catch it up any
      // more — route it through the snapshot fallback instead of silently
      // resyncing past the dropped records.
      metrics_.Add("ship.cursor_truncated");
      Rewind(&peer, AckedLsn(replica) + 1);
      continue;
    }
    if (extent_or->records == 0) {
      // Nothing to ship: wait for NotifyAppend, with a bounded sleep as a
      // fallback against notifications racing the read above.
      co_await InterruptibleSleep(options_.idle_wait);
      continue;
    }

    std::shared_ptr<const std::string> payload =
        EncodedRequest(peer.cursor, *extent_or);
    if (payload == nullptr) {
      // Read failed after a successful Extent: truncation raced us between
      // the two calls. Same remedy as the Extent failure above.
      metrics_.Add("ship.cursor_truncated");
      Rewind(&peer, AckedLsn(replica) + 1);
      continue;
    }
    metrics_.Add("ship.batches");
    metrics_.Add("ship.records", static_cast<int64_t>(extent_or->records));
    metrics_.Add("ship.bytes", static_cast<int64_t>(payload->size()));
    metrics_.Add("ship.inflight");  // gauge: -1 on completion
    ++peer.inflight;
    peer.cursor = extent_or->end_lsn + 1;
    sim_->Spawn(SendBatch(replica, peer.epoch, std::move(payload)));
    // No await: keep filling the window until it is full or the stream is
    // drained.
  }
}

sim::Task<void> LogShipper::SendSnapshot(NodeId replica) {
  PeerState& peer = peers_[replica];
  if (peer.next_send_at > sim_->now()) {
    co_await InterruptibleSleep(peer.next_send_at - sim_->now());
    co_return;
  }
  const ShardSnapshot& snap = durability_->snapshot();
  ReplSnapshotRequest request;
  request.shard = shard_;
  request.checkpoint_lsn = snap.checkpoint_lsn;
  request.checkpoint_ts = snap.checkpoint_ts;
  request.max_commit_ts = snap.max_commit_ts;
  request.reset = peer.snapshot_reset;
  request.catalog_image = snap.catalog_image;
  request.store_image = snap.store_image;
  const uint64_t epoch = peer.epoch;
  metrics_.Add("ship.snapshots");
  metrics_.Add("ship.snapshot_bytes",
               static_cast<int64_t>(request.store_image.size() +
                                    request.catalog_image.size()));
  rpc::CallOptions call;
  call.attempt_timeout = options_.snapshot_timeout;
  auto reply =
      co_await client_.Call(replica, kReplSnapshot, request, call);
  if (stopped_ || epoch != peer.epoch) co_return;
  if (!reply.ok()) {
    OnShipFailure(&peer, replica);
    peer.next_send_at = sim_->now() + peer.backoff;
    co_return;
  }
  if (!reply->accepted) {
    // The replica refused (e.g. it is stalled): retry after a backoff —
    // redo shipping cannot proceed until the install lands.
    metrics_.Add("ship.snapshot_refused");
    peer.next_send_at = sim_->now() + options_.retry_backoff;
    co_return;
  }
  if (!peer.healthy) {
    peer.healthy = true;
    metrics_.Add("ship.replica_recovered");
  }
  peer.consecutive_failures = 0;
  peer.backoff = 0;
  peer.next_send_at = 0;
  peer.needs_snapshot = false;
  peer.snapshot_reset = false;
  OnAck(replica, reply->applied_lsn);
  Rewind(&peer, reply->applied_lsn + 1);
  metrics_.Add("ship.snapshot_installs");
}

sim::Task<void> LogShipper::SendBatch(
    NodeId replica, uint64_t epoch,
    std::shared_ptr<const std::string> payload) {
  auto wire =
      co_await client_.RawCall(replica, kReplAppend.name, std::string(*payload));
  metrics_.Add("ship.inflight", -1);
  if (stopped_) co_return;
  auto it = peers_.find(replica);
  if (it == peers_.end()) co_return;
  PeerState& peer = it->second;
  // A rewind after this batch was sent bumped the epoch: the reply is
  // stale. Its cumulative ack is still consumed below, but it must not
  // clear (or charge) failure / backoff / window state the rewind set up.
  const bool current = epoch == peer.epoch;
  if (current && peer.inflight > 0) --peer.inflight;

  StatusOr<ReplAppendReply> reply =
      wire.ok() ? rpc::DecodeEnvelope<ReplAppendReply>(*wire)
                : StatusOr<ReplAppendReply>(wire.status());
  if (!reply.ok()) {
    if (current) {
      // One failure (and one backoff step) per burst: the rewind bumps the
      // epoch, so the other in-flight batches of this window failing right
      // after us are stale and charge nothing.
      OnShipFailure(&peer, replica);
      Rewind(&peer, AckedLsn(replica) + 1);
      peer.next_send_at = sim_->now() + peer.backoff;
    }
    WakeLoops();
    co_return;
  }

  OnAck(replica, reply->applied_lsn);
  // Per-replica visibility lag at ack time, in records (how far the
  // replica's applied tail trails the primary's).
  metrics_.Hist("ship.lag." + std::to_string(replica))
      .Record(static_cast<int64_t>(stream_->next_lsn() - 1 -
                                   AckedLsn(replica)));
  if (current) {
    if (!peer.healthy) {
      peer.healthy = true;
      metrics_.Add("ship.replica_recovered");
    }
    peer.consecutive_failures = 0;
    peer.backoff = 0;
    peer.next_send_at = 0;
    if (!reply->accepted) {
      // The replica dropped the batch (stall, gap with reordering off, or
      // reorder buffer full): fall back to resending from its cumulative
      // ack. A healthy RPC round trip, so no backoff is charged.
      metrics_.Add("ship.rewinds");
      Rewind(&peer, AckedLsn(replica) + 1);
    }
  }
  WakeLoops();
}

void LogShipper::OnShipFailure(PeerState* peer, NodeId replica) {
  metrics_.Add("ship.failures");
  ++peer->consecutive_failures;
  peer->backoff = peer->backoff == 0
                      ? options_.retry_backoff
                      : std::min(2 * peer->backoff,
                                 options_.max_retry_backoff);
  if (peer->healthy &&
      peer->consecutive_failures >= options_.unhealthy_after_failures) {
    peer->healthy = false;
    metrics_.Add("ship.replica_down");
    GDB_LOG(Info) << "shipper " << self_ << ": replica " << replica
                  << " marked down after " << peer->consecutive_failures
                  << " failures";
  }
}

void LogShipper::OnAck(NodeId replica, Lsn acked) {
  Lsn& slot = acked_[replica];
  if (acked > slot) {
    // Maintain the descending ack vector in place: find this replica's old
    // value, raise it, bubble it left past smaller entries. Equal values
    // are interchangeable, so matching "a" slot with the old value is
    // enough.
    auto pos = std::find(sorted_acks_.begin(), sorted_acks_.end(), slot);
    GDB_CHECK(pos != sorted_acks_.end());
    *pos = acked;
    while (pos != sorted_acks_.begin() && *(pos - 1) < *pos) {
      std::iter_swap(pos - 1, pos);
      --pos;
    }
    slot = acked;
    const size_t k = std::min<size_t>(
        std::max(options_.quorum_replicas, 1), sorted_acks_.size());
    quorum_acked_ = sorted_acks_[k - 1];
    all_acked_ = sorted_acks_.back();
  }
  // Resolve durability waiters.
  for (auto& waiter : waiters_) {
    if (waiter.lsn != kInvalidLsn && DurabilityReached(waiter.lsn)) {
      waiter.done.TrySet(true);
      waiter.lsn = kInvalidLsn;  // mark resolved
    }
  }
  waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                [](const DurabilityWaiter& w) {
                                  return w.lsn == kInvalidLsn;
                                }),
                 waiters_.end());
}

Lsn LogShipper::AckedLsn(NodeId replica) const {
  auto it = acked_.find(replica);
  return it == acked_.end() ? 0 : it->second;
}

Lsn LogShipper::QuorumAckedLsn() const {
  if (acked_.empty()) return stream_->next_lsn() - 1;
  return quorum_acked_;
}

Lsn LogShipper::AllAckedLsn() const {
  if (acked_.empty()) return stream_->next_lsn() - 1;
  return std::min(stream_->next_lsn() - 1, all_acked_);
}

bool LogShipper::DurabilityReached(Lsn lsn) const {
  switch (options_.mode) {
    case ReplicationMode::kAsync:
      return true;
    case ReplicationMode::kSyncQuorum:
      return QuorumAckedLsn() >= lsn;
    case ReplicationMode::kSyncAll:
      return AllAckedLsn() >= lsn;
  }
  return true;
}

sim::Task<Status> LogShipper::WaitDurable(Lsn lsn) {
  if (DurabilityReached(lsn)) co_return Status::OK();
  if (stopped_) co_return Status::Unavailable("log shipper stopped");
  metrics_.Add("ship.durability_waits");
  waiters_.emplace_back(lsn, sim_);
  sim::Future<bool> future = waiters_.back().done.GetFuture();
  const bool reached = co_await future;
  if (!reached) co_return Status::Unavailable("log shipper stopped");
  co_return Status::OK();
}

}  // namespace globaldb
