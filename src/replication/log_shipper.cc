#include "src/replication/log_shipper.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/common/logging.h"

namespace globaldb {

namespace {

/// The ship loop is its own retry mechanism (it must re-read the stream and
/// rewind the cursor on failure), so the RPC layer never retries for it.
rpc::RpcPolicy ShipperRpcPolicy() {
  rpc::RpcPolicy policy;
  policy.max_attempts = 1;
  return policy;
}

}  // namespace

LogShipper::LogShipper(sim::Simulator* sim, sim::Network* network, NodeId self,
                       ShardId shard, LogStream* stream,
                       std::vector<NodeId> replicas, ShipperOptions options)
    : sim_(sim),
      self_(self),
      shard_(shard),
      stream_(stream),
      replicas_(std::move(replicas)),
      options_(options),
      client_(network, self, ShipperRpcPolicy()) {
  for (NodeId r : replicas_) {
    acked_[r] = 0;
    peers_[r].cursor = stream_->begin_lsn();
  }
}

void LogShipper::Start() {
  for (NodeId replica : replicas_) {
    sim_->Spawn(ShipLoop(replica));
  }
}

void LogShipper::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Fail blocked durability waiters: their commits cannot become durable
  // once shipping stops, and leaving the coroutines suspended forever would
  // leak them (and hang the commits they serve).
  for (auto& waiter : waiters_) {
    if (waiter.lsn == kInvalidLsn) continue;
    waiter.done.TrySet(false);
    waiter.lsn = kInvalidLsn;
  }
  waiters_.clear();
  // Wake loops sleeping on idle/backoff timers so they observe stopped_ and
  // exit now rather than when their timer would have fired.
  WakeLoops();
}

void LogShipper::NotifyAppend() { WakeLoops(); }

void LogShipper::AnnounceReplica(NodeId replica, Lsn durable_lsn) {
  auto it = peers_.find(replica);
  if (it == peers_.end()) return;
  metrics_.Add("ship.hellos");
  PeerState& peer = it->second;
  peer.resume_hint = durable_lsn;
  peer.consecutive_failures = 0;
  peer.backoff = 0;
  WakeLoops();
}

bool LogShipper::IsReplicaHealthy(NodeId replica) const {
  auto it = peers_.find(replica);
  return it == peers_.end() || it->second.healthy;
}

void LogShipper::WakeLoops() {
  auto sleepers = std::move(sleepers_);
  sleepers_.clear();
  for (auto& sleeper : sleepers) sleeper.TrySet(true);
}

sim::Task<void> LogShipper::InterruptibleSleep(SimDuration d) {
  if (d <= 0) co_return;
  // Prune sleepers already resolved by their timer (nobody moved them out).
  sleepers_.erase(std::remove_if(sleepers_.begin(), sleepers_.end(),
                                 [](const sim::Promise<bool>& p) {
                                   return p.has_value();
                                 }),
                  sleepers_.end());
  sim::Promise<bool> wake(sim_);
  sleepers_.push_back(wake);
  sim::Future<bool> future = wake.GetFuture();
  sim_->Schedule(d, [wake]() mutable { wake.TrySet(true); });
  (void)co_await future;
}

sim::Task<void> LogShipper::ShipLoop(NodeId replica) {
  PeerState& peer = peers_[replica];
  while (!stopped_) {
    if (peer.resume_hint != kInvalidLsn) {
      // Restart announcement: resume from the replica's durable tail (this
      // may rewind past acks if the replica lost state, or skip ahead past
      // records it already holds).
      peer.cursor = peer.resume_hint + 1;
      peer.resume_hint = kInvalidLsn;
    }
    auto batch_or = stream_->Read(peer.cursor, options_.max_batch_records,
                                  options_.max_batch_bytes);
    if (!batch_or.ok()) {
      // Our cursor was truncated away (should not happen: truncation waits
      // for acks). Resync from the stream start.
      peer.cursor = stream_->begin_lsn();
      continue;
    }
    if (batch_or->empty()) {
      // Nothing to ship: wait for NotifyAppend, with a bounded sleep as a
      // fallback against notifications racing the read above.
      co_await InterruptibleSleep(options_.idle_wait);
      continue;
    }

    const std::vector<RedoRecord>& batch = *batch_or;
    ReplAppendRequest request;
    request.shard = shard_;
    request.start_lsn = batch.front().lsn;
    request.batch = LogStream::EncodeBatch(batch, options_.compression);

    metrics_.Add("ship.batches");
    metrics_.Add("ship.records", static_cast<int64_t>(batch.size()));
    metrics_.Add("ship.bytes",
                 static_cast<int64_t>(request.Encode().size()));

    auto reply = co_await client_.Call(replica, kReplAppend, request);
    if (stopped_) break;
    if (!reply.ok()) {
      OnShipFailure(&peer, replica);
      co_await InterruptibleSleep(peer.backoff);
      continue;
    }
    if (!peer.healthy) {
      peer.healthy = true;
      metrics_.Add("ship.replica_recovered");
    }
    peer.consecutive_failures = 0;
    peer.backoff = 0;
    const Lsn applied = reply->applied_lsn;
    // Advance past the ack; if the replica is behind our cursor (e.g. it
    // refused a gap or restarted) this rewinds to resend.
    if (peer.resume_hint == kInvalidLsn) peer.cursor = applied + 1;
    OnAck(replica, applied);
  }
}

void LogShipper::OnShipFailure(PeerState* peer, NodeId replica) {
  metrics_.Add("ship.failures");
  ++peer->consecutive_failures;
  peer->backoff = peer->backoff == 0
                      ? options_.retry_backoff
                      : std::min(2 * peer->backoff,
                                 options_.max_retry_backoff);
  if (peer->healthy &&
      peer->consecutive_failures >= options_.unhealthy_after_failures) {
    peer->healthy = false;
    metrics_.Add("ship.replica_down");
    GDB_LOG(Info) << "shipper " << self_ << ": replica " << replica
                  << " marked down after " << peer->consecutive_failures
                  << " failures";
  }
}

void LogShipper::OnAck(NodeId replica, Lsn acked) {
  Lsn& slot = acked_[replica];
  slot = std::max(slot, acked);
  // Resolve durability waiters.
  for (auto& waiter : waiters_) {
    if (waiter.lsn != kInvalidLsn && DurabilityReached(waiter.lsn)) {
      waiter.done.TrySet(true);
      waiter.lsn = kInvalidLsn;  // mark resolved
    }
  }
  waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                [](const DurabilityWaiter& w) {
                                  return w.lsn == kInvalidLsn;
                                }),
                 waiters_.end());
}

Lsn LogShipper::AckedLsn(NodeId replica) const {
  auto it = acked_.find(replica);
  return it == acked_.end() ? 0 : it->second;
}

Lsn LogShipper::QuorumAckedLsn() const {
  if (acked_.empty()) return stream_->next_lsn() - 1;
  std::vector<Lsn> lsns;
  lsns.reserve(acked_.size());
  for (const auto& [node, lsn] : acked_) lsns.push_back(lsn);
  std::sort(lsns.begin(), lsns.end(), std::greater<>());
  const int k = std::min<int>(options_.quorum_replicas,
                              static_cast<int>(lsns.size()));
  return lsns[k - 1];
}

Lsn LogShipper::AllAckedLsn() const {
  Lsn min_lsn = stream_->next_lsn() - 1;
  for (const auto& [node, lsn] : acked_) min_lsn = std::min(min_lsn, lsn);
  return min_lsn;
}

bool LogShipper::DurabilityReached(Lsn lsn) const {
  switch (options_.mode) {
    case ReplicationMode::kAsync:
      return true;
    case ReplicationMode::kSyncQuorum:
      return QuorumAckedLsn() >= lsn;
    case ReplicationMode::kSyncAll:
      return AllAckedLsn() >= lsn;
  }
  return true;
}

sim::Task<Status> LogShipper::WaitDurable(Lsn lsn) {
  if (DurabilityReached(lsn)) co_return Status::OK();
  if (stopped_) co_return Status::Unavailable("log shipper stopped");
  metrics_.Add("ship.durability_waits");
  waiters_.emplace_back(lsn, sim_);
  sim::Future<bool> future = waiters_.back().done.GetFuture();
  const bool reached = co_await future;
  if (!reached) co_return Status::Unavailable("log shipper stopped");
  co_return Status::OK();
}

}  // namespace globaldb
