#include "src/replication/checkpointer.h"

#include <utility>

#include "src/storage/snapshot.h"

namespace globaldb {

void Checkpointer::Start() {
  stopped_ = false;
  RunOnce();
  sim_->Spawn(Loop());
}

sim::Task<void> Checkpointer::Loop() {
  while (!stopped_) {
    co_await sim_->Sleep(options_.interval);
    if (stopped_) break;
    RunOnce();
  }
}

void Checkpointer::RunOnce() {
  const Timestamp horizon = durability_->VacuumHorizon();
  const size_t reclaimed = store_->Vacuum(horizon);
  const int64_t live = static_cast<int64_t>(store_->VersionCount());
  metrics_->Add("storage.versions_gced", static_cast<int64_t>(reclaimed));
  // versions_live is a gauge: adjust the counter to the current value.
  metrics_->Add("storage.versions_live",
                live - metrics_->Get("storage.versions_live"));

  // Quiet shard: the retained checkpoint already covers the whole log.
  // Appending another kCheckpoint would keep the tail moving forever (and
  // with it every replica's convergence target).
  if (durability_->CheckpointCurrent()) {
    metrics_->Add("durability.checkpoint_skips");
    return;
  }

  ShardSnapshot snapshot;
  snapshot.checkpoint_lsn = append_(RedoRecord::Checkpoint(horizon));
  snapshot.checkpoint_ts = horizon;
  snapshot.max_commit_ts = max_commit_ts_();
  snapshot.catalog_image = EncodeCatalog(*catalog_);
  snapshot.store_image = EncodeShardStore(*store_);
  metrics_->Hist("durability.snapshot_bytes")
      .Record(static_cast<int64_t>(snapshot.store_image.size()));
  durability_->PublishCheckpoint(std::move(snapshot));
}

}  // namespace globaldb
