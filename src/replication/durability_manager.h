#ifndef GLOBALDB_SRC_REPLICATION_DURABILITY_MANAGER_H_
#define GLOBALDB_SRC_REPLICATION_DURABILITY_MANAGER_H_

#include <algorithm>

#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/log/log_stream.h"
#include "src/storage/snapshot.h"

namespace globaldb {

class LogShipper;

/// Owns one shard's durability watermarks (DESIGN.md §12):
///
///  - the *truncation watermark* — the highest LSN safe to drop from the
///    redo stream: min(checkpoint_lsn, quorum_acked_lsn). Records above the
///    quorum ack must stay shippable; records above the checkpoint are not
///    yet captured by any snapshot, so a lagging replica still needs them.
///  - the *vacuum horizon* — the highest timestamp safe to GC versions
///    below: the cluster-wide oldest in-flight read timestamp, pushed by
///    the RCP collector via kDnReadHorizon. Monotone by construction
///    (clamped here), which keeps it safe across GClock<->GTM fallback:
///    DUAL-mode issuance preserves the cluster's single timestamp order.
///
/// It also retains the latest checkpoint snapshot, which the log shipper
/// serves to replicas whose resume LSN fell below the truncation point.
class DurabilityManager {
 public:
  DurabilityManager(LogStream* stream, Metrics* metrics)
      : stream_(stream), metrics_(metrics) {}

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// The shipper whose quorum ack bounds truncation (null until replication
  /// is configured: then the primary itself is the whole quorum).
  void set_shipper(LogShipper* shipper) { shipper_ = shipper; }

  /// Monotone clamp of the cluster low-watermark read timestamp.
  void AdvanceReadHorizon(Timestamp horizon) {
    read_horizon_ = std::max(read_horizon_, horizon);
  }
  Timestamp read_horizon() const { return read_horizon_; }

  /// Highest LSN whose records may be dropped (records with lsn <= this are
  /// truncatable). Never exceeds the quorum ack or the checkpoint LSN.
  Lsn TruncationWatermark() const;

  /// Timestamp the next Vacuum/checkpoint may prune below: no in-flight or
  /// future read anywhere in the cluster runs at a snapshot below it.
  Timestamp VacuumHorizon() const { return read_horizon_; }

  /// Installs a fresh checkpoint snapshot, then truncates the log up to the
  /// new watermark (keeping everything past the quorum ack shippable).
  void PublishCheckpoint(ShardSnapshot snapshot);

  /// Seeds checkpoint state without truncating — used when a promoted
  /// replica becomes primary: its installed state *is* the checkpoint at
  /// its applied LSN, and stragglers below it must install via snapshot.
  void SeedCheckpoint(ShardSnapshot snapshot) {
    snapshot_ = std::move(snapshot);
  }

  bool HasSnapshot() const { return snapshot_.valid(); }
  /// True when the retained checkpoint already sits at the log tail —
  /// nothing was appended since, so a new checkpoint would change neither
  /// the snapshot's coverage nor the truncation watermark. Lets the
  /// checkpointer idle on a quiet shard instead of appending kCheckpoint
  /// records forever.
  bool CheckpointCurrent() const {
    return snapshot_.valid() &&
           snapshot_.checkpoint_lsn == stream_->next_lsn() - 1;
  }
  const ShardSnapshot& snapshot() const { return snapshot_; }
  Lsn checkpoint_lsn() const {
    return snapshot_.valid() ? snapshot_.checkpoint_lsn : 0;
  }

 private:
  LogStream* stream_;
  Metrics* metrics_;
  LogShipper* shipper_ = nullptr;
  ShardSnapshot snapshot_;
  Timestamp read_horizon_ = 0;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_DURABILITY_MANAGER_H_
