#include "src/replication/durability_manager.h"

#include <utility>

#include "src/replication/log_shipper.h"

namespace globaldb {

Lsn DurabilityManager::TruncationWatermark() const {
  if (!snapshot_.valid()) return 0;
  // With no shipper the primary is the entire replica set: everything up to
  // the checkpoint is truncatable. QuorumAckedLsn() returns the log tail in
  // the zero-replica case, giving the same result.
  const Lsn quorum =
      shipper_ == nullptr ? stream_->next_lsn() - 1 : shipper_->QuorumAckedLsn();
  return std::min(snapshot_.checkpoint_lsn, quorum);
}

void DurabilityManager::PublishCheckpoint(ShardSnapshot snapshot) {
  snapshot_ = std::move(snapshot);
  metrics_->Add("durability.checkpoints");
  const Lsn watermark = TruncationWatermark();
  if (watermark + 1 <= stream_->begin_lsn()) return;
  const size_t before = stream_->size();
  stream_->TruncateUntil(watermark + 1);
  const size_t dropped = before - stream_->size();
  if (dropped > 0) {
    metrics_->Add("durability.log_truncated_records",
                  static_cast<int64_t>(dropped));
    if (shipper_ != nullptr) shipper_->OnTruncate(watermark + 1);
  }
}

}  // namespace globaldb
