#ifndef GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_
#define GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/compression/lz.h"
#include "src/log/log_stream.h"
#include "src/replication/messages.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/future.h"
#include "src/sim/network.h"

namespace globaldb {

struct ShipperOptions {
  ReplicationMode mode = ReplicationMode::kAsync;
  /// The paper's GlobalDB deployment compresses shipped redo with LZ4.
  CompressionType compression = CompressionType::kLz;
  size_t max_batch_records = 2000;
  size_t max_batch_bytes = 256 * 1024;
  /// Idle poll interval when no new records arrive (heartbeats keep this
  /// path rarely taken).
  SimDuration idle_wait = 2 * kMillisecond;
  /// Backoff before retrying a failed replica.
  SimDuration retry_backoff = 50 * kMillisecond;
  /// For kSyncQuorum: how many replicas (not counting the primary) must
  /// have persisted a commit before it is acknowledged.
  int quorum_replicas = 1;
};

/// Primary-side redo log shipper: one streaming loop per replica, each with
/// its own LSN cursor, batching, optional LZ compression, and retry.
///
/// Async mode (GlobalDB): transactions never wait for shipping.
/// Sync modes (baseline): DataNode::WaitDurable blocks commit until the
/// quorum (or all replicas) have acknowledged the commit record's LSN —
/// which is what makes remote replicas so expensive in Fig. 6a.
class LogShipper {
 public:
  LogShipper(sim::Simulator* sim, sim::Network* network, NodeId self,
             ShardId shard, LogStream* stream, std::vector<NodeId> replicas,
             ShipperOptions options = {});

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Spawns the per-replica ship loops.
  void Start();
  void Stop() { stopped_ = true; }

  /// Wakes idle ship loops after the primary appends new records.
  void NotifyAppend();

  /// Blocks until the replication mode's durability condition holds for
  /// `lsn`: no-op for async, quorum acks for kSyncQuorum, all replicas for
  /// kSyncAll.
  sim::Task<Status> WaitDurable(Lsn lsn);

  /// Highest LSN acknowledged by `replica` (0 if none).
  Lsn AckedLsn(NodeId replica) const;
  /// Highest LSN acknowledged by at least `quorum_replicas` replicas.
  Lsn QuorumAckedLsn() const;
  /// Highest LSN acknowledged by every replica.
  Lsn AllAckedLsn() const;

  const ShipperOptions& options() const { return options_; }
  ShipperOptions* mutable_options() { return &options_; }
  Metrics& metrics() { return metrics_; }
  /// RPC client shipping the batches (per-replica latency stats live here).
  rpc::RpcClient& rpc_client() { return client_; }

 private:
  struct DurabilityWaiter {
    Lsn lsn;
    sim::Promise<bool> done;
    DurabilityWaiter(Lsn l, sim::Simulator* sim) : lsn(l), done(sim) {}
  };

  sim::Task<void> ShipLoop(NodeId replica);
  void OnAck(NodeId replica, Lsn acked);
  bool DurabilityReached(Lsn lsn) const;

  sim::Simulator* sim_;
  NodeId self_;
  ShardId shard_;
  LogStream* stream_;
  std::vector<NodeId> replicas_;
  ShipperOptions options_;
  rpc::RpcClient client_;

  std::map<NodeId, Lsn> acked_;
  std::vector<DurabilityWaiter> waiters_;
  sim::CondVar append_signal_;
  bool stopped_ = false;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_
