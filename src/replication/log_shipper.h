#ifndef GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_
#define GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/compression/lz.h"
#include "src/log/log_stream.h"
#include "src/replication/batch_cache.h"
#include "src/replication/messages.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/future.h"
#include "src/sim/network.h"

namespace globaldb {

class DurabilityManager;

struct ShipperOptions {
  ReplicationMode mode = ReplicationMode::kAsync;
  /// The paper's GlobalDB deployment compresses shipped redo with LZ4.
  CompressionType compression = CompressionType::kLz;
  size_t max_batch_records = 2000;
  size_t max_batch_bytes = 256 * 1024;
  /// Sliding-window depth: kReplAppend batches allowed in flight per
  /// replica. 1 degenerates to stop-and-wait (one batch per RTT, the old
  /// behavior); 8 keeps a 50 ms WAN link busy at the default batch size.
  size_t max_inflight_batches = 8;
  /// Entries in the shared encoded-batch LRU, so N replica loops encode and
  /// compress each redo range once instead of N times. 0 disables caching.
  size_t encode_cache_entries = 16;
  /// Idle poll interval when no new records arrive (heartbeats keep this
  /// path rarely taken).
  SimDuration idle_wait = 2 * kMillisecond;
  /// Initial backoff before retrying a failed replica; doubles per
  /// consecutive failure up to `max_retry_backoff`.
  SimDuration retry_backoff = 50 * kMillisecond;
  SimDuration max_retry_backoff = 2 * kSecond;
  /// Consecutive ship failures before a replica is considered down (feeds
  /// the per-replica health state and the ship.replica_down metric).
  int unhealthy_after_failures = 3;
  /// For kSyncQuorum: how many replicas (not counting the primary) must
  /// have persisted a commit before it is acknowledged.
  int quorum_replicas = 1;
  /// Per-attempt timeout for kReplSnapshot (full-state images are much
  /// larger than a redo batch, so the regular RPC timeout is too tight).
  /// Kept moderate: while a replica is black-holed (partition) the shipper
  /// blocks a full attempt on this, and an over-long wait delays resumption
  /// well past the heal.
  SimDuration snapshot_timeout = 2 * kSecond;
};

/// Primary-side redo log shipper: one streaming loop per replica, each a
/// sliding-window pipelined transport with batching, optional LZ
/// compression, and retry.
///
/// Window protocol: the loop's *send cursor* runs ahead of the replica's
/// *cumulative ack*, spawning up to `max_inflight_batches` concurrent
/// kReplAppend calls. Acks are cumulative (the replica's applied LSN), so a
/// failure or a refused batch rewinds the send cursor to `ack + 1` and bumps
/// the peer's epoch — replies from sends issued before the rewind are stale:
/// their cumulative acks are still consumed, but they no longer touch the
/// failure / backoff / window state. At most one backoff is charged per
/// failure burst, preserving the capped-exponential health behavior.
///
/// Async mode (GlobalDB): transactions never wait for shipping.
/// Sync modes (baseline): DataNode::WaitDurable blocks commit until the
/// quorum (or all replicas) have acknowledged the commit record's LSN —
/// which is what makes remote replicas so expensive in Fig. 6a.
class LogShipper {
 public:
  LogShipper(sim::Simulator* sim, sim::Network* network, NodeId self,
             ShardId shard, LogStream* stream, std::vector<NodeId> replicas,
             ShipperOptions options = {});

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Spawns the per-replica ship loops.
  void Start();
  /// Stops the ship loops, failing any blocked WaitDurable waiters with
  /// Unavailable and waking loops sleeping on idle/backoff timers (they
  /// observe `stopped_` and exit instead of staying suspended forever).
  void Stop();

  /// Wakes idle ship loops after the primary appends new records.
  void NotifyAppend();

  /// Handles a replica's restart announcement (kReplHello): rewinds that
  /// replica's cursor to `durable_lsn + 1`, clears its failure/backoff
  /// state, and wakes its loop so catch-up starts immediately.
  void AnnounceReplica(NodeId replica, Lsn durable_lsn);

  /// Wires the durability manager whose checkpoint snapshot backs the
  /// truncated-cursor fallback (kReplSnapshot full-state transfer).
  void SetDurability(DurabilityManager* durability) {
    durability_ = durability;
  }

  /// Marks every replica as needing a full-state install (with history
  /// reset) before any further shipping — a promoted primary calls this:
  /// its fresh log starts at its applied LSN, so every peer must re-base.
  void RequireSnapshotAll();

  /// Single-peer variant: forces a reset snapshot for one replica (a hello
  /// with a stale promotion epoch — typically a revived ex-primary whose
  /// history diverged, DESIGN.md §13).
  void RequireSnapshot(NodeId replica);

  /// Adds `replica` to the replication set after construction (a revived
  /// ex-primary re-integrating as a replica). The peer starts with a forced
  /// reset snapshot — its history may have diverged — and, if the shipper is
  /// already running, gets its ship loop spawned immediately. No-op if the
  /// peer is already tracked.
  void AddReplica(NodeId replica);

  /// Called by the durability manager after it truncated the stream up to
  /// `new_begin`: re-bases the encoded-batch cache on the new watermark.
  void OnTruncate(Lsn new_begin);

  /// Per-replica health as tracked by the ship loop (false after
  /// `unhealthy_after_failures` consecutive failures, true again on the
  /// first successful ship).
  bool IsReplicaHealthy(NodeId replica) const;

  /// Blocks until the replication mode's durability condition holds for
  /// `lsn`: no-op for async, quorum acks for kSyncQuorum, all replicas for
  /// kSyncAll. Fails with Unavailable if the shipper stops first.
  sim::Task<Status> WaitDurable(Lsn lsn);

  /// Highest LSN acknowledged by `replica` (0 if none).
  Lsn AckedLsn(NodeId replica) const;
  /// Highest LSN acknowledged by at least `quorum_replicas` replicas.
  /// Maintained incrementally per ack (this sits on the sync-commit hot
  /// path, called per-ack per-waiter).
  Lsn QuorumAckedLsn() const;
  /// Highest LSN acknowledged by every replica.
  Lsn AllAckedLsn() const;

  /// Batches currently in flight to `replica` (window occupancy).
  size_t InflightBatches(NodeId replica) const;

  const ShipperOptions& options() const { return options_; }
  ShipperOptions* mutable_options() { return &options_; }
  Metrics& metrics() { return metrics_; }
  /// RPC client shipping the batches (per-replica latency stats live here).
  rpc::RpcClient& rpc_client() { return client_; }

 private:
  struct DurabilityWaiter {
    Lsn lsn;
    sim::Promise<bool> done;
    DurabilityWaiter(Lsn l, sim::Simulator* sim) : lsn(l), done(sim) {}
  };

  /// Per-replica ship-loop state: the send cursor, the in-flight window, a
  /// pending rewind from a restart announcement, and failure/backoff
  /// tracking.
  struct PeerState {
    /// Next LSN to send (runs ahead of the cumulative ack while batches are
    /// in flight).
    Lsn cursor = 0;
    /// When valid, the loop rewinds its cursor to this before reading.
    Lsn resume_hint = kInvalidLsn;
    /// Bumped by every rewind; replies tagged with an older epoch only
    /// contribute their cumulative ack.
    uint64_t epoch = 0;
    /// Current-epoch batches in flight (the window occupancy).
    size_t inflight = 0;
    /// Earliest time the loop may send again (the backoff gate after a
    /// failure burst).
    SimTime next_send_at = 0;
    int consecutive_failures = 0;
    SimDuration backoff = 0;
    bool healthy = true;
    /// The replica's resume position fell below the log's first retained
    /// LSN (truncation outran it): redo replay cannot catch it up, the loop
    /// must install the latest checkpoint snapshot first.
    bool needs_snapshot = false;
    /// Send the snapshot with the reset flag (post-promotion: the peer's
    /// history diverged, so "already ahead" must not skip the install).
    bool snapshot_reset = false;
  };

  sim::Task<void> ShipLoop(NodeId replica);
  /// Stop-and-wait full-state transfer: ships the durability manager's
  /// latest checkpoint snapshot and, on acceptance, resumes redo shipping
  /// from the replica's post-install applied LSN.
  sim::Task<void> SendSnapshot(NodeId replica);
  /// One in-flight window slot: ships a pre-encoded batch and feeds the
  /// reply back into the peer's window / health / ack state.
  sim::Task<void> SendBatch(NodeId replica, uint64_t epoch,
                            std::shared_ptr<const std::string> payload);
  /// Returns the fully-encoded kReplAppend payload for the extent starting
  /// at `start`, via the shared cache when possible. Null if the range was
  /// truncated away between Extent and Read.
  std::shared_ptr<const std::string> EncodedRequest(
      Lsn start, const LogStream::BatchExtent& extent);
  /// Invalidates the in-flight window and moves the send cursor to `to`
  /// (clamped to the stream's first retained LSN).
  void Rewind(PeerState* peer, Lsn to);
  /// Sleeps up to `d`, waking early on NotifyAppend / AnnounceReplica /
  /// Stop / ack completion (the loops re-check state on every wakeup).
  sim::Task<void> InterruptibleSleep(SimDuration d);
  void WakeLoops();
  void OnAck(NodeId replica, Lsn acked);
  void OnShipFailure(PeerState* peer, NodeId replica);
  bool DurabilityReached(Lsn lsn) const;

  sim::Simulator* sim_;
  NodeId self_;
  ShardId shard_;
  LogStream* stream_;
  std::vector<NodeId> replicas_;
  ShipperOptions options_;
  rpc::RpcClient client_;
  EncodedBatchCache cache_;
  DurabilityManager* durability_ = nullptr;

  std::map<NodeId, Lsn> acked_;
  /// acked_ values in descending order, updated in place per ack, so the
  /// quorum / all-replica LSNs are O(replicas) bubble steps instead of a
  /// sort per query.
  std::vector<Lsn> sorted_acks_;
  Lsn quorum_acked_ = 0;
  Lsn all_acked_ = 0;
  std::map<NodeId, PeerState> peers_;
  std::vector<DurabilityWaiter> waiters_;
  std::vector<sim::Promise<bool>> sleepers_;
  bool started_ = false;
  bool stopped_ = false;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_
