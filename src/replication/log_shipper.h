#ifndef GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_
#define GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/compression/lz.h"
#include "src/log/log_stream.h"
#include "src/replication/messages.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/future.h"
#include "src/sim/network.h"

namespace globaldb {

struct ShipperOptions {
  ReplicationMode mode = ReplicationMode::kAsync;
  /// The paper's GlobalDB deployment compresses shipped redo with LZ4.
  CompressionType compression = CompressionType::kLz;
  size_t max_batch_records = 2000;
  size_t max_batch_bytes = 256 * 1024;
  /// Idle poll interval when no new records arrive (heartbeats keep this
  /// path rarely taken).
  SimDuration idle_wait = 2 * kMillisecond;
  /// Initial backoff before retrying a failed replica; doubles per
  /// consecutive failure up to `max_retry_backoff`.
  SimDuration retry_backoff = 50 * kMillisecond;
  SimDuration max_retry_backoff = 2 * kSecond;
  /// Consecutive ship failures before a replica is considered down (feeds
  /// the per-replica health state and the ship.replica_down metric).
  int unhealthy_after_failures = 3;
  /// For kSyncQuorum: how many replicas (not counting the primary) must
  /// have persisted a commit before it is acknowledged.
  int quorum_replicas = 1;
};

/// Primary-side redo log shipper: one streaming loop per replica, each with
/// its own LSN cursor, batching, optional LZ compression, and retry.
///
/// Async mode (GlobalDB): transactions never wait for shipping.
/// Sync modes (baseline): DataNode::WaitDurable blocks commit until the
/// quorum (or all replicas) have acknowledged the commit record's LSN —
/// which is what makes remote replicas so expensive in Fig. 6a.
class LogShipper {
 public:
  LogShipper(sim::Simulator* sim, sim::Network* network, NodeId self,
             ShardId shard, LogStream* stream, std::vector<NodeId> replicas,
             ShipperOptions options = {});

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Spawns the per-replica ship loops.
  void Start();
  /// Stops the ship loops, failing any blocked WaitDurable waiters with
  /// Unavailable and waking loops sleeping on idle/backoff timers (they
  /// observe `stopped_` and exit instead of staying suspended forever).
  void Stop();

  /// Wakes idle ship loops after the primary appends new records.
  void NotifyAppend();

  /// Handles a replica's restart announcement (kReplHello): rewinds that
  /// replica's cursor to `durable_lsn + 1`, clears its failure/backoff
  /// state, and wakes its loop so catch-up starts immediately.
  void AnnounceReplica(NodeId replica, Lsn durable_lsn);

  /// Per-replica health as tracked by the ship loop (false after
  /// `unhealthy_after_failures` consecutive failures, true again on the
  /// first successful ship).
  bool IsReplicaHealthy(NodeId replica) const;

  /// Blocks until the replication mode's durability condition holds for
  /// `lsn`: no-op for async, quorum acks for kSyncQuorum, all replicas for
  /// kSyncAll. Fails with Unavailable if the shipper stops first.
  sim::Task<Status> WaitDurable(Lsn lsn);

  /// Highest LSN acknowledged by `replica` (0 if none).
  Lsn AckedLsn(NodeId replica) const;
  /// Highest LSN acknowledged by at least `quorum_replicas` replicas.
  Lsn QuorumAckedLsn() const;
  /// Highest LSN acknowledged by every replica.
  Lsn AllAckedLsn() const;

  const ShipperOptions& options() const { return options_; }
  ShipperOptions* mutable_options() { return &options_; }
  Metrics& metrics() { return metrics_; }
  /// RPC client shipping the batches (per-replica latency stats live here).
  rpc::RpcClient& rpc_client() { return client_; }

 private:
  struct DurabilityWaiter {
    Lsn lsn;
    sim::Promise<bool> done;
    DurabilityWaiter(Lsn l, sim::Simulator* sim) : lsn(l), done(sim) {}
  };

  /// Per-replica ship-loop state: the resume cursor, a pending rewind from
  /// a restart announcement, and failure/backoff tracking.
  struct PeerState {
    Lsn cursor = 0;
    /// When valid, the loop rewinds its cursor to this before reading.
    Lsn resume_hint = kInvalidLsn;
    int consecutive_failures = 0;
    SimDuration backoff = 0;
    bool healthy = true;
  };

  sim::Task<void> ShipLoop(NodeId replica);
  /// Sleeps up to `d`, waking early on NotifyAppend / AnnounceReplica /
  /// Stop (the loops re-check state on every wakeup).
  sim::Task<void> InterruptibleSleep(SimDuration d);
  void WakeLoops();
  void OnAck(NodeId replica, Lsn acked);
  void OnShipFailure(PeerState* peer, NodeId replica);
  bool DurabilityReached(Lsn lsn) const;

  sim::Simulator* sim_;
  NodeId self_;
  ShardId shard_;
  LogStream* stream_;
  std::vector<NodeId> replicas_;
  ShipperOptions options_;
  rpc::RpcClient client_;

  std::map<NodeId, Lsn> acked_;
  std::map<NodeId, PeerState> peers_;
  std::vector<DurabilityWaiter> waiters_;
  std::vector<sim::Promise<bool>> sleepers_;
  bool stopped_ = false;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_REPLICATION_LOG_SHIPPER_H_
