#include "src/chaos/fault_scheduler.h"

#include <algorithm>
#include <string>

#include "src/common/logging.h"

namespace globaldb::chaos {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kNodeRestart:
      return "node_restart";
    case FaultKind::kLinkPartition:
      return "link_partition";
    case FaultKind::kLinkHeal:
      return "link_heal";
    case FaultKind::kRegionPartition:
      return "region_partition";
    case FaultKind::kRegionHeal:
      return "region_heal";
    case FaultKind::kClockSyncOutage:
      return "clock_sync_outage";
    case FaultKind::kClockSyncRestore:
      return "clock_sync_restore";
    case FaultKind::kClockStep:
      return "clock_step";
    case FaultKind::kPrimaryCrash:
      return "primary_crash";
    case FaultKind::kPrimaryRevive:
      return "primary_revive";
    case FaultKind::kMessageChaos:
      return "message_chaos";
    case FaultKind::kMessageChaosOff:
      return "message_chaos_off";
  }
  return "unknown";
}

void FaultScheduler::AddRandomSchedule(Rng* rng,
                                       const RandomScheduleOptions& options) {
  const Cluster& cluster = *cluster_;
  const uint32_t shards = static_cast<uint32_t>(cluster.num_shards());
  const uint32_t replicas = cluster.options().replicas_per_shard;
  const uint32_t regions =
      static_cast<uint32_t>(cluster.options().topology.num_regions());
  const SimDuration window = options.end - options.start;

  auto fault_time = [&]() {
    return options.start + static_cast<SimDuration>(
                               rng->Uniform(static_cast<uint64_t>(window)));
  };
  auto fault_duration = [&]() {
    return static_cast<SimDuration>(
        rng->UniformRange(options.min_fault_duration,
                          options.max_fault_duration));
  };
  auto pair = [&](FaultEvent fault, FaultKind heal_kind) {
    FaultEvent heal = fault;
    heal.at = fault.at + fault_duration();
    heal.kind = heal_kind;
    events_.push_back(fault);
    events_.push_back(heal);
  };

  for (int i = 0; i < options.replica_crashes && replicas > 0; ++i) {
    const ShardId shard = static_cast<ShardId>(rng->Uniform(shards));
    const uint32_t index = static_cast<uint32_t>(rng->Uniform(replicas));
    FaultEvent fault;
    fault.at = fault_time();
    fault.kind = FaultKind::kNodeCrash;
    fault.node = cluster.ReplicaNodeId(shard, index);
    pair(fault, FaultKind::kNodeRestart);
  }

  // Unhealed primary kills; strided from a random base so each targets a
  // distinct shard — two promotions never compete over the same dwindling
  // replica set in one run.
  if (options.primary_crashes > 0 && shards > 0 && replicas > 0) {
    const uint32_t base = static_cast<uint32_t>(rng->Uniform(shards));
    for (int i = 0; i < options.primary_crashes; ++i) {
      FaultEvent fault;
      fault.at = fault_time();
      fault.kind = FaultKind::kPrimaryCrash;
      fault.shard =
          static_cast<ShardId>((base + static_cast<uint32_t>(i)) % shards);
      events_.push_back(fault);
    }
  }

  // Partition a replica from its primary: the shipper must back off, then
  // catch the replica up after heal.
  for (int i = 0; i < options.link_partitions && replicas > 0; ++i) {
    const ShardId shard = static_cast<ShardId>(rng->Uniform(shards));
    const uint32_t index = static_cast<uint32_t>(rng->Uniform(replicas));
    FaultEvent fault;
    fault.at = fault_time();
    fault.kind = FaultKind::kLinkPartition;
    fault.node = Cluster::PrimaryNodeId(shard);
    fault.peer = cluster.ReplicaNodeId(shard, index);
    pair(fault, FaultKind::kLinkHeal);
  }

  for (int i = 0; i < options.region_partitions && regions >= 2; ++i) {
    const RegionId a = static_cast<RegionId>(rng->Uniform(regions));
    RegionId b = static_cast<RegionId>(rng->Uniform(regions - 1));
    if (b >= a) ++b;
    FaultEvent fault;
    fault.at = fault_time();
    fault.kind = FaultKind::kRegionPartition;
    fault.region_a = a;
    fault.region_b = b;
    pair(fault, FaultKind::kRegionHeal);
  }

  const uint32_t cns = static_cast<uint32_t>(cluster.num_cns());
  for (int i = 0; i < options.clock_outages && cns > 0; ++i) {
    FaultEvent fault;
    fault.at = fault_time();
    fault.kind = FaultKind::kClockSyncOutage;
    fault.node = Cluster::CnNodeId(static_cast<uint32_t>(rng->Uniform(cns)));
    pair(fault, FaultKind::kClockSyncRestore);
  }

  for (int i = 0; i < options.clock_steps && cns > 0; ++i) {
    FaultEvent fault;
    fault.at = fault_time();
    fault.kind = FaultKind::kClockStep;
    fault.node = Cluster::CnNodeId(static_cast<uint32_t>(rng->Uniform(cns)));
    fault.clock_step = static_cast<SimDuration>(
        rng->UniformRange(-options.max_clock_step, options.max_clock_step));
    events_.push_back(fault);
  }
}

void FaultScheduler::Start() {
  if (started_) return;
  started_ = true;
  // Stable sort keeps the scripted order for events at equal times.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  cluster_->simulator()->Spawn(ReplayLoop());
}

sim::Task<void> FaultScheduler::ReplayLoop() {
  sim::Simulator* sim = cluster_->simulator();
  for (const FaultEvent& event : events_) {
    if (event.at > sim->now()) co_await sim->Sleep(event.at - sim->now());
    Apply(event);
    metrics_.Add(std::string("chaos.") + FaultKindName(event.kind));
    injected_.push_back(event);
  }
}

void FaultScheduler::ForTargetClocks(NodeId node,
                                     void (*fn)(sim::HardwareClock*,
                                                SimDuration),
                                     SimDuration arg) {
  for (size_t i = 0; i < cluster_->num_cns(); ++i) {
    CoordinatorNode& cn = cluster_->cn(i);
    if (node == kInvalidNodeId || cn.node_id() == node) {
      fn(&cn.clock(), arg);
    }
  }
}

void FaultScheduler::Apply(const FaultEvent& event) {
  GDB_LOG(Info) << "chaos: " << FaultKindName(event.kind) << " node="
                << event.node << " peer=" << event.peer;
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      cluster_->network().SetNodeUp(event.node, false);
      break;
    case FaultKind::kNodeRestart: {
      cluster_->network().SetNodeUp(event.node, true);
      // A restarted replica re-announces its durable LSN to the primary so
      // the shipper rewinds and resumes promptly.
      if (event.node >= 1000) {
        const uint32_t offset = static_cast<uint32_t>(event.node - 1000);
        const ShardId shard = offset / 100;
        const uint32_t index = offset % 100;
        if (shard < cluster_->num_shards() &&
            index < cluster_->options().replicas_per_shard) {
          cluster_->replica(shard, index).Restart();
        }
      }
      break;
    }
    case FaultKind::kLinkPartition:
      cluster_->network().SetPartitioned(event.node, event.peer, true);
      break;
    case FaultKind::kLinkHeal:
      cluster_->network().SetPartitioned(event.node, event.peer, false);
      break;
    case FaultKind::kRegionPartition:
      cluster_->network().SetRegionPartitioned(event.region_a, event.region_b,
                                               true);
      break;
    case FaultKind::kRegionHeal:
      cluster_->network().SetRegionPartitioned(event.region_a, event.region_b,
                                               false);
      break;
    case FaultKind::kClockSyncOutage:
      ForTargetClocks(event.node,
                      [](sim::HardwareClock* clock, SimDuration) {
                        clock->set_sync_healthy(false);
                      },
                      0);
      break;
    case FaultKind::kClockSyncRestore:
      ForTargetClocks(event.node,
                      [](sim::HardwareClock* clock, SimDuration) {
                        clock->set_sync_healthy(true);
                      },
                      0);
      break;
    case FaultKind::kClockStep:
      ForTargetClocks(event.node,
                      [](sim::HardwareClock* clock, SimDuration step) {
                        clock->InjectOffset(step);
                      },
                      event.clock_step);
      break;
    case FaultKind::kPrimaryCrash: {
      // Resolve the shard's *current* primary now, not at schedule time: an
      // earlier promotion may have moved it.
      const NodeId primary = cluster_->primary_node_id(event.shard);
      if (event.stage != CrashStage::kNone) {
        // Stage-targeted: arm the one-shot crash and let the next 2PC
        // transaction passing that protocol point pull the trigger.
        GDB_LOG(Info) << "chaos: arming shard " << event.shard << " primary "
                      << primary << " crash at stage "
                      << static_cast<int>(event.stage);
        cluster_->data_node(event.shard).ArmCrash(event.stage);
        break;
      }
      GDB_LOG(Info) << "chaos: killing shard " << event.shard << " primary "
                    << primary;
      cluster_->network().SetNodeUp(primary, false);
      break;
    }
    case FaultKind::kPrimaryRevive:
      cluster_->ReviveRetiredPrimary(event.shard);
      break;
    case FaultKind::kMessageChaos:
      cluster_->network().SetMessageChaos(true, event.duplicate_fraction);
      break;
    case FaultKind::kMessageChaosOff:
      cluster_->network().SetMessageChaos(false, 0.0);
      break;
  }
}

}  // namespace globaldb::chaos
