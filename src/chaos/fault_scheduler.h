#ifndef GLOBALDB_SRC_CHAOS_FAULT_SCHEDULER_H_
#define GLOBALDB_SRC_CHAOS_FAULT_SCHEDULER_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace globaldb::chaos {

enum class FaultKind {
  kNodeCrash,         // network: node down (in-flight calls reset)
  kNodeRestart,       // node back up; replicas re-announce their durable LSN
  kLinkPartition,     // silent black hole between two nodes
  kLinkHeal,
  kRegionPartition,   // silent black hole between two regions
  kRegionHeal,
  kClockSyncOutage,   // a CN's clock stops syncing (error bound grows)
  kClockSyncRestore,  // syncing resumes (bound re-anchors on next reading)
  kClockStep,         // one-time clock step on a CN (operator error model)
  kPrimaryCrash,      // crash shard `shard`'s *current* primary (resolved at
                      // fire time, so it follows earlier promotions); no
                      // paired heal — recovery is the HealthMonitor's job.
                      // With `stage` set, the crash is *armed* on the
                      // primary instead: it fires when the next 2PC
                      // transaction reaches that protocol point.
  kPrimaryRevive,     // re-integrate shard `shard`'s most recently retired
                      // primary as a replica of the current one
                      // (Cluster::ReviveRetiredPrimary)
  kMessageChaos,      // network-level message duplication + reordering on:
                      // every call/send may be delivered twice with an extra
                      // random delay on the duplicate
  kMessageChaosOff,
};

const char* FaultKindName(FaultKind kind);

/// One scripted fault, fired at absolute simulated time `at`. Which fields
/// matter depends on the kind; `node == kInvalidNodeId` on a clock fault
/// targets every CN (a fleet-wide time-device outage).
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  NodeId node = kInvalidNodeId;
  NodeId peer = kInvalidNodeId;       // link partitions
  RegionId region_a = 0;              // region partitions
  RegionId region_b = 0;
  SimDuration clock_step = 0;         // kClockStep
  ShardId shard = 0;                  // kPrimaryCrash / kPrimaryRevive
  /// kPrimaryCrash stage targeting: kNone crashes immediately at fire time;
  /// any other value arms the primary's one-shot protocol-point crash.
  CrashStage stage = CrashStage::kNone;
  /// kMessageChaos: fraction of deliveries duplicated (0 keeps the
  /// network's current setting).
  double duplicate_fraction = 0.0;
};

/// Knobs for AddRandomSchedule: how many of each fault class to generate
/// inside [start, end]. Every generated fault is paired with its heal, so a
/// schedule always leaves the cluster whole by `end` + max_fault_duration.
struct RandomScheduleOptions {
  SimTime start = 1 * kSecond;
  SimTime end = 5 * kSecond;
  int replica_crashes = 2;
  /// Kills a shard's current primary (no heal). Only schedule these against
  /// a cluster running with health.primary_failover — without promotion the
  /// shard simply halts.
  int primary_crashes = 0;
  int link_partitions = 1;
  int region_partitions = 1;
  int clock_outages = 1;
  int clock_steps = 0;
  SimDuration min_fault_duration = 100 * kMillisecond;
  SimDuration max_fault_duration = 1 * kSecond;
  SimDuration max_clock_step = 2 * kMillisecond;
};

/// Deterministic fault timeline replayed against a running Cluster.
///
/// Faults are either scripted one by one (AddEvent) or generated from a
/// seeded Rng (AddRandomSchedule); either way the timeline is fixed before
/// Start() and the simulator's determinism makes every run reproducible.
/// Each injected event is counted in metrics() (`chaos.<kind>`) and kept in
/// injected() for post-run assertions.
///
/// Random primary crashes (primary_crashes > 0) are only meaningful against
/// a cluster running with health.primary_failover: without promotion a dead
/// primary simply halts its shard. They carry no paired heal — the
/// HealthMonitor promotes a replica instead.
class FaultScheduler {
 public:
  explicit FaultScheduler(Cluster* cluster) : cluster_(cluster) {}

  FaultScheduler(const FaultScheduler&) = delete;
  FaultScheduler& operator=(const FaultScheduler&) = delete;

  void AddEvent(FaultEvent event) { events_.push_back(event); }

  /// Generates a paired fault/heal schedule from `rng` per `options`.
  void AddRandomSchedule(Rng* rng, const RandomScheduleOptions& options);

  /// Spawns the replay coroutine; events fire at their absolute times (in
  /// timeline order for equal times). Call once, after the cluster started.
  void Start();

  /// Events injected so far, in firing order.
  const std::vector<FaultEvent>& injected() const { return injected_; }
  Metrics& metrics() { return metrics_; }

 private:
  sim::Task<void> ReplayLoop();
  void Apply(const FaultEvent& event);
  /// Applies set_sync_healthy / InjectOffset to the targeted CN clock(s).
  void ForTargetClocks(NodeId node, void (*fn)(sim::HardwareClock*,
                                               SimDuration),
                       SimDuration arg);

  Cluster* cluster_;
  bool started_ = false;
  std::vector<FaultEvent> events_;
  std::vector<FaultEvent> injected_;
  Metrics metrics_;
};

}  // namespace globaldb::chaos

#endif  // GLOBALDB_SRC_CHAOS_FAULT_SCHEDULER_H_
