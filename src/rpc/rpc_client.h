#ifndef GLOBALDB_SRC_RPC_RPC_CLIENT_H_
#define GLOBALDB_SRC_RPC_RPC_CLIENT_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_method.h"
#include "src/rpc/trace.h"
#include "src/rpc/wire.h"
#include "src/sim/future.h"
#include "src/sim/network.h"

namespace globaldb::rpc {

/// Client-wide defaults for every call issued through one RpcClient.
struct RpcPolicy {
  /// Per-attempt transport timeout; 0 uses the network's default.
  SimDuration attempt_timeout = 0;
  /// Overall deadline across all attempts and backoffs; 0 = none. When the
  /// deadline expires the call fails with TimedOut and no further attempts
  /// are made.
  SimDuration deadline = 0;
  /// Total attempts (1 = never retry). Only transport errors (Unavailable /
  /// TimedOut) are retried; application errors return immediately.
  int max_attempts = 3;
  /// Exponential backoff between attempts: initial, doubling, clamped.
  SimDuration initial_backoff = 10 * kMillisecond;
  SimDuration max_backoff = 160 * kMillisecond;
  /// Client-wide retry budget (token bucket): each retry spends one token,
  /// each successful call refunds `retry_refill`. When the bucket is empty
  /// calls fail fast with their last transport error instead of retrying —
  /// the standard guard against retry storms amplifying an outage.
  double retry_budget = 32.0;
  double retry_refill = 0.1;
  /// Ring-buffer capacity of the per-client trace log (0 disables).
  size_t trace_capacity = 256;
};

/// Per-call overrides; negative / zero fields fall back to the policy.
struct CallOptions {
  SimDuration attempt_timeout = -1;
  SimDuration deadline = -1;
  int max_attempts = 0;
};

class RpcClient;

namespace internal {

/// Spawn-safe fan-out helper: a plain coroutine function taking everything
/// by value or pointer, so no lambda closure can dangle under the frame.
template <typename Reply>
sim::Task<void> OneTypedCall(RpcClient* client, NodeId to, const char* method,
                             std::string payload, CallOptions options,
                             StatusOr<Reply>* slot, sim::WaitGroup* wg);

}  // namespace internal

/// Typed RPC issuing side: encodes requests, applies the retry / deadline /
/// budget policy, decodes reply envelopes, and records per-call traces plus
/// `rpc.<method>.latency` / `rpc.<method>.retries` histograms.
///
/// Each component owns one client (so metrics and the trace attribute calls
/// to their issuer); the client borrows the simulated network.
class RpcClient {
 public:
  RpcClient(sim::Network* network, NodeId self, RpcPolicy policy = {})
      : network_(network),
        sim_(network->simulator()),
        self_(self),
        policy_(policy),
        retry_tokens_(policy.retry_budget),
        trace_(policy.trace_capacity) {}

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  NodeId self() const { return self_; }
  const RpcPolicy& policy() const { return policy_; }
  double retry_tokens() const { return retry_tokens_; }

  /// Typed unary call: encode, RawCall, decode the reply envelope.
  /// Application errors carried in the envelope and transport errors share
  /// the returned StatusOr channel; use IsTransportError to distinguish.
  template <typename M>
  sim::Task<StatusOr<typename M::Reply>> Call(
      NodeId to, M method, const typename M::Request& request,
      CallOptions options = {}) {
    auto wire = co_await RawCall(to, method.name, request.Encode(), options);
    if (!wire.ok()) co_return wire.status();
    co_return DecodeEnvelope<typename M::Reply>(*wire);
  }

  /// One request fanned out to many peers concurrently; results align with
  /// `nodes`. Replaces the per-module OneCall / PollReplica helpers.
  template <typename M>
  sim::Task<std::vector<StatusOr<typename M::Reply>>> CallAll(
      const std::vector<NodeId>& nodes, M method,
      const typename M::Request& request, CallOptions options = {}) {
    std::vector<std::pair<NodeId, M>> targets;
    targets.reserve(nodes.size());
    for (NodeId node : nodes) targets.emplace_back(node, method);
    co_return co_await CallEach(targets, request, options);
  }

  /// Like CallAll but with a per-target method (e.g. ror.scan on replicas
  /// and dn.scan on primaries in the same sweep). All methods must share
  /// one request/reply type.
  template <typename M>
  sim::Task<std::vector<StatusOr<typename M::Reply>>> CallEach(
      const std::vector<std::pair<NodeId, M>>& targets,
      const typename M::Request& request, CallOptions options = {}) {
    using Reply = typename M::Reply;
    std::vector<StatusOr<Reply>> results(
        targets.size(), StatusOr<Reply>(Status::Unavailable("not attempted")));
    if (targets.empty()) co_return results;
    const std::string payload = request.Encode();
    sim::WaitGroup wg(sim_);
    wg.Add(static_cast<int>(targets.size()));
    for (size_t i = 0; i < targets.size(); ++i) {
      sim_->Spawn(internal::OneTypedCall<Reply>(this, targets[i].first,
                                                targets[i].second.name,
                                                payload, options, &results[i],
                                                &wg));
    }
    co_await wg.Wait();
    co_return results;
  }

  /// Fire-and-forget message (no reply, no retries); dropped silently when
  /// the peer is unreachable, like the raw network Send.
  template <typename M>
  void Send(NodeId to, M method, const typename M::Request& request) {
    std::string payload = request.Encode();
    TraceEvent event;
    event.start = sim_->now();
    event.peer = to;
    event.method = method.name;
    event.request_bytes = payload.size();
    event.one_way = true;
    trace_.Record(event);
    metrics_.Add("rpc.sends");
    network_->Send(self_, to, method.name, std::move(payload));
  }

  /// Untyped core: the retry loop. Returns the raw reply envelope. Exposed
  /// for tests that need to craft malformed requests.
  sim::Task<StatusOr<std::string>> RawCall(NodeId to, const char* method,
                                           std::string payload,
                                           CallOptions options = {});

  Metrics& metrics() { return metrics_; }
  TraceLog& trace() { return trace_; }

 private:
  sim::Network* network_;
  sim::Simulator* sim_;
  NodeId self_;
  RpcPolicy policy_;
  double retry_tokens_;
  Metrics metrics_;
  TraceLog trace_;
};

/// Folds a fan-out result vector into one Status, first error wins.
template <typename T>
Status FirstError(const std::vector<StatusOr<T>>& results) {
  for (const auto& result : results) {
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

namespace internal {

template <typename Reply>
sim::Task<void> OneTypedCall(RpcClient* client, NodeId to, const char* method,
                             std::string payload, CallOptions options,
                             StatusOr<Reply>* slot, sim::WaitGroup* wg) {
  auto wire = co_await client->RawCall(to, method, std::move(payload),
                                       options);
  if (!wire.ok()) {
    *slot = wire.status();
  } else {
    *slot = DecodeEnvelope<Reply>(*wire);
  }
  wg->Done();
}

}  // namespace internal

}  // namespace globaldb::rpc

#endif  // GLOBALDB_SRC_RPC_RPC_CLIENT_H_
