#ifndef GLOBALDB_SRC_RPC_RPC_SERVER_H_
#define GLOBALDB_SRC_RPC_RPC_SERVER_H_

#include <string>
#include <utility>

#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_method.h"
#include "src/rpc/wire.h"
#include "src/sim/network.h"

namespace globaldb::rpc {

namespace internal {

/// Request decode + handler dispatch + reply envelope encode, as a plain
/// coroutine function whose frame owns copies of everything it touches
/// (spawn-safety idiom: the registered lambda below is *not* a coroutine).
template <typename Request, typename Reply, typename Handler>
sim::Task<std::string> InvokeHandler(Handler handler, NodeId from,
                                     std::string payload) {
  auto request = Request::Decode(Slice(payload));
  if (!request.ok()) co_return EncodeErrorEnvelope(request.status());
  StatusOr<Reply> result = co_await handler(from, std::move(*request));
  if (!result.ok()) co_return EncodeErrorEnvelope(result.status());
  co_return EncodeOkEnvelope(result->Encode());
}

}  // namespace internal

/// Typed dispatch side: decodes requests and encodes reply envelopes
/// centrally so handlers take and return message structs. Replaces the
/// duplicated bind-lambda registration blocks in each node class.
///
/// A handler is any callable `(NodeId from, M::Request) ->
/// sim::Task<StatusOr<M::Reply>>`; the idiomatic registration forwards to a
/// member coroutine:
///
///   server_.Handle(kDnRead, [this](NodeId from, ReadRequest request) {
///     return HandleRead(from, std::move(request));
///   });
///
/// The lambda must not itself be a coroutine — it returns the member-call
/// Task directly, so no closure outlives its frame.
class RpcServer {
 public:
  RpcServer(sim::Network* network, NodeId self)
      : network_(network), self_(self) {}

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  NodeId self() const { return self_; }

  /// Registers `handler` for `method`. Re-registering overwrites, which
  /// tests use to interpose instrumented handlers.
  template <typename M, typename Handler>
  void Handle(M method, Handler handler) {
    network_->RegisterHandler(
        self_, method.name,
        [handler = std::move(handler)](
            NodeId from, std::string payload) -> sim::Task<std::string> {
          return internal::InvokeHandler<typename M::Request,
                                         typename M::Reply>(
              handler, from, std::move(payload));
        });
  }

 private:
  sim::Network* network_;
  NodeId self_;
};

}  // namespace globaldb::rpc

#endif  // GLOBALDB_SRC_RPC_RPC_SERVER_H_
