#ifndef GLOBALDB_SRC_RPC_WIRE_H_
#define GLOBALDB_SRC_RPC_WIRE_H_

#include <string>

#include "src/common/codec.h"
#include "src/common/slice.h"
#include "src/common/statusor.h"

namespace globaldb::rpc {

/// Reply envelope shared by every RPC method.
///
/// Requests travel as the bare message encoding (no envelope), so crafted
/// payloads and the shipper's pre-encoded batches stay byte-compatible.
/// Replies are prefixed with one flag byte:
///
///   [0x01][reply message bytes]            success
///   [0x00][u8 code][lenprefixed message]   application / decode error
///
/// Transport failures (node down, partition, timeout) never reach the
/// envelope: they surface as StatusOr errors from the network layer.

/// Serializes `status` as [u8 code][lenprefixed message].
inline void EncodeStatus(const Status& status, std::string* dst) {
  dst->push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(dst, status.message());
}

inline bool DecodeStatus(Slice* in, Status* out) {
  if (in->empty()) return false;
  const auto code = static_cast<StatusCode>((*in)[0]);
  in->RemovePrefix(1);
  Slice message;
  if (!GetLengthPrefixed(in, &message)) return false;
  *out = Status(code, message.ToString());
  return true;
}

inline std::string EncodeOkEnvelope(const std::string& reply_payload) {
  std::string s;
  s.reserve(reply_payload.size() + 1);
  s.push_back(1);
  s += reply_payload;
  return s;
}

inline std::string EncodeErrorEnvelope(const Status& status) {
  std::string s;
  s.push_back(0);
  EncodeStatus(status.ok() ? Status::Internal("error envelope without error")
                           : status,
               &s);
  return s;
}

/// Splits a reply envelope into the typed reply or the carried error.
template <typename Reply>
StatusOr<Reply> DecodeEnvelope(const std::string& wire) {
  Slice in(wire);
  if (in.empty()) return Status::Corruption("rpc envelope: empty reply");
  const char flag = in[0];
  in.RemovePrefix(1);
  if (flag == 1) return Reply::Decode(in);
  if (flag != 0) return Status::Corruption("rpc envelope: bad flag");
  Status status;
  if (!DecodeStatus(&in, &status) || status.ok()) {
    return Status::Corruption("rpc envelope: bad error status");
  }
  return status;
}

/// True for the transport-level failures a retry can help with. Application
/// errors returned by a handler use other codes and are never retried.
inline bool IsTransportError(const Status& status) {
  return status.IsUnavailable() || status.IsTimedOut();
}

}  // namespace globaldb::rpc

#endif  // GLOBALDB_SRC_RPC_WIRE_H_
