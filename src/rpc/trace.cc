#include "src/rpc/trace.h"

#include <cinttypes>
#include <cstdio>

namespace globaldb::rpc {

namespace {

/// Human-scale duration: ns below 10us, us below 10ms, ms above.
std::string FormatDuration(SimDuration d) {
  char buf[32];
  if (d < 10 * kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", d);
  } else if (d < 10 * kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(d) / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(d) / kMillisecond);
  }
  return buf;
}

}  // namespace

std::vector<TraceEvent> TraceLog::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  // events_[next_..) are the oldest entries once the ring has wrapped.
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(next_ + i) % events_.size()]);
  }
  return out;
}

std::string TraceLog::Format(const TraceEvent& event) {
  std::string line = "[t=";
  line += FormatDuration(event.start);
  line += " +";
  line += FormatDuration(event.elapsed);
  line += "] ";
  line += event.method;
  line += event.one_way ? " => " : " -> ";
  line += std::to_string(event.peer);
  if (!event.one_way) {
    line += " attempts=";
    line += std::to_string(event.attempts);
    line += " req=";
    line += std::to_string(event.request_bytes);
    line += "B reply=";
    line += std::to_string(event.reply_bytes);
    line += "B ";
    line += StatusCodeName(event.outcome);
  } else {
    line += " req=";
    line += std::to_string(event.request_bytes);
    line += "B one-way";
  }
  return line;
}

std::string TraceLog::Dump(size_t max_events) const {
  std::vector<TraceEvent> events = Snapshot();
  size_t first = 0;
  if (max_events > 0 && events.size() > max_events) {
    first = events.size() - max_events;
  }
  std::string out;
  for (size_t i = first; i < events.size(); ++i) {
    out += Format(events[i]);
    out += '\n';
  }
  return out;
}

}  // namespace globaldb::rpc
