#ifndef GLOBALDB_SRC_RPC_TRACE_H_
#define GLOBALDB_SRC_RPC_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace globaldb::rpc {

/// One completed RPC as seen by the issuing client.
struct TraceEvent {
  SimTime start = 0;          ///< virtual time the call was issued
  SimDuration elapsed = 0;    ///< queue + wire + retry time until completion
  NodeId peer = 0;            ///< callee node
  const char* method = "";    ///< descriptor name (static storage)
  int attempts = 1;           ///< 1 = no retries
  size_t request_bytes = 0;
  size_t reply_bytes = 0;     ///< 0 on failure or one-way sends
  StatusCode outcome = StatusCode::kOk;
  bool one_way = false;       ///< fire-and-forget Send (no reply expected)
};

/// Fixed-capacity ring buffer of the most recent RPCs issued by one client.
/// Cheap enough to stay always-on; bench harnesses dump it post-mortem to
/// explain tail latencies (which call retried, against whom, for how long).
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 256) : capacity_(capacity) {
    events_.reserve(capacity_);
  }

  void Record(TraceEvent event) {
    ++total_recorded_;
    if (capacity_ == 0) return;
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      events_[next_] = event;
      next_ = (next_ + 1) % capacity_;
    }
  }

  size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  size_t size() const { return events_.size(); }
  /// Events ever recorded, including those evicted from the ring.
  uint64_t total_recorded() const { return total_recorded_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// One event as a single text line, e.g.
  ///   [  1.203ms +450us] gtm.timestamp -> 0 attempts=2 req=12B reply=9B OK
  static std::string Format(const TraceEvent& event);

  /// Formats the newest `max_events` retained events (0 = all retained),
  /// oldest first, one per line.
  std::string Dump(size_t max_events = 0) const;

  void Clear() {
    events_.clear();
    next_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  size_t next_ = 0;  // overwrite position once the ring is full
  uint64_t total_recorded_ = 0;
};

}  // namespace globaldb::rpc

#endif  // GLOBALDB_SRC_RPC_TRACE_H_
