#include "src/rpc/rpc_client.h"

namespace globaldb::rpc {

sim::Task<StatusOr<std::string>> RpcClient::RawCall(NodeId to,
                                                    const char* method,
                                                    std::string payload,
                                                    CallOptions options) {
  const SimDuration attempt_timeout = options.attempt_timeout >= 0
                                          ? options.attempt_timeout
                                          : policy_.attempt_timeout;
  const SimDuration deadline =
      options.deadline >= 0 ? options.deadline : policy_.deadline;
  const int max_attempts = std::max(
      1, options.max_attempts > 0 ? options.max_attempts
                                  : policy_.max_attempts);

  const SimTime start = sim_->now();
  const size_t request_bytes = payload.size();
  StatusOr<std::string> result = Status::Unavailable("rpc: not attempted");
  int attempt = 0;

  while (true) {
    // Clamp this attempt's transport timeout to the remaining deadline.
    SimDuration timeout = attempt_timeout;
    if (deadline > 0) {
      const SimDuration remaining = deadline - (sim_->now() - start);
      if (remaining <= 0) {
        result = Status::TimedOut(std::string("rpc deadline: ") + method);
        break;
      }
      if (timeout == 0 || timeout > remaining) timeout = remaining;
    }

    ++attempt;
    result = co_await network_->Call(self_, to, method, payload, timeout);
    if (result.ok() || !IsTransportError(result.status())) break;

    // Deadline exceeded surfaces TimedOut with no further attempts, even
    // when the last transport error was Unavailable.
    if (deadline > 0 && sim_->now() - start >= deadline) {
      result = Status::TimedOut(std::string("rpc deadline: ") + method);
      break;
    }
    if (attempt >= max_attempts) break;
    if (retry_tokens_ < 1.0) {
      metrics_.Add("rpc.budget_exhausted");
      break;
    }
    retry_tokens_ -= 1.0;
    metrics_.Add("rpc.retries");

    SimDuration backoff = policy_.initial_backoff;
    for (int i = 1; i < attempt && backoff < policy_.max_backoff; ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, policy_.max_backoff);
    if (deadline > 0) {
      backoff = std::min(backoff, deadline - (sim_->now() - start));
    }
    if (backoff > 0) co_await sim_->Sleep(backoff);
  }

  if (result.ok()) {
    retry_tokens_ =
        std::min(policy_.retry_budget, retry_tokens_ + policy_.retry_refill);
  }

  const SimDuration elapsed = sim_->now() - start;
  const std::string prefix = std::string("rpc.") + method;
  metrics_.Add("rpc.calls");
  if (!result.ok()) metrics_.Add("rpc.errors");
  metrics_.Hist(prefix + ".latency").Record(elapsed);
  metrics_.Hist(prefix + ".retries").Record(attempt - 1);

  TraceEvent event;
  event.start = start;
  event.elapsed = elapsed;
  event.peer = to;
  event.method = method;
  event.attempts = attempt;
  event.request_bytes = request_bytes;
  event.reply_bytes = result.ok() ? result->size() : 0;
  event.outcome = result.ok() ? StatusCode::kOk : result.status().code();
  trace_.Record(event);

  co_return result;
}

}  // namespace globaldb::rpc
