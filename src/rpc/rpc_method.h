#ifndef GLOBALDB_SRC_RPC_RPC_METHOD_H_
#define GLOBALDB_SRC_RPC_RPC_METHOD_H_

#include <string>

#include "src/common/slice.h"
#include "src/common/statusor.h"

namespace globaldb::rpc {

/// Compile-time descriptor pairing an RPC method name with its request and
/// reply message types. Declared as inline constexpr constants next to the
/// message structs, e.g.:
///
///   inline constexpr rpc::RpcMethod<ReadRequest, ReadReply> kDnRead{
///       "dn.read"};
///
/// RpcClient::Call and RpcServer::Handle take the descriptor, so a call site
/// cannot pair the wrong codec with a method: the request is encoded and the
/// reply decoded from the types carried here.
template <typename RequestT, typename ReplyT>
struct RpcMethod {
  using Request = RequestT;
  using Reply = ReplyT;

  const char* name;
};

/// Message with no payload (acks, parameterless requests). Replaces the old
/// per-module `StatusReply`: success/error now travels in the reply envelope
/// (see wire.h), so a handler with nothing else to say returns EmptyMessage.
struct EmptyMessage {
  std::string Encode() const { return std::string(); }
  static StatusOr<EmptyMessage> Decode(Slice in) {
    (void)in;  // trailing bytes tolerated: older peers may append fields
    return EmptyMessage{};
  }
};

}  // namespace globaldb::rpc

#endif  // GLOBALDB_SRC_RPC_RPC_METHOD_H_
