#ifndef GLOBALDB_SRC_TXN_TIMESTAMP_SOURCE_H_
#define GLOBALDB_SRC_TXN_TIMESTAMP_SOURCE_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_client.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/future.h"
#include "src/sim/hardware_clock.h"
#include "src/sim/network.h"
#include "src/txn/messages.h"

namespace globaldb {

/// Per-CN timestamp facility implementing all three modes of Section III.
///
/// - GTM: every begin/commit is an RPC to the GTM server (the centralized
///   baseline whose cost Figs. 6b-6d measure).
/// - GClock: timestamps come from the local synchronized clock,
///   TS = T_clock + T_err, with the Spanner-style wait until
///   T_clock > TS at both invocation and commit. Single-shard reads bypass
///   the invocation wait using the node's last committed timestamp.
/// - DUAL: obtain the local GClock upper bound, then ask the GTM server for
///   TS_DUAL = max(TS_GTM, TS_GClock) + 1; commit additionally waits out the
///   local clock so later GClock transactions order after it.
///
/// A transaction's mode is captured at begin; commit routes by that mode so
/// the transition protocol's abort/wait rules apply (Figs. 2-3, Listing 1).
class TimestampSource {
 public:
  TimestampSource(sim::Simulator* sim, sim::Network* network, NodeId self,
                  NodeId gtm_node, sim::HardwareClock* clock);

  TimestampSource(const TimestampSource&) = delete;
  TimestampSource& operator=(const TimestampSource&) = delete;

  TimestampMode mode() const { return mode_; }
  /// Local mode switch (normally driven via the kCnSetMode RPC).
  void SetMode(TimestampMode mode) { mode_ = mode; }

  /// When on (the default), concurrent GTM/DUAL requests on this node share
  /// a single in-flight kGtmTimestamp RPC: the server grants a contiguous
  /// range of `count` timestamps and the source fans it out to the waiters
  /// in arrival order (DESIGN.md §10). Off reverts to one RPC per request.
  void set_coalescing(bool on) { coalesce_ = on; }
  bool coalescing() const { return coalesce_; }

  /// Snapshot timestamp for a new transaction. Single-shard read-only work
  /// can bypass the GClock invocation wait via the node's last committed
  /// timestamp. Also returns the mode the transaction runs under.
  struct Grant {
    Timestamp ts = 0;
    TimestampMode mode = TimestampMode::kGtm;
  };
  sim::Task<StatusOr<Grant>> BeginTs(bool single_shard_read);

  /// Commit timestamp for a transaction begun under `txn_mode`. All
  /// required waits (GClock commit wait; the 2x-error-bound DUAL wait for
  /// GTM-mode transactions) are performed before returning. Fails with
  /// Aborted for GTM transactions after the cluster moved to GClock.
  sim::Task<StatusOr<Timestamp>> CommitTs(TimestampMode txn_mode);

  /// Notes a locally committed transaction timestamp (single-shard snapshot
  /// bypass and transition floor collection).
  void RecordCommitted(Timestamp ts) {
    last_committed_ = std::max(last_committed_, ts);
    max_issued_ = std::max(max_issued_, ts);
  }

  Timestamp last_committed() const { return last_committed_; }
  /// Largest timestamp this node has issued or observed (GClock floor for
  /// the GClock -> GTM transition).
  Timestamp max_issued() const { return max_issued_; }

  /// Epoch-mode health report from the CN's EpochManager after each seal:
  /// surfaced to the health monitor via kCnMaxIssued acks so it can demote
  /// EPOCH -> GTM when seal latency or the OCC abort rate spikes
  /// (DESIGN.md §15).
  void ReportEpochHealth(SimDuration seal_latency, uint32_t abort_permille) {
    epoch_seal_latency_ = seal_latency;
    epoch_abort_permille_ = abort_permille;
  }

  sim::HardwareClock* clock() { return clock_; }
  Metrics& metrics() { return metrics_; }
  /// RPC client used for GTM traffic (retry/latency stats live here).
  rpc::RpcClient& rpc_client() { return client_; }

 private:
  /// Waits until the local clock reading exceeds `ts` (commit wait).
  sim::Task<void> WaitClockPast(Timestamp ts);
  /// GClock timestamp + wait (both invocation and commit use this).
  sim::Task<Timestamp> GclockTimestamp();
  /// GTM-path RPC (GTM and DUAL modes). With coalescing on this enqueues a
  /// waiter and lets the pump batch it with its contemporaries.
  sim::Task<StatusOr<GtmTimestampReply>> CallGtm(TimestampMode client_mode,
                                                 bool is_commit);
  /// One queued GTM/DUAL request awaiting a coalesced grant. DUAL inputs
  /// (clock upper bound, error bound) are captured at enqueue time: the
  /// granted range exceeds the batch max, so each waiter's timestamp still
  /// dominates everything it observed before requesting.
  struct GtmWaiter {
    explicit GtmWaiter(sim::Simulator* sim) : reply(sim) {}
    Timestamp gclock_upper = 0;
    SimDuration error_bound = 0;
    sim::Promise<StatusOr<GtmTimestampReply>> reply;
  };
  /// Drains queue_[mode][is_commit]: one RPC per accumulated batch, fanning
  /// the granted range to waiters in arrival order. At most one pump (and
  /// so one in-flight RPC) per queue.
  sim::Task<void> PumpGtm(TimestampMode mode, bool is_commit);
  static constexpr int ModeIndex(TimestampMode mode) {
    return static_cast<int>(mode);
  }
  static constexpr int CommitIndex(bool is_commit) { return is_commit ? 1 : 0; }
  void BindService();
  /// Current issued-timestamp watermark + clock error bound.
  AckReply MakeAck() const;
  sim::Task<StatusOr<AckReply>> HandleSetMode(NodeId from,
                                              SetModeRequest request);
  sim::Task<StatusOr<AckReply>> HandleMaxIssued(NodeId from,
                                                rpc::EmptyMessage request);

  sim::Simulator* sim_;
  NodeId self_;
  NodeId gtm_node_;
  sim::HardwareClock* clock_;
  rpc::RpcClient client_;
  rpc::RpcServer server_;

  TimestampMode mode_ = TimestampMode::kGtm;
  Timestamp last_committed_ = 0;
  Timestamp max_issued_ = 0;
  bool coalesce_ = true;
  // Waiter queues and pump liveness, indexed by (TimestampMode, is_commit).
  // A batch is homogeneous on both axes: GTM and DUAL are never mixed (the
  // server applies different grant rules — Eq. 2 vs Eq. 3), and begins never
  // share an RPC with commits, so the server's per-request verdict (abort,
  // DUAL wait) applies to every waiter of the batch identically — no
  // per-waiter patching of the shared reply.
  std::vector<std::shared_ptr<GtmWaiter>> queue_[4][2];
  bool pump_active_[4][2] = {};
  // Latest epoch seal health (EPOCH mode only; see ReportEpochHealth).
  SimDuration epoch_seal_latency_ = 0;
  uint32_t epoch_abort_permille_ = 0;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_TXN_TIMESTAMP_SOURCE_H_
