#ifndef GLOBALDB_SRC_TXN_TIMESTAMP_SOURCE_H_
#define GLOBALDB_SRC_TXN_TIMESTAMP_SOURCE_H_

#include <algorithm>

#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_client.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/hardware_clock.h"
#include "src/sim/network.h"
#include "src/txn/messages.h"

namespace globaldb {

/// Per-CN timestamp facility implementing all three modes of Section III.
///
/// - GTM: every begin/commit is an RPC to the GTM server (the centralized
///   baseline whose cost Figs. 6b-6d measure).
/// - GClock: timestamps come from the local synchronized clock,
///   TS = T_clock + T_err, with the Spanner-style wait until
///   T_clock > TS at both invocation and commit. Single-shard reads bypass
///   the invocation wait using the node's last committed timestamp.
/// - DUAL: obtain the local GClock upper bound, then ask the GTM server for
///   TS_DUAL = max(TS_GTM, TS_GClock) + 1; commit additionally waits out the
///   local clock so later GClock transactions order after it.
///
/// A transaction's mode is captured at begin; commit routes by that mode so
/// the transition protocol's abort/wait rules apply (Figs. 2-3, Listing 1).
class TimestampSource {
 public:
  TimestampSource(sim::Simulator* sim, sim::Network* network, NodeId self,
                  NodeId gtm_node, sim::HardwareClock* clock);

  TimestampSource(const TimestampSource&) = delete;
  TimestampSource& operator=(const TimestampSource&) = delete;

  TimestampMode mode() const { return mode_; }
  /// Local mode switch (normally driven via the kCnSetMode RPC).
  void SetMode(TimestampMode mode) { mode_ = mode; }

  /// Snapshot timestamp for a new transaction. Single-shard read-only work
  /// can bypass the GClock invocation wait via the node's last committed
  /// timestamp. Also returns the mode the transaction runs under.
  struct Grant {
    Timestamp ts = 0;
    TimestampMode mode = TimestampMode::kGtm;
  };
  sim::Task<StatusOr<Grant>> BeginTs(bool single_shard_read);

  /// Commit timestamp for a transaction begun under `txn_mode`. All
  /// required waits (GClock commit wait; the 2x-error-bound DUAL wait for
  /// GTM-mode transactions) are performed before returning. Fails with
  /// Aborted for GTM transactions after the cluster moved to GClock.
  sim::Task<StatusOr<Timestamp>> CommitTs(TimestampMode txn_mode);

  /// Notes a locally committed transaction timestamp (single-shard snapshot
  /// bypass and transition floor collection).
  void RecordCommitted(Timestamp ts) {
    last_committed_ = std::max(last_committed_, ts);
    max_issued_ = std::max(max_issued_, ts);
  }

  Timestamp last_committed() const { return last_committed_; }
  /// Largest timestamp this node has issued or observed (GClock floor for
  /// the GClock -> GTM transition).
  Timestamp max_issued() const { return max_issued_; }

  sim::HardwareClock* clock() { return clock_; }
  Metrics& metrics() { return metrics_; }
  /// RPC client used for GTM traffic (retry/latency stats live here).
  rpc::RpcClient& rpc_client() { return client_; }

 private:
  /// Waits until the local clock reading exceeds `ts` (commit wait).
  sim::Task<void> WaitClockPast(Timestamp ts);
  /// GClock timestamp + wait (both invocation and commit use this).
  sim::Task<Timestamp> GclockTimestamp();
  /// DUAL-path RPC to the GTM server.
  sim::Task<StatusOr<GtmTimestampReply>> CallGtm(TimestampMode client_mode,
                                                 bool is_commit);
  void BindService();
  /// Current issued-timestamp watermark + clock error bound.
  AckReply MakeAck() const;
  sim::Task<StatusOr<AckReply>> HandleSetMode(NodeId from,
                                              SetModeRequest request);
  sim::Task<StatusOr<AckReply>> HandleMaxIssued(NodeId from,
                                                rpc::EmptyMessage request);

  sim::Simulator* sim_;
  NodeId self_;
  NodeId gtm_node_;
  sim::HardwareClock* clock_;
  rpc::RpcClient client_;
  rpc::RpcServer server_;

  TimestampMode mode_ = TimestampMode::kGtm;
  Timestamp last_committed_ = 0;
  Timestamp max_issued_ = 0;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_TXN_TIMESTAMP_SOURCE_H_
