#include "src/txn/transition.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/txn/messages.h"

namespace globaldb {

sim::Task<StatusOr<AckReply>> TransitionCoordinator::SetGtmMode(
    TimestampMode mode, Timestamp floor) {
  SetModeRequest request;
  request.mode = mode;
  request.floor = floor;
  co_return co_await client_.Call(gtm_node_, kGtmSetMode, request);
}

sim::Task<StatusOr<TransitionCoordinator::SweepResult>>
TransitionCoordinator::SetAllCnModes(TimestampMode mode) {
  // Sequential on purpose: the transition protocol tolerates a slow sweep
  // but not a half-switched cluster left behind by an aborted fan-out.
  SweepResult result;
  SetModeRequest request;
  request.mode = mode;
  for (NodeId cn : cn_nodes_) {
    auto ack = co_await client_.Call(cn, kCnSetMode, request);
    if (!ack.ok()) co_return ack.status();
    result.max_issued = std::max(result.max_issued, ack->max_issued);
    result.max_error_bound =
        std::max(result.max_error_bound, ack->max_error_bound);
  }
  co_return result;
}

sim::Task<StatusOr<SimDuration>> TransitionCoordinator::SwitchToGclock() {
  GDB_LOG(Info) << "transition: GTM -> GClock begins";
  metrics_.Add("transition.to_gclock");

  // Step 1: GTM server enters DUAL and starts tracking error bounds.
  auto gtm_ack = co_await SetGtmMode(TimestampMode::kDual, 0);
  if (!gtm_ack.ok()) co_return gtm_ack.status();

  // Step 2: every CN enters DUAL.
  auto sweep = co_await SetAllCnModes(TimestampMode::kDual);
  if (!sweep.ok()) co_return sweep.status();

  // Step 3: re-read the GTM's max observed error bound now that all CNs
  // acked, and dwell in DUAL for twice that (plus the CN-side bounds, to be
  // conservative about bounds the server has not seen yet).
  auto observe = co_await SetGtmMode(TimestampMode::kDual, 0);
  if (!observe.ok()) co_return observe.status();
  const SimDuration dwell =
      2 * std::max(observe->max_error_bound, sweep->max_error_bound);
  co_await sim_->Sleep(dwell);

  // Step 4: GTM server then CNs move to GClock.
  auto final_ack = co_await SetGtmMode(TimestampMode::kGclock, 0);
  if (!final_ack.ok()) co_return final_ack.status();
  auto cn_final = co_await SetAllCnModes(TimestampMode::kGclock);
  if (!cn_final.ok()) co_return cn_final.status();

  GDB_LOG(Info) << "transition: GTM -> GClock complete, dwell=" << dwell
                << "ns";
  co_return dwell;
}

sim::Task<StatusOr<Timestamp>> TransitionCoordinator::SwitchToGtm() {
  GDB_LOG(Info) << "transition: GClock -> GTM begins";
  metrics_.Add("transition.to_gtm");

  // Step 1: GTM server enters DUAL (bridging any early DUAL clients).
  auto gtm_ack = co_await SetGtmMode(TimestampMode::kDual, 0);
  if (!gtm_ack.ok()) co_return gtm_ack.status();

  // Step 2: CNs enter DUAL; collect the largest GClock timestamp issued.
  auto sweep = co_await SetAllCnModes(TimestampMode::kDual);
  if (!sweep.ok()) co_return sweep.status();

  // Step 3: no dwell needed. Floor the GTM counter above every issued
  // GClock timestamp and switch everyone to GTM.
  const Timestamp floor = sweep->max_issued;
  auto final_ack = co_await SetGtmMode(TimestampMode::kGtm, floor);
  if (!final_ack.ok()) co_return final_ack.status();
  auto cn_final = co_await SetAllCnModes(TimestampMode::kGtm);
  if (!cn_final.ok()) co_return cn_final.status();

  GDB_LOG(Info) << "transition: GClock -> GTM complete, floor=" << floor;
  co_return floor;
}

sim::Task<StatusOr<Timestamp>> TransitionCoordinator::SwitchEpochToGtm() {
  GDB_LOG(Info) << "transition: EPOCH -> GTM begins";
  metrics_.Add("transition.epoch_to_gtm");

  // Epoch and GTM timestamps share the GTM counter, so there is no bridge
  // phase: flip the server (a no-op counter-wise) and then every CN. New
  // transactions on a flipped CN commit individually; members of epochs
  // sealed before the flip drain through their epoch's grouped rounds.
  auto gtm_ack = co_await SetGtmMode(TimestampMode::kGtm, 0);
  if (!gtm_ack.ok()) co_return gtm_ack.status();
  auto sweep = co_await SetAllCnModes(TimestampMode::kGtm);
  if (!sweep.ok()) co_return sweep.status();

  GDB_LOG(Info) << "transition: EPOCH -> GTM complete, max_issued="
                << sweep->max_issued;
  co_return sweep->max_issued;
}

}  // namespace globaldb
