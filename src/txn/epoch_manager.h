#ifndef GLOBALDB_SRC_TXN_EPOCH_MANAGER_H_
#define GLOBALDB_SRC_TXN_EPOCH_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/future.h"
#include "src/txn/txn_decisions.h"

// The epoch protocol messages (EpochPrepareRequest / EpochCommitRequest and
// their kDnEpochPrepare / kDnEpochCommit descriptors) live in
// src/cluster/messages.h because they embed the write-batch entry codec.
// That header is codec-only (no cluster link dependency), so including it
// here keeps txn below cluster in the link order.
#include "src/cluster/messages.h"

namespace globaldb {

class TimestampSource;

/// Epoch/group-commit coordinator (DESIGN.md §15, one instance per CN).
///
/// Under TimestampMode::kEpoch, committing transactions do not run an
/// individual 2PC: they register with the currently open epoch and park.
/// Every `interval` the epoch seals, and the manager
///   1. validates the sealed members OCC-style in admission order against
///      recently committed epochs and earlier members of the same epoch,
///      aborting conflicting members individually (never the whole epoch);
///   2. sends ONE grouped kDnEpochPrepare per participant shard — carrying
///      each member's not-yet-flushed write tail — concurrently with ONE
///      commit-timestamp fetch through the GTM coalescing machinery;
///   3. records the commit/abort decision per member (and under the epoch
///      id, which doubles as a txn-outcome key for PR-7 in-doubt
///      resolution), then acks the surviving members and drives ONE grouped
///      kDnEpochCommit per shard in the background, re-routing to promoted
///      primaries until each lands.
///
/// Cross-region commit coordination is therefore O(epochs), not O(txns):
/// members share the epoch's single prepare round, single timestamp grant,
/// and single phase-2 round per shard. Seals pipeline — epoch N+1 ticks
/// while epoch N's WAN rounds are still in flight.
class EpochManager {
 public:
  struct Options {
    /// Seal cadence: how long an epoch stays open collecting members.
    SimDuration interval = 5 * kMillisecond;
    /// Grouped phase-2 re-drive policy (mirrors the CN's individual 2PC).
    int commit_retry_limit = 20;
    SimDuration commit_retry_backoff = 100 * kMillisecond;
    /// OCC history: committed (table, key) -> commit-ts pairs remembered for
    /// validating later members. Bounded FIFO; eviction only weakens the
    /// (best-effort, SI-preserving) serializability filter.
    size_t recent_commit_capacity = 8192;
  };

  struct Callbacks {
    /// Allocates the epoch id from the owning CN's txn-id space so in-doubt
    /// resolvers route epoch-outcome lookups to this CN (owner = id >> 40).
    std::function<TxnId()> next_epoch_id;
    /// Current primary for a shard, re-consulted on every delivery attempt.
    std::function<NodeId(ShardId)> shard_primary;
  };

  /// One member's commit request, captured at EndTxn time.
  struct CommitArgs {
    TxnId txn = kInvalidTxnId;
    Timestamp snapshot = 0;
    /// Every write shard (flushed batches and queued tails alike).
    std::vector<ShardId> participants;
    /// Queued-but-unflushed write entries per shard; they ride inside the
    /// grouped epoch prepare instead of a final kDnWriteBatch flush.
    std::map<ShardId, std::vector<WriteBatchRequest::Entry>> pending_writes;
    /// OCC read/write sets: (table, key) pairs touched by plain snapshot
    /// reads and by writes. FOR UPDATE reads are excluded (they read the
    /// latest version under the row lock).
    std::vector<std::pair<TableId, RowKey>> reads;
    std::vector<std::pair<TableId, RowKey>> writes;
  };

  /// `decided` is the owning CN's decision cache and `metrics` its metrics
  /// registry (epoch.* counters land beside the cn.* commit-path stats).
  EpochManager(sim::Simulator* sim, TimestampSource* ts_source,
               rpc::RpcClient* client, DecisionMemo* decided, Metrics* metrics,
               Callbacks callbacks, Options options);

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Joins the open epoch and parks until the epoch resolves. Returns the
  /// epoch's commit timestamp, or Aborted when OCC validation (or a
  /// participant shard) failed this member individually.
  sim::Task<StatusOr<Timestamp>> Commit(CommitArgs args);

  const Options& options() const { return options_; }

 private:
  struct Member {
    explicit Member(sim::Simulator* sim) : done(sim) {}
    CommitArgs args;
    sim::Promise<StatusOr<Timestamp>> done;
  };
  struct Epoch {
    SimTime opened = 0;
    std::vector<std::unique_ptr<Member>> members;
  };

  /// Timer for one open epoch: sleeps the interval, then detaches the epoch
  /// (the next Commit opens a fresh one) and resolves it. Pipelined — the
  /// resolve's WAN rounds overlap the next epoch's collection window.
  sim::Task<void> SealAfter(Epoch* epoch);
  sim::Task<void> ResolveEpoch(std::unique_ptr<Epoch> epoch);
  /// OCC validation in admission order; moves conflicting members out of
  /// `epoch` into the returned list (their promises are still unresolved).
  std::vector<std::unique_ptr<Member>> ValidateMembers(Epoch* epoch);
  /// Drives one shard's grouped phase-2 until it lands (or the retry limit),
  /// re-consulting shard_primary per attempt.
  sim::Task<void> DriveEpochCommit(ShardId shard, EpochCommitRequest request);
  /// Best-effort individual abort broadcast for a failed member.
  sim::Task<void> DriveMemberAbort(TxnId txn, std::vector<ShardId> shards);
  void RememberCommit(const std::pair<TableId, RowKey>& key, Timestamp ts);

  sim::Simulator* sim_;
  TimestampSource* ts_source_;
  rpc::RpcClient* client_;
  DecisionMemo* decided_;
  Metrics* metrics_;
  Callbacks callbacks_;
  Options options_;

  /// The currently open (collecting) epoch; null between a seal and the
  /// next arriving member. Owned here; SealAfter detaches it at seal time.
  std::unique_ptr<Epoch> current_;

  /// OCC history: recently committed (table, key) -> latest commit ts.
  std::map<std::pair<TableId, RowKey>, Timestamp> recent_commits_;
  std::deque<std::pair<TableId, RowKey>> recent_commit_order_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_TXN_EPOCH_MANAGER_H_
