#include "src/txn/epoch_manager.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/rpc/wire.h"
#include "src/txn/timestamp_source.h"

namespace globaldb {

namespace {

// Fan-out helpers: each runs one call of the seal's concurrent round (the
// per-shard grouped prepares and the single commit-timestamp fetch) and
// signals the shared wait group. The output pointers live in ResolveEpoch's
// coroutine frame, which stays pinned on wg.Wait() until every helper is
// done.
sim::Task<void> RunPrepare(rpc::RpcClient* client, NodeId node,
                           EpochPrepareRequest request,
                           StatusOr<EpochPrepareReply>* out,
                           sim::WaitGroup* wg) {
  *out = co_await client->Call(node, kDnEpochPrepare, request);
  wg->Done();
}

sim::Task<void> RunCommitTs(TimestampSource* ts_source,
                            StatusOr<Timestamp>* out, sim::WaitGroup* wg) {
  *out = co_await ts_source->CommitTs(TimestampMode::kEpoch);
  wg->Done();
}

}  // namespace

EpochManager::EpochManager(sim::Simulator* sim, TimestampSource* ts_source,
                           rpc::RpcClient* client, DecisionMemo* decided,
                           Metrics* metrics, Callbacks callbacks,
                           Options options)
    : sim_(sim),
      ts_source_(ts_source),
      client_(client),
      decided_(decided),
      metrics_(metrics),
      callbacks_(std::move(callbacks)),
      options_(options) {}

sim::Task<StatusOr<Timestamp>> EpochManager::Commit(CommitArgs args) {
  if (current_ == nullptr) {
    current_ = std::make_unique<Epoch>();
    current_->opened = sim_->now();
    // One timer per epoch: seals pipeline, so epoch N+1 collects members
    // while epoch N's WAN rounds are still in flight.
    sim_->Spawn(SealAfter(current_.get()));
  }
  auto member = std::make_unique<Member>(sim_);
  member->args = std::move(args);
  auto future = member->done.GetFuture();
  current_->members.push_back(std::move(member));
  co_return co_await future;
}

sim::Task<void> EpochManager::SealAfter(Epoch* epoch) {
  co_await sim_->Sleep(options_.interval);
  // Only this timer detaches this epoch, and nothing else resets current_
  // while members are parked on it.
  GDB_CHECK(current_.get() == epoch) << "epoch sealed out of order";
  std::unique_ptr<Epoch> sealed = std::move(current_);
  co_await ResolveEpoch(std::move(sealed));
}

std::vector<std::unique_ptr<EpochManager::Member>>
EpochManager::ValidateMembers(Epoch* epoch) {
  // OCC validation in admission order (DESIGN.md §15). A member conflicts —
  // and is aborted individually, never the whole epoch — when a key it read
  // or wrote was committed after its snapshot (stale read under the
  // epoch-serial order), or was written by an earlier-admitted member of
  // this same epoch (the serial order within an epoch is admission order,
  // and all members share one commit timestamp). The same-epoch write check
  // also keeps two queued writes to one key out of a single grouped
  // prepare, where the second would stall on the first's row lock until
  // phase 2.
  std::vector<std::unique_ptr<Member>> aborted;
  std::vector<std::unique_ptr<Member>> kept;
  std::set<std::pair<TableId, RowKey>> epoch_writes;
  for (auto& member : epoch->members) {
    const CommitArgs& args = member->args;
    auto conflicts = [&](const std::pair<TableId, RowKey>& key) {
      auto it = recent_commits_.find(key);
      if (it != recent_commits_.end() && it->second > args.snapshot) {
        return true;
      }
      return epoch_writes.count(key) > 0;
    };
    bool conflict = false;
    for (const auto& key : args.reads) {
      if (conflicts(key)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) {
      for (const auto& key : args.writes) {
        if (conflicts(key)) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) {
      aborted.push_back(std::move(member));
      continue;
    }
    for (const auto& key : args.writes) epoch_writes.insert(key);
    kept.push_back(std::move(member));
  }
  epoch->members = std::move(kept);
  return aborted;
}

void EpochManager::RememberCommit(const std::pair<TableId, RowKey>& key,
                                  Timestamp ts) {
  auto [it, inserted] = recent_commits_.emplace(key, ts);
  if (!inserted) {
    it->second = std::max(it->second, ts);
    return;
  }
  recent_commit_order_.push_back(key);
  while (recent_commit_order_.size() > options_.recent_commit_capacity) {
    // FIFO eviction may drop a key whose timestamp was refreshed in place;
    // that only weakens the best-effort serializability filter, never
    // snapshot isolation (which the DN locks and MVCC enforce regardless).
    recent_commits_.erase(recent_commit_order_.front());
    recent_commit_order_.pop_front();
  }
}

sim::Task<void> EpochManager::ResolveEpoch(std::unique_ptr<Epoch> epoch) {
  const SimTime start = sim_->now();
  const size_t total = epoch->members.size();
  metrics_->Add("epoch.seals");
  metrics_->Hist("epoch.seal_batch_size").Record(static_cast<int64_t>(total));

  // The epoch id comes from the owning CN's txn-id space: it doubles as a
  // txn-outcome key, so a promoted primary resolving the grouped prepare
  // in-doubt routes its kCnTxnOutcome lookup back to this CN (id >> 40).
  const TxnId epoch_id = callbacks_.next_epoch_id();

  // 1. OCC validation. Conflicting members abort individually and are acked
  // right away — their cleanup (lock release on shards holding their
  // flushed writes) runs in the background.
  std::vector<std::unique_ptr<Member>> occ_aborted =
      ValidateMembers(epoch.get());
  metrics_->Add("epoch.occ_aborts", static_cast<int64_t>(occ_aborted.size()));
  for (auto& member : occ_aborted) {
    decided_->Record(member->args.txn, false, 0);
    if (!member->args.participants.empty()) {
      sim_->Spawn(DriveMemberAbort(member->args.txn,
                                   member->args.participants));
    }
    member->done.Set(Status::Aborted("epoch OCC validation conflict"));
  }

  std::vector<std::unique_ptr<Member>>& members = epoch->members;
  size_t failed_members = occ_aborted.size();
  if (members.empty()) {
    const SimDuration latency = sim_->now() - start;
    metrics_->Hist("epoch.seal_latency_us").Record(latency / kMicrosecond);
    ts_source_->ReportEpochHealth(
        latency, total == 0 ? 0
                            : static_cast<uint32_t>(failed_members * 1000 /
                                                    total));
    co_return;
  }

  // 2. Group the survivors per participant shard. A member's queued write
  // tail rides inside the grouped prepare (no final flush round); its full
  // participant list rides along for PR-7 in-doubt resolution.
  const Timestamp ts_lower = ts_source_->max_issued();
  std::map<ShardId, EpochPrepareRequest> prepares;
  std::map<ShardId, std::vector<size_t>> shard_members;
  for (size_t i = 0; i < members.size(); ++i) {
    CommitArgs& args = members[i]->args;
    for (ShardId shard : args.participants) {
      EpochPrepareRequest& request = prepares[shard];
      request.epoch = epoch_id;
      request.ts_lower = ts_lower;
      EpochPrepareRequest::Member pm;
      pm.txn = args.txn;
      pm.snapshot = args.snapshot;
      pm.participants = args.participants;
      auto it = args.pending_writes.find(shard);
      if (it != args.pending_writes.end()) pm.entries = std::move(it->second);
      request.members.push_back(std::move(pm));
      shard_members[shard].push_back(i);
    }
  }

  // 3. One grouped prepare per shard, concurrent with the epoch's single
  // commit-timestamp grant (the whole point: one WAN round, one GTM grant,
  // shared by every member).
  sim::WaitGroup wg(sim_);
  std::vector<ShardId> shards;
  shards.reserve(prepares.size());
  std::vector<StatusOr<EpochPrepareReply>> replies(
      prepares.size(), StatusOr<EpochPrepareReply>(
                           Status::Unavailable("epoch prepare pending")));
  size_t idx = 0;
  for (auto& [shard, request] : prepares) {
    shards.push_back(shard);
    wg.Add();
    sim_->Spawn(RunPrepare(client_, callbacks_.shard_primary(shard),
                           std::move(request), &replies[idx], &wg));
    ++idx;
  }
  StatusOr<Timestamp> grant = Status::Unavailable("epoch grant pending");
  metrics_->Add("epoch.commit_ts_rpcs");
  wg.Add();
  sim_->Spawn(RunCommitTs(ts_source_, &grant, &wg));
  co_await wg.Wait();

  // 4. Fold the per-member verdicts: a member commits iff the grant landed,
  // every participant shard answered, and no shard failed the member
  // individually (in which case that shard already rolled it back locally).
  std::vector<Status> verdict(members.size(), Status::OK());
  if (!grant.ok()) {
    metrics_->Add("epoch.grant_failures");
    for (auto& v : verdict) v = grant.status();
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    const std::vector<size_t>& indices = shard_members[shards[s]];
    if (!replies[s].ok()) {
      for (size_t i : indices) {
        if (verdict[i].ok()) verdict[i] = replies[s].status();
      }
      continue;
    }
    const EpochPrepareReply& reply = *replies[s];
    for (size_t j = 0; j < indices.size(); ++j) {
      if (j < reply.results.size() && reply.results[j].code != StatusCode::kOk &&
          verdict[indices[j]].ok()) {
        verdict[indices[j]] = reply.results[j].ToStatus();
      }
    }
  }

  // 5. Record the decisions — the epoch outcome first, then per member —
  // *before* any phase-2 delivery or member ack, exactly like the
  // individual 2PC path: from here the outcome survives lost deliveries via
  // the decision cache and in-doubt resolution.
  const Timestamp ts = grant.ok() ? *grant : 0;
  decided_->Record(epoch_id, grant.ok(), ts);
  for (size_t i = 0; i < members.size(); ++i) {
    const bool committed = verdict[i].ok();
    decided_->Record(members[i]->args.txn, committed, committed ? ts : 0);
    if (!committed) ++failed_members;
  }

  // 6. One grouped phase-2 per shard, driven in the background with
  // re-routing to promoted primaries. Members whose prepare failed on one
  // shard ride in the abort list for their other shards.
  for (size_t s = 0; s < shards.size(); ++s) {
    EpochCommitRequest request;
    request.epoch = epoch_id;
    request.ts = ts;
    for (size_t i : shard_members[shards[s]]) {
      if (verdict[i].ok()) {
        request.commits.push_back(members[i]->args.txn);
      } else {
        request.aborts.push_back(members[i]->args.txn);
      }
    }
    sim_->Spawn(DriveEpochCommit(shards[s], std::move(request)));
  }

  // 7. Ack the members. Surviving members are done the moment the decision
  // is recorded and phase-2 is in flight: every participant holds a durable
  // PREPARE, so even a primary crash before the grouped commit arrives
  // resolves to commit through the in-doubt machinery (DESIGN.md §13/§15).
  size_t committed_members = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    if (verdict[i].ok()) {
      ++committed_members;
      for (const auto& key : members[i]->args.writes) RememberCommit(key, ts);
      members[i]->done.Set(ts);
    } else {
      members[i]->done.Set(Status::Aborted(verdict[i].message().empty()
                                               ? "epoch member failed"
                                               : std::string(
                                                     verdict[i].message())));
    }
  }
  if (committed_members > 0) {
    ts_source_->RecordCommitted(ts);
    metrics_->Add("epoch.committed_members",
                  static_cast<int64_t>(committed_members));
  }

  // 8. Health report: seal latency (OCC + the concurrent prepare/grant
  // round) and the member abort rate feed the EPOCH->GTM demotion decision.
  const SimDuration latency = sim_->now() - start;
  metrics_->Hist("epoch.seal_latency_us").Record(latency / kMicrosecond);
  ts_source_->ReportEpochHealth(
      latency,
      total == 0 ? 0 : static_cast<uint32_t>(failed_members * 1000 / total));
}

sim::Task<void> EpochManager::DriveEpochCommit(ShardId shard,
                                               EpochCommitRequest request) {
  int attempts = 0;
  for (;;) {
    metrics_->Add("epoch.commit_rounds");
    auto reply =
        co_await client_->Call(callbacks_.shard_primary(shard),
                               kDnEpochCommit, request);
    if (reply.ok() || !rpc::IsTransportError(reply.status()) ||
        attempts >= options_.commit_retry_limit) {
      if (!reply.ok()) metrics_->Add("epoch.commit_drive_failures");
      co_return;
    }
    ++attempts;
    metrics_->Add("epoch.commit_redrives");
    co_await sim_->Sleep(options_.commit_retry_backoff);
  }
}

sim::Task<void> EpochManager::DriveMemberAbort(TxnId txn,
                                               std::vector<ShardId> shards) {
  // Lock cleanup for a member aborted before the grouped prepare: brief
  // retries only, like the CN's individual abort path — a promoted
  // primary's in-doubt resolver reads the abort from the decision cache.
  TxnControlRequest control;
  control.txn = txn;
  control.two_phase = shards.size() > 1;
  control.participants = shards;
  for (ShardId shard : shards) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      auto reply = co_await client_->Call(callbacks_.shard_primary(shard),
                                          kDnAbort, control);
      if (reply.ok() || !rpc::IsTransportError(reply.status())) break;
      co_await sim_->Sleep(options_.commit_retry_backoff);
    }
  }
}

}  // namespace globaldb
