#ifndef GLOBALDB_SRC_TXN_GTM_SERVER_H_
#define GLOBALDB_SRC_TXN_GTM_SERVER_H_

#include <algorithm>

#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/txn/messages.h"

namespace globaldb {

/// The centralized Global Transaction Manager server (Section II-A).
///
/// In GTM mode it issues consecutive integer timestamps (Eq. 2). In DUAL
/// mode it bridges GTM and GClock timestamps with
/// TS_DUAL = max(TS_GTM, TS_GClock) + 1 (Eq. 3), tracks the largest error
/// bound observed (the transition coordinator waits 2x this before moving
/// the cluster to GClock mode), and instructs still-GTM-mode committers to
/// wait the same amount. In GClock mode it refuses GTM-mode commits, which
/// aborts stale transactions (Fig. 2).
class GtmServer {
 public:
  GtmServer(sim::Simulator* sim, sim::Network* network, NodeId self,
            int cores = 4, SimDuration service_time = 2 * kMicrosecond);

  GtmServer(const GtmServer&) = delete;
  GtmServer& operator=(const GtmServer&) = delete;

  NodeId node_id() const { return self_; }
  TimestampMode mode() const { return mode_; }

  /// Applies a local mode switch; `floor` raises the counter so GTM
  /// timestamps resume above every previously issued GClock timestamp.
  void SetMode(TimestampMode mode, Timestamp floor);

  Timestamp counter() const { return counter_; }
  /// Raises the counter (idempotent; used when DUAL requests report GClock
  /// upper bounds and at GClock->GTM transition).
  void RaiseCounter(Timestamp ts) { counter_ = std::max(counter_, ts); }

  /// Largest client error bound seen since entering DUAL mode.
  SimDuration max_error_bound() const { return max_error_bound_; }
  void ResetMaxErrorBound() { max_error_bound_ = 0; }

  Metrics& metrics() { return metrics_; }

 private:
  void BindService();
  sim::Task<StatusOr<GtmTimestampReply>> HandleTimestamp(
      NodeId from, GtmTimestampRequest request);
  sim::Task<StatusOr<AckReply>> HandleSetMode(NodeId from,
                                              SetModeRequest request);

  sim::Simulator* sim_;
  NodeId self_;
  rpc::RpcServer server_;
  sim::CpuScheduler cpu_;
  SimDuration service_time_;

  TimestampMode mode_ = TimestampMode::kGtm;
  Timestamp counter_ = 0;
  SimDuration max_error_bound_ = 0;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_TXN_GTM_SERVER_H_
