#ifndef GLOBALDB_SRC_TXN_TXN_DECISIONS_H_
#define GLOBALDB_SRC_TXN_TXN_DECISIONS_H_

#include <deque>
#include <map>

#include "src/common/types.h"

namespace globaldb {

/// A remembered 2PC outcome: committed-at-ts or aborted.
struct TxnDecision {
  bool committed = false;
  Timestamp ts = 0;  // commit timestamp; 0 for aborts
};

/// Bounded per-transaction decision memo (DESIGN.md §13). Primaries record
/// every commit/abort they decide so duplicated or reordered phase-2
/// deliveries (a CN re-driving its decision after a promotion, a network
/// duplicate) are answered idempotently instead of re-applied; replica
/// appliers maintain the same memo from replayed COMMIT/ABORT records so a
/// promoted replica inherits the history. The first recorded decision wins —
/// a conflicting later delivery is a protocol violation the caller rejects.
///
/// Bounded FIFO, same policy as the self-aborted-txn dedup map: memory stays
/// O(capacity) and eviction only re-opens the (benign) window for a
/// duplicate older than `capacity` decisions — far beyond any RPC lifetime.
class DecisionMemo {
 public:
  explicit DecisionMemo(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  static constexpr size_t kDefaultCapacity = 4096;

  void Record(TxnId txn, bool committed, Timestamp ts) {
    auto [it, inserted] = decided_.emplace(txn, TxnDecision{committed, ts});
    if (!inserted) return;  // first decision wins
    order_.push_back(txn);
    Trim();
  }

  const TxnDecision* Lookup(TxnId txn) const {
    auto it = decided_.find(txn);
    return it == decided_.end() ? nullptr : &it->second;
  }

  /// Merges another memo's entries (promotion install: the new primary
  /// adopts the replica applier's replayed decisions).
  void Adopt(const DecisionMemo& other) {
    for (const auto& [txn, decision] : other.decided_) {
      Record(txn, decision.committed, decision.ts);
    }
  }

  size_t size() const { return decided_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  void Trim() {
    while (order_.size() > capacity_) {
      decided_.erase(order_.front());
      order_.pop_front();
    }
  }

  size_t capacity_;
  std::map<TxnId, TxnDecision> decided_;
  std::deque<TxnId> order_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_TXN_TXN_DECISIONS_H_
