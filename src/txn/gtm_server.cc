#include "src/txn/gtm_server.h"

#include <utility>

#include "src/common/logging.h"

namespace globaldb {

GtmServer::GtmServer(sim::Simulator* sim, sim::Network* network, NodeId self,
                     int cores, SimDuration service_time)
    : sim_(sim),
      self_(self),
      server_(network, self),
      cpu_(sim, cores),
      service_time_(service_time) {
  BindService();
}

void GtmServer::BindService() {
  server_.Handle(kGtmTimestamp, [this](NodeId from,
                                       GtmTimestampRequest request) {
    return HandleTimestamp(from, std::move(request));
  });
  server_.Handle(kGtmSetMode, [this](NodeId from, SetModeRequest request) {
    return HandleSetMode(from, std::move(request));
  });
}

void GtmServer::SetMode(TimestampMode mode, Timestamp floor) {
  GDB_LOG(Info) << "GTM server: mode " << TimestampModeName(mode_) << " -> "
                << TimestampModeName(mode) << " floor=" << floor;
  // Epoch mode draws plain GTM counter timestamps (one coalesced grant per
  // sealed epoch); the grouping lives entirely on the CN side, so the server
  // itself just runs the centralized counter.
  if (mode == TimestampMode::kEpoch) mode = TimestampMode::kGtm;
  if (mode == TimestampMode::kDual && mode_ != TimestampMode::kDual) {
    max_error_bound_ = 0;  // start tracking for this transition window
  }
  mode_ = mode;
  RaiseCounter(floor);
}

sim::Task<StatusOr<GtmTimestampReply>> GtmServer::HandleTimestamp(
    NodeId from, GtmTimestampRequest request) {
  co_await cpu_.Consume(service_time_);
  metrics_.Add("gtm.timestamp_requests");
  // Coalesced requests draw `count` timestamps in one round trip; the reply
  // carries the last of the contiguous range (ts - count, ts].
  const uint64_t count = std::max<uint32_t>(1, request.count);
  metrics_.Add("gtm.timestamps_granted", static_cast<int64_t>(count));

  GtmTimestampReply reply;
  reply.server_mode = mode_;
  switch (mode_) {
    case TimestampMode::kGtm:
    case TimestampMode::kEpoch:  // unreachable: SetMode maps EPOCH -> GTM
      // Plain centralized counter (Eq. 2), advanced by the batch size.
      counter_ += count;
      reply.ts = counter_;
      break;
    case TimestampMode::kDual: {
      // Bridge timestamps (Eq. 3); the whole range lands above the batch's
      // largest GClock upper bound. Also track the largest error bound seen
      // during the transition window; GTM-mode committers must wait 2x this
      // so their commits cannot be missed by new GClock snapshots
      // (Listing 1 scenario).
      max_error_bound_ = std::max(max_error_bound_, request.error_bound);
      counter_ = std::max(counter_, request.gclock_upper) + count;
      reply.ts = counter_;
      if (request.client_mode == TimestampMode::kGtm && request.is_commit) {
        reply.wait = 2 * max_error_bound_;
      }
      break;
    }
    case TimestampMode::kGclock:
      // The cluster has moved on; stale GTM transactions must abort.
      if (request.client_mode == TimestampMode::kGtm) {
        metrics_.Add("gtm.stale_aborts");
        reply.aborted = true;
      } else {
        // DUAL stragglers can still finish: keep bridging.
        counter_ = std::max(counter_, request.gclock_upper) + count;
        reply.ts = counter_;
      }
      break;
  }
  co_return reply;
}

sim::Task<StatusOr<AckReply>> GtmServer::HandleSetMode(NodeId from,
                                                       SetModeRequest request) {
  co_await cpu_.Consume(service_time_);
  SetMode(request.mode, request.floor);
  AckReply ack;
  ack.max_issued = counter_;
  ack.max_error_bound = max_error_bound_;
  co_return ack;
}

}  // namespace globaldb
