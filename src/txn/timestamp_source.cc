#include "src/txn/timestamp_source.h"

#include <utility>

#include "src/common/logging.h"

namespace globaldb {

TimestampSource::TimestampSource(sim::Simulator* sim, sim::Network* network,
                                 NodeId self, NodeId gtm_node,
                                 sim::HardwareClock* clock)
    : sim_(sim),
      self_(self),
      gtm_node_(gtm_node),
      clock_(clock),
      client_(network, self),
      server_(network, self) {
  BindService();
}

void TimestampSource::BindService() {
  server_.Handle(kCnSetMode, [this](NodeId from, SetModeRequest request) {
    return HandleSetMode(from, std::move(request));
  });
  server_.Handle(kCnMaxIssued, [this](NodeId from, rpc::EmptyMessage request) {
    return HandleMaxIssued(from, request);
  });
}

AckReply TimestampSource::MakeAck() const {
  AckReply ack;
  ack.max_issued =
      std::max(max_issued_, static_cast<Timestamp>(clock_->ReadUpper()));
  ack.max_error_bound = clock_->ErrorBound();
  ack.epoch_seal_latency_us = epoch_seal_latency_ / kMicrosecond;
  ack.epoch_abort_permille = epoch_abort_permille_;
  return ack;
}

sim::Task<StatusOr<AckReply>> TimestampSource::HandleSetMode(
    NodeId from, SetModeRequest request) {
  SetMode(request.mode);
  co_return MakeAck();
}

sim::Task<StatusOr<AckReply>> TimestampSource::HandleMaxIssued(
    NodeId from, rpc::EmptyMessage request) {
  co_return MakeAck();
}

sim::Task<void> TimestampSource::WaitClockPast(Timestamp ts) {
  // Spanner-style commit wait: block until the clock's *lower* bound
  // (reading - error bound) passes ts, so the timestamp is guaranteed to be
  // in the past in real time. The paper abbreviates this as
  // "wait until T_clock > TS_GClock"; the error bound must be included or
  // R.1 can be violated by up to one bound.
  while (true) {
    const SimTime lower = clock_->Read() - clock_->ErrorBound();
    if (lower > static_cast<SimTime>(ts)) co_return;
    const SimDuration gap = static_cast<SimTime>(ts) - lower + 1;
    // Inflate slightly to compensate for a slow-running clock.
    co_await sim_->Sleep(gap + gap / 1024 + 1);
  }
}

sim::Task<Timestamp> TimestampSource::GclockTimestamp() {
  // Eq. 1: TS = T_clock + T_err, then wait until T_clock > TS.
  const Timestamp ts = static_cast<Timestamp>(clock_->ReadUpper());
  co_await WaitClockPast(ts);
  max_issued_ = std::max(max_issued_, ts);
  metrics_.Add("ts.gclock_issued");
  co_return ts;
}

sim::Task<StatusOr<GtmTimestampReply>> TimestampSource::CallGtm(
    TimestampMode client_mode, bool is_commit) {
  if (!coalesce_) {
    GtmTimestampRequest request;
    request.client_mode = client_mode;
    request.is_commit = is_commit;
    if (client_mode == TimestampMode::kDual) {
      request.gclock_upper = static_cast<Timestamp>(clock_->ReadUpper());
      request.error_bound = clock_->ErrorBound();
    }
    metrics_.Add("ts.gtm_rpcs");
    co_return co_await client_.Call(gtm_node_, kGtmTimestamp, request);
  }

  auto waiter = std::make_shared<GtmWaiter>(sim_);
  if (client_mode == TimestampMode::kDual) {
    waiter->gclock_upper = static_cast<Timestamp>(clock_->ReadUpper());
    waiter->error_bound = clock_->ErrorBound();
  }
  // Begins and commits queue (and pump) separately so every batch is
  // homogeneous: the server's verdict on the shared RPC — stale abort, DUAL
  // wait — is then genuinely the answer each waiter would have received
  // alone, and the fan-out below can apply it verbatim.
  const int idx = ModeIndex(client_mode);
  const int ci = CommitIndex(is_commit);
  queue_[idx][ci].push_back(waiter);
  if (!pump_active_[idx][ci]) {
    pump_active_[idx][ci] = true;
    sim_->Spawn(PumpGtm(client_mode, is_commit));
  }
  auto future = waiter->reply.GetFuture();
  co_return co_await future;
}

sim::Task<void> TimestampSource::PumpGtm(TimestampMode mode, bool is_commit) {
  const int idx = ModeIndex(mode);
  const int ci = CommitIndex(is_commit);
  while (!queue_[idx][ci].empty()) {
    std::vector<std::shared_ptr<GtmWaiter>> batch =
        std::move(queue_[idx][ci]);
    queue_[idx][ci].clear();

    GtmTimestampRequest request;
    request.client_mode = mode;
    request.is_commit = is_commit;
    request.count = static_cast<uint32_t>(batch.size());
    for (const auto& w : batch) {
      request.gclock_upper = std::max(request.gclock_upper, w->gclock_upper);
      request.error_bound = std::max(request.error_bound, w->error_bound);
    }
    metrics_.Add("ts.gtm_rpcs");
    metrics_.Hist("ts.coalesce_batch")
        .Record(static_cast<int64_t>(batch.size()));
    if (batch.size() > 1) {
      metrics_.Add("ts.coalesced_grants",
                   static_cast<int64_t>(batch.size()) - 1);
    }

    auto reply = co_await client_.Call(gtm_node_, kGtmTimestamp, request);
    if (!reply.ok() || reply->aborted) {
      // Transport failures and GClock-mode refusals apply to the batch as a
      // whole: the batch is homogeneous in (mode, is_commit), so every
      // waiter really would have received the same answer alone.
      for (const auto& w : batch) w->reply.Set(reply);
      continue;
    }
    // The server granted the contiguous range (ts - count, ts]. Fan it out
    // in arrival order so grants on this node stay strictly monotonic per
    // class; the DUAL wait/abort handling stays per waiter in CommitTs.
    const Timestamp first = reply->ts - batch.size() + 1;
    for (size_t i = 0; i < batch.size(); ++i) {
      GtmTimestampReply personal = *reply;
      personal.ts = first + static_cast<Timestamp>(i);
      batch[i]->reply.Set(personal);
    }
  }
  pump_active_[idx][ci] = false;
}

sim::Task<StatusOr<TimestampSource::Grant>> TimestampSource::BeginTs(
    bool single_shard_read) {
  Grant grant;
  grant.mode = mode_;
  switch (mode_) {
    case TimestampMode::kGclock: {
      if (single_shard_read) {
        // Paper: single-shard queries bypass the invocation wait by using
        // the node's last committed transaction timestamp.
        grant.ts = last_committed_;
        if (grant.ts == 0) grant.ts = co_await GclockTimestamp();
        metrics_.Add("ts.single_shard_bypass");
        co_return grant;
      }
      grant.ts = co_await GclockTimestamp();
      co_return grant;
    }
    case TimestampMode::kGtm:
    case TimestampMode::kDual:
    case TimestampMode::kEpoch: {
      // Epoch-mode snapshots are plain GTM counter reads: they share the
      // GTM coalescing queue (the server treats EPOCH as GTM), while the
      // grant's mode stays kEpoch so EndTxn routes the commit through the
      // epoch manager.
      const TimestampMode rpc_mode =
          mode_ == TimestampMode::kEpoch ? TimestampMode::kGtm : mode_;
      auto reply = co_await CallGtm(rpc_mode, /*is_commit=*/false);
      if (!reply.ok()) co_return reply.status();
      if (reply->aborted) co_return Status::Aborted("gtm begin refused");
      grant.ts = reply->ts;
      max_issued_ = std::max(max_issued_, grant.ts);
      co_return grant;
    }
  }
  co_return Status::Internal("unreachable");
}

sim::Task<StatusOr<Timestamp>> TimestampSource::CommitTs(
    TimestampMode txn_mode) {
  // Route by the transaction's begin mode, upgrading GClock transactions to
  // the DUAL bridge when the node has left GClock mode (Fig. 3: they commit
  // safely with a larger timestamp instead of aborting).
  // GTM-begun transactions always commit through the GTM server (which adds
  // the DUAL wait or the stale abort as its mode dictates).
  TimestampMode route = txn_mode;
  if (txn_mode == TimestampMode::kGclock &&
      mode_ != TimestampMode::kGclock) {
    route = TimestampMode::kDual;
  }
  // Epoch commits (one grant per sealed epoch, requested by the epoch
  // manager) and epoch-begun stragglers that fell back to individual 2PC
  // draw plain GTM counter timestamps.
  if (txn_mode == TimestampMode::kEpoch) route = TimestampMode::kGtm;

  switch (route) {
    case TimestampMode::kGclock: {
      const Timestamp ts = co_await GclockTimestamp();
      co_return ts;
    }
    case TimestampMode::kGtm:
    case TimestampMode::kDual:
    case TimestampMode::kEpoch: {  // unreachable: remapped to kGtm above
      auto reply = co_await CallGtm(route, /*is_commit=*/true);
      if (!reply.ok()) co_return reply.status();
      if (reply->aborted) {
        metrics_.Add("ts.stale_gtm_abort");
        co_return Status::Aborted(
            "GTM transaction after cluster moved to GClock");
      }
      if (reply->wait > 0) {
        // Listing 1: GTM-mode commits during DUAL wait out 2x the max
        // error bound so new GClock snapshots cannot miss them.
        metrics_.Add("ts.dual_commit_waits");
        co_await sim_->Sleep(reply->wait);
      }
      if (route == TimestampMode::kDual) {
        // Commit-wait so later real-time GClock begins order after us.
        co_await WaitClockPast(reply->ts);
      }
      max_issued_ = std::max(max_issued_, reply->ts);
      co_return reply->ts;
    }
  }
  co_return Status::Internal("unreachable");
}

}  // namespace globaldb
