#ifndef GLOBALDB_SRC_TXN_LOCK_MANAGER_H_
#define GLOBALDB_SRC_TXN_LOCK_MANAGER_H_

#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sim/future.h"
#include "src/sim/simulator.h"

namespace globaldb {

/// Row-level exclusive locks with FIFO wait queues on a primary data node.
/// Writers acquire the lock before touching the MVCC chain, so provisional
/// write-write conflicts cannot occur; conflicts against newer committed
/// versions still abort (first-committer-wins under snapshot isolation).
///
/// Deadlocks are resolved by timeout: a waiter that does not get the lock
/// within `lock_timeout` aborts its transaction (classic distributed-lock
/// practice; precise cycle detection is cluster-wide and not needed here).
class LockManager {
 public:
  explicit LockManager(sim::Simulator* sim,
                       SimDuration lock_timeout = 500 * kMillisecond)
      : sim_(sim), lock_timeout_(lock_timeout) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires the (table, key) lock for `txn`. Re-acquiring a held lock is
  /// a no-op. Fails with TimedOut when the wait exceeds the timeout.
  /// (`key` is by value: coroutine reference parameters dangle when bound
  /// to caller temporaries.)
  sim::Task<Status> Acquire(TxnId txn, TableId table, RowKey key);

  /// Releases every lock held by `txn` and grants queued waiters.
  void ReleaseAll(TxnId txn);

  /// Synchronous, non-blocking acquire: grants the (table, key) lock to
  /// `txn` iff it is free (or already held by `txn`); never queues. Used at
  /// promotion install time to pin the keys of in-doubt prepared
  /// transactions before the shard re-opens for writes (DESIGN.md §13) —
  /// install runs in an atomic no-co_await section, so waiting is not an
  /// option and the lock table is empty anyway on a fresh primary.
  bool TryAcquire(TxnId txn, TableId table, const RowKey& key);

  /// True if `txn` currently holds the (table, key) lock.
  bool IsHeldBy(TxnId txn, TableId table, const RowKey& key) const {
    auto it = locks_.find(LockKey(table, key));
    return it != locks_.end() && it->second.holder == txn;
  }

  /// Number of locks currently held by `txn`.
  size_t HeldCount(TxnId txn) const;
  /// Total locks currently held across all transactions.
  size_t TotalHeld() const { return locks_.size(); }

  Metrics& metrics() { return metrics_; }

 private:
  struct Waiter {
    TxnId txn;
    sim::Promise<bool> granted;  // true = lock acquired, false = timed out
    Waiter(TxnId t, sim::Simulator* sim) : txn(t), granted(sim) {}
  };

  struct LockState {
    TxnId holder = kInvalidTxnId;
    std::deque<Waiter> waiters;
  };

  static std::string LockKey(TableId table, const RowKey& key) {
    std::string k;
    k.reserve(key.size() + 4);
    k.push_back(static_cast<char>(table & 0xff));
    k.push_back(static_cast<char>((table >> 8) & 0xff));
    k.push_back(static_cast<char>((table >> 16) & 0xff));
    k.push_back(static_cast<char>((table >> 24) & 0xff));
    k += key;
    return k;
  }

  sim::Simulator* sim_;
  SimDuration lock_timeout_;
  std::map<std::string, LockState> locks_;
  std::unordered_map<TxnId, std::vector<std::string>> held_;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_TXN_LOCK_MANAGER_H_
