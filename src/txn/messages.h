#ifndef GLOBALDB_SRC_TXN_MESSAGES_H_
#define GLOBALDB_SRC_TXN_MESSAGES_H_

#include <string>

#include "src/common/codec.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_method.h"

namespace globaldb {

/// Request for `count` timestamps from the GTM server. DUAL-mode clients
/// attach their GClock upper bound so the server can issue
/// TS_DUAL = max(TS_GTM, TS_GClock) + 1 (Eq. 3). A coalescing timestamp
/// source (DESIGN.md §10) sets count > 1 to draw one contiguous range for
/// several concurrent waiters with a single round trip; `is_commit` is the
/// OR and `gclock_upper`/`error_bound` the max over the coalesced waiters.
struct GtmTimestampRequest {
  TimestampMode client_mode = TimestampMode::kGtm;
  bool is_commit = false;
  Timestamp gclock_upper = 0;   // client's TS_GClock upper bound (DUAL only)
  SimDuration error_bound = 0;  // client's T_err (DUAL only)
  uint32_t count = 1;           // timestamps requested (coalesced batch size)

  std::string Encode() const {
    std::string s;
    s.push_back(static_cast<char>(client_mode));
    s.push_back(is_commit ? 1 : 0);
    PutVarint64(&s, gclock_upper);
    PutVarint64(&s, static_cast<uint64_t>(error_bound));
    PutVarint32(&s, count);
    return s;
  }

  static StatusOr<GtmTimestampRequest> Decode(Slice in) {
    GtmTimestampRequest r;
    if (in.size() < 2) return Status::Corruption("gtm req: short");
    r.client_mode = static_cast<TimestampMode>(in[0]);
    r.is_commit = in[1] != 0;
    in.RemovePrefix(2);
    uint64_t err = 0;
    if (!GetVarint64(&in, &r.gclock_upper) || !GetVarint64(&in, &err) ||
        !GetVarint32(&in, &r.count)) {
      return Status::Corruption("gtm req: truncated");
    }
    r.error_bound = static_cast<SimDuration>(err);
    return r;
  }
};

/// Reply: the issued timestamp (for count > 1 the *last* of the contiguous
/// range (ts - count, ts]), a commit wait the client must perform
/// before making its commit visible (non-zero only for GTM-mode commits
/// while the server is in DUAL mode: 2x the max observed error bound), and
/// the server's current mode. `aborted` is set when a GTM-mode transaction
/// tries to commit after the cluster has moved to GClock mode.
///
/// Range-consumption contract (DESIGN.md §10/§15): the granted range
/// (ts - count, ts] is fanned out by the coalescing client in waiter arrival
/// order, binding each timestamp in the range to exactly one waiter at
/// fan-out time. A timestamp stays bound to its waiter even if that waiter's
/// transaction (or epoch member) later aborts: the value is simply abandoned,
/// leaving a harmless gap in the committed-timestamp sequence. Grants are
/// never re-entered into any pool and never reissued — correctness relies on
/// uniqueness and monotonicity of issued timestamps, not on density. Epoch
/// mode leans on the same contract with count == 1: the single epoch grant
/// is shared by every surviving member, and members aborted by OCC
/// validation never observe (or recycle) any part of a range.
struct GtmTimestampReply {
  bool aborted = false;
  Timestamp ts = 0;
  SimDuration wait = 0;
  TimestampMode server_mode = TimestampMode::kGtm;

  std::string Encode() const {
    std::string s;
    s.push_back(aborted ? 1 : 0);
    PutVarint64(&s, ts);
    PutVarint64(&s, static_cast<uint64_t>(wait));
    s.push_back(static_cast<char>(server_mode));
    return s;
  }

  static StatusOr<GtmTimestampReply> Decode(Slice in) {
    GtmTimestampReply r;
    if (in.empty()) return Status::Corruption("gtm reply: empty");
    r.aborted = in[0] != 0;
    in.RemovePrefix(1);
    uint64_t wait = 0;
    if (!GetVarint64(&in, &r.ts) || !GetVarint64(&in, &wait) || in.empty()) {
      return Status::Corruption("gtm reply: truncated");
    }
    r.wait = static_cast<SimDuration>(wait);
    r.server_mode = static_cast<TimestampMode>(in[0]);
    return r;
  }
};

/// Mode-switch command (GTM server or CN). `floor` carries a timestamp the
/// target must not issue below (used when entering GTM mode after GClock).
struct SetModeRequest {
  TimestampMode mode = TimestampMode::kGtm;
  Timestamp floor = 0;

  std::string Encode() const {
    std::string s;
    s.push_back(static_cast<char>(mode));
    PutVarint64(&s, floor);
    return s;
  }

  static StatusOr<SetModeRequest> Decode(Slice in) {
    SetModeRequest r;
    if (in.empty()) return Status::Corruption("set_mode: empty");
    r.mode = static_cast<TimestampMode>(in[0]);
    in.RemovePrefix(1);
    if (!GetVarint64(&in, &r.floor)) {
      return Status::Corruption("set_mode: truncated");
    }
    return r;
  }
};

/// Generic ack carrying a timestamp (max issued / observed error bound).
/// Under epoch mode the CN also reports its recent epoch health — seal
/// latency and per-mille member abort rate — which the health monitor folds
/// into its EPOCH->GTM demotion decision (DESIGN.md §15).
struct AckReply {
  Timestamp max_issued = 0;
  SimDuration max_error_bound = 0;
  SimDuration epoch_seal_latency_us = 0;  // recent epoch seal latency (us)
  uint32_t epoch_abort_permille = 0;      // OCC aborts per 1000 members

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, max_issued);
    PutVarint64(&s, static_cast<uint64_t>(max_error_bound));
    PutVarint64(&s, static_cast<uint64_t>(epoch_seal_latency_us));
    PutVarint32(&s, epoch_abort_permille);
    return s;
  }

  static StatusOr<AckReply> Decode(Slice in) {
    AckReply r;
    uint64_t err = 0;
    if (!GetVarint64(&in, &r.max_issued) || !GetVarint64(&in, &err)) {
      return Status::Corruption("ack: truncated");
    }
    r.max_error_bound = static_cast<SimDuration>(err);
    uint64_t seal = 0;
    if (GetVarint64(&in, &seal)) {  // epoch health fields are optional
      r.epoch_seal_latency_us = static_cast<SimDuration>(seal);
      if (!GetVarint32(&in, &r.epoch_abort_permille)) {
        return Status::Corruption("ack: truncated epoch health");
      }
    }
    return r;
  }
};

// --- Method descriptors ------------------------------------------------------

// Served by the GTM server.
inline constexpr rpc::RpcMethod<GtmTimestampRequest, GtmTimestampReply>
    kGtmTimestamp{"gtm.timestamp"};
inline constexpr rpc::RpcMethod<SetModeRequest, AckReply> kGtmSetMode{
    "gtm.set_mode"};

// Served by each CN's timestamp source.
inline constexpr rpc::RpcMethod<SetModeRequest, AckReply> kCnSetMode{
    "cn.set_mode"};
inline constexpr rpc::RpcMethod<rpc::EmptyMessage, AckReply> kCnMaxIssued{
    "cn.max_issued"};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_TXN_MESSAGES_H_
