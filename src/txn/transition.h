#ifndef GLOBALDB_SRC_TXN_TRANSITION_H_
#define GLOBALDB_SRC_TXN_TRANSITION_H_

#include <vector>

#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/network.h"
#include "src/txn/messages.h"

namespace globaldb {

/// Drives the zero-downtime bi-directional mode transitions of Section
/// III-A (Figs. 2 and 3). Runs on a control node (any CN); all steps are
/// ordinary RPCs, so the cluster keeps serving transactions throughout.
///
/// GTM -> GClock (Fig. 2):
///   1. Switch the GTM server to DUAL (it starts tracking the max error
///      bound it observes).
///   2. Switch every CN to DUAL; each ack is recorded.
///   3. Remain in DUAL for 2x the max error bound observed during the
///      transition window (prevents the Listing 1 anomaly).
///   4. Switch the GTM server to GClock, then every CN.
///   GTM transactions that try to commit after step 4 abort (server rule).
///
/// GClock -> GTM (Fig. 3):
///   1. Switch the GTM server to DUAL.
///   2. Switch every CN to DUAL; collect each CN's max issued GClock
///      timestamp (and current clock upper bound).
///   3. No wait needed: switch the GTM server to GTM with the counter
///      floored above every collected timestamp, then every CN.
class TransitionCoordinator {
 public:
  TransitionCoordinator(sim::Simulator* sim, sim::Network* network,
                        NodeId self, NodeId gtm_node,
                        std::vector<NodeId> cn_nodes)
      : sim_(sim),
        self_(self),
        gtm_node_(gtm_node),
        cn_nodes_(std::move(cn_nodes)),
        client_(network, self) {}

  /// Fig. 2. Returns the DUAL dwell time waited (for instrumentation).
  sim::Task<StatusOr<SimDuration>> SwitchToGclock();

  /// Fig. 3. Returns the timestamp floor handed to the GTM server.
  sim::Task<StatusOr<Timestamp>> SwitchToGtm();

  /// EPOCH -> GTM demotion (DESIGN.md §15). No DUAL bridge or dwell is
  /// needed: epoch timestamps *are* GTM counter values (the server treats
  /// EPOCH as GTM), so flipping every node straight to GTM preserves the
  /// total order. Epochs already sealed keep draining — their single
  /// commit-timestamp fetch routes through the same GTM counter.
  sim::Task<StatusOr<Timestamp>> SwitchEpochToGtm();

  Metrics& metrics() { return metrics_; }
  /// RPC client driving the transition control plane.
  rpc::RpcClient& rpc_client() { return client_; }

 private:
  struct SweepResult {
    Timestamp max_issued = 0;
    SimDuration max_error_bound = 0;
  };
  /// Sends SetMode to the GTM server; returns its ack.
  sim::Task<StatusOr<AckReply>> SetGtmMode(TimestampMode mode,
                                           Timestamp floor);
  /// Sends SetMode to every CN; aggregates acks.
  sim::Task<StatusOr<SweepResult>> SetAllCnModes(TimestampMode mode);

  sim::Simulator* sim_;
  NodeId self_;
  NodeId gtm_node_;
  std::vector<NodeId> cn_nodes_;
  rpc::RpcClient client_;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_TXN_TRANSITION_H_
