#include "src/txn/lock_manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace globaldb {

sim::Task<Status> LockManager::Acquire(TxnId txn, TableId table,
                                       RowKey key) {
  const std::string lock_key = LockKey(table, key);
  LockState& state = locks_[lock_key];

  if (state.holder == txn) co_return Status::OK();  // re-entrant

  if (state.holder == kInvalidTxnId && state.waiters.empty()) {
    state.holder = txn;
    held_[txn].push_back(lock_key);
    metrics_.Add("lock.immediate_grants");
    co_return Status::OK();
  }

  // Queue up and wait with a timeout.
  metrics_.Add("lock.waits");
  state.waiters.emplace_back(txn, sim_);
  sim::Promise<bool> granted = state.waiters.back().granted;
  sim::Future<bool> future = granted.GetFuture();
  sim_->Schedule(lock_timeout_, [granted]() mutable {
    sim::Promise<bool> p = granted;
    p.TrySet(false);
  });

  const bool ok = co_await future;
  if (!ok) {
    metrics_.Add("lock.timeouts");
    co_return Status::TimedOut("lock wait timeout (possible deadlock)");
  }
  // The releaser recorded us as holder and registered the key under us.
  co_return Status::OK();
}

bool LockManager::TryAcquire(TxnId txn, TableId table, const RowKey& key) {
  const std::string lock_key = LockKey(table, key);
  LockState& state = locks_[lock_key];
  if (state.holder == txn) return true;  // re-entrant
  if (state.holder != kInvalidTxnId || !state.waiters.empty()) return false;
  state.holder = txn;
  held_[txn].push_back(lock_key);
  metrics_.Add("lock.immediate_grants");
  return true;
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  // Detach first: granting waiters inserts into held_, which may rehash.
  std::vector<std::string> keys = std::move(it->second);
  held_.erase(it);
  for (const std::string& lock_key : keys) {
    auto lock_it = locks_.find(lock_key);
    if (lock_it == locks_.end()) continue;
    LockState& state = lock_it->second;
    if (state.holder != txn) continue;  // already handed over
    state.holder = kInvalidTxnId;
    // Grant to the first waiter that has not timed out.
    while (!state.waiters.empty()) {
      Waiter waiter = std::move(state.waiters.front());
      state.waiters.pop_front();
      if (waiter.granted.TrySet(true)) {
        state.holder = waiter.txn;
        held_[waiter.txn].push_back(lock_key);
        break;
      }
      // Waiter timed out; skip it.
    }
    if (state.holder == kInvalidTxnId && state.waiters.empty()) {
      locks_.erase(lock_it);
    }
  }
}

size_t LockManager::HeldCount(TxnId txn) const {
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace globaldb
