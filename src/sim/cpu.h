#ifndef GLOBALDB_SRC_SIM_CPU_H_
#define GLOBALDB_SRC_SIM_CPU_H_

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace globaldb::sim {

/// Models a node's processor as `cores` independent servers with FIFO
/// admission. Work is charged in virtual nanoseconds; when all cores are
/// busy, new work queues behind the earliest-free core. This is what makes
/// throughput saturate realistically as client load grows.
class CpuScheduler {
 public:
  CpuScheduler(Simulator* sim, int cores) : sim_(sim) {
    GDB_CHECK(cores > 0);
    core_busy_until_.assign(cores, 0);
  }

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Consumes `work` ns of CPU. Resumes when the work completes.
  Task<void> Consume(SimDuration work) {
    GDB_CHECK(work >= 0);
    const SimTime now = sim_->now();
    // Pick the earliest-free core.
    auto it =
        std::min_element(core_busy_until_.begin(), core_busy_until_.end());
    const SimTime start = std::max(now, *it);
    const SimTime end = start + work;
    *it = end;
    busy_ns_ += work;
    queue_delay_ns_ += (start - now);
    co_await sim_->SleepUntil(end);
  }

  /// Earliest time a new unit of work could start right now.
  SimTime EarliestStart() const {
    auto it =
        std::min_element(core_busy_until_.begin(), core_busy_until_.end());
    return std::max(sim_->now(), *it);
  }

  /// Current queueing delay a new request would experience (0 if idle
  /// capacity exists). Exported to the skyline node-selection metric.
  SimDuration CurrentQueueDelay() const {
    return EarliestStart() - sim_->now();
  }

  /// Total CPU-busy nanoseconds charged so far.
  int64_t busy_ns() const { return busy_ns_; }
  /// Total time requests spent waiting for a core.
  int64_t queue_delay_ns() const { return queue_delay_ns_; }
  int cores() const { return static_cast<int>(core_busy_until_.size()); }

 private:
  Simulator* sim_;
  std::vector<SimTime> core_busy_until_;
  int64_t busy_ns_ = 0;
  int64_t queue_delay_ns_ = 0;
};

}  // namespace globaldb::sim

#endif  // GLOBALDB_SRC_SIM_CPU_H_
