#ifndef GLOBALDB_SRC_SIM_TOPOLOGY_H_
#define GLOBALDB_SRC_SIM_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/common/types.h"

namespace globaldb::sim {

/// Static description of the geographic layout: named regions and the
/// round-trip latency between each pair. Used to build a Network.
struct Topology {
  std::vector<std::string> region_names;
  /// Round-trip latency between regions, indexed [from][to]; the diagonal is
  /// the intra-region RTT.
  std::vector<std::vector<SimDuration>> rtt;

  size_t num_regions() const { return region_names.size(); }

  SimDuration OneWayLatency(RegionId from, RegionId to) const {
    return rtt[from][to] / 2;
  }

  /// One region, rack-local (the paper's One-Region cluster).
  static Topology SingleRegion() {
    Topology t;
    t.region_names = {"rack"};
    t.rtt = {{100 * kMicrosecond}};
    return t;
  }

  /// The paper's Three-City cluster: Xi'an, Langzhong, Dongguan with 25 ms,
  /// 35 ms, 55 ms edge latencies (Section V).
  static Topology ThreeCity() {
    Topology t;
    t.region_names = {"xian", "langzhong", "dongguan"};
    const SimDuration local = 200 * kMicrosecond;
    t.rtt = {
        {local, 25 * kMillisecond, 55 * kMillisecond},
        {25 * kMillisecond, local, 35 * kMillisecond},
        {55 * kMillisecond, 35 * kMillisecond, local},
    };
    return t;
  }

  /// N regions in a line with `edge_rtt` between adjacent regions and
  /// additive latency across hops (for the Fig. 1a region-span sweep).
  static Topology Chain(int n, SimDuration edge_rtt) {
    Topology t;
    const SimDuration local = 200 * kMicrosecond;
    t.rtt.assign(n, std::vector<SimDuration>(n, local));
    for (int i = 0; i < n; ++i) {
      t.region_names.push_back("region" + std::to_string(i));
      for (int j = 0; j < n; ++j) {
        if (i != j) t.rtt[i][j] = edge_rtt * (i > j ? i - j : j - i);
      }
    }
    return t;
  }

  /// Uniform symmetric topology: every inter-region RTT equals `rtt_all`
  /// (used for the tc-style delay-injection sweeps of Figs. 6b-6d).
  static Topology Uniform(int n, SimDuration rtt_all) {
    Topology t;
    const SimDuration local = 100 * kMicrosecond;
    t.rtt.assign(n, std::vector<SimDuration>(n, rtt_all));
    for (int i = 0; i < n; ++i) {
      t.region_names.push_back("region" + std::to_string(i));
      t.rtt[i][i] = local;
    }
    return t;
  }
};

}  // namespace globaldb::sim

#endif  // GLOBALDB_SRC_SIM_TOPOLOGY_H_
