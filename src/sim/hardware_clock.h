#ifndef GLOBALDB_SRC_SIM_HARDWARE_CLOCK_H_
#define GLOBALDB_SRC_SIM_HARDWARE_CLOCK_H_

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace globaldb::sim {

/// Configuration mirroring Section III of the paper: machines sync with a
/// regional GPS/atomic-clock time device every 1 ms over a ~60 us TCP round
/// trip, and CPU clock drift is bounded within 200 PPM.
struct HardwareClockOptions {
  SimDuration sync_interval = 1 * kMillisecond;
  SimDuration sync_rtt = 60 * kMicrosecond;
  double max_drift_ppm = 200.0;
};

/// A node's local clock: the true (virtual) time plus a drifting offset that
/// is re-anchored at every successful sync with the regional time device.
///
/// The GClock error-bound contract (Eq. 1):
///   T_err = T_sync + T_drift, where T_drift grows with time since the last
///   successful sync. If syncing fails (fault injection), the bound keeps
///   growing, which is what triggers the GClock -> GTM fallback story.
class HardwareClock {
 public:
  HardwareClock(Simulator* sim, Rng rng, HardwareClockOptions options = {});

  HardwareClock(const HardwareClock&) = delete;
  HardwareClock& operator=(const HardwareClock&) = delete;

  /// Current clock reading (monotonic per node).
  SimTime Read();

  /// Conservative bound on |Read() - true time|: sync RTT plus accumulated
  /// drift since the last successful sync.
  SimDuration ErrorBound();

  /// Read() + ErrorBound(): the GClock timestamp upper bound (Eq. 1).
  SimTime ReadUpper() { return Read() + ErrorBound(); }

  /// True offset from real time right now (test/diagnostic only).
  SimDuration TrueOffset();

  // --- Fault injection ---------------------------------------------------

  /// When false, periodic syncs stop: the offset drifts freely and the error
  /// bound grows without bound.
  void set_sync_healthy(bool healthy) { sync_healthy_ = healthy; }
  bool sync_healthy() const { return sync_healthy_; }

  /// Applies a one-time step to the clock (simulates operator error or a
  /// faulty time device).
  void InjectOffset(SimDuration delta);

  const HardwareClockOptions& options() const { return options_; }

 private:
  /// Lazily applies all syncs that should have happened up to now.
  void AdvanceSyncs();

  Simulator* sim_;
  Rng rng_;
  HardwareClockOptions options_;

  SimTime last_sync_ = 0;
  SimDuration offset_at_sync_ = 0;     // clock - true time at last sync
  double drift_rate_ = 0.0;            // current drift, ns per ns (signed)
  SimTime last_reading_ = 0;           // monotonicity guard
  bool sync_healthy_ = true;
};

}  // namespace globaldb::sim

#endif  // GLOBALDB_SRC_SIM_HARDWARE_CLOCK_H_
