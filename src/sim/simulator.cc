#include "src/sim/simulator.h"

namespace globaldb::sim {

namespace {

/// A self-destroying wrapper coroutine that owns a detached task.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

Detached RunDetached(Task<void> task) { co_await std::move(task); }

}  // namespace

void Simulator::Spawn(Task<void> task) {
  if (!task.valid()) return;
  RunDetached(std::move(task));
}

bool Simulator::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved out
  // before pop. const_cast is safe here because we pop immediately.
  Event& top = const_cast<Event&>(queue_.top());
  GDB_CHECK(top.time >= now_);
  now_ = top.time;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  ++events_executed_;
  fn();
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && RunOne()) {
  }
}

void Simulator::RunUntil(SimTime until) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= until) {
    RunOne();
  }
  if (now_ < until) now_ = until;
}

}  // namespace globaldb::sim
