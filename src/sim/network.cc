#include "src/sim/network.h"

#include <algorithm>

#include "src/common/logging.h"

namespace globaldb::sim {

Network::Network(Simulator* sim, Topology topology, NetworkOptions options)
    : sim_(sim),
      topology_(std::move(topology)),
      options_(options),
      rng_(sim->rng().Fork()) {}

void Network::RegisterNode(NodeId node, RegionId region) {
  GDB_CHECK(region < topology_.num_regions())
      << "region " << region << " out of range";
  nodes_[node].region = region;
}

RegionId Network::RegionOf(NodeId node) const {
  auto it = nodes_.find(node);
  GDB_CHECK(it != nodes_.end()) << "unknown node " << node;
  return it->second.region;
}

void Network::RegisterHandler(NodeId node, const std::string& method,
                              RpcHandler handler) {
  GDB_CHECK(nodes_.count(node)) << "node " << node << " not registered";
  nodes_[node].handlers[method] = std::move(handler);
}

void Network::SetNodeUp(NodeId node, bool up) {
  GDB_CHECK(nodes_.count(node));
  NodeInfo& info = nodes_[node];
  info.up = up;
  if (up) return;
  // Crash semantics: every open connection to the node resets. Each pending
  // caller sees Unavailable after one RST flight time rather than waiting
  // out the RPC timeout.
  auto inflight = std::move(info.inflight);
  info.inflight.clear();
  for (auto& [caller, promise] : inflight) {
    if (promise.has_value()) continue;
    const SimDuration rst_delay =
        topology_.OneWayLatency(info.region, RegionOf(caller));
    metrics_.Add("rpc.connection_resets");
    Promise<StatusOr<std::string>> p = promise;
    sim_->Schedule(rst_delay, [p]() mutable {
      p.TrySet(Status::Unavailable("connection reset: peer down"));
    });
  }
}

bool Network::IsNodeUp(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.up;
}

void Network::SetPartitioned(NodeId a, NodeId b, bool blocked) {
  auto key = std::minmax(a, b);
  if (blocked) {
    node_partitions_.insert({key.first, key.second});
  } else {
    node_partitions_.erase({key.first, key.second});
  }
}

void Network::SetRegionPartitioned(RegionId a, RegionId b, bool blocked) {
  auto key = std::minmax(a, b);
  if (blocked) {
    region_partitions_.insert({key.first, key.second});
  } else {
    region_partitions_.erase({key.first, key.second});
  }
}

void Network::SetMessageChaos(bool enabled, double duplicate_fraction) {
  chaos_enabled_ = enabled;
  if (!enabled) return;
  if (duplicate_fraction > 0) {
    chaos_duplicate_fraction_ = duplicate_fraction;
  } else if (chaos_duplicate_fraction_ <= 0) {
    chaos_duplicate_fraction_ = 0.25;
  }
}

bool Network::CanReach(NodeId from, NodeId to) const {
  if (!IsNodeUp(from) || !IsNodeUp(to)) return false;
  if (node_partitions_.count({std::min(from, to), std::max(from, to)})) {
    return false;
  }
  const RegionId rf = RegionOf(from);
  const RegionId rt = RegionOf(to);
  if (region_partitions_.count({std::min(rf, rt), std::max(rf, rt)})) {
    return false;
  }
  return true;
}

double Network::EffectiveBandwidth(RegionId from, RegionId to) const {
  const double nominal = (from == to) ? options_.intra_region_bandwidth
                                      : options_.inter_region_bandwidth;
  if (from == to) return nominal;
  if (options_.bbr_enabled) {
    // BBR sustains near-full utilization on long fat pipes.
    return nominal * 0.95;
  }
  // Loss-based congestion control loses utilization as RTT grows: model
  // utilization ~ base_rtt / (base_rtt + rtt), floored at 20%.
  const double rtt_ms =
      static_cast<double>(topology_.rtt[from][to]) / kMillisecond;
  const double utilization = std::max(0.2, 0.9 * 25.0 / (25.0 + rtt_ms));
  return nominal * utilization;
}

SimDuration Network::TransferDelay(NodeId from, NodeId to, size_t bytes) {
  const RegionId rf = RegionOf(from);
  const RegionId rt = RegionOf(to);
  SimDuration delay = topology_.OneWayLatency(rf, rt);
  // Serialization / transmission time.
  const double bw = EffectiveBandwidth(rf, rt);
  delay += static_cast<SimDuration>(static_cast<double>(bytes) / bw * kSecond);
  // Nagle's algorithm coalesces small writes, costing extra latency.
  if (options_.nagle_enabled && bytes < options_.nagle_threshold &&
      rf != rt) {
    delay += options_.nagle_delay;
  }
  // Jitter.
  if (options_.jitter_fraction > 0) {
    const double j = options_.jitter_fraction *
                     static_cast<double>(topology_.OneWayLatency(rf, rt));
    delay += static_cast<SimDuration>(rng_.NextDouble() * j);
  }
  return delay;
}

Task<void> Network::DeliverCall(NodeId from, NodeId to, std::string method,
                                std::string payload,
                                Promise<StatusOr<std::string>> reply) {
  // Request flight time.
  co_await sim_->Sleep(TransferDelay(from, to, payload.size()));
  if (!CanReach(from, to)) {
    // Connection reset observed by the caller.
    reply.TrySet(Status::Unavailable("target unreachable"));
    co_return;
  }
  auto& info = nodes_[to];
  auto it = info.handlers.find(method);
  if (it == info.handlers.end()) {
    reply.TrySet(Status::Unimplemented("no handler for " + method));
    co_return;
  }
  std::string response = co_await it->second(from, std::move(payload));
  // Response flight time.
  co_await sim_->Sleep(TransferDelay(to, from, response.size()));
  if (!CanReach(to, from)) {
    reply.TrySet(Status::Unavailable("reply lost"));
    co_return;
  }
  reply.TrySet(std::move(response));
}

Task<StatusOr<std::string>> Network::Call(NodeId from, NodeId to,
                                          std::string method,
                                          std::string payload,
                                          SimDuration timeout) {
  if (timeout <= 0) timeout = options_.rpc_timeout;
  metrics_.Add("rpc.calls");
  metrics_.Add("rpc.bytes", static_cast<int64_t>(payload.size()));
  const RegionId rf = RegionOf(from);
  const RegionId rt = RegionOf(to);
  if (rf != rt) {
    metrics_.Add("rpc.cross_region_calls");
    metrics_.Add("rpc.cross_region_bytes",
                 static_cast<int64_t>(payload.size()));
  }

  Promise<StatusOr<std::string>> reply(sim_);
  Future<StatusOr<std::string>> future = reply.GetFuture();

  if (!CanReach(from, to)) {
    Promise<StatusOr<std::string>> p = reply;
    if (IsNodeUp(from) && nodes_.count(to) && !IsNodeUp(to)) {
      // Dead peer: the connection attempt is refused after one round trip
      // (SYN out, RST back) — much faster than the timeout.
      const SimDuration rtt =
          std::min(2 * topology_.OneWayLatency(rf, rt), timeout);
      sim_->Schedule(rtt, [p]() mutable {
        p.TrySet(Status::Unavailable("connection refused: peer down"));
      });
    } else {
      // Partition (or dead caller): packets vanish silently; only the
      // timeout resolves the call.
      sim_->Schedule(timeout, [p]() mutable {
        p.TrySet(Status::Unavailable("target unreachable"));
      });
    }
  } else {
    // Track the call so SetNodeUp(to, false) can reset it promptly.
    auto& inflight = nodes_[to].inflight;
    inflight.erase(std::remove_if(inflight.begin(), inflight.end(),
                                  [](const auto& entry) {
                                    return entry.second.has_value();
                                  }),
                   inflight.end());
    inflight.emplace_back(from, reply);
    const bool duplicate =
        chaos_enabled_ && options_.chaos_exempt_methods.count(method) == 0 &&
        rng_.NextDouble() < chaos_duplicate_fraction_;
    std::string dup_payload;
    if (duplicate) dup_payload = payload;
    sim_->Spawn(DeliverCall(from, to, method, std::move(payload), reply));
    if (duplicate) {
      // Retransmitted copy: leaves later by a random lag so it can land
      // after messages sent after the original (duplication + reordering in
      // one fault). It re-executes the server handler but its reply goes to
      // a discarded promise — the client only ever sees the first answer.
      metrics_.Add("rpc.chaos_duplicates");
      const SimDuration lag =
          1 + static_cast<SimDuration>(
                  rng_.NextDouble() * 4.0 *
                  static_cast<double>(topology_.OneWayLatency(rf, rt)));
      Promise<StatusOr<std::string>> discard(sim_);
      sim_->Schedule(lag, [this, from, to, method,
                           payload = std::move(dup_payload),
                           discard]() mutable {
        sim_->Spawn(DeliverCall(from, to, std::move(method),
                                std::move(payload), discard));
      });
    }
    Promise<StatusOr<std::string>> p = reply;
    sim_->Schedule(timeout,
                   [p]() mutable { p.TrySet(Status::TimedOut("rpc")); });
  }
  StatusOr<std::string> result = co_await future;
  co_return result;
}

void Network::Send(NodeId from, NodeId to, std::string method,
                   std::string payload) {
  metrics_.Add("send.messages");
  metrics_.Add("send.bytes", static_cast<int64_t>(payload.size()));
  if (RegionOf(from) != RegionOf(to)) {
    metrics_.Add("send.cross_region_bytes",
                 static_cast<int64_t>(payload.size()));
  }
  if (!CanReach(from, to)) return;
  const SimDuration delay = TransferDelay(from, to, payload.size());
  auto deliver = [this, from, to](std::string m, std::string p) {
    if (!CanReach(from, to)) return;
    auto& info = nodes_[to];
    auto it = info.handlers.find(m);
    if (it == info.handlers.end()) return;
    sim_->Spawn([](RpcHandler h, NodeId f, std::string pl) -> Task<void> {
      (void)co_await h(f, std::move(pl));
    }(it->second, from, std::move(p)));
  };
  if (chaos_enabled_ && options_.chaos_exempt_methods.count(method) == 0 &&
      rng_.NextDouble() < chaos_duplicate_fraction_) {
    // Duplicated copy, lagged so it may arrive after later sends.
    metrics_.Add("send.chaos_duplicates");
    const SimDuration lag =
        1 + static_cast<SimDuration>(
                rng_.NextDouble() * 4.0 *
                static_cast<double>(topology_.OneWayLatency(
                    RegionOf(from), RegionOf(to))));
    sim_->Schedule(delay + lag, [deliver, method, payload]() mutable {
      deliver(std::move(method), std::move(payload));
    });
  }
  sim_->Schedule(delay, [deliver, method = std::move(method),
                         payload = std::move(payload)]() mutable {
    deliver(std::move(method), std::move(payload));
  });
}

}  // namespace globaldb::sim
