#ifndef GLOBALDB_SRC_SIM_FUTURE_H_
#define GLOBALDB_SRC_SIM_FUTURE_H_

#include <coroutine>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/simulator.h"

namespace globaldb::sim {

/// One-shot asynchronous value shared between a Promise (producer) and any
/// number of Future awaiters (consumers). Waiters are resumed through the
/// simulator event queue at the moment Set() is called, preserving the
/// deterministic event order and avoiding unbounded resume recursion.
template <typename T>
class Promise;

namespace internal_future {

template <typename T>
struct State {
  Simulator* sim;
  std::optional<T> value;
  std::vector<std::coroutine_handle<>> waiters;
};

}  // namespace internal_future

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<internal_future::State<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->value.has_value(); }

  /// Awaitable; returns a copy of the value (values are small messages).
  auto operator co_await() const noexcept {
    struct Awaiter {
      std::shared_ptr<internal_future::State<T>> state;
      bool await_ready() const { return state->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        state->waiters.push_back(h);
      }
      T await_resume() { return *state->value; }
    };
    GDB_CHECK(state_ != nullptr) << "awaiting an invalid Future";
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<internal_future::State<T>> state_;
};

template <typename T>
class Promise {
 public:
  explicit Promise(Simulator* sim)
      : state_(std::make_shared<internal_future::State<T>>()) {
    state_->sim = sim;
  }

  Future<T> GetFuture() const { return Future<T>(state_); }

  bool has_value() const { return state_->value.has_value(); }

  /// Fulfills the promise. Each waiter resumes as a separate simulator event
  /// at the current virtual time. Setting twice is a bug.
  void Set(T value) {
    GDB_CHECK(TrySet(std::move(value))) << "Promise set twice";
  }

  /// Like Set() but returns false instead of aborting when already set.
  /// Used by timeout races: first writer wins.
  bool TrySet(T value) {
    if (state_->value.has_value()) return false;
    state_->value.emplace(std::move(value));
    auto waiters = std::move(state_->waiters);
    state_->waiters.clear();
    for (auto h : waiters) {
      state_->sim->Schedule(0, [h]() { h.resume(); });
    }
    return true;
  }

 private:
  std::shared_ptr<internal_future::State<T>> state_;
};

/// Manual-reset notification: waiters block until Notify() is called once.
class Notification {
 public:
  explicit Notification(Simulator* sim) : sim_(sim) {}

  bool HasBeenNotified() const { return notified_; }

  void Notify() {
    if (notified_) return;
    notified_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_->Schedule(0, [h]() { h.resume(); });
    }
  }

  auto Wait() {
    struct Awaiter {
      Notification* n;
      bool await_ready() const { return n->notified_; }
      void await_suspend(std::coroutine_handle<> h) {
        n->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool notified_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counts outstanding work; Wait() resumes when the count reaches zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator* sim) : sim_(sim) {}

  void Add(int n = 1) { count_ += n; }

  void Done() {
    GDB_CHECK(count_ > 0);
    if (--count_ == 0) {
      auto waiters = std::move(waiters_);
      waiters_.clear();
      for (auto h : waiters) {
        sim_->Schedule(0, [h]() { h.resume(); });
      }
    }
  }

  auto Wait() {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const { return wg->count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        wg->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  int count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Broadcast condition: waiters queue up and NotifyAll releases the current
/// batch (new waiters after the notify wait for the next one).
class CondVar {
 public:
  explicit CondVar(Simulator* sim) : sim_(sim) {}

  void NotifyAll() {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_->Schedule(0, [h]() { h.resume(); });
    }
  }

  auto Wait() {
    struct Awaiter {
      CondVar* cv;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cv->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace globaldb::sim

#endif  // GLOBALDB_SRC_SIM_FUTURE_H_
