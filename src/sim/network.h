#ifndef GLOBALDB_SRC_SIM_NETWORK_H_
#define GLOBALDB_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/sim/future.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/topology.h"

namespace globaldb::sim {

/// Transport tuning knobs (Section V-A of the paper: the GlobalDB deployment
/// enables LZ4 redo compression, TCP BBR, and disables Nagle's algorithm).
/// Compression is applied by the log shipper; the network models the other
/// two plus bandwidth and jitter.
struct NetworkOptions {
  /// Nominal inter-region bandwidth in bytes per simulated second.
  double inter_region_bandwidth = 40e6;  // ~320 Mbit/s long-haul
  /// Intra-region bandwidth (10 GbE in the paper's racks).
  double intra_region_bandwidth = 1.25e9;
  /// When true, long-RTT links keep high utilization (BBR); when false a
  /// loss-based model degrades utilization as RTT grows (CUBIC-like).
  bool bbr_enabled = false;
  /// When true, messages below `nagle_threshold` bytes are delayed by
  /// `nagle_delay` waiting for coalescing / delayed ACKs.
  bool nagle_enabled = true;
  size_t nagle_threshold = 1400;
  SimDuration nagle_delay = 2 * kMillisecond;
  /// Uniform latency jitter as a fraction of the one-way latency.
  double jitter_fraction = 0.05;
  /// Default RPC timeout.
  SimDuration rpc_timeout = 5 * kSecond;
  /// Methods message chaos never duplicates: statement writes and snapshot
  /// installs ride an ordered, exactly-once byte stream in the modeled
  /// deployment (TCP dedups transport retransmissions), so duplicating them
  /// would inject failures no real network produces. Chaos duplication
  /// targets control messages, whose receivers must absorb application-level
  /// re-sends idempotently.
  std::set<std::string> chaos_exempt_methods = {"dn.write", "dn.write_batch",
                                                "repl.snapshot"};
};

/// Handler invoked when an RPC arrives at a node. The returned payload is
/// shipped back to the caller. Application-level errors are encoded inside
/// the payload; transport failures surface as StatusOr errors at the caller.
using RpcHandler =
    std::function<Task<std::string>(NodeId from, std::string payload)>;

/// Simulated wide-area network: computes per-message delivery delays from
/// the topology and options, dispatches RPCs to registered handlers, and
/// injects faults (node crashes, partitions).
class Network {
 public:
  Network(Simulator* sim, Topology topology, NetworkOptions options = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator* simulator() { return sim_; }
  const Topology& topology() const { return topology_; }
  const NetworkOptions& options() const { return options_; }
  NetworkOptions* mutable_options() { return &options_; }

  /// Registers a node in a region. Nodes start healthy.
  void RegisterNode(NodeId node, RegionId region);

  RegionId RegionOf(NodeId node) const;

  /// Registers the handler for (node, method). Overwrites silently so tests
  /// can re-register instrumented handlers.
  void RegisterHandler(NodeId node, const std::string& method,
                       RpcHandler handler);

  /// Round-trip RPC with timeout. Fails with Unavailable if the target is
  /// down/unreachable, TimedOut on deadline.
  Task<StatusOr<std::string>> Call(NodeId from, NodeId to,
                                   std::string method, std::string payload,
                                   SimDuration timeout = 0);

  /// Fire-and-forget message; silently dropped if the target is down or
  /// partitioned (like a packet on a dead TCP connection).
  void Send(NodeId from, NodeId to, std::string method, std::string payload);

  /// One-way delivery delay for `bytes` from `from` to `to` right now
  /// (latency + serialization + Nagle + jitter).
  SimDuration TransferDelay(NodeId from, NodeId to, size_t bytes);

  // --- Fault injection ---------------------------------------------------

  /// Taking a node down resets every in-flight call addressed to it: each
  /// caller observes Unavailable after one RST flight time instead of riding
  /// out the full RPC timeout. Partitions, by contrast, are silent black
  /// holes — blocked calls there still time out.
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;
  /// Blocks traffic in both directions between two nodes.
  void SetPartitioned(NodeId a, NodeId b, bool blocked);
  /// Blocks all traffic between two regions.
  void SetRegionPartitioned(RegionId a, RegionId b, bool blocked);
  bool CanReach(NodeId from, NodeId to) const;
  /// Message chaos: while enabled, each RPC request or one-way send is
  /// delivered a *second* time with probability `duplicate_fraction`, the
  /// copy carrying an extra random delay — so duplicates also arrive out of
  /// order relative to later traffic. The duplicate of a call executes the
  /// server handler again but its reply is discarded (a retransmission whose
  /// answer the client ignores); receivers must be idempotent to survive it.
  /// Passing duplicate_fraction <= 0 while enabling keeps (or defaults) the
  /// current fraction.
  void SetMessageChaos(bool enabled, double duplicate_fraction);
  bool message_chaos_enabled() const { return chaos_enabled_; }

  /// Total payload bytes accepted for transmission between each region pair
  /// (for the log-shipping volume ablation).
  Metrics& metrics() { return metrics_; }

 private:
  struct NodeInfo {
    RegionId region = 0;
    bool up = true;
    std::map<std::string, RpcHandler> handlers;
    /// Reply promises of calls currently addressed to this node, so a crash
    /// can reset them promptly (connection reset). Resolved entries are
    /// pruned lazily on the next call.
    std::vector<std::pair<NodeId, Promise<StatusOr<std::string>>>> inflight;
  };

  double EffectiveBandwidth(RegionId from, RegionId to) const;
  Task<void> DeliverCall(NodeId from, NodeId to, std::string method,
                         std::string payload,
                         Promise<StatusOr<std::string>> reply);

  Simulator* sim_;
  Topology topology_;
  NetworkOptions options_;
  std::map<NodeId, NodeInfo> nodes_;
  std::set<std::pair<NodeId, NodeId>> node_partitions_;
  std::set<std::pair<RegionId, RegionId>> region_partitions_;
  bool chaos_enabled_ = false;
  double chaos_duplicate_fraction_ = 0.0;
  Rng rng_;
  Metrics metrics_;
};

}  // namespace globaldb::sim

#endif  // GLOBALDB_SRC_SIM_NETWORK_H_
