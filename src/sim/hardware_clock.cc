#include "src/sim/hardware_clock.h"

#include <algorithm>
#include <cmath>

namespace globaldb::sim {

HardwareClock::HardwareClock(Simulator* sim, Rng rng,
                             HardwareClockOptions options)
    : sim_(sim), rng_(rng), options_(options) {
  // Start with a fresh sync at t=0 and a random initial drift direction.
  drift_rate_ = (rng_.NextDouble() * 2.0 - 1.0) * options_.max_drift_ppm * 1e-6;
  offset_at_sync_ =
      rng_.UniformRange(-options_.sync_rtt / 2, options_.sync_rtt / 2);
}

void HardwareClock::AdvanceSyncs() {
  if (!sync_healthy_) return;
  const SimTime now = sim_->now();
  while (now - last_sync_ >= options_.sync_interval) {
    last_sync_ += options_.sync_interval;
    // After a sync, the residual offset is bounded by the sync RTT (the
    // device timestamps are accurate to nanoseconds; the network round trip
    // dominates the uncertainty).
    offset_at_sync_ =
        rng_.UniformRange(-options_.sync_rtt / 2, options_.sync_rtt / 2);
    // Drift wanders within the PPM bound.
    drift_rate_ =
        (rng_.NextDouble() * 2.0 - 1.0) * options_.max_drift_ppm * 1e-6;
  }
}

SimTime HardwareClock::Read() {
  AdvanceSyncs();
  const SimTime now = sim_->now();
  const SimDuration since_sync = now - last_sync_;
  const SimDuration drift =
      static_cast<SimDuration>(drift_rate_ * static_cast<double>(since_sync));
  SimTime reading = now + offset_at_sync_ + drift;
  // Physical clocks never step backwards between reads on one machine.
  reading = std::max(reading, last_reading_ + 1);
  last_reading_ = reading;
  return reading;
}

SimDuration HardwareClock::ErrorBound() {
  AdvanceSyncs();
  const SimDuration since_sync = sim_->now() - last_sync_;
  const SimDuration drift_bound = static_cast<SimDuration>(
      options_.max_drift_ppm * 1e-6 * static_cast<double>(since_sync));
  return options_.sync_rtt + drift_bound;
}

SimDuration HardwareClock::TrueOffset() { return Read() - sim_->now(); }

void HardwareClock::InjectOffset(SimDuration delta) {
  offset_at_sync_ += delta;
}

}  // namespace globaldb::sim
