#ifndef GLOBALDB_SRC_SIM_SIMULATOR_H_
#define GLOBALDB_SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/task.h"

namespace globaldb::sim {

/// Single-threaded discrete-event simulator with a virtual nanosecond clock.
///
/// All node logic runs as coroutines resumed by the event loop. Events with
/// equal timestamps fire in scheduling order (FIFO), which — combined with a
/// seeded Rng — makes every run bit-for-bit reproducible.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 42) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in nanoseconds.
  SimTime now() const { return now_; }

  /// Root source of randomness; fork per-component generators from it.
  Rng& rng() { return rng_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0).
  void Schedule(SimDuration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` to run at absolute virtual time `when` (>= now()).
  void ScheduleAt(SimTime when, std::function<void()> fn) {
    GDB_CHECK(when >= now_) << "scheduling in the past: " << when << " < "
                            << now_;
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Starts a detached coroutine. The frame stays alive until the coroutine
  /// completes; completion order is governed entirely by virtual time.
  void Spawn(Task<void> task);

  /// Runs until the event queue is empty or Stop() is called.
  void Run();

  /// Runs events with time <= until, then sets now() = until.
  void RunUntil(SimTime until);

  /// Runs for `d` more virtual nanoseconds.
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  /// Makes Run()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }

  /// Number of events executed so far (for tests and diagnostics).
  uint64_t events_executed() const { return events_executed_; }

  /// Awaitable: suspends the current coroutine for `delay` virtual ns.
  auto Sleep(SimDuration delay) { return SleepAwaiter{this, now_ + delay}; }

  /// Awaitable: suspends until absolute virtual time `when`.
  auto SleepUntil(SimTime when) {
    return SleepAwaiter{this, when < now_ ? now_ : when};
  }

  /// Awaitable that reschedules the coroutine at the same time, letting other
  /// ready events run first (cooperative yield).
  auto Yield() { return SleepAwaiter{this, now_}; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct SleepAwaiter {
    Simulator* sim;
    SimTime when;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->ScheduleAt(when, [h]() { h.resume(); });
    }
    void await_resume() const {}
  };

  bool RunOne();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Rng rng_;
};

}  // namespace globaldb::sim

#endif  // GLOBALDB_SRC_SIM_SIMULATOR_H_
