#ifndef GLOBALDB_SRC_SIM_TASK_H_
#define GLOBALDB_SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace globaldb::sim {

/// A lazily-started coroutine task used for all node logic in the simulator.
///
/// `Task<T>` is move-only and owns the coroutine frame. Awaiting a task
/// starts it; when the task finishes, control transfers back to the awaiter
/// via symmetric transfer (no stack growth, no re-entry into the scheduler).
///
///   Task<int> Child();
///   Task<void> Parent() {
///     int v = co_await Child();
///     ...
///   }
///
/// Detached execution (e.g. a node's main loop) goes through
/// Simulator::Spawn, which keeps the frame alive until completion.
template <typename T>
class [[nodiscard]] Task;

namespace internal_task {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  // The codebase does not use exceptions for control flow; an escaped
  // exception is a bug.
  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace internal_task

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal_task::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  /// Awaiter: starts the task and resumes the awaiter when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> continuation) noexcept {
        handle.promise().continuation = continuation;
        return handle;  // symmetric transfer: start/resume the child
      }
      T await_resume() { return std::move(*handle.promise().value); }
    };
    return Awaiter{handle_};
  }

  /// Releases ownership of the frame (used by Simulator::Spawn).
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal_task::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> continuation) noexcept {
        handle.promise().continuation = continuation;
        return handle;
      }
      void await_resume() noexcept {}
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace globaldb::sim

#endif  // GLOBALDB_SRC_SIM_TASK_H_
