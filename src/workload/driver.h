#ifndef GLOBALDB_SRC_WORKLOAD_DRIVER_H_
#define GLOBALDB_SRC_WORKLOAD_DRIVER_H_

#include <functional>
#include <string>

#include "src/cluster/cluster.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"

namespace globaldb {

/// Commit-mode knob shared by the benches and workload scripts (README:
/// `timestamp_mode=gtm|gclock|epoch`): maps the knob string onto
/// ClusterOptions::initial_mode. Unknown names return an error so a config
/// typo fails loudly instead of silently benchmarking the wrong protocol.
StatusOr<TimestampMode> ParseTimestampMode(const std::string& name);

/// Reads environment variable `var` (unset/empty -> `fallback`); dies on an
/// unknown value. Lets scripts sweep commit protocols without recompiling
/// (e.g. GDB_TIMESTAMP_MODE in scripts/bench_txnpath.sh).
TimestampMode TimestampModeFromEnv(const char* var, TimestampMode fallback);

/// Result of one client transaction attempt.
struct TxnResult {
  Status status;
  std::string kind;  // e.g. "neworder", "point_select"
};

/// A transaction body: runs one client transaction against a CN.
using TxnFn = std::function<sim::Task<TxnResult>(CoordinatorNode* cn, Rng* rng)>;

/// Aggregated results of a driver run.
struct WorkloadStats {
  int64_t committed = 0;
  int64_t aborted = 0;
  SimDuration measured_duration = 0;
  Histogram latency;  // committed txns only, ns
  std::map<std::string, int64_t> committed_by_kind;
  std::map<std::string, Histogram> latency_by_kind;
  std::map<std::string, int64_t> abort_reasons;

  /// Committed transactions per simulated second.
  double Throughput() const {
    if (measured_duration <= 0) return 0;
    return static_cast<double>(committed) /
           (static_cast<double>(measured_duration) / kSecond);
  }
  /// Committed transactions per simulated minute (tpmC convention).
  double PerMinute() const { return Throughput() * 60.0; }
  double AbortRate() const {
    const int64_t total = committed + aborted;
    return total == 0 ? 0.0 : static_cast<double>(aborted) / total;
  }
};

/// Closed-loop client driver: `clients` terminals, each bound round-robin to
/// a CN, repeatedly running `fn` back-to-back. Transactions finishing inside
/// the measurement window [warmup, warmup + duration) are counted.
class WorkloadDriver {
 public:
  struct Options {
    int clients = 64;
    SimDuration warmup = 500 * kMillisecond;
    SimDuration duration = 5 * kSecond;
    /// Optional think time between transactions (0 = saturated clients).
    SimDuration think_time = 0;
    /// When >= 0, every client attaches to this CN index (e.g. to measure a
    /// node not co-located with the GTM server, Fig. 6b). Otherwise clients
    /// spread round-robin over all CNs.
    int pin_cn = -1;
    uint64_t seed = 1234;
  };

  WorkloadDriver(Cluster* cluster, Options options)
      : cluster_(cluster), options_(options) {}

  /// Runs the workload to completion and returns the stats.
  WorkloadStats Run(const TxnFn& fn);

 private:
  sim::Task<void> ClientLoop(CoordinatorNode* cn, const TxnFn* fn,
                             uint64_t seed, WorkloadStats* stats,
                             SimTime measure_start, SimTime measure_end,
                             bool* stop);

  Cluster* cluster_;
  Options options_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_WORKLOAD_DRIVER_H_
