#ifndef GLOBALDB_SRC_WORKLOAD_TPCC_H_
#define GLOBALDB_SRC_WORKLOAD_TPCC_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/workload/driver.h"

namespace globaldb {

/// TPC-C configuration. The paper runs 600 warehouses / 600 terminals; the
/// defaults here are scaled down so the full figure suite runs in seconds of
/// real time — scale factors do not change the *relative* results the
/// figures report.
struct TpccConfig {
  int num_warehouses = 12;
  int districts_per_warehouse = 10;
  int customers_per_district = 30;   // full scale: 3000
  int items = 1000;                  // full scale: 100000
  int initial_orders_per_district = 10;

  /// Fraction of transactions whose home warehouse is *not* served by a
  /// local (same-region) primary — the paper's physical-affinity knob
  /// (Section V-A starts at 0 and Section V-B raises it).
  double remote_warehouse_fraction = 0.0;

  /// Standard TPC-C mix weights (NewOrder, Payment, OrderStatus, Delivery,
  /// StockLevel).
  int weight_neworder = 45;
  int weight_payment = 43;
  int weight_orderstatus = 4;
  int weight_delivery = 4;
  int weight_stocklevel = 4;

  /// For the read-only variant of Section V-B: run only Order-status and
  /// Stock-level.
  bool read_only_mix = false;
  /// Fraction of read-only transactions forced to touch multiple shards
  /// (the paper uses 50%).
  double read_only_multi_shard_fraction = 0.5;
};

/// Creates the nine TPC-C tables (ITEM is replicated; everything else is
/// distributed by warehouse id) and bulk-loads the initial population
/// directly into primaries and replicas (load time is not part of any
/// measurement, so it bypasses the transaction path).
class TpccWorkload {
 public:
  TpccWorkload(Cluster* cluster, TpccConfig config, uint64_t seed = 99);

  /// Registers schemas through CN 0 (so peers and replicas learn them) and
  /// bulk-loads rows. Runs the simulator as needed.
  Status Setup();

  /// A TxnFn running the configured mix; pass to WorkloadDriver.
  TxnFn MixFn();

  const TpccConfig& config() const { return config_; }

  // Individual transaction profiles (public for targeted tests).
  sim::Task<TxnResult> NewOrder(CoordinatorNode* cn, Rng* rng);
  sim::Task<TxnResult> Payment(CoordinatorNode* cn, Rng* rng);
  sim::Task<TxnResult> OrderStatus(CoordinatorNode* cn, Rng* rng);
  sim::Task<TxnResult> Delivery(CoordinatorNode* cn, Rng* rng);
  sim::Task<TxnResult> StockLevel(CoordinatorNode* cn, Rng* rng);

 private:
  /// Picks a home warehouse for a client on `cn`, honoring the
  /// remote-warehouse fraction (physical affinity).
  int64_t PickWarehouse(CoordinatorNode* cn, Rng* rng) const;
  /// A warehouse on a different shard than `w`. When `same_region` is
  /// true, prefer one whose primary lives in the same region (the paper's
  /// "100% local transactions" keep cross-shard work inside the city).
  int64_t PickOtherShardWarehouse(int64_t w, Rng* rng,
                                  bool same_region = false) const;
  ShardId ShardOfWarehouse(int64_t w) const;
  bool WarehouseIsLocal(CoordinatorNode* cn, int64_t w) const;

  Cluster* cluster_;
  TpccConfig config_;
  Rng rng_;
  /// next order id per (warehouse, district), client-side cache for
  /// generating order ids without a district hotspot read during load.
  std::vector<int64_t> next_order_id_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_WORKLOAD_TPCC_H_
