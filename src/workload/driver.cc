#include "src/workload/driver.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace globaldb {

StatusOr<TimestampMode> ParseTimestampMode(const std::string& name) {
  if (name == "gtm") return TimestampMode::kGtm;
  if (name == "gclock") return TimestampMode::kGclock;
  if (name == "epoch") return TimestampMode::kEpoch;
  // kDual is a transition-internal state, not a deployable commit mode.
  return Status::InvalidArgument("unknown timestamp_mode: " + name);
}

TimestampMode TimestampModeFromEnv(const char* var, TimestampMode fallback) {
  const char* value = std::getenv(var);
  if (value == nullptr || value[0] == '\0') return fallback;
  auto mode = ParseTimestampMode(value);
  GDB_CHECK(mode.ok()) << var << ": " << mode.status().ToString();
  return *mode;
}

sim::Task<void> WorkloadDriver::ClientLoop(CoordinatorNode* cn,
                                           const TxnFn* fn, uint64_t seed,
                                           WorkloadStats* stats,
                                           SimTime measure_start,
                                           SimTime measure_end, bool* stop) {
  Rng rng(seed);
  sim::Simulator* sim = cluster_->simulator();
  while (!*stop && sim->now() < measure_end) {
    const SimTime start = sim->now();
    TxnResult result = co_await (*fn)(cn, &rng);
    const SimTime end = sim->now();
    if (end >= measure_start && end < measure_end) {
      if (result.status.ok()) {
        ++stats->committed;
        stats->latency.Record(end - start);
        stats->latency_by_kind[result.kind].Record(end - start);
        ++stats->committed_by_kind[result.kind];
      } else {
        ++stats->aborted;
        ++stats->abort_reasons[result.kind + ": " + result.status.ToString()];
      }
    }
    if (options_.think_time > 0) {
      co_await sim->Sleep(options_.think_time);
    }
  }
}

WorkloadStats WorkloadDriver::Run(const TxnFn& fn) {
  WorkloadStats stats;
  sim::Simulator* sim = cluster_->simulator();
  const SimTime measure_start = sim->now() + options_.warmup;
  const SimTime measure_end = measure_start + options_.duration;
  bool stop = false;

  Rng seeder(options_.seed);
  const size_t num_cns = cluster_->num_cns();
  for (int c = 0; c < options_.clients; ++c) {
    CoordinatorNode* cn =
        options_.pin_cn >= 0
            ? &cluster_->cn(static_cast<size_t>(options_.pin_cn) % num_cns)
            : &cluster_->cn(c % num_cns);
    sim->Spawn(ClientLoop(cn, &fn, seeder.Next(), &stats, measure_start,
                          measure_end, &stop));
  }
  sim->RunUntil(measure_end);
  stop = true;
  // Drain in-flight transactions so their coroutine frames settle.
  sim->RunFor(2 * kSecond);
  stats.measured_duration = options_.duration;
  return stats;
}

}  // namespace globaldb
