#include "src/workload/sysbench.h"

#include <algorithm>

#include "src/common/logging.h"

namespace globaldb {

// Aborts the open transaction and returns the failed TxnResult. A macro
// (not a nested lambda coroutine): GCC 12 miscompiles capturing lambda
// coroutines awaited from another coroutine's co_return expression.
#define GDB_TXN_FAIL(expr)              \
  {                                     \
    result.status = (expr);             \
    (void)co_await cn->Abort(&txn);     \
    co_return result;                   \
  }


namespace {

constexpr TxnId kLoadTxn = 1;
constexpr Timestamp kLoadTs = 1;

TableSchema SbtestSchema(const std::string& name) {
  TableSchema s;
  s.name = name;
  s.columns = {{"id", ColumnType::kInt64},
               {"k", ColumnType::kInt64},
               {"c", ColumnType::kString},
               {"pad", ColumnType::kString}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

}  // namespace

SysbenchWorkload::SysbenchWorkload(Cluster* cluster, SysbenchConfig config,
                                   uint64_t seed)
    : cluster_(cluster), config_(config), rng_(seed) {}

bool SysbenchWorkload::RowIsLocal(CoordinatorNode* cn, int64_t id) const {
  const TableSchema schema = SbtestSchema("sbtest1");
  Row row = {id, int64_t{0}, std::string(), std::string()};
  const ShardId shard = RouteRowToShard(
      schema, row, static_cast<uint32_t>(cluster_->num_shards()));
  return cluster_->PrimaryRegion(shard) == cn->region();
}

int64_t SysbenchWorkload::PickRowId(CoordinatorNode* cn, Rng* rng) const {
  const bool want_remote = rng->Bernoulli(config_.remote_fraction);
  for (int tries = 0; tries < 32; ++tries) {
    const int64_t id = rng->UniformRange(1, config_.rows_per_table);
    if (RowIsLocal(cn, id) != want_remote) return id;
  }
  return rng->UniformRange(1, config_.rows_per_table);
}

Status SysbenchWorkload::Setup() {
  sim::Simulator* sim = cluster_->simulator();
  CoordinatorNode& cn = cluster_->cn(0);

  Status ddl_status = Status::OK();
  bool done = false;
  auto create_all = [](CoordinatorNode* cn, const SysbenchConfig* config,
                       Status* out, bool* flag) -> sim::Task<void> {
    for (int t = 0; t < config->num_tables; ++t) {
      TableSchema schema = SbtestSchema("sbtest" + std::to_string(t + 1));
      Status s = co_await cn->CreateTable(schema);
      if (!s.ok()) {
        *out = s;
        break;
      }
    }
    *flag = true;
  };
  sim->Spawn(create_all(&cn, &config_, &ddl_status, &done));
  while (!done) sim->RunFor(10 * kMillisecond);
  GDB_RETURN_IF_ERROR(ddl_status);

  // Bulk load.
  for (int t = 0; t < config_.num_tables; ++t) {
    const TableSchema* schema = cn.catalog().FindTable(TableName(t));
    GDB_CHECK(schema != nullptr);
    for (int64_t id = 1; id <= config_.rows_per_table; ++id) {
      Row row = {id, rng_.UniformRange(1, config_.rows_per_table),
                 rng_.AlphaString(30, 60), rng_.AlphaString(20, 40)};
      const RowKey key = schema->PrimaryKeyOf(row);
      std::string value;
      EncodeRow(row, &value);
      const ShardId shard = RouteRowToShard(
          *schema, row, static_cast<uint32_t>(cluster_->num_shards()));
      cluster_->data_node(shard).store().GetOrCreateTable(schema->id)
          ->ApplyInsert(key, value, kLoadTxn);
      for (ReplicaNode* replica : cluster_->replicas_of(shard)) {
        replica->store().GetOrCreateTable(schema->id)
            ->ApplyInsert(key, value, kLoadTxn);
      }
    }
  }
  for (ShardId shard = 0; shard < cluster_->num_shards(); ++shard) {
    cluster_->data_node(shard).store().CommitTxn(kLoadTxn, kLoadTs);
    for (ReplicaNode* replica : cluster_->replicas_of(shard)) {
      replica->store().CommitTxn(kLoadTxn, kLoadTs);
    }
  }
  return Status::OK();
}

TxnFn SysbenchWorkload::PointSelectFn() {
  return [this](CoordinatorNode* cn, Rng* rng) -> sim::Task<TxnResult> {
    return PointSelect(cn, rng);
  };
}

TxnFn SysbenchWorkload::ReadWriteFn() {
  return [this](CoordinatorNode* cn, Rng* rng) -> sim::Task<TxnResult> {
    return ReadWrite(cn, rng);
  };
}

TxnFn SysbenchWorkload::RangeSelectFn() {
  return [this](CoordinatorNode* cn, Rng* rng) -> sim::Task<TxnResult> {
    return RangeSelect(cn, rng);
  };
}

sim::Task<TxnResult> SysbenchWorkload::RangeSelect(CoordinatorNode* cn,
                                                   Rng* rng) {
  TxnResult result;
  result.kind = "range_select";
  auto txn_or = co_await cn->Begin(/*read_only=*/true,
                                   /*single_shard=*/false);
  if (!txn_or.ok()) {
    result.status = txn_or.status();
    co_return result;
  }
  TxnHandle txn = *txn_or;
  std::vector<ScanSpec> specs(config_.ranges_per_txn);
  for (int i = 0; i < config_.ranges_per_txn; ++i) {
    const int64_t max_start =
        std::max<int64_t>(1, config_.rows_per_table - config_.range_size);
    const int64_t start_id = rng->UniformRange(1, max_start);
    ScanSpec& spec = specs[i];
    spec.table = TableName(static_cast<int>(rng->Uniform(config_.num_tables)));
    EncodeKeyPart(Value(start_id), &spec.start);
    EncodeKeyPart(Value(start_id + config_.range_size), &spec.end);
    spec.limit = static_cast<uint32_t>(config_.range_size);
  }
  auto batch = co_await cn->ScanBatch(&txn, std::move(specs));
  result.status = batch.ok() ? Status::OK() : batch.status();
  // Read-only close: releases the snapshot's pin on the GC horizon.
  (void)co_await cn->Abort(&txn);
  co_return result;
}

sim::Task<TxnResult> SysbenchWorkload::PointSelect(CoordinatorNode* cn,
                                                   Rng* rng) {
  TxnResult result;
  result.kind = "point_select";
  const std::string table =
      TableName(static_cast<int>(rng->Uniform(config_.num_tables)));
  const int64_t id = PickRowId(cn, rng);

  auto txn_or = co_await cn->Begin(/*read_only=*/true, /*single_shard=*/true);
  if (!txn_or.ok()) {
    result.status = txn_or.status();
    co_return result;
  }
  TxnHandle txn = *txn_or;
  Row key = {id};
  auto row = co_await cn->Get(&txn, table, key);
  result.status = row.ok() ? Status::OK() : row.status();
  // Read-only close: releases the snapshot's pin on the GC horizon.
  (void)co_await cn->Abort(&txn);
  co_return result;
}

sim::Task<TxnResult> SysbenchWorkload::ReadWrite(CoordinatorNode* cn,
                                                 Rng* rng) {
  TxnResult result;
  result.kind = "read_write";
  const std::string table =
      TableName(static_cast<int>(rng->Uniform(config_.num_tables)));

  auto txn_or = co_await cn->Begin();
  if (!txn_or.ok()) {
    result.status = txn_or.status();
    co_return result;
  }
  TxnHandle txn = *txn_or;

  // The point selects are independent of each other: one batched MultiGet
  // fans them out per shard instead of point_selects_per_txn serial trips.
  std::vector<Row> select_keys;
  select_keys.reserve(config_.point_selects_per_txn);
  for (int i = 0; i < config_.point_selects_per_txn; ++i) {
    select_keys.push_back({PickRowId(cn, rng)});
  }
  auto selected = co_await cn->MultiGet(&txn, table, select_keys);
  if (!selected.ok()) GDB_TXN_FAIL(selected.status());
  for (int i = 0; i < config_.updates_per_txn; ++i) {
    Row key = {PickRowId(cn, rng)};
    auto row = co_await cn->GetForUpdate(&txn, table, key);
    if (!row.ok()) GDB_TXN_FAIL(row.status());
    if (!row->has_value()) continue;
    Row updated = **row;
    std::get<int64_t>(updated[1]) += 1;
    Status s = co_await cn->Update(&txn, table, updated);
    if (!s.ok()) GDB_TXN_FAIL(std::move(s));
  }
  result.status = co_await cn->Commit(&txn);
  co_return result;
}

}  // namespace globaldb
