#include "src/workload/tpcc.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/logging.h"

namespace globaldb {

// Aborts the open transaction and returns the failed TxnResult. A macro
// (not a nested lambda coroutine): GCC 12 miscompiles capturing lambda
// coroutines awaited from another coroutine's co_return expression.
#define GDB_TXN_FAIL(expr)              \
  {                                     \
    result.status = (expr);             \
    (void)co_await cn->Abort(&txn);     \
    co_return result;                   \
  }


namespace {

constexpr TxnId kLoadTxn = 1;
constexpr Timestamp kLoadTs = 1;

TableSchema WarehouseSchema() {
  TableSchema s;
  s.name = "warehouse";
  s.columns = {{"w_id", ColumnType::kInt64},
               {"w_name", ColumnType::kString},
               {"w_ytd", ColumnType::kDouble}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

TableSchema DistrictSchema() {
  TableSchema s;
  s.name = "district";
  s.columns = {{"d_w_id", ColumnType::kInt64},
               {"d_id", ColumnType::kInt64},
               {"d_name", ColumnType::kString},
               {"d_ytd", ColumnType::kDouble},
               {"d_next_o_id", ColumnType::kInt64}};
  s.key_columns = {0, 1};
  s.distribution_column = 0;
  return s;
}

TableSchema CustomerSchema() {
  TableSchema s;
  s.name = "customer";
  s.columns = {{"c_w_id", ColumnType::kInt64},
               {"c_d_id", ColumnType::kInt64},
               {"c_id", ColumnType::kInt64},
               {"c_name", ColumnType::kString},
               {"c_balance", ColumnType::kDouble},
               {"c_ytd_payment", ColumnType::kDouble},
               {"c_payment_cnt", ColumnType::kInt64}};
  s.key_columns = {0, 1, 2};
  s.distribution_column = 0;
  return s;
}

TableSchema HistorySchema() {
  TableSchema s;
  s.name = "history";
  s.columns = {{"h_w_id", ColumnType::kInt64},
               {"h_d_id", ColumnType::kInt64},
               {"h_c_id", ColumnType::kInt64},
               {"h_id", ColumnType::kInt64},
               {"h_amount", ColumnType::kDouble}};
  s.key_columns = {0, 1, 2, 3};
  s.distribution_column = 0;
  return s;
}

TableSchema OrdersSchema() {
  TableSchema s;
  s.name = "orders";
  s.columns = {{"o_w_id", ColumnType::kInt64},
               {"o_d_id", ColumnType::kInt64},
               {"o_id", ColumnType::kInt64},
               {"o_c_id", ColumnType::kInt64},
               {"o_ol_cnt", ColumnType::kInt64},
               {"o_carrier_id", ColumnType::kInt64}};
  s.key_columns = {0, 1, 2};
  s.distribution_column = 0;
  return s;
}

/// App-maintained secondary index: (w, d, c) -> order ids, ascending. A
/// reverse limit-1 prefix scan over (w, d, c) is the customer's latest
/// order — the lookup OrderStatus needs — without scanning the orders
/// table. NewOrder appends to it in the same buffered write batch as the
/// order header (same shard: distributed by warehouse), so maintenance
/// costs no extra round trip (DESIGN.md §14).
TableSchema OrdersCustIdxSchema() {
  TableSchema s;
  s.name = "orders_cust_idx";
  s.columns = {{"oi_w_id", ColumnType::kInt64},
               {"oi_d_id", ColumnType::kInt64},
               {"oi_c_id", ColumnType::kInt64},
               {"oi_o_id", ColumnType::kInt64}};
  s.key_columns = {0, 1, 2, 3};
  s.distribution_column = 0;
  return s;
}

TableSchema NewOrderSchema() {
  TableSchema s;
  s.name = "new_order";
  s.columns = {{"no_w_id", ColumnType::kInt64},
               {"no_d_id", ColumnType::kInt64},
               {"no_o_id", ColumnType::kInt64}};
  s.key_columns = {0, 1, 2};
  s.distribution_column = 0;
  return s;
}

TableSchema OrderLineSchema() {
  TableSchema s;
  s.name = "order_line";
  s.columns = {{"ol_w_id", ColumnType::kInt64},
               {"ol_d_id", ColumnType::kInt64},
               {"ol_o_id", ColumnType::kInt64},
               {"ol_number", ColumnType::kInt64},
               {"ol_i_id", ColumnType::kInt64},
               {"ol_supply_w_id", ColumnType::kInt64},
               {"ol_quantity", ColumnType::kInt64},
               {"ol_amount", ColumnType::kDouble}};
  s.key_columns = {0, 1, 2, 3};
  s.distribution_column = 0;
  return s;
}

TableSchema ItemSchema() {
  TableSchema s;
  s.name = "item";
  s.columns = {{"i_id", ColumnType::kInt64},
               {"i_name", ColumnType::kString},
               {"i_price", ColumnType::kDouble}};
  s.key_columns = {0};
  s.distribution_column = 0;
  s.distribution = DistributionKind::kReplicated;
  return s;
}

TableSchema StockSchema() {
  TableSchema s;
  s.name = "stock";
  s.columns = {{"s_w_id", ColumnType::kInt64},
               {"s_i_id", ColumnType::kInt64},
               {"s_quantity", ColumnType::kInt64},
               {"s_ytd", ColumnType::kDouble},
               {"s_order_cnt", ColumnType::kInt64}};
  s.key_columns = {0, 1};
  s.distribution_column = 0;
  return s;
}

/// Prefix scan bounds from leading key-column values.
std::pair<RowKey, RowKey> PrefixRange(std::initializer_list<Value> parts) {
  RowKey start;
  for (const Value& v : parts) EncodeKeyPart(v, &start);
  return {start, PrefixSuccessor(start)};
}

}  // namespace

TpccWorkload::TpccWorkload(Cluster* cluster, TpccConfig config, uint64_t seed)
    : cluster_(cluster), config_(config), rng_(seed) {}

ShardId TpccWorkload::ShardOfWarehouse(int64_t w) const {
  const TableSchema schema = WarehouseSchema();
  Row row = {w, std::string(), 0.0};
  return RouteRowToShard(schema, row,
                         static_cast<uint32_t>(cluster_->num_shards()));
}

bool TpccWorkload::WarehouseIsLocal(CoordinatorNode* cn, int64_t w) const {
  const ShardId shard = ShardOfWarehouse(w);
  return cluster_->PrimaryRegion(shard) == cn->region();
}

int64_t TpccWorkload::PickWarehouse(CoordinatorNode* cn, Rng* rng) const {
  const bool want_remote = rng->Bernoulli(config_.remote_warehouse_fraction);
  // Rejection-sample a warehouse with the desired affinity (bounded tries:
  // in a one-region cluster everything is local).
  for (int tries = 0; tries < 32; ++tries) {
    const int64_t w = rng->UniformRange(1, config_.num_warehouses);
    if (WarehouseIsLocal(cn, w) != want_remote) return w;
  }
  return rng->UniformRange(1, config_.num_warehouses);
}

int64_t TpccWorkload::PickOtherShardWarehouse(int64_t w, Rng* rng,
                                              bool same_region) const {
  const ShardId home = ShardOfWarehouse(w);
  const RegionId home_region = cluster_->PrimaryRegion(home);
  for (int tries = 0; tries < 64; ++tries) {
    const int64_t other = rng->UniformRange(1, config_.num_warehouses);
    const ShardId other_shard = ShardOfWarehouse(other);
    if (other == w || other_shard == home) continue;
    if (same_region &&
        cluster_->PrimaryRegion(other_shard) != home_region) {
      continue;
    }
    return other;
  }
  return w;
}

Status TpccWorkload::Setup() {
  sim::Simulator* sim = cluster_->simulator();
  CoordinatorNode& cn = cluster_->cn(0);

  // 1. Register schemas through the CN so DDL reaches peers and replicas.
  const std::vector<TableSchema> schemas = {
      WarehouseSchema(), DistrictSchema(),  CustomerSchema(), HistorySchema(),
      OrdersSchema(),    NewOrderSchema(),  OrderLineSchema(), ItemSchema(),
      StockSchema(),     OrdersCustIdxSchema()};
  Status ddl_status = Status::OK();
  bool ddl_done = false;
  auto create_all = [](CoordinatorNode* cn,
                       const std::vector<TableSchema>* schemas, Status* out,
                       bool* done) -> sim::Task<void> {
    for (const TableSchema& schema : *schemas) {
      Status s = co_await cn->CreateTable(schema);
      if (!s.ok()) {
        *out = s;
        break;
      }
    }
    *done = true;
  };
  sim->Spawn(create_all(&cn, &schemas, &ddl_status, &ddl_done));
  while (!ddl_done) sim->RunFor(10 * kMillisecond);
  GDB_RETURN_IF_ERROR(ddl_status);

  // 2. Bulk-load directly into primaries and replicas (load time is outside
  // every measurement window).
  const Catalog& catalog = cn.catalog();
  auto load_row = [&](const TableSchema& proto, const Row& row) {
    const TableSchema* schema = catalog.FindTable(proto.name);
    GDB_CHECK(schema != nullptr);
    const RowKey key = schema->PrimaryKeyOf(row);
    std::string value;
    EncodeRow(row, &value);
    std::vector<ShardId> shards;
    if (schema->distribution == DistributionKind::kReplicated) {
      for (ShardId s = 0; s < cluster_->num_shards(); ++s) {
        shards.push_back(s);
      }
    } else {
      shards.push_back(RouteRowToShard(
          *schema, row, static_cast<uint32_t>(cluster_->num_shards())));
    }
    for (ShardId shard : shards) {
      cluster_->data_node(shard).store().GetOrCreateTable(schema->id)
          ->ApplyInsert(key, value, kLoadTxn);
      for (ReplicaNode* replica : cluster_->replicas_of(shard)) {
        replica->store().GetOrCreateTable(schema->id)
            ->ApplyInsert(key, value, kLoadTxn);
      }
    }
  };

  for (int64_t i = 1; i <= config_.items; ++i) {
    load_row(ItemSchema(),
             {i, "item_" + std::to_string(i),
              static_cast<double>(rng_.UniformRange(100, 10000)) / 100.0});
  }
  for (int64_t w = 1; w <= config_.num_warehouses; ++w) {
    load_row(WarehouseSchema(), {w, "warehouse_" + std::to_string(w), 0.0});
    for (int64_t i = 1; i <= config_.items; ++i) {
      load_row(StockSchema(),
               {w, i, rng_.UniformRange(10, 100), 0.0, int64_t{0}});
    }
    for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      const int64_t next_o_id = config_.initial_orders_per_district + 1;
      load_row(DistrictSchema(),
               {w, d, "district", 0.0, next_o_id});
      for (int64_t c = 1; c <= config_.customers_per_district; ++c) {
        load_row(CustomerSchema(),
                 {w, d, c, rng_.AlphaString(8, 16), -10.0, 10.0,
                  int64_t{1}});
      }
      for (int64_t o = 1; o <= config_.initial_orders_per_district; ++o) {
        const int64_t c_id =
            rng_.UniformRange(1, config_.customers_per_district);
        const int64_t ol_cnt = rng_.UniformRange(5, 15);
        load_row(OrdersSchema(), {w, d, o, c_id, ol_cnt, int64_t{0}});
        load_row(OrdersCustIdxSchema(), {w, d, c_id, o});
        if (o > config_.initial_orders_per_district - 3) {
          load_row(NewOrderSchema(), {w, d, o});
        }
        for (int64_t ol = 1; ol <= ol_cnt; ++ol) {
          load_row(OrderLineSchema(),
                   {w, d, o, ol, rng_.UniformRange(1, config_.items), w,
                    int64_t{5}, 50.0});
        }
      }
    }
  }

  // 3. Stamp the load transaction everywhere.
  for (ShardId shard = 0; shard < cluster_->num_shards(); ++shard) {
    cluster_->data_node(shard).store().CommitTxn(kLoadTxn, kLoadTs);
    for (ReplicaNode* replica : cluster_->replicas_of(shard)) {
      replica->store().CommitTxn(kLoadTxn, kLoadTs);
    }
  }
  return Status::OK();
}

TxnFn TpccWorkload::MixFn() {
  return [this](CoordinatorNode* cn, Rng* rng) -> sim::Task<TxnResult> {
    if (config_.read_only_mix) {
      // Section V-B read-only benchmark: Order-status + Stock-level only.
      if (rng->Bernoulli(0.5)) return OrderStatus(cn, rng);
      return StockLevel(cn, rng);
    }
    const int total = config_.weight_neworder + config_.weight_payment +
                      config_.weight_orderstatus + config_.weight_delivery +
                      config_.weight_stocklevel;
    int pick = static_cast<int>(rng->Uniform(total));
    if ((pick -= config_.weight_neworder) < 0) return NewOrder(cn, rng);
    if ((pick -= config_.weight_payment) < 0) return Payment(cn, rng);
    if ((pick -= config_.weight_orderstatus) < 0) return OrderStatus(cn, rng);
    if ((pick -= config_.weight_delivery) < 0) return Delivery(cn, rng);
    return StockLevel(cn, rng);
  };
}

sim::Task<TxnResult> TpccWorkload::NewOrder(CoordinatorNode* cn, Rng* rng) {
  TxnResult result;
  result.kind = "neworder";
  const int64_t w = PickWarehouse(cn, rng);
  const int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  const int64_t c = rng->NuRand(1023, 1, config_.customers_per_district, 7);
  const int64_t ol_cnt = rng->UniformRange(5, 15);

  auto txn_or = co_await cn->Begin();
  if (!txn_or.ok()) {
    result.status = txn_or.status();
    co_return result;
  }
  TxnHandle txn = *txn_or;

  // All per-line parameters are drawn up front so the independent reads —
  // warehouse, customer, every item, every stock row (locked) — fan out as
  // ONE MultiGet: the read cost of the whole transaction is one WAN round
  // trip to the slowest shard instead of 2 + 2*ol_cnt serial trips
  // (DESIGN.md §11).
  struct LineInfo {
    int64_t i_id, supply_w, qty;
    double amount;
  };
  std::vector<LineInfo> lines;
  std::vector<MultiGetKey> read_set;
  read_set.push_back({"warehouse", {w}, false});
  read_set.push_back({"customer", {w, d, c}, false});
  for (int64_t ol = 1; ol <= ol_cnt; ++ol) {
    const int64_t i_id = rng->NuRand(8191, 1, config_.items, 13);
    int64_t supply_w = w;
    // ~1% remote supply warehouse per line (TPC-C clause 2.4.1.5); stays
    // in-region under the paper's physical-affinity assumption.
    if (config_.num_warehouses > 1 && rng->Bernoulli(0.01)) {
      supply_w = PickOtherShardWarehouse(w, rng, /*same_region=*/true);
    }
    const int64_t qty = rng->UniformRange(1, 10);
    lines.push_back({i_id, supply_w, qty, 0.0});
    read_set.push_back({"item", {i_id}, false});
    read_set.push_back({"stock", {supply_w, i_id}, true});
  }
  auto rows = co_await cn->MultiGet(&txn, std::move(read_set));
  if (!rows.ok()) GDB_TXN_FAIL(rows.status());
  if (!(*rows)[1].has_value()) GDB_TXN_FAIL(Status::NotFound("customer"));

  // Stock read-modify-writes first: the hot district lock is taken as late
  // as possible to keep its hold time short. An order may name the same
  // (warehouse, item) twice; the deltas accumulate on one row image, just
  // as serial re-reads of the locked row would observe them.
  std::map<std::pair<int64_t, int64_t>, Row> stock_rows;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::optional<Row>& item = (*rows)[2 + 2 * i];
    if (!item.has_value()) GDB_TXN_FAIL(Status::NotFound("item"));
    lines[i].amount = std::get<double>((*item)[2]) * lines[i].qty;

    const std::optional<Row>& stock = (*rows)[3 + 2 * i];
    if (!stock.has_value()) GDB_TXN_FAIL(Status::NotFound("stock"));
    auto [it, inserted] = stock_rows.try_emplace(
        {lines[i].supply_w, lines[i].i_id}, *stock);
    Row& stock_row = it->second;
    const int64_t qty = lines[i].qty;
    int64_t& s_qty = std::get<int64_t>(stock_row[2]);
    s_qty = s_qty >= qty + 10 ? s_qty - qty : s_qty - qty + 91;
    std::get<double>(stock_row[3]) += qty;
    std::get<int64_t>(stock_row[4]) += 1;
    Status stock_update = co_await cn->Update(&txn, "stock", stock_row);
    if (!stock_update.ok()) GDB_TXN_FAIL(std::move(stock_update));
  }

  // District read-modify-write allocates the order id (the classic
  // contention point).
  Row d_key = {w, d};
  auto district = co_await cn->GetForUpdate(&txn, "district", d_key);
  if (!district.ok() || !district->has_value()) {
    GDB_TXN_FAIL(!district.ok() ? district.status()
                                : Status::NotFound("district"));
  }
  Row district_row = **district;
  const int64_t o_id = std::get<int64_t>(district_row[4]);
  std::get<int64_t>(district_row[4]) = o_id + 1;
  Status s = co_await cn->Update(&txn, "district", district_row);
  if (!s.ok()) GDB_TXN_FAIL(std::move(s));

  // Insert order header, new-order marker, and the lines.
  Row order_row = {w, d, o_id, c, ol_cnt, int64_t{0}};
  s = co_await cn->Insert(&txn, "orders", order_row);
  if (!s.ok()) GDB_TXN_FAIL(std::move(s));
  Row neworder_row = {w, d, o_id};
  s = co_await cn->Insert(&txn, "new_order", neworder_row);
  if (!s.ok()) GDB_TXN_FAIL(std::move(s));
  // Secondary-index maintenance rides in the same buffered batch as the
  // order header (same shard), so it adds no round trip.
  Row idx_row = {w, d, c, o_id};
  s = co_await cn->Insert(&txn, "orders_cust_idx", idx_row);
  if (!s.ok()) GDB_TXN_FAIL(std::move(s));
  for (size_t i = 0; i < lines.size(); ++i) {
    Row line = {w, d, o_id, static_cast<int64_t>(i + 1), lines[i].i_id,
                lines[i].supply_w, lines[i].qty, lines[i].amount};
    s = co_await cn->Insert(&txn, "order_line", line);
    if (!s.ok()) GDB_TXN_FAIL(std::move(s));
  }

  result.status = co_await cn->Commit(&txn);
  co_return result;
}

sim::Task<TxnResult> TpccWorkload::Payment(CoordinatorNode* cn, Rng* rng) {
  TxnResult result;
  result.kind = "payment";
  const int64_t w = PickWarehouse(cn, rng);
  const int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  // 15% remote customer (TPC-C clause 2.5.1.2); in-region under the
  // paper's physical-affinity assumption.
  int64_t c_w = w;
  if (config_.num_warehouses > 1 && rng->Bernoulli(0.15)) {
    c_w = PickOtherShardWarehouse(w, rng, /*same_region=*/true);
  }
  const int64_t c = rng->NuRand(1023, 1, config_.customers_per_district, 7);
  const double amount = rng->UniformRange(100, 500000) / 100.0;

  auto txn_or = co_await cn->Begin();
  if (!txn_or.ok()) {
    result.status = txn_or.status();
    co_return result;
  }
  TxnHandle txn = *txn_or;

  // The customer, district, and warehouse lock-reads are mutually
  // independent: one MultiGet locks all three in a single fan-out (the
  // possibly-remote customer group travels in parallel with the home
  // shard's district+warehouse group) instead of three serial round trips.
  std::vector<MultiGetKey> read_set = {{"customer", {c_w, d, c}, true},
                                       {"district", {w, d}, true},
                                       {"warehouse", {w}, true}};
  auto rows = co_await cn->MultiGet(&txn, std::move(read_set));
  if (!rows.ok()) GDB_TXN_FAIL(rows.status());
  if (!(*rows)[0].has_value()) GDB_TXN_FAIL(Status::NotFound("customer"));
  if (!(*rows)[1].has_value()) GDB_TXN_FAIL(Status::NotFound("district"));
  if (!(*rows)[2].has_value()) GDB_TXN_FAIL(Status::NotFound("warehouse"));

  Row customer_row = *(*rows)[0];
  std::get<double>(customer_row[4]) -= amount;
  std::get<double>(customer_row[5]) += amount;
  std::get<int64_t>(customer_row[6]) += 1;
  Status s = co_await cn->Update(&txn, "customer", customer_row);
  if (!s.ok()) GDB_TXN_FAIL(std::move(s));

  Row history_row = {c_w, d, c, static_cast<int64_t>(rng->Next() >> 1),
                     amount};
  s = co_await cn->Insert(&txn, "history", history_row);
  if (!s.ok()) GDB_TXN_FAIL(std::move(s));

  Row district_row = *(*rows)[1];
  std::get<double>(district_row[3]) += amount;
  s = co_await cn->Update(&txn, "district", district_row);
  if (!s.ok()) GDB_TXN_FAIL(std::move(s));

  Row warehouse_row = *(*rows)[2];
  std::get<double>(warehouse_row[2]) += amount;
  s = co_await cn->Update(&txn, "warehouse", warehouse_row);
  if (!s.ok()) GDB_TXN_FAIL(std::move(s));

  result.status = co_await cn->Commit(&txn);
  co_return result;
}

sim::Task<TxnResult> TpccWorkload::OrderStatus(CoordinatorNode* cn, Rng* rng) {
  TxnResult result;
  result.kind = "orderstatus";
  const int64_t w = PickWarehouse(cn, rng);
  const int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  const int64_t c = rng->NuRand(1023, 1, config_.customers_per_district, 7);
  const bool multi_shard =
      config_.read_only_mix &&
      rng->Bernoulli(config_.read_only_multi_shard_fraction);

  auto txn_or = co_await cn->Begin(/*read_only=*/true,
                                   /*single_shard=*/!multi_shard);
  if (!txn_or.ok()) {
    result.status = txn_or.status();
    co_return result;
  }
  TxnHandle txn = *txn_or;

  if (cn->options().enable_scan_batching) {
    // ONE round trip for the whole profile: the customer row, the
    // customer's latest order (a reverse limit-1 scan of orders_cust_idx
    // with a server-side prefix join pulling that order's lines), and —
    // when multi-shard — a remote warehouse's customer all travel in one
    // ScanBatch. The serial shape below needs two dependent trips because
    // the order-line scan waits on the district read.
    std::vector<ScanSpec> specs(multi_shard ? 3 : 2);
    auto [c_start, c_end] = PrefixRange({w, d, c});
    specs[0].table = "customer";
    specs[0].start = c_start;
    specs[0].end = c_end;
    specs[0].limit = 1;
    specs[0].route = Value(w);
    auto [i_start, i_end] = PrefixRange({w, d, c});
    specs[1].table = "orders_cust_idx";
    specs[1].start = i_start;
    specs[1].end = i_end;
    specs[1].limit = 1;
    specs[1].reverse = true;
    specs[1].route = Value(w);
    specs[1].join_table = "order_line";
    specs[1].join_key_cols = {0, 1, 3};  // (w, d, o_id) prefix
    specs[1].join_prefix = true;
    specs[1].join_limit = 100;
    if (multi_shard) {
      const int64_t other = PickOtherShardWarehouse(w, rng);
      auto [r_start, r_end] = PrefixRange({other, d, c});
      specs[2].table = "customer";
      specs[2].start = r_start;
      specs[2].end = r_end;
      specs[2].limit = 1;
      specs[2].route = Value(other);
    }
    auto batch = co_await cn->ScanBatch(&txn, std::move(specs));
    if (!batch.ok()) {
      result.status = batch.status();
      (void)co_await cn->Abort(&txn);
      co_return result;
    }
    if ((*batch)[0].rows.empty()) {
      result.status = Status::NotFound("customer");
      (void)co_await cn->Abort(&txn);
      co_return result;
    }
    // (*batch)[1].joined holds the latest order's lines (possibly empty
    // for a customer who never ordered).
    result.status = Status::OK();
    (void)co_await cn->Abort(&txn);
    co_return result;
  }

  // Serial baseline (scan batching disabled): the customer row, the
  // district row (for the latest order id), and — when multi-shard — a
  // remote warehouse's customer are all independent: one MultiGet replaces
  // two or three serial round trips. Only the order-line scan depends on a
  // result (d_next_o_id) and stays serial.
  std::vector<MultiGetKey> read_set = {{"customer", {w, d, c}, false},
                                       {"district", {w, d}, false}};
  if (multi_shard) {
    // Touch a second shard: the same customer id in a remote warehouse.
    const int64_t other = PickOtherShardWarehouse(w, rng);
    read_set.push_back({"customer", {other, d, c}, false});
  }
  auto rows = co_await cn->MultiGet(&txn, std::move(read_set));
  if (!rows.ok()) {
    result.status = rows.status();
    (void)co_await cn->Abort(&txn);
    co_return result;
  }
  if (!(*rows)[1].has_value()) {
    result.status = Status::NotFound("district");
    (void)co_await cn->Abort(&txn);
    co_return result;
  }
  const int64_t last_o = std::get<int64_t>((*(*rows)[1])[4]) - 1;
  auto [start, end] = PrefixRange({w, d, last_o});
  Value w_route = w;
  auto lines =
      co_await cn->ScanRange(&txn, "order_line", start, end, 100, &w_route);
  if (!lines.ok()) {
    result.status = lines.status();
    (void)co_await cn->Abort(&txn);
    co_return result;
  }
  result.status = Status::OK();
  // Read-only: Abort is just the close that releases the snapshot's pin on
  // the GC horizon (an unclosed handle blocks vacuum cluster-wide forever).
  (void)co_await cn->Abort(&txn);
  co_return result;
}

sim::Task<TxnResult> TpccWorkload::Delivery(CoordinatorNode* cn, Rng* rng) {
  TxnResult result;
  result.kind = "delivery";
  const int64_t w = PickWarehouse(cn, rng);
  const int64_t carrier = rng->UniformRange(1, 10);

  auto txn_or = co_await cn->Begin();
  if (!txn_or.ok()) {
    result.status = txn_or.status();
    co_return result;
  }
  TxnHandle txn = *txn_or;

  if (cn->options().enable_scan_batching) {
    // Batched shape: four fan-outs replace up to ~40 serial round trips.
    //   1. ONE ScanBatch finds the oldest undelivered order of all 10
    //      districts concurrently (limit-1 pushdown: each shard returns one
    //      row per district, not the whole new_order backlog).
    //   2. ONE MultiGet lock-reads every matched order header.
    //   3. ONE ScanBatch fetches all matched orders' lines (limit 20 each).
    //   4. ONE MultiGet lock-reads every matched customer.
    // All writes stay in the buffered batch pipeline as before.
    const Value w_route = Value(w);
    std::vector<ScanSpec> finds(config_.districts_per_warehouse);
    for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      ScanSpec& spec = finds[d - 1];
      auto [start, end] = PrefixRange({w, d});
      spec.table = "new_order";
      spec.start = start;
      spec.end = end;
      spec.limit = 1;
      spec.route = w_route;
    }
    auto found = co_await cn->ScanBatch(&txn, std::move(finds));
    if (!found.ok()) GDB_TXN_FAIL(found.status());

    struct Matched {
      int64_t d, o_id;
      int64_t c_id = 0;
      Row order_row;
      double total = 0;
    };
    std::vector<Matched> matched;
    for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      const ScanResult& res = (*found)[d - 1];
      if (res.rows.empty()) continue;
      matched.push_back({d, std::get<int64_t>(res.rows[0][2])});
    }
    if (matched.empty()) {
      result.status = co_await cn->Commit(&txn);
      co_return result;
    }

    std::vector<MultiGetKey> order_keys;
    order_keys.reserve(matched.size());
    for (const Matched& m : matched) {
      Row no_key = {w, m.d, m.o_id};
      Status s = co_await cn->Delete(&txn, "new_order", no_key);
      if (!s.ok()) GDB_TXN_FAIL(std::move(s));
      order_keys.push_back({"orders", {w, m.d, m.o_id}, true});
    }
    auto orders = co_await cn->MultiGet(&txn, std::move(order_keys));
    if (!orders.ok()) GDB_TXN_FAIL(orders.status());
    std::vector<ScanSpec> line_specs(matched.size());
    for (size_t i = 0; i < matched.size(); ++i) {
      if (!(*orders)[i].has_value()) GDB_TXN_FAIL(Status::NotFound("order"));
      matched[i].order_row = *(*orders)[i];
      std::get<int64_t>(matched[i].order_row[5]) = carrier;
      matched[i].c_id = std::get<int64_t>(matched[i].order_row[3]);
      Status s = co_await cn->Update(&txn, "orders", matched[i].order_row);
      if (!s.ok()) GDB_TXN_FAIL(std::move(s));
      ScanSpec& spec = line_specs[i];
      auto [start, end] = PrefixRange({w, matched[i].d, matched[i].o_id});
      spec.table = "order_line";
      spec.start = start;
      spec.end = end;
      spec.limit = 20;
      spec.route = w_route;
    }
    auto lines = co_await cn->ScanBatch(&txn, std::move(line_specs));
    if (!lines.ok()) GDB_TXN_FAIL(lines.status());
    std::vector<MultiGetKey> customer_keys;
    customer_keys.reserve(matched.size());
    for (size_t i = 0; i < matched.size(); ++i) {
      for (const Row& line : (*lines)[i].rows) {
        matched[i].total += std::get<double>(line[7]);
      }
      customer_keys.push_back(
          {"customer", {w, matched[i].d, matched[i].c_id}, true});
    }
    auto customers = co_await cn->MultiGet(&txn, std::move(customer_keys));
    if (!customers.ok()) GDB_TXN_FAIL(customers.status());
    for (size_t i = 0; i < matched.size(); ++i) {
      if (!(*customers)[i].has_value()) {
        GDB_TXN_FAIL(Status::NotFound("customer"));
      }
      Row customer_row = *(*customers)[i];
      std::get<double>(customer_row[4]) += matched[i].total;
      Status s = co_await cn->Update(&txn, "customer", customer_row);
      if (!s.ok()) GDB_TXN_FAIL(std::move(s));
    }
    result.status = co_await cn->Commit(&txn);
    co_return result;
  }

  // Serial baseline (scan batching disabled): one district at a time, four
  // dependent round trips each.
  for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    // Oldest undelivered order in this district.
    auto [start, end] = PrefixRange({w, d});
    Value w_route = w;
    auto pending =
        co_await cn->ScanRange(&txn, "new_order", start, end, 1, &w_route);
    if (!pending.ok()) GDB_TXN_FAIL(pending.status());
    if (pending->empty()) continue;
    const int64_t o_id = std::get<int64_t>((*pending)[0][2]);

    Row no_key = {w, d, o_id};
    Status s = co_await cn->Delete(&txn, "new_order", no_key);
    if (!s.ok()) GDB_TXN_FAIL(std::move(s));

    Row o_key = {w, d, o_id};
    auto order = co_await cn->GetForUpdate(&txn, "orders", o_key);
    if (!order.ok() || !order->has_value()) {
      GDB_TXN_FAIL(!order.ok() ? order.status()
                                          : Status::NotFound("order"));
    }
    Row order_row = **order;
    std::get<int64_t>(order_row[5]) = carrier;
    s = co_await cn->Update(&txn, "orders", order_row);
    if (!s.ok()) GDB_TXN_FAIL(std::move(s));

    auto [ol_start, ol_end] = PrefixRange({w, d, o_id});
    auto lines = co_await cn->ScanRange(&txn, "order_line", ol_start, ol_end,
                                        20, &w_route);
    if (!lines.ok()) GDB_TXN_FAIL(lines.status());
    double total = 0;
    for (const Row& line : *lines) total += std::get<double>(line[7]);

    const int64_t c_id = std::get<int64_t>(order_row[3]);
    Row c_key = {w, d, c_id};
    auto customer = co_await cn->GetForUpdate(&txn, "customer", c_key);
    if (!customer.ok() || !customer->has_value()) {
      GDB_TXN_FAIL(!customer.ok() ? customer.status()
                                             : Status::NotFound("customer"));
    }
    Row customer_row = **customer;
    std::get<double>(customer_row[4]) += total;
    s = co_await cn->Update(&txn, "customer", customer_row);
    if (!s.ok()) GDB_TXN_FAIL(std::move(s));
  }

  result.status = co_await cn->Commit(&txn);
  co_return result;
}

sim::Task<TxnResult> TpccWorkload::StockLevel(CoordinatorNode* cn, Rng* rng) {
  TxnResult result;
  result.kind = "stocklevel";
  const int64_t w = PickWarehouse(cn, rng);
  const int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  const int64_t threshold = rng->UniformRange(10, 20);
  const bool multi_shard =
      config_.read_only_mix &&
      rng->Bernoulli(config_.read_only_multi_shard_fraction);

  auto txn_or = co_await cn->Begin(/*read_only=*/true,
                                   /*single_shard=*/!multi_shard);
  if (!txn_or.ok()) {
    result.status = txn_or.status();
    co_return result;
  }
  TxnHandle txn = *txn_or;

  if (cn->options().enable_scan_batching) {
    // ONE round trip collapses the serial shape's three dependent phases
    // (district read -> order-line scan -> stock MultiGet): a reverse
    // limit-400 scan over the district's order lines IS "the lines of the
    // most recent orders" — no district read needed to find d_next_o_id —
    // and the server-side point join into stock fetches each distinct
    // item's stock row on the same shard in the same reply.
    ScanSpec spec;
    auto [start, end] = PrefixRange({w, d});
    spec.table = "order_line";
    spec.start = start;
    spec.end = end;
    spec.limit = 400;
    spec.reverse = true;
    spec.route = Value(w);
    spec.join_table = "stock";
    EncodeKeyPart(Value(w), &spec.join_key_prefix);
    spec.join_key_cols = {4};  // ol_i_id
    std::vector<ScanSpec> specs;
    specs.push_back(std::move(spec));
    auto batch = co_await cn->ScanBatch(&txn, std::move(specs));
    if (!batch.ok()) {
      result.status = batch.status();
      (void)co_await cn->Abort(&txn);
      co_return result;
    }
    int64_t low = 0;
    for (const Row& stock : (*batch)[0].joined) {
      if (std::get<int64_t>(stock[2]) < threshold) ++low;
    }
    if (multi_shard) {
      // Touch a second shard: re-check up to 10 of the items against a
      // remote supply warehouse's stock, as the serial shape does.
      std::vector<int64_t> items;
      for (const Row& line : (*batch)[0].rows) {
        items.push_back(std::get<int64_t>(line[4]));
      }
      std::sort(items.begin(), items.end());
      items.erase(std::unique(items.begin(), items.end()), items.end());
      if (items.size() > 10) items.resize(10);
      std::vector<MultiGetKey> stock_keys;
      stock_keys.reserve(items.size());
      for (int64_t i_id : items) {
        stock_keys.push_back(
            {"stock", {PickOtherShardWarehouse(w, rng), i_id}, false});
      }
      auto stocks = co_await cn->MultiGet(&txn, std::move(stock_keys));
      if (!stocks.ok()) {
        result.status = stocks.status();
        (void)co_await cn->Abort(&txn);
        co_return result;
      }
      for (const std::optional<Row>& stock : *stocks) {
        if (stock.has_value() &&
            std::get<int64_t>((*stock)[2]) < threshold) {
          ++low;
        }
      }
    }
    (void)low;
    result.status = Status::OK();
    (void)co_await cn->Abort(&txn);
    co_return result;
  }

  // Serial baseline (scan batching disabled): three dependent phases.
  Row d_key = {w, d};
  auto district = co_await cn->Get(&txn, "district", d_key);
  if (!district.ok() || !district->has_value()) {
    result.status = Status::NotFound("district");
    (void)co_await cn->Abort(&txn);
    co_return result;
  }
  const int64_t next_o = std::get<int64_t>((**district)[4]);

  // Lines of the last (up to) 20 orders.
  RowKey start, end;
  {
    auto range_start = PrefixRange({w, d, std::max<int64_t>(1, next_o - 20)});
    auto range_end = PrefixRange({w, d, next_o});
    start = range_start.first;
    end = range_end.first;
  }
  Value w_route = w;
  auto lines =
      co_await cn->ScanRange(&txn, "order_line", start, end, 400, &w_route);
  if (!lines.ok()) {
    result.status = lines.status();
    (void)co_await cn->Abort(&txn);
    co_return result;
  }
  // Distinct items with low stock. When multi_shard, look up the stock in
  // the line's supply warehouse (which may live on another shard).
  std::vector<int64_t> items;
  for (const Row& line : *lines) {
    items.push_back(std::get<int64_t>(line[4]));
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  if (items.size() > 10) items.resize(10);
  // One batched fan-out over every distinct item's stock row (spanning
  // shards when multi_shard picks remote supply warehouses) instead of up
  // to 10 serial point reads.
  std::vector<MultiGetKey> stock_keys;
  stock_keys.reserve(items.size());
  for (int64_t i_id : items) {
    int64_t stock_w = w;
    if (multi_shard && rng->Bernoulli(0.5)) {
      stock_w = PickOtherShardWarehouse(w, rng);
    }
    stock_keys.push_back({"stock", {stock_w, i_id}, false});
  }
  auto stocks = co_await cn->MultiGet(&txn, std::move(stock_keys));
  if (!stocks.ok()) {
    result.status = stocks.status();
    (void)co_await cn->Abort(&txn);
    co_return result;
  }
  int64_t low = 0;
  for (const std::optional<Row>& stock : *stocks) {
    if (stock.has_value() && std::get<int64_t>((*stock)[2]) < threshold) {
      ++low;
    }
  }
  (void)low;
  result.status = Status::OK();
  // Read-only close: releases the snapshot's pin on the GC horizon.
  (void)co_await cn->Abort(&txn);
  co_return result;
}

}  // namespace globaldb
