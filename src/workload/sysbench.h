#ifndef GLOBALDB_SRC_WORKLOAD_SYSBENCH_H_
#define GLOBALDB_SRC_WORKLOAD_SYSBENCH_H_

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/workload/driver.h"

namespace globaldb {

/// Sysbench-style workload (Section V: 250 tables x 25000 rows, 600
/// threads; scaled down by default).
struct SysbenchConfig {
  int num_tables = 10;     // full scale: 250
  int rows_per_table = 1000;  // full scale: 25000
  /// Fraction of point selects that target a tuple whose primary is remote
  /// from the client's CN (the paper's Point Select run fetches 2/3 of
  /// tuples from a remote node).
  double remote_fraction = 2.0 / 3.0;
  /// For the read-write mix: selects and updates per transaction.
  int point_selects_per_txn = 10;
  int updates_per_txn = 4;
  /// For the range-select transaction: ranges per transaction and rows per
  /// range (sysbench oltp simple ranges).
  int ranges_per_txn = 4;
  int range_size = 100;
};

class SysbenchWorkload {
 public:
  SysbenchWorkload(Cluster* cluster, SysbenchConfig config,
                   uint64_t seed = 4242);

  /// Creates and bulk-loads the sbtest tables.
  Status Setup();

  /// Single point select per transaction (read-only).
  TxnFn PointSelectFn();
  /// Classic oltp_read_write transaction.
  TxnFn ReadWriteFn();
  /// Read-only range queries: ranges_per_txn scans of range_size rows each.
  /// The sbtest tables are hash-distributed by id, so every range spans all
  /// shards — with scan batching the CN fans the whole set out in one round
  /// trip and k-way-merges the per-shard cursors; the ablation baseline
  /// (enable_scan_batching=false) runs one broadcast scan per range.
  TxnFn RangeSelectFn();

  sim::Task<TxnResult> PointSelect(CoordinatorNode* cn, Rng* rng);
  sim::Task<TxnResult> ReadWrite(CoordinatorNode* cn, Rng* rng);
  sim::Task<TxnResult> RangeSelect(CoordinatorNode* cn, Rng* rng);

 private:
  std::string TableName(int i) const {
    return "sbtest" + std::to_string(i + 1);
  }
  /// Picks a row id honoring the remote fraction relative to `cn`.
  int64_t PickRowId(CoordinatorNode* cn, Rng* rng) const;
  bool RowIsLocal(CoordinatorNode* cn, int64_t id) const;

  Cluster* cluster_;
  SysbenchConfig config_;
  Rng rng_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_WORKLOAD_SYSBENCH_H_
