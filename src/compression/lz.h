#ifndef GLOBALDB_SRC_COMPRESSION_LZ_H_
#define GLOBALDB_SRC_COMPRESSION_LZ_H_

#include <string>

#include "src/common/slice.h"
#include "src/common/status.h"

namespace globaldb {

/// LZ4-style byte-oriented LZ77 block compression used by the redo log
/// shipper (the paper compresses shipped Redo logs with LZ4, Section V-A).
///
/// Format (our own framing, not interoperable with upstream LZ4):
///   varint64 uncompressed_size
///   sequence*:
///     token byte: high nibble = literal length (15 => extended varint),
///                 low nibble  = match length - kMinMatch (15 => extended)
///     literal bytes
///     [fixed16 match offset][extended match length] -- omitted when the
///     literals exhaust the output (final sequence)
///
/// Matches are found with a 64K-entry hash table over 4-byte windows; worst
/// case output is input size + size/255 + 16 bytes.
class LzCodec {
 public:
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kMaxOffset = 65535;

  /// Compresses `input` and appends to `*output` (which is cleared first).
  static void Compress(Slice input, std::string* output);

  /// Decompresses a block produced by Compress. Fails with Corruption on
  /// malformed input.
  static Status Decompress(Slice input, std::string* output);

  /// Convenience: compressed size for instrumentation.
  static size_t CompressedSize(Slice input) {
    std::string out;
    Compress(input, &out);
    return out.size();
  }
};

/// Wire compression modes used by the replication log shipper.
enum class CompressionType : uint8_t { kNone = 0, kLz = 1 };

}  // namespace globaldb

#endif  // GLOBALDB_SRC_COMPRESSION_LZ_H_
