#include "src/compression/lz.h"

#include <cstring>
#include <vector>

#include "src/common/codec.h"

namespace globaldb {

namespace {

constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = 1 << kHashBits;

inline uint32_t Read32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

inline uint32_t HashWindow(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Emits one sequence: literals [lit_begin, lit_end) then a match of
// match_len at match_offset. match_len == 0 means final literal-only run.
void EmitSequence(const char* lit_begin, size_t lit_len, size_t match_offset,
                  size_t match_len, std::string* out) {
  const size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  size_t match_code = 0;
  if (match_len > 0) {
    match_code = match_len - LzCodec::kMinMatch;
  }
  const size_t match_nibble = match_code < 15 ? match_code : 15;
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutVarint64(out, lit_len - 15);
  out->append(lit_begin, lit_len);
  if (match_len > 0) {
    PutFixed16(out, static_cast<uint16_t>(match_offset));
    if (match_nibble == 15) PutVarint64(out, match_code - 15);
  }
}

}  // namespace

void LzCodec::Compress(Slice input, std::string* output) {
  output->clear();
  PutVarint64(output, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  if (n < kMinMatch + 1) {
    if (n > 0) EmitSequence(base, n, 0, 0, output);
    return;
  }

  std::vector<uint32_t> table(kHashSize, 0);  // position + 1; 0 = empty
  size_t pos = 0;
  size_t lit_start = 0;
  // Stop matching near the end; tail is emitted as literals.
  const size_t match_limit = n - kMinMatch;

  while (pos <= match_limit) {
    const uint32_t window = Read32(base + pos);
    const uint32_t h = HashWindow(window);
    const uint32_t candidate_plus1 = table[h];
    table[h] = static_cast<uint32_t>(pos + 1);

    bool matched = false;
    if (candidate_plus1 != 0) {
      const size_t candidate = candidate_plus1 - 1;
      const size_t offset = pos - candidate;
      if (offset > 0 && offset <= kMaxOffset &&
          Read32(base + candidate) == window) {
        // Extend the match.
        size_t len = kMinMatch;
        while (pos + len < n && base[candidate + len] == base[pos + len]) {
          ++len;
        }
        EmitSequence(base + lit_start, pos - lit_start, offset, len, output);
        pos += len;
        lit_start = pos;
        matched = true;
      }
    }
    if (!matched) ++pos;
  }
  if (lit_start < n) {
    EmitSequence(base + lit_start, n - lit_start, 0, 0, output);
  }
}

Status LzCodec::Decompress(Slice input, std::string* output) {
  output->clear();
  uint64_t expected = 0;
  if (!GetVarint64(&input, &expected)) {
    return Status::Corruption("lz: missing size header");
  }
  output->reserve(expected);

  while (output->size() < expected) {
    if (input.empty()) return Status::Corruption("lz: truncated block");
    const uint8_t token = static_cast<uint8_t>(input[0]);
    input.RemovePrefix(1);

    // Literals.
    uint64_t lit_len = token >> 4;
    if (lit_len == 15) {
      uint64_t extra = 0;
      if (!GetVarint64(&input, &extra)) {
        return Status::Corruption("lz: bad literal length");
      }
      lit_len += extra;
    }
    if (input.size() < lit_len) {
      return Status::Corruption("lz: literal overrun");
    }
    output->append(input.data(), lit_len);
    input.RemovePrefix(lit_len);
    if (output->size() > expected) {
      return Status::Corruption("lz: output overflow");
    }
    if (output->size() == expected) break;  // final literal-only sequence

    // Match.
    uint16_t offset = 0;
    if (!GetFixed16(&input, &offset)) {
      return Status::Corruption("lz: missing match offset");
    }
    uint64_t match_code = token & 0x0f;
    if (match_code == 15) {
      uint64_t extra = 0;
      if (!GetVarint64(&input, &extra)) {
        return Status::Corruption("lz: bad match length");
      }
      match_code += extra;
    }
    const uint64_t match_len = match_code + kMinMatch;
    if (offset == 0 || offset > output->size()) {
      return Status::Corruption("lz: invalid match offset");
    }
    if (output->size() + match_len > expected) {
      return Status::Corruption("lz: match overflow");
    }
    // Byte-by-byte copy: matches may overlap their own output (RLE case).
    size_t src = output->size() - offset;
    for (uint64_t i = 0; i < match_len; ++i) {
      output->push_back((*output)[src + i]);
    }
  }
  if (output->size() != expected) {
    return Status::Corruption("lz: size mismatch");
  }
  return Status::OK();
}

}  // namespace globaldb
