#include "src/common/rng.h"

#include <cmath>

namespace globaldb {

double Rng::Exponential(double mean) {
  // Inverse transform sampling; guard against log(0).
  double u = NextDouble();
  if (u <= 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

std::string Rng::AlphaString(int min_len, int max_len) {
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const int len = static_cast<int>(UniformRange(min_len, max_len));
  std::string s;
  s.reserve(len);
  for (int i = 0; i < len; ++i) {
    s.push_back(kChars[Uniform(sizeof(kChars) - 1)]);
  }
  return s;
}

std::string Rng::NumericString(int len) {
  std::string s;
  s.reserve(len);
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('0' + Uniform(10)));
  }
  return s;
}

}  // namespace globaldb
