#ifndef GLOBALDB_SRC_COMMON_RNG_H_
#define GLOBALDB_SRC_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <string>

namespace globaldb {

/// Deterministic splitmix64 / xoshiro256** random generator.
///
/// Every source of randomness in the simulator is derived from one seed so
/// that test and benchmark runs are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    // splitmix64 to spread the seed across the state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return (Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (for inter-arrival
  /// and service-time jitter).
  double Exponential(double mean);

  /// TPC-C NURand non-uniform random (clause 2.1.6).
  int64_t NuRand(int64_t a, int64_t x, int64_t y, int64_t c) {
    return (((UniformRange(0, a) | UniformRange(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Random alphanumeric string of length in [min_len, max_len].
  std::string AlphaString(int min_len, int max_len);
  /// Random numeric string of exactly len digits.
  std::string NumericString(int len);

  /// Fork a child generator with an independent stream (for per-node RNGs).
  Rng Fork() { return Rng(Next() ^ 0xdeadbeefcafef00dULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_COMMON_RNG_H_
