#include "src/common/codec.h"

namespace globaldb {

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed16(Slice* input, uint16_t* value) {
  if (input->size() < 2) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  *value = static_cast<uint16_t>(p[0] | (p[1] << 8));
  input->RemovePrefix(2);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  *value = v;
  input->RemovePrefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  *value = v;
  input->RemovePrefix(8);
  return true;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v)) return false;
  if (v > 0xffffffffULL) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = Slice(input->data(), len);
  input->RemovePrefix(len);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

void PutVarsint64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

bool GetVarsint64(Slice* input, int64_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v)) return false;
  *value = ZigZagDecode(v);
  return true;
}

}  // namespace globaldb
