#ifndef GLOBALDB_SRC_COMMON_STATUS_H_
#define GLOBALDB_SRC_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace globaldb {

/// Error codes used across all GlobalDB modules. Modeled after the RocksDB /
/// Abseil status idiom: functions that can fail return a Status (or StatusOr)
/// instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kCorruption,
  kAborted,          // transaction aborted (e.g. write conflict, mode switch)
  kUnavailable,      // node down / partitioned / retriable
  kTimedOut,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name, e.g. "NotFound".
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// The OK status carries no allocation. Statuses are copyable and movable and
/// are intended to be returned by value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg = "") {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // message is informational only
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace globaldb

/// Propagates a non-OK Status to the caller; evaluates expr exactly once.
#define GDB_RETURN_IF_ERROR(expr)                      \
  do {                                                 \
    ::globaldb::Status _gdb_status = (expr);           \
    if (!_gdb_status.ok()) return _gdb_status;         \
  } while (0)

/// Coroutine variant of GDB_RETURN_IF_ERROR (plain `return` is illegal in a
/// coroutine body).
#define GDB_CO_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::globaldb::Status _gdb_status = (expr);           \
    if (!_gdb_status.ok()) co_return _gdb_status;      \
  } while (0)

#endif  // GLOBALDB_SRC_COMMON_STATUS_H_
