#include "src/common/status.h"

namespace globaldb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeName(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace globaldb
