#ifndef GLOBALDB_SRC_COMMON_TYPES_H_
#define GLOBALDB_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace globaldb {

/// Simulated time in nanoseconds since simulation start.
using SimTime = int64_t;
/// Duration in simulated nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Commit / snapshot timestamp. GTM mode issues small consecutive integers;
/// GClock mode issues simulated-epoch nanoseconds; DUAL mode issues
/// max(GTM, GClock upper bound) + 1. All three share one total order.
using Timestamp = uint64_t;
constexpr Timestamp kInvalidTimestamp = 0;
constexpr Timestamp kTimestampMax = std::numeric_limits<Timestamp>::max();

/// Transaction identifier, unique per cluster run.
using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;

/// Log sequence number within one shard's redo stream.
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

/// Identifies a node (CN, DN primary, DN replica, or GTM server).
using NodeId = uint32_t;
constexpr NodeId kInvalidNodeId = std::numeric_limits<NodeId>::max();

/// Identifies a geographic region (city / data center).
using RegionId = uint32_t;

/// Identifies a logical data shard. Each shard has one primary DN and
/// zero or more replica DNs.
using ShardId = uint32_t;
constexpr ShardId kInvalidShardId = std::numeric_limits<ShardId>::max();

/// Identifies a table in the catalog.
using TableId = uint32_t;
constexpr TableId kInvalidTableId = 0;

/// Row key within a table (already reduced to a canonical binary form).
using RowKey = std::string;

/// Timestamp generation mode of a node or of the whole cluster
/// (Section III-A of the paper).
enum class TimestampMode {
  kGtm = 0,    // centralized Global Transaction Manager counter
  kDual = 1,   // bridge mode: max(TS_GTM, TS_GClock) + 1
  kGclock = 2,  // decentralized synchronized-clock timestamps
  kEpoch = 3   // epoch/group commit: GTM counter timestamps, one grant and
               // one grouped phase-2 per sealed epoch (DESIGN.md §15)
};

/// Returns "GTM" / "DUAL" / "GCLOCK" / "EPOCH".
inline const char* TimestampModeName(TimestampMode mode) {
  switch (mode) {
    case TimestampMode::kGtm:
      return "GTM";
    case TimestampMode::kDual:
      return "DUAL";
    case TimestampMode::kGclock:
      return "GCLOCK";
    case TimestampMode::kEpoch:
      return "EPOCH";
  }
  return "?";
}

/// Replication mode for a shard's redo stream (Section II-B).
enum class ReplicationMode {
  kAsync = 0,       // GlobalDB: ship logs without waiting
  kSyncQuorum = 1,  // baseline: wait for a quorum (may include remote)
  kSyncAll = 2      // wait for every replica
};

inline const char* ReplicationModeName(ReplicationMode mode) {
  switch (mode) {
    case ReplicationMode::kAsync:
      return "ASYNC";
    case ReplicationMode::kSyncQuorum:
      return "SYNC_QUORUM";
    case ReplicationMode::kSyncAll:
      return "SYNC_ALL";
  }
  return "?";
}

}  // namespace globaldb

#endif  // GLOBALDB_SRC_COMMON_TYPES_H_
