#include "src/common/logging.h"

namespace globaldb {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string s = stream_.str();
  s.push_back('\n');
  fwrite(s.data(), 1, s.size(), stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::string s = stream_.str();
  s.push_back('\n');
  fwrite(s.data(), 1, s.size(), stderr);
  fflush(stderr);
  abort();
}

}  // namespace internal_logging
}  // namespace globaldb
