#ifndef GLOBALDB_SRC_COMMON_CODEC_H_
#define GLOBALDB_SRC_COMMON_CODEC_H_

#include <cstdint>
#include <string>

#include "src/common/slice.h"
#include "src/common/status.h"

namespace globaldb {

/// Little-endian fixed and LEB128-style varint encoding primitives used by
/// the redo log format and tuple serialization. Appending functions grow the
/// destination string; Get* functions consume from a Slice in place and
/// return false on underflow / malformed input.

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Varint length prefix followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, Slice value);

bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixed(Slice* input, Slice* value);

/// Number of bytes PutVarint64 would emit.
int VarintLength(uint64_t value);

/// ZigZag transform so small negative numbers encode compactly as varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutVarsint64(std::string* dst, int64_t value);
bool GetVarsint64(Slice* input, int64_t* value);

}  // namespace globaldb

#endif  // GLOBALDB_SRC_COMMON_CODEC_H_
