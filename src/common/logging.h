#ifndef GLOBALDB_SRC_COMMON_LOGGING_H_
#define GLOBALDB_SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace globaldb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Defaults to kWarn
/// so tests and benches stay quiet; examples raise it to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows a stream expression inside a ternary; operator& binds looser
/// than operator<< so the whole chain is evaluated first (glog idiom).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace globaldb

#define GDB_LOG(level)                                                    \
  (::globaldb::GetLogLevel() > ::globaldb::LogLevel::k##level)            \
      ? (void)0                                                           \
      : ::globaldb::internal_logging::Voidify() &                         \
            ::globaldb::internal_logging::LogMessage(                     \
                ::globaldb::LogLevel::k##level, __FILE__, __LINE__)       \
                .stream()

/// Invariant check that stays on in release builds. Database engines keep
/// these enabled: a broken invariant must never silently corrupt data.
#define GDB_CHECK(cond)                                                   \
  (cond) ? (void)0                                                        \
         : ::globaldb::internal_logging::Voidify() &                      \
               ::globaldb::internal_logging::FatalLogMessage(__FILE__,    \
                                                             __LINE__)    \
                   .stream()                                              \
               << "Check failed: " #cond " "

#define GDB_DCHECK(cond) GDB_CHECK(cond)

#endif  // GLOBALDB_SRC_COMMON_LOGGING_H_
