#ifndef GLOBALDB_SRC_COMMON_SLICE_H_
#define GLOBALDB_SRC_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace globaldb {

/// A non-owning view of a byte range, interchangeable with std::string_view
/// but named to match database-engine convention. Used for keys, values, and
/// encoded log payloads.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(strlen(s)) {}               // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drops the first n bytes (n must be <= size()).
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToView() const { return std::string_view(data_, size_); }

  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = 1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.Compare(b) < 0;
}

}  // namespace globaldb

#endif  // GLOBALDB_SRC_COMMON_SLICE_H_
