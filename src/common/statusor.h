#ifndef GLOBALDB_SRC_COMMON_STATUSOR_H_
#define GLOBALDB_SRC_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace globaldb {

/// Holds either a value of type T or a non-OK Status.
///
/// Usage:
///   StatusOr<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  /// Constructs from a value.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace globaldb

/// Assigns the value of a StatusOr expression to `lhs`, or returns its status.
#define GDB_ASSIGN_OR_RETURN(lhs, expr)                \
  GDB_ASSIGN_OR_RETURN_IMPL_(                          \
      GDB_STATUS_CONCAT_(_gdb_statusor, __LINE__), lhs, expr)
#define GDB_STATUS_CONCAT_INNER_(a, b) a##b
#define GDB_STATUS_CONCAT_(a, b) GDB_STATUS_CONCAT_INNER_(a, b)
#define GDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)     \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // GLOBALDB_SRC_COMMON_STATUSOR_H_
