#ifndef GLOBALDB_SRC_COMMON_HASH_H_
#define GLOBALDB_SRC_COMMON_HASH_H_

#include <cstdint>

#include "src/common/slice.h"

namespace globaldb {

/// 64-bit MurmurHash2-style hash used for shard routing and hash indexes.
/// Stable across runs and platforms (we rely on it for deterministic
/// data placement in tests).
uint64_t Hash64(const char* data, size_t len, uint64_t seed = 0x6a09e667f3bcc909ULL);

inline uint64_t Hash64(Slice s, uint64_t seed = 0x6a09e667f3bcc909ULL) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace globaldb

#endif  // GLOBALDB_SRC_COMMON_HASH_H_
