#ifndef GLOBALDB_SRC_COMMON_METRICS_H_
#define GLOBALDB_SRC_COMMON_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace globaldb {

/// A streaming histogram with fixed percentile queries, used to record
/// transaction latencies and replication lag in simulated nanoseconds.
class Histogram {
 public:
  Histogram() = default;

  void Record(int64_t value) {
    values_.push_back(value);
    sum_ += value;
    min_ = values_.size() == 1 ? value : std::min(min_, value);
    max_ = values_.size() == 1 ? value : std::max(max_, value);
    sorted_ = false;
  }

  size_t count() const { return values_.size(); }
  int64_t min() const { return values_.empty() ? 0 : min_; }
  int64_t max() const { return values_.empty() ? 0 : max_; }
  double mean() const {
    return values_.empty() ? 0.0 : static_cast<double>(sum_) / values_.size();
  }

  /// Percentile in [0, 100]. Returns 0 for an empty histogram.
  int64_t Percentile(double p) {
    if (values_.empty()) return 0;
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
    double rank = p / 100.0 * (values_.size() - 1);
    size_t idx = static_cast<size_t>(rank);
    return values_[std::min(idx, values_.size() - 1)];
  }

  /// Raw samples in insertion order until the first Percentile() call
  /// (which sorts in place).
  const std::vector<int64_t>& values() const { return values_; }

  void Clear() {
    values_.clear();
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    sorted_ = false;
  }

 private:
  std::vector<int64_t> values_;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  bool sorted_ = false;
};

/// A named bag of counters and histograms. Each node and each workload
/// driver owns one; bench harnesses aggregate them into report rows.
class Metrics {
 public:
  void Add(const std::string& name, int64_t delta = 1) {
    counters_[name] += delta;
  }
  int64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  Histogram& Hist(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  std::map<std::string, Histogram>& histograms() { return histograms_; }

  void Clear() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_COMMON_METRICS_H_
