#ifndef GLOBALDB_SRC_CLUSTER_MESSAGES_H_
#define GLOBALDB_SRC_CLUSTER_MESSAGES_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/codec.h"
#include "src/common/statusor.h"
#include "src/common/types.h"

namespace globaldb {

// RPC methods served by primary data nodes.
inline constexpr char kDnReadMethod[] = "dn.read";
inline constexpr char kDnLockReadMethod[] = "dn.lock_read";
inline constexpr char kDnScanMethod[] = "dn.scan";
inline constexpr char kDnWriteMethod[] = "dn.write";
inline constexpr char kDnPrecommitMethod[] = "dn.precommit";
inline constexpr char kDnCommitMethod[] = "dn.commit";
inline constexpr char kDnAbortMethod[] = "dn.abort";
inline constexpr char kDnDdlMethod[] = "dn.ddl";
inline constexpr char kDnHeartbeatMethod[] = "dn.heartbeat";

// RPC methods served by replica data nodes (read-on-replica).
inline constexpr char kRorReadMethod[] = "ror.read";
inline constexpr char kRorScanMethod[] = "ror.scan";
inline constexpr char kRorStatusMethod[] = "ror.status";

// RPC methods served by coordinator nodes.
inline constexpr char kCnRcpUpdateMethod[] = "cn.rcp_update";
inline constexpr char kCnDdlApplyMethod[] = "cn.ddl_apply";

/// Status serialization shared by all reply envelopes:
/// [u8 code][lenprefixed message].
inline void EncodeStatus(const Status& status, std::string* dst) {
  dst->push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(dst, status.message());
}

inline bool DecodeStatus(Slice* in, Status* out) {
  if (in->empty()) return false;
  const auto code = static_cast<StatusCode>((*in)[0]);
  in->RemovePrefix(1);
  Slice message;
  if (!GetLengthPrefixed(in, &message)) return false;
  *out = Status(code, message.ToString());
  return true;
}

/// Point read request (primary or replica).
struct ReadRequest {
  TableId table = kInvalidTableId;
  RowKey key;
  Timestamp snapshot = 0;
  TxnId txn = kInvalidTxnId;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, table);
    PutLengthPrefixed(&s, key);
    PutVarint64(&s, snapshot);
    PutVarint64(&s, txn);
    return s;
  }
  static StatusOr<ReadRequest> Decode(Slice in) {
    ReadRequest r;
    Slice key;
    if (!GetVarint32(&in, &r.table) || !GetLengthPrefixed(&in, &key) ||
        !GetVarint64(&in, &r.snapshot) || !GetVarint64(&in, &r.txn)) {
      return Status::Corruption("read req");
    }
    r.key = key.ToString();
    return r;
  }
};

/// Reply: status, found flag, value.
struct ReadReply {
  Status status;
  bool found = false;
  std::string value;

  std::string Encode() const {
    std::string s;
    EncodeStatus(status, &s);
    s.push_back(found ? 1 : 0);
    PutLengthPrefixed(&s, value);
    return s;
  }
  static StatusOr<ReadReply> Decode(Slice in) {
    ReadReply r;
    Slice value;
    if (!DecodeStatus(&in, &r.status) || in.empty()) {
      return Status::Corruption("read reply");
    }
    r.found = in[0] != 0;
    in.RemovePrefix(1);
    if (!GetLengthPrefixed(&in, &value)) {
      return Status::Corruption("read reply value");
    }
    r.value = value.ToString();
    return r;
  }
};

/// Ordered range scan over [start, end); empty end = unbounded.
struct ScanRequest {
  TableId table = kInvalidTableId;
  RowKey start, end;
  Timestamp snapshot = 0;
  TxnId txn = kInvalidTxnId;
  uint32_t limit = 0xffffffff;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, table);
    PutLengthPrefixed(&s, start);
    PutLengthPrefixed(&s, end);
    PutVarint64(&s, snapshot);
    PutVarint64(&s, txn);
    PutVarint32(&s, limit);
    return s;
  }
  static StatusOr<ScanRequest> Decode(Slice in) {
    ScanRequest r;
    Slice start, end;
    if (!GetVarint32(&in, &r.table) || !GetLengthPrefixed(&in, &start) ||
        !GetLengthPrefixed(&in, &end) || !GetVarint64(&in, &r.snapshot) ||
        !GetVarint64(&in, &r.txn) || !GetVarint32(&in, &r.limit)) {
      return Status::Corruption("scan req");
    }
    r.start = start.ToString();
    r.end = end.ToString();
    return r;
  }
};

struct ScanReply {
  Status status;
  std::vector<std::pair<RowKey, std::string>> rows;

  std::string Encode() const {
    std::string s;
    EncodeStatus(status, &s);
    PutVarint32(&s, static_cast<uint32_t>(rows.size()));
    for (const auto& [key, value] : rows) {
      PutLengthPrefixed(&s, key);
      PutLengthPrefixed(&s, value);
    }
    return s;
  }
  static StatusOr<ScanReply> Decode(Slice in) {
    ScanReply r;
    uint32_t n = 0;
    if (!DecodeStatus(&in, &r.status) || !GetVarint32(&in, &n)) {
      return Status::Corruption("scan reply");
    }
    r.rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Slice key, value;
      if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value)) {
        return Status::Corruption("scan reply row");
      }
      r.rows.emplace_back(key.ToString(), value.ToString());
    }
    return r;
  }
};

/// Write (insert / update / delete) executed on the primary under a lock.
struct WriteRequest {
  enum class Op : uint8_t { kInsert = 1, kUpdate = 2, kDelete = 3 };
  Op op = Op::kInsert;
  TxnId txn = kInvalidTxnId;
  Timestamp snapshot = 0;
  TableId table = kInvalidTableId;
  RowKey key;
  std::string value;

  std::string Encode() const {
    std::string s;
    s.push_back(static_cast<char>(op));
    PutVarint64(&s, txn);
    PutVarint64(&s, snapshot);
    PutVarint32(&s, table);
    PutLengthPrefixed(&s, key);
    PutLengthPrefixed(&s, value);
    return s;
  }
  static StatusOr<WriteRequest> Decode(Slice in) {
    WriteRequest r;
    if (in.empty()) return Status::Corruption("write req");
    r.op = static_cast<Op>(in[0]);
    in.RemovePrefix(1);
    Slice key, value;
    if (!GetVarint64(&in, &r.txn) || !GetVarint64(&in, &r.snapshot) ||
        !GetVarint32(&in, &r.table) || !GetLengthPrefixed(&in, &key) ||
        !GetLengthPrefixed(&in, &value)) {
      return Status::Corruption("write req fields");
    }
    r.key = key.ToString();
    r.value = value.ToString();
    return r;
  }
};

/// Generic status-only reply.
struct StatusReply {
  Status status;

  std::string Encode() const {
    std::string s;
    EncodeStatus(status, &s);
    return s;
  }
  static StatusOr<StatusReply> Decode(Slice in) {
    StatusReply r;
    if (!DecodeStatus(&in, &r.status)) {
      return Status::Corruption("status reply");
    }
    return r;
  }
};

/// Pre-commit (PENDING_COMMIT for one-shard commits, PREPARE for 2PC),
/// commit (COMMIT / COMMIT_PREPARED at `ts`), and abort.
struct TxnControlRequest {
  TxnId txn = kInvalidTxnId;
  Timestamp ts = 0;
  bool two_phase = false;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, txn);
    PutVarint64(&s, ts);
    s.push_back(two_phase ? 1 : 0);
    return s;
  }
  static StatusOr<TxnControlRequest> Decode(Slice in) {
    TxnControlRequest r;
    if (!GetVarint64(&in, &r.txn) || !GetVarint64(&in, &r.ts) || in.empty()) {
      return Status::Corruption("txn control req");
    }
    r.two_phase = in[0] != 0;
    return r;
  }
};

/// DDL applied on a primary DN (appends a DDL redo record) or broadcast to
/// peer CNs.
struct DdlRequest {
  Timestamp ts = 0;
  std::string payload;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, ts);
    PutLengthPrefixed(&s, payload);
    return s;
  }
  static StatusOr<DdlRequest> Decode(Slice in) {
    DdlRequest r;
    Slice payload;
    if (!GetVarint64(&in, &r.ts) || !GetLengthPrefixed(&in, &payload)) {
      return Status::Corruption("ddl req");
    }
    r.payload = payload.ToString();
    return r;
  }
};

/// Replica status snapshot for RCP calculation and skyline selection.
struct RorStatusReply {
  Timestamp max_commit_ts = 0;
  Lsn applied_lsn = 0;
  SimDuration queue_delay = 0;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, max_commit_ts);
    PutVarint64(&s, applied_lsn);
    PutVarint64(&s, static_cast<uint64_t>(queue_delay));
    return s;
  }
  static StatusOr<RorStatusReply> Decode(Slice in) {
    RorStatusReply r;
    uint64_t qd = 0;
    if (!GetVarint64(&in, &r.max_commit_ts) ||
        !GetVarint64(&in, &r.applied_lsn) || !GetVarint64(&in, &qd)) {
      return Status::Corruption("ror status");
    }
    r.queue_delay = static_cast<SimDuration>(qd);
    return r;
  }
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_MESSAGES_H_
