#ifndef GLOBALDB_SRC_CLUSTER_MESSAGES_H_
#define GLOBALDB_SRC_CLUSTER_MESSAGES_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/codec.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_method.h"

namespace globaldb {

/// Point read request (primary or replica).
struct ReadRequest {
  TableId table = kInvalidTableId;
  RowKey key;
  Timestamp snapshot = 0;
  TxnId txn = kInvalidTxnId;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, table);
    PutLengthPrefixed(&s, key);
    PutVarint64(&s, snapshot);
    PutVarint64(&s, txn);
    return s;
  }
  static StatusOr<ReadRequest> Decode(Slice in) {
    ReadRequest r;
    Slice key;
    if (!GetVarint32(&in, &r.table) || !GetLengthPrefixed(&in, &key) ||
        !GetVarint64(&in, &r.snapshot) || !GetVarint64(&in, &r.txn)) {
      return Status::Corruption("read req");
    }
    r.key = key.ToString();
    return r;
  }
};

/// Read result; errors travel in the RPC reply envelope, not here.
struct ReadReply {
  bool found = false;
  std::string value;

  std::string Encode() const {
    std::string s;
    s.push_back(found ? 1 : 0);
    PutLengthPrefixed(&s, value);
    return s;
  }
  static StatusOr<ReadReply> Decode(Slice in) {
    ReadReply r;
    Slice value;
    if (in.empty()) return Status::Corruption("read reply");
    r.found = in[0] != 0;
    in.RemovePrefix(1);
    if (!GetLengthPrefixed(&in, &value)) {
      return Status::Corruption("read reply value");
    }
    r.value = value.ToString();
    return r;
  }
};

/// Ordered range scan over [start, end); empty end = unbounded.
struct ScanRequest {
  TableId table = kInvalidTableId;
  RowKey start, end;
  Timestamp snapshot = 0;
  TxnId txn = kInvalidTxnId;
  uint32_t limit = 0xffffffff;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, table);
    PutLengthPrefixed(&s, start);
    PutLengthPrefixed(&s, end);
    PutVarint64(&s, snapshot);
    PutVarint64(&s, txn);
    PutVarint32(&s, limit);
    return s;
  }
  static StatusOr<ScanRequest> Decode(Slice in) {
    ScanRequest r;
    Slice start, end;
    if (!GetVarint32(&in, &r.table) || !GetLengthPrefixed(&in, &start) ||
        !GetLengthPrefixed(&in, &end) || !GetVarint64(&in, &r.snapshot) ||
        !GetVarint64(&in, &r.txn) || !GetVarint32(&in, &r.limit)) {
      return Status::Corruption("scan req");
    }
    r.start = start.ToString();
    r.end = end.ToString();
    return r;
  }
};

struct ScanReply {
  std::vector<std::pair<RowKey, std::string>> rows;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, static_cast<uint32_t>(rows.size()));
    for (const auto& [key, value] : rows) {
      PutLengthPrefixed(&s, key);
      PutLengthPrefixed(&s, value);
    }
    return s;
  }
  static StatusOr<ScanReply> Decode(Slice in) {
    ScanReply r;
    uint32_t n = 0;
    if (!GetVarint32(&in, &n)) {
      return Status::Corruption("scan reply");
    }
    r.rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Slice key, value;
      if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value)) {
        return Status::Corruption("scan reply row");
      }
      r.rows.emplace_back(key.ToString(), value.ToString());
    }
    return r;
  }
};

/// A batch of independent point reads for one shard, resolved under one
/// snapshot (the CN's MultiGet fan-out, DESIGN.md §11). Entries marked
/// `for_update` take the row lock and read the latest committed version
/// (SELECT ... FOR UPDATE); they are only ever routed to the primary.
struct ReadBatchRequest {
  struct Entry {
    TableId table = kInvalidTableId;
    RowKey key;
    bool for_update = false;
  };
  Timestamp snapshot = 0;
  TxnId txn = kInvalidTxnId;
  std::vector<Entry> entries;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, snapshot);
    PutVarint64(&s, txn);
    PutVarint32(&s, static_cast<uint32_t>(entries.size()));
    for (const auto& e : entries) {
      PutVarint32(&s, e.table);
      PutLengthPrefixed(&s, e.key);
      s.push_back(e.for_update ? 1 : 0);
    }
    return s;
  }
  static StatusOr<ReadBatchRequest> Decode(Slice in) {
    ReadBatchRequest r;
    uint32_t n = 0;
    if (!GetVarint64(&in, &r.snapshot) || !GetVarint64(&in, &r.txn) ||
        !GetVarint32(&in, &n)) {
      return Status::Corruption("read batch req");
    }
    r.entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Entry e;
      Slice key;
      if (!GetVarint32(&in, &e.table) || !GetLengthPrefixed(&in, &key) ||
          in.empty()) {
        return Status::Corruption("read batch entry");
      }
      e.key = key.ToString();
      e.for_update = in[0] != 0;
      in.RemovePrefix(1);
      r.entries.push_back(std::move(e));
    }
    return r;
  }
};

/// Per-entry read outcomes, aligned with the request's entries. The RPC
/// envelope stays OK whenever the batch was processed; per-entry failures
/// (e.g. a lock timeout on a for_update entry) travel here so one bad key
/// does not discard the other entries' results.
struct ReadBatchReply {
  struct EntryResult {
    StatusCode code = StatusCode::kOk;
    std::string message;
    bool found = false;
    std::string value;
    Status ToStatus() const {
      return code == StatusCode::kOk ? Status::OK() : Status(code, message);
    }
  };
  std::vector<EntryResult> results;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, static_cast<uint32_t>(results.size()));
    for (const auto& res : results) {
      PutVarint32(&s, static_cast<uint32_t>(res.code));
      PutLengthPrefixed(&s, res.message);
      s.push_back(res.found ? 1 : 0);
      PutLengthPrefixed(&s, res.value);
    }
    return s;
  }
  static StatusOr<ReadBatchReply> Decode(Slice in) {
    ReadBatchReply r;
    uint32_t n = 0;
    if (!GetVarint32(&in, &n)) return Status::Corruption("read batch reply");
    r.results.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      EntryResult res;
      uint32_t code = 0;
      Slice message, value;
      if (!GetVarint32(&in, &code) || !GetLengthPrefixed(&in, &message) ||
          in.empty()) {
        return Status::Corruption("read batch reply entry");
      }
      res.code = static_cast<StatusCode>(code);
      res.message = message.ToString();
      res.found = in[0] != 0;
      in.RemovePrefix(1);
      if (!GetLengthPrefixed(&in, &value)) {
        return Status::Corruption("read batch reply value");
      }
      res.value = value.ToString();
      r.results.push_back(std::move(res));
    }
    return r;
  }
};

/// A batch of ordered range scans for one shard, resolved under one
/// snapshot (the CN's ScanBatch fan-out, DESIGN.md §14). Each range may
/// carry a pushed-down int64 equality filter, a post-filter row limit, a
/// reverse flag (last-N-by-key), and an optional co-located lookup join
/// that resolves dependent rows server-side. Replies are byte-capped: a
/// truncated reply names the range and key to resume from, and the CN
/// re-issues the request with `resume_range` set (stateless server — the
/// whole cursor lives in the request/reply pair).
struct ScanBatchRequest {
  struct Range {
    TableId table = kInvalidTableId;
    RowKey start, end;  // [start, end); empty end = unbounded
    uint32_t limit = 0xffffffff;
    bool reverse = false;       // return the LAST `limit` rows, descending
    int32_t filter_col = -1;    // -1 = no filter; else int64 equality on col
    int64_t filter_eq = 0;
    /// Co-located lookup join: for every emitted row, build a key from
    /// `join_key_prefix` + the encoded values of `join_key_cols`, then point
    /// read (join_prefix=false) or prefix scan (join_prefix=true, up to
    /// `join_limit` rows) `join_table` under the same snapshot.
    TableId join_table = kInvalidTableId;  // kInvalidTableId = no join
    RowKey join_key_prefix;
    std::vector<uint32_t> join_key_cols;
    bool join_prefix = false;
    uint32_t join_limit = 0xffffffff;
  };
  Timestamp snapshot = 0;
  TxnId txn = kInvalidTxnId;
  /// Reply byte budget; 0 = server default. At least one row per range is
  /// always emitted so continuation makes progress.
  uint64_t max_bytes = 0;
  /// Ranges with index < resume_range were fully answered by earlier chunks
  /// and are skipped (their results arrive empty). The CN rewrites the
  /// resumed range's `start` (forward scans) and remaining `limit` itself.
  uint32_t resume_range = 0;
  std::vector<Range> ranges;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, snapshot);
    PutVarint64(&s, txn);
    PutVarint64(&s, max_bytes);
    PutVarint32(&s, resume_range);
    PutVarint32(&s, static_cast<uint32_t>(ranges.size()));
    for (const auto& range : ranges) {
      PutVarint32(&s, range.table);
      PutLengthPrefixed(&s, range.start);
      PutLengthPrefixed(&s, range.end);
      PutVarint32(&s, range.limit);
      uint8_t flags = 0;
      if (range.reverse) flags |= 1;
      if (range.filter_col >= 0) flags |= 2;
      if (range.join_table != kInvalidTableId) flags |= 4;
      if (range.join_prefix) flags |= 8;
      s.push_back(static_cast<char>(flags));
      if (range.filter_col >= 0) {
        PutVarint32(&s, static_cast<uint32_t>(range.filter_col));
        PutVarsint64(&s, range.filter_eq);
      }
      if (range.join_table != kInvalidTableId) {
        PutVarint32(&s, range.join_table);
        PutLengthPrefixed(&s, range.join_key_prefix);
        PutVarint32(&s, static_cast<uint32_t>(range.join_key_cols.size()));
        for (uint32_t col : range.join_key_cols) PutVarint32(&s, col);
        PutVarint32(&s, range.join_limit);
      }
    }
    return s;
  }
  static StatusOr<ScanBatchRequest> Decode(Slice in) {
    ScanBatchRequest r;
    uint32_t n = 0;
    if (!GetVarint64(&in, &r.snapshot) || !GetVarint64(&in, &r.txn) ||
        !GetVarint64(&in, &r.max_bytes) || !GetVarint32(&in, &r.resume_range) ||
        !GetVarint32(&in, &n)) {
      return Status::Corruption("scan batch req");
    }
    r.ranges.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Range range;
      Slice start, end;
      if (!GetVarint32(&in, &range.table) || !GetLengthPrefixed(&in, &start) ||
          !GetLengthPrefixed(&in, &end) || !GetVarint32(&in, &range.limit) ||
          in.empty()) {
        return Status::Corruption("scan batch range");
      }
      range.start = start.ToString();
      range.end = end.ToString();
      const uint8_t flags = static_cast<uint8_t>(in[0]);
      in.RemovePrefix(1);
      range.reverse = (flags & 1) != 0;
      range.join_prefix = (flags & 8) != 0;
      if ((flags & 2) != 0) {
        uint32_t col = 0;
        if (!GetVarint32(&in, &col) || !GetVarsint64(&in, &range.filter_eq)) {
          return Status::Corruption("scan batch filter");
        }
        range.filter_col = static_cast<int32_t>(col);
      }
      if ((flags & 4) != 0) {
        Slice prefix;
        uint32_t cols = 0;
        if (!GetVarint32(&in, &range.join_table) ||
            !GetLengthPrefixed(&in, &prefix) || !GetVarint32(&in, &cols)) {
          return Status::Corruption("scan batch join");
        }
        range.join_key_prefix = prefix.ToString();
        range.join_key_cols.reserve(cols);
        for (uint32_t c = 0; c < cols; ++c) {
          uint32_t col = 0;
          if (!GetVarint32(&in, &col)) {
            return Status::Corruption("scan batch join col");
          }
          range.join_key_cols.push_back(col);
        }
        if (!GetVarint32(&in, &range.join_limit)) {
          return Status::Corruption("scan batch join limit");
        }
      }
      r.ranges.push_back(std::move(range));
    }
    return r;
  }
};

/// One byte-capped chunk of a scan batch. `results` aligns with the
/// request's ranges (entries below resume_range stay empty). When
/// `truncated`, the scan stopped mid-way through `resume_range`:
/// `resume_key` is the next primary key a forward scan would have examined
/// (empty = the range was not started — keep the original start bound).
struct ScanBatchReply {
  struct RangeResult {
    bool limit_hit = false;  // pushed-down limit satisfied server-side
    std::vector<std::pair<RowKey, std::string>> rows;
    /// Rows pulled in by the lookup join, deduped per chunk by key.
    std::vector<std::pair<RowKey, std::string>> joined;
  };
  bool truncated = false;
  uint32_t resume_range = 0;
  RowKey resume_key;
  std::vector<RangeResult> results;

  std::string Encode() const {
    std::string s;
    s.push_back(truncated ? 1 : 0);
    PutVarint32(&s, resume_range);
    PutLengthPrefixed(&s, resume_key);
    PutVarint32(&s, static_cast<uint32_t>(results.size()));
    for (const auto& res : results) {
      s.push_back(res.limit_hit ? 1 : 0);
      PutVarint32(&s, static_cast<uint32_t>(res.rows.size()));
      for (const auto& [key, value] : res.rows) {
        PutLengthPrefixed(&s, key);
        PutLengthPrefixed(&s, value);
      }
      PutVarint32(&s, static_cast<uint32_t>(res.joined.size()));
      for (const auto& [key, value] : res.joined) {
        PutLengthPrefixed(&s, key);
        PutLengthPrefixed(&s, value);
      }
    }
    return s;
  }
  static StatusOr<ScanBatchReply> Decode(Slice in) {
    ScanBatchReply r;
    if (in.empty()) return Status::Corruption("scan batch reply");
    r.truncated = in[0] != 0;
    in.RemovePrefix(1);
    Slice resume_key;
    uint32_t n = 0;
    if (!GetVarint32(&in, &r.resume_range) ||
        !GetLengthPrefixed(&in, &resume_key) || !GetVarint32(&in, &n)) {
      return Status::Corruption("scan batch reply header");
    }
    r.resume_key = resume_key.ToString();
    r.results.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      RangeResult res;
      uint32_t rows = 0;
      if (in.empty()) return Status::Corruption("scan batch reply range");
      res.limit_hit = in[0] != 0;
      in.RemovePrefix(1);
      if (!GetVarint32(&in, &rows)) {
        return Status::Corruption("scan batch reply rows");
      }
      res.rows.reserve(rows);
      for (uint32_t j = 0; j < rows; ++j) {
        Slice key, value;
        if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value)) {
          return Status::Corruption("scan batch reply row");
        }
        res.rows.emplace_back(key.ToString(), value.ToString());
      }
      uint32_t joined = 0;
      if (!GetVarint32(&in, &joined)) {
        return Status::Corruption("scan batch reply joined");
      }
      res.joined.reserve(joined);
      for (uint32_t j = 0; j < joined; ++j) {
        Slice key, value;
        if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value)) {
          return Status::Corruption("scan batch reply joined row");
        }
        res.joined.emplace_back(key.ToString(), value.ToString());
      }
      r.results.push_back(std::move(res));
    }
    return r;
  }
};

/// Write (insert / update / delete) executed on the primary under a lock.
struct WriteRequest {
  enum class Op : uint8_t { kInsert = 1, kUpdate = 2, kDelete = 3 };
  Op op = Op::kInsert;
  TxnId txn = kInvalidTxnId;
  Timestamp snapshot = 0;
  TableId table = kInvalidTableId;
  RowKey key;
  std::string value;

  std::string Encode() const {
    std::string s;
    s.push_back(static_cast<char>(op));
    PutVarint64(&s, txn);
    PutVarint64(&s, snapshot);
    PutVarint32(&s, table);
    PutLengthPrefixed(&s, key);
    PutLengthPrefixed(&s, value);
    return s;
  }
  static StatusOr<WriteRequest> Decode(Slice in) {
    WriteRequest r;
    if (in.empty()) return Status::Corruption("write req");
    r.op = static_cast<Op>(in[0]);
    in.RemovePrefix(1);
    Slice key, value;
    if (!GetVarint64(&in, &r.txn) || !GetVarint64(&in, &r.snapshot) ||
        !GetVarint32(&in, &r.table) || !GetLengthPrefixed(&in, &key) ||
        !GetLengthPrefixed(&in, &value)) {
      return Status::Corruption("write req fields");
    }
    r.key = key.ToString();
    r.value = value.ToString();
    return r;
  }
};

/// A pipelined batch of buffered writes for one shard, flushed in statement
/// order (the CN's per-transaction write buffer, DESIGN.md §10). The primary
/// applies entries sequentially — lock, apply, redo — exactly as it would
/// have for individual kDnWrite calls. After the first failing entry it
/// rolls the transaction back on this shard and releases every lock the
/// transaction holds there, marking the remaining entries as skipped.
struct WriteBatchRequest {
  struct Entry {
    WriteRequest::Op op = WriteRequest::Op::kInsert;
    TableId table = kInvalidTableId;
    RowKey key;
    std::string value;
  };
  TxnId txn = kInvalidTxnId;
  Timestamp snapshot = 0;
  std::vector<Entry> entries;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, txn);
    PutVarint64(&s, snapshot);
    PutVarint32(&s, static_cast<uint32_t>(entries.size()));
    for (const auto& e : entries) {
      s.push_back(static_cast<char>(e.op));
      PutVarint32(&s, e.table);
      PutLengthPrefixed(&s, e.key);
      PutLengthPrefixed(&s, e.value);
    }
    return s;
  }
  static StatusOr<WriteBatchRequest> Decode(Slice in) {
    WriteBatchRequest r;
    uint32_t n = 0;
    if (!GetVarint64(&in, &r.txn) || !GetVarint64(&in, &r.snapshot) ||
        !GetVarint32(&in, &n)) {
      return Status::Corruption("write batch req");
    }
    r.entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Entry e;
      if (in.empty()) return Status::Corruption("write batch entry");
      e.op = static_cast<WriteRequest::Op>(in[0]);
      in.RemovePrefix(1);
      Slice key, value;
      if (!GetVarint32(&in, &e.table) || !GetLengthPrefixed(&in, &key) ||
          !GetLengthPrefixed(&in, &value)) {
        return Status::Corruption("write batch entry fields");
      }
      e.key = key.ToString();
      e.value = value.ToString();
      r.entries.push_back(std::move(e));
    }
    return r;
  }
};

/// Per-entry outcomes of a write batch, aligned with the request's entries.
/// The RPC envelope stays OK whenever the batch was processed; entry
/// failures travel here so the CN knows which statement failed (and that
/// the shard already cleaned itself up).
struct WriteBatchReply {
  struct EntryResult {
    StatusCode code = StatusCode::kOk;
    std::string message;
    Status ToStatus() const {
      return code == StatusCode::kOk ? Status::OK() : Status(code, message);
    }
  };
  std::vector<EntryResult> results;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, static_cast<uint32_t>(results.size()));
    for (const auto& res : results) {
      PutVarint32(&s, static_cast<uint32_t>(res.code));
      PutLengthPrefixed(&s, res.message);
    }
    return s;
  }
  static StatusOr<WriteBatchReply> Decode(Slice in) {
    WriteBatchReply r;
    uint32_t n = 0;
    if (!GetVarint32(&in, &n)) return Status::Corruption("write batch reply");
    r.results.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      EntryResult res;
      uint32_t code = 0;
      Slice message;
      if (!GetVarint32(&in, &code) || !GetLengthPrefixed(&in, &message)) {
        return Status::Corruption("write batch reply entry");
      }
      res.code = static_cast<StatusCode>(code);
      res.message = message.ToString();
      r.results.push_back(std::move(res));
    }
    return r;
  }
};

/// Pre-commit (PENDING_COMMIT for one-shard commits, PREPARE for 2PC),
/// commit (COMMIT / COMMIT_PREPARED at `ts`), and abort. A 2PC precommit
/// carries the full participant shard list so a promoted primary that finds
/// the prepare in-doubt knows which peer shards may hold the durable
/// decision (DESIGN.md §13).
struct TxnControlRequest {
  TxnId txn = kInvalidTxnId;
  Timestamp ts = 0;
  bool two_phase = false;
  std::vector<ShardId> participants;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, txn);
    PutVarint64(&s, ts);
    s.push_back(two_phase ? 1 : 0);
    PutVarint32(&s, static_cast<uint32_t>(participants.size()));
    for (ShardId shard : participants) PutVarint32(&s, shard);
    return s;
  }
  static StatusOr<TxnControlRequest> Decode(Slice in) {
    TxnControlRequest r;
    if (!GetVarint64(&in, &r.txn) || !GetVarint64(&in, &r.ts) || in.empty()) {
      return Status::Corruption("txn control req");
    }
    r.two_phase = in[0] != 0;
    in.RemovePrefix(1);
    uint32_t n = 0;
    if (!GetVarint32(&in, &n)) return Status::Corruption("txn control parts");
    r.participants.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      ShardId shard = kInvalidShardId;
      if (!GetVarint32(&in, &shard)) {
        return Status::Corruption("txn control part");
      }
      r.participants.push_back(shard);
    }
    return r;
  }
};

/// Transaction-outcome lookup (DESIGN.md §13). Served by the owning CN
/// (kCnTxnOutcome, answered from its decision cache) and by peer participant
/// primaries (kDnTxnState, answered from the per-txn decision memo /
/// provisional state). `kUnknown` means the responder has no record either
/// way — the asker falls through to the next resolution source.
struct TxnOutcomeRequest {
  TxnId txn = kInvalidTxnId;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, txn);
    return s;
  }
  static StatusOr<TxnOutcomeRequest> Decode(Slice in) {
    TxnOutcomeRequest r;
    if (!GetVarint64(&in, &r.txn)) return Status::Corruption("txn outcome");
    return r;
  }
};

/// `kPending` is distinct from `kUnknown`: the owning CN is still deciding
/// (the transaction is active), so the asker must retry instead of treating
/// the answer as a definitive "no decision was ever made".
enum class TxnOutcome : uint8_t {
  kUnknown = 0,
  kCommitted = 1,
  kAborted = 2,
  kPending = 3,
};

inline const char* TxnOutcomeName(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kUnknown:
      return "UNKNOWN";
    case TxnOutcome::kCommitted:
      return "COMMITTED";
    case TxnOutcome::kAborted:
      return "ABORTED";
    case TxnOutcome::kPending:
      return "PENDING";
  }
  return "?";
}

struct TxnOutcomeReply {
  TxnOutcome outcome = TxnOutcome::kUnknown;
  /// Commit timestamp when outcome == kCommitted, else 0.
  Timestamp ts = 0;

  std::string Encode() const {
    std::string s;
    s.push_back(static_cast<char>(outcome));
    PutVarint64(&s, ts);
    return s;
  }
  static StatusOr<TxnOutcomeReply> Decode(Slice in) {
    TxnOutcomeReply r;
    if (in.empty()) return Status::Corruption("txn outcome reply");
    r.outcome = static_cast<TxnOutcome>(in[0]);
    in.RemovePrefix(1);
    if (!GetVarint64(&in, &r.ts)) {
      return Status::Corruption("txn outcome reply ts");
    }
    return r;
  }
};

/// DDL applied on a primary DN (appends a DDL redo record) or broadcast to
/// peer CNs.
struct DdlRequest {
  Timestamp ts = 0;
  std::string payload;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, ts);
    PutLengthPrefixed(&s, payload);
    return s;
  }
  static StatusOr<DdlRequest> Decode(Slice in) {
    DdlRequest r;
    Slice payload;
    if (!GetVarint64(&in, &r.ts) || !GetLengthPrefixed(&in, &payload)) {
      return Status::Corruption("ddl req");
    }
    r.payload = payload.ToString();
    return r;
  }
};

/// Replica status snapshot for RCP calculation and skyline selection.
struct RorStatusReply {
  Timestamp max_commit_ts = 0;
  Lsn applied_lsn = 0;
  SimDuration queue_delay = 0;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, max_commit_ts);
    PutVarint64(&s, applied_lsn);
    PutVarint64(&s, static_cast<uint64_t>(queue_delay));
    return s;
  }
  static StatusOr<RorStatusReply> Decode(Slice in) {
    RorStatusReply r;
    uint64_t qd = 0;
    if (!GetVarint64(&in, &r.max_commit_ts) ||
        !GetVarint64(&in, &r.applied_lsn) || !GetVarint64(&in, &qd)) {
      return Status::Corruption("ror status");
    }
    r.queue_delay = static_cast<SimDuration>(qd);
    return r;
  }
};

/// Collector broadcast: the new RCP plus the per-replica statuses feeding
/// each CN's skyline selector. Each entry carries the collector's failure
/// detector verdict so peer CNs exclude dead replicas instead of re-marking
/// them healthy from a stale status snapshot.
struct RcpUpdateMessage {
  struct Entry {
    NodeId node = kInvalidNodeId;
    bool healthy = true;
    RorStatusReply status;
  };
  Timestamp rcp = 0;
  std::vector<Entry> statuses;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, rcp);
    PutVarint32(&s, static_cast<uint32_t>(statuses.size()));
    for (const auto& entry : statuses) {
      PutVarint32(&s, entry.node);
      s.push_back(entry.healthy ? 1 : 0);
      PutLengthPrefixed(&s, entry.status.Encode());
    }
    return s;
  }
  static StatusOr<RcpUpdateMessage> Decode(Slice in) {
    RcpUpdateMessage r;
    uint32_t n = 0;
    if (!GetVarint64(&in, &r.rcp) || !GetVarint32(&in, &n)) {
      return Status::Corruption("rcp update");
    }
    r.statuses.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Entry entry;
      Slice encoded;
      if (!GetVarint32(&in, &entry.node) || in.empty()) {
        return Status::Corruption("rcp update entry");
      }
      entry.healthy = in[0] != 0;
      in.RemovePrefix(1);
      if (!GetLengthPrefixed(&in, &encoded)) {
        return Status::Corruption("rcp update entry");
      }
      auto status = RorStatusReply::Decode(encoded);
      if (!status.ok()) return status.status();
      entry.status = *status;
      r.statuses.push_back(std::move(entry));
    }
    return r;
  }
};

/// Primary liveness + durability status, probed by the health monitor (the
/// DN-side analogue of kCnMaxIssued probing).
struct DnStatusReply {
  Lsn durable_lsn = 0;
  Timestamp max_commit_ts = 0;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, durable_lsn);
    PutVarint64(&s, max_commit_ts);
    return s;
  }
  static StatusOr<DnStatusReply> Decode(Slice in) {
    DnStatusReply r;
    if (!GetVarint64(&in, &r.durable_lsn) ||
        !GetVarint64(&in, &r.max_commit_ts)) {
      return Status::Corruption("dn status");
    }
    return r;
  }
};

/// A CN's contribution to the cluster low-watermark read timestamp: no
/// in-flight transaction on the CN runs below it, and no *future* snapshot
/// it hands out (GClock single-shard bypass, ROR at the local RCP) can fall
/// below it either. Monotone per CN.
struct TxnHorizonReply {
  Timestamp horizon = 0;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, horizon);
    return s;
  }
  static StatusOr<TxnHorizonReply> Decode(Slice in) {
    TxnHorizonReply r;
    if (!GetVarint64(&in, &r.horizon)) {
      return Status::Corruption("txn horizon");
    }
    return r;
  }
};

/// Collector push of the folded cluster read horizon to a DN primary (rides
/// alongside the heartbeat): the primary's vacuum/GC low watermark.
struct ReadHorizonRequest {
  Timestamp horizon = 0;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, horizon);
    return s;
  }
  static StatusOr<ReadHorizonRequest> Decode(Slice in) {
    ReadHorizonRequest r;
    if (!GetVarint64(&in, &r.horizon)) {
      return Status::Corruption("read horizon");
    }
    return r;
  }
};

/// Grouped prepare for one sealed epoch on one participant shard
/// (DESIGN.md §15). Carries every OCC-surviving member that touches the
/// shard: the member's full participant list (so a promoted primary can run
/// the PR-7 in-doubt resolution per member) plus any write entries still
/// queued on the CN for this shard — the tail that never reached the
/// pipelined kDnWriteBatch threshold rides inside the prepare, saving the
/// final flush round on the commit path. `ts_lower` bounds the epoch's
/// commit timestamp from below (the CN's max-issued watermark at seal).
/// The primary applies each member's entries, appends one PREPARE per
/// member, and waits out durability once for the whole group; per-member
/// failures travel in the aligned reply (the shard has already rolled the
/// failing member back locally, exactly like a failing kDnWriteBatch entry).
struct EpochPrepareRequest {
  struct Member {
    TxnId txn = kInvalidTxnId;
    Timestamp snapshot = 0;
    std::vector<ShardId> participants;
    std::vector<WriteBatchRequest::Entry> entries;
  };
  TxnId epoch = kInvalidTxnId;  // epoch id; doubles as a txn-outcome key
  Timestamp ts_lower = 0;
  std::vector<Member> members;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, epoch);
    PutVarint64(&s, ts_lower);
    PutVarint32(&s, static_cast<uint32_t>(members.size()));
    for (const auto& m : members) {
      PutVarint64(&s, m.txn);
      PutVarint64(&s, m.snapshot);
      PutVarint32(&s, static_cast<uint32_t>(m.participants.size()));
      for (ShardId shard : m.participants) PutVarint32(&s, shard);
      PutVarint32(&s, static_cast<uint32_t>(m.entries.size()));
      for (const auto& e : m.entries) {
        s.push_back(static_cast<char>(e.op));
        PutVarint32(&s, e.table);
        PutLengthPrefixed(&s, e.key);
        PutLengthPrefixed(&s, e.value);
      }
    }
    return s;
  }
  static StatusOr<EpochPrepareRequest> Decode(Slice in) {
    EpochPrepareRequest r;
    uint32_t n = 0;
    if (!GetVarint64(&in, &r.epoch) || !GetVarint64(&in, &r.ts_lower) ||
        !GetVarint32(&in, &n)) {
      return Status::Corruption("epoch prepare req");
    }
    r.members.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Member m;
      uint32_t parts = 0;
      if (!GetVarint64(&in, &m.txn) || !GetVarint64(&in, &m.snapshot) ||
          !GetVarint32(&in, &parts)) {
        return Status::Corruption("epoch prepare member");
      }
      m.participants.reserve(parts);
      for (uint32_t p = 0; p < parts; ++p) {
        ShardId shard = kInvalidShardId;
        if (!GetVarint32(&in, &shard)) {
          return Status::Corruption("epoch prepare participant");
        }
        m.participants.push_back(shard);
      }
      uint32_t entries = 0;
      if (!GetVarint32(&in, &entries)) {
        return Status::Corruption("epoch prepare entry count");
      }
      m.entries.reserve(entries);
      for (uint32_t e = 0; e < entries; ++e) {
        WriteBatchRequest::Entry entry;
        if (in.empty()) return Status::Corruption("epoch prepare entry");
        entry.op = static_cast<WriteRequest::Op>(in[0]);
        in.RemovePrefix(1);
        Slice key, value;
        if (!GetVarint32(&in, &entry.table) ||
            !GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value)) {
          return Status::Corruption("epoch prepare entry fields");
        }
        entry.key = key.ToString();
        entry.value = value.ToString();
        m.entries.push_back(std::move(entry));
      }
      r.members.push_back(std::move(m));
    }
    return r;
  }
};

/// Per-member outcomes of an epoch prepare, aligned with the request's
/// members (same shape as WriteBatchReply: the RPC envelope stays OK when
/// the group was processed; individual member failures travel here and the
/// shard has already rolled those members back locally).
struct EpochPrepareReply {
  std::vector<WriteBatchReply::EntryResult> results;

  std::string Encode() const {
    std::string s;
    PutVarint32(&s, static_cast<uint32_t>(results.size()));
    for (const auto& res : results) {
      PutVarint32(&s, static_cast<uint32_t>(res.code));
      PutLengthPrefixed(&s, res.message);
    }
    return s;
  }
  static StatusOr<EpochPrepareReply> Decode(Slice in) {
    EpochPrepareReply r;
    uint32_t n = 0;
    if (!GetVarint32(&in, &n)) return Status::Corruption("epoch prep reply");
    r.results.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      WriteBatchReply::EntryResult res;
      uint32_t code = 0;
      Slice message;
      if (!GetVarint32(&in, &code) || !GetLengthPrefixed(&in, &message)) {
        return Status::Corruption("epoch prep reply entry");
      }
      res.code = static_cast<StatusCode>(code);
      res.message = message.ToString();
      r.results.push_back(std::move(res));
    }
    return r;
  }
};

/// Grouped phase-2 for one sealed epoch on one participant shard: every
/// member in `commits` commits at the epoch's single timestamp `ts`; every
/// member in `aborts` prepared on this shard but was failed by another
/// participant and must roll back. Deliveries are idempotent per member via
/// the decision memos (DESIGN.md §13) — a duplicated or reordered
/// kDnEpochCommit is a no-op that only reconfirms durability.
struct EpochCommitRequest {
  TxnId epoch = kInvalidTxnId;
  Timestamp ts = 0;
  std::vector<TxnId> commits;
  std::vector<TxnId> aborts;

  std::string Encode() const {
    std::string s;
    PutVarint64(&s, epoch);
    PutVarint64(&s, ts);
    PutVarint32(&s, static_cast<uint32_t>(commits.size()));
    for (TxnId txn : commits) PutVarint64(&s, txn);
    PutVarint32(&s, static_cast<uint32_t>(aborts.size()));
    for (TxnId txn : aborts) PutVarint64(&s, txn);
    return s;
  }
  static StatusOr<EpochCommitRequest> Decode(Slice in) {
    EpochCommitRequest r;
    uint32_t commits = 0;
    if (!GetVarint64(&in, &r.epoch) || !GetVarint64(&in, &r.ts) ||
        !GetVarint32(&in, &commits)) {
      return Status::Corruption("epoch commit req");
    }
    r.commits.reserve(commits);
    for (uint32_t i = 0; i < commits; ++i) {
      TxnId txn = kInvalidTxnId;
      if (!GetVarint64(&in, &txn)) {
        return Status::Corruption("epoch commit member");
      }
      r.commits.push_back(txn);
    }
    uint32_t aborts = 0;
    if (!GetVarint32(&in, &aborts)) {
      return Status::Corruption("epoch commit abort count");
    }
    r.aborts.reserve(aborts);
    for (uint32_t i = 0; i < aborts; ++i) {
      TxnId txn = kInvalidTxnId;
      if (!GetVarint64(&in, &txn)) {
        return Status::Corruption("epoch commit abort");
      }
      r.aborts.push_back(txn);
    }
    return r;
  }
};

// --- Method descriptors ------------------------------------------------------

// Served by primary data nodes.
inline constexpr rpc::RpcMethod<ReadRequest, ReadReply> kDnRead{"dn.read"};
inline constexpr rpc::RpcMethod<ReadRequest, ReadReply> kDnLockRead{
    "dn.lock_read"};
inline constexpr rpc::RpcMethod<ReadBatchRequest, ReadBatchReply>
    kDnReadBatch{"dn.read_batch"};
inline constexpr rpc::RpcMethod<ScanRequest, ScanReply> kDnScan{"dn.scan"};
inline constexpr rpc::RpcMethod<ScanBatchRequest, ScanBatchReply>
    kDnScanBatch{"dn.scan_batch"};
inline constexpr rpc::RpcMethod<WriteRequest, rpc::EmptyMessage> kDnWrite{
    "dn.write"};
inline constexpr rpc::RpcMethod<WriteBatchRequest, WriteBatchReply>
    kDnWriteBatch{"dn.write_batch"};
inline constexpr rpc::RpcMethod<TxnControlRequest, rpc::EmptyMessage>
    kDnPrecommit{"dn.precommit"};
inline constexpr rpc::RpcMethod<TxnControlRequest, rpc::EmptyMessage>
    kDnCommit{"dn.commit"};
inline constexpr rpc::RpcMethod<TxnControlRequest, rpc::EmptyMessage>
    kDnAbort{"dn.abort"};
inline constexpr rpc::RpcMethod<DdlRequest, rpc::EmptyMessage> kDnDdl{
    "dn.ddl"};
inline constexpr rpc::RpcMethod<TxnControlRequest, rpc::EmptyMessage>
    kDnHeartbeat{"dn.heartbeat"};
inline constexpr rpc::RpcMethod<rpc::EmptyMessage, DnStatusReply> kDnStatus{
    "dn.status"};
inline constexpr rpc::RpcMethod<ReadHorizonRequest, rpc::EmptyMessage>
    kDnReadHorizon{"dn.read_horizon"};
inline constexpr rpc::RpcMethod<TxnOutcomeRequest, TxnOutcomeReply>
    kDnTxnState{"dn.txn_state"};
inline constexpr rpc::RpcMethod<EpochPrepareRequest, EpochPrepareReply>
    kDnEpochPrepare{"dn.epoch_prepare"};
inline constexpr rpc::RpcMethod<EpochCommitRequest, rpc::EmptyMessage>
    kDnEpochCommit{"dn.epoch_commit"};

// Served by replica data nodes (read-on-replica).
inline constexpr rpc::RpcMethod<ReadRequest, ReadReply> kRorRead{"ror.read"};
inline constexpr rpc::RpcMethod<ReadBatchRequest, ReadBatchReply>
    kRorReadBatch{"ror.read_batch"};
inline constexpr rpc::RpcMethod<ScanRequest, ScanReply> kRorScan{"ror.scan"};
inline constexpr rpc::RpcMethod<ScanBatchRequest, ScanBatchReply>
    kRorScanBatch{"ror.scan_batch"};
inline constexpr rpc::RpcMethod<rpc::EmptyMessage, RorStatusReply> kRorStatus{
    "ror.status"};

// Served by coordinator nodes.
inline constexpr rpc::RpcMethod<RcpUpdateMessage, rpc::EmptyMessage>
    kCnRcpUpdate{"cn.rcp_update"};
inline constexpr rpc::RpcMethod<DdlRequest, rpc::EmptyMessage> kCnDdlApply{
    "cn.ddl_apply"};
inline constexpr rpc::RpcMethod<rpc::EmptyMessage, TxnHorizonReply>
    kCnTxnHorizon{"cn.txn_horizon"};
inline constexpr rpc::RpcMethod<TxnOutcomeRequest, TxnOutcomeReply>
    kCnTxnOutcome{"cn.txn_outcome"};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_MESSAGES_H_
