#include "src/cluster/cluster.h"

#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/storage/snapshot.h"

namespace globaldb {

Cluster::Cluster(sim::Simulator* sim, ClusterOptions options)
    : sim_(sim), options_(std::move(options)) {
  network_ = std::make_unique<sim::Network>(sim, options_.topology,
                                            options_.network);
  const uint32_t regions =
      static_cast<uint32_t>(options_.topology.num_regions());

  // GTM server.
  network_->RegisterNode(GtmNodeId(), options_.gtm_region);
  gtm_ = std::make_unique<GtmServer>(sim, network_.get(), GtmNodeId());

  // Coordinator nodes: cns_per_region per region.
  const uint32_t num_cns = options_.cns_per_region * regions;
  std::vector<NodeId> cn_ids;
  for (uint32_t i = 0; i < num_cns; ++i) {
    const RegionId region = i % regions;
    const NodeId id = CnNodeId(i);
    network_->RegisterNode(id, region);
    cns_.push_back(std::make_unique<CoordinatorNode>(
        sim, network_.get(), id, region, GtmNodeId(), options_.clock,
        options_.coordinator));
    cn_ids.push_back(id);
  }

  // Primary data nodes (one per shard) and their replicas.
  std::vector<NodeId> primaries;
  for (ShardId shard = 0; shard < options_.num_shards; ++shard) {
    const NodeId id = PrimaryNodeId(shard);
    network_->RegisterNode(id, PrimaryRegion(shard));
    data_nodes_.push_back(std::make_unique<DataNode>(
        sim, network_.get(), id, shard, options_.data_node));
    primaries.push_back(id);

    std::vector<NodeId> replica_ids;
    for (uint32_t r = 0; r < options_.replicas_per_shard; ++r) {
      const NodeId rid = ReplicaNodeId(shard, r);
      network_->RegisterNode(rid, ReplicaRegion(shard, r));
      replica_nodes_.push_back(std::make_unique<ReplicaNode>(
          sim, network_.get(), rid, shard, options_.replica_node));
      replica_nodes_.back()->SetPrimary(id);
      replica_ids.push_back(rid);
    }
    data_nodes_.back()->ConfigureReplication(replica_ids, options_.shipper);
    data_nodes_.back()->ConfigureOutcomeResolution(
        [this](ShardId s) { return primary_ids_[s]; }, options_.num_shards);
  }
  primary_ids_ = primaries;
  promotion_epochs_.assign(options_.num_shards, 0);

  // Wire CNs: shard map, replicas, peers, initial mode.
  for (auto& cn : cns_) {
    cn->SetShardMap(primaries);
    cn->SetPeerCns(cn_ids);
    cn->timestamp_source().SetMode(options_.initial_mode);
    for (ShardId shard = 0; shard < options_.num_shards; ++shard) {
      for (uint32_t r = 0; r < options_.replicas_per_shard; ++r) {
        cn->AddReplica(shard, ReplicaNodeId(shard, r),
                       ReplicaRegion(shard, r));
      }
    }
  }
  gtm_->SetMode(options_.initial_mode, 0);

  transition_ = std::make_unique<TransitionCoordinator>(
      sim, network_.get(), cn_ids.front(), GtmNodeId(), cn_ids);
  health_ = std::make_unique<HealthMonitor>(
      sim, network_.get(), cn_ids.front(), cn_ids, transition_.get(),
      options_.initial_mode, options_.health);
}

void Cluster::Start() {
  for (auto& dn : data_nodes_) dn->Start();
  for (size_t i = 0; i < cns_.size(); ++i) {
    cns_[i]->StartServices(/*rcp_collector=*/i == 0);
  }
  health_->ConfigureFailover(
      primary_ids_, [this](ShardId shard) { return PromoteShard(shard); });
  if (options_.health.enabled) health_->Start();
}

NodeId Cluster::PromoteShard(ShardId shard) {
  // Candidate = live, never-promoted replica with the highest applied LSN.
  // With kSyncQuorum every quorum-acked commit is applied on at least a
  // quorum of replicas, and the max applied LSN is at or above any quorum
  // ack point — so the winner contains every acknowledged commit.
  ReplicaNode* best = nullptr;
  for (uint32_t r = 0; r < options_.replicas_per_shard; ++r) {
    ReplicaNode* candidate =
        replica_nodes_[shard * options_.replicas_per_shard + r].get();
    if (!network_->IsNodeUp(candidate->node_id())) continue;
    if (promoted_.count(candidate->node_id()) > 0) continue;
    if (best == nullptr ||
        candidate->applier().applied_lsn() > best->applier().applied_lsn()) {
      best = candidate;
    }
  }
  if (best == nullptr) {
    GDB_LOG(Warn) << "promotion: shard " << shard
                  << " has no live un-promoted replica";
    return kInvalidNodeId;
  }

  const NodeId new_id = best->node_id();
  const NodeId old_id = primary_ids_[shard];

  // Freeze the donor first: everything below runs without a co_await, so
  // once the applier is stalled the encoded images are the replica's final
  // replayed state — no batch can sneak in between imaging and install.
  best->applier().set_stalled(true);
  const Lsn applied = best->applier().applied_lsn();
  const Timestamp max_ts = best->applier().max_commit_ts();
  const std::string catalog_image = EncodeCatalog(best->catalog());
  const std::string store_image = EncodeShardStore(best->store());
  // Promotion transfer (DESIGN.md §13): the replayed PREPARE/PENDING set
  // with participant lists becomes the new primary's in-doubt set, and the
  // replayed COMMIT/ABORT memo seeds its decision memo.
  std::map<TxnId, InDoubtTxn> in_doubt;
  for (const auto& [txn, ts_lower] : best->applier().pending()) {
    InDoubtTxn info;
    info.ts_lower = ts_lower;
    const auto& participants = best->applier().pending_participants();
    auto it = participants.find(txn);
    if (it != participants.end()) info.participants = it->second;
    in_doubt[txn] = info;
  }

  // Retire the old primary object but keep it alive: its suspended
  // coroutines (ship loops, in-flight handlers) still reference it.
  data_nodes_[shard]->Stop();
  retired_nodes_.push_back(std::move(data_nodes_[shard]));

  const uint64_t epoch = ++promotion_epochs_[shard];

  // The new primary is co-located with the zombie ReplicaNode on the same
  // node id — their RPC method sets are disjoint (dn.* + repl.hello vs
  // ror.*), and stalling above made the zombie inert.
  auto node = std::make_unique<DataNode>(sim_, network_.get(), new_id, shard,
                                         options_.data_node);
  node->InstallForPromotion(applied, max_ts, catalog_image, store_image,
                            in_doubt, &best->applier().decisions(), epoch);
  node->ConfigureOutcomeResolution(
      [this](ShardId s) { return primary_ids_[s]; }, options_.num_shards);

  // Surviving replicas follow the new primary and must re-base onto its
  // timeline via a reset snapshot: a survivor may have applied past the
  // promotion point from the dead primary's unreplicated tail.
  std::vector<NodeId> survivors;
  for (uint32_t r = 0; r < options_.replicas_per_shard; ++r) {
    ReplicaNode* peer =
        replica_nodes_[shard * options_.replicas_per_shard + r].get();
    if (peer->node_id() == new_id) continue;
    if (promoted_.count(peer->node_id()) > 0) continue;
    peer->SetPrimary(new_id);
    peer->set_promotion_epoch(epoch);
    survivors.push_back(peer->node_id());
  }
  // Previously revived ex-primaries of this shard follow along too (they are
  // regular replicas now).
  for (auto& revived : revived_replicas_) {
    if (revived->shard() != shard) continue;
    if (!network_->IsNodeUp(revived->node_id())) continue;
    revived->SetPrimary(new_id);
    revived->set_promotion_epoch(epoch);
    survivors.push_back(revived->node_id());
  }
  node->ConfigureReplication(survivors, options_.shipper);
  node->shipper()->RequireSnapshotAll();
  node->Start();

  data_nodes_[shard] = std::move(node);
  primary_ids_[shard] = new_id;
  promoted_.insert(new_id);
  for (auto& cn : cns_) cn->UpdateShardPrimary(shard, new_id);
  health_->NotePrimaryPromoted(shard, new_id);
  GDB_LOG(Info) << "promotion: shard " << shard << " primary " << old_id
                << " -> " << new_id << " at lsn " << applied;
  return new_id;
}

NodeId Cluster::ReviveRetiredPrimary(ShardId shard) {
  // Most recently retired primary of this shard. The retired DataNode object
  // itself stays a zombie (its handlers answer Unavailable via the stopped
  // shipper); the node id gets a fresh ReplicaNode.
  DataNode* retired = nullptr;
  for (auto& node : retired_nodes_) {
    if (node->shard() == shard) retired = node.get();
  }
  if (retired == nullptr) return kInvalidNodeId;
  const NodeId id = retired->node_id();
  for (auto& existing : revived_replicas_) {
    if (existing->node_id() == id) return kInvalidNodeId;  // already revived
  }
  if (!network_->IsNodeUp(id)) network_->SetNodeUp(id, true);
  auto replica = std::make_unique<ReplicaNode>(sim_, network_.get(), id,
                                               shard, options_.replica_node);
  replica->SetPrimary(primary_ids_[shard]);
  // The revived process only knows the epoch it crashed at. The current
  // primary's stale-epoch check is what detects the supersession and forces
  // the reset snapshot that discards the divergent tail (DESIGN.md §13).
  replica->set_promotion_epoch(retired->promotion_epoch());
  replica->AnnounceToPrimary();
  revived_replicas_.push_back(std::move(replica));
  GDB_LOG(Info) << "revive: shard " << shard << " ex-primary " << id
                << " rejoining as replica of " << primary_ids_[shard];
  return id;
}

std::vector<ReplicaNode*> Cluster::revived_replicas_of(ShardId shard) {
  std::vector<ReplicaNode*> out;
  for (auto& replica : revived_replicas_) {
    if (replica->shard() == shard) out.push_back(replica.get());
  }
  return out;
}

CoordinatorNode& Cluster::cn_in_region(RegionId region) {
  for (auto& cn : cns_) {
    if (cn->region() == region) return *cn;
  }
  return *cns_.front();
}

std::vector<ReplicaNode*> Cluster::replicas_of(ShardId shard) {
  std::vector<ReplicaNode*> out;
  for (uint32_t r = 0; r < options_.replicas_per_shard; ++r) {
    out.push_back(
        replica_nodes_[shard * options_.replicas_per_shard + r].get());
  }
  return out;
}

void Cluster::WaitForRcp(SimDuration max_wait) {
  const SimTime deadline = sim_->now() + max_wait;
  while (sim_->now() < deadline) {
    bool all_ready = true;
    for (auto& cn : cns_) {
      if (cn->rcp() == 0) {
        all_ready = false;
        break;
      }
    }
    if (all_ready) return;
    sim_->RunFor(5 * kMillisecond);
  }
  GDB_LOG(Warn) << "WaitForRcp: RCP still zero after max_wait";
}

}  // namespace globaldb
