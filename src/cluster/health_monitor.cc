#include "src/cluster/health_monitor.h"

#include <algorithm>
#include <utility>

#include "src/cluster/messages.h"
#include "src/common/logging.h"
#include "src/txn/messages.h"

namespace globaldb {

namespace {

/// Probes must not stall the monitor loop behind retries: a missed probe is
/// counted and the next interval tries again.
rpc::RpcPolicy ProbePolicy(const HealthMonitorOptions& options) {
  rpc::RpcPolicy policy;
  policy.max_attempts = 1;
  policy.attempt_timeout = options.probe_timeout;
  return policy;
}

}  // namespace

HealthMonitor::HealthMonitor(sim::Simulator* sim, sim::Network* network,
                             NodeId self, std::vector<NodeId> cn_nodes,
                             TransitionCoordinator* transition,
                             TimestampMode initial_mode,
                             HealthMonitorOptions options)
    : sim_(sim),
      self_(self),
      cn_nodes_(std::move(cn_nodes)),
      transition_(transition),
      options_(options),
      client_(network, self, ProbePolicy(options)),
      mode_(initial_mode) {
  for (NodeId cn : cn_nodes_) cns_[cn] = CnState{};
}

void HealthMonitor::Start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  sim_->Spawn(MonitorLoop());
}

sim::Task<void> HealthMonitor::MonitorLoop() {
  while (running_) {
    if (options_.primary_failover && !primaries_.empty()) {
      co_await ProbePrimaries();
    }
    co_await ProbeOnce();
    co_await sim_->Sleep(options_.probe_interval);
  }
}

sim::Task<void> HealthMonitor::ProbePrimaries() {
  metrics_.Add("health.primary_probes");
  auto results =
      co_await client_.CallAll(primaries_, kDnStatus, rpc::EmptyMessage{});
  if (!running_) co_return;
  for (ShardId shard = 0; shard < static_cast<ShardId>(primaries_.size());
       ++shard) {
    if (results[shard].ok()) {
      if (primary_misses_[shard] >= options_.primary_miss_threshold) {
        metrics_.Add("health.primary_recovered");
      }
      primary_misses_[shard] = 0;
      continue;
    }
    metrics_.Add("health.primary_probe_misses");
    if (++primary_misses_[shard] < options_.primary_miss_threshold) continue;
    if (promote_ == nullptr || promotion_inflight_) continue;
    metrics_.Add("health.primary_down");
    GDB_LOG(Warn) << "health: primary " << primaries_[shard] << " (shard "
                  << shard << ") declared down, promoting a replica";
    // Promotion is synchronous in-process object surgery; the guard only
    // protects against a re-entrant probe loop (not expected, but cheap).
    promotion_inflight_ = true;
    const NodeId promoted = promote_(shard);
    promotion_inflight_ = false;
    if (promoted != kInvalidNodeId) {
      primaries_[shard] = promoted;
      primary_misses_[shard] = 0;
      metrics_.Add("health.promotions");
      GDB_LOG(Info) << "health: shard " << shard << " promoted replica "
                    << promoted << " to primary";
    } else {
      metrics_.Add("health.promotion_failures");
    }
  }
}

sim::Task<void> HealthMonitor::ProbeOnce() {
  metrics_.Add("health.probes");
  auto results =
      co_await client_.CallAll(cn_nodes_, kCnMaxIssued, rpc::EmptyMessage{});

  SimDuration max_bound = 0;
  SimDuration max_seal_latency = 0;
  uint32_t max_abort_permille = 0;
  bool all_alive = true;
  for (size_t i = 0; i < cn_nodes_.size(); ++i) {
    CnState& state = cns_[cn_nodes_[i]];
    if (!results[i].ok()) {
      metrics_.Add("health.probe_misses");
      if (++state.misses >= options_.miss_threshold && state.alive) {
        state.alive = false;
        metrics_.Add("health.cn_down");
        GDB_LOG(Warn) << "health: CN " << cn_nodes_[i] << " declared down";
      }
    } else {
      if (!state.alive) {
        metrics_.Add("health.cn_recovered");
        GDB_LOG(Info) << "health: CN " << cn_nodes_[i] << " recovered";
      }
      state.alive = true;
      state.misses = 0;
      state.error_bound = results[i]->max_error_bound;
      max_bound = std::max(max_bound, state.error_bound);
      max_seal_latency = std::max(
          max_seal_latency, results[i]->epoch_seal_latency_us * kMicrosecond);
      max_abort_permille =
          std::max(max_abort_permille, results[i]->epoch_abort_permille);
    }
    if (!state.alive) all_alive = false;
  }
  last_max_error_bound_ = max_bound;

  if (!running_ || in_transition_ || transition_ == nullptr) co_return;

  // EPOCH demotion: group commit amortizes WAN rounds only while seals stay
  // cheap. A CN reporting runaway seal latency (members parked far past the
  // interval) or a high per-seal abort rate moves the cluster to individual
  // GTM commits. One-way: returning to EPOCH is an operator decision.
  if (mode_ == TimestampMode::kEpoch &&
      (max_seal_latency > options_.epoch_seal_latency_limit ||
       max_abort_permille > options_.epoch_abort_permille_limit)) {
    GDB_LOG(Warn) << "health: epoch seal latency " << max_seal_latency
                  << "ns / abort rate " << max_abort_permille
                  << "permille exceeds limits, demoting EPOCH -> GTM";
    in_transition_ = true;
    auto result = co_await transition_->SwitchEpochToGtm();
    in_transition_ = false;
    if (result.ok()) {
      mode_ = TimestampMode::kGtm;
      // Deliberately not fell_back_: that flag arms the GTM -> GClock
      // return path, which must not fire on a cluster configured for EPOCH.
      epoch_fell_back_ = true;
      metrics_.Add("health.epoch_fallback_to_gtm");
    } else {
      metrics_.Add("health.transition_failures");
    }
    co_return;
  }

  // Fallback: clock quality on some reachable CN no longer supports GClock
  // timestamp ordering guarantees — move the cluster to GTM.
  if (mode_ == TimestampMode::kGclock &&
      max_bound > options_.fallback_error_bound) {
    GDB_LOG(Warn) << "health: clock error bound " << max_bound
                  << "ns exceeds fallback threshold, switching to GTM";
    in_transition_ = true;
    auto result = co_await transition_->SwitchToGtm();
    in_transition_ = false;
    if (result.ok()) {
      mode_ = TimestampMode::kGtm;
      fell_back_ = true;
      dwell_armed_ = false;
      metrics_.Add("health.fallback_to_gtm");
    } else {
      metrics_.Add("health.transition_failures");
    }
    co_return;
  }

  // Return: only after a fallback this monitor performed, and only once the
  // whole CN fleet has been healthy and re-synchronized for the dwell.
  if (fell_back_ && mode_ == TimestampMode::kGtm) {
    const bool healthy = all_alive && max_bound > 0 &&
                         max_bound < options_.recover_error_bound;
    if (!healthy) {
      dwell_armed_ = false;
      co_return;
    }
    if (!dwell_armed_) {
      dwell_armed_ = true;
      healthy_since_ = sim_->now();
      co_return;
    }
    if (sim_->now() - healthy_since_ < options_.recover_dwell) co_return;
    GDB_LOG(Info) << "health: clocks re-synchronized, returning to GClock";
    in_transition_ = true;
    auto result = co_await transition_->SwitchToGclock();
    in_transition_ = false;
    dwell_armed_ = false;
    if (result.ok()) {
      mode_ = TimestampMode::kGclock;
      fell_back_ = false;
      metrics_.Add("health.return_to_gclock");
    } else {
      metrics_.Add("health.transition_failures");
    }
  }
}

}  // namespace globaldb
