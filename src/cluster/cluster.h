#ifndef GLOBALDB_SRC_CLUSTER_CLUSTER_H_
#define GLOBALDB_SRC_CLUSTER_CLUSTER_H_

#include <memory>
#include <set>
#include <vector>

#include "src/cluster/coordinator_node.h"
#include "src/cluster/data_node.h"
#include "src/cluster/health_monitor.h"
#include "src/cluster/replica_node.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/sim/topology.h"
#include "src/txn/gtm_server.h"
#include "src/txn/transition.h"

namespace globaldb {

/// Everything needed to stand up a GlobalDB cluster in the simulator.
struct ClusterOptions {
  sim::Topology topology = sim::Topology::SingleRegion();
  sim::NetworkOptions network;

  uint32_t num_shards = 6;
  /// One CN per region by default (paper: 3 CNs over 3 cities).
  uint32_t cns_per_region = 1;
  /// Replicas per shard, placed in the regions after the primary's
  /// (round-robin), so every region hosts a full copy of the database when
  /// replicas_per_shard >= num_regions - 1.
  uint32_t replicas_per_shard = 2;

  TimestampMode initial_mode = TimestampMode::kGtm;
  /// Failure detector + automatic GClock<->GTM fallback (runs on CN 0).
  HealthMonitorOptions health;
  ShipperOptions shipper;
  DataNodeOptions data_node;
  ReplicaNodeOptions replica_node;
  CoordinatorOptions coordinator;
  sim::HardwareClockOptions clock;

  /// Region hosting the GTM server (the paper collocates it with the
  /// lowest-mean-latency machine).
  RegionId gtm_region = 0;
};

/// Node-id layout: GTM = 0, CNs = 1..99, primary DNs = 100 + shard,
/// replicas = 1000 + shard * 100 + replica_index.
class Cluster {
 public:
  Cluster(sim::Simulator* sim, ClusterOptions options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts log shippers, the RCP collector (on CN 0), and heartbeats.
  void Start();

  sim::Simulator* simulator() { return sim_; }
  sim::Network& network() { return *network_; }
  const ClusterOptions& options() const { return options_; }

  GtmServer& gtm() { return *gtm_; }
  size_t num_cns() const { return cns_.size(); }
  CoordinatorNode& cn(size_t i) { return *cns_[i]; }
  /// The first CN located in `region` (checks all CNs round-robin).
  CoordinatorNode& cn_in_region(RegionId region);
  size_t num_shards() const { return options_.num_shards; }
  DataNode& data_node(ShardId shard) { return *data_nodes_[shard]; }
  std::vector<ReplicaNode*> replicas_of(ShardId shard);
  ReplicaNode& replica(ShardId shard, uint32_t index) {
    return *replica_nodes_[shard * options_.replicas_per_shard + index];
  }
  TransitionCoordinator& transition() { return *transition_; }
  HealthMonitor& health() { return *health_; }

  /// Promotes the most-caught-up live replica of `shard` to primary
  /// (DESIGN.md §12): images the replica's replayed state into a fresh
  /// DataNode at the replica's node id, continues the shard's LSN sequence
  /// from its applied position, aborts in-doubt transactions, re-bases the
  /// surviving replicas via reset snapshots, and re-routes every CN. The
  /// old primary object is retired (its suspended coroutines stay valid)
  /// and the promoted ReplicaNode becomes a zombie that no selector ever
  /// picks again. Returns the new primary's node id, or kInvalidNodeId when
  /// no live un-promoted replica exists. Also invoked by the HealthMonitor
  /// when options.health.primary_failover is on.
  NodeId PromoteShard(ShardId shard);

  /// Re-integrates the most recently retired (crashed, superseded) primary
  /// of `shard` as a replica (DESIGN.md §13): brings the node id back on the
  /// network, hosts a fresh ReplicaNode there carrying the dead primary's
  /// *pre-crash* promotion epoch, and announces it to the current primary —
  /// whose stale-epoch check discards the divergent history by forcing a
  /// reset snapshot. Returns the revived node id, or kInvalidNodeId when the
  /// shard has no retired primary to revive.
  NodeId ReviveRetiredPrimary(ShardId shard);

  /// Promotion epoch of `shard` (0 until its first failover).
  uint64_t promotion_epoch(ShardId shard) const {
    return promotion_epochs_[shard];
  }
  /// Replicas created by ReviveRetiredPrimary (ex-primaries re-integrated
  /// into their shard's replication set).
  std::vector<ReplicaNode*> revived_replicas_of(ShardId shard);

  static NodeId GtmNodeId() { return 0; }
  static NodeId CnNodeId(uint32_t index) { return 1 + index; }
  /// Initial-layout primary id. After a promotion the live primary moves:
  /// use primary_node_id() for the current one.
  static NodeId PrimaryNodeId(ShardId shard) { return 100 + shard; }
  /// Current primary of `shard` (tracks promotions).
  NodeId primary_node_id(ShardId shard) const { return primary_ids_[shard]; }
  NodeId ReplicaNodeId(ShardId shard, uint32_t index) const {
    return 1000 + shard * 100 + index;
  }

  RegionId PrimaryRegion(ShardId shard) const {
    return shard % options_.topology.num_regions();
  }
  RegionId ReplicaRegion(ShardId shard, uint32_t index) const {
    const uint32_t regions =
        static_cast<uint32_t>(options_.topology.num_regions());
    if (regions == 1) return 0;
    return (PrimaryRegion(shard) + 1 + index) % regions;
  }

  /// Runs the simulator until every CN has observed an RCP > 0 (i.e. the
  /// read-on-replica path is usable), up to `max_wait`.
  void WaitForRcp(SimDuration max_wait = 2 * kSecond);

 private:
  sim::Simulator* sim_;
  ClusterOptions options_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<GtmServer> gtm_;
  std::vector<std::unique_ptr<CoordinatorNode>> cns_;
  std::vector<std::unique_ptr<DataNode>> data_nodes_;
  std::vector<std::unique_ptr<ReplicaNode>> replica_nodes_;
  /// Current primary per shard (diverges from PrimaryNodeId after
  /// promotions).
  std::vector<NodeId> primary_ids_;
  /// Replaced primaries, kept alive: their suspended coroutines (ship
  /// loops, stopped checkpointers, in-flight handlers) still reference
  /// them.
  std::vector<std::unique_ptr<DataNode>> retired_nodes_;
  /// Replicas already promoted (now zombie ReplicaNodes hosting a primary
  /// DataNode on the same node id) — never promotion candidates again.
  std::set<NodeId> promoted_;
  /// Per-shard promotion epoch, bumped on every PromoteShard; carried in
  /// kReplHello so a stale announcer gets a reset snapshot (DESIGN.md §13).
  std::vector<uint64_t> promotion_epochs_;
  /// Fresh ReplicaNodes hosted on revived ex-primary node ids
  /// (ReviveRetiredPrimary); they follow the current primary but are not
  /// ROR read targets.
  std::vector<std::unique_ptr<ReplicaNode>> revived_replicas_;
  std::unique_ptr<TransitionCoordinator> transition_;
  std::unique_ptr<HealthMonitor> health_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_CLUSTER_H_
