#include "src/cluster/coordinator_node.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "src/common/logging.h"
#include "src/sim/future.h"

namespace globaldb {

namespace {

/// The CN never retries automatically: its traffic is dominated by
/// non-idempotent mutations (writes, precommits, commits) where a blind
/// re-send after an ambiguous timeout could double-apply. Failover and
/// error handling are protocol-level decisions made at each call site.
rpc::RpcPolicy BuildPolicy() {
  rpc::RpcPolicy policy;
  policy.max_attempts = 1;
  return policy;
}

}  // namespace

CoordinatorNode::CoordinatorNode(sim::Simulator* sim, sim::Network* network,
                                 NodeId self, RegionId region, NodeId gtm_node,
                                 sim::HardwareClockOptions clock_options,
                                 CoordinatorOptions options)
    : sim_(sim),
      network_(network),
      self_(self),
      region_(region),
      gtm_node_(gtm_node),
      options_(options),
      client_(network, self, BuildPolicy()),
      server_(network, self),
      cpu_(sim, options.cores),
      decided_(options.decision_cache_capacity) {
  clock_ = std::make_unique<sim::HardwareClock>(sim, sim->rng().Fork(),
                                                clock_options);
  ts_source_ = std::make_unique<TimestampSource>(sim, network, self, gtm_node,
                                                 clock_.get());
  ts_source_->set_coalescing(options_.coalesce_gtm);
  EpochManager::Callbacks epoch_callbacks;
  epoch_callbacks.next_epoch_id = [this] { return NextTxnId(); };
  epoch_callbacks.shard_primary = [this](ShardId shard) {
    return shard_primaries_[shard];
  };
  EpochManager::Options epoch_options;
  epoch_options.interval = options_.epoch_interval;
  epoch_options.commit_retry_limit = options_.commit_retry_limit;
  epoch_options.commit_retry_backoff = options_.commit_retry_backoff;
  epoch_options.recent_commit_capacity = options_.epoch_recent_commit_capacity;
  epoch_mgr_ = std::make_unique<EpochManager>(
      sim, ts_source_.get(), &client_, &decided_, &metrics_,
      std::move(epoch_callbacks), epoch_options);
  BindService();
}

void CoordinatorNode::SetShardMap(std::vector<NodeId> primaries) {
  shard_primaries_ = std::move(primaries);
  if (ddl_targets_.empty()) ddl_targets_ = shard_primaries_;
  // Precompute the shards mastered in our region once; replicated-table
  // reads rotate across this set on every statement.
  local_replicated_shards_.clear();
  for (ShardId s = 0; s < static_cast<ShardId>(shard_primaries_.size());
       ++s) {
    if (network_->RegionOf(shard_primaries_[s]) == region_) {
      local_replicated_shards_.push_back(s);
    }
  }
}

void CoordinatorNode::AddReplica(ShardId shard, NodeId node, RegionId region) {
  // Base latency estimated from the topology (one-way).
  const SimDuration latency = network_->topology().OneWayLatency(
      region_, region);
  selector_.AddReplica(node, shard, region, latency);
}

void CoordinatorNode::SetPeerCns(std::vector<NodeId> peers) {
  peer_cns_ = std::move(peers);
}

void CoordinatorNode::SetPrimaryDdlTargets(std::vector<NodeId> primaries) {
  ddl_targets_ = std::move(primaries);
}

void CoordinatorNode::UpdateShardPrimary(ShardId shard, NodeId node) {
  if (shard >= static_cast<ShardId>(shard_primaries_.size())) return;
  const NodeId old_primary = shard_primaries_[shard];
  shard_primaries_[shard] = node;
  for (NodeId& target : ddl_targets_) {
    if (target == old_primary) target = node;
  }
  // Recompute the local-region rotation set with the new primary location.
  local_replicated_shards_.clear();
  for (ShardId s = 0; s < static_cast<ShardId>(shard_primaries_.size());
       ++s) {
    if (network_->RegionOf(shard_primaries_[s]) == region_) {
      local_replicated_shards_.push_back(s);
    }
  }
  selector_.RemoveReplica(node);
  if (rcp_ != nullptr) rcp_->RemoveReplica(node);
  metrics_.Add("cn.primary_updates");
}

Timestamp CoordinatorNode::TxnHorizon() const {
  // last_committed is the floor every future begin is at or above: GClock's
  // single-shard-read bypass hands out exactly this value, and everything
  // else (GTM counter grants, GClock clock reads after commit-wait) sits
  // above it. Vacuuming *at* a snapshot is safe — visibility requires
  // end_ts > snapshot, vacuum only removes end_ts <= horizon.
  Timestamp horizon = ts_source_->last_committed();
  if (options_.enable_ror && rcp_ != nullptr && rcp_->rcp() > 0) {
    // A future ROR transaction reads at the RCP, which may trail
    // last_committed; it only moves forward, so min-ing it keeps the
    // horizon monotone.
    horizon = std::min(horizon, rcp_->rcp());
  }
  for (const auto& [txn, snapshot] : active_snapshots_) {
    horizon = std::min(horizon, snapshot);
  }
  return horizon;
}

void CoordinatorNode::StartServices(bool rcp_collector) {
  services_running_ = true;
  std::vector<RcpService::ReplicaDesc> descs;
  for (const auto& [node, info] : selector_.replicas()) {
    descs.push_back({node, info.shard});
  }
  rcp_ = std::make_unique<RcpService>(sim_, network_, self_, std::move(descs),
                                      peer_cns_, &selector_,
                                      options_.rcp_interval);
  if (rcp_collector) {
    rcp_->Activate();
    sim_->Spawn(HeartbeatLoop());
    sim_->Spawn(HorizonLoop());
  }
}

void CoordinatorNode::BindService() {
  server_.Handle(kCnRcpUpdate, [this](NodeId from, RcpUpdateMessage update) {
    return HandleRcpUpdate(from, std::move(update));
  });
  server_.Handle(kCnDdlApply, [this](NodeId from, DdlRequest request) {
    return HandleDdlApply(from, std::move(request));
  });
  server_.Handle(kCnTxnHorizon, [this](NodeId from, rpc::EmptyMessage request) {
    return HandleTxnHorizon(from, std::move(request));
  });
  server_.Handle(kCnTxnOutcome, [this](NodeId from, TxnOutcomeRequest request) {
    return HandleTxnOutcome(from, std::move(request));
  });
}

sim::Task<StatusOr<TxnOutcomeReply>> CoordinatorNode::HandleTxnOutcome(
    NodeId from, TxnOutcomeRequest request) {
  metrics_.Add("cn.outcome_queries_served");
  TxnOutcomeReply reply;
  if (const TxnDecision* decision = decided_.Lookup(request.txn)) {
    reply.outcome = decision->committed ? TxnOutcome::kCommitted
                                        : TxnOutcome::kAborted;
    reply.ts = decision->ts;
  } else if (active_snapshots_.count(request.txn) > 0) {
    // The transaction is still open here: the decision may be seconds away
    // (e.g. a slow CommitTs). "Unknown" would license presumed abort, so
    // answer pending and make the asker retry.
    reply.outcome = TxnOutcome::kPending;
  }
  co_return reply;
}

sim::Task<StatusOr<TxnHorizonReply>> CoordinatorNode::HandleTxnHorizon(
    NodeId from, rpc::EmptyMessage request) {
  TxnHorizonReply reply;
  reply.horizon = TxnHorizon();
  co_return reply;
}

sim::Task<void> CoordinatorNode::HorizonLoop() {
  while (services_running_) {
    co_await sim_->Sleep(options_.horizon_interval);
    Timestamp horizon = TxnHorizon();
    if (!peer_cns_.empty()) {
      std::vector<NodeId> peers;
      for (NodeId peer : peer_cns_) {
        if (peer != self_) peers.push_back(peer);
      }
      auto results = co_await client_.CallAll(peers, kCnTxnHorizon,
                                              rpc::EmptyMessage{});
      for (size_t i = 0; i < peers.size(); ++i) {
        Timestamp& known = peer_horizons_[peers[i]];
        // On failure keep the last reported value: per-CN horizons are
        // monotone, so an old report is a valid (conservative) lower bound.
        if (results[i].ok()) known = std::max(known, (*results[i]).horizon);
        horizon = std::min(horizon, known);
      }
    }
    if (horizon == 0) continue;  // nothing learned yet
    ReadHorizonRequest push;
    push.horizon = horizon;
    for (NodeId primary : shard_primaries_) {
      client_.Send(primary, kDnReadHorizon, push);
    }
    metrics_.Add("cn.horizon_rounds");
  }
}

sim::Task<StatusOr<rpc::EmptyMessage>> CoordinatorNode::HandleRcpUpdate(
    NodeId from, RcpUpdateMessage update) {
  // Updates may race service startup: before the RCP service exists the
  // push is simply dropped (the next one arrives within a poll interval).
  if (rcp_ != nullptr) rcp_->ApplyUpdate(update);
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> CoordinatorNode::HandleDdlApply(
    NodeId from, DdlRequest request) {
  GDB_CO_RETURN_IF_ERROR(catalog_.ApplyDdl(request.payload, request.ts));
  co_return rpc::EmptyMessage{};
}

sim::Task<void> CoordinatorNode::HeartbeatLoop() {
  while (services_running_) {
    co_await sim_->Sleep(options_.heartbeat_interval);
    // A heartbeat transaction: obtain a commit timestamp and append a
    // HEARTBEAT record on every primary so idle shards' replicas keep
    // advancing their max commit timestamp.
    auto ts = co_await ts_source_->CommitTs(ts_source_->mode());
    if (!ts.ok()) continue;  // e.g. mid-transition; retry next tick
    ts_source_->RecordCommitted(*ts);
    TxnControlRequest heartbeat;
    heartbeat.ts = *ts;
    for (NodeId primary : shard_primaries_) {
      client_.Send(primary, kDnHeartbeat, heartbeat);
    }
    metrics_.Add("cn.heartbeats");
  }
}

// --- DDL --------------------------------------------------------------------

sim::Task<Status> CoordinatorNode::CreateTable(TableSchema schema) {
  co_await cpu_.Consume(options_.statement_cost);
  auto id = catalog_.CreateTable(std::move(schema));
  if (!id.ok()) co_return id.status();
  const TableSchema* created = catalog_.FindTableById(*id);
  GDB_CHECK(created != nullptr);

  auto ts = co_await ts_source_->CommitTs(ts_source_->mode());
  if (!ts.ok()) co_return ts.status();
  ts_source_->RecordCommitted(*ts);
  catalog_.RecordDdlTimestamp(*id, *ts);

  DdlRequest request;
  request.ts = *ts;
  request.payload = Catalog::MakeCreatePayload(*created);
  GDB_CO_RETURN_IF_ERROR(co_await Broadcast(ddl_targets_, kDnDdl, request));
  // Peer CNs apply the schema directly (they do not replay redo).
  GDB_CO_RETURN_IF_ERROR(co_await Broadcast(peer_cns_, kCnDdlApply, request));
  metrics_.Add("cn.ddls");
  co_return Status::OK();
}

sim::Task<Status> CoordinatorNode::DropTable(std::string name) {
  co_await cpu_.Consume(options_.statement_cost);
  const TableSchema* schema = catalog_.FindTable(name);
  if (schema == nullptr) co_return Status::NotFound("table " + name);
  auto ts = co_await ts_source_->CommitTs(ts_source_->mode());
  if (!ts.ok()) co_return ts.status();
  ts_source_->RecordCommitted(*ts);

  DdlRequest request;
  request.ts = *ts;
  request.payload = Catalog::MakeDropPayload(name);
  GDB_CO_RETURN_IF_ERROR(catalog_.ApplyDdl(request.payload, request.ts));
  GDB_CO_RETURN_IF_ERROR(co_await Broadcast(ddl_targets_, kDnDdl, request));
  GDB_CO_RETURN_IF_ERROR(co_await Broadcast(peer_cns_, kCnDdlApply, request));
  co_return Status::OK();
}

// --- Transactions -------------------------------------------------------------

bool CoordinatorNode::RorDdlVisible(const TableSchema& schema) const {
  const Timestamp rcp = this->rcp();
  // Condition 1: every DDL in the cluster has been replayed everywhere.
  if (rcp > catalog_.MaxDdlTimestamp()) return true;
  // Condition 2: all DDLs for this specific table have been replayed.
  return rcp > catalog_.LastDdlTimestamp(schema.id);
}

sim::Task<StatusOr<TxnHandle>> CoordinatorNode::Begin(
    bool read_only, bool single_shard, ReadOptions read_options) {
  co_await cpu_.Consume(options_.statement_cost);
  TxnHandle txn;
  txn.id = NextTxnId();
  txn.read_only = read_only;

  if (read_only && options_.enable_ror && rcp_ != nullptr && rcp() > 0) {
    const Timestamp rcp_ts = rcp();
    bool fresh_enough = true;
    if (read_options.max_staleness > 0 &&
        ts_source_->mode() == TimestampMode::kGclock) {
      const SimDuration staleness =
          clock_->Read() - static_cast<SimTime>(rcp_ts);
      fresh_enough = staleness <= read_options.max_staleness;
    }
    if (fresh_enough) {
      txn.use_ror = true;
      txn.snapshot = rcp_ts;
      txn.mode = ts_source_->mode();
      active_snapshots_[txn.id] = txn.snapshot;
      metrics_.Add("cn.ror_txns");
      co_return txn;
    }
    metrics_.Add("cn.ror_fallbacks");
  }

  auto grant = co_await ts_source_->BeginTs(read_only && single_shard);
  if (!grant.ok()) co_return grant.status();
  txn.snapshot = grant->ts;
  txn.mode = grant->mode;
  active_snapshots_[txn.id] = txn.snapshot;
  metrics_.Add("cn.txns");
  co_return txn;
}

StatusOr<ShardId> CoordinatorNode::ShardOf(const TableSchema& schema,
                                           const Row& row) const {
  const uint32_t num_shards = static_cast<uint32_t>(shard_primaries_.size());
  if (num_shards == 0) return Status::FailedPrecondition("no shards");
  if (schema.distribution == DistributionKind::kReplicated) {
    // Read any copy: rotate across the (precomputed) shards whose primaries
    // live in our region so one data node does not absorb every
    // replicated-table read.
    if (local_replicated_shards_.empty()) return ShardId{0};
    return local_replicated_shards_[replicated_rotation_++ %
                                    local_replicated_shards_.size()];
  }
  return RouteRowToShard(schema, row, num_shards);
}

std::vector<ShardId> CoordinatorNode::WriteTargets(const TableSchema& schema,
                                                   const Row& row) const {
  const uint32_t num_shards = static_cast<uint32_t>(shard_primaries_.size());
  if (schema.distribution == DistributionKind::kReplicated) {
    std::vector<ShardId> all(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) all[s] = s;
    return all;
  }
  return {RouteRowToShard(schema, row, num_shards)};
}

sim::Task<Status> CoordinatorNode::DoWrite(TxnHandle* txn,
                                           const TableSchema& schema,
                                           WriteRequest::Op op, RowKey key,
                                           std::string value,
                                           const Row& route_row) {
  std::vector<ShardId> targets = WriteTargets(schema, route_row);

  if (!options_.enable_write_batching) {
    WriteRequest request;
    request.op = op;
    request.txn = txn->id;
    request.snapshot = txn->snapshot;
    request.table = schema.id;
    request.key = std::move(key);
    request.value = std::move(value);
    co_return co_await DoWriteEager(txn, std::move(request),
                                    std::move(targets));
  }

  if (txn->writes == nullptr) {
    txn->writes =
        std::make_shared<TxnWriteBuffer>(sim_, txn->id, txn->snapshot);
  }
  // A flush that already failed dooms the transaction; stop buffering and
  // let the caller abort.
  GDB_CO_RETURN_IF_ERROR(txn->writes->error);

  if (txn->mode == TimestampMode::kEpoch) {
    txn->epoch_writes.emplace_back(schema.id, key);
  }
  WriteBatchRequest::Entry entry;
  entry.op = op;
  entry.table = schema.id;
  entry.key = std::move(key);
  entry.value = std::move(value);
  for (size_t i = 0; i < targets.size(); ++i) {
    const ShardId shard = targets[i];
    auto& sq = txn->writes->shards[shard];
    sq.queued.push_back(i + 1 == targets.size() ? std::move(entry) : entry);
    // The shard joins the write set at enqueue time: commit flushes to it,
    // and an abort after a partial flush must still reach it.
    txn->write_shards.insert(shard);
    if (sq.queued.size() >= options_.write_batch_max_entries) {
      StartFlush(txn->writes, shard);
    }
  }
  co_return Status::OK();
}

sim::Task<Status> CoordinatorNode::DoWriteEager(TxnHandle* txn,
                                                WriteRequest request,
                                                std::vector<ShardId> targets) {
  // Every target joins the write set before the outcome is known: a write
  // that failed after acquiring its row lock still needs the abort
  // broadcast to reach that shard.
  std::vector<NodeId> nodes;
  nodes.reserve(targets.size());
  for (ShardId shard : targets) {
    nodes.push_back(shard_primaries_[shard]);
    txn->write_shards.insert(shard);
  }
  if (txn->mode == TimestampMode::kEpoch) {
    txn->epoch_writes.emplace_back(request.table, request.key);
  }
  if (nodes.size() == 1) {
    auto result = co_await client_.Call(nodes[0], kDnWrite, request);
    co_return result.status();
  }
  // Replicated-table write: all shards in parallel, first error wins.
  auto results = co_await client_.CallAll(nodes, kDnWrite, request);
  co_return rpc::FirstError(results);
}

void CoordinatorNode::StartFlush(const std::shared_ptr<TxnWriteBuffer>& wb,
                                 ShardId shard) {
  auto it = wb->shards.find(shard);
  if (it == wb->shards.end() || it->second.queued.empty()) return;
  TxnWriteBuffer::ShardQueue& sq = it->second;
  if (!wb->error.ok()) {
    // The transaction is doomed: a batch sent now could re-acquire locks on
    // a shard that already rolled itself back after the failing entry, and
    // would stay orphaned if the CN died before the abort broadcast. Drop
    // the entries; EndTxn's abort broadcast cleans up what earlier batches
    // applied.
    sq.queued.clear();
    return;
  }
  if (sq.inflight) {
    // Per-shard serialization (see ShardQueue): the chained flush departs
    // when the in-flight batch completes, so batches reach the DN in
    // statement order regardless of network jitter.
    sq.flush_deferred = true;
    return;
  }
  WriteBatchRequest request;
  request.txn = wb->txn;
  request.snapshot = wb->snapshot;
  request.entries = std::move(sq.queued);
  sq.queued.clear();
  sq.inflight = true;
  metrics_.Add("cn.write_batches");
  metrics_.Hist("cn.write_batch_size")
      .Record(static_cast<int64_t>(request.entries.size()));
  wb->inflight.Add(1);
  ++wb->inflight_count;
  sim_->Spawn(FlushShardBatch(wb, shard, std::move(request)));
}

sim::Task<void> CoordinatorNode::FlushShardBatch(
    std::shared_ptr<TxnWriteBuffer> wb, ShardId shard,
    WriteBatchRequest request) {
  auto reply =
      co_await client_.Call(shard_primaries_[shard], kDnWriteBatch, request);
  if (!reply.ok()) {
    if (wb->error.ok()) wb->error = reply.status();
  } else {
    for (const auto& result : reply->results) {
      if (result.code == StatusCode::kOk) continue;
      metrics_.Add("cn.write_batch_entry_failures");
      if (wb->error.ok()) wb->error = result.ToStatus();
      break;
    }
  }
  TxnWriteBuffer::ShardQueue& sq = wb->shards[shard];
  sq.inflight = false;
  const bool deferred = sq.flush_deferred;
  sq.flush_deferred = false;
  // Chain before releasing the wait group: the count never dips to zero in
  // between, so a barrier already in Wait() covers the chained batch too.
  if (deferred) StartFlush(wb, shard);
  --wb->inflight_count;
  wb->inflight.Done();
}

sim::Task<Status> CoordinatorNode::FlushWrites(TxnHandle* txn) {
  auto wb = txn->writes;
  if (wb == nullptr) co_return Status::OK();
  for (auto& [shard, sq] : wb->shards) {
    if (!sq.queued.empty()) StartFlush(wb, shard);
  }
  co_await wb->inflight.Wait();
  co_return wb->error;
}

bool CoordinatorNode::NeedsFlushForKey(const TxnHandle& txn, TableId table,
                                       const RowKey& key) const {
  const TxnWriteBuffer* wb = txn.writes.get();
  if (wb == nullptr) return false;
  // A recorded failure must surface at the next barrier; flushes still on
  // the wire could race the read on the data node, so wait them out too.
  if (!wb->error.ok() || wb->inflight_count > 0) return true;
  for (const auto& [shard, sq] : wb->shards) {
    for (const auto& entry : sq.queued) {
      if (entry.table == table && entry.key == key) return true;
    }
  }
  return false;
}

bool CoordinatorNode::NeedsFlushForScan(const TxnHandle& txn, TableId table,
                                        const RowKey& start,
                                        const RowKey& end) const {
  const TxnWriteBuffer* wb = txn.writes.get();
  if (wb == nullptr) return false;
  if (!wb->error.ok() || wb->inflight_count > 0) return true;
  for (const auto& [shard, sq] : wb->shards) {
    for (const auto& entry : sq.queued) {
      if (entry.table == table && entry.key >= start &&
          (end.empty() || entry.key < end)) {
        return true;
      }
    }
  }
  return false;
}

sim::Task<Status> CoordinatorNode::Insert(TxnHandle* txn,
                                          const std::string& table,
                                          const Row& row) {
  co_await cpu_.Consume(options_.statement_cost);
  const TableSchema* schema = catalog_.FindTable(table);
  if (schema == nullptr) co_return Status::NotFound("table " + table);
  GDB_CO_RETURN_IF_ERROR(schema->ValidateRow(row));
  std::string value;
  EncodeRow(row, &value);
  co_return co_await DoWrite(txn, *schema, WriteRequest::Op::kInsert,
                             schema->PrimaryKeyOf(row), std::move(value),
                             row);
}

sim::Task<Status> CoordinatorNode::Update(TxnHandle* txn,
                                          const std::string& table,
                                          const Row& row) {
  co_await cpu_.Consume(options_.statement_cost);
  const TableSchema* schema = catalog_.FindTable(table);
  if (schema == nullptr) co_return Status::NotFound("table " + table);
  GDB_CO_RETURN_IF_ERROR(schema->ValidateRow(row));
  std::string value;
  EncodeRow(row, &value);
  co_return co_await DoWrite(txn, *schema, WriteRequest::Op::kUpdate,
                             schema->PrimaryKeyOf(row), std::move(value),
                             row);
}

sim::Task<Status> CoordinatorNode::Delete(TxnHandle* txn,
                                          const std::string& table,
                                          const Row& key_values) {
  co_await cpu_.Consume(options_.statement_cost);
  const TableSchema* schema = catalog_.FindTable(table);
  if (schema == nullptr) co_return Status::NotFound("table " + table);
  if (key_values.size() != schema->key_columns.size()) {
    co_return Status::InvalidArgument("key arity mismatch");
  }
  // Rebuild a sparse row to route and encode the key.
  Row sparse(schema->columns.size());
  for (size_t i = 0; i < schema->key_columns.size(); ++i) {
    sparse[schema->key_columns[i]] = key_values[i];
  }
  co_return co_await DoWrite(txn, *schema, WriteRequest::Op::kDelete,
                             schema->PrimaryKeyOf(sparse), "", sparse);
}

NodeId CoordinatorNode::PickReadNode(const TxnHandle& txn,
                                     const TableSchema& schema,
                                     ShardId shard) {
  return PickReadTarget(txn, RorDdlVisible(schema), shard);
}

NodeId CoordinatorNode::PickReadTarget(const TxnHandle& txn, bool ddl_visible,
                                       ShardId shard) {
  if (txn.use_ror && ddl_visible) {
    auto replica = selector_.Pick(shard, txn.snapshot);
    if (replica.ok()) {
      // The primary is also a candidate: a shard mastered in this region is
      // cheaper to read locally than from a remote replica. On a near-tie
      // prefer the replica (offload primaries, Section IV-B).
      const NodeId primary = shard_primaries_[shard];
      const SimDuration primary_cost =
          2 * network_->topology().OneWayLatency(
                  region_, network_->RegionOf(primary));
      const NodeSelector::ReplicaInfo* info = selector_.Get(*replica);
      const SimDuration replica_cost =
          info != nullptr ? info->Cost() : kSimTimeMax;
      if (replica_cost <=
          primary_cost + primary_cost / 4 + 1 * kMillisecond) {
        metrics_.Add("cn.replica_reads");
        return *replica;
      }
    }
  }
  metrics_.Add("cn.primary_reads");
  return shard_primaries_[shard];
}

sim::Task<StatusOr<std::optional<Row>>> CoordinatorNode::Get(
    TxnHandle* txn, const std::string& table, const Row& key_values) {
  co_await cpu_.Consume(options_.statement_cost);
  const TableSchema* schema = catalog_.FindTable(table);
  if (schema == nullptr) co_return Status::NotFound("table " + table);
  if (key_values.size() != schema->key_columns.size()) {
    co_return Status::InvalidArgument("key arity mismatch");
  }
  Row sparse(schema->columns.size());
  for (size_t i = 0; i < schema->key_columns.size(); ++i) {
    sparse[schema->key_columns[i]] = key_values[i];
  }
  auto shard = ShardOf(*schema, sparse);
  if (!shard.ok()) co_return shard.status();

  ReadRequest request;
  request.table = schema->id;
  request.key = schema->PrimaryKeyOf(sparse);
  request.snapshot = txn->snapshot;
  request.txn = txn->use_ror ? kInvalidTxnId : txn->id;
  NoteEpochRead(txn, request.table, request.key);

  // Read-your-writes: if this key is sitting in the write buffer (or any
  // flush is still in flight), flush before reading.
  if (NeedsFlushForKey(*txn, schema->id, request.key)) {
    metrics_.Add("cn.flush_barriers");
    GDB_CO_RETURN_IF_ERROR(co_await FlushWrites(txn));
  }

  const NodeId target = PickReadNode(*txn, *schema, *shard);
  const bool is_replica = target != shard_primaries_[*shard];
  auto result =
      co_await client_.Call(target, is_replica ? kRorRead : kDnRead, request);
  if (!result.ok() && is_replica &&
      rpc::IsTransportError(result.status())) {
    // Failover: exclude the unreachable replica and retry on the primary.
    // Application errors are not failed over — the primary would return
    // the same answer.
    selector_.MarkFailed(target);
    metrics_.Add("cn.replica_failovers");
    result = co_await client_.Call(shard_primaries_[*shard], kDnRead, request);
  }
  if (!result.ok()) co_return result.status();
  if (!result->found) co_return std::optional<Row>{};
  Row row;
  GDB_CO_RETURN_IF_ERROR(DecodeRow(Slice(result->value), &row));
  co_return std::optional<Row>(std::move(row));
}

sim::Task<StatusOr<std::vector<std::optional<Row>>>> CoordinatorNode::MultiGet(
    TxnHandle* txn, const std::string& table, const std::vector<Row>& keys) {
  std::vector<MultiGetKey> multi;
  multi.reserve(keys.size());
  for (const Row& key : keys) multi.push_back({table, key, false});
  co_return co_await MultiGet(txn, std::move(multi));
}

sim::Task<StatusOr<std::vector<std::optional<Row>>>> CoordinatorNode::MultiGet(
    TxnHandle* txn, std::vector<MultiGetKey> keys) {
  if (keys.empty()) co_return std::vector<std::optional<Row>>{};
  if (!options_.enable_read_batching) {
    co_return co_await MultiGetSerial(txn, std::move(keys));
  }
  // Same parse/plan/route CPU as the serial statements: the batch saves
  // round trips, not planning work.
  co_await cpu_.Consume(options_.statement_cost *
                        static_cast<SimDuration>(keys.size()));

  // Resolve every key to (table, encoded key, shard) and dedup exact
  // repeats — each unique key is fetched once and fanned back to every
  // requesting slot.
  struct UniqueKey {
    TableId table = 0;
    RowKey key;
    bool for_update = false;
    ShardId shard = kInvalidShardId;
    bool ddl_visible = false;
  };
  std::vector<UniqueKey> unique;
  std::vector<size_t> slot_of(keys.size());  // keys[i] -> unique index
  std::map<std::tuple<TableId, RowKey, bool>, size_t> dedup;
  bool needs_flush = false;
  for (size_t i = 0; i < keys.size(); ++i) {
    const MultiGetKey& mk = keys[i];
    const TableSchema* schema = catalog_.FindTable(mk.table);
    if (schema == nullptr) co_return Status::NotFound("table " + mk.table);
    if (mk.key_values.size() != schema->key_columns.size()) {
      co_return Status::InvalidArgument("key arity mismatch");
    }
    if (mk.for_update &&
        schema->distribution == DistributionKind::kReplicated) {
      co_return Status::Unimplemented("FOR UPDATE on replicated table");
    }
    Row sparse(schema->columns.size());
    for (size_t c = 0; c < schema->key_columns.size(); ++c) {
      sparse[schema->key_columns[c]] = mk.key_values[c];
    }
    UniqueKey uk;
    uk.table = schema->id;
    uk.key = schema->PrimaryKeyOf(sparse);
    uk.for_update = mk.for_update;
    // FOR UPDATE reads see the latest version under the row lock and need no
    // OCC validation; plain reads join the epoch read set.
    if (!mk.for_update) NoteEpochRead(txn, uk.table, uk.key);
    auto [it, inserted] =
        dedup.try_emplace({uk.table, uk.key, uk.for_update}, unique.size());
    slot_of[i] = it->second;
    if (!inserted) continue;
    if (mk.for_update) {
      // Lock-reads pin their home shard (the lock lives on the primary);
      // plain reads of replicated tables may rotate to any local copy.
      uk.shard = RouteRowToShard(
          *schema, sparse, static_cast<uint32_t>(shard_primaries_.size()));
    } else {
      auto shard = ShardOf(*schema, sparse);
      if (!shard.ok()) co_return shard.status();
      uk.shard = *shard;
    }
    uk.ddl_visible = RorDdlVisible(*schema);
    needs_flush = needs_flush || NeedsFlushForKey(*txn, uk.table, uk.key);
    unique.push_back(std::move(uk));
  }
  metrics_.Add("cn.multigets");
  metrics_.Hist("cn.read_batch_size")
      .Record(static_cast<int64_t>(unique.size()));

  // Read-your-writes across the whole key set: at most ONE barrier no
  // matter how many keys overlap the write buffer.
  if (needs_flush) {
    metrics_.Add("cn.multiget_flush_barriers");
    GDB_CO_RETURN_IF_ERROR(co_await FlushWrites(txn));
  }

  // Group unique keys by shard; route each group independently.
  std::map<ShardId, size_t> group_of;
  std::vector<ReadGroup> groups;
  for (size_t u = 0; u < unique.size(); ++u) {
    auto [it, inserted] = group_of.try_emplace(unique[u].shard, groups.size());
    if (inserted) {
      ReadGroup group;
      group.shard = unique[u].shard;
      group.request.snapshot = txn->snapshot;
      groups.push_back(std::move(group));
    }
    ReadGroup& group = groups[it->second];
    ReadBatchRequest::Entry entry;
    entry.table = unique[u].table;
    entry.key = unique[u].key;
    entry.for_update = unique[u].for_update;
    group.request.entries.push_back(std::move(entry));
    group.slots.push_back(u);
  }
  metrics_.Hist("cn.multiget_fanout")
      .Record(static_cast<int64_t>(groups.size()));

  for (ReadGroup& group : groups) {
    bool has_lock = false;
    bool ddl_visible = true;
    for (size_t u : group.slots) {
      has_lock = has_lock || unique[u].for_update;
      ddl_visible = ddl_visible && unique[u].ddl_visible;
    }
    if (has_lock) {
      // Locks live on the primary, and they must be released at
      // commit/abort: the shard joins the write set before the RPC departs,
      // so even a failed acquisition is covered by the abort broadcast.
      group.target = shard_primaries_[group.shard];
      group.is_replica = false;
      group.request.txn = txn->id;
      txn->write_shards.insert(group.shard);
    } else {
      group.target = PickReadTarget(*txn, ddl_visible, group.shard);
      group.is_replica = group.target != shard_primaries_[group.shard];
      group.request.txn = txn->use_ror ? kInvalidTxnId : txn->id;
    }
    metrics_.Add(group.is_replica ? "cn.read_batch_replica"
                                  : "cn.read_batch_primary");
  }

  // Fan every group out in parallel: the WAN cost of the whole MultiGet is
  // one round trip to the slowest group, not a sum over keys.
  sim::WaitGroup wg(sim_);
  for (ReadGroup& group : groups) {
    wg.Add(1);
    sim_->Spawn(CallReadGroup(&group, &wg));
  }
  co_await wg.Wait();

  // First error wins: group envelope errors, then per-entry errors (same
  // order the serial loop would surface them in).
  std::vector<std::optional<Row>> unique_rows(unique.size());
  for (ReadGroup& group : groups) {
    if (!group.reply.ok()) co_return group.reply.status();
    ReadBatchReply& reply = *group.reply;
    if (reply.results.size() != group.request.entries.size()) {
      co_return Status::Internal("read batch reply size mismatch");
    }
    for (size_t e = 0; e < reply.results.size(); ++e) {
      ReadBatchReply::EntryResult& result = reply.results[e];
      if (result.code != StatusCode::kOk) co_return result.ToStatus();
      if (!result.found) continue;
      Row row;
      GDB_CO_RETURN_IF_ERROR(DecodeRow(Slice(result.value), &row));
      unique_rows[group.slots[e]] = std::move(row);
    }
  }
  std::vector<std::optional<Row>> rows(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) rows[i] = unique_rows[slot_of[i]];
  co_return rows;
}

sim::Task<void> CoordinatorNode::CallReadGroup(ReadGroup* group,
                                               sim::WaitGroup* wg) {
  auto reply = co_await client_.Call(
      group->target, group->is_replica ? kRorReadBatch : kDnReadBatch,
      group->request);
  if (!reply.ok() && group->is_replica &&
      rpc::IsTransportError(reply.status())) {
    // Failover exactly as the serial path, scoped to this group: exclude
    // the unreachable replica and retry on the shard primary. The other
    // groups' results are unaffected.
    selector_.MarkFailed(group->target);
    metrics_.Add("cn.replica_failovers");
    reply = co_await client_.Call(shard_primaries_[group->shard],
                                  kDnReadBatch, group->request);
  }
  group->reply = std::move(reply);
  wg->Done();
}

sim::Task<StatusOr<std::vector<std::optional<Row>>>>
CoordinatorNode::MultiGetSerial(TxnHandle* txn, std::vector<MultiGetKey> keys) {
  std::vector<std::optional<Row>> rows(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i].for_update) {
      auto row = co_await GetForUpdate(txn, keys[i].table, keys[i].key_values);
      if (!row.ok()) co_return row.status();
      rows[i] = std::move(*row);
    } else {
      auto row = co_await Get(txn, keys[i].table, keys[i].key_values);
      if (!row.ok()) co_return row.status();
      rows[i] = std::move(*row);
    }
  }
  co_return rows;
}

sim::Task<StatusOr<std::optional<Row>>> CoordinatorNode::GetForUpdate(
    TxnHandle* txn, const std::string& table, const Row& key_values) {
  co_await cpu_.Consume(options_.statement_cost);
  const TableSchema* schema = catalog_.FindTable(table);
  if (schema == nullptr) co_return Status::NotFound("table " + table);
  if (key_values.size() != schema->key_columns.size()) {
    co_return Status::InvalidArgument("key arity mismatch");
  }
  if (schema->distribution == DistributionKind::kReplicated) {
    co_return Status::Unimplemented("FOR UPDATE on replicated table");
  }
  Row sparse(schema->columns.size());
  for (size_t i = 0; i < schema->key_columns.size(); ++i) {
    sparse[schema->key_columns[i]] = key_values[i];
  }
  const uint32_t num_shards = static_cast<uint32_t>(shard_primaries_.size());
  const ShardId shard = RouteRowToShard(*schema, sparse, num_shards);

  ReadRequest request;
  request.table = schema->id;
  request.key = schema->PrimaryKeyOf(sparse);
  request.snapshot = txn->snapshot;
  request.txn = txn->id;

  if (NeedsFlushForKey(*txn, schema->id, request.key)) {
    metrics_.Add("cn.flush_barriers");
    GDB_CO_RETURN_IF_ERROR(co_await FlushWrites(txn));
  }

  auto result =
      co_await client_.Call(shard_primaries_[shard], kDnLockRead, request);
  if (!result.ok()) co_return result.status();
  // The lock must be released at commit/abort, so the shard joins the
  // transaction's write set even if no write follows.
  txn->write_shards.insert(shard);
  if (!result->found) co_return std::optional<Row>{};
  Row row;
  GDB_CO_RETURN_IF_ERROR(DecodeRow(Slice(result->value), &row));
  co_return std::optional<Row>(std::move(row));
}

sim::Task<StatusOr<std::vector<Row>>> CoordinatorNode::ScanRange(
    TxnHandle* txn, const std::string& table, const RowKey& start,
    const RowKey& end, uint32_t limit, const Value* route_value) {
  co_await cpu_.Consume(options_.statement_cost);
  const TableSchema* schema = catalog_.FindTable(table);
  if (schema == nullptr) co_return Status::NotFound("table " + table);

  ScanRequest request;
  request.table = schema->id;
  request.start = start;
  request.end = end;
  request.snapshot = txn->snapshot;
  request.txn = txn->use_ror ? kInvalidTxnId : txn->id;
  request.limit = limit;

  if (NeedsFlushForScan(*txn, schema->id, start, end)) {
    metrics_.Add("cn.flush_barriers");
    GDB_CO_RETURN_IF_ERROR(co_await FlushWrites(txn));
  }

  // Determine the shards to touch: a distribution-key-prefixed scan hits
  // exactly one shard; otherwise broadcast to every shard and merge.
  std::vector<ShardId> scan_shards;
  const uint32_t total_shards =
      static_cast<uint32_t>(shard_primaries_.size());
  if (schema->distribution == DistributionKind::kReplicated) {
    auto shard = ShardOf(*schema, {});
    if (!shard.ok()) co_return shard.status();
    scan_shards.push_back(*shard);
  } else if (route_value != nullptr) {
    scan_shards.push_back(RouteToShard(*schema, *route_value, total_shards));
  } else {
    for (ShardId s = 0; s < total_shards; ++s) scan_shards.push_back(s);
  }

  // Scatter: replicas answer ror.scan, primaries dn.scan, in one sweep.
  const size_t num_shards = scan_shards.size();
  std::vector<std::pair<NodeId, rpc::RpcMethod<ScanRequest, ScanReply>>>
      targets;
  targets.reserve(num_shards);
  std::vector<bool> used_replica(num_shards, false);
  for (size_t i = 0; i < num_shards; ++i) {
    const ShardId s = scan_shards[i];
    const NodeId target = PickReadNode(*txn, *schema, s);
    used_replica[i] = target != shard_primaries_[s];
    targets.emplace_back(target, used_replica[i] ? kRorScan : kDnScan);
  }
  auto results = co_await client_.CallEach(targets, request);

  std::vector<std::pair<RowKey, std::string>> merged;
  for (size_t i = 0; i < num_shards; ++i) {
    const ShardId s = scan_shards[i];
    if (!results[i].ok()) {
      if (!used_replica[i] ||
          !rpc::IsTransportError(results[i].status())) {
        co_return results[i].status();
      }
      // Replica failed mid-query: retry this shard on the primary.
      selector_.MarkFailed(targets[i].first);
      metrics_.Add("cn.replica_failovers");
      auto retry =
          co_await client_.Call(shard_primaries_[s], kDnScan, request);
      if (!retry.ok()) co_return retry.status();
      results[i] = std::move(retry);
    }
    for (auto& row : results[i]->rows) merged.push_back(std::move(row));
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (merged.size() > limit) merged.resize(limit);

  std::vector<Row> rows;
  rows.reserve(merged.size());
  for (const auto& [key, value] : merged) {
    Row row;
    GDB_CO_RETURN_IF_ERROR(DecodeRow(Slice(value), &row));
    rows.push_back(std::move(row));
  }
  co_return rows;
}

sim::Task<StatusOr<std::vector<ScanResult>>> CoordinatorNode::ScanBatch(
    TxnHandle* txn, std::vector<ScanSpec> specs) {
  if (specs.empty()) co_return std::vector<ScanResult>{};
  if (!options_.enable_scan_batching) {
    co_return co_await ScanBatchSerial(txn, std::move(specs));
  }
  co_await cpu_.Consume(options_.statement_cost *
                        static_cast<SimDuration>(specs.size()));
  metrics_.Add("cn.scan_batches");
  metrics_.Hist("cn.scan_batch_size")
      .Record(static_cast<int64_t>(specs.size()));

  // Resolve every spec's table, shard set, and ROR DDL visibility up front;
  // the read-your-writes check runs across ALL ranges (and join tables, for
  // which buffered writes anywhere in the table count) so the whole batch
  // needs at most one flush barrier.
  struct SpecPlan {
    TableId table = kInvalidTableId;
    TableId join_table = kInvalidTableId;
    std::vector<ShardId> shards;
    bool ddl_visible = true;
  };
  std::vector<SpecPlan> plans(specs.size());
  const uint32_t total_shards =
      static_cast<uint32_t>(shard_primaries_.size());
  bool needs_flush = false;
  for (size_t i = 0; i < specs.size(); ++i) {
    const ScanSpec& spec = specs[i];
    const TableSchema* schema = catalog_.FindTable(spec.table);
    if (schema == nullptr) co_return Status::NotFound("table " + spec.table);
    SpecPlan& plan = plans[i];
    plan.table = schema->id;
    plan.ddl_visible = RorDdlVisible(*schema);
    if (!spec.join_table.empty()) {
      const TableSchema* join_schema = catalog_.FindTable(spec.join_table);
      if (join_schema == nullptr) {
        co_return Status::NotFound("table " + spec.join_table);
      }
      plan.join_table = join_schema->id;
      plan.ddl_visible = plan.ddl_visible && RorDdlVisible(*join_schema);
      // Join keys derive from scanned rows, so the overlap with this txn's
      // buffered writes can't be computed range-wise: check the whole table.
      needs_flush =
          needs_flush || NeedsFlushForScan(*txn, join_schema->id, "", "");
    }
    if (schema->distribution == DistributionKind::kReplicated) {
      auto shard = ShardOf(*schema, {});
      if (!shard.ok()) co_return shard.status();
      plan.shards.push_back(*shard);
    } else if (spec.route.has_value()) {
      plan.shards.push_back(RouteToShard(*schema, *spec.route, total_shards));
    } else {
      for (ShardId s = 0; s < total_shards; ++s) plan.shards.push_back(s);
    }
    needs_flush = needs_flush ||
                  NeedsFlushForScan(*txn, plan.table, spec.start, spec.end);
  }
  if (needs_flush) {
    metrics_.Add("cn.scan_flush_barriers");
    GDB_CO_RETURN_IF_ERROR(co_await FlushWrites(txn));
  }

  // Group ranges by shard: each group becomes ONE streaming RPC carrying
  // every range that shard serves, in spec order.
  std::vector<ScanGroup> groups;
  std::map<ShardId, size_t> group_of;
  for (size_t i = 0; i < specs.size(); ++i) {
    const ScanSpec& spec = specs[i];
    const SpecPlan& plan = plans[i];
    ScanBatchRequest::Range range;
    range.table = plan.table;
    range.start = spec.start;
    range.end = spec.end;
    range.limit = spec.limit;
    range.reverse = spec.reverse;
    range.filter_col = spec.filter_col;
    range.filter_eq = spec.filter_eq;
    if (plan.join_table != kInvalidTableId) {
      range.join_table = plan.join_table;
      range.join_key_prefix = spec.join_key_prefix;
      range.join_key_cols = spec.join_key_cols;
      range.join_prefix = spec.join_prefix;
      range.join_limit = spec.join_limit;
    }
    for (ShardId s : plan.shards) {
      auto [it, inserted] = group_of.try_emplace(s, groups.size());
      if (inserted) {
        groups.emplace_back();
        groups.back().shard = s;
      }
      ScanGroup& group = groups[it->second];
      group.base.ranges.push_back(range);
      group.spec_of.push_back(i);
      group.ddl_visible = group.ddl_visible && plan.ddl_visible;
    }
  }

  for (ScanGroup& group : groups) {
    group.target = PickReadTarget(*txn, group.ddl_visible, group.shard);
    group.is_replica = group.target != shard_primaries_[group.shard];
    group.base.snapshot = txn->snapshot;
    group.base.txn = txn->use_ror ? kInvalidTxnId : txn->id;
    group.base.max_bytes = options_.scan_chunk_bytes;
    metrics_.Add(group.is_replica ? "cn.scan_batch_replica"
                                  : "cn.scan_batch_primary");
  }
  metrics_.Hist("cn.scan_fanout").Record(static_cast<int64_t>(groups.size()));

  sim::WaitGroup wg(sim_);
  for (ScanGroup& group : groups) {
    wg.Add(1);
    sim_->Spawn(CallScanGroup(&group, &wg));
  }
  co_await wg.Wait();
  for (const ScanGroup& group : groups) {
    if (!group.error.ok()) co_return group.error;
  }

  // Per spec: ordered k-way merge of the shard cursors. Each cursor is
  // key-sorted the way the server emitted it (ascending; descending for
  // reverse ranges), so a streaming merge yields the global order without a
  // full re-sort, capped at the spec's limit.
  std::vector<ScanResult> out(specs.size());
  int64_t total_merged = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    std::vector<const std::vector<std::pair<RowKey, std::string>>*> parts;
    std::vector<std::pair<RowKey, std::string>> joined;
    for (const ScanGroup& group : groups) {
      for (size_t r = 0; r < group.spec_of.size(); ++r) {
        if (group.spec_of[r] != i) continue;
        if (!group.rows[r].empty()) parts.push_back(&group.rows[r]);
        for (const auto& row : group.joined[r]) joined.push_back(row);
      }
    }
    const bool reverse = specs[i].reverse;
    std::vector<size_t> cursor(parts.size(), 0);
    std::vector<const std::pair<RowKey, std::string>*> merged;
    while (merged.size() < specs[i].limit) {
      int best = -1;
      for (size_t p = 0; p < parts.size(); ++p) {
        if (cursor[p] >= parts[p]->size()) continue;
        if (best < 0) {
          best = static_cast<int>(p);
          continue;
        }
        const RowKey& a = (*parts[p])[cursor[p]].first;
        const RowKey& b = (*parts[best])[cursor[best]].first;
        if (reverse ? (a > b) : (a < b)) best = static_cast<int>(p);
      }
      if (best < 0) break;
      merged.push_back(&(*parts[best])[cursor[best]++]);
    }
    total_merged += static_cast<int64_t>(merged.size());
    out[i].rows.reserve(merged.size());
    for (const auto* row : merged) {
      Row decoded;
      GDB_CO_RETURN_IF_ERROR(DecodeRow(Slice(row->second), &decoded));
      out[i].rows.push_back(std::move(decoded));
    }
    // Joined rows are deduped by key across shards AND chunks — the
    // executor's dedup set is per-chunk, so a join key revisited after a
    // continuation comes back twice.
    std::sort(joined.begin(), joined.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    joined.erase(std::unique(joined.begin(), joined.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 joined.end());
    // A shard joins every row it returns, but the global limit can drop
    // some of those rows in the merge — their lookups must not leak into
    // the result (the serial baseline only joins surviving rows). Keep
    // exactly the entries whose key derives from a merged row: an exact
    // match for point joins, a prefix match for prefix joins (join keys
    // encode the same column sequence, so they are mutually prefix-free
    // and the sorted predecessor is the only candidate prefix).
    if (!specs[i].join_table.empty()) {
      std::set<RowKey> keep;
      for (const Row& row : out[i].rows) {
        RowKey key = specs[i].join_key_prefix;
        bool key_ok = true;
        for (uint32_t col : specs[i].join_key_cols) {
          if (col >= row.size()) {
            key_ok = false;
            break;
          }
          EncodeKeyPart(row[col], &key);
        }
        if (key_ok) keep.insert(std::move(key));
      }
      auto survives = [&](const RowKey& k) {
        if (!specs[i].join_prefix) return keep.count(k) > 0;
        auto it = keep.upper_bound(k);
        if (it == keep.begin()) return false;
        --it;
        return k.compare(0, it->size(), *it) == 0;
      };
      joined.erase(
          std::remove_if(joined.begin(), joined.end(),
                         [&](const auto& p) { return !survives(p.first); }),
          joined.end());
    }
    out[i].joined.reserve(joined.size());
    for (const auto& [key, value] : joined) {
      Row decoded;
      GDB_CO_RETURN_IF_ERROR(DecodeRow(Slice(value), &decoded));
      out[i].joined.push_back(std::move(decoded));
    }
  }
  metrics_.Hist("cn.scan_merge_rows").Record(total_merged);
  co_return out;
}

sim::Task<void> CoordinatorNode::CallScanGroup(ScanGroup* group,
                                               sim::WaitGroup* wg) {
  const size_t num_ranges = group->base.ranges.size();
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool on_replica = group->is_replica && attempt == 0;
    const NodeId target =
        on_replica ? group->target : shard_primaries_[group->shard];
    group->rows.assign(num_ranges, {});
    group->joined.assign(num_ranges, {});
    group->error = Status::OK();
    group->chunks = 0;
    ScanBatchRequest request = group->base;
    bool failover = false;
    while (true) {
      // Two awaits, not one ternary: GCC 12 double-destroys the Task
      // temporary a ternary operand materializes inside a co_await.
      StatusOr<ScanBatchReply> reply{Status::Unavailable("not attempted")};
      if (on_replica) {
        reply = co_await client_.Call(target, kRorScanBatch, request);
      } else {
        reply = co_await client_.Call(target, kDnScanBatch, request);
      }
      if (!reply.ok()) {
        if (on_replica && rpc::IsTransportError(reply.status())) {
          // Restart the WHOLE group on the primary: splicing chunks from
          // two nodes would interleave rows from different store states.
          selector_.MarkFailed(target);
          metrics_.Add("cn.replica_failovers");
          failover = true;
          break;
        }
        group->error = reply.status();
        break;
      }
      ++group->chunks;
      metrics_.Add("cn.scan_chunks");
      if (reply->results.size() != num_ranges) {
        group->error =
            Status::Internal("scan batch reply/request range mismatch");
        break;
      }
      for (size_t r = request.resume_range; r < num_ranges; ++r) {
        ScanBatchReply::RangeResult& result = reply->results[r];
        for (auto& row : result.rows) {
          group->rows[r].push_back(std::move(row));
        }
        for (auto& row : result.joined) {
          group->joined[r].push_back(std::move(row));
        }
      }
      if (!reply->truncated) break;
      const uint32_t rr = reply->resume_range;
      if (rr >= num_ranges || rr < request.resume_range) {
        group->error = Status::Internal("scan batch resume cursor invalid");
        break;
      }
      // Client-driven continuation: the server kept no cursor, so the next
      // chunk re-describes the remaining work — the resumed range restarts
      // at the resume key with its limit shrunk by the rows already in
      // hand. An empty resume key means the range never started.
      request.resume_range = rr;
      if (!reply->resume_key.empty()) {
        request.ranges[rr].start = reply->resume_key;
        const uint32_t orig = group->base.ranges[rr].limit;
        const uint32_t got =
            static_cast<uint32_t>(std::min<size_t>(group->rows[rr].size(),
                                                   orig));
        request.ranges[rr].limit = orig - got;
      }
    }
    if (!failover) break;
  }
  wg->Done();
}

sim::Task<StatusOr<std::vector<ScanResult>>> CoordinatorNode::ScanBatchSerial(
    TxnHandle* txn, std::vector<ScanSpec> specs) {
  std::vector<ScanResult> out(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const ScanSpec& spec = specs[i];
    const Value* route = spec.route.has_value() ? &*spec.route : nullptr;
    // Filter and reverse are applied client-side here, so the limit cannot
    // ride down with the scan — it would keep the wrong rows.
    const bool postprocess = spec.filter_col >= 0 || spec.reverse;
    const uint32_t fetch_limit = postprocess ? 0xffffffffu : spec.limit;
    auto scanned = co_await ScanRange(txn, spec.table, spec.start, spec.end,
                                      fetch_limit, route);
    if (!scanned.ok()) co_return scanned.status();
    std::vector<Row> rows = std::move(*scanned);
    if (spec.filter_col >= 0) {
      rows.erase(std::remove_if(
                     rows.begin(), rows.end(),
                     [&spec](const Row& row) {
                       if (spec.filter_col >=
                           static_cast<int32_t>(row.size())) {
                         return true;
                       }
                       const int64_t* v =
                           std::get_if<int64_t>(&row[spec.filter_col]);
                       return v == nullptr || *v != spec.filter_eq;
                     }),
                 rows.end());
    }
    if (spec.reverse) {
      if (rows.size() > spec.limit) {
        rows.erase(rows.begin(), rows.end() - spec.limit);
      }
      std::reverse(rows.begin(), rows.end());
    } else if (rows.size() > spec.limit) {
      rows.resize(spec.limit);
    }
    if (!spec.join_table.empty()) {
      // One serial lookup per distinct join key — the transaction shape the
      // batched path collapses into its single round trip. Lookup keys are
      // prefix-free, so sorting lookups by key yields the same global
      // joined-row order the batched merge produces.
      std::set<RowKey> seen;
      std::vector<std::pair<RowKey, std::vector<Row>>> lookups;
      for (const Row& row : rows) {
        RowKey key = spec.join_key_prefix;
        bool valid = true;
        for (uint32_t col : spec.join_key_cols) {
          if (col >= row.size()) {
            valid = false;
            break;
          }
          EncodeKeyPart(row[col], &key);
        }
        if (!valid || !seen.insert(key).second) continue;
        const uint32_t join_limit = spec.join_prefix ? spec.join_limit : 1;
        auto looked = co_await ScanRange(txn, spec.join_table, key,
                                         PrefixSuccessor(key), join_limit,
                                         route);
        if (!looked.ok()) co_return looked.status();
        if (!looked->empty()) {
          lookups.emplace_back(std::move(key), std::move(*looked));
        }
      }
      std::sort(lookups.begin(), lookups.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& [key, found] : lookups) {
        for (Row& row : found) out[i].joined.push_back(std::move(row));
      }
    }
    out[i].rows = std::move(rows);
  }
  co_return out;
}

sim::Task<Status> CoordinatorNode::EndTxn(TxnHandle* txn, bool commit) {
  co_await cpu_.Consume(options_.statement_cost);

  // Epoch/group commit (DESIGN.md §15): a writing transaction begun under
  // EPOCH joins the open epoch instead of running an individual 2PC. The
  // ts_source_ mode is re-checked so transactions straddling an EPOCH -> GTM
  // demotion fall through to the individual path (their EPOCH-mode CommitTs
  // routes to the shared GTM counter, so the order stays total).
  if (commit && txn->mode == TimestampMode::kEpoch &&
      ts_source_->mode() == TimestampMode::kEpoch &&
      !txn->write_shards.empty()) {
    co_return co_await CommitViaEpoch(txn);
  }

  // Resolve the buffered-write pipeline first. A commit sends the final
  // flush just ahead of precommit; an abort discards entries that were
  // never sent but must still drain in-flight flushes — the abort broadcast
  // below must not overtake a batch still on the wire, or the locks that
  // batch acquires would be orphaned.
  Status flushed = Status::OK();
  if (txn->writes != nullptr) {
    if (commit) {
      flushed = co_await FlushWrites(txn);
    } else {
      for (auto& [shard, sq] : txn->writes->shards) sq.queued.clear();
      co_await txn->writes->inflight.Wait();
    }
  }

  if (txn->write_shards.empty()) {
    metrics_.Add(commit ? "cn.readonly_commits" : "cn.readonly_aborts");
    co_return Status::OK();
  }
  const std::vector<NodeId> shards = [&] {
    std::vector<NodeId> nodes;
    for (ShardId s : txn->write_shards) nodes.push_back(shard_primaries_[s]);
    return nodes;
  }();
  const bool two_phase = txn->write_shards.size() > 1;

  TxnControlRequest control;
  control.txn = txn->id;
  control.two_phase = two_phase;
  // The participant list rides on every control message; the PREPARE record
  // persists it so a promoted replica knows which peers can resolve the
  // transaction if this CN is gone (DESIGN.md §13).
  control.participants.assign(txn->write_shards.begin(),
                              txn->write_shards.end());

  if (!commit) {
    metrics_.Add("cn.aborts");
    decided_.Record(txn->id, false, 0);
    co_return co_await DriveDecision(txn, /*commit=*/false, control);
  }
  if (!flushed.ok()) {
    // A buffered write failed: the failing shard already rolled itself
    // back; tell the rest.
    metrics_.Add("cn.batch_flush_aborts");
    decided_.Record(txn->id, false, 0);
    (void)co_await Broadcast(shards, kDnAbort, control);
    co_return flushed;
  }

  // Phase 1: PENDING_COMMIT (one-shard) or PREPARE (2PC) on every write
  // shard — before the commit timestamp exists (Section IV-A). The record
  // carries a lower bound on the eventual commit timestamp (the clock's
  // current lower bound under GClock, the largest seen counter under GTM):
  // replica readers below that bound need not wait on the pending tuples.
  if (txn->mode == TimestampMode::kGclock) {
    control.ts = static_cast<Timestamp>(
        std::max<SimTime>(0, clock_->Read() - clock_->ErrorBound()));
  } else {
    control.ts = ts_source_->max_issued();
  }
  const SimTime precommit_start = sim_->now();
  Status precommit = co_await Broadcast(shards, kDnPrecommit, control);
  metrics_.Hist("cn.precommit_us")
      .Record((sim_->now() - precommit_start) / kMicrosecond);
  control.ts = 0;
  if (!precommit.ok()) {
    // The decision is abort; record it before telling anyone, so an
    // in-doubt resolver that beats the broadcast already finds it.
    decided_.Record(txn->id, false, 0);
    (void)co_await Broadcast(shards, kDnAbort, control);
    metrics_.Add("cn.precommit_aborts");
    co_return precommit;
  }

  // Commit timestamp (includes GClock commit-wait / DUAL rules).
  const SimTime ts_start = sim_->now();
  auto ts = co_await ts_source_->CommitTs(txn->mode);
  metrics_.Hist("cn.commit_ts_us").Record((sim_->now() - ts_start) /
                                          kMicrosecond);
  if (!ts.ok()) {
    decided_.Record(txn->id, false, 0);
    (void)co_await Broadcast(shards, kDnAbort, control);
    metrics_.Add("cn.ts_aborts");
    co_return ts.status();
  }

  // Phase 2: commit everywhere (synchronous replication waits inside). The
  // decision is recorded *before* the first delivery attempt: from here the
  // transaction is committed no matter which sends die, and the cache entry
  // is what a promoted primary's in-doubt resolver reads.
  control.ts = *ts;
  decided_.Record(txn->id, true, *ts);
  const SimTime phase2_start = sim_->now();
  Status committed = co_await DriveDecision(txn, /*commit=*/true, control);
  metrics_.Hist("cn.commit_phase2_us")
      .Record((sim_->now() - phase2_start) / kMicrosecond);
  if (!committed.ok()) co_return committed;
  ts_source_->RecordCommitted(*ts);
  metrics_.Add("cn.commits");
  metrics_.Add(two_phase ? "cn.2pc_commits" : "cn.1pc_commits");
  co_return Status::OK();
}

sim::Task<Status> CoordinatorNode::CommitViaEpoch(TxnHandle* txn) {
  // Await only the flushes already on the wire; the queued tail is handed to
  // the epoch manager and rides inside the grouped kDnEpochPrepare instead
  // of a final kDnWriteBatch round. That keeps the member's commit tail at
  // (seal wait + one grouped WAN round trip) — the amortization the epoch
  // protocol exists for.
  if (txn->writes != nullptr) {
    co_await txn->writes->inflight.Wait();
    if (!txn->writes->error.ok()) {
      // A buffered write failed: the failing shard already rolled itself
      // back; tell the rest (mirror of the individual-2PC flush-fail path).
      metrics_.Add("cn.batch_flush_aborts");
      decided_.Record(txn->id, false, 0);
      TxnControlRequest control;
      control.txn = txn->id;
      control.two_phase = txn->write_shards.size() > 1;
      control.participants.assign(txn->write_shards.begin(),
                                  txn->write_shards.end());
      std::vector<NodeId> nodes;
      for (ShardId s : txn->write_shards) nodes.push_back(shard_primaries_[s]);
      (void)co_await Broadcast(nodes, kDnAbort, control);
      co_return txn->writes->error;
    }
  }

  EpochManager::CommitArgs args;
  args.txn = txn->id;
  args.snapshot = txn->snapshot;
  args.participants.assign(txn->write_shards.begin(), txn->write_shards.end());
  if (txn->writes != nullptr) {
    for (auto& [shard, sq] : txn->writes->shards) {
      if (sq.queued.empty()) continue;
      args.pending_writes[shard] = std::move(sq.queued);
      sq.queued.clear();
    }
  }
  args.reads = std::move(txn->epoch_reads);
  args.writes = std::move(txn->epoch_writes);

  const SimTime start = sim_->now();
  auto ts = co_await epoch_mgr_->Commit(std::move(args));
  metrics_.Hist("cn.epoch_commit_us")
      .Record((sim_->now() - start) / kMicrosecond);
  if (!ts.ok()) {
    metrics_.Add("cn.epoch_member_aborts");
    co_return ts.status();
  }
  // The epoch manager already recorded the decision and the committed
  // timestamp watermark; only the CN-level counters remain.
  metrics_.Add("cn.commits");
  metrics_.Add("cn.epoch_commits");
  co_return Status::OK();
}

sim::Task<Status> CoordinatorNode::DriveDecision(TxnHandle* txn, bool commit,
                                                 TxnControlRequest control) {
  const auto method = commit ? kDnCommit : kDnAbort;
  // Aborts re-drive only briefly: they are lock cleanup, and a promoted
  // primary's in-doubt resolver reads the abort from the decision cache
  // anyway. Commits re-drive until the limit — the decision must land.
  const int retry_limit = commit ? options_.commit_retry_limit : 2;
  int attempts = 0;
  for (;;) {
    // Recompute targets per attempt: UpdateShardPrimary re-points a shard at
    // its promoted replica between attempts, which is exactly the node the
    // re-drive must reach.
    std::vector<NodeId> nodes;
    nodes.reserve(txn->write_shards.size());
    for (ShardId s : txn->write_shards) nodes.push_back(shard_primaries_[s]);
    Status status = co_await Broadcast(nodes, method, control);
    if (status.ok() || !rpc::IsTransportError(status) ||
        attempts >= retry_limit) {
      co_return status;
    }
    ++attempts;
    metrics_.Add("cn.commit_retries");
    co_await sim_->Sleep(options_.commit_retry_backoff);
  }
}

sim::Task<Status> CoordinatorNode::Commit(TxnHandle* txn) {
  Status status = co_await EndTxn(txn, /*commit=*/true);
  // Deregister only after the protocol fully resolved: the snapshot must
  // hold the GC horizon down for as long as any read of it might still run.
  active_snapshots_.erase(txn->id);
  co_return status;
}

sim::Task<Status> CoordinatorNode::Abort(TxnHandle* txn) {
  Status status = co_await EndTxn(txn, /*commit=*/false);
  active_snapshots_.erase(txn->id);
  co_return status;
}

}  // namespace globaldb
