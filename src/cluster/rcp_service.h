#ifndef GLOBALDB_SRC_CLUSTER_RCP_SERVICE_H_
#define GLOBALDB_SRC_CLUSTER_RCP_SERVICE_H_

#include <map>
#include <set>
#include <vector>

#include "src/cluster/messages.h"
#include "src/cluster/node_selector.h"
#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/network.h"

namespace globaldb {

/// Computes and distributes the Replica Consistency Point (Section IV-A).
///
/// One CN is the *collector*: it periodically polls every replica's max
/// commit timestamp, computes
///   RCP = min over shards of (max over that shard's replicas of max_ts)
/// and pushes the result — together with the per-replica statuses feeding
/// the skyline — to all CNs. The RCP only moves forward, so clients
/// re-routed between CNs never observe freshness going backwards. If the
/// collector dies, the cluster activates the service on another CN, which
/// resumes from the latest RCP it saw (monotonicity is preserved because
/// every CN tracks the distributed maximum).
class RcpService {
 public:
  struct ReplicaDesc {
    NodeId node;
    ShardId shard;
  };

  RcpService(sim::Simulator* sim, sim::Network* network, NodeId self,
             std::vector<ReplicaDesc> replicas, std::vector<NodeId> peer_cns,
             NodeSelector* selector, SimDuration poll_interval);

  RcpService(const RcpService&) = delete;
  RcpService& operator=(const RcpService&) = delete;

  /// Starts/stops the collector loop on this CN (exactly one CN should be
  /// active at a time; failover activates another).
  void Activate();
  void Deactivate() { active_ = false; }
  bool active() const { return active_; }

  /// Current replica consistency point as known by this CN (monotonic).
  Timestamp rcp() const { return rcp_; }

  /// Raises the local RCP (applied from collector broadcasts).
  void ObserveRcp(Timestamp rcp) { rcp_ = std::max(rcp_, rcp); }

  /// Drops a replica from the poll set (it was promoted to primary). Safe
  /// for the RCP: reads of a shard left without replicas fall back to its
  /// primary, which is never stale.
  void RemoveReplica(NodeId node);

  /// Handler body for kCnRcpUpdate (registered by the CN).
  void ApplyUpdate(const RcpUpdateMessage& update);

  Metrics& metrics() { return metrics_; }
  /// RPC client used for polling and pushes (poll latency stats live here).
  rpc::RpcClient& rpc_client() { return client_; }
  /// Collector-side view of the last successful poll per replica. A replica
  /// whose last poll failed has no entry here (see PollOnce) — tests assert
  /// on this to catch stale-status regressions.
  const std::map<NodeId, RorStatusReply>& statuses() const {
    return statuses_;
  }
  const std::set<NodeId>& failed() const { return failed_; }

 private:
  sim::Task<void> CollectorLoop();
  sim::Task<void> PollOnce();
  RcpUpdateMessage MakeUpdate() const;

  sim::Simulator* sim_;
  NodeId self_;
  std::vector<ReplicaDesc> replicas_;
  std::vector<NodeId> peer_cns_;
  NodeSelector* selector_;
  SimDuration poll_interval_;
  rpc::RpcClient client_;

  bool active_ = false;
  Timestamp rcp_ = 0;
  /// Collector-side last polled status per replica.
  std::map<NodeId, RorStatusReply> statuses_;
  /// Replicas whose last poll failed; broadcast as unhealthy until a poll
  /// succeeds again (the collector keeps probing them every interval).
  std::set<NodeId> failed_;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_RCP_SERVICE_H_
