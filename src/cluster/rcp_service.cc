#include "src/cluster/rcp_service.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/sim/future.h"

namespace globaldb {

namespace {

/// Polls must never block the collector loop behind retries: a dead replica
/// is simply marked failed and retried at the next poll interval.
rpc::RpcPolicy PollPolicy() {
  rpc::RpcPolicy policy;
  policy.max_attempts = 1;
  return policy;
}

}  // namespace

RcpService::RcpService(sim::Simulator* sim, sim::Network* network, NodeId self,
                       std::vector<ReplicaDesc> replicas,
                       std::vector<NodeId> peer_cns, NodeSelector* selector,
                       SimDuration poll_interval)
    : sim_(sim),
      self_(self),
      replicas_(std::move(replicas)),
      peer_cns_(std::move(peer_cns)),
      selector_(selector),
      poll_interval_(poll_interval),
      client_(network, self, PollPolicy()) {}

void RcpService::Activate() {
  if (active_) return;
  active_ = true;
  sim_->Spawn(CollectorLoop());
}

sim::Task<void> RcpService::CollectorLoop() {
  while (active_) {
    co_await PollOnce();
    co_await sim_->Sleep(poll_interval_);
  }
}

sim::Task<void> RcpService::PollOnce() {
  metrics_.Add("rcp.polls");
  std::vector<NodeId> nodes;
  nodes.reserve(replicas_.size());
  for (const auto& desc : replicas_) nodes.push_back(desc.node);
  auto results =
      co_await client_.CallAll(nodes, kRorStatus, rpc::EmptyMessage{});

  // Fold statuses; compute per-shard maxima.
  std::map<ShardId, Timestamp> shard_max;
  for (const auto& desc : replicas_) {
    shard_max.emplace(desc.shard, 0);
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const auto& desc = replicas_[i];
    if (!results[i].ok()) {
      if (selector_ != nullptr) selector_->MarkFailed(desc.node);
      failed_.insert(desc.node);
      // Drop the last successful poll's status: broadcasts must not keep
      // republishing a dead replica's stale freshness (peers folding it
      // into their skylines would chase a max_commit_ts nobody serves).
      statuses_.erase(desc.node);
      metrics_.Add("rcp.poll_failures");
      continue;
    }
    if (failed_.erase(desc.node) > 0) metrics_.Add("rcp.replica_recovered");
    const RorStatusReply& status = *results[i];
    statuses_[desc.node] = status;
    if (selector_ != nullptr) {
      selector_->UpdateStatus(desc.node, status.max_commit_ts,
                              status.queue_delay);
    }
    Timestamp& slot = shard_max[desc.shard];
    slot = std::max(slot, status.max_commit_ts);
  }

  // RCP = min over shards of the best replica of that shard. A shard whose
  // replicas are all unreachable freezes the RCP (consistent reads of that
  // shard are impossible until one recovers).
  Timestamp candidate = kTimestampMax;
  for (const auto& [shard, ts] : shard_max) {
    candidate = std::min(candidate, ts);
  }
  if (candidate != kTimestampMax && candidate > rcp_) {
    rcp_ = candidate;
  }

  // Push to peers: the RCP plus the statuses that feed their skylines.
  const RcpUpdateMessage update = MakeUpdate();
  for (NodeId peer : peer_cns_) {
    if (peer == self_) continue;
    client_.Send(peer, kCnRcpUpdate, update);
  }
}

RcpUpdateMessage RcpService::MakeUpdate() const {
  RcpUpdateMessage update;
  update.rcp = rcp_;
  update.statuses.reserve(replicas_.size());
  for (const auto& desc : replicas_) {
    RcpUpdateMessage::Entry entry;
    entry.node = desc.node;
    if (failed_.count(desc.node) > 0) {
      // Explicit unhealthy marker with a default (empty) status: peers
      // still MarkFailed, but no stale freshness rides along.
      entry.healthy = false;
    } else {
      auto it = statuses_.find(desc.node);
      if (it == statuses_.end()) continue;  // never successfully polled
      entry.healthy = true;
      entry.status = it->second;
    }
    update.statuses.push_back(std::move(entry));
  }
  return update;
}

void RcpService::RemoveReplica(NodeId node) {
  replicas_.erase(std::remove_if(replicas_.begin(), replicas_.end(),
                                 [node](const ReplicaDesc& desc) {
                                   return desc.node == node;
                                 }),
                  replicas_.end());
  statuses_.erase(node);
  failed_.erase(node);
}

void RcpService::ApplyUpdate(const RcpUpdateMessage& update) {
  ObserveRcp(update.rcp);
  for (const auto& entry : update.statuses) {
    if (selector_ == nullptr) continue;
    if (entry.healthy) {
      selector_->UpdateStatus(entry.node, entry.status.max_commit_ts,
                              entry.status.queue_delay);
    } else {
      selector_->MarkFailed(entry.node);
    }
  }
  metrics_.Add("rcp.updates_applied");
}

}  // namespace globaldb
