#include "src/cluster/rcp_service.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/sim/future.h"

namespace globaldb {

namespace {

/// Spawn-safe single status poll (plain function: no lambda captures may
/// outlive their closure in coroutines).
sim::Task<void> PollReplica(sim::Network* network, NodeId from, NodeId to,
                            StatusOr<std::string>* slot,
                            sim::WaitGroup* wg) {
  *slot = co_await network->Call(from, to, kRorStatusMethod, "");
  wg->Done();
}

}  // namespace

RcpService::RcpService(sim::Simulator* sim, sim::Network* network, NodeId self,
                       std::vector<ReplicaDesc> replicas,
                       std::vector<NodeId> peer_cns, NodeSelector* selector,
                       SimDuration poll_interval)
    : sim_(sim),
      network_(network),
      self_(self),
      replicas_(std::move(replicas)),
      peer_cns_(std::move(peer_cns)),
      selector_(selector),
      poll_interval_(poll_interval) {}

void RcpService::Activate() {
  if (active_) return;
  active_ = true;
  sim_->Spawn(CollectorLoop());
}

sim::Task<void> RcpService::CollectorLoop() {
  while (active_) {
    co_await PollOnce();
    co_await sim_->Sleep(poll_interval_);
  }
}

sim::Task<void> RcpService::PollOnce() {
  metrics_.Add("rcp.polls");
  std::vector<StatusOr<std::string>> results(
      replicas_.size(), StatusOr<std::string>(Status::Unavailable("")));
  sim::WaitGroup wg(sim_);
  wg.Add(static_cast<int>(replicas_.size()));
  for (size_t i = 0; i < replicas_.size(); ++i) {
    sim_->Spawn(PollReplica(network_, self_, replicas_[i].node, &results[i],
                            &wg));
  }
  co_await wg.Wait();

  // Fold statuses; compute per-shard maxima.
  std::map<ShardId, Timestamp> shard_max;
  for (const auto& desc : replicas_) {
    shard_max.emplace(desc.shard, 0);
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const auto& desc = replicas_[i];
    if (!results[i].ok()) {
      if (selector_ != nullptr) selector_->MarkFailed(desc.node);
      metrics_.Add("rcp.poll_failures");
      continue;
    }
    auto status = RorStatusReply::Decode(*results[i]);
    if (!status.ok()) continue;
    statuses_[desc.node] = *status;
    if (selector_ != nullptr) {
      selector_->UpdateStatus(desc.node, status->max_commit_ts,
                              status->queue_delay);
    }
    Timestamp& slot = shard_max[desc.shard];
    slot = std::max(slot, status->max_commit_ts);
  }

  // RCP = min over shards of the best replica of that shard. A shard whose
  // replicas are all unreachable freezes the RCP (consistent reads of that
  // shard are impossible until one recovers).
  Timestamp candidate = kTimestampMax;
  for (const auto& [shard, ts] : shard_max) {
    candidate = std::min(candidate, ts);
  }
  if (candidate != kTimestampMax && candidate > rcp_) {
    rcp_ = candidate;
  }

  // Push to peers: the RCP plus the statuses that feed their skylines.
  const std::string update = EncodeUpdate();
  for (NodeId peer : peer_cns_) {
    if (peer == self_) continue;
    network_->Send(self_, peer, kCnRcpUpdateMethod, update);
  }
}

std::string RcpService::EncodeUpdate() const {
  std::string payload;
  PutVarint64(&payload, rcp_);
  PutVarint32(&payload, static_cast<uint32_t>(statuses_.size()));
  for (const auto& [node, status] : statuses_) {
    PutVarint32(&payload, node);
    const std::string encoded = status.Encode();
    PutLengthPrefixed(&payload, encoded);
  }
  return payload;
}

void RcpService::ApplyUpdate(Slice payload) {
  Timestamp rcp = 0;
  uint32_t n = 0;
  if (!GetVarint64(&payload, &rcp) || !GetVarint32(&payload, &n)) return;
  ObserveRcp(rcp);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t node = 0;
    Slice encoded;
    if (!GetVarint32(&payload, &node) ||
        !GetLengthPrefixed(&payload, &encoded)) {
      return;
    }
    auto status = RorStatusReply::Decode(encoded);
    if (status.ok() && selector_ != nullptr) {
      selector_->UpdateStatus(node, status->max_commit_ts,
                              status->queue_delay);
    }
  }
  metrics_.Add("rcp.updates_applied");
}

}  // namespace globaldb
