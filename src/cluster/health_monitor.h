#ifndef GLOBALDB_SRC_CLUSTER_HEALTH_MONITOR_H_
#define GLOBALDB_SRC_CLUSTER_HEALTH_MONITOR_H_

#include <functional>
#include <map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/network.h"
#include "src/txn/transition.h"

namespace globaldb {

struct HealthMonitorOptions {
  /// When false the Cluster never starts the monitor loop.
  bool enabled = true;
  /// Heartbeat / clock-probe period.
  SimDuration probe_interval = 100 * kMillisecond;
  /// Per-probe transport timeout (a probe is never retried; the next
  /// interval is the retry). Must clear the widest cross-region RTT — the
  /// paper topology's worst pair is 55 ms — or a healthy remote CN would be
  /// declared down. Probes are awaited before the interval sleep, so this
  /// may exceed probe_interval without overlapping probes.
  SimDuration probe_timeout = 150 * kMillisecond;
  /// Consecutive missed probes before a CN is declared down.
  int miss_threshold = 3;
  /// Clock error bound above which a GClock cluster falls back to GTM. The
  /// healthy steady-state bound is tens of microseconds; an unsynchronized
  /// clock crosses 1 ms within seconds (drift * outage duration).
  SimDuration fallback_error_bound = 1 * kMillisecond;
  /// Error bound every CN must stay under for the cluster to be considered
  /// re-synchronized.
  SimDuration recover_error_bound = 200 * kMicrosecond;
  /// How long every CN must be alive and under recover_error_bound before
  /// the monitor switches back to GClock (debounces flapping clocks).
  SimDuration recover_dwell = 500 * kMillisecond;
  /// EPOCH -> GTM demotion thresholds (DESIGN.md §15). While the cluster
  /// runs epoch/group commit, any reachable CN reporting a seal latency
  /// above the limit (an epoch's WAN rounds are stalling, so members are
  /// parked far beyond the interval) or a per-seal OCC/participant abort
  /// rate above the permille limit demotes the cluster to individual GTM
  /// commits. There is no automatic return to EPOCH — re-enabling group
  /// commit is an operator decision.
  SimDuration epoch_seal_latency_limit = 500 * kMillisecond;
  uint32_t epoch_abort_permille_limit = 500;
  /// When true the monitor also probes every DN primary (kDnStatus) and,
  /// after primary_miss_threshold consecutive misses, promotes that shard's
  /// most-caught-up replica (DESIGN.md §12). Off by default: a network
  /// partition is indistinguishable from a crash to a probe, and a cluster
  /// not deployed for failover (most tests) must not split-brain a
  /// partitioned-but-alive primary.
  bool primary_failover = false;
  /// Consecutive missed primary probes before promotion fires.
  int primary_miss_threshold = 3;
};

/// Control-plane failure detector and self-healing driver (runs on the
/// control CN, next to the TransitionCoordinator).
///
/// Every probe_interval the monitor calls kCnMaxIssued on every CN. The
/// reply doubles as a liveness heartbeat and a clock-quality report (its
/// AckReply carries the CN's current clock error bound):
///
///   - A CN missing miss_threshold consecutive probes is declared down
///     (health.cn_down) until a probe succeeds again (health.cn_recovered).
///   - While the cluster runs on GClock, any reachable CN whose error bound
///     exceeds fallback_error_bound (clock-sync outage, stepped clock)
///     triggers an automatic GClock -> GTM transition: centralized
///     timestamps do not depend on clock quality, so commits keep flowing
///     while the clock fleet is unhealthy.
///   - After such a fallback, once every CN is alive and under
///     recover_error_bound for recover_dwell, the monitor drives the
///     GTM -> GClock transition to restore decentralized timestamps.
///
/// The monitor only returns to GClock after a fallback it performed itself:
/// a cluster configured to run on GTM stays on GTM.
class HealthMonitor {
 public:
  HealthMonitor(sim::Simulator* sim, sim::Network* network, NodeId self,
                std::vector<NodeId> cn_nodes,
                TransitionCoordinator* transition, TimestampMode initial_mode,
                HealthMonitorOptions options = {});

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void Start();
  void Stop() { running_ = false; }
  bool running() const { return running_; }

  /// Wires primary-failover probing: `primaries[s]` is shard s's current
  /// primary; `promote` runs the promotion (in-process, synchronous) and
  /// returns the new primary's node id — or kInvalidNodeId when no live
  /// replica could be promoted (the monitor keeps probing the old primary
  /// and retries on the next miss streak).
  void ConfigureFailover(std::vector<NodeId> primaries,
                         std::function<NodeId(ShardId)> promote) {
    primaries_ = std::move(primaries);
    promote_ = std::move(promote);
    primary_misses_.assign(primaries_.size(), 0);
  }
  /// Follows a promotion driven outside the monitor (tests, operators).
  void NotePrimaryPromoted(ShardId shard, NodeId node) {
    if (shard < static_cast<ShardId>(primaries_.size())) {
      primaries_[shard] = node;
      primary_misses_[shard] = 0;
    }
  }
  bool IsPrimaryAlive(ShardId shard) const {
    return shard < static_cast<ShardId>(primary_misses_.size()) &&
           primary_misses_[shard] < options_.primary_miss_threshold;
  }

  /// The cluster timestamp mode as this monitor believes it to be. Call
  /// NoteMode after driving a transition manually (tests, operators) so the
  /// monitor's state machine follows.
  TimestampMode mode() const { return mode_; }
  void NoteMode(TimestampMode mode) { mode_ = mode; }

  /// True between an automatic GClock -> GTM fallback and the matching
  /// return transition.
  bool fell_back() const { return fell_back_; }

  /// True after an automatic EPOCH -> GTM demotion (never auto-reverted).
  bool epoch_fell_back() const { return epoch_fell_back_; }

  bool IsCnAlive(NodeId cn) const {
    auto it = cns_.find(cn);
    return it != cns_.end() && it->second.alive;
  }
  /// Max clock error bound over reachable CNs at the last probe.
  SimDuration last_max_error_bound() const { return last_max_error_bound_; }

  Metrics& metrics() { return metrics_; }
  /// RPC client carrying the probe traffic.
  rpc::RpcClient& rpc_client() { return client_; }

 private:
  struct CnState {
    int misses = 0;
    bool alive = true;
    SimDuration error_bound = 0;
  };

  sim::Task<void> MonitorLoop();
  sim::Task<void> ProbeOnce();
  sim::Task<void> ProbePrimaries();

  sim::Simulator* sim_;
  NodeId self_;
  std::vector<NodeId> cn_nodes_;
  TransitionCoordinator* transition_;
  HealthMonitorOptions options_;
  rpc::RpcClient client_;

  bool started_ = false;
  bool running_ = false;
  TimestampMode mode_;
  bool fell_back_ = false;
  bool epoch_fell_back_ = false;
  /// A transition is in flight; probes keep running but no new transition
  /// starts until it finishes.
  bool in_transition_ = false;
  bool dwell_armed_ = false;
  SimTime healthy_since_ = 0;
  SimDuration last_max_error_bound_ = 0;
  std::map<NodeId, CnState> cns_;
  /// Primary-failover state (empty unless ConfigureFailover was called).
  std::vector<NodeId> primaries_;
  std::vector<int> primary_misses_;
  std::function<NodeId(ShardId)> promote_;
  bool promotion_inflight_ = false;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_HEALTH_MONITOR_H_
