#ifndef GLOBALDB_SRC_CLUSTER_COORDINATOR_NODE_H_
#define GLOBALDB_SRC_CLUSTER_COORDINATOR_NODE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/messages.h"
#include "src/cluster/node_selector.h"
#include "src/cluster/rcp_service.h"
#include "src/common/metrics.h"
#include "src/common/statusor.h"
#include "src/common/types.h"
#include "src/rpc/rpc_client.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/cpu.h"
#include "src/sim/future.h"
#include "src/sim/hardware_clock.h"
#include "src/sim/network.h"
#include "src/storage/catalog.h"
#include "src/storage/schema.h"
#include "src/txn/epoch_manager.h"
#include "src/txn/timestamp_source.h"
#include "src/txn/txn_decisions.h"

namespace globaldb {

struct CoordinatorOptions {
  int cores = 8;
  /// CPU charged per statement for parse/plan/route.
  SimDuration statement_cost = 3 * kMicrosecond;
  /// Heartbeat transaction period (keeps replica max commit timestamps
  /// advancing on idle shards).
  SimDuration heartbeat_interval = 10 * kMillisecond;
  /// RCP collection period.
  SimDuration rcp_interval = 5 * kMillisecond;
  /// Read-horizon collection period (collector CN only): how often the
  /// cluster low-watermark read timestamp — min over CNs of their oldest
  /// in-flight snapshot — is folded and pushed to the DN primaries, where
  /// it gates checkpoint-time MVCC vacuum (DESIGN.md §12).
  SimDuration horizon_interval = 50 * kMillisecond;
  /// When true, read-only transactions are served from replicas at the RCP
  /// snapshot (the paper's ROR feature). When false (baseline), all reads
  /// go to primaries with regular timestamps.
  bool enable_ror = true;
  /// When true (default), writes buffer in a per-transaction, per-shard
  /// queue and flush as kDnWriteBatch RPCs — at the size threshold below,
  /// at a read-your-writes barrier, or at commit just ahead of precommit
  /// (DESIGN.md §10). When false, each write is an awaited kDnWrite RPC.
  bool enable_write_batching = true;
  /// Per-shard buffered entries that force an early background flush.
  size_t write_batch_max_entries = 16;
  /// When true (default), concurrent GTM/DUAL timestamp requests on this CN
  /// coalesce into single ranged kGtmTimestamp RPCs.
  bool coalesce_gtm = true;
  /// When true (default), MultiGet dedups its key set, groups keys by
  /// shard, and fans the groups out as parallel kDnReadBatch/kRorReadBatch
  /// RPCs — one WAN round trip for the whole set (DESIGN.md §11). When
  /// false, MultiGet degrades to the equivalent sequence of serial
  /// Get/GetForUpdate calls (the ablation baseline).
  bool enable_read_batching = true;
  /// When true (default), ScanBatch groups its ranges by shard and fans
  /// them out as kDnScanBatch/kRorScanBatch streaming RPCs with server-side
  /// filter/limit pushdown, byte-capped chunks, and an ordered cross-shard
  /// merge (DESIGN.md §14). When false, ScanBatch degrades to the
  /// equivalent sequence of serial ScanRange calls with client-side
  /// filtering (the ablation baseline); workloads also keep their legacy
  /// serial-scan transaction shapes in this mode.
  bool enable_scan_batching = true;
  /// Per-chunk reply byte budget requested from scan servers (0 = accept
  /// the server default). Tests shrink it to force truncation +
  /// continuation.
  uint64_t scan_chunk_bytes = 0;
  /// Phase-2 re-drive (DESIGN.md §13): when a commit/abort broadcast dies
  /// with a primary (transport error), the CN re-sends the recorded decision
  /// against the shard's *current* primary — re-routed after failover —
  /// every `commit_retry_backoff`, up to the limit. DN-side decision
  /// memoization makes redelivery idempotent.
  int commit_retry_limit = 20;
  SimDuration commit_retry_backoff = 100 * kMillisecond;
  /// Capacity of the CN's decision cache (first resolution source for a
  /// promoted primary's in-doubt transactions).
  size_t decision_cache_capacity = 2 * DecisionMemo::kDefaultCapacity;
  /// Epoch/group-commit seal cadence (DESIGN.md §15): how long an epoch
  /// collects committing transactions before it seals, validates OCC-style,
  /// fetches its single commit timestamp, and drives its grouped rounds.
  /// Only consulted while the CN runs under TimestampMode::kEpoch.
  SimDuration epoch_interval = 5 * kMillisecond;
  /// OCC history size of the epoch manager (committed keys remembered for
  /// validating later members).
  size_t epoch_recent_commit_capacity = 8192;
};

/// Options for a single read-only request.
struct ReadOptions {
  /// Require data no staler than this (0 = accept any RCP). Under GClock
  /// the staleness of the RCP is (now - rcp); if the bound cannot be met
  /// from replicas, the read falls back to the primary.
  SimDuration max_staleness = 0;
};

/// Buffered-write state of one transaction on its CN: entries not yet sent,
/// flushes on the wire, and the first error any flush reported. Held by
/// shared_ptr so in-flight flush coroutines stay safe if the handle dies
/// first; `error` is surfaced at the next flush barrier (read overlap or
/// commit) and aborts the transaction there.
struct TxnWriteBuffer {
  TxnWriteBuffer(sim::Simulator* sim, TxnId txn, Timestamp snapshot)
      : txn(txn), snapshot(snapshot), inflight(sim) {}
  /// One shard's slice of the buffer. At most one batch per shard is ever on
  /// the wire: the network gives no per-pair FIFO guarantee and the DN's
  /// batch handler suspends between entries, so a second in-flight batch
  /// could apply ahead of the first and commit writes out of statement
  /// order. A flush requested while one is in flight is recorded in
  /// `flush_deferred` and chained when the current batch completes.
  struct ShardQueue {
    /// Entries not yet sent, in statement order.
    std::vector<WriteBatchRequest::Entry> queued;
    bool inflight = false;
    bool flush_deferred = false;
  };
  const TxnId txn;
  const Timestamp snapshot;
  std::map<ShardId, ShardQueue> shards;
  sim::WaitGroup inflight;
  int inflight_count = 0;
  Status error;
};

/// One key of a MultiGet request: a point lookup of `key_values` (in
/// schema.key_columns order) in `table`. A for_update key takes the row
/// lock on the primary and reads the latest committed version, exactly
/// like GetForUpdate.
struct MultiGetKey {
  std::string table;
  Row key_values;
  bool for_update = false;
};

/// One range of a batched scan (DESIGN.md §14): encoded-key bounds
/// [start, end) over `table` (empty end = unbounded), with optional
/// pushed-down int64 equality filtering, a post-filter limit, reverse
/// order (last-N-by-key, e.g. an index-backed "latest order" lookup), and
/// a co-located server-side lookup join.
struct ScanSpec {
  std::string table;
  RowKey start, end;
  uint32_t limit = 0xffffffff;
  bool reverse = false;
  int32_t filter_col = -1;  // -1 = no filter
  int64_t filter_eq = 0;
  /// Distribution-column value: when set, the range touches only that
  /// shard (prefix scans); otherwise every shard is scanned and merged.
  std::optional<Value> route;
  /// Lookup join: for each emitted row, the server reads `join_table` at
  /// join_key_prefix + encoded values of join_key_cols — a point read, or
  /// a prefix scan of up to join_limit rows when join_prefix is set. Only
  /// valid for co-located joins (the joined rows live on the base range's
  /// shard).
  std::string join_table;
  RowKey join_key_prefix;
  std::vector<uint32_t> join_key_cols;
  bool join_prefix = false;
  uint32_t join_limit = 0xffffffff;
};

/// One spec's outcome, globally key-ordered across shards (descending for
/// reverse specs). `joined` is deduped by key and ascending-key-ordered.
struct ScanResult {
  std::vector<Row> rows;
  std::vector<Row> joined;
};

/// An open transaction as tracked by its coordinating CN.
struct TxnHandle {
  TxnId id = kInvalidTxnId;
  Timestamp snapshot = 0;
  TimestampMode mode = TimestampMode::kGtm;
  bool read_only = false;
  bool use_ror = false;  // read-only + routed to replicas at the RCP
  std::set<ShardId> write_shards;
  /// Lazily created on the first buffered write (write batching enabled).
  std::shared_ptr<TxnWriteBuffer> writes;
  /// OCC read/write key sets, recorded only under TimestampMode::kEpoch:
  /// plain point reads (FOR UPDATE reads are excluded — they read the
  /// latest version under the row lock) and every written key. Validated
  /// at epoch seal (DESIGN.md §15). Range scans are not recorded (documented
  /// best-effort limitation of the epoch serializability filter).
  std::vector<std::pair<TableId, RowKey>> epoch_reads;
  std::vector<std::pair<TableId, RowKey>> epoch_writes;
};

/// A coordinator (computing) node: parses/plans client operations, routes
/// them to primary or replica data nodes, coordinates one-shard commits and
/// two-phase commits, runs the RCP service and heartbeats, executes DDL,
/// and performs skyline-based replica selection for ROR reads.
class CoordinatorNode {
 public:
  CoordinatorNode(sim::Simulator* sim, sim::Network* network, NodeId self,
                  RegionId region, NodeId gtm_node,
                  sim::HardwareClockOptions clock_options,
                  CoordinatorOptions options = {});

  CoordinatorNode(const CoordinatorNode&) = delete;
  CoordinatorNode& operator=(const CoordinatorNode&) = delete;

  NodeId node_id() const { return self_; }
  RegionId region() const { return region_; }

  // --- Topology wiring (before StartServices) -----------------------------

  /// primaries[s] = node id of shard s's primary DN.
  void SetShardMap(std::vector<NodeId> primaries);
  void AddReplica(ShardId shard, NodeId node, RegionId region);
  void SetPeerCns(std::vector<NodeId> peers);
  void SetPrimaryDdlTargets(std::vector<NodeId> primaries);

  /// Failover re-route: `node` (a just-promoted replica) is shard's new
  /// primary. Updates the shard map, DDL targets, and the local-region
  /// shard rotation, and removes the node from the replica selector and the
  /// RCP poll set — a primary is not a replica-read target.
  void UpdateShardPrimary(ShardId shard, NodeId node);

  /// Starts heartbeats and (if `rcp_collector`) the RCP collector loop.
  void StartServices(bool rcp_collector);
  void StopServices() { services_running_ = false; }

  // --- DDL -----------------------------------------------------------------

  /// Creates a table cluster-wide: assigns the schema in the local catalog,
  /// obtains a DDL timestamp, logs the DDL on every primary (replicated to
  /// replicas through redo), and broadcasts to peer CNs.
  sim::Task<Status> CreateTable(TableSchema schema);
  sim::Task<Status> DropTable(std::string name);

  // --- Transactions --------------------------------------------------------

  /// Opens a transaction. A read-only transaction is served via ROR (RCP
  /// snapshot on replicas) when enabled and the freshness/DDL conditions
  /// pass; otherwise it gets a regular begin timestamp.
  sim::Task<StatusOr<TxnHandle>> Begin(bool read_only = false,
                                       bool single_shard = false,
                                       ReadOptions read_options = {});

  sim::Task<Status> Insert(TxnHandle* txn, const std::string& table,
                           const Row& row);
  /// Full-row update addressed by the row's primary key.
  sim::Task<Status> Update(TxnHandle* txn, const std::string& table,
                           const Row& row);
  /// Delete addressed by key column values (schema.key_columns order).
  sim::Task<Status> Delete(TxnHandle* txn, const std::string& table,
                           const Row& key_values);
  /// Point lookup by key column values. Returns nullopt when not found.
  sim::Task<StatusOr<std::optional<Row>>> Get(TxnHandle* txn,
                                              const std::string& table,
                                              const Row& key_values);
  /// Batched point lookups: dedups the key set, runs the read-your-writes
  /// check across all keys with at most one flush barrier, groups keys by
  /// shard, routes each group to a ROR replica or the primary, and fans
  /// every group out in parallel — one WAN round trip for the whole set.
  /// Results align with `keys` (nullopt = not found); rows are
  /// byte-identical to an equivalent sequence of serial Get/GetForUpdate
  /// calls under the same snapshot. A group whose replica fails mid-batch
  /// fails over to its shard primary; only the first per-entry or
  /// transport error is returned.
  sim::Task<StatusOr<std::vector<std::optional<Row>>>> MultiGet(
      TxnHandle* txn, std::vector<MultiGetKey> keys);
  /// Single-table convenience wrapper (plain reads, no locks).
  sim::Task<StatusOr<std::vector<std::optional<Row>>>> MultiGet(
      TxnHandle* txn, const std::string& table, const std::vector<Row>& keys);
  /// SELECT ... FOR UPDATE: takes the row lock on the primary and returns
  /// the latest committed version. Subsequent Update/Delete of the same row
  /// in this transaction cannot hit a write-write conflict. The lock is
  /// released at commit/abort.
  sim::Task<StatusOr<std::optional<Row>>> GetForUpdate(
      TxnHandle* txn, const std::string& table, const Row& key_values);
  /// Ordered scan of encoded-key range [start, end) merged across shards.
  /// When `route_value` is non-null it is the scan's distribution-column
  /// value: the scan touches only that shard (prefix scans in TPC-C).
  sim::Task<StatusOr<std::vector<Row>>> ScanRange(
      TxnHandle* txn, const std::string& table, const RowKey& start,
      const RowKey& end, uint32_t limit, const Value* route_value = nullptr);
  /// Batched ranged reads (DESIGN.md §14): resolves every spec's shard set,
  /// runs the read-your-writes check across all ranges (and join tables)
  /// with at most one flush barrier, groups ranges by shard, routes each
  /// group to a ROR replica or the primary, streams byte-capped chunks with
  /// client-driven continuation, and k-way-merges each spec's per-shard
  /// cursors into one globally key-ordered result — one WAN round trip (per
  /// chunk) for the whole batch. Results align with `specs` and are
  /// row-for-row identical to the serial ScanRange baseline under the same
  /// snapshot. A group whose replica fails mid-stream restarts on its shard
  /// primary.
  sim::Task<StatusOr<std::vector<ScanResult>>> ScanBatch(
      TxnHandle* txn, std::vector<ScanSpec> specs);

  /// Commits (one-shard fast path or 2PC). On success the handle is done.
  sim::Task<Status> Commit(TxnHandle* txn);
  sim::Task<Status> Abort(TxnHandle* txn);

  // --- Introspection -------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  TimestampSource& timestamp_source() { return *ts_source_; }
  /// Epoch/group-commit coordinator (active under TimestampMode::kEpoch).
  EpochManager& epoch_manager() { return *epoch_mgr_; }
  sim::HardwareClock& clock() { return *clock_; }
  NodeSelector& selector() { return selector_; }
  RcpService& rcp_service() { return *rcp_; }
  Timestamp rcp() const { return rcp_ == nullptr ? 0 : rcp_->rcp(); }
  /// This CN's contribution to the cluster low-watermark read timestamp:
  /// min(oldest in-flight snapshot, last committed, local RCP when ROR can
  /// hand that snapshot to a future read-only transaction). Monotone: every
  /// input only advances and future begins never run below it, so the
  /// collector may safely reuse a peer's last reported value when a poll
  /// fails.
  Timestamp TxnHorizon() const;
  Metrics& metrics() { return metrics_; }
  /// RPC client carrying all DN/peer traffic issued by this CN (per-method
  /// latency histograms and the call trace live here).
  rpc::RpcClient& rpc_client() { return client_; }
  CoordinatorOptions* mutable_options() { return &options_; }
  const CoordinatorOptions& options() const { return options_; }

 private:
  /// One request fanned out to every node; first error wins. The CN client
  /// never retries (see BuildPolicy in the .cc), so a broadcast failure is
  /// surfaced to the commit protocol rather than silently re-sent.
  template <typename M>
  sim::Task<Status> Broadcast(const std::vector<NodeId>& nodes, M method,
                              const typename M::Request& request) {
    if (nodes.empty()) co_return Status::OK();
    auto results = co_await client_.CallAll(nodes, method, request);
    co_return rpc::FirstError(results);
  }

  sim::Task<Status> EndTxn(TxnHandle* txn, bool commit);
  /// Epoch-mode commit (DESIGN.md §15): awaits only the in-flight flushes,
  /// hands the queued write tail + OCC sets to the epoch manager, and parks
  /// until the member's epoch resolves.
  sim::Task<Status> CommitViaEpoch(TxnHandle* txn);
  /// Records a key into the transaction's OCC read set (epoch mode only).
  void NoteEpochRead(TxnHandle* txn, TableId table, const RowKey& key) {
    if (txn->mode == TimestampMode::kEpoch && !txn->read_only) {
      txn->epoch_reads.emplace_back(table, key);
    }
  }
  /// Drives a recorded decision to every write shard, re-routing through
  /// `shard_primaries_` per attempt (it tracks promotions) and retrying
  /// transport failures with backoff. Non-transport errors and retry
  /// exhaustion return the last status.
  sim::Task<Status> DriveDecision(TxnHandle* txn, bool commit,
                                  TxnControlRequest control);

  /// Resolves the shard to *read* for a row/key (replicated tables prefer
  /// the local region's shard).
  StatusOr<ShardId> ShardOf(const TableSchema& schema, const Row& row) const;
  /// All shards a write must touch (every shard for replicated tables).
  std::vector<ShardId> WriteTargets(const TableSchema& schema,
                                    const Row& row) const;
  sim::Task<Status> DoWrite(TxnHandle* txn, const TableSchema& schema,
                            WriteRequest::Op op, RowKey key,
                            std::string value, const Row& route_row);
  /// Eager (non-batched) write path: one awaited RPC per target, fanned out
  /// in parallel for replicated tables.
  sim::Task<Status> DoWriteEager(TxnHandle* txn, WriteRequest request,
                                 std::vector<ShardId> targets);
  /// Moves `shard`'s queued entries into a kDnWriteBatch request and spawns
  /// its flush coroutine. No-op on an empty buffer; defers (chains) when a
  /// batch for the shard is already in flight; drops the entries when a
  /// previous flush already failed — the transaction is doomed and a batch
  /// sent now would re-acquire locks on a shard that may have rolled itself
  /// back.
  void StartFlush(const std::shared_ptr<TxnWriteBuffer>& wb, ShardId shard);
  /// Background flush of one batch; records the first failure in wb->error
  /// and chains the shard's deferred flush, if any, on completion.
  sim::Task<void> FlushShardBatch(std::shared_ptr<TxnWriteBuffer> wb,
                                  ShardId shard, WriteBatchRequest request);
  /// Flush barrier: sends every non-empty shard buffer, awaits all in-flight
  /// flushes, and returns the first error any of them hit.
  sim::Task<Status> FlushWrites(TxnHandle* txn);
  /// True when a point read of (table, key) — or any read while flushes are
  /// in flight or failed — must run the flush barrier first to preserve
  /// read-your-writes.
  bool NeedsFlushForKey(const TxnHandle& txn, TableId table,
                        const RowKey& key) const;
  /// Same for a range scan over [start, end) of `table` (empty end =
  /// unbounded).
  bool NeedsFlushForScan(const TxnHandle& txn, TableId table,
                         const RowKey& start, const RowKey& end) const;
  /// Chooses the node (replica or primary) for a ROR read of `shard`.
  NodeId PickReadNode(const TxnHandle& txn, const TableSchema& schema,
                      ShardId shard);
  /// Same decision with the table's DDL-visibility verdict precomputed
  /// (MultiGet groups may span tables; ROR needs every table visible).
  NodeId PickReadTarget(const TxnHandle& txn, bool ddl_visible, ShardId shard);

  /// One shard's slice of a MultiGet fan-out: the batch request, its
  /// routing decision, and the reply slot filled by CallReadGroup.
  struct ReadGroup {
    ShardId shard = kInvalidShardId;
    NodeId target = kInvalidNodeId;
    bool is_replica = false;
    ReadBatchRequest request;
    /// Unique-key slot fed by each request entry, aligned with entries.
    std::vector<size_t> slots;
    StatusOr<ReadBatchReply> reply{Status::Unavailable("not attempted")};
  };
  /// Issues one group's batch RPC; on a transport error from a replica,
  /// fails over only this group to its shard primary (cn.replica_failovers,
  /// as in the serial path).
  sim::Task<void> CallReadGroup(ReadGroup* group, sim::WaitGroup* wg);
  /// Degraded MultiGet (read batching disabled): the equivalent sequence of
  /// serial Get/GetForUpdate calls, results aligned with `keys`.
  sim::Task<StatusOr<std::vector<std::optional<Row>>>> MultiGetSerial(
      TxnHandle* txn, std::vector<MultiGetKey> keys);
  /// One shard's slice of a ScanBatch fan-out: the base request (kept
  /// pristine for failover restarts), the spec index each range feeds, and
  /// per-range raw row accumulators filled across chunks by CallScanGroup.
  struct ScanGroup {
    ShardId shard = kInvalidShardId;
    NodeId target = kInvalidNodeId;
    bool is_replica = false;
    bool ddl_visible = true;
    ScanBatchRequest base;
    std::vector<size_t> spec_of;
    std::vector<std::vector<std::pair<RowKey, std::string>>> rows;
    std::vector<std::vector<std::pair<RowKey, std::string>>> joined;
    Status error = Status::OK();
    int chunks = 0;
  };
  /// Streams one group's chunks: each continuation rewrites the resumed
  /// range's start key and remaining limit and re-sends (the server keeps
  /// no cursor). A transport error from a replica restarts the WHOLE group
  /// from the base request on the shard primary — partial accumulation is
  /// discarded, so a mid-stream failover can't splice rows from two nodes'
  /// snapshots of the store.
  sim::Task<void> CallScanGroup(ScanGroup* group, sim::WaitGroup* wg);
  /// Degraded ScanBatch (scan batching disabled): the equivalent sequence
  /// of serial ScanRange calls with client-side filter/reverse/limit and
  /// per-row join lookups, results aligned with `specs`. Also the
  /// byte-for-byte equivalence oracle for the batched path.
  sim::Task<StatusOr<std::vector<ScanResult>>> ScanBatchSerial(
      TxnHandle* txn, std::vector<ScanSpec> specs);
  /// DDL visibility conditions for ROR (Section IV-A).
  bool RorDdlVisible(const TableSchema& schema) const;

  sim::Task<void> HeartbeatLoop();
  /// Collector-CN loop: folds min(TxnHorizon) across all CNs (reusing a
  /// peer's last value when its poll fails — safe, horizons are monotone
  /// per CN) and pushes the result to every shard primary via
  /// kDnReadHorizon.
  sim::Task<void> HorizonLoop();
  void BindService();
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleRcpUpdate(
      NodeId from, RcpUpdateMessage update);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleDdlApply(NodeId from,
                                                        DdlRequest request);
  sim::Task<StatusOr<TxnHorizonReply>> HandleTxnHorizon(
      NodeId from, rpc::EmptyMessage request);
  /// In-doubt resolution lookup from a promoted primary (kCnTxnOutcome):
  /// answers from the decision cache; kPending while the transaction is
  /// still active here (the decision is in flight — the asker must retry);
  /// kUnknown otherwise.
  sim::Task<StatusOr<TxnOutcomeReply>> HandleTxnOutcome(
      NodeId from, TxnOutcomeRequest request);
  TxnId NextTxnId() { return (static_cast<TxnId>(self_) << 40) | ++txn_seq_; }

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId self_;
  RegionId region_;
  NodeId gtm_node_;
  CoordinatorOptions options_;
  rpc::RpcClient client_;
  rpc::RpcServer server_;

  sim::CpuScheduler cpu_;
  std::unique_ptr<sim::HardwareClock> clock_;
  std::unique_ptr<TimestampSource> ts_source_;
  std::unique_ptr<EpochManager> epoch_mgr_;
  Catalog catalog_;
  NodeSelector selector_;
  std::unique_ptr<RcpService> rcp_;

  std::vector<NodeId> shard_primaries_;
  /// Shards whose primaries live in this CN's region, precomputed in
  /// SetShardMap (replicated-table reads rotate across them).
  std::vector<ShardId> local_replicated_shards_;
  std::vector<NodeId> peer_cns_;
  std::vector<NodeId> ddl_targets_;
  uint64_t txn_seq_ = 0;
  mutable uint64_t replicated_rotation_ = 0;
  bool services_running_ = false;
  /// Snapshots of transactions opened on this CN and not yet ended — the
  /// oldest is the floor of TxnHorizon().
  std::map<TxnId, Timestamp> active_snapshots_;
  /// Collector-CN state: last reported horizon per peer (0 = never heard;
  /// reused when a poll fails).
  std::map<NodeId, Timestamp> peer_horizons_;
  /// Commit/abort decisions this CN has made, recorded *before* the phase-2
  /// broadcast: the first resolution source for a promoted primary's
  /// in-doubt transactions, and the source of truth for phase-2 re-drives.
  DecisionMemo decided_;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_COORDINATOR_NODE_H_
