#ifndef GLOBALDB_SRC_CLUSTER_NODE_SELECTOR_H_
#define GLOBALDB_SRC_CLUSTER_NODE_SELECTOR_H_

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/statusor.h"
#include "src/common/types.h"

namespace globaldb {

/// Per-CN dynamic replica selection (Section IV-B, Fig. 5).
///
/// Each CN tracks, per replica: the replayed max commit timestamp
/// (staleness) and an estimated response cost (network latency + the
/// replica's CPU queue delay). For a query with a freshness requirement the
/// CN picks, among replicas fresh enough, the one with the lowest cost —
/// the "skyline" of candidates is the Pareto front over
/// (staleness, cost). Crashed or unreachable replicas are excluded until a
/// status refresh proves them healthy again.
class NodeSelector {
 public:
  struct ReplicaInfo {
    NodeId node = kInvalidNodeId;
    ShardId shard = kInvalidShardId;
    RegionId region = 0;
    /// Estimated one-way network latency from this CN (topology-derived).
    SimDuration base_latency = 0;
    /// Replayed max commit timestamp from the last status refresh.
    Timestamp max_commit_ts = 0;
    /// Replica CPU backlog from the last status refresh.
    SimDuration queue_delay = 0;
    bool healthy = true;

    /// Total estimated response cost for one request.
    SimDuration Cost() const { return 2 * base_latency + queue_delay; }
  };

  void AddReplica(NodeId node, ShardId shard, RegionId region,
                  SimDuration base_latency) {
    ReplicaInfo info;
    info.node = node;
    info.shard = shard;
    info.region = region;
    info.base_latency = base_latency;
    replicas_[node] = info;
    by_shard_[shard].push_back(node);
  }

  /// Applies a status refresh (from the RCP collector's broadcast or a
  /// direct probe). A refreshed replica is considered healthy again.
  void UpdateStatus(NodeId node, Timestamp max_commit_ts,
                    SimDuration queue_delay) {
    auto it = replicas_.find(node);
    if (it == replicas_.end()) return;
    it->second.max_commit_ts = std::max(it->second.max_commit_ts,
                                        max_commit_ts);
    it->second.queue_delay = queue_delay;
    it->second.healthy = true;
  }

  /// Excludes a replica after a failed call (crash / partition); it rejoins
  /// on the next successful status refresh.
  void MarkFailed(NodeId node) {
    auto it = replicas_.find(node);
    if (it != replicas_.end()) it->second.healthy = false;
  }

  /// Removes a replica entirely (it was promoted to primary: it no longer
  /// serves replica reads and must stop feeding the skyline).
  void RemoveReplica(NodeId node) {
    auto it = replicas_.find(node);
    if (it == replicas_.end()) return;
    auto shard_it = by_shard_.find(it->second.shard);
    if (shard_it != by_shard_.end()) {
      auto& nodes = shard_it->second;
      nodes.erase(std::remove(nodes.begin(), nodes.end(), node), nodes.end());
      if (nodes.empty()) by_shard_.erase(shard_it);
    }
    replicas_.erase(it);
  }

  bool IsHealthy(NodeId node) const {
    auto it = replicas_.find(node);
    return it != replicas_.end() && it->second.healthy;
  }

  const ReplicaInfo* Get(NodeId node) const {
    auto it = replicas_.find(node);
    return it == replicas_.end() ? nullptr : &it->second;
  }

  /// Picks the cheapest healthy replica of `shard` whose replayed state
  /// covers `min_commit_ts`. NotFound when no replica qualifies (caller
  /// falls back to the primary). Near-ties (within 25% cost) rotate
  /// round-robin so equally-cheap replicas share load instead of herding
  /// onto one between status refreshes.
  StatusOr<NodeId> Pick(ShardId shard, Timestamp min_commit_ts) const {
    auto it = by_shard_.find(shard);
    if (it == by_shard_.end()) return Status::NotFound("no replicas");
    std::vector<const ReplicaInfo*> fresh;
    const ReplicaInfo* best = nullptr;
    for (NodeId node : it->second) {
      const ReplicaInfo& info = replicas_.at(node);
      if (!info.healthy || info.max_commit_ts < min_commit_ts) continue;
      fresh.push_back(&info);
      if (best == nullptr || info.Cost() < best->Cost()) best = &info;
    }
    if (best == nullptr) return Status::NotFound("no fresh healthy replica");
    std::vector<const ReplicaInfo*> near_ties;
    for (const ReplicaInfo* info : fresh) {
      if (info->Cost() <= best->Cost() + best->Cost() / 4) {
        near_ties.push_back(info);
      }
    }
    return near_ties[rotation_++ % near_ties.size()]->node;
  }

  /// The Pareto front of healthy replicas of `shard` over
  /// (freshness desc, cost asc): a replica is on the skyline if no other
  /// replica is both fresher and cheaper.
  std::vector<ReplicaInfo> Skyline(ShardId shard) const {
    std::vector<ReplicaInfo> candidates;
    auto it = by_shard_.find(shard);
    if (it == by_shard_.end()) return candidates;
    for (NodeId node : it->second) {
      const ReplicaInfo& info = replicas_.at(node);
      if (info.healthy) candidates.push_back(info);
    }
    // Sort by cost ascending; walk keeping strictly increasing freshness.
    std::sort(candidates.begin(), candidates.end(),
              [](const ReplicaInfo& a, const ReplicaInfo& b) {
                if (a.Cost() != b.Cost()) return a.Cost() < b.Cost();
                return a.max_commit_ts > b.max_commit_ts;
              });
    std::vector<ReplicaInfo> skyline;
    Timestamp best_ts = 0;
    for (const ReplicaInfo& info : candidates) {
      if (skyline.empty() || info.max_commit_ts > best_ts) {
        skyline.push_back(info);
        best_ts = std::max(best_ts, info.max_commit_ts);
      }
    }
    return skyline;
  }

  const std::map<NodeId, ReplicaInfo>& replicas() const { return replicas_; }
  std::vector<NodeId> ReplicasOfShard(ShardId shard) const {
    auto it = by_shard_.find(shard);
    return it == by_shard_.end() ? std::vector<NodeId>{} : it->second;
  }

 private:
  std::map<NodeId, ReplicaInfo> replicas_;
  std::map<ShardId, std::vector<NodeId>> by_shard_;
  mutable size_t rotation_ = 0;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_NODE_SELECTOR_H_
