#ifndef GLOBALDB_SRC_CLUSTER_DATA_NODE_H_
#define GLOBALDB_SRC_CLUSTER_DATA_NODE_H_

#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "src/cluster/messages.h"
#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/log/log_stream.h"
#include "src/replication/checkpointer.h"
#include "src/replication/durability_manager.h"
#include "src/replication/log_shipper.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/storage/catalog.h"
#include "src/storage/shard_store.h"
#include "src/txn/lock_manager.h"

namespace globaldb {

struct DataNodeOptions {
  int cores = 8;
  SimDuration read_cost = 8 * kMicrosecond;
  SimDuration write_cost = 12 * kMicrosecond;
  SimDuration commit_cost = 6 * kMicrosecond;
  SimDuration scan_row_cost = 1 * kMicrosecond;
  SimDuration lock_timeout = 500 * kMillisecond;
  /// Durability lifecycle (DESIGN.md §12): periodic checkpoint + vacuum +
  /// log truncation. On by default — truncation is part of normal
  /// operation, not an optional mode.
  bool enable_checkpoints = true;
  SimDuration checkpoint_interval = 1 * kSecond;
};

/// A primary data node hosting one shard: MVCC storage, row locks, the
/// shard's redo stream, and the log shipper feeding its replicas.
///
/// Commit protocol (driven by the CN):
///   1. precommit: append PENDING_COMMIT (one-shard) or PREPARE (2PC) —
///      written *before* the commit timestamp is obtained, which is the
///      paper's replica-side tuple-lock safeguard.
///   2. commit(ts): append COMMIT / COMMIT_PREPARED, stamp MVCC versions,
///      wait for the replication mode's durability condition, release locks.
///   abort: append ABORT / ABORT_PREPARED, roll back, release locks.
class DataNode {
 public:
  DataNode(sim::Simulator* sim, sim::Network* network, NodeId self,
           ShardId shard, DataNodeOptions options = {});

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  NodeId node_id() const { return self_; }
  ShardId shard() const { return shard_; }

  /// Attaches the replica set; must be called before Start().
  void ConfigureReplication(std::vector<NodeId> replicas,
                            ShipperOptions options);
  /// Starts the log shipper loops and (if enabled) the checkpointer.
  void Start();
  /// Stops the checkpointer and the shipper loops (failover: this node is
  /// being replaced, or the simulation is quiescing).
  void Stop();

  /// Failover install: seeds this node from a promoted replica's state.
  /// Must be called after construction and before ConfigureReplication /
  /// Start. Installs the catalog + store images, re-bases the (empty) redo
  /// stream so the next LSN continues from `applied_lsn + 1`, aborts every
  /// in-doubt provisional transaction captured in the image (their
  /// coordinators will learn the outcome on retry; quorum-acked commits are
  /// never provisional on the most-caught-up replica), and seeds the
  /// durability manager's checkpoint so lagging peers can full-state
  /// install.
  void InstallForPromotion(Lsn applied_lsn, Timestamp max_commit_ts,
                           const std::string& catalog_image,
                           const std::string& store_image);

  ShardStore& store() { return store_; }
  LogStream& log() { return log_; }
  Catalog& catalog() { return catalog_; }
  LogShipper* shipper() { return shipper_.get(); }
  DurabilityManager& durability() { return durability_; }
  Checkpointer* checkpointer() { return checkpointer_.get(); }
  /// Highest commit timestamp stamped on this shard (advanced by commits,
  /// DDLs, and CN heartbeats).
  Timestamp max_commit_ts() const { return max_commit_ts_; }
  sim::CpuScheduler& cpu() { return cpu_; }
  LockManager& locks() { return locks_; }
  Metrics& metrics() { return metrics_; }

 private:
  void BindService();
  sim::Task<StatusOr<ReadReply>> HandleRead(NodeId from, ReadRequest request);
  sim::Task<StatusOr<ReadReply>> HandleLockRead(NodeId from,
                                                ReadRequest request);
  sim::Task<StatusOr<ReadBatchReply>> HandleReadBatch(
      NodeId from, ReadBatchRequest request);
  sim::Task<StatusOr<ScanReply>> HandleScan(NodeId from, ScanRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleWrite(NodeId from,
                                                     WriteRequest request);
  sim::Task<StatusOr<WriteBatchReply>> HandleWriteBatch(
      NodeId from, WriteBatchRequest request);
  /// Shared write path (single writes and batch entries): row lock, MVCC
  /// apply, redo append. Parameters are by value — coroutine frame safety.
  sim::Task<Status> ApplyWrite(TxnId txn, Timestamp snapshot,
                               WriteRequest::Op op, TableId table_id,
                               RowKey key, std::string value);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandlePrecommit(
      NodeId from, TxnControlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleCommit(
      NodeId from, TxnControlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleAbort(NodeId from,
                                                     TxnControlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleDdl(NodeId from,
                                                   DdlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleHeartbeat(
      NodeId from, TxnControlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleReplHello(
      NodeId from, ReplHelloRequest request);
  sim::Task<StatusOr<DnStatusReply>> HandleStatus(NodeId from,
                                                  rpc::EmptyMessage request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleReadHorizon(
      NodeId from, ReadHorizonRequest request);

  /// Appends to the redo stream, wakes the shipper, and returns the
  /// assigned LSN.
  Lsn AppendAndNotify(RedoRecord record);
  /// Records a transaction this shard rolled back on its own (failing batch
  /// entry). Bounded FIFO: the CN normally resolves with an abort broadcast
  /// shortly after, but a crashed CN must not grow the set forever.
  void RememberSelfAborted(TxnId txn);

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId self_;
  rpc::RpcServer server_;
  ShardId shard_;
  DataNodeOptions options_;

  ShardStore store_;
  Catalog catalog_;
  LogStream log_;
  LockManager locks_;
  sim::CpuScheduler cpu_;
  std::unique_ptr<LogShipper> shipper_;
  DurabilityManager durability_;
  std::unique_ptr<Checkpointer> checkpointer_;
  Timestamp max_commit_ts_ = 0;
  /// Transactions this shard aborted itself after a failing batch entry.
  /// Even though the CN serializes batches per shard, a write batch that
  /// arrives for one of these (e.g. from a buggy or restarted coordinator)
  /// must not re-acquire locks behind the rollback: its entries are
  /// rejected until the coordinator's commit/abort resolution arrives.
  std::set<TxnId> self_aborted_txns_;
  std::deque<TxnId> self_aborted_order_;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_DATA_NODE_H_
