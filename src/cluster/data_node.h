#ifndef GLOBALDB_SRC_CLUSTER_DATA_NODE_H_
#define GLOBALDB_SRC_CLUSTER_DATA_NODE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/cluster/messages.h"
#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/log/log_stream.h"
#include "src/replication/checkpointer.h"
#include "src/replication/durability_manager.h"
#include "src/replication/log_shipper.h"
#include "src/rpc/rpc_client.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/storage/catalog.h"
#include "src/storage/shard_store.h"
#include "src/txn/lock_manager.h"
#include "src/txn/txn_decisions.h"

namespace globaldb {

struct DataNodeOptions {
  int cores = 8;
  SimDuration read_cost = 8 * kMicrosecond;
  SimDuration write_cost = 12 * kMicrosecond;
  SimDuration commit_cost = 6 * kMicrosecond;
  SimDuration scan_row_cost = 1 * kMicrosecond;
  /// Default reply byte budget for one kDnScanBatch chunk (DESIGN.md §14);
  /// a request's max_bytes overrides it. Tests shrink it to force
  /// truncation + continuation.
  size_t scan_chunk_bytes = 64 * 1024;
  SimDuration lock_timeout = 500 * kMillisecond;
  /// Durability lifecycle (DESIGN.md §12): periodic checkpoint + vacuum +
  /// log truncation. On by default — truncation is part of normal
  /// operation, not an optional mode.
  bool enable_checkpoints = true;
  SimDuration checkpoint_interval = 1 * kSecond;
  /// Capacity of the per-txn decision memo (DESIGN.md §13): how many
  /// commit/abort outcomes the primary remembers so a duplicated or
  /// re-driven phase-2 delivery is answered idempotently. Raise it in long
  /// soaks whose checkers read old decisions back.
  size_t decision_memo_capacity = DecisionMemo::kDefaultCapacity;
  /// Backoff between in-doubt resolution rounds after a transport failure
  /// (the owner CN or a peer primary is still unreachable, DESIGN.md §13).
  SimDuration outcome_retry_backoff = 100 * kMillisecond;
  /// Consecutive transport failures against the owning CN before the
  /// resolver treats it as permanently gone and lets the peer-shard verdict
  /// (or presumed abort) stand without a CN answer.
  int outcome_cn_give_up = 10;
};

/// Protocol points a chaos schedule can arm a one-shot crash at
/// (FaultKind::kPrimaryCrash stage targeting): the node drops off the
/// network exactly when the next two-phase transaction reaches the stage.
enum class CrashStage : uint8_t {
  kNone = 0,
  /// After the PREPARE record is appended and its durability wait returned:
  /// the prepare is replicated but the coordinator never sees the ack.
  kAfterPrepareAppend = 1,
  /// When the phase-2 commit arrives, before any of it applies: the
  /// coordinator decided, this shard never learned the outcome.
  kOnCommitArrival = 2,
  /// After the commit applied and its record was appended, before the ack:
  /// the outcome is (racily) in the redo stream but the coordinator must
  /// retry to learn it.
  kMidPhase2 = 3,
};

/// A prepared-but-undecided transaction handed to a promoted primary
/// (DESIGN.md §13): the commit-timestamp lower bound from the PREPARE
/// record and the participant shards to query (empty = unknown — query
/// every shard).
struct InDoubtTxn {
  Timestamp ts_lower = 0;
  std::vector<ShardId> participants;
};

/// A primary data node hosting one shard: MVCC storage, row locks, the
/// shard's redo stream, and the log shipper feeding its replicas.
///
/// Commit protocol (driven by the CN):
///   1. precommit: append PENDING_COMMIT (one-shard) or PREPARE (2PC) —
///      written *before* the commit timestamp is obtained, which is the
///      paper's replica-side tuple-lock safeguard.
///   2. commit(ts): append COMMIT / COMMIT_PREPARED, stamp MVCC versions,
///      wait for the replication mode's durability condition, release locks.
///   abort: append ABORT / ABORT_PREPARED, roll back, release locks.
class DataNode {
 public:
  DataNode(sim::Simulator* sim, sim::Network* network, NodeId self,
           ShardId shard, DataNodeOptions options = {});

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  NodeId node_id() const { return self_; }
  ShardId shard() const { return shard_; }

  /// Attaches the replica set; must be called before Start().
  void ConfigureReplication(std::vector<NodeId> replicas,
                            ShipperOptions options);
  /// Starts the log shipper loops and (if enabled) the checkpointer.
  void Start();
  /// Stops the checkpointer and the shipper loops (failover: this node is
  /// being replaced, or the simulation is quiescing).
  void Stop();

  /// Failover install: seeds this node from a promoted replica's state.
  /// Must be called after construction and before ConfigureReplication /
  /// Start. Installs the catalog + store images, re-bases the (empty) redo
  /// stream so the next LSN continues from `applied_lsn + 1`, adopts the
  /// replica's replayed-decision memo, and sorts provisional transactions
  /// into two classes (DESIGN.md §13):
  ///   - not in `in_doubt`: their PREPARE never reached this (most-caught-up)
  ///     replica, so thanks to the prepare durability wait the coordinator
  ///     never decided commit — aborted immediately (presumed abort).
  ///   - in `in_doubt`: prepared but undecided. Their touched rows stay
  ///     locked and Start() spawns a resolver per transaction: own memo →
  ///     owning CN's decision cache → peer participant primaries → presumed
  ///     abort only once every source answers a definitive "unknown".
  /// Also seeds the durability manager's checkpoint so lagging peers can
  /// full-state install, and records `promotion_epoch` so stale kReplHello
  /// announcements (a revived ex-primary) are routed through a reset
  /// snapshot instead of redo resume.
  void InstallForPromotion(Lsn applied_lsn, Timestamp max_commit_ts,
                           const std::string& catalog_image,
                           const std::string& store_image,
                           const std::map<TxnId, InDoubtTxn>& in_doubt = {},
                           const DecisionMemo* replayed_decisions = nullptr,
                           uint64_t promotion_epoch = 0);

  /// Wires the cluster topology the in-doubt resolver needs: the current
  /// primary node of each shard (followed across later promotions) and the
  /// shard count (the query-every-shard fallback when a PREPARE carried no
  /// participant list). Must be called before Start() on a promoted node.
  void ConfigureOutcomeResolution(std::function<NodeId(ShardId)> shard_primary,
                                  uint32_t num_shards);

  /// Arms a one-shot staged crash: the next two-phase transaction reaching
  /// `stage` takes this node off the network (chaos stage targeting).
  void ArmCrash(CrashStage stage) { armed_crash_ = stage; }
  CrashStage armed_crash() const { return armed_crash_; }

  /// Per-txn decision memo (phase-2 idempotency, DESIGN.md §13).
  const DecisionMemo& decisions() const { return decided_; }
  /// Prepared transactions still awaiting outcome resolution.
  size_t in_doubt_count() const { return in_doubt_.size(); }
  uint64_t promotion_epoch() const { return promotion_epoch_; }

  ShardStore& store() { return store_; }
  LogStream& log() { return log_; }
  Catalog& catalog() { return catalog_; }
  LogShipper* shipper() { return shipper_.get(); }
  DurabilityManager& durability() { return durability_; }
  Checkpointer* checkpointer() { return checkpointer_.get(); }
  /// Highest commit timestamp stamped on this shard (advanced by commits,
  /// DDLs, and CN heartbeats).
  Timestamp max_commit_ts() const { return max_commit_ts_; }
  sim::CpuScheduler& cpu() { return cpu_; }
  LockManager& locks() { return locks_; }
  Metrics& metrics() { return metrics_; }

 private:
  void BindService();
  sim::Task<StatusOr<ReadReply>> HandleRead(NodeId from, ReadRequest request);
  sim::Task<StatusOr<ReadReply>> HandleLockRead(NodeId from,
                                                ReadRequest request);
  sim::Task<StatusOr<ReadBatchReply>> HandleReadBatch(
      NodeId from, ReadBatchRequest request);
  sim::Task<StatusOr<ScanReply>> HandleScan(NodeId from, ScanRequest request);
  sim::Task<StatusOr<ScanBatchReply>> HandleScanBatch(NodeId from,
                                                      ScanBatchRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleWrite(NodeId from,
                                                     WriteRequest request);
  sim::Task<StatusOr<WriteBatchReply>> HandleWriteBatch(
      NodeId from, WriteBatchRequest request);
  /// Shared write path (single writes and batch entries): row lock, MVCC
  /// apply, redo append. Parameters are by value — coroutine frame safety.
  sim::Task<Status> ApplyWrite(TxnId txn, Timestamp snapshot,
                               WriteRequest::Op op, TableId table_id,
                               RowKey key, std::string value);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandlePrecommit(
      NodeId from, TxnControlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleCommit(
      NodeId from, TxnControlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleAbort(NodeId from,
                                                     TxnControlRequest request);
  /// Grouped epoch prepare / phase-2 (DESIGN.md §15): per-member apply +
  /// PREPARE append with one durability wait for the whole group; phase-2
  /// commits every listed member at the epoch's single timestamp. Both are
  /// idempotent per member through the decision memo.
  sim::Task<StatusOr<EpochPrepareReply>> HandleEpochPrepare(
      NodeId from, EpochPrepareRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleEpochCommit(
      NodeId from, EpochCommitRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleDdl(NodeId from,
                                                   DdlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleHeartbeat(
      NodeId from, TxnControlRequest request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleReplHello(
      NodeId from, ReplHelloRequest request);
  sim::Task<StatusOr<DnStatusReply>> HandleStatus(NodeId from,
                                                  rpc::EmptyMessage request);
  sim::Task<StatusOr<rpc::EmptyMessage>> HandleReadHorizon(
      NodeId from, ReadHorizonRequest request);
  /// Peer-shard outcome query (kDnTxnState): answers from the decision memo;
  /// kUnknown when this shard holds no decision (including when the txn is
  /// still prepared here too).
  sim::Task<StatusOr<TxnOutcomeReply>> HandleTxnState(
      NodeId from, TxnOutcomeRequest request);

  /// Appends to the redo stream, wakes the shipper, and returns the
  /// assigned LSN.
  Lsn AppendAndNotify(RedoRecord record);
  /// Records a transaction this shard rolled back on its own (failing batch
  /// entry). Bounded FIFO: the CN normally resolves with an abort broadcast
  /// shortly after, but a crashed CN must not grow the set forever.
  void RememberSelfAborted(TxnId txn);
  /// Fires the armed staged crash if it matches `stage` (one-shot): takes
  /// this node off the network and returns true.
  bool MaybeCrash(CrashStage stage);
  /// Applies a resolved outcome to an in-doubt transaction: commit/abort the
  /// provisional state, append COMMIT_PREPARED / ABORT_PREPARED, memoize the
  /// decision, release its pinned row locks. No-op if something else (a
  /// coordinator re-drive) resolved it first.
  void ResolveInDoubtTxn(TxnId txn, bool committed, Timestamp ts,
                         const char* source_counter);
  /// Outcome resolver coroutine, one per in-doubt transaction (spawned by
  /// Start()).
  sim::Task<void> ResolveOutcome(TxnId txn, InDoubtTxn info);

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId self_;
  rpc::RpcServer server_;
  ShardId shard_;
  DataNodeOptions options_;

  ShardStore store_;
  Catalog catalog_;
  LogStream log_;
  LockManager locks_;
  sim::CpuScheduler cpu_;
  std::unique_ptr<LogShipper> shipper_;
  DurabilityManager durability_;
  std::unique_ptr<Checkpointer> checkpointer_;
  Timestamp max_commit_ts_ = 0;
  /// Transactions this shard aborted itself after a failing batch entry.
  /// Even though the CN serializes batches per shard, a write batch that
  /// arrives for one of these (e.g. from a buggy or restarted coordinator)
  /// must not re-acquire locks behind the rollback: its entries are
  /// rejected until the coordinator's commit/abort resolution arrives.
  std::set<TxnId> self_aborted_txns_;
  std::deque<TxnId> self_aborted_order_;
  /// Commit/abort outcomes this shard has applied (first decision wins):
  /// duplicated or re-driven phase-2 deliveries are answered from here, and
  /// kDnTxnState serves peer in-doubt resolvers from it.
  DecisionMemo decided_;
  /// Prepared transactions inherited at promotion, still awaiting outcome
  /// resolution; their touched rows stay locked until resolved.
  std::map<TxnId, InDoubtTxn> in_doubt_;
  /// RPC client for outbound outcome-resolution queries (owner CN + peers).
  rpc::RpcClient client_;
  std::function<NodeId(ShardId)> shard_primary_;
  uint32_t num_shards_ = 0;
  uint64_t promotion_epoch_ = 0;
  CrashStage armed_crash_ = CrashStage::kNone;
  bool stopped_ = false;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_DATA_NODE_H_
