#include "src/cluster/data_node.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/storage/snapshot.h"

namespace globaldb {

DataNode::DataNode(sim::Simulator* sim, sim::Network* network, NodeId self,
                   ShardId shard, DataNodeOptions options)
    : sim_(sim),
      network_(network),
      self_(self),
      server_(network, self),
      shard_(shard),
      options_(options),
      store_(shard),
      locks_(sim, options.lock_timeout),
      cpu_(sim, options.cores),
      durability_(&log_, &metrics_) {
  BindService();
}

void DataNode::ConfigureReplication(std::vector<NodeId> replicas,
                                    ShipperOptions options) {
  shipper_ = std::make_unique<LogShipper>(sim_, network_, self_, shard_,
                                          &log_, std::move(replicas), options);
  // The shipper's quorum ack now bounds log truncation, and the durability
  // manager's checkpoint backs the shipper's truncated-cursor fallback.
  durability_.set_shipper(shipper_.get());
  shipper_->SetDurability(&durability_);
}

void DataNode::Start() {
  if (shipper_ != nullptr) shipper_->Start();
  if (options_.enable_checkpoints && checkpointer_ == nullptr) {
    Checkpointer::Options copts;
    copts.interval = options_.checkpoint_interval;
    checkpointer_ = std::make_unique<Checkpointer>(
        sim_, &store_, &catalog_, &durability_,
        [this](RedoRecord record) {
          return AppendAndNotify(std::move(record));
        },
        [this] { return max_commit_ts_; }, &metrics_, copts);
    checkpointer_->Start();
  }
}

void DataNode::Stop() {
  if (checkpointer_ != nullptr) checkpointer_->Stop();
  if (shipper_ != nullptr) shipper_->Stop();
}

void DataNode::InstallForPromotion(Lsn applied_lsn, Timestamp max_commit_ts,
                                   const std::string& catalog_image,
                                   const std::string& store_image) {
  GDB_CHECK(shipper_ == nullptr && checkpointer_ == nullptr)
      << "InstallForPromotion must precede ConfigureReplication/Start";
  Status status = InstallCatalog(Slice(catalog_image), &catalog_);
  if (status.ok()) status = InstallShardStore(Slice(store_image), &store_);
  GDB_CHECK(status.ok()) << "promotion install failed: " << status.ToString();
  // Continue the shard's LSN sequence where the promoted replica's replay
  // stopped: peers at or below `applied_lsn` re-base via snapshot, peers
  // cannot be above it (it was the most caught-up member).
  log_.ResetBase(applied_lsn + 1);
  max_commit_ts_ = std::max(max_commit_ts_, max_commit_ts);
  // In-doubt transactions captured mid-2PC in the image: the old primary
  // died before their commit/abort replicated this far, so no quorum-acked
  // commit is among them (the ack requires the commit record to be durable
  // here). Presumed abort — coordinators that still race a commit to this
  // shard find the transaction already rolled back.
  for (TxnId txn : store_.ProvisionalTxns()) {
    store_.AbortTxn(txn);
    AppendAndNotify(RedoRecord::Abort(txn));
    metrics_.Add("dn.promotion_aborts");
  }
  ShardSnapshot seed;
  seed.checkpoint_lsn = log_.next_lsn() - 1;
  seed.checkpoint_ts = 0;
  seed.max_commit_ts = max_commit_ts_;
  seed.catalog_image = EncodeCatalog(catalog_);
  seed.store_image = EncodeShardStore(store_);
  durability_.SeedCheckpoint(std::move(seed));
  metrics_.Add("dn.promotions");
}

Lsn DataNode::AppendAndNotify(RedoRecord record) {
  const Lsn lsn = log_.Append(std::move(record));
  if (shipper_ != nullptr) shipper_->NotifyAppend();
  return lsn;
}

void DataNode::BindService() {
  server_.Handle(kDnRead, [this](NodeId from, ReadRequest request) {
    return HandleRead(from, std::move(request));
  });
  server_.Handle(kDnLockRead, [this](NodeId from, ReadRequest request) {
    return HandleLockRead(from, std::move(request));
  });
  server_.Handle(kDnReadBatch, [this](NodeId from, ReadBatchRequest request) {
    return HandleReadBatch(from, std::move(request));
  });
  server_.Handle(kDnScan, [this](NodeId from, ScanRequest request) {
    return HandleScan(from, std::move(request));
  });
  server_.Handle(kDnWrite, [this](NodeId from, WriteRequest request) {
    return HandleWrite(from, std::move(request));
  });
  server_.Handle(kDnWriteBatch, [this](NodeId from, WriteBatchRequest request) {
    return HandleWriteBatch(from, std::move(request));
  });
  server_.Handle(kDnPrecommit, [this](NodeId from, TxnControlRequest request) {
    return HandlePrecommit(from, std::move(request));
  });
  server_.Handle(kDnCommit, [this](NodeId from, TxnControlRequest request) {
    return HandleCommit(from, std::move(request));
  });
  server_.Handle(kDnAbort, [this](NodeId from, TxnControlRequest request) {
    return HandleAbort(from, std::move(request));
  });
  server_.Handle(kDnDdl, [this](NodeId from, DdlRequest request) {
    return HandleDdl(from, std::move(request));
  });
  server_.Handle(kDnHeartbeat, [this](NodeId from, TxnControlRequest request) {
    return HandleHeartbeat(from, std::move(request));
  });
  server_.Handle(kReplHello, [this](NodeId from, ReplHelloRequest request) {
    return HandleReplHello(from, std::move(request));
  });
  server_.Handle(kDnStatus, [this](NodeId from, rpc::EmptyMessage request) {
    return HandleStatus(from, std::move(request));
  });
  server_.Handle(kDnReadHorizon,
                 [this](NodeId from, ReadHorizonRequest request) {
                   return HandleReadHorizon(from, std::move(request));
                 });
}

sim::Task<StatusOr<DnStatusReply>> DataNode::HandleStatus(
    NodeId from, rpc::EmptyMessage request) {
  // Health probes must stay cheap: no CPU charge, so a saturated node still
  // answers and is not mistaken for a dead one.
  metrics_.Add("dn.status_probes");
  DnStatusReply reply;
  reply.durable_lsn = log_.next_lsn() - 1;
  reply.max_commit_ts = max_commit_ts_;
  co_return reply;
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleReadHorizon(
    NodeId from, ReadHorizonRequest request) {
  // The RCP collector's cluster-wide oldest in-flight read timestamp: the
  // vacuum horizon for checkpoint-time GC (monotone clamp inside).
  durability_.AdvanceReadHorizon(request.horizon);
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleReplHello(
    NodeId from, ReplHelloRequest request) {
  metrics_.Add("dn.repl_hellos");
  if (request.shard == shard_ && shipper_ != nullptr) {
    shipper_->AnnounceReplica(from, request.durable_lsn);
  }
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<ReadReply>> DataNode::HandleRead(NodeId from,
                                                    ReadRequest request) {
  co_await cpu_.Consume(options_.read_cost);
  metrics_.Add("dn.reads");
  ReadReply reply;
  MvccTable* table = store_.GetTable(request.table);
  if (table == nullptr) {
    // The table exists in the catalog but no row has reached this shard:
    // an ordinary miss.
    co_return reply;
  }
  ReadResult result = table->Read(request.key, request.snapshot, request.txn);
  reply.found = result.found;
  reply.value = std::move(result.value);
  co_return reply;
}

sim::Task<StatusOr<ReadReply>> DataNode::HandleLockRead(NodeId from,
                                                        ReadRequest request) {
  co_await cpu_.Consume(options_.read_cost);
  metrics_.Add("dn.lock_reads");
  // SELECT ... FOR UPDATE semantics: take the row lock, then return the
  // *latest committed* version. Writers following this read update under
  // the held lock and cannot hit a write-write conflict.
  Status lock_status =
      co_await locks_.Acquire(request.txn, request.table, request.key);
  if (!lock_status.ok()) co_return lock_status;
  ReadReply reply;
  MvccTable* table = store_.GetTable(request.table);
  if (table == nullptr) {
    co_return reply;  // catalog-known table, storage-empty shard
  }
  ReadResult result = table->Read(request.key, kTimestampMax - 1, request.txn);
  reply.found = result.found;
  reply.value = std::move(result.value);
  co_return reply;
}

sim::Task<StatusOr<ReadBatchReply>> DataNode::HandleReadBatch(
    NodeId from, ReadBatchRequest request) {
  metrics_.Add("dn.read_batches");
  metrics_.Hist("dn.read_batch_entries")
      .Record(static_cast<int64_t>(request.entries.size()));
  ReadBatchReply reply;
  reply.results.resize(request.entries.size());
  // One snapshot resolution for the whole batch; each entry is then an
  // independent MVCC lookup (plus a row lock for for_update entries).
  // Entry failures are per-entry: a lock timeout on one key must not
  // invalidate the rows already fetched for the others.
  for (size_t i = 0; i < request.entries.size(); ++i) {
    co_await cpu_.Consume(options_.read_cost);
    metrics_.Add("dn.batched_reads");
    const ReadBatchRequest::Entry& entry = request.entries[i];
    ReadBatchReply::EntryResult& result = reply.results[i];
    Timestamp snapshot = request.snapshot;
    if (entry.for_update) {
      Status lock_status =
          co_await locks_.Acquire(request.txn, entry.table, entry.key);
      if (!lock_status.ok()) {
        result.code = lock_status.code();
        result.message = std::string(lock_status.message());
        continue;
      }
      // FOR UPDATE reads the latest committed version under the held lock.
      snapshot = kTimestampMax - 1;
    }
    MvccTable* table = store_.GetTable(entry.table);
    if (table == nullptr) {
      continue;  // catalog-known table, storage-empty shard: a miss
    }
    ReadResult read = table->Read(entry.key, snapshot, request.txn);
    result.found = read.found;
    result.value = std::move(read.value);
  }
  co_return reply;
}

sim::Task<StatusOr<ScanReply>> DataNode::HandleScan(NodeId from,
                                                    ScanRequest request) {
  metrics_.Add("dn.scans");
  ScanReply reply;
  MvccTable* table = store_.GetTable(request.table);
  if (table == nullptr) {
    // An empty shard simply has no rows in range.
    co_await cpu_.Consume(options_.read_cost);
    co_return reply;
  }
  auto rows = table->Scan(request.start, request.end, request.snapshot,
                          request.txn, request.limit, nullptr);
  co_await cpu_.Consume(options_.read_cost +
                        options_.scan_row_cost *
                            static_cast<SimDuration>(rows.size()));
  reply.rows.reserve(rows.size());
  for (auto& row : rows) {
    reply.rows.emplace_back(std::move(row.key), std::move(row.value));
  }
  co_return reply;
}

sim::Task<Status> DataNode::ApplyWrite(TxnId txn, Timestamp snapshot,
                                       WriteRequest::Op op, TableId table_id,
                                       RowKey key, std::string value) {
  // Row lock first: writers queue instead of instantly aborting. If the
  // transaction already holds the lock (it did a locked read), the write
  // applies to the latest version — no snapshot conflict is possible.
  const bool already_held = locks_.IsHeldBy(txn, table_id, key);
  Status lock_status = co_await locks_.Acquire(txn, table_id, key);
  if (!lock_status.ok()) co_return lock_status;
  if (already_held) snapshot = kTimestampMax;

  MvccTable* table = store_.GetOrCreateTable(table_id);
  Status status;
  switch (op) {
    case WriteRequest::Op::kInsert:
      status = table->Insert(key, value, txn);
      if (status.ok()) {
        AppendAndNotify(RedoRecord::Insert(txn, table_id, key, value));
      }
      break;
    case WriteRequest::Op::kUpdate:
      status = table->Update(key, value, txn, snapshot);
      if (status.ok()) {
        AppendAndNotify(RedoRecord::Update(txn, table_id, key, value));
      }
      break;
    case WriteRequest::Op::kDelete:
      status = table->Delete(key, txn, snapshot);
      if (status.ok()) {
        AppendAndNotify(RedoRecord::Delete(txn, table_id, key));
      }
      break;
  }
  co_return status;
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleWrite(
    NodeId from, WriteRequest request) {
  co_await cpu_.Consume(options_.write_cost);
  metrics_.Add("dn.writes");
  Status status = co_await ApplyWrite(request.txn, request.snapshot,
                                      request.op, request.table,
                                      std::move(request.key),
                                      std::move(request.value));
  if (!status.ok()) co_return status;
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<WriteBatchReply>> DataNode::HandleWriteBatch(
    NodeId from, WriteBatchRequest request) {
  metrics_.Add("dn.write_batches");
  metrics_.Hist("dn.write_batch_entries")
      .Record(static_cast<int64_t>(request.entries.size()));
  WriteBatchReply reply;
  reply.results.resize(request.entries.size());
  // This shard already rolled the transaction back after a failing entry in
  // an earlier batch. Applying anything now would re-acquire locks behind
  // the rollback and leave the shard dirty if the coordinator never sends
  // its abort; reject the whole batch instead.
  bool failed = self_aborted_txns_.count(request.txn) > 0;
  if (failed) metrics_.Add("dn.write_batch_rejects");
  for (size_t i = 0; i < request.entries.size(); ++i) {
    if (failed) {
      // One failing entry poisons the rest of the batch (and any batch
      // arriving after a self-rollback): they follow it in statement order
      // and the transaction is going to abort.
      reply.results[i].code = StatusCode::kAborted;
      reply.results[i].message = "skipped: transaction failed on this shard";
      continue;
    }
    co_await cpu_.Consume(options_.write_cost);
    metrics_.Add("dn.batched_writes");
    WriteBatchRequest::Entry& entry = request.entries[i];
    Status status = co_await ApplyWrite(request.txn, request.snapshot,
                                        entry.op, entry.table,
                                        std::move(entry.key),
                                        std::move(entry.value));
    reply.results[i].code = status.code();
    reply.results[i].message = std::string(status.message());
    if (!status.ok()) {
      // Roll this shard back immediately and free every lock the
      // transaction holds here: nothing stays orphaned even if the
      // coordinator's abort broadcast never arrives (it may have crashed
      // between flush and precommit).
      failed = true;
      metrics_.Add("dn.write_batch_failures");
      store_.AbortTxn(request.txn);
      AppendAndNotify(RedoRecord::Abort(request.txn));
      locks_.ReleaseAll(request.txn);
      RememberSelfAborted(request.txn);
    }
  }
  co_return reply;
}

void DataNode::RememberSelfAborted(TxnId txn) {
  if (!self_aborted_txns_.insert(txn).second) return;
  self_aborted_order_.push_back(txn);
  constexpr size_t kMaxRemembered = 1024;
  while (self_aborted_order_.size() > kMaxRemembered) {
    self_aborted_txns_.erase(self_aborted_order_.front());
    self_aborted_order_.pop_front();
  }
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandlePrecommit(
    NodeId from, TxnControlRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.precommits");
  // PENDING_COMMIT / PREPARE is written *before* the commit timestamp is
  // assigned (Section IV-A): replicas lock the transaction's tuples from
  // this point until the final commit/abort record. The timestamp field
  // carries the CN's lower bound on the eventual commit timestamp.
  RedoRecord record = request.two_phase ? RedoRecord::Prepare(request.txn)
                                        : RedoRecord::PendingCommit(request.txn);
  record.timestamp = request.ts;
  AppendAndNotify(std::move(record));
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleCommit(
    NodeId from, TxnControlRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.commits");
  self_aborted_txns_.erase(request.txn);
  store_.CommitTxn(request.txn, request.ts);
  max_commit_ts_ = std::max(max_commit_ts_, request.ts);
  AppendAndNotify(request.two_phase
                      ? RedoRecord::CommitPrepared(request.txn, request.ts)
                      : RedoRecord::Commit(request.txn, request.ts));
  const Lsn commit_lsn = log_.next_lsn() - 1;
  // Synchronous replication waits here; async returns immediately.
  Status durability;
  if (shipper_ != nullptr) {
    durability = co_await shipper_->WaitDurable(commit_lsn);
  }
  locks_.ReleaseAll(request.txn);
  if (!durability.ok()) co_return durability;
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleAbort(
    NodeId from, TxnControlRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.aborts");
  // The coordinator's resolution arrived; no further batches can follow it
  // for this transaction, so the self-abort marker can go.
  self_aborted_txns_.erase(request.txn);
  store_.AbortTxn(request.txn);
  AppendAndNotify(request.two_phase ? RedoRecord::AbortPrepared(request.txn)
                                    : RedoRecord::Abort(request.txn));
  locks_.ReleaseAll(request.txn);
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleDdl(
    NodeId from, DdlRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.ddls");
  Status status = catalog_.ApplyDdl(request.payload, request.ts);
  if (!status.ok()) co_return status;
  max_commit_ts_ = std::max(max_commit_ts_, request.ts);
  AppendAndNotify(RedoRecord::Ddl(request.ts, request.payload));
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleHeartbeat(
    NodeId from, TxnControlRequest request) {
  // Heartbeats are cheap; no CPU charge so they cannot be crowded out.
  metrics_.Add("dn.heartbeats");
  max_commit_ts_ = std::max(max_commit_ts_, request.ts);
  AppendAndNotify(RedoRecord::Heartbeat(request.ts));
  co_return rpc::EmptyMessage{};
}

}  // namespace globaldb
