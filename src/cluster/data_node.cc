#include "src/cluster/data_node.h"

#include <algorithm>
#include <utility>

#include "src/cluster/scan_batch_exec.h"
#include "src/common/logging.h"
#include "src/storage/snapshot.h"

namespace globaldb {

namespace {

// Outcome-resolution RPCs retry at the protocol level (the resolver loop
// owns backoff and re-routing across promotions), so the client itself
// never retries.
rpc::RpcPolicy ResolutionRpcPolicy() {
  rpc::RpcPolicy policy;
  policy.max_attempts = 1;
  return policy;
}

}  // namespace

DataNode::DataNode(sim::Simulator* sim, sim::Network* network, NodeId self,
                   ShardId shard, DataNodeOptions options)
    : sim_(sim),
      network_(network),
      self_(self),
      server_(network, self),
      shard_(shard),
      options_(options),
      store_(shard),
      locks_(sim, options.lock_timeout),
      cpu_(sim, options.cores),
      durability_(&log_, &metrics_),
      decided_(options.decision_memo_capacity),
      client_(network, self, ResolutionRpcPolicy()) {
  BindService();
}

void DataNode::ConfigureReplication(std::vector<NodeId> replicas,
                                    ShipperOptions options) {
  shipper_ = std::make_unique<LogShipper>(sim_, network_, self_, shard_,
                                          &log_, std::move(replicas), options);
  // The shipper's quorum ack now bounds log truncation, and the durability
  // manager's checkpoint backs the shipper's truncated-cursor fallback.
  durability_.set_shipper(shipper_.get());
  shipper_->SetDurability(&durability_);
}

void DataNode::Start() {
  if (shipper_ != nullptr) shipper_->Start();
  // A promoted primary resolves its inherited in-doubt transactions before
  // their rows unblock for new writers (the locks were pinned at install).
  for (const auto& [txn, info] : in_doubt_) {
    sim_->Spawn(ResolveOutcome(txn, info));
  }
  if (options_.enable_checkpoints && checkpointer_ == nullptr) {
    Checkpointer::Options copts;
    copts.interval = options_.checkpoint_interval;
    checkpointer_ = std::make_unique<Checkpointer>(
        sim_, &store_, &catalog_, &durability_,
        [this](RedoRecord record) {
          return AppendAndNotify(std::move(record));
        },
        [this] { return max_commit_ts_; }, &metrics_, copts);
    checkpointer_->Start();
  }
}

void DataNode::Stop() {
  stopped_ = true;
  if (checkpointer_ != nullptr) checkpointer_->Stop();
  if (shipper_ != nullptr) shipper_->Stop();
}

void DataNode::ConfigureOutcomeResolution(
    std::function<NodeId(ShardId)> shard_primary, uint32_t num_shards) {
  shard_primary_ = std::move(shard_primary);
  num_shards_ = num_shards;
}

void DataNode::InstallForPromotion(Lsn applied_lsn, Timestamp max_commit_ts,
                                   const std::string& catalog_image,
                                   const std::string& store_image,
                                   const std::map<TxnId, InDoubtTxn>& in_doubt,
                                   const DecisionMemo* replayed_decisions,
                                   uint64_t promotion_epoch) {
  GDB_CHECK(shipper_ == nullptr && checkpointer_ == nullptr)
      << "InstallForPromotion must precede ConfigureReplication/Start";
  Status status = InstallCatalog(Slice(catalog_image), &catalog_);
  if (status.ok()) status = InstallShardStore(Slice(store_image), &store_);
  GDB_CHECK(status.ok()) << "promotion install failed: " << status.ToString();
  // Continue the shard's LSN sequence where the promoted replica's replay
  // stopped: peers at or below `applied_lsn` re-base via snapshot, peers
  // cannot be above it (it was the most caught-up member).
  log_.ResetBase(applied_lsn + 1);
  max_commit_ts_ = std::max(max_commit_ts_, max_commit_ts);
  promotion_epoch_ = promotion_epoch;
  // Adopt the replica's replayed COMMIT/ABORT memo: a coordinator re-driving
  // phase-2 against this promoted primary must get an idempotent answer even
  // for outcomes the old primary applied.
  if (replayed_decisions != nullptr) decided_.Adopt(*replayed_decisions);
  // Provisional transactions captured in the image fall in two classes
  // (DESIGN.md §13):
  //   - prepared (in `in_doubt`): the coordinator may have decided commit.
  //     Keep them provisional, pin their row locks so new writers queue
  //     behind the outcome, and let Start() spawn a resolver per txn.
  //   - never prepared: the prepare durability wait guarantees the
  //     coordinator never decided commit without the PREPARE being durable
  //     on this (most-caught-up) replica — presumed abort is safe.
  for (TxnId txn : store_.ProvisionalTxns()) {
    auto doubt = in_doubt.find(txn);
    if (doubt != in_doubt.end()) {
      in_doubt_[txn] = doubt->second;
      for (const auto& [table_id, table] : store_.tables()) {
        const std::vector<RowKey>* keys = table->TouchedKeys(txn);
        if (keys == nullptr) continue;
        for (const RowKey& key : *keys) {
          locks_.TryAcquire(txn, table_id, key);
        }
      }
      metrics_.Add("dn.promotion_in_doubt");
      continue;
    }
    store_.AbortTxn(txn);
    AppendAndNotify(RedoRecord::AbortPrepared(txn));
    decided_.Record(txn, false, 0);
    metrics_.Add("dn.promotion_aborts");
    metrics_.Add("dn.promotion_aborts_presumed");
  }
  ShardSnapshot seed;
  seed.checkpoint_lsn = log_.next_lsn() - 1;
  seed.checkpoint_ts = 0;
  seed.max_commit_ts = max_commit_ts_;
  seed.catalog_image = EncodeCatalog(catalog_);
  seed.store_image = EncodeShardStore(store_);
  durability_.SeedCheckpoint(std::move(seed));
  metrics_.Add("dn.promotions");
}

Lsn DataNode::AppendAndNotify(RedoRecord record) {
  const Lsn lsn = log_.Append(std::move(record));
  if (shipper_ != nullptr) shipper_->NotifyAppend();
  return lsn;
}

bool DataNode::MaybeCrash(CrashStage stage) {
  if (armed_crash_ != stage || stage == CrashStage::kNone) return false;
  armed_crash_ = CrashStage::kNone;
  metrics_.Add("dn.staged_crashes");
  network_->SetNodeUp(self_, false);
  return true;
}

void DataNode::ResolveInDoubtTxn(TxnId txn, bool committed, Timestamp ts,
                                 const char* source_counter) {
  auto it = in_doubt_.find(txn);
  if (it == in_doubt_.end()) return;  // a coordinator re-drive won the race
  in_doubt_.erase(it);
  if (committed) {
    store_.CommitTxn(txn, ts);
    max_commit_ts_ = std::max(max_commit_ts_, ts);
    AppendAndNotify(RedoRecord::CommitPrepared(txn, ts));
    decided_.Record(txn, true, ts);
    metrics_.Add("dn.promotion_commits");
  } else {
    store_.AbortTxn(txn);
    AppendAndNotify(RedoRecord::AbortPrepared(txn));
    decided_.Record(txn, false, 0);
    metrics_.Add("dn.promotion_aborts");
  }
  metrics_.Add(source_counter);
  locks_.ReleaseAll(txn);
}

sim::Task<void> DataNode::ResolveOutcome(TxnId txn, InDoubtTxn info) {
  // The owning coordinator is encoded in the transaction id (CN node id in
  // the high bits); an empty participant list (the PREPARE pre-dated the
  // participant payload, e.g. rebuilt from a snapshot install) degrades to
  // querying every shard.
  const NodeId owner_cn = static_cast<NodeId>(txn >> 40);
  std::vector<ShardId> peers = info.participants;
  if (peers.empty()) {
    for (ShardId s = 0; s < num_shards_; ++s) peers.push_back(s);
  }
  int cn_transport_failures = 0;
  while (!stopped_ && in_doubt_.count(txn) > 0) {
    // 1. Own memo: a re-driven phase-2 delivery may already have landed.
    if (const TxnDecision* own = decided_.Lookup(txn)) {
      ResolveInDoubtTxn(txn, own->committed, own->ts,
                        own->committed ? "dn.outcome_resolved_by_cn"
                                       : "dn.promotion_aborts_resolved");
      co_return;
    }
    // 2. The owning CN's decision cache.
    TxnOutcomeRequest query;
    query.txn = txn;
    metrics_.Add("dn.outcome_queries");
    auto cn_reply = co_await client_.Call(owner_cn, kCnTxnOutcome, query);
    if (stopped_ || in_doubt_.count(txn) == 0) co_return;
    bool cn_definitive = false;
    if (cn_reply.ok()) {
      cn_transport_failures = 0;
      if (cn_reply->outcome == TxnOutcome::kCommitted) {
        ResolveInDoubtTxn(txn, true, cn_reply->ts,
                          "dn.outcome_resolved_by_cn");
        co_return;
      }
      if (cn_reply->outcome == TxnOutcome::kAborted) {
        ResolveInDoubtTxn(txn, false, 0, "dn.promotion_aborts_resolved");
        metrics_.Add("dn.outcome_resolved_by_cn");
        co_return;
      }
      // kUnknown from a reachable CN is definitive ("no decision was ever
      // made"); kPending means the CN is still deciding — retry.
      cn_definitive = cn_reply->outcome == TxnOutcome::kUnknown;
    } else {
      ++cn_transport_failures;
    }
    // 3. Peer participant primaries: any shard that applied the decision
    // (or its promoted successor, which adopted the memo) answers for it.
    bool peers_definitive = true;
    bool resolved = false;
    for (ShardId peer_shard : peers) {
      if (peer_shard == shard_) continue;
      const NodeId peer = shard_primary_ ? shard_primary_(peer_shard)
                                         : kInvalidNodeId;
      if (peer == kInvalidNodeId) {
        peers_definitive = false;
        continue;
      }
      metrics_.Add("dn.outcome_queries");
      auto peer_reply = co_await client_.Call(peer, kDnTxnState, query);
      if (stopped_ || in_doubt_.count(txn) == 0) co_return;
      if (!peer_reply.ok()) {
        peers_definitive = false;
        continue;
      }
      if (peer_reply->outcome == TxnOutcome::kCommitted) {
        ResolveInDoubtTxn(txn, true, peer_reply->ts,
                          "dn.outcome_resolved_by_peer");
        resolved = true;
        break;
      }
      if (peer_reply->outcome == TxnOutcome::kAborted) {
        ResolveInDoubtTxn(txn, false, 0, "dn.promotion_aborts_resolved");
        metrics_.Add("dn.outcome_resolved_by_peer");
        resolved = true;
        break;
      }
      if (peer_reply->outcome != TxnOutcome::kUnknown) {
        peers_definitive = false;  // kPending: ask again later
      }
    }
    if (resolved) co_return;
    // 4. Presumed abort — only once every source is definitive: the CN
    // answered "unknown" (or is considered permanently gone after repeated
    // transport failures) and every peer answered "unknown". A CN that
    // decided commit records the decision before phase-2, and a commit it
    // acked is durable at some participant's quorum, so universal "unknown"
    // means the commit was never decided or never acknowledged.
    if ((cn_definitive ||
         cn_transport_failures >= options_.outcome_cn_give_up) &&
        peers_definitive) {
      ResolveInDoubtTxn(txn, false, 0, "dn.promotion_aborts_presumed");
      co_return;
    }
    co_await sim_->Sleep(options_.outcome_retry_backoff);
  }
}

void DataNode::BindService() {
  server_.Handle(kDnRead, [this](NodeId from, ReadRequest request) {
    return HandleRead(from, std::move(request));
  });
  server_.Handle(kDnLockRead, [this](NodeId from, ReadRequest request) {
    return HandleLockRead(from, std::move(request));
  });
  server_.Handle(kDnReadBatch, [this](NodeId from, ReadBatchRequest request) {
    return HandleReadBatch(from, std::move(request));
  });
  server_.Handle(kDnScan, [this](NodeId from, ScanRequest request) {
    return HandleScan(from, std::move(request));
  });
  server_.Handle(kDnScanBatch, [this](NodeId from, ScanBatchRequest request) {
    return HandleScanBatch(from, std::move(request));
  });
  server_.Handle(kDnWrite, [this](NodeId from, WriteRequest request) {
    return HandleWrite(from, std::move(request));
  });
  server_.Handle(kDnWriteBatch, [this](NodeId from, WriteBatchRequest request) {
    return HandleWriteBatch(from, std::move(request));
  });
  server_.Handle(kDnPrecommit, [this](NodeId from, TxnControlRequest request) {
    return HandlePrecommit(from, std::move(request));
  });
  server_.Handle(kDnCommit, [this](NodeId from, TxnControlRequest request) {
    return HandleCommit(from, std::move(request));
  });
  server_.Handle(kDnAbort, [this](NodeId from, TxnControlRequest request) {
    return HandleAbort(from, std::move(request));
  });
  server_.Handle(kDnDdl, [this](NodeId from, DdlRequest request) {
    return HandleDdl(from, std::move(request));
  });
  server_.Handle(kDnHeartbeat, [this](NodeId from, TxnControlRequest request) {
    return HandleHeartbeat(from, std::move(request));
  });
  server_.Handle(kReplHello, [this](NodeId from, ReplHelloRequest request) {
    return HandleReplHello(from, std::move(request));
  });
  server_.Handle(kDnStatus, [this](NodeId from, rpc::EmptyMessage request) {
    return HandleStatus(from, std::move(request));
  });
  server_.Handle(kDnReadHorizon,
                 [this](NodeId from, ReadHorizonRequest request) {
                   return HandleReadHorizon(from, std::move(request));
                 });
  server_.Handle(kDnTxnState, [this](NodeId from, TxnOutcomeRequest request) {
    return HandleTxnState(from, std::move(request));
  });
  server_.Handle(kDnEpochPrepare,
                 [this](NodeId from, EpochPrepareRequest request) {
                   return HandleEpochPrepare(from, std::move(request));
                 });
  server_.Handle(kDnEpochCommit,
                 [this](NodeId from, EpochCommitRequest request) {
                   return HandleEpochCommit(from, std::move(request));
                 });
}

sim::Task<StatusOr<TxnOutcomeReply>> DataNode::HandleTxnState(
    NodeId from, TxnOutcomeRequest request) {
  // Peer in-doubt resolution stays cheap (no CPU charge): it runs while the
  // asking shard holds row locks.
  metrics_.Add("dn.txn_state_queries");
  TxnOutcomeReply reply;
  if (const TxnDecision* decision = decided_.Lookup(request.txn)) {
    reply.outcome = decision->committed ? TxnOutcome::kCommitted
                                        : TxnOutcome::kAborted;
    reply.ts = decision->ts;
  }
  // No decision (including: the txn is in doubt here too) → kUnknown.
  co_return reply;
}

sim::Task<StatusOr<DnStatusReply>> DataNode::HandleStatus(
    NodeId from, rpc::EmptyMessage request) {
  // Health probes must stay cheap: no CPU charge, so a saturated node still
  // answers and is not mistaken for a dead one.
  metrics_.Add("dn.status_probes");
  DnStatusReply reply;
  reply.durable_lsn = log_.next_lsn() - 1;
  reply.max_commit_ts = max_commit_ts_;
  co_return reply;
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleReadHorizon(
    NodeId from, ReadHorizonRequest request) {
  // The RCP collector's cluster-wide oldest in-flight read timestamp: the
  // vacuum horizon for checkpoint-time GC (monotone clamp inside).
  durability_.AdvanceReadHorizon(request.horizon);
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleReplHello(
    NodeId from, ReplHelloRequest request) {
  metrics_.Add("dn.repl_hellos");
  if (request.shard == shard_ && shipper_ != nullptr) {
    if (request.epoch < promotion_epoch_) {
      // The sender missed at least one promotion: its history may contain a
      // dead primary's unreplicated tail, so its announced durable LSN is
      // not trustworthy. Adopt it into the replica set if it is new (a
      // revived ex-primary re-integrating) and force a reset snapshot
      // instead of resuming redo shipping (DESIGN.md §13).
      metrics_.Add("dn.stale_epoch_hellos");
      shipper_->AddReplica(from);
      shipper_->RequireSnapshot(from);
    } else {
      shipper_->AnnounceReplica(from, request.durable_lsn);
    }
  }
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<ReadReply>> DataNode::HandleRead(NodeId from,
                                                    ReadRequest request) {
  co_await cpu_.Consume(options_.read_cost);
  metrics_.Add("dn.reads");
  ReadReply reply;
  MvccTable* table = store_.GetTable(request.table);
  if (table == nullptr) {
    // The table exists in the catalog but no row has reached this shard:
    // an ordinary miss.
    co_return reply;
  }
  ReadResult result = table->Read(request.key, request.snapshot, request.txn);
  reply.found = result.found;
  reply.value = std::move(result.value);
  co_return reply;
}

sim::Task<StatusOr<ReadReply>> DataNode::HandleLockRead(NodeId from,
                                                        ReadRequest request) {
  co_await cpu_.Consume(options_.read_cost);
  metrics_.Add("dn.lock_reads");
  // SELECT ... FOR UPDATE semantics: take the row lock, then return the
  // *latest committed* version. Writers following this read update under
  // the held lock and cannot hit a write-write conflict.
  Status lock_status =
      co_await locks_.Acquire(request.txn, request.table, request.key);
  if (!lock_status.ok()) co_return lock_status;
  ReadReply reply;
  MvccTable* table = store_.GetTable(request.table);
  if (table == nullptr) {
    co_return reply;  // catalog-known table, storage-empty shard
  }
  ReadResult result = table->Read(request.key, kTimestampMax - 1, request.txn);
  reply.found = result.found;
  reply.value = std::move(result.value);
  co_return reply;
}

sim::Task<StatusOr<ReadBatchReply>> DataNode::HandleReadBatch(
    NodeId from, ReadBatchRequest request) {
  metrics_.Add("dn.read_batches");
  metrics_.Hist("dn.read_batch_entries")
      .Record(static_cast<int64_t>(request.entries.size()));
  ReadBatchReply reply;
  reply.results.resize(request.entries.size());
  // One snapshot resolution for the whole batch; each entry is then an
  // independent MVCC lookup (plus a row lock for for_update entries).
  // Entry failures are per-entry: a lock timeout on one key must not
  // invalidate the rows already fetched for the others.
  for (size_t i = 0; i < request.entries.size(); ++i) {
    co_await cpu_.Consume(options_.read_cost);
    metrics_.Add("dn.batched_reads");
    const ReadBatchRequest::Entry& entry = request.entries[i];
    ReadBatchReply::EntryResult& result = reply.results[i];
    Timestamp snapshot = request.snapshot;
    if (entry.for_update) {
      Status lock_status =
          co_await locks_.Acquire(request.txn, entry.table, entry.key);
      if (!lock_status.ok()) {
        result.code = lock_status.code();
        result.message = std::string(lock_status.message());
        continue;
      }
      // FOR UPDATE reads the latest committed version under the held lock.
      snapshot = kTimestampMax - 1;
    }
    MvccTable* table = store_.GetTable(entry.table);
    if (table == nullptr) {
      continue;  // catalog-known table, storage-empty shard: a miss
    }
    ReadResult read = table->Read(entry.key, snapshot, request.txn);
    result.found = read.found;
    result.value = std::move(read.value);
  }
  co_return reply;
}

sim::Task<StatusOr<ScanReply>> DataNode::HandleScan(NodeId from,
                                                    ScanRequest request) {
  metrics_.Add("dn.scans");
  ScanReply reply;
  MvccTable* table = store_.GetTable(request.table);
  if (table == nullptr) {
    // An empty shard simply has no rows in range.
    co_await cpu_.Consume(options_.read_cost);
    co_return reply;
  }
  auto rows = table->Scan(request.start, request.end, request.snapshot,
                          request.txn, request.limit, nullptr);
  co_await cpu_.Consume(options_.read_cost +
                        options_.scan_row_cost *
                            static_cast<SimDuration>(rows.size()));
  reply.rows.reserve(rows.size());
  for (auto& row : rows) {
    reply.rows.emplace_back(std::move(row.key), std::move(row.value));
  }
  co_return reply;
}

sim::Task<StatusOr<ScanBatchReply>> DataNode::HandleScanBatch(
    NodeId from, ScanBatchRequest request) {
  metrics_.Add("dn.scan_batches");
  metrics_.Hist("dn.scan_batch_ranges")
      .Record(static_cast<int64_t>(request.ranges.size()));
  // On the primary the requesting transaction reads its own flushed
  // provisional writes; other transactions' provisional versions are simply
  // invisible, so no pending-wait predicate is needed.
  ScanBatchExecResult exec = ExecuteScanBatch(
      store_, request, request.txn, options_.scan_chunk_bytes,
      options_.read_cost, options_.scan_row_cost, nullptr);
  co_await cpu_.Consume(exec.cpu_cost);
  metrics_.Add("dn.scan_ranges", exec.ranges_served);
  metrics_.Add("dn.scan_rows_returned", exec.rows_returned);
  metrics_.Add("dn.scan_rows_filtered", exec.rows_filtered);
  metrics_.Add("dn.scan_limit_hits", exec.limit_hits);
  metrics_.Add("dn.scan_join_lookups", exec.join_lookups);
  if (exec.reply.truncated) metrics_.Add("dn.scan_chunks_truncated");
  co_return std::move(exec.reply);
}

sim::Task<Status> DataNode::ApplyWrite(TxnId txn, Timestamp snapshot,
                                       WriteRequest::Op op, TableId table_id,
                                       RowKey key, std::string value) {
  // Row lock first: writers queue instead of instantly aborting. If the
  // transaction already holds the lock (it did a locked read), the write
  // applies to the latest version — no snapshot conflict is possible.
  const bool already_held = locks_.IsHeldBy(txn, table_id, key);
  Status lock_status = co_await locks_.Acquire(txn, table_id, key);
  if (!lock_status.ok()) co_return lock_status;
  if (already_held) snapshot = kTimestampMax;

  MvccTable* table = store_.GetOrCreateTable(table_id);
  Status status;
  switch (op) {
    case WriteRequest::Op::kInsert:
      status = table->Insert(key, value, txn);
      if (status.ok()) {
        AppendAndNotify(RedoRecord::Insert(txn, table_id, key, value));
      }
      break;
    case WriteRequest::Op::kUpdate:
      status = table->Update(key, value, txn, snapshot);
      if (status.ok()) {
        AppendAndNotify(RedoRecord::Update(txn, table_id, key, value));
      }
      break;
    case WriteRequest::Op::kDelete:
      status = table->Delete(key, txn, snapshot);
      if (status.ok()) {
        AppendAndNotify(RedoRecord::Delete(txn, table_id, key));
      }
      break;
  }
  co_return status;
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleWrite(
    NodeId from, WriteRequest request) {
  co_await cpu_.Consume(options_.write_cost);
  metrics_.Add("dn.writes");
  if (decided_.Lookup(request.txn) != nullptr) {
    // Duplicated/reordered delivery after the transaction's outcome: do not
    // create provisional versions nothing will ever resolve.
    metrics_.Add("dn.decision_dedup_hits");
    co_return Status::FailedPrecondition("transaction already decided");
  }
  Status status = co_await ApplyWrite(request.txn, request.snapshot,
                                      request.op, request.table,
                                      std::move(request.key),
                                      std::move(request.value));
  if (!status.ok()) co_return status;
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<WriteBatchReply>> DataNode::HandleWriteBatch(
    NodeId from, WriteBatchRequest request) {
  metrics_.Add("dn.write_batches");
  metrics_.Hist("dn.write_batch_entries")
      .Record(static_cast<int64_t>(request.entries.size()));
  WriteBatchReply reply;
  reply.results.resize(request.entries.size());
  // This shard already rolled the transaction back after a failing entry in
  // an earlier batch (or the transaction's outcome is already decided and
  // this is a duplicated/reordered late delivery). Applying anything now
  // would re-acquire locks behind the resolution and leave orphaned
  // provisional versions; reject the whole batch instead.
  bool failed = self_aborted_txns_.count(request.txn) > 0;
  if (!failed && decided_.Lookup(request.txn) != nullptr) {
    metrics_.Add("dn.decision_dedup_hits");
    failed = true;
  }
  if (failed) metrics_.Add("dn.write_batch_rejects");
  for (size_t i = 0; i < request.entries.size(); ++i) {
    if (failed) {
      // One failing entry poisons the rest of the batch (and any batch
      // arriving after a self-rollback): they follow it in statement order
      // and the transaction is going to abort.
      reply.results[i].code = StatusCode::kAborted;
      reply.results[i].message = "skipped: transaction failed on this shard";
      continue;
    }
    co_await cpu_.Consume(options_.write_cost);
    metrics_.Add("dn.batched_writes");
    WriteBatchRequest::Entry& entry = request.entries[i];
    Status status = co_await ApplyWrite(request.txn, request.snapshot,
                                        entry.op, entry.table,
                                        std::move(entry.key),
                                        std::move(entry.value));
    reply.results[i].code = status.code();
    reply.results[i].message = std::string(status.message());
    if (!status.ok()) {
      // Roll this shard back immediately and free every lock the
      // transaction holds here: nothing stays orphaned even if the
      // coordinator's abort broadcast never arrives (it may have crashed
      // between flush and precommit).
      failed = true;
      metrics_.Add("dn.write_batch_failures");
      store_.AbortTxn(request.txn);
      AppendAndNotify(RedoRecord::Abort(request.txn));
      locks_.ReleaseAll(request.txn);
      RememberSelfAborted(request.txn);
      // The self-rollback is this shard's final word on the transaction:
      // memoize it so a late commit (which the coordinator cannot validly
      // send after seeing the entry failure) is rejected, and the
      // coordinator's abort broadcast dedups into a no-op.
      decided_.Record(request.txn, false, 0);
    }
  }
  co_return reply;
}

void DataNode::RememberSelfAborted(TxnId txn) {
  if (!self_aborted_txns_.insert(txn).second) return;
  self_aborted_order_.push_back(txn);
  constexpr size_t kMaxRemembered = 1024;
  while (self_aborted_order_.size() > kMaxRemembered) {
    self_aborted_txns_.erase(self_aborted_order_.front());
    self_aborted_order_.pop_front();
  }
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandlePrecommit(
    NodeId from, TxnControlRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.precommits");
  if (const TxnDecision* prior = decided_.Lookup(request.txn)) {
    // A duplicated (or reordered-past-the-decision) precommit delivery must
    // not re-append PREPARE: a replica replaying it after the commit/abort
    // record would consider the transaction pending forever.
    metrics_.Add("dn.decision_dedup_hits");
    if (!prior->committed) {
      co_return Status::FailedPrecondition(
          "transaction already aborted on this shard");
    }
    co_return rpc::EmptyMessage{};
  }
  // PENDING_COMMIT / PREPARE is written *before* the commit timestamp is
  // assigned (Section IV-A): replicas lock the transaction's tuples from
  // this point until the final commit/abort record. The timestamp field
  // carries the CN's lower bound on the eventual commit timestamp; a 2PC
  // PREPARE also carries the participant shard list, so a promoted replica
  // knows which peers to ask when resolving the transaction in doubt.
  RedoRecord record =
      request.two_phase
          ? RedoRecord::Prepare(request.txn, request.participants)
          : RedoRecord::PendingCommit(request.txn);
  record.timestamp = request.ts;
  const Lsn prepare_lsn = AppendAndNotify(std::move(record));
  if (request.two_phase && shipper_ != nullptr) {
    // The prepare must reach the replication mode's durability point before
    // the coordinator may decide commit: that is what entitles a promoted
    // (most-caught-up) replica to presume abort for any transaction whose
    // PREPARE it never replayed. No-op under async replication.
    Status durability = co_await shipper_->WaitDurable(prepare_lsn);
    if (!durability.ok()) co_return durability;
  }
  if (request.two_phase && MaybeCrash(CrashStage::kAfterPrepareAppend)) {
    co_return Status::Unavailable("staged crash after prepare append");
  }
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleCommit(
    NodeId from, TxnControlRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  if (request.two_phase && MaybeCrash(CrashStage::kOnCommitArrival)) {
    // The decision arrived but nothing of it applied: the coordinator must
    // re-drive it against this shard's promoted successor.
    co_return Status::Unavailable("staged crash on commit arrival");
  }
  if (const TxnDecision* prior = decided_.Lookup(request.txn)) {
    // Duplicated or re-driven phase-2 delivery: answer from the memo
    // (idempotent) instead of re-applying. A conflicting decision is a
    // protocol violation, surfaced loudly rather than absorbed.
    metrics_.Add("dn.decision_dedup_hits");
    if (!prior->committed) {
      co_return Status::FailedPrecondition(
          "transaction already aborted on this shard");
    }
    if (shipper_ != nullptr) {
      // Re-confirm durability so the retried ack carries the same guarantee
      // as the one that was lost.
      Status durability = co_await shipper_->WaitDurable(log_.next_lsn() - 1);
      if (!durability.ok()) co_return durability;
    }
    co_return rpc::EmptyMessage{};
  }
  metrics_.Add("dn.commits");
  self_aborted_txns_.erase(request.txn);
  in_doubt_.erase(request.txn);  // the coordinator's re-drive beat the resolver
  store_.CommitTxn(request.txn, request.ts);
  max_commit_ts_ = std::max(max_commit_ts_, request.ts);
  AppendAndNotify(request.two_phase
                      ? RedoRecord::CommitPrepared(request.txn, request.ts)
                      : RedoRecord::Commit(request.txn, request.ts));
  decided_.Record(request.txn, true, request.ts);
  const Lsn commit_lsn = log_.next_lsn() - 1;
  if (request.two_phase) {
    // Commit applied and appended; the ack (and possibly the shipped
    // record) is what gets lost.
    MaybeCrash(CrashStage::kMidPhase2);
  }
  // Synchronous replication waits here; async returns immediately.
  Status durability;
  if (shipper_ != nullptr) {
    durability = co_await shipper_->WaitDurable(commit_lsn);
  }
  locks_.ReleaseAll(request.txn);
  if (!durability.ok()) co_return durability;
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleAbort(
    NodeId from, TxnControlRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  if (const TxnDecision* prior = decided_.Lookup(request.txn)) {
    metrics_.Add("dn.decision_dedup_hits");
    self_aborted_txns_.erase(request.txn);
    if (prior->committed) {
      co_return Status::FailedPrecondition(
          "transaction already committed on this shard");
    }
    co_return rpc::EmptyMessage{};  // duplicate abort: a no-op
  }
  metrics_.Add("dn.aborts");
  // The coordinator's resolution arrived; no further batches can follow it
  // for this transaction, so the self-abort marker can go.
  self_aborted_txns_.erase(request.txn);
  in_doubt_.erase(request.txn);
  store_.AbortTxn(request.txn);
  AppendAndNotify(request.two_phase ? RedoRecord::AbortPrepared(request.txn)
                                    : RedoRecord::Abort(request.txn));
  decided_.Record(request.txn, false, 0);
  locks_.ReleaseAll(request.txn);
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<EpochPrepareReply>> DataNode::HandleEpochPrepare(
    NodeId from, EpochPrepareRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.epoch_prepares");
  metrics_.Hist("dn.epoch_prepare_members")
      .Record(static_cast<int64_t>(request.members.size()));
  EpochPrepareReply reply;
  reply.results.resize(request.members.size());
  Lsn last_prepare_lsn = kInvalidLsn;
  for (size_t i = 0; i < request.members.size(); ++i) {
    EpochPrepareRequest::Member& member = request.members[i];
    WriteBatchReply::EntryResult& result = reply.results[i];
    if (self_aborted_txns_.count(member.txn) > 0) {
      // This shard already rolled the member back (failing entry in an
      // earlier pipelined batch): reject it without touching state.
      result.code = StatusCode::kAborted;
      result.message = "transaction failed earlier on this shard";
      continue;
    }
    if (const TxnDecision* prior = decided_.Lookup(member.txn)) {
      // Duplicated/reordered delivery after the member's outcome: never
      // re-append PREPARE (a replica replaying it after the commit/abort
      // record would consider the member pending forever).
      metrics_.Add("dn.decision_dedup_hits");
      if (!prior->committed) {
        result.code = StatusCode::kAborted;
        result.message = "transaction already aborted on this shard";
      }
      continue;
    }
    // Apply the member's queued write tail (the entries that never reached
    // the pipelined batch threshold ride inside the prepare).
    Status applied = Status::OK();
    for (WriteBatchRequest::Entry& entry : member.entries) {
      co_await cpu_.Consume(options_.write_cost);
      Status status = co_await ApplyWrite(member.txn, member.snapshot,
                                          entry.op, entry.table,
                                          std::move(entry.key),
                                          std::move(entry.value));
      if (!status.ok()) {
        applied = status;
        break;
      }
    }
    if (!applied.ok()) {
      // Per-member self-rollback, exactly like a failing write-batch entry:
      // this member aborts individually, the rest of the group proceeds.
      metrics_.Add("dn.epoch_prepare_failures");
      store_.AbortTxn(member.txn);
      AppendAndNotify(RedoRecord::Abort(member.txn));
      locks_.ReleaseAll(member.txn);
      RememberSelfAborted(member.txn);
      decided_.Record(member.txn, false, 0);
      result.code = applied.code();
      result.message = std::string(applied.message());
      continue;
    }
    // PREPARE per member — even single-shard members, so a primary crash
    // after the CN's early ack leaves the member in-doubt (resolved commit
    // via the CN's decision cache) instead of presumed-abort.
    RedoRecord record = RedoRecord::Prepare(member.txn, member.participants);
    record.timestamp = request.ts_lower;
    last_prepare_lsn = AppendAndNotify(std::move(record));
  }
  if (last_prepare_lsn != kInvalidLsn && shipper_ != nullptr) {
    // One durability wait for the whole group: every PREPARE must reach the
    // replication mode's durability point before the coordinator may decide
    // commit (what entitles a promoted replica to presume abort for members
    // whose PREPARE it never replayed). No-op under async replication.
    Status durability = co_await shipper_->WaitDurable(last_prepare_lsn);
    if (!durability.ok()) co_return durability;
  }
  if (MaybeCrash(CrashStage::kAfterPrepareAppend)) {
    co_return Status::Unavailable("staged crash after prepare append");
  }
  co_return reply;
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleEpochCommit(
    NodeId from, EpochCommitRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.epoch_commit_rounds");
  if (MaybeCrash(CrashStage::kOnCommitArrival)) {
    // The grouped decision arrived but nothing of it applied: the epoch
    // manager re-drives it against this shard's promoted successor.
    co_return Status::Unavailable("staged crash on commit arrival");
  }
  bool applied_any = false;
  for (TxnId txn : request.commits) {
    if (const TxnDecision* prior = decided_.Lookup(txn)) {
      // Duplicated or re-driven delivery: idempotent per member. A
      // conflicting decision is a protocol violation, surfaced loudly.
      metrics_.Add("dn.decision_dedup_hits");
      if (!prior->committed) {
        co_return Status::FailedPrecondition(
            "epoch member already aborted on this shard");
      }
      continue;
    }
    metrics_.Add("dn.epoch_member_commits");
    self_aborted_txns_.erase(txn);
    in_doubt_.erase(txn);  // the grouped re-drive beat the resolver
    store_.CommitTxn(txn, request.ts);
    max_commit_ts_ = std::max(max_commit_ts_, request.ts);
    AppendAndNotify(RedoRecord::CommitPrepared(txn, request.ts));
    decided_.Record(txn, true, request.ts);
    applied_any = true;
  }
  for (TxnId txn : request.aborts) {
    if (const TxnDecision* prior = decided_.Lookup(txn)) {
      metrics_.Add("dn.decision_dedup_hits");
      if (prior->committed) {
        co_return Status::FailedPrecondition(
            "epoch member already committed on this shard");
      }
      continue;
    }
    metrics_.Add("dn.epoch_member_aborts");
    self_aborted_txns_.erase(txn);
    in_doubt_.erase(txn);
    store_.AbortTxn(txn);
    AppendAndNotify(RedoRecord::AbortPrepared(txn));
    decided_.Record(txn, false, 0);
    applied_any = true;
  }
  // The epoch id itself is an outcome key (ts != 0 ⇔ the epoch committed):
  // in-doubt resolvers and peers can answer epoch-level lookups from it.
  decided_.Record(request.epoch, request.ts != 0, request.ts);
  if (applied_any) MaybeCrash(CrashStage::kMidPhase2);
  // One durability wait for the whole group (covers the duplicate-delivery
  // reconfirmation too); async replication returns immediately.
  Status durability;
  if (shipper_ != nullptr && log_.next_lsn() > 1) {
    durability = co_await shipper_->WaitDurable(log_.next_lsn() - 1);
  }
  for (TxnId txn : request.commits) locks_.ReleaseAll(txn);
  for (TxnId txn : request.aborts) locks_.ReleaseAll(txn);
  if (!durability.ok()) co_return durability;
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleDdl(
    NodeId from, DdlRequest request) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.ddls");
  Status status = catalog_.ApplyDdl(request.payload, request.ts);
  if (!status.ok()) co_return status;
  max_commit_ts_ = std::max(max_commit_ts_, request.ts);
  AppendAndNotify(RedoRecord::Ddl(request.ts, request.payload));
  co_return rpc::EmptyMessage{};
}

sim::Task<StatusOr<rpc::EmptyMessage>> DataNode::HandleHeartbeat(
    NodeId from, TxnControlRequest request) {
  // Heartbeats are cheap; no CPU charge so they cannot be crowded out.
  metrics_.Add("dn.heartbeats");
  max_commit_ts_ = std::max(max_commit_ts_, request.ts);
  AppendAndNotify(RedoRecord::Heartbeat(request.ts));
  co_return rpc::EmptyMessage{};
}

}  // namespace globaldb
