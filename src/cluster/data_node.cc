#include "src/cluster/data_node.h"

#include "src/common/logging.h"

namespace globaldb {

DataNode::DataNode(sim::Simulator* sim, sim::Network* network, NodeId self,
                   ShardId shard, DataNodeOptions options)
    : sim_(sim),
      network_(network),
      self_(self),
      shard_(shard),
      options_(options),
      store_(shard),
      locks_(sim, options.lock_timeout),
      cpu_(sim, options.cores) {
  RegisterHandlers();
}

void DataNode::ConfigureReplication(std::vector<NodeId> replicas,
                                    ShipperOptions options) {
  shipper_ = std::make_unique<LogShipper>(sim_, network_, self_, shard_,
                                          &log_, std::move(replicas), options);
}

void DataNode::Start() {
  if (shipper_ != nullptr) shipper_->Start();
}

void DataNode::AppendAndNotify(RedoRecord record) {
  log_.Append(std::move(record));
  if (shipper_ != nullptr) shipper_->NotifyAppend();
}

void DataNode::RegisterHandlers() {
  auto bind = [this](auto method) {
    return [this, method](NodeId from,
                          std::string payload) -> sim::Task<std::string> {
      return (this->*method)(from, std::move(payload));
    };
  };
  network_->RegisterHandler(self_, kDnReadMethod, bind(&DataNode::HandleRead));
  network_->RegisterHandler(self_, kDnLockReadMethod,
                            bind(&DataNode::HandleLockRead));
  network_->RegisterHandler(self_, kDnScanMethod, bind(&DataNode::HandleScan));
  network_->RegisterHandler(self_, kDnWriteMethod,
                            bind(&DataNode::HandleWrite));
  network_->RegisterHandler(self_, kDnPrecommitMethod,
                            bind(&DataNode::HandlePrecommit));
  network_->RegisterHandler(self_, kDnCommitMethod,
                            bind(&DataNode::HandleCommit));
  network_->RegisterHandler(self_, kDnAbortMethod,
                            bind(&DataNode::HandleAbort));
  network_->RegisterHandler(self_, kDnDdlMethod, bind(&DataNode::HandleDdl));
  network_->RegisterHandler(self_, kDnHeartbeatMethod,
                            bind(&DataNode::HandleHeartbeat));
}

sim::Task<std::string> DataNode::HandleRead(NodeId from, std::string payload) {
  co_await cpu_.Consume(options_.read_cost);
  metrics_.Add("dn.reads");
  ReadReply reply;
  auto request = ReadRequest::Decode(payload);
  if (!request.ok()) {
    reply.status = request.status();
    co_return reply.Encode();
  }
  MvccTable* table = store_.GetTable(request->table);
  if (table == nullptr) {
    // The table exists in the catalog but no row has reached this shard:
    // an ordinary miss.
    co_return reply.Encode();
  }
  ReadResult result = table->Read(request->key, request->snapshot,
                                  request->txn);
  reply.found = result.found;
  reply.value = std::move(result.value);
  co_return reply.Encode();
}

sim::Task<std::string> DataNode::HandleLockRead(NodeId from,
                                                std::string payload) {
  co_await cpu_.Consume(options_.read_cost);
  metrics_.Add("dn.lock_reads");
  ReadReply reply;
  auto request = ReadRequest::Decode(payload);
  if (!request.ok()) {
    reply.status = request.status();
    co_return reply.Encode();
  }
  // SELECT ... FOR UPDATE semantics: take the row lock, then return the
  // *latest committed* version. Writers following this read update under
  // the held lock and cannot hit a write-write conflict.
  Status lock_status =
      co_await locks_.Acquire(request->txn, request->table, request->key);
  if (!lock_status.ok()) {
    reply.status = lock_status;
    co_return reply.Encode();
  }
  MvccTable* table = store_.GetTable(request->table);
  if (table == nullptr) {
    co_return reply.Encode();  // catalog-known table, storage-empty shard
  }
  ReadResult result =
      table->Read(request->key, kTimestampMax - 1, request->txn);
  reply.found = result.found;
  reply.value = std::move(result.value);
  co_return reply.Encode();
}

sim::Task<std::string> DataNode::HandleScan(NodeId from, std::string payload) {
  metrics_.Add("dn.scans");
  ScanReply reply;
  auto request = ScanRequest::Decode(payload);
  if (!request.ok()) {
    reply.status = request.status();
    co_return reply.Encode();
  }
  MvccTable* table = store_.GetTable(request->table);
  if (table == nullptr) {
    // An empty shard simply has no rows in range.
    co_await cpu_.Consume(options_.read_cost);
    co_return reply.Encode();
  }
  auto rows = table->Scan(request->start, request->end, request->snapshot,
                          request->txn, request->limit, nullptr);
  co_await cpu_.Consume(options_.read_cost +
                        options_.scan_row_cost *
                            static_cast<SimDuration>(rows.size()));
  reply.rows.reserve(rows.size());
  for (auto& row : rows) {
    reply.rows.emplace_back(std::move(row.key), std::move(row.value));
  }
  co_return reply.Encode();
}

sim::Task<std::string> DataNode::HandleWrite(NodeId from,
                                             std::string payload) {
  co_await cpu_.Consume(options_.write_cost);
  metrics_.Add("dn.writes");
  StatusReply reply;
  auto request = WriteRequest::Decode(payload);
  if (!request.ok()) {
    reply.status = request.status();
    co_return reply.Encode();
  }

  // Row lock first: writers queue instead of instantly aborting. If the
  // transaction already holds the lock (it did a locked read), the write
  // applies to the latest version — no snapshot conflict is possible.
  const bool already_held =
      locks_.IsHeldBy(request->txn, request->table, request->key);
  Status lock_status =
      co_await locks_.Acquire(request->txn, request->table, request->key);
  if (!lock_status.ok()) {
    reply.status = lock_status;
    co_return reply.Encode();
  }
  if (already_held) request->snapshot = kTimestampMax;

  MvccTable* table = store_.GetOrCreateTable(request->table);
  switch (request->op) {
    case WriteRequest::Op::kInsert:
      reply.status = table->Insert(request->key, request->value, request->txn);
      if (reply.status.ok()) {
        AppendAndNotify(RedoRecord::Insert(request->txn, request->table,
                                           request->key, request->value));
      }
      break;
    case WriteRequest::Op::kUpdate:
      reply.status = table->Update(request->key, request->value, request->txn,
                                   request->snapshot);
      if (reply.status.ok()) {
        AppendAndNotify(RedoRecord::Update(request->txn, request->table,
                                           request->key, request->value));
      }
      break;
    case WriteRequest::Op::kDelete:
      reply.status =
          table->Delete(request->key, request->txn, request->snapshot);
      if (reply.status.ok()) {
        AppendAndNotify(
            RedoRecord::Delete(request->txn, request->table, request->key));
      }
      break;
  }
  co_return reply.Encode();
}

sim::Task<std::string> DataNode::HandlePrecommit(NodeId from,
                                                 std::string payload) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.precommits");
  StatusReply reply;
  auto request = TxnControlRequest::Decode(payload);
  if (!request.ok()) {
    reply.status = request.status();
    co_return reply.Encode();
  }
  // PENDING_COMMIT / PREPARE is written *before* the commit timestamp is
  // assigned (Section IV-A): replicas lock the transaction's tuples from
  // this point until the final commit/abort record. The timestamp field
  // carries the CN's lower bound on the eventual commit timestamp.
  RedoRecord record = request->two_phase
                          ? RedoRecord::Prepare(request->txn)
                          : RedoRecord::PendingCommit(request->txn);
  record.timestamp = request->ts;
  AppendAndNotify(std::move(record));
  co_return reply.Encode();
}

sim::Task<std::string> DataNode::HandleCommit(NodeId from,
                                              std::string payload) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.commits");
  StatusReply reply;
  auto request = TxnControlRequest::Decode(payload);
  if (!request.ok()) {
    reply.status = request.status();
    co_return reply.Encode();
  }
  store_.CommitTxn(request->txn, request->ts);
  AppendAndNotify(request->two_phase
                      ? RedoRecord::CommitPrepared(request->txn, request->ts)
                      : RedoRecord::Commit(request->txn, request->ts));
  const Lsn commit_lsn = log_.next_lsn() - 1;
  // Synchronous replication waits here; async returns immediately.
  if (shipper_ != nullptr) {
    reply.status = co_await shipper_->WaitDurable(commit_lsn);
  }
  locks_.ReleaseAll(request->txn);
  co_return reply.Encode();
}

sim::Task<std::string> DataNode::HandleAbort(NodeId from,
                                             std::string payload) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.aborts");
  StatusReply reply;
  auto request = TxnControlRequest::Decode(payload);
  if (!request.ok()) {
    reply.status = request.status();
    co_return reply.Encode();
  }
  store_.AbortTxn(request->txn);
  AppendAndNotify(request->two_phase ? RedoRecord::AbortPrepared(request->txn)
                                     : RedoRecord::Abort(request->txn));
  locks_.ReleaseAll(request->txn);
  co_return reply.Encode();
}

sim::Task<std::string> DataNode::HandleDdl(NodeId from, std::string payload) {
  co_await cpu_.Consume(options_.commit_cost);
  metrics_.Add("dn.ddls");
  StatusReply reply;
  auto request = DdlRequest::Decode(payload);
  if (!request.ok()) {
    reply.status = request.status();
    co_return reply.Encode();
  }
  reply.status = catalog_.ApplyDdl(request->payload, request->ts);
  if (reply.status.ok()) {
    AppendAndNotify(RedoRecord::Ddl(request->ts, request->payload));
  }
  co_return reply.Encode();
}

sim::Task<std::string> DataNode::HandleHeartbeat(NodeId from,
                                                 std::string payload) {
  // Heartbeats are cheap; no CPU charge so they cannot be crowded out.
  metrics_.Add("dn.heartbeats");
  StatusReply reply;
  auto request = TxnControlRequest::Decode(payload);
  if (request.ok()) {
    AppendAndNotify(RedoRecord::Heartbeat(request->ts));
  }
  co_return reply.Encode();
}

}  // namespace globaldb
