#ifndef GLOBALDB_SRC_CLUSTER_REPLICA_NODE_H_
#define GLOBALDB_SRC_CLUSTER_REPLICA_NODE_H_

#include <memory>

#include "src/cluster/messages.h"
#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/replication/replica_applier.h"
#include "src/rpc/rpc_client.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/storage/catalog.h"
#include "src/storage/shard_store.h"

namespace globaldb {

struct ReplicaNodeOptions {
  int cores = 8;
  SimDuration read_cost = 8 * kMicrosecond;
  SimDuration scan_row_cost = 1 * kMicrosecond;
  /// Default reply byte budget for one kRorScanBatch chunk (DESIGN.md §14);
  /// a request's max_bytes overrides it.
  size_t scan_chunk_bytes = 64 * 1024;
  ApplierOptions applier;
};

/// A read-only replica of one shard: replays the primary's redo stream and
/// serves ROR (read-on-replica) queries at RCP-based snapshots. Readers
/// that hit a tuple locked by a pending-commit transaction wait until the
/// commit or abort record is replayed (Section IV-A).
class ReplicaNode {
 public:
  ReplicaNode(sim::Simulator* sim, sim::Network* network, NodeId self,
              ShardId shard, ReplicaNodeOptions options = {});

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  NodeId node_id() const { return self_; }
  ShardId shard() const { return shard_; }

  /// The primary data node this replica follows (for the restart
  /// announcement). Wired by the Cluster.
  void SetPrimary(NodeId primary) { primary_ = primary; }

  /// Shard promotion epoch this replica knows about, carried in kReplHello:
  /// a primary seeing a stale epoch forces a reset snapshot instead of
  /// resuming redo shipping (DESIGN.md §13). Updated by the Cluster on each
  /// promotion it tells this replica about; a revived ex-primary keeps its
  /// pre-crash epoch, which is exactly what makes its hello stale.
  void set_promotion_epoch(uint64_t epoch) { promotion_epoch_ = epoch; }
  uint64_t promotion_epoch() const { return promotion_epoch_; }

  /// Announces this replica to its primary now (kReplHello). Restart() does
  /// this automatically; the Cluster also calls it when re-integrating a
  /// revived ex-primary as a fresh replica.
  void AnnounceToPrimary();

  /// Simulated process restart after a crash. Durable state survives — the
  /// store, applied LSN, and pending-transaction map are all recovered from
  /// the replica's redo log — and the node re-announces its durable LSN to
  /// the primary (kReplHello) so the shipper rewinds its cursor and resumes
  /// catch-up immediately instead of waiting out its retry backoff.
  void Restart();

  ShardStore& store() { return store_; }
  Catalog& catalog() { return catalog_; }
  ReplicaApplier& applier() { return *applier_; }
  sim::CpuScheduler& cpu() { return cpu_; }
  Metrics& metrics() { return metrics_; }

 private:
  void BindService();
  sim::Task<void> SendHello();
  sim::Task<StatusOr<ReadReply>> HandleRead(NodeId from, ReadRequest request);
  sim::Task<StatusOr<ReadBatchReply>> HandleReadBatch(
      NodeId from, ReadBatchRequest request);
  sim::Task<StatusOr<ScanReply>> HandleScan(NodeId from, ScanRequest request);
  sim::Task<StatusOr<ScanBatchReply>> HandleScanBatch(NodeId from,
                                                      ScanBatchRequest request);
  sim::Task<StatusOr<RorStatusReply>> HandleStatus(NodeId from,
                                                   rpc::EmptyMessage request);

  sim::Simulator* sim_;
  NodeId self_;
  rpc::RpcServer server_;
  rpc::RpcClient client_;
  ShardId shard_;
  NodeId primary_ = kInvalidNodeId;
  uint64_t promotion_epoch_ = 0;
  ReplicaNodeOptions options_;

  ShardStore store_;
  Catalog catalog_;
  sim::CpuScheduler cpu_;
  std::unique_ptr<ReplicaApplier> applier_;
  Metrics metrics_;
};

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_REPLICA_NODE_H_
