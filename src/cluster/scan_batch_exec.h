#ifndef GLOBALDB_SRC_CLUSTER_SCAN_BATCH_EXEC_H_
#define GLOBALDB_SRC_CLUSTER_SCAN_BATCH_EXEC_H_

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "src/cluster/messages.h"
#include "src/storage/shard_store.h"
#include "src/storage/value.h"

namespace globaldb {

/// One synchronous pass over a ScanBatchRequest against a shard store: the
/// chunk-building core shared by the primary (kDnScanBatch) and replica
/// (kRorScanBatch) handlers (DESIGN.md §14). The pass itself never
/// suspends — CPU cost is accumulated into `cpu_cost` for the caller to
/// charge, and a replica pass that hits a pending-commit tuple lock aborts
/// with `blocker` set so the caller can WaitResolved and re-execute from
/// the request (the server keeps no cursor state between passes: a snapshot
/// install while parked frees every MvccTable*, so everything is re-fetched
/// on re-entry).
struct ScanBatchExecResult {
  ScanBatchReply reply;
  SimDuration cpu_cost = 0;
  /// Replica only: the pass stopped on an unresolved provisional txn that
  /// blocks this snapshot. The reply is invalid; wait and re-execute.
  TxnId blocker = kInvalidTxnId;
  int64_t ranges_served = 0;
  int64_t rows_returned = 0;
  int64_t rows_filtered = 0;
  int64_t limit_hits = 0;
  int64_t join_lookups = 0;
};

/// `must_wait` is null on primaries (provisional versions of other txns are
/// simply invisible to snapshot readers); on replicas it is the
/// applier-backed pending-commit predicate.
inline ScanBatchExecResult ExecuteScanBatch(
    const ShardStore& store, const ScanBatchRequest& request, TxnId reader,
    size_t default_chunk_bytes, SimDuration read_cost,
    SimDuration scan_row_cost, const std::function<bool(TxnId)>* must_wait) {
  ScanBatchExecResult out;
  out.reply.results.resize(request.ranges.size());
  const size_t budget =
      request.max_bytes != 0 ? request.max_bytes : default_chunk_bytes;
  size_t bytes = 0;
  for (size_t i = request.resume_range; i < request.ranges.size(); ++i) {
    if (bytes >= budget) {
      // The previous ranges filled the chunk; this one was never started
      // (empty resume_key tells the CN to keep its original bounds).
      out.reply.truncated = true;
      out.reply.resume_range = static_cast<uint32_t>(i);
      break;
    }
    const ScanBatchRequest::Range& range = request.ranges[i];
    ScanBatchReply::RangeResult& res = out.reply.results[i];
    ++out.ranges_served;
    out.cpu_cost += read_cost;
    const MvccTable* table = store.GetTable(range.table);
    if (table == nullptr) {
      continue;  // catalog-known table, storage-empty shard: no rows
    }
    MvccTable::PagedScanOptions opts;
    opts.snapshot = request.snapshot;
    opts.reader = reader;
    opts.limit = range.limit;
    opts.reverse = range.reverse;
    opts.filter_col = range.filter_col;
    opts.filter_eq = range.filter_eq;
    if (!range.reverse) {
      opts.max_bytes = budget > bytes ? budget - bytes : 1;
    }
    std::vector<TxnId> pending;
    MvccTable::PagedScanResult paged = table->ScanPaged(
        range.start, range.end, opts,
        must_wait != nullptr ? &pending : nullptr);
    out.cpu_cost +=
        scan_row_cost * static_cast<SimDuration>(paged.rows_examined);
    if (must_wait != nullptr) {
      for (TxnId txn : pending) {
        if ((*must_wait)(txn)) {
          out.blocker = txn;
          return out;
        }
      }
    }
    out.rows_filtered += static_cast<int64_t>(paged.rows_filtered);
    if (paged.limit_hit) ++out.limit_hits;
    res.limit_hit = paged.limit_hit;
    for (const auto& row : paged.rows) {
      bytes += row.key.size() + row.value.size() + 8;
    }
    if (range.join_table != kInvalidTableId) {
      // Co-located lookup join: resolve dependent rows under the same
      // snapshot, deduped by join key within this chunk. A base row and its
      // joins are atomic with respect to the byte cap (joined bytes count,
      // but never split a row from its lookups).
      const MvccTable* join_table = store.GetTable(range.join_table);
      std::set<RowKey> seen;
      for (const auto& row_entry : paged.rows) {
        Row row;
        if (!DecodeRow(Slice(row_entry.value), &row).ok()) continue;
        RowKey key = range.join_key_prefix;
        bool key_ok = true;
        for (uint32_t col : range.join_key_cols) {
          if (col >= row.size()) {
            key_ok = false;
            break;
          }
          EncodeKeyPart(row[col], &key);
        }
        if (!key_ok || !seen.insert(key).second) continue;
        ++out.join_lookups;
        out.cpu_cost += read_cost;
        if (join_table == nullptr) continue;
        if (range.join_prefix) {
          std::vector<TxnId> join_pending;
          auto joined = join_table->Scan(
              key, PrefixSuccessor(key), request.snapshot, reader,
              range.join_limit,
              must_wait != nullptr ? &join_pending : nullptr);
          out.cpu_cost +=
              scan_row_cost * static_cast<SimDuration>(joined.size());
          if (must_wait != nullptr) {
            for (TxnId txn : join_pending) {
              if ((*must_wait)(txn)) {
                out.blocker = txn;
                return out;
              }
            }
          }
          for (auto& j : joined) {
            bytes += j.key.size() + j.value.size() + 8;
            res.joined.emplace_back(std::move(j.key), std::move(j.value));
          }
        } else {
          ReadResult rr = join_table->Read(key, request.snapshot, reader);
          if (must_wait != nullptr && rr.provisional_txn != kInvalidTxnId &&
              (*must_wait)(rr.provisional_txn)) {
            out.blocker = rr.provisional_txn;
            return out;
          }
          if (rr.found) {
            bytes += key.size() + rr.value.size() + 8;
            res.joined.emplace_back(std::move(key), std::move(rr.value));
          }
        }
      }
    }
    out.rows_returned += static_cast<int64_t>(paged.rows.size());
    res.rows.reserve(paged.rows.size());
    for (auto& row : paged.rows) {
      res.rows.emplace_back(std::move(row.key), std::move(row.value));
    }
    if (paged.truncated) {
      out.reply.truncated = true;
      out.reply.resume_range = static_cast<uint32_t>(i);
      out.reply.resume_key = paged.resume_key;
      break;
    }
  }
  return out;
}

}  // namespace globaldb

#endif  // GLOBALDB_SRC_CLUSTER_SCAN_BATCH_EXEC_H_
