#include "src/cluster/replica_node.h"

#include <functional>
#include <utility>

#include "src/cluster/scan_batch_exec.h"

namespace globaldb {

ReplicaNode::ReplicaNode(sim::Simulator* sim, sim::Network* network,
                         NodeId self, ShardId shard,
                         ReplicaNodeOptions options)
    : sim_(sim),
      self_(self),
      server_(network, self),
      client_(network, self),
      shard_(shard),
      options_(options),
      store_(shard),
      cpu_(sim, options.cores) {
  applier_ = std::make_unique<ReplicaApplier>(sim, network, self, shard,
                                              &store_, &catalog_, &cpu_,
                                              options.applier);
  BindService();
}

void ReplicaNode::Restart() {
  metrics_.Add("replica.restarts");
  applier_->OnRestart();
  AnnounceToPrimary();
}

void ReplicaNode::AnnounceToPrimary() {
  if (primary_ != kInvalidNodeId) sim_->Spawn(SendHello());
}

sim::Task<void> ReplicaNode::SendHello() {
  ReplHelloRequest request;
  request.shard = shard_;
  request.durable_lsn = applier_->applied_lsn();
  request.epoch = promotion_epoch_;
  // Best effort: if the hello is lost the shipper still recovers via its
  // normal retry path, just slower.
  (void)co_await client_.Call(primary_, kReplHello, request);
}

void ReplicaNode::BindService() {
  server_.Handle(kRorRead, [this](NodeId from, ReadRequest request) {
    return HandleRead(from, std::move(request));
  });
  server_.Handle(kRorReadBatch, [this](NodeId from, ReadBatchRequest request) {
    return HandleReadBatch(from, std::move(request));
  });
  server_.Handle(kRorScan, [this](NodeId from, ScanRequest request) {
    return HandleScan(from, std::move(request));
  });
  server_.Handle(kRorScanBatch, [this](NodeId from, ScanBatchRequest request) {
    return HandleScanBatch(from, std::move(request));
  });
  server_.Handle(kRorStatus, [this](NodeId from, rpc::EmptyMessage request) {
    return HandleStatus(from, request);
  });
}

sim::Task<StatusOr<ReadReply>> ReplicaNode::HandleRead(NodeId from,
                                                       ReadRequest request) {
  co_await cpu_.Consume(options_.read_cost);
  metrics_.Add("ror.reads");
  ReadReply reply;
  // Pending-commit tuple lock: retry after the blocking txn resolves. The
  // table pointer must be re-fetched on every attempt — a snapshot install
  // while parked on WaitResolved rebuilds the whole store and frees the old
  // MvccTable out from under this coroutine.
  while (true) {
    MvccTable* table = store_.GetTable(request.table);
    if (table == nullptr) {
      // The table may simply have no rows replayed into this shard yet.
      co_return reply;
    }
    ReadResult result = table->Read(request.key, request.snapshot);
    if (result.provisional_txn != kInvalidTxnId &&
        applier_->MustWait(result.provisional_txn, request.snapshot)) {
      metrics_.Add("ror.pending_waits");
      co_await applier_->WaitResolved(result.provisional_txn);
      continue;
    }
    reply.found = result.found;
    reply.value = std::move(result.value);
    break;
  }
  co_return reply;
}

sim::Task<StatusOr<ReadBatchReply>> ReplicaNode::HandleReadBatch(
    NodeId from, ReadBatchRequest request) {
  metrics_.Add("ror.read_batches");
  metrics_.Hist("ror.read_batch_entries")
      .Record(static_cast<int64_t>(request.entries.size()));
  ReadBatchReply reply;
  reply.results.resize(request.entries.size());
  // One snapshot for the whole batch; pending-commit tuple locks are waited
  // out per entry, so one blocked key only delays itself.
  for (size_t i = 0; i < request.entries.size(); ++i) {
    co_await cpu_.Consume(options_.read_cost);
    metrics_.Add("ror.batched_reads");
    const ReadBatchRequest::Entry& entry = request.entries[i];
    ReadBatchReply::EntryResult& result = reply.results[i];
    if (entry.for_update) {
      // The CN routes lock-read groups to the primary; a for_update entry
      // here means a routing bug, not a user error.
      result.code = StatusCode::kInternal;
      result.message = "for_update read routed to a replica";
      continue;
    }
    while (true) {
      // Re-fetched per attempt: a snapshot install during WaitResolved frees
      // the previous MvccTable.
      MvccTable* table = store_.GetTable(entry.table);
      if (table == nullptr) {
        break;  // no rows replayed into this shard yet: a miss
      }
      ReadResult read = table->Read(entry.key, request.snapshot);
      if (read.provisional_txn != kInvalidTxnId &&
          applier_->MustWait(read.provisional_txn, request.snapshot)) {
        metrics_.Add("ror.pending_waits");
        co_await applier_->WaitResolved(read.provisional_txn);
        continue;
      }
      result.found = read.found;
      result.value = std::move(read.value);
      break;
    }
  }
  co_return reply;
}

sim::Task<StatusOr<ScanReply>> ReplicaNode::HandleScan(NodeId from,
                                                       ScanRequest request) {
  metrics_.Add("ror.scans");
  ScanReply reply;
  while (true) {
    // Re-fetched per attempt: a snapshot install during WaitResolved frees
    // the previous MvccTable.
    MvccTable* table = store_.GetTable(request.table);
    if (table == nullptr) {
      co_await cpu_.Consume(options_.read_cost);
      co_return reply;
    }
    std::vector<TxnId> pending;
    auto rows = table->Scan(request.start, request.end, request.snapshot,
                            kInvalidTxnId, request.limit, &pending);
    TxnId blocker = kInvalidTxnId;
    for (TxnId txn : pending) {
      if (applier_->MustWait(txn, request.snapshot)) {
        blocker = txn;
        break;
      }
    }
    if (blocker != kInvalidTxnId) {
      metrics_.Add("ror.pending_waits");
      co_await applier_->WaitResolved(blocker);
      continue;
    }
    co_await cpu_.Consume(options_.read_cost +
                          options_.scan_row_cost *
                              static_cast<SimDuration>(rows.size()));
    reply.rows.reserve(rows.size());
    for (auto& row : rows) {
      reply.rows.emplace_back(std::move(row.key), std::move(row.value));
    }
    break;
  }
  co_return reply;
}

sim::Task<StatusOr<ScanBatchReply>> ReplicaNode::HandleScanBatch(
    NodeId from, ScanBatchRequest request) {
  metrics_.Add("ror.scan_batches");
  metrics_.Hist("ror.scan_batch_ranges")
      .Record(static_cast<int64_t>(request.ranges.size()));
  // Pending-commit tuple locks abort the whole pass: ExecuteScanBatch keeps
  // no server-side cursor, so after WaitResolved the chunk is rebuilt from
  // the request alone, with every MvccTable* re-fetched — a snapshot install
  // while parked frees the previous store (the satellite-3 safety property).
  const std::function<bool(TxnId)> must_wait = [this,
                                                &request](TxnId txn) {
    return applier_->MustWait(txn, request.snapshot);
  };
  while (true) {
    ScanBatchExecResult exec = ExecuteScanBatch(
        store_, request, kInvalidTxnId, options_.scan_chunk_bytes,
        options_.read_cost, options_.scan_row_cost, &must_wait);
    if (exec.blocker != kInvalidTxnId) {
      metrics_.Add("ror.pending_waits");
      co_await applier_->WaitResolved(exec.blocker);
      continue;
    }
    co_await cpu_.Consume(exec.cpu_cost);
    metrics_.Add("ror.scan_ranges", exec.ranges_served);
    metrics_.Add("ror.scan_rows_returned", exec.rows_returned);
    metrics_.Add("ror.scan_rows_filtered", exec.rows_filtered);
    metrics_.Add("ror.scan_limit_hits", exec.limit_hits);
    metrics_.Add("ror.scan_join_lookups", exec.join_lookups);
    if (exec.reply.truncated) metrics_.Add("ror.scan_chunks_truncated");
    co_return std::move(exec.reply);
  }
}

sim::Task<StatusOr<RorStatusReply>> ReplicaNode::HandleStatus(
    NodeId from, rpc::EmptyMessage request) {
  RorStatusReply reply;
  reply.max_commit_ts = applier_->max_commit_ts();
  reply.applied_lsn = applier_->applied_lsn();
  reply.queue_delay = cpu_.CurrentQueueDelay();
  co_return reply;
}

}  // namespace globaldb
