#!/usr/bin/env bash
# Durability-lifecycle soak: 10 simulated minutes of TPC-C on the Three-City
# cluster with checkpoints every 5 s and three mid-run primary crashes.
# Emits BENCH_durability.json (override with OUT=...) and fails unless
#   - retained redo bytes and reclaimable MVCC garbage flat-line (late-run
#     peak <= 2x the steady-state peak before the crashes),
#   - vacuum actually reclaimed versions,
#   - all three crashed shards promoted a replica,
#   - median crash-to-promotion recovery < 500 ms (10x the 50 ms RTT),
#   - no transaction is left in doubt (the JSON also reports coordinator
#     commit re-drives and the in-doubt resolution breakdown).
# Usage: scripts/bench_durability.sh [build-dir]   (default: build)
# Env: GDB_SOAK_DURATION_MS / GDB_SOAK_CLIENTS forwarded to the bench.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${OUT:-BENCH_durability.json}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target soak_durability

GDB_SOAK_JSON="${OUT}" "${BUILD_DIR}/bench/soak_durability"

echo "== ${OUT} =="
cat "${OUT}"

field() {
  local v
  v="$(sed -n "s/.*\"$1\": \([0-9.-]*\).*/\1/p" "${OUT}" | head -1)"
  if [[ -z "${v}" ]]; then
    echo "FAIL: field $1 missing from ${OUT}" >&2
    exit 1
  fi
  echo "${v}"
}

LOG_RATIO="$(sed -n 's/.*"retained_log_bytes".*"ratio": \([0-9.]*\).*/\1/p' "${OUT}")"
DEAD_RATIO="$(sed -n 's/.*"dead_versions".*"ratio": \([0-9.]*\).*/\1/p' "${OUT}")"
GCED="$(field versions_gced)"
PROMOTIONS="$(field promotions)"
RECOVERY_P50="$(field recovery_p50_ms)"
COMMIT_RETRIES="$(field commit_retries)"
IN_DOUBT_INHERITED="$(sed -n 's/.*"in_doubt".*"inherited": \([0-9]*\).*/\1/p' "${OUT}")"
IN_DOUBT_OPEN="$(sed -n 's/.*"in_doubt".*"open": \([0-9]*\).*/\1/p' "${OUT}")"

awk -v r="${LOG_RATIO}" 'BEGIN { exit !(r <= 2.0) }' || {
  echo "FAIL: retained log bytes grew (late/steady ratio ${LOG_RATIO} > 2.0)" >&2
  exit 1
}
awk -v r="${DEAD_RATIO}" 'BEGIN { exit !(r <= 2.0) }' || {
  echo "FAIL: MVCC garbage grew (late/steady ratio ${DEAD_RATIO} > 2.0)" >&2
  exit 1
}
awk -v g="${GCED}" 'BEGIN { exit !(g > 0) }' || {
  echo "FAIL: vacuum reclaimed nothing (versions_gced=${GCED})" >&2
  exit 1
}
awk -v p="${PROMOTIONS}" 'BEGIN { exit !(p == 3) }' || {
  echo "FAIL: expected 3 promotions, got ${PROMOTIONS}" >&2
  exit 1
}
awk -v r="${RECOVERY_P50}" 'BEGIN { exit !(r < 500.0) }' || {
  echo "FAIL: recovery p50 ${RECOVERY_P50} ms >= 500 ms (10x RTT)" >&2
  exit 1
}
awk -v o="${IN_DOUBT_OPEN:-1}" 'BEGIN { exit !(o == 0) }' || {
  echo "FAIL: ${IN_DOUBT_OPEN:-?} transactions still in doubt after the soak" >&2
  exit 1
}
echo "OK: log ratio ${LOG_RATIO}, garbage ratio ${DEAD_RATIO}," \
     "gced ${GCED}, promotions ${PROMOTIONS}, recovery p50 ${RECOVERY_P50} ms," \
     "commit retries ${COMMIT_RETRIES}, in-doubt inherited" \
     "${IN_DOUBT_INHERITED:-0} (open ${IN_DOUBT_OPEN:-0})"
