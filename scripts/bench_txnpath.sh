#!/usr/bin/env bash
# Hot-transaction-path benchmark (DESIGN.md §10): TPC-C NewOrder with
# pipelined write batching on vs off at 50 ms RTT (GTM mode, remote home
# warehouses), plus GTM timestamp coalescing under 16 closed-loop clients.
# Also runs the epoch/group-commit acceptance pair (DESIGN.md §15): EPOCH
# vs batched GTM at the same 50 ms RTT.
# Emits BENCH_txnpath.json (override with OUT=...) and fails unless
#   - batching gives a >= 2x NewOrder throughput speedup OR a >= 40% p50
#     latency reduction,
#   - coalescing needs < 0.5 GTM RPCs per transaction,
#   - EPOCH cuts the NewOrder p50 by >= 1.5x vs batched GTM, and
#   - EPOCH needs <= 0.1 commit-timestamp RPCs per committed transaction.
# Usage: scripts/bench_txnpath.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${OUT:-BENCH_txnpath.json}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target ablation_txnpath

# Client count deep enough that per-txn commit coordination visibly queues
# (the regime the epoch protocol targets); 20 ms seals trade ~10 ms of
# added wait for ~10 members per epoch grant.
GDB_TXNPATH_GATE_ONLY=1 GDB_TXNPATH_JSON="${OUT}" \
GDB_BENCH_DURATION_MS="${GDB_BENCH_DURATION_MS:-1500}" \
GDB_BENCH_CLIENTS="${GDB_BENCH_CLIENTS:-900}" \
GDB_EPOCH_INTERVAL_MS="${GDB_EPOCH_INTERVAL_MS:-20}" \
  "${BUILD_DIR}/bench/ablation_txnpath"

echo "== ${OUT} =="
cat "${OUT}"

json_field() {
  sed -n "s/.*\"$1\": \([-0-9.]*\).*/\1/p" "${OUT}"
}

SPEEDUP="$(json_field speedup)"
P50_CUT="$(json_field p50_reduction)"
RPCS="$(json_field gtm_rpcs_per_txn_coalesced)"

awk -v s="${SPEEDUP}" -v c="${P50_CUT}" \
    'BEGIN { exit !(s >= 2.0 || c >= 0.40) }' || {
  echo "FAIL: batching speedup ${SPEEDUP}x < 2x and p50 reduction" \
       "${P50_CUT} < 40%" >&2
  exit 1
}
echo "OK: batching speedup ${SPEEDUP}x / p50 reduction ${P50_CUT}"

awk -v r="${RPCS}" 'BEGIN { exit !(r < 0.5) }' || {
  echo "FAIL: ${RPCS} GTM RPCs per txn >= 0.5 with coalescing" >&2
  exit 1
}
echo "OK: ${RPCS} GTM RPCs per txn with coalescing (< 0.5)"

EPOCH_SPEEDUP="$(json_field epoch_speedup)"
EPOCH_RPCS="$(json_field epoch_commit_ts_rpcs_per_txn)"

awk -v s="${EPOCH_SPEEDUP}" 'BEGIN { exit !(s >= 1.5) }' || {
  echo "FAIL: EPOCH p50 speedup ${EPOCH_SPEEDUP}x < 1.5x vs batched GTM" >&2
  exit 1
}
echo "OK: EPOCH p50 speedup ${EPOCH_SPEEDUP}x vs batched GTM (>= 1.5x)"

awk -v r="${EPOCH_RPCS}" 'BEGIN { exit !(r <= 0.1) }' || {
  echo "FAIL: ${EPOCH_RPCS} epoch commit-ts RPCs per txn > 0.1" >&2
  exit 1
}
echo "OK: ${EPOCH_RPCS} epoch commit-ts RPCs per committed txn (<= 0.1)"
