#!/usr/bin/env bash
# Hot-transaction-path benchmark (DESIGN.md §10): TPC-C NewOrder with
# pipelined write batching on vs off at 50 ms RTT (GTM mode, remote home
# warehouses), plus GTM timestamp coalescing under 16 closed-loop clients.
# Emits BENCH_txnpath.json (override with OUT=...) and fails unless
#   - batching gives a >= 2x NewOrder throughput speedup OR a >= 40% p50
#     latency reduction, and
#   - coalescing needs < 0.5 GTM RPCs per transaction.
# Usage: scripts/bench_txnpath.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${OUT:-BENCH_txnpath.json}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target ablation_txnpath

GDB_TXNPATH_GATE_ONLY=1 GDB_TXNPATH_JSON="${OUT}" \
GDB_BENCH_DURATION_MS="${GDB_BENCH_DURATION_MS:-1500}" \
GDB_BENCH_CLIENTS="${GDB_BENCH_CLIENTS:-180}" \
  "${BUILD_DIR}/bench/ablation_txnpath"

echo "== ${OUT} =="
cat "${OUT}"

json_field() {
  sed -n "s/.*\"$1\": \([-0-9.]*\).*/\1/p" "${OUT}"
}

SPEEDUP="$(json_field speedup)"
P50_CUT="$(json_field p50_reduction)"
RPCS="$(json_field gtm_rpcs_per_txn_coalesced)"

awk -v s="${SPEEDUP}" -v c="${P50_CUT}" \
    'BEGIN { exit !(s >= 2.0 || c >= 0.40) }' || {
  echo "FAIL: batching speedup ${SPEEDUP}x < 2x and p50 reduction" \
       "${P50_CUT} < 40%" >&2
  exit 1
}
echo "OK: batching speedup ${SPEEDUP}x / p50 reduction ${P50_CUT}"

awk -v r="${RPCS}" 'BEGIN { exit !(r < 0.5) }' || {
  echo "FAIL: ${RPCS} GTM RPCs per txn >= 0.5 with coalescing" >&2
  exit 1
}
echo "OK: ${RPCS} GTM RPCs per txn with coalescing (< 0.5)"
