#!/usr/bin/env bash
# Log-shipping transport benchmark: 16 MB catch-up throughput and
# steady-state visibility lag over a 50 ms RTT link, stop-and-wait
# (window=1) vs the default pipelined window=8. Emits BENCH_logship.json
# (override with OUT=...) and fails if the catch-up speedup is < 4x.
# Usage: scripts/bench_logship.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${OUT:-BENCH_logship.json}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target ablation_logship

GDB_LOGSHIP_CATCHUP_ONLY=1 GDB_LOGSHIP_JSON="${OUT}" \
  "${BUILD_DIR}/bench/ablation_logship"

echo "== ${OUT} =="
cat "${OUT}"

SPEEDUP="$(sed -n 's/.*"catchup_speedup": \([0-9.]*\).*/\1/p' "${OUT}")"
awk -v s="${SPEEDUP}" 'BEGIN { exit !(s >= 4.0) }' || {
  echo "FAIL: catch-up speedup ${SPEEDUP}x < 4x" >&2
  exit 1
}
echo "OK: catch-up speedup ${SPEEDUP}x >= 4x"
