#!/usr/bin/env bash
# Full verification: configure a fresh build tree with warnings-as-errors,
# build everything (library, tests, benches, examples), run the test suite,
# then rebuild with ASan+UBSan and run the tier-1 suite plus a chaos smoke
# (the randomized fault-schedule test on its three fixed seeds) under the
# sanitizers. Usage: scripts/check.sh [build-dir]   (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"
SAN_DIR="${BUILD_DIR}-asan"

rm -rf "${BUILD_DIR}"
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-Werror"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# Log-shipping transport smoke: the pipelined window must keep its >= 4x
# catch-up advantage over stop-and-wait on a 50 ms RTT link.
echo "== log shipping bench smoke =="
scripts/bench_logship.sh "${BUILD_DIR}"

# Hot-transaction-path smoke: write batching must keep its >= 2x NewOrder
# speedup (or >= 40% p50 cut) at 50 ms RTT, GTM coalescing must stay under
# 0.5 GTM RPCs per transaction with 16 concurrent clients, and epoch/group
# commit must keep its >= 1.5x NewOrder p50 cut over batched GTM at 50 ms
# RTT with <= 0.1 commit-timestamp RPCs per committed transaction.
echo "== txn path bench smoke =="
scripts/bench_txnpath.sh "${BUILD_DIR}"

# Read-path smoke: MultiGet must keep its >= 2x NewOrder p50 cut at 50 ms
# RTT and must not cost read-only TPC-C throughput with ROR on, and the
# batched scan path must keep its >= 2x Delivery and Stock-level p50 cuts
# at 50 ms RTT over the serial-scan baseline.
echo "== read path bench smoke =="
scripts/bench_readpath.sh "${BUILD_DIR}"

# Durability soak: 10 simulated minutes of TPC-C with checkpoints every 5 s
# and three primary crashes. Retained log bytes and MVCC garbage must
# flat-line, vacuum must reclaim, and median crash-to-promotion recovery
# must stay under 10x the 50 ms RTT. Emits BENCH_durability.json.
echo "== durability soak =="
scripts/bench_durability.sh "${BUILD_DIR}"

echo "== ASan+UBSan pass =="
rm -rf "${SAN_DIR}"
cmake -B "${SAN_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-Werror -fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "${SAN_DIR}" -j "$(nproc)"
export ASAN_OPTIONS="detect_leaks=0:abort_on_error=1"
export UBSAN_OPTIONS="print_stacktrace=1"
ctest --test-dir "${SAN_DIR}" --output-on-failure -j "$(nproc)"

# Chaos smoke: the seeded random fault schedule (TPC-C under crashes,
# partitions, and clock outages) and the primary-failover acceptance run
# (three seeds each), under sanitizers.
echo "== chaos smoke (random faults + primary failover) =="
ctest --test-dir "${SAN_DIR}" --output-on-failure \
  -R 'RandomFaultTest|ClockFallbackTest|PartitionHealTest|PrimaryFailoverTest'

# 2PC outcome recovery: primaries killed at targeted protocol points
# (after prepare-append, on commit arrival, mid phase-2) across three seeds
# must leave zero cross-shard atomicity violations and zero lost acked
# commits; the deterministic resolution-path and message-duplication tests
# ride along, all under sanitizers.
echo "== staged-crash atomicity (2PC outcome recovery) =="
ctest --test-dir "${SAN_DIR}" --output-on-failure \
  -R 'StagedCrashAtomicityTest|InDoubtResolutionTest|MessageChaosTest'

# Epoch/group commit: grant/phase-2 sharing, per-member OCC aborts,
# cross-epoch validation, duplicate grouped phase-2 delivery, the
# three-seed staged-crash run (no acked epoch member lost, no residual
# in-doubt), the EPOCH -> GTM health demotion, and the range-grant
# abandonment contract, under sanitizers.
echo "== epoch/group commit smoke (OCC + staged crashes + fallback) =="
ctest --test-dir "${SAN_DIR}" --output-on-failure \
  -R 'EpochCommitTest|EpochFaultTest|EpochFallbackTest|GtmCoalesceTest'

# Batched scan path: pushdown/merge/chunking/failover correctness, the
# three-seed batched-vs-serial equivalence oracle, and the ROR snapshot
# install races (a parked point read and a parked scan chunk must not
# dangle across a store rebuild), under sanitizers.
echo "== scan path smoke (batched scans + equivalence + ROR races) =="
ctest --test-dir "${SAN_DIR}" --output-on-failure \
  -R 'ScanBatchTest|ScanEquivalenceTest|RorSnapshotRaceTest'
