#!/usr/bin/env bash
# Full verification: configure a fresh build tree with warnings-as-errors,
# build everything (library, tests, benches, examples), and run the test
# suite. Usage: scripts/check.sh [build-dir]   (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

rm -rf "${BUILD_DIR}"
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-Werror"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
