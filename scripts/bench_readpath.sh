#!/usr/bin/env bash
# Batched-read-path benchmark (DESIGN.md §11): TPC-C NewOrder with MultiGet
# on vs off at 50 ms RTT (GTM mode, remote home warehouses, write batching
# on in both), plus the fig6c read-only TPC-C configuration (ROR on) as a
# throughput non-regression pair.
# A third section gates the batched scan path (DESIGN.md §14): TPC-C
# Delivery and Stock-level driven alone with remote home warehouses at
# 50 ms RTT, scan batching off vs on.
# Emits BENCH_readpath.json (override with OUT=...) and fails unless
#   - batching cuts NewOrder p50 latency by >= 2x (p50_off / p50_on), and
#   - read-only throughput with batching on stays >= 0.9x the serial path,
#   - scan batching cuts Delivery p50 by >= 2x, and
#   - scan batching cuts Stock-level p50 by >= 2x.
# Usage: scripts/bench_readpath.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${OUT:-BENCH_readpath.json}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target ablation_readpath

GDB_READPATH_GATE_ONLY=1 GDB_READPATH_JSON="${OUT}" \
GDB_BENCH_DURATION_MS="${GDB_BENCH_DURATION_MS:-1500}" \
GDB_BENCH_CLIENTS="${GDB_BENCH_CLIENTS:-180}" \
  "${BUILD_DIR}/bench/ablation_readpath"

echo "== ${OUT} =="
cat "${OUT}"

json_field() {
  sed -n "s/.*\"$1\": \([-0-9.]*\).*/\1/p" "${OUT}"
}

P50_RATIO="$(json_field neworder_p50_ratio)"
TPS_RATIO="$(json_field readonly_tps_ratio)"

awk -v r="${P50_RATIO}" 'BEGIN { exit !(r >= 2.0) }' || {
  echo "FAIL: NewOrder p50 reduction ${P50_RATIO}x < 2x with read" \
       "batching" >&2
  exit 1
}
echo "OK: NewOrder p50 reduction ${P50_RATIO}x (>= 2x)"

awk -v r="${TPS_RATIO}" 'BEGIN { exit !(r >= 0.9) }' || {
  echo "FAIL: read-only throughput ratio ${TPS_RATIO} < 0.9 with read" \
       "batching on" >&2
  exit 1
}
echo "OK: read-only throughput ratio ${TPS_RATIO} (>= 0.9)"

DELIVERY_RATIO="$(json_field delivery_scan_p50_ratio)"
STOCKLEVEL_RATIO="$(json_field stocklevel_scan_p50_ratio)"

awk -v r="${DELIVERY_RATIO}" 'BEGIN { exit !(r >= 2.0) }' || {
  echo "FAIL: Delivery p50 reduction ${DELIVERY_RATIO}x < 2x with scan" \
       "batching" >&2
  exit 1
}
echo "OK: Delivery p50 reduction ${DELIVERY_RATIO}x (>= 2x)"

awk -v r="${STOCKLEVEL_RATIO}" 'BEGIN { exit !(r >= 2.0) }' || {
  echo "FAIL: Stock-level p50 reduction ${STOCKLEVEL_RATIO}x < 2x with scan" \
       "batching" >&2
  exit 1
}
echo "OK: Stock-level p50 reduction ${STOCKLEVEL_RATIO}x (>= 2x)"
