// Parameterized round-trip sweep for the LZ codec over content classes and
// sizes — every (class, size) pair must round-trip exactly, and the
// compressible classes must actually shrink.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/common/rng.h"
#include "src/compression/lz.h"

namespace globaldb {
namespace {

enum class Content { kZeros, kRandom, kRedoLike, kCycles, kAlmostRandom };

const char* ContentName(Content c) {
  switch (c) {
    case Content::kZeros:
      return "Zeros";
    case Content::kRandom:
      return "Random";
    case Content::kRedoLike:
      return "RedoLike";
    case Content::kCycles:
      return "Cycles";
    case Content::kAlmostRandom:
      return "AlmostRandom";
  }
  return "?";
}

std::string Generate(Content content, size_t size, Rng* rng) {
  std::string s;
  s.reserve(size);
  switch (content) {
    case Content::kZeros:
      s.assign(size, '\0');
      break;
    case Content::kRandom:
      while (s.size() < size) s.push_back(static_cast<char>(rng->Next()));
      break;
    case Content::kRedoLike:
      while (s.size() < size) {
        s += "INSERT customer_" + std::to_string(rng->Uniform(100)) +
             " balance=" + std::to_string(rng->Uniform(100000)) + ";";
      }
      s.resize(size);
      break;
    case Content::kCycles: {
      const std::string unit = rng->AlphaString(3, 9);
      while (s.size() < size) s += unit;
      s.resize(size);
      break;
    }
    case Content::kAlmostRandom:
      while (s.size() < size) {
        if (rng->Bernoulli(0.1) && s.size() > 64) {
          const size_t start = rng->Uniform(s.size() - 32);
          s += s.substr(start, 32);
        } else {
          s.push_back(static_cast<char>(rng->Next()));
        }
      }
      s.resize(size);
      break;
  }
  return s;
}

class LzSweepTest
    : public ::testing::TestWithParam<std::tuple<Content, size_t>> {};

TEST_P(LzSweepTest, RoundTripExact) {
  auto [content, size] = GetParam();
  Rng rng(static_cast<uint64_t>(size) * 31 + static_cast<uint64_t>(content));
  const std::string input = Generate(content, size, &rng);
  std::string compressed;
  LzCodec::Compress(input, &compressed);
  std::string output;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &output).ok());
  ASSERT_EQ(output, input);

  if (content == Content::kZeros && size >= 1024) {
    EXPECT_LT(compressed.size(), size / 50);
  }
  if (content == Content::kRedoLike && size >= 4096) {
    EXPECT_LT(compressed.size(), size / 2);
  }
  if (content == Content::kRandom && size >= 1024) {
    // Incompressible data must not blow up beyond the worst-case bound.
    EXPECT_LT(compressed.size(), size + size / 128 + 64);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzSweepTest,
    ::testing::Combine(::testing::Values(Content::kZeros, Content::kRandom,
                                         Content::kRedoLike, Content::kCycles,
                                         Content::kAlmostRandom),
                       ::testing::Values<size_t>(0, 1, 7, 64, 1024, 65536)),
    [](const auto& info) {
      return std::string(ContentName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace globaldb
