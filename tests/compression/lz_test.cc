#include "src/compression/lz.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/codec.h"
#include "src/common/rng.h"

namespace globaldb {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed;
  LzCodec::Compress(input, &compressed);
  std::string output;
  Status s = LzCodec::Decompress(compressed, &output);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return output;
}

TEST(LzCodecTest, EmptyInput) {
  EXPECT_EQ(RoundTrip(""), "");
}

TEST(LzCodecTest, TinyInputs) {
  for (const std::string s : {"a", "ab", "abc", "abcd", "abcde"}) {
    EXPECT_EQ(RoundTrip(s), s);
  }
}

TEST(LzCodecTest, IncompressibleSurvives) {
  Rng rng(77);
  std::string s;
  for (int i = 0; i < 10000; ++i) {
    s.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  EXPECT_EQ(RoundTrip(s), s);
}

TEST(LzCodecTest, RepetitiveCompressesWell) {
  std::string s;
  for (int i = 0; i < 1000; ++i) s += "warehouse_row_payload_";
  std::string compressed;
  LzCodec::Compress(s, &compressed);
  EXPECT_LT(compressed.size(), s.size() / 5);
  std::string out;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &out).ok());
  EXPECT_EQ(out, s);
}

TEST(LzCodecTest, RunLengthOverlappingMatch) {
  // Overlapping copies (offset < match length) exercise the byte-wise copy.
  std::string s(100000, 'x');
  std::string compressed;
  LzCodec::Compress(s, &compressed);
  EXPECT_LT(compressed.size(), 600u);
  std::string out;
  ASSERT_TRUE(LzCodec::Decompress(compressed, &out).ok());
  EXPECT_EQ(out, s);
}

TEST(LzCodecTest, LongLiteralRunExtendedLength) {
  // >15 literals forces the extended literal-length path.
  Rng rng(78);
  std::string s;
  for (int i = 0; i < 500; ++i) {
    s.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  EXPECT_EQ(RoundTrip(s), s);
}

TEST(LzCodecTest, MixedContent) {
  Rng rng(79);
  std::string s;
  for (int block = 0; block < 50; ++block) {
    if (rng.Bernoulli(0.5)) {
      s += "commit_record:txn=" + std::to_string(rng.Uniform(100)) +
           ";table=orders;";
    } else {
      s += rng.AlphaString(5, 60);
    }
  }
  EXPECT_EQ(RoundTrip(s), s);
}

TEST(LzCodecTest, DecompressRejectsTruncation) {
  std::string s;
  for (int i = 0; i < 100; ++i) s += "abcdefgh";
  std::string compressed;
  LzCodec::Compress(s, &compressed);
  for (size_t cut : {size_t{0}, compressed.size() / 2, compressed.size() - 1}) {
    std::string out;
    Status st = LzCodec::Decompress(Slice(compressed.data(), cut), &out);
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
  }
}

TEST(LzCodecTest, DecompressRejectsBadOffset) {
  // Hand-craft a block whose match offset points before the start.
  std::string block;
  PutVarint64(&block, 8);  // claims 8 bytes output
  block.push_back(static_cast<char>((1 << 4) | 0));  // 1 literal, match len 4
  block.push_back('a');
  PutFixed16(&block, 500);  // offset 500 into 1 byte of output: invalid
  std::string out;
  EXPECT_FALSE(LzCodec::Decompress(block, &out).ok());
}

TEST(LzCodecTest, RandomizedPropertyRoundTrip) {
  Rng rng(80);
  for (int iter = 0; iter < 200; ++iter) {
    std::string s;
    const int segments = static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < segments; ++i) {
      switch (rng.Uniform(3)) {
        case 0:
          s.append(rng.Uniform(100), static_cast<char>('a' + rng.Uniform(26)));
          break;
        case 1:
          s += rng.AlphaString(0, 50);
          break;
        case 2: {
          // Repeat a previous chunk to create long-range matches.
          if (!s.empty()) {
            size_t start = rng.Uniform(s.size());
            size_t len = rng.Uniform(s.size() - start + 1);
            s += s.substr(start, len);
          }
          break;
        }
      }
    }
    EXPECT_EQ(RoundTrip(s), s) << "iter=" << iter;
  }
}

}  // namespace
}  // namespace globaldb
