// Policy-level tests of the typed RPC client: retries heal transient
// partitions, deadlines cap total time, the retry budget bounds retry
// storms, and application errors pass through without retries.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/codec.h"
#include "src/rpc/rpc_client.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace globaldb {
namespace {

constexpr NodeId kClient = 1;
constexpr NodeId kServer = 2;

struct EchoMessage {
  std::string text;

  std::string Encode() const {
    std::string out;
    PutLengthPrefixed(&out, text);
    return out;
  }
  static StatusOr<EchoMessage> Decode(Slice in) {
    EchoMessage m;
    Slice text;
    if (!GetLengthPrefixed(&in, &text)) return Status::Corruption("echo");
    m.text = std::string(text.data(), text.size());
    return m;
  }
};

inline constexpr rpc::RpcMethod<EchoMessage, EchoMessage> kEcho{"test.echo"};

sim::Task<StatusOr<EchoMessage>> Echo(NodeId from, EchoMessage request) {
  co_return request;
}

sim::Task<StatusOr<EchoMessage>> RejectNotFound(NodeId from,
                                                EchoMessage request) {
  co_return Status::NotFound("no such row");
}

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : sim_(17), net_(&sim_, sim::Topology::SingleRegion(), Options()) {
    net_.RegisterNode(kClient, 0);
    net_.RegisterNode(kServer, 0);
    server_ = std::make_unique<rpc::RpcServer>(&net_, kServer);
    server_->Handle(kEcho, [](NodeId from, EchoMessage request) {
      return Echo(from, std::move(request));
    });
  }

  static sim::NetworkOptions Options() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    return o;
  }

  /// Runs `client.Call(kServer, kEcho, request, options)` to completion.
  StatusOr<EchoMessage> RunCall(rpc::RpcClient* client,
                                const std::string& text,
                                rpc::CallOptions options = {}) {
    StatusOr<EchoMessage> result = Status::Internal("not finished");
    bool done = false;
    auto call = [](rpc::RpcClient* client, EchoMessage request,
                   rpc::CallOptions options, StatusOr<EchoMessage>* out,
                   bool* done) -> sim::Task<void> {
      *out = co_await client->Call(kServer, kEcho, request, options);
      *done = true;
    };
    sim_.Spawn(call(client, EchoMessage{text}, options, &result, &done));
    while (!done) sim_.RunFor(10 * kMillisecond);
    return result;
  }

  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<rpc::RpcServer> server_;
};

TEST_F(RpcTest, RoundTripEchoes) {
  rpc::RpcClient client(&net_, kClient);
  auto result = RunCall(&client, "hello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->text, "hello");
  auto events = client.trace().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attempts, 1);
  EXPECT_EQ(events[0].outcome, StatusCode::kOk);
  EXPECT_STREQ(events[0].method, "test.echo");
}

TEST_F(RpcTest, RetriesUntilTransientPartitionHeals) {
  rpc::RpcPolicy policy;
  policy.attempt_timeout = 50 * kMillisecond;
  policy.max_attempts = 5;
  policy.initial_backoff = 10 * kMillisecond;
  rpc::RpcClient client(&net_, kClient, policy);

  net_.SetPartitioned(kClient, kServer, true);
  sim_.Schedule(120 * kMillisecond,
                [this] { net_.SetPartitioned(kClient, kServer, false); });

  auto result = RunCall(&client, "persist");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->text, "persist");
  auto events = client.trace().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GT(events[0].attempts, 1);
  EXPECT_GE(client.metrics().Get("rpc.retries"), 1);
}

TEST_F(RpcTest, DeadlineSurfacesTimedOutWithoutFurtherAttempts) {
  rpc::RpcPolicy policy;
  policy.attempt_timeout = 300 * kMillisecond;
  policy.max_attempts = 5;
  rpc::RpcClient client(&net_, kClient, policy);

  // A partition is a silent black hole (a down node would refuse the
  // connection within one RTT and trigger a retry before the deadline).
  net_.SetPartitioned(kClient, kServer, true);
  rpc::CallOptions options;
  options.deadline = 100 * kMillisecond;
  auto result = RunCall(&client, "late", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimedOut);
  // The first attempt consumed the whole deadline: no retry happened.
  auto events = client.trace().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attempts, 1);
  EXPECT_EQ(client.metrics().Get("rpc.retries"), 0);
}

TEST_F(RpcTest, RetryBudgetBoundsAttemptsUnderOutage) {
  rpc::RpcPolicy policy;
  policy.attempt_timeout = 20 * kMillisecond;
  policy.max_attempts = 10;
  policy.initial_backoff = 1 * kMillisecond;
  policy.retry_budget = 2.0;
  policy.retry_refill = 0.0;
  rpc::RpcClient client(&net_, kClient, policy);

  net_.SetNodeUp(kServer, false);
  auto result = RunCall(&client, "doomed");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // One initial attempt plus exactly retry_budget retries.
  auto events = client.trace().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attempts, 3);
  EXPECT_EQ(client.metrics().Get("rpc.budget_exhausted"), 1);
}

TEST_F(RpcTest, ApplicationErrorsAreNotRetried) {
  server_->Handle(kEcho, [](NodeId from, EchoMessage request) {
    return RejectNotFound(from, std::move(request));
  });
  rpc::RpcPolicy policy;
  policy.max_attempts = 5;
  rpc::RpcClient client(&net_, kClient, policy);

  auto result = RunCall(&client, "missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  auto events = client.trace().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attempts, 1);
  EXPECT_EQ(events[0].outcome, StatusCode::kOk);  // transport succeeded
  EXPECT_EQ(client.metrics().Get("rpc.retries"), 0);
}

}  // namespace
}  // namespace globaldb
