// Regression tests for LogShipper shutdown and per-replica health:
//  - Stop() must fail blocked WaitDurable waiters (not leak them forever).
//  - Stop() must wake loops parked on idle/backoff timers.
//  - NotifyAppend must wake an idle loop promptly (not wait out idle_wait).
//  - Retry backoff is exponential and capped; sustained failures mark the
//    replica unhealthy, the first success marks it recovered.
//  - AnnounceReplica rewinds the cursor without corrupting replica state.
#include <gtest/gtest.h>

#include <memory>

#include "src/replication/log_shipper.h"
#include "src/replication/replica_applier.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace globaldb {
namespace {

constexpr NodeId kPrimary = 1;
constexpr NodeId kReplicaLocal = 2;   // same region as primary
constexpr NodeId kReplicaRemote = 3;  // remote region

class ShipperStopTest : public ::testing::Test {
 protected:
  ShipperStopTest()
      : sim_(23),
        net_(&sim_, sim::Topology::Uniform(2, 30 * kMillisecond),
             NetOptions()) {
    net_.RegisterNode(kPrimary, 0);
    net_.RegisterNode(kReplicaLocal, 0);
    net_.RegisterNode(kReplicaRemote, 1);
    for (NodeId replica : {kReplicaLocal, kReplicaRemote}) {
      replicas_.push_back(std::make_unique<ReplicaState>(&sim_, &net_, replica));
    }
  }

  struct ReplicaState {
    ShardStore store{0};
    Catalog catalog;
    sim::CpuScheduler cpu;
    ReplicaApplier applier;
    ReplicaState(sim::Simulator* sim, sim::Network* net, NodeId id)
        : cpu(sim, 4),
          applier(sim, net, id, /*shard=*/0, &store, &catalog, &cpu) {}
  };

  static sim::NetworkOptions NetOptions() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    o.jitter_fraction = 0;
    return o;
  }

  std::unique_ptr<LogShipper> MakeShipper(ShipperOptions options = {}) {
    auto shipper = std::make_unique<LogShipper>(
        &sim_, &net_, kPrimary, /*shard=*/0, &stream_,
        std::vector<NodeId>{kReplicaLocal, kReplicaRemote}, options);
    shipper->Start();
    return shipper;
  }

  void AppendTxn(TxnId txn, const std::string& key, const std::string& value,
                 Timestamp commit_ts) {
    stream_.Append(RedoRecord::Insert(txn, 1, key, value));
    stream_.Append(RedoRecord::PendingCommit(txn));
    stream_.Append(RedoRecord::Commit(txn, commit_ts));
  }

  sim::Simulator sim_;
  sim::Network net_;
  LogStream stream_;
  std::vector<std::unique_ptr<ReplicaState>> replicas_;
};

TEST_F(ShipperStopTest, StopFailsBlockedDurabilityWaiters) {
  // Both replicas are dead, so a sync-all commit can never become durable.
  net_.SetNodeUp(kReplicaLocal, false);
  net_.SetNodeUp(kReplicaRemote, false);
  ShipperOptions options;
  options.mode = ReplicationMode::kSyncAll;
  auto shipper = MakeShipper(options);
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();

  bool done = false;
  Status status = Status::OK();
  auto waiter = [&]() -> sim::Task<void> {
    status = co_await shipper->WaitDurable(3);
    done = true;
  };
  sim_.Spawn(waiter());
  sim_.RunFor(300 * kMillisecond);
  EXPECT_FALSE(done);  // still blocked: nothing is acked

  shipper->Stop();
  sim_.RunFor(10 * kMillisecond);
  ASSERT_TRUE(done);  // the regression: this used to hang forever
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_EQ(shipper->metrics().Get("ship.durability_waits"), 1);
}

TEST_F(ShipperStopTest, WaitDurableAfterStopFailsImmediately) {
  ShipperOptions options;
  options.mode = ReplicationMode::kSyncAll;
  auto shipper = MakeShipper(options);
  AppendTxn(1, "k", "v", 100);
  shipper->Stop();

  bool done = false;
  Status status = Status::OK();
  auto waiter = [&]() -> sim::Task<void> {
    status = co_await shipper->WaitDurable(3);
    done = true;
  };
  sim_.Spawn(waiter());
  sim_.RunFor(1 * kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(status.IsUnavailable());
}

TEST_F(ShipperStopTest, StopWakesLoopsParkedInBackoff) {
  // Drive the remote loop into its (long) retry backoff, then Stop. The
  // loop must observe stopped_ right away: once the node comes back, no
  // further ship attempts may happen.
  net_.SetNodeUp(kReplicaRemote, false);
  auto shipper = MakeShipper();
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();
  sim_.RunFor(500 * kMillisecond);
  const int64_t failures_at_stop = shipper->metrics().Get("ship.failures");
  EXPECT_GT(failures_at_stop, 0);

  shipper->Stop();
  net_.SetNodeUp(kReplicaRemote, true);
  sim_.RunFor(5 * kSecond);
  EXPECT_EQ(shipper->metrics().Get("ship.failures"), failures_at_stop);
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(), 0u);  // nothing shipped
}

TEST_F(ShipperStopTest, NotifyAppendWakesIdleLoopPromptly) {
  ShipperOptions options;
  options.idle_wait = 500 * kMillisecond;  // long, so waking matters
  auto shipper = MakeShipper(options);
  sim_.RunFor(100 * kMillisecond);  // loops are parked in idle sleep
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();
  // The local replica applies well before idle_wait would have elapsed.
  sim_.RunFor(50 * kMillisecond);
  shipper->Stop();
  EXPECT_EQ(replicas_[0]->applier.applied_lsn(), 3u);
}

TEST_F(ShipperStopTest, BackoffIsExponentialAndCapped) {
  net_.SetNodeUp(kReplicaRemote, false);
  auto shipper = MakeShipper();
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();
  sim_.RunFor(10 * kSecond);

  // 50 ms doubling capped at 2 s gives ~10 attempts in 10 s; a fixed 50 ms
  // backoff (the old behaviour) would make ~200.
  const int64_t failures = shipper->metrics().Get("ship.failures");
  EXPECT_GE(failures, 5);
  EXPECT_LE(failures, 25);
  EXPECT_FALSE(shipper->IsReplicaHealthy(kReplicaRemote));
  EXPECT_TRUE(shipper->IsReplicaHealthy(kReplicaLocal));
  EXPECT_EQ(shipper->metrics().Get("ship.replica_down"), 1);

  net_.SetNodeUp(kReplicaRemote, true);
  sim_.RunFor(5 * kSecond);
  shipper->Stop();
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(), 3u);
  EXPECT_TRUE(shipper->IsReplicaHealthy(kReplicaRemote));
  EXPECT_EQ(shipper->metrics().Get("ship.replica_recovered"), 1);
}

TEST_F(ShipperStopTest, AnnounceRewindsCursorIdempotently) {
  auto shipper = MakeShipper();
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();
  sim_.RunFor(1 * kSecond);
  EXPECT_EQ(shipper->AckedLsn(kReplicaLocal), 3u);

  // A (spurious) restart announcement from LSN 0 rewinds the cursor; the
  // re-shipped batch must be deduplicated by the applier, not double-applied.
  shipper->AnnounceReplica(kReplicaLocal, 0);
  sim_.RunFor(1 * kSecond);
  shipper->Stop();
  EXPECT_EQ(shipper->metrics().Get("ship.hellos"), 1);
  EXPECT_EQ(shipper->AckedLsn(kReplicaLocal), 3u);
  EXPECT_EQ(replicas_[0]->applier.applied_lsn(), 3u);
  EXPECT_EQ(replicas_[0]->applier.metrics().Get("apply.records"), 3);
  EXPECT_EQ(replicas_[0]->applier.metrics().Get("apply.gaps"), 0);
}

}  // namespace
}  // namespace globaldb
