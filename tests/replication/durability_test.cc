// Durability lifecycle units (DESIGN.md §12): truncation watermark math,
// MVCC vacuum-horizon safety, snapshot encode/install roundtrips, the
// shipper's truncated-cursor -> snapshot fallback, and the applier's
// snapshot-install interaction with the reorder buffer and apply gate.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/log/log_stream.h"
#include "src/replication/durability_manager.h"
#include "src/replication/log_shipper.h"
#include "src/replication/messages.h"
#include "src/replication/replica_applier.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/storage/snapshot.h"

namespace globaldb {
namespace {

constexpr NodeId kPrimary = 1;
constexpr NodeId kReplicaA = 2;
constexpr NodeId kReplicaB = 3;

// --- Watermark math (no network) -------------------------------------------

TEST(DurabilityManagerTest, WatermarkWithoutShipperFollowsCheckpoint) {
  LogStream stream;
  Metrics metrics;
  DurabilityManager dm(&stream, &metrics);
  for (int i = 0; i < 10; ++i) {
    stream.Append(RedoRecord::Insert(1, 1, "k" + std::to_string(i), "v"));
  }
  // No shipper: the primary itself is the whole quorum, so the checkpoint
  // LSN alone bounds truncation.
  ShardSnapshot snap;
  snap.checkpoint_lsn = 6;
  snap.catalog_image = "c";
  snap.store_image = "s";
  dm.PublishCheckpoint(std::move(snap));
  EXPECT_EQ(dm.TruncationWatermark(), 6u);
  EXPECT_EQ(stream.begin_lsn(), 7u);
  // Records past the checkpoint stay readable.
  EXPECT_TRUE(stream.Read(7, 1, 1 << 20).ok());
  EXPECT_FALSE(stream.Read(6, 1, 1 << 20).ok());
}

TEST(DurabilityManagerTest, ReadHorizonIsMonotoneAcrossModeFallback) {
  LogStream stream;
  Metrics metrics;
  DurabilityManager dm(&stream, &metrics);
  dm.AdvanceReadHorizon(100);
  EXPECT_EQ(dm.VacuumHorizon(), 100u);
  // A GClock -> GTM fallback can momentarily report a lower cluster
  // horizon; the clamp must hold so vacuumed versions never "come back"
  // into visibility range.
  dm.AdvanceReadHorizon(50);
  EXPECT_EQ(dm.VacuumHorizon(), 100u);
  dm.AdvanceReadHorizon(170);
  EXPECT_EQ(dm.VacuumHorizon(), 170u);
}

TEST(MvccVacuumTest, NeverReclaimsVersionsVisibleAtTheHorizon) {
  MvccTable table(1);
  table.ApplyInsert("k", "v1", /*txn=*/1);
  table.CommitTxn(1, 10);
  table.ApplyUpdate("k", "v2", /*txn=*/2);
  table.CommitTxn(2, 20);
  ASSERT_EQ(table.VersionCount(), 2u);

  // Horizon below the old version's end: a reader at 15 still needs v1.
  EXPECT_EQ(table.Vacuum(15), 0u);
  EXPECT_EQ(table.Read("k", 15).value, "v1");

  // Vacuum *at* the end timestamp is safe: visibility at snapshot S needs
  // end_ts > S, and vacuum only removes end_ts <= horizon. The oldest
  // in-flight read at 20 sees v2, which survives.
  EXPECT_EQ(table.Vacuum(20), 1u);
  EXPECT_EQ(table.VersionCount(), 1u);
  EXPECT_EQ(table.Read("k", 20).value, "v2");
  EXPECT_EQ(table.Read("k", 25).value, "v2");
}

// --- Snapshot roundtrip ------------------------------------------------------

TEST(ShardSnapshotTest, StoreImageRoundTripsIncludingProvisionalState) {
  ShardStore store(0);
  MvccTable* t1 = store.GetOrCreateTable(1);
  t1->ApplyInsert("a", "v1", 1);
  t1->CommitTxn(1, 10);
  t1->ApplyUpdate("a", "v2", 2);
  t1->CommitTxn(2, 20);
  // In-flight transaction 3: provisional insert, not yet resolved.
  t1->ApplyInsert("b", "pending", 3);
  store.GetOrCreateTable(2)->ApplyInsert("x", "y", 4);
  store.GetOrCreateTable(2)->CommitTxn(4, 30);

  const std::string image = EncodeShardStore(store);
  ShardStore restored(0);
  ASSERT_TRUE(InstallShardStore(Slice(image), &restored).ok());

  EXPECT_EQ(restored.VersionCount(), store.VersionCount());
  EXPECT_EQ(restored.GetTable(1)->Read("a", 15).value, "v1");
  EXPECT_EQ(restored.GetTable(1)->Read("a", 25).value, "v2");
  EXPECT_EQ(restored.GetTable(2)->Read("x", 35).value, "y");
  // Provisional bookkeeping survives: txn 3 is resolvable after install.
  ASSERT_EQ(restored.ProvisionalTxns(), std::vector<TxnId>{3});
  restored.CommitTxn(3, 40);
  EXPECT_EQ(restored.GetTable(1)->Read("b", 45).value, "pending");
  EXPECT_TRUE(restored.ProvisionalTxns().empty());
}

// --- Shipper + applier integration ------------------------------------------

class DurabilityShipperTest : public ::testing::Test {
 protected:
  DurabilityShipperTest()
      : sim_(17),
        net_(&sim_, sim::Topology::Uniform(2, 10 * kMillisecond),
             NetOptions()) {
    net_.RegisterNode(kPrimary, 0);
    net_.RegisterNode(kReplicaA, 0);
    net_.RegisterNode(kReplicaB, 1);
    for (NodeId replica : {kReplicaA, kReplicaB}) {
      replicas_.push_back(
          std::make_unique<ReplicaState>(&sim_, &net_, replica));
    }
  }

  struct ReplicaState {
    ShardStore store{0};
    Catalog catalog;
    sim::CpuScheduler cpu;
    ReplicaApplier applier;
    ReplicaState(sim::Simulator* sim, sim::Network* net, NodeId id)
        : cpu(sim, 4),
          applier(sim, net, id, /*shard=*/0, &store, &catalog, &cpu) {}
  };

  static sim::NetworkOptions NetOptions() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    o.jitter_fraction = 0;
    o.rpc_timeout = 200 * kMillisecond;
    return o;
  }

  std::unique_ptr<LogShipper> MakeShipper(ShipperOptions options = {}) {
    auto shipper = std::make_unique<LogShipper>(
        &sim_, &net_, kPrimary, /*shard=*/0, &stream_,
        std::vector<NodeId>{kReplicaA, kReplicaB}, options);
    shipper->SetDurability(&durability_);
    durability_.set_shipper(shipper.get());
    shipper->Start();
    return shipper;
  }

  void AppendTxn(TxnId txn, const std::string& key, const std::string& value,
                 Timestamp commit_ts) {
    stream_.Append(RedoRecord::Insert(txn, 1, key, value));
    stream_.Append(RedoRecord::PendingCommit(txn));
    stream_.Append(RedoRecord::Commit(txn, commit_ts));
  }

  /// Publishes a checkpoint cut from replica A's replayed state (exactly
  /// what a real checkpoint at its applied LSN would contain).
  void PublishCheckpointFromReplicaA() {
    ReplicaState& source = *replicas_[0];
    ShardSnapshot snap;
    snap.checkpoint_lsn = source.applier.applied_lsn();
    snap.checkpoint_ts = 0;
    snap.max_commit_ts = source.applier.max_commit_ts();
    snap.catalog_image = EncodeCatalog(source.catalog);
    snap.store_image = EncodeShardStore(source.store);
    durability_.PublishCheckpoint(std::move(snap));
  }

  sim::Simulator sim_;
  sim::Network net_;
  LogStream stream_;
  Metrics metrics_;
  DurabilityManager durability_{&stream_, &metrics_};
  std::vector<std::unique_ptr<ReplicaState>> replicas_;
};

TEST_F(DurabilityShipperTest, TruncationNeverPassesQuorumAck) {
  ShipperOptions options;
  options.mode = ReplicationMode::kSyncQuorum;
  options.quorum_replicas = 2;  // quorum tracks the *slowest* replica
  auto shipper = MakeShipper(options);
  AppendTxn(1, "k1", "v1", 100);
  shipper->NotifyAppend();
  sim_.RunFor(200 * kMillisecond);

  // Black-hole replica B, then keep committing: B's ack freezes, so the
  // 2-replica quorum freezes with it.
  net_.SetPartitioned(kPrimary, kReplicaB, true);
  const Lsn frozen_ack = shipper->AckedLsn(kReplicaB);
  for (int i = 0; i < 20; ++i) {
    AppendTxn(10 + i, "p" + std::to_string(i), "v", 200 + i);
  }
  shipper->NotifyAppend();
  sim_.RunFor(300 * kMillisecond);
  ASSERT_EQ(shipper->QuorumAckedLsn(), frozen_ack);

  // A checkpoint at the tail must clamp truncation to the quorum ack: every
  // record B has not acked stays shippable.
  PublishCheckpointFromReplicaA();
  EXPECT_EQ(durability_.TruncationWatermark(), frozen_ack);
  EXPECT_EQ(stream_.begin_lsn(), frozen_ack + 1);

  // Heal: B catches up via redo alone — no snapshot was ever needed.
  net_.SetPartitioned(kPrimary, kReplicaB, false);
  sim_.RunFor(2 * kSecond);
  shipper->Stop();
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(), stream_.next_lsn() - 1);
  EXPECT_EQ(shipper->metrics().Get("ship.snapshots"), 0);
}

// Regression (satellite a): before the durability manager existed, a
// truncated cursor silently resynced to begin_lsn(), skipping the dropped
// records on the lagging replica forever. It must route through the
// snapshot fallback instead.
TEST_F(DurabilityShipperTest, TruncatedCursorFallsBackToSnapshotNotResync) {
  ShipperOptions options;
  options.quorum_replicas = 1;  // quorum = fastest replica; B can be outrun
  auto shipper = MakeShipper(options);
  AppendTxn(1, "k1", "v1", 100);
  shipper->NotifyAppend();
  sim_.RunFor(200 * kMillisecond);

  net_.SetPartitioned(kPrimary, kReplicaB, true);
  for (int i = 0; i < 20; ++i) {
    AppendTxn(10 + i, "p" + std::to_string(i), "v", 200 + i);
  }
  shipper->NotifyAppend();
  sim_.RunFor(300 * kMillisecond);

  // Checkpoint at replica A's applied tail truncates past B's cursor.
  PublishCheckpointFromReplicaA();
  ASSERT_GT(stream_.begin_lsn(), shipper->AckedLsn(kReplicaB) + 1);

  net_.SetPartitioned(kPrimary, kReplicaB, false);
  sim_.RunFor(3 * kSecond);
  shipper->Stop();

  // B converged — and did so through a full-state install (whether the
  // truncation was noticed at the Extent read or at the post-failure
  // rewind), not by silently skipping the truncated records.
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(), stream_.next_lsn() - 1);
  EXPECT_GE(shipper->metrics().Get("ship.snapshots"), 1);
  EXPECT_GE(shipper->metrics().Get("ship.snapshot_installs"), 1);
  EXPECT_EQ(replicas_[1]->store.GetTable(1)->Read("p9", 1000).value, "v");
  // The shipper's ack bookkeeping reflects the install.
  EXPECT_EQ(shipper->AckedLsn(kReplicaB), stream_.next_lsn() - 1);
}

// Satellite b: a snapshot install clears the reorder buffer (its parked
// batches predate the image) and re-validates in-flight appends at the
// apply gate, so nothing stale replays on top of the installed state.
TEST_F(DurabilityShipperTest, SnapshotInstallClearsReorderBufferAndPending) {
  ReplicaState& replica = *replicas_[1];
  rpc::RpcClient client(&net_, kPrimary);

  // Build the log: 6 records (two txns).
  AppendTxn(1, "a", "v1", 10);
  AppendTxn(2, "b", "v2", 20);

  bool done = false;
  auto driver = [&]() -> sim::Task<void> {
    // Ship records 4..6 ahead of 1..3: they park in the reorder buffer.
    auto tail = stream_.Read(4, 3, 1 << 20);
    EXPECT_TRUE(tail.ok());
    if (!tail.ok()) co_return;
    ReplAppendRequest ahead;
    ahead.shard = 0;
    ahead.start_lsn = 4;
    ahead.batch = LogStream::EncodeBatch(*tail, CompressionType::kNone);
    auto reply = co_await client.Call(kReplicaB, kReplAppend, ahead);
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) co_return;
    EXPECT_TRUE(reply->accepted);     // buffered, not applied
    EXPECT_EQ(reply->applied_lsn, 0u);
    EXPECT_EQ(replica.applier.reorder_batches(), 1u);

    // Install a snapshot covering the whole log (cut from a store holding
    // both txns' effects).
    ShardStore source(0);
    MvccTable* t = source.GetOrCreateTable(1);
    t->ApplyInsert("a", "v1", 1);
    t->CommitTxn(1, 10);
    t->ApplyInsert("b", "v2", 2);
    t->CommitTxn(2, 20);
    Catalog source_catalog;
    ReplSnapshotRequest snap;
    snap.shard = 0;
    snap.checkpoint_lsn = 6;
    snap.max_commit_ts = 20;
    snap.catalog_image = EncodeCatalog(source_catalog);
    snap.store_image = EncodeShardStore(source);
    auto snap_reply = co_await client.Call(kReplicaB, kReplSnapshot, snap);
    EXPECT_TRUE(snap_reply.ok());
    if (!snap_reply.ok()) co_return;
    EXPECT_TRUE(snap_reply->accepted);
    EXPECT_EQ(snap_reply->applied_lsn, 6u);

    // The parked batch is gone, the pending set rebuilt from the image
    // (both txns resolved), and the FIFO gate accepts the next in-order
    // batch at exactly checkpoint_lsn + 1.
    EXPECT_EQ(replica.applier.reorder_batches(), 0u);
    EXPECT_EQ(replica.applier.reorder_bytes(), 0u);
    EXPECT_FALSE(replica.applier.IsPending(1));
    EXPECT_FALSE(replica.applier.IsPending(2));
    EXPECT_EQ(replica.applier.applied_lsn(), 6u);

    AppendTxn(3, "c", "v3", 30);
    auto next = stream_.Read(7, 3, 1 << 20);
    EXPECT_TRUE(next.ok());
    if (!next.ok()) co_return;
    ReplAppendRequest follow;
    follow.shard = 0;
    follow.start_lsn = 7;
    follow.batch = LogStream::EncodeBatch(*next, CompressionType::kNone);
    auto follow_reply = co_await client.Call(kReplicaB, kReplAppend, follow);
    EXPECT_TRUE(follow_reply.ok());
    if (!follow_reply.ok()) co_return;
    EXPECT_TRUE(follow_reply->accepted);
    EXPECT_EQ(follow_reply->applied_lsn, 9u);
    EXPECT_EQ(replica.store.GetTable(1)->Read("c", 100).value, "v3");
    done = true;
  };
  sim_.Spawn(driver());
  sim_.RunFor(2 * kSecond);
  EXPECT_TRUE(done);
}

// A reset install pins the applier to the installing primary: appends from
// any other sender (the dead primary's unreplicated tail) are refused.
TEST_F(DurabilityShipperTest, ResetInstallRefusesOtherSendersAppends) {
  ReplicaState& replica = *replicas_[1];
  rpc::RpcClient old_primary(&net_, kPrimary);
  rpc::RpcClient new_primary(&net_, kReplicaA);

  AppendTxn(1, "a", "v1", 10);
  bool done = false;
  auto driver = [&]() -> sim::Task<void> {
    // Reset install arrives from the *new* primary (replica A's node).
    ShardStore source(0);
    Catalog source_catalog;
    ReplSnapshotRequest snap;
    snap.shard = 0;
    snap.checkpoint_lsn = 40;
    snap.reset = true;
    snap.catalog_image = EncodeCatalog(source_catalog);
    snap.store_image = EncodeShardStore(source);
    auto snap_reply = co_await new_primary.Call(kReplicaB, kReplSnapshot,
                                                snap);
    EXPECT_TRUE(snap_reply.ok());
    if (!snap_reply.ok()) co_return;
    EXPECT_TRUE(snap_reply->accepted);
    EXPECT_EQ(replica.applier.applied_lsn(), 40u);

    // The dead primary's tail (LSNs that would collide with the new
    // timeline) must be refused, not buffered or applied.
    LogStream colliding;
    colliding.ResetBase(41);  // LSNs 41..43, like the new primary's appends
    colliding.Append(RedoRecord::Insert(9, 1, "z", "stale"));
    colliding.Append(RedoRecord::PendingCommit(9));
    colliding.Append(RedoRecord::Commit(9, 99));
    auto batch = colliding.Read(41, 3, 1 << 20);
    EXPECT_TRUE(batch.ok());
    if (!batch.ok()) co_return;
    ReplAppendRequest stale;
    stale.shard = 0;
    stale.start_lsn = 41;  // "collides" with the new primary's next append
    stale.batch = LogStream::EncodeBatch(*batch, CompressionType::kNone);
    auto reply = co_await old_primary.Call(kReplicaB, kReplAppend, stale);
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) co_return;
    EXPECT_FALSE(reply->accepted);
    EXPECT_EQ(replica.applier.applied_lsn(), 40u);

    // The same batch from the installing primary is applied normally.
    auto good = co_await new_primary.Call(kReplicaB, kReplAppend, stale);
    EXPECT_TRUE(good.ok());
    if (!good.ok()) co_return;
    EXPECT_TRUE(good->accepted);
    EXPECT_EQ(good->applied_lsn, 43u);
    done = true;
  };
  sim_.Spawn(driver());
  sim_.RunFor(2 * kSecond);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace globaldb
