// The replica applier's bounded out-of-order reorder buffer: batches ahead
// of applied_lsn+1 (later window slots of the pipelined shipper racing an
// earlier one) are parked and drained in LSN order; the byte cap evicts the
// farthest-ahead batches (whose resend the shipper reaches last) and refuses
// the newcomer when it *is* the farthest, falling back to the shipper's
// cumulative-ack rewind. Acks stay cumulative throughout: a buffered batch
// never advances the ack.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/replication/messages.h"
#include "src/replication/replica_applier.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace globaldb {
namespace {

constexpr NodeId kPrimary = 1;
constexpr NodeId kReplica = 2;

class ReorderBufferTest : public ::testing::Test {
 protected:
  ReorderBufferTest()
      : sim_(13),
        net_(&sim_, sim::Topology::Uniform(2, 10 * kMillisecond), NetOptions()),
        client_(&net_, kPrimary) {
    net_.RegisterNode(kPrimary, 0);
    net_.RegisterNode(kReplica, 0);
  }

  static sim::NetworkOptions NetOptions() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    o.jitter_fraction = 0;
    return o;
  }

  void MakeApplier(ApplierOptions options = {}) {
    cpu_ = std::make_unique<sim::CpuScheduler>(&sim_, 4);
    applier_ = std::make_unique<ReplicaApplier>(&sim_, &net_, kReplica,
                                                /*shard=*/0, &store_, &catalog_,
                                                cpu_.get(), options);
  }

  /// Three records per txn (insert, pending-commit, commit), fixed-length
  /// values so every txn's batch encodes to the same size.
  void AppendTxn(TxnId txn, const std::string& key, Timestamp commit_ts) {
    stream_.Append(RedoRecord::Insert(txn, 1, key, std::string(40, 'v')));
    stream_.Append(RedoRecord::PendingCommit(txn));
    stream_.Append(RedoRecord::Commit(txn, commit_ts));
  }

  std::string EncodeRange(Lsn from, Lsn to) {
    auto records = stream_.Read(from, to - from + 1, 1 << 20);
    EXPECT_TRUE(records.ok());
    return LogStream::EncodeBatch(*records, CompressionType::kNone);
  }

  /// Ships the stream range [from, to] as one batch and returns the reply.
  StatusOr<ReplAppendReply> Deliver(Lsn from, Lsn to) {
    ReplAppendRequest request;
    request.shard = 0;
    request.start_lsn = from;
    request.batch = EncodeRange(from, to);
    StatusOr<ReplAppendReply> result = Status::Unavailable("no reply");
    auto deliver = [](rpc::RpcClient* client, ReplAppendRequest req,
                      StatusOr<ReplAppendReply>* out) -> sim::Task<void> {
      *out = co_await client->Call(kReplica, kReplAppend, req);
    };
    sim_.Spawn(deliver(&client_, request, &result));
    sim_.Run();
    EXPECT_TRUE(result.ok());
    return result;
  }

  sim::Simulator sim_;
  sim::Network net_;
  rpc::RpcClient client_;
  LogStream stream_;
  ShardStore store_{0};
  Catalog catalog_;
  std::unique_ptr<sim::CpuScheduler> cpu_;
  std::unique_ptr<ReplicaApplier> applier_;
};

TEST_F(ReorderBufferTest, OutOfOrderArrivalBuffersAndDrainsInLsnOrder) {
  MakeApplier();
  AppendTxn(1, "a", 100);  // LSNs 1..3
  AppendTxn(2, "b", 200);  // LSNs 4..6
  AppendTxn(3, "c", 300);  // LSNs 7..9

  auto r1 = Deliver(4, 6);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->accepted);
  EXPECT_EQ(r1->applied_lsn, 0u);  // buffered, not applied: ack cumulative
  EXPECT_EQ(applier_->reorder_batches(), 1u);

  auto r2 = Deliver(7, 9);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->accepted);
  EXPECT_EQ(r2->applied_lsn, 0u);
  EXPECT_EQ(applier_->reorder_batches(), 2u);

  // The gap filler arrives: everything drains in LSN order.
  auto r3 = Deliver(1, 3);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->accepted);
  EXPECT_EQ(r3->applied_lsn, 9u);
  EXPECT_EQ(applier_->reorder_batches(), 0u);
  EXPECT_EQ(applier_->reorder_bytes(), 0u);
  EXPECT_EQ(applier_->applied_lsn(), 9u);
  EXPECT_EQ(applier_->max_commit_ts(), 300u);
  EXPECT_EQ(applier_->metrics().Get("apply.reordered"), 2);
  EXPECT_EQ(applier_->metrics().Get("apply.reorder_drained"), 2);
  EXPECT_EQ(applier_->metrics().Get("apply.records"), 9);
  for (const char* key : {"a", "b", "c"}) {
    EXPECT_TRUE(store_.GetTable(1)->Read(key, 400).found) << key;
  }
}

TEST_F(ReorderBufferTest, CapOverflowEvictsFarthestAndRefusesTail) {
  AppendTxn(1, "a", 100);  // 1..3
  AppendTxn(2, "b", 200);  // 4..6
  AppendTxn(3, "c", 300);  // 7..9
  AppendTxn(4, "d", 400);  // 10..12
  // Cap fits exactly one buffered batch (all four encode to the same size).
  ApplierOptions options;
  options.reorder_buffer_bytes = EncodeRange(4, 6).size();
  MakeApplier(options);

  auto r1 = Deliver(7, 9);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->accepted);
  EXPECT_EQ(applier_->reorder_batches(), 1u);

  // Over the cap and farther ahead than anything buffered: refused, so the
  // shipper falls back to its cumulative-ack rewind for this range.
  auto r2 = Deliver(10, 12);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->accepted);
  EXPECT_EQ(r2->applied_lsn, 0u);
  EXPECT_EQ(applier_->metrics().Get("apply.reorder_refused"), 1);
  EXPECT_EQ(applier_->reorder_batches(), 1u);

  // Nearer the applied tail than the buffered batch: the farther one is
  // evicted in its favor.
  auto r3 = Deliver(4, 6);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->accepted);
  EXPECT_EQ(applier_->metrics().Get("apply.reorder_evictions"), 1);
  EXPECT_EQ(applier_->reorder_batches(), 1u);

  // The cumulative-ack fallback: resend everything from the ack forward, in
  // order, exactly as the shipper's rewind would.
  EXPECT_EQ(Deliver(1, 3)->applied_lsn, 6u);  // drains [4..6]
  EXPECT_EQ(Deliver(7, 9)->applied_lsn, 9u);
  EXPECT_EQ(Deliver(10, 12)->applied_lsn, 12u);
  EXPECT_EQ(applier_->applied_lsn(), 12u);
  EXPECT_EQ(applier_->metrics().Get("apply.records"), 12);
  for (const char* key : {"a", "b", "c", "d"}) {
    EXPECT_TRUE(store_.GetTable(1)->Read(key, 500).found) << key;
  }
}

TEST_F(ReorderBufferTest, DuplicateBufferedBatchKeptOnce) {
  MakeApplier();
  AppendTxn(1, "a", 100);  // 1..3
  AppendTxn(2, "b", 200);  // 4..6

  EXPECT_TRUE(Deliver(4, 6)->accepted);
  const size_t bytes_after_first = applier_->reorder_bytes();
  // A window retry resends the same range before the gap fills.
  EXPECT_TRUE(Deliver(4, 6)->accepted);
  EXPECT_EQ(applier_->metrics().Get("apply.reorder_duplicates"), 1);
  EXPECT_EQ(applier_->reorder_batches(), 1u);
  EXPECT_EQ(applier_->reorder_bytes(), bytes_after_first);

  EXPECT_EQ(Deliver(1, 3)->applied_lsn, 6u);
  // Each record applied exactly once despite the duplicate.
  EXPECT_EQ(applier_->metrics().Get("apply.records"), 6);
  EXPECT_EQ(store_.GetTable(1)->Read("b", 300).value, std::string(40, 'v'));
}

TEST_F(ReorderBufferTest, DuplicateBatchAfterWindowRetryIsIdempotent) {
  MakeApplier();
  AppendTxn(1, "a", 100);  // 1..3
  AppendTxn(2, "b", 200);  // 4..6

  EXPECT_EQ(Deliver(1, 3)->applied_lsn, 3u);
  EXPECT_EQ(Deliver(4, 6)->applied_lsn, 6u);
  // Full-batch retry after the window rewound.
  auto dup = Deliver(4, 6);
  EXPECT_TRUE(dup->accepted);
  EXPECT_EQ(dup->applied_lsn, 6u);
  // Partially-overlapping retry (rewind to mid-batch).
  EXPECT_EQ(Deliver(2, 6)->applied_lsn, 6u);
  EXPECT_EQ(applier_->metrics().Get("apply.records"), 6);
  EXPECT_EQ(applier_->metrics().Get("apply.gaps"), 0);
}

TEST_F(ReorderBufferTest, RestartClearsBufferAndResendRecovers) {
  MakeApplier();
  AppendTxn(1, "a", 100);  // 1..3
  AppendTxn(2, "b", 200);  // 4..6

  EXPECT_TRUE(Deliver(4, 6)->accepted);
  EXPECT_EQ(applier_->reorder_batches(), 1u);
  // The buffer is volatile: a restart drops it (the batches were never
  // acked, so the shipper's rewind to the durable LSN resends them).
  applier_->OnRestart();
  EXPECT_EQ(applier_->reorder_batches(), 0u);
  EXPECT_EQ(applier_->reorder_bytes(), 0u);

  EXPECT_EQ(Deliver(1, 3)->applied_lsn, 3u);  // nothing stale to drain
  EXPECT_EQ(Deliver(4, 6)->applied_lsn, 6u);
  EXPECT_EQ(applier_->metrics().Get("apply.records"), 6);
  EXPECT_TRUE(store_.GetTable(1)->Read("b", 300).found);
}

}  // namespace
}  // namespace globaldb
