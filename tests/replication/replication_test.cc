#include <gtest/gtest.h>

#include <memory>

#include "src/common/codec.h"
#include "src/replication/log_shipper.h"
#include "src/replication/messages.h"
#include "src/replication/replica_applier.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace globaldb {
namespace {

constexpr NodeId kPrimary = 1;
constexpr NodeId kReplicaLocal = 2;   // same region as primary
constexpr NodeId kReplicaRemote = 3;  // remote region

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest()
      : sim_(11),
        net_(&sim_, sim::Topology::Uniform(2, 30 * kMillisecond),
             NetOptions()) {
    net_.RegisterNode(kPrimary, 0);
    net_.RegisterNode(kReplicaLocal, 0);
    net_.RegisterNode(kReplicaRemote, 1);
    for (NodeId replica : {kReplicaLocal, kReplicaRemote}) {
      auto state = std::make_unique<ReplicaState>(&sim_, &net_, replica);
      replicas_.push_back(std::move(state));
    }
  }

  struct ReplicaState {
    ShardStore store{0};
    Catalog catalog;
    sim::CpuScheduler cpu;
    ReplicaApplier applier;
    ReplicaState(sim::Simulator* sim, sim::Network* net, NodeId id)
        : cpu(sim, 4),
          applier(sim, net, id, /*shard=*/0, &store, &catalog, &cpu) {}
  };

  static sim::NetworkOptions NetOptions() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    o.jitter_fraction = 0;
    return o;
  }

  std::unique_ptr<LogShipper> MakeShipper(ShipperOptions options = {}) {
    auto shipper = std::make_unique<LogShipper>(
        &sim_, &net_, kPrimary, /*shard=*/0, &stream_,
        std::vector<NodeId>{kReplicaLocal, kReplicaRemote}, options);
    shipper->Start();
    return shipper;
  }

  void AppendTxn(TxnId txn, const std::string& key, const std::string& value,
                 Timestamp commit_ts) {
    stream_.Append(RedoRecord::Insert(txn, 1, key, value));
    stream_.Append(RedoRecord::PendingCommit(txn));
    stream_.Append(RedoRecord::Commit(txn, commit_ts));
  }

  sim::Simulator sim_;
  sim::Network net_;
  LogStream stream_;
  std::vector<std::unique_ptr<ReplicaState>> replicas_;
};

TEST_F(ReplicationTest, AsyncShippingReplaysOnAllReplicas) {
  auto shipper = MakeShipper();
  AppendTxn(1, "k1", "v1", 100);
  AppendTxn(2, "k2", "v2", 200);
  shipper->NotifyAppend();
  sim_.RunFor(1 * kSecond);
  shipper->Stop();
  for (auto& replica : replicas_) {
    EXPECT_EQ(replica->applier.applied_lsn(), 6u);
    EXPECT_EQ(replica->applier.max_commit_ts(), 200u);
    MvccTable* table = replica->store.GetTable(1);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->Read("k1", 150).value, "v1");
    EXPECT_EQ(table->Read("k2", 250).value, "v2");
    EXPECT_FALSE(table->Read("k2", 150).found);
  }
}

TEST_F(ReplicationTest, AsyncCommitDoesNotWait) {
  auto shipper = MakeShipper();
  AppendTxn(1, "k", "v", 100);
  SimTime elapsed = -1;
  auto waiter = [&]() -> sim::Task<void> {
    const SimTime start = sim_.now();
    Status s = co_await shipper->WaitDurable(3);
    EXPECT_TRUE(s.ok());
    elapsed = sim_.now() - start;
  };
  sim_.Spawn(waiter());
  sim_.RunFor(1 * kSecond);
  shipper->Stop();
  EXPECT_EQ(elapsed, 0);  // async: durable immediately
}

TEST_F(ReplicationTest, SyncQuorumWaitsForNearestReplica) {
  ShipperOptions options;
  options.mode = ReplicationMode::kSyncQuorum;
  options.quorum_replicas = 1;
  options.idle_wait = 200 * kMicrosecond;
  auto shipper = MakeShipper(options);
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();
  SimTime elapsed = -1;
  auto waiter = [&]() -> sim::Task<void> {
    const SimTime start = sim_.now();
    Status s = co_await shipper->WaitDurable(3);
    EXPECT_TRUE(s.ok());
    elapsed = sim_.now() - start;
  };
  sim_.Spawn(waiter());
  sim_.RunFor(2 * kSecond);
  shipper->Stop();
  // Quorum of 1 is satisfied by the local replica: sub-millisecond-ish,
  // far below the 30 ms remote RTT.
  EXPECT_GE(elapsed, 0);
  EXPECT_LT(elapsed, 15 * kMillisecond);
}

TEST_F(ReplicationTest, SyncAllWaitsForRemoteReplica) {
  ShipperOptions options;
  options.mode = ReplicationMode::kSyncAll;
  options.idle_wait = 200 * kMicrosecond;
  auto shipper = MakeShipper(options);
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();
  SimTime elapsed = -1;
  auto waiter = [&]() -> sim::Task<void> {
    const SimTime start = sim_.now();
    Status s = co_await shipper->WaitDurable(3);
    EXPECT_TRUE(s.ok());
    elapsed = sim_.now() - start;
  };
  sim_.Spawn(waiter());
  sim_.RunFor(2 * kSecond);
  shipper->Stop();
  // Must cover the 30 ms RTT to the remote replica.
  EXPECT_GE(elapsed, 30 * kMillisecond);
}

TEST_F(ReplicationTest, CompressionShrinksWireBytes) {
  // Ship the same records with and without LZ; compare wire bytes.
  for (int i = 0; i < 200; ++i) {
    AppendTxn(i + 1, "warehouse_key_" + std::to_string(i % 5),
              "customer_payload_with_repetitive_content_" +
                  std::to_string(i % 5),
              (i + 1) * 10);
  }
  ShipperOptions raw;
  raw.compression = CompressionType::kNone;
  auto shipper_raw = MakeShipper(raw);
  sim_.RunFor(2 * kSecond);
  shipper_raw->Stop();
  const int64_t raw_bytes = shipper_raw->metrics().Get("ship.bytes");

  ShipperOptions lz;
  lz.compression = CompressionType::kLz;
  // Fresh replicas to replay into (ack from 0 would be rejected otherwise).
  // Use new replica nodes.
  net_.RegisterNode(10, 0);
  net_.RegisterNode(11, 1);
  ReplicaState r10(&sim_, &net_, 10), r11(&sim_, &net_, 11);
  auto shipper_lz = std::make_unique<LogShipper>(
      &sim_, &net_, kPrimary, 0, &stream_, std::vector<NodeId>{10, 11}, lz);
  shipper_lz->Start();
  sim_.RunFor(2 * kSecond);
  shipper_lz->Stop();
  const int64_t lz_bytes = shipper_lz->metrics().Get("ship.bytes");

  EXPECT_GT(raw_bytes, 0);
  EXPECT_LT(lz_bytes, raw_bytes / 2);
  // And the data still replays correctly.
  EXPECT_EQ(r10.applier.max_commit_ts(), 2000u);
}

TEST_F(ReplicationTest, PendingCommitLocksTuplesUntilResolved) {
  auto shipper = MakeShipper();
  // Data + PENDING_COMMIT arrive, but the COMMIT record is delayed.
  stream_.Append(RedoRecord::Insert(7, 1, "k", "v"));
  stream_.Append(RedoRecord::PendingCommit(7));
  shipper->NotifyAppend();
  sim_.RunFor(200 * kMillisecond);

  auto& replica = *replicas_[0];
  EXPECT_TRUE(replica.applier.IsPending(7));
  MvccTable* table = replica.store.GetTable(1);
  ASSERT_NE(table, nullptr);
  ReadResult r = table->Read("k", 1000);
  EXPECT_FALSE(r.found);              // not yet committed
  EXPECT_EQ(r.provisional_txn, 7u);   // reader must wait on txn 7

  // A reader waits for resolution; the commit arrives later.
  bool resolved = false;
  auto reader = [&]() -> sim::Task<void> {
    co_await replica.applier.WaitResolved(7);
    resolved = true;
    EXPECT_TRUE(replica.store.GetTable(1)->Read("k", 1000).found);
  };
  sim_.Spawn(reader());
  sim_.RunFor(50 * kMillisecond);
  EXPECT_FALSE(resolved);
  stream_.Append(RedoRecord::Commit(7, 500));
  shipper->NotifyAppend();
  sim_.RunFor(500 * kMillisecond);
  shipper->Stop();
  EXPECT_TRUE(resolved);
  EXPECT_FALSE(replica.applier.IsPending(7));
}

TEST_F(ReplicationTest, AbortResolvesPendingWithoutData) {
  auto shipper = MakeShipper();
  stream_.Append(RedoRecord::Insert(7, 1, "k", "v"));
  stream_.Append(RedoRecord::PendingCommit(7));
  stream_.Append(RedoRecord::Abort(7));
  shipper->NotifyAppend();
  sim_.RunFor(500 * kMillisecond);
  shipper->Stop();
  auto& replica = *replicas_[0];
  EXPECT_FALSE(replica.applier.IsPending(7));
  ReadResult r = replica.store.GetTable(1)->Read("k", 1000);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.provisional_txn, kInvalidTxnId);  // rolled back entirely
}

TEST_F(ReplicationTest, TwoPhaseCommitPrepareBlocksUntilCommitPrepared) {
  auto shipper = MakeShipper();
  stream_.Append(RedoRecord::Insert(9, 1, "k", "v"));
  stream_.Append(RedoRecord::Prepare(9));
  shipper->NotifyAppend();
  sim_.RunFor(200 * kMillisecond);
  auto& replica = *replicas_[0];
  EXPECT_TRUE(replica.applier.IsPending(9));
  stream_.Append(RedoRecord::CommitPrepared(9, 900));
  shipper->NotifyAppend();
  sim_.RunFor(500 * kMillisecond);
  shipper->Stop();
  EXPECT_FALSE(replica.applier.IsPending(9));
  EXPECT_EQ(replica.store.GetTable(1)->Read("k", 900).value, "v");
  EXPECT_EQ(replica.applier.max_commit_ts(), 900u);
}

TEST_F(ReplicationTest, HeartbeatAdvancesMaxCommitTs) {
  auto shipper = MakeShipper();
  AppendTxn(1, "k", "v", 100);
  stream_.Append(RedoRecord::Heartbeat(5000));
  shipper->NotifyAppend();
  sim_.RunFor(1 * kSecond);
  shipper->Stop();
  EXPECT_EQ(replicas_[0]->applier.max_commit_ts(), 5000u);
}

TEST_F(ReplicationTest, DdlReplayUpdatesReplicaCatalog) {
  auto shipper = MakeShipper();
  TableSchema schema;
  schema.id = 5;
  schema.name = "accounts";
  schema.columns = {{"id", ColumnType::kInt64}};
  schema.key_columns = {0};
  stream_.Append(
      RedoRecord::Ddl(700, Catalog::MakeCreatePayload(schema)));
  shipper->NotifyAppend();
  sim_.RunFor(1 * kSecond);
  shipper->Stop();
  for (auto& replica : replicas_) {
    ASSERT_NE(replica->catalog.FindTable("accounts"), nullptr);
    EXPECT_EQ(replica->catalog.LastDdlTimestamp(5), 700u);
    EXPECT_EQ(replica->applier.max_commit_ts(), 700u);
  }
}

TEST_F(ReplicationTest, StalledReplicaCatchesUpAfterRecovery) {
  auto shipper = MakeShipper();
  replicas_[1]->applier.set_stalled(true);
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();
  sim_.RunFor(300 * kMillisecond);
  EXPECT_EQ(replicas_[0]->applier.applied_lsn(), 3u);
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(), 0u);
  replicas_[1]->applier.set_stalled(false);
  sim_.RunFor(1 * kSecond);
  shipper->Stop();
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(), 3u);
  EXPECT_EQ(replicas_[1]->applier.max_commit_ts(), 100u);
}

TEST_F(ReplicationTest, CrashedReplicaRetriedAndRecovered) {
  auto shipper = MakeShipper();
  net_.SetNodeUp(kReplicaRemote, false);
  AppendTxn(1, "k", "v", 100);
  shipper->NotifyAppend();
  sim_.RunFor(300 * kMillisecond);
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(), 0u);
  net_.SetNodeUp(kReplicaRemote, true);
  sim_.RunFor(10 * kSecond);
  shipper->Stop();
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(), 3u);
}

TEST_F(ReplicationTest, LaggingReplicaHasLowerMaxCommitTs) {
  auto shipper = MakeShipper();
  replicas_[1]->applier.set_extra_apply_delay(40 * kMillisecond);
  for (int i = 0; i < 20; ++i) {
    AppendTxn(i + 1, "k" + std::to_string(i), "v", (i + 1) * 10);
    shipper->NotifyAppend();
    sim_.RunFor(5 * kMillisecond);
  }
  // Mid-stream: the delayed replica is behind.
  EXPECT_LT(replicas_[1]->applier.applied_lsn(),
            replicas_[0]->applier.applied_lsn());
  sim_.RunFor(5 * kSecond);
  shipper->Stop();
  EXPECT_EQ(replicas_[1]->applier.applied_lsn(),
            replicas_[0]->applier.applied_lsn());
}

TEST_F(ReplicationTest, DuplicateBatchDeliveryIsIdempotent) {
  // Craft a manual duplicate delivery of the same batch.
  AppendTxn(1, "k", "v", 100);
  auto records = stream_.Read(1, 100, 1 << 20);
  ASSERT_TRUE(records.ok());
  ReplAppendRequest request;
  request.shard = 0;
  request.start_lsn = 1;
  request.batch = LogStream::EncodeBatch(*records, CompressionType::kNone);

  rpc::RpcClient client(&net_, kPrimary);
  auto deliver = [&]() -> sim::Task<void> {
    auto r1 = co_await client.Call(kReplicaLocal, kReplAppend, request);
    EXPECT_TRUE(r1.ok());
    auto r2 = co_await client.Call(kReplicaLocal, kReplAppend, request);
    EXPECT_TRUE(r2.ok());
    if (r2.ok()) {
      EXPECT_EQ(r2->applied_lsn, 3u);
    }
  };
  sim_.Spawn(deliver());
  sim_.Run();
  // Applied exactly once: a single version of "k".
  EXPECT_EQ(replicas_[0]->store.GetTable(1)->Read("k", 200).value, "v");
  EXPECT_EQ(replicas_[0]->applier.metrics().Get("apply.records"), 3);
}

TEST_F(ReplicationTest, GapBatchBufferedNotApplied) {
  AppendTxn(1, "k", "v", 100);
  AppendTxn(2, "j", "w", 200);
  auto records = stream_.Read(4, 100, 1 << 20);  // second txn only
  ASSERT_TRUE(records.ok());
  ReplAppendRequest request;
  request.shard = 0;
  request.start_lsn = 4;  // gap: replica has applied nothing
  request.batch = LogStream::EncodeBatch(*records, CompressionType::kNone);
  rpc::RpcClient client(&net_, kPrimary);
  auto deliver = [&]() -> sim::Task<void> {
    auto r = co_await client.Call(kReplicaLocal, kReplAppend, request);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      // Accepted into the reorder buffer, but the cumulative ack does not
      // move: nothing was applied.
      EXPECT_TRUE(r->accepted);
      EXPECT_EQ(r->applied_lsn, 0u);
    }
  };
  sim_.Spawn(deliver());
  sim_.Run();
  ReplicaApplier& applier = replicas_[0]->applier;
  EXPECT_EQ(applier.applied_lsn(), 0u);
  EXPECT_EQ(applier.reorder_batches(), 1u);
  EXPECT_EQ(applier.metrics().Get("apply.reordered"), 1);
  EXPECT_EQ(applier.metrics().Get("apply.records"), 0);
}

TEST_F(ReplicationTest, GapBatchRefusedWhenReorderingDisabled) {
  AppendTxn(1, "k", "v", 100);
  AppendTxn(2, "j", "w", 200);
  net_.RegisterNode(4, 0);
  ShardStore store(0);
  Catalog catalog;
  sim::CpuScheduler cpu(&sim_, 4);
  ApplierOptions options;
  options.reorder_buffer_bytes = 0;  // strict refuse-any-gap policy
  ReplicaApplier applier(&sim_, &net_, 4, /*shard=*/0, &store, &catalog, &cpu,
                         options);
  auto records = stream_.Read(4, 100, 1 << 20);  // second txn only
  ASSERT_TRUE(records.ok());
  ReplAppendRequest request;
  request.shard = 0;
  request.start_lsn = 4;  // gap: replica has applied nothing
  request.batch = LogStream::EncodeBatch(*records, CompressionType::kNone);
  rpc::RpcClient client(&net_, kPrimary);
  auto deliver = [&]() -> sim::Task<void> {
    auto r = co_await client.Call(4, kReplAppend, request);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_FALSE(r->accepted);  // refused
      EXPECT_EQ(r->applied_lsn, 0u);
    }
  };
  sim_.Spawn(deliver());
  sim_.Run();
  EXPECT_EQ(applier.metrics().Get("apply.gaps"), 1);
  EXPECT_EQ(applier.reorder_batches(), 0u);
}

}  // namespace
}  // namespace globaldb
