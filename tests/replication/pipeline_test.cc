// The sliding-window pipelined shipper: catch-up throughput scales with the
// window instead of being capped at one batch per RTT, the in-flight window
// is bounded, the encoded-batch cache is shared across replica loops, and a
// crash mid-catch-up rewinds to the cumulative ack and converges exactly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/replication/log_shipper.h"
#include "src/replication/replica_applier.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/storage/mvcc_table.h"

namespace globaldb {
namespace {

constexpr NodeId kPrimary = 1;

sim::NetworkOptions WanOptions() {
  sim::NetworkOptions o;
  o.nagle_enabled = false;
  o.jitter_fraction = 0;
  o.bbr_enabled = true;
  return o;
}

/// One primary + one remote replica over a 50 ms RTT link with a shipping
/// backlog; returns how long the replica took to ack the full tail.
SimDuration MeasureCatchup(size_t window) {
  sim::Simulator sim(7);
  sim::Network net(&sim, sim::Topology::Uniform(2, 50 * kMillisecond),
                   WanOptions());
  const NodeId replica = 2;
  net.RegisterNode(kPrimary, 0);
  net.RegisterNode(replica, 1);

  LogStream stream;
  const std::string value(200, 'x');
  for (int t = 0; t < 24000; ++t) {
    stream.Append(
        RedoRecord::Insert(t + 1, 1, "key_" + std::to_string(t), value));
    stream.Append(RedoRecord::Commit(t + 1, t + 1));
  }
  const Lsn tail = stream.next_lsn() - 1;

  ShardStore store(0);
  Catalog catalog;
  sim::CpuScheduler cpu(&sim, 8);
  ReplicaApplier applier(&sim, &net, replica, /*shard=*/0, &store, &catalog,
                         &cpu);

  ShipperOptions options;
  options.compression = CompressionType::kNone;
  options.max_inflight_batches = window;
  LogShipper shipper(&sim, &net, kPrimary, /*shard=*/0, &stream, {replica},
                     options);
  const SimTime start = sim.now();
  shipper.Start();
  shipper.NotifyAppend();
  while (shipper.AckedLsn(replica) < tail && sim.now() < 120 * kSecond) {
    sim.RunFor(1 * kMillisecond);
  }
  EXPECT_EQ(shipper.AckedLsn(replica), tail);
  EXPECT_EQ(applier.applied_lsn(), tail);
  EXPECT_EQ(applier.metrics().Get("apply.records"),
            static_cast<int64_t>(tail));
  const SimDuration elapsed = sim.now() - start;
  shipper.Stop();
  sim.RunFor(10 * kMillisecond);
  return elapsed;
}

TEST(PipelineTest, WindowedCatchupBeatsStopAndWaitByFourX) {
  const SimDuration stop_and_wait = MeasureCatchup(1);
  const SimDuration window8 = MeasureCatchup(8);
  EXPECT_GE(stop_and_wait, 4 * window8)
      << "stop-and-wait " << stop_and_wait / kMillisecond << " ms vs window=8 "
      << window8 / kMillisecond << " ms";
}

TEST(PipelineTest, InflightNeverExceedsWindow) {
  sim::Simulator sim(9);
  sim::Network net(&sim, sim::Topology::Uniform(2, 10 * kMillisecond),
                   WanOptions());
  const NodeId replica = 2;
  net.RegisterNode(kPrimary, 0);
  net.RegisterNode(replica, 1);

  LogStream stream;
  const std::string value(100, 'y');
  for (int t = 0; t < 4000; ++t) {
    stream.Append(
        RedoRecord::Insert(t + 1, 1, "key_" + std::to_string(t), value));
    stream.Append(RedoRecord::Commit(t + 1, t + 1));
  }
  const Lsn tail = stream.next_lsn() - 1;

  ShardStore store(0);
  Catalog catalog;
  sim::CpuScheduler cpu(&sim, 4);
  ReplicaApplier applier(&sim, &net, replica, /*shard=*/0, &store, &catalog,
                         &cpu);
  applier.set_extra_apply_delay(2 * kMillisecond);  // slow consumer

  ShipperOptions options;
  options.max_inflight_batches = 2;
  options.max_batch_bytes = 8 * 1024;  // many small batches
  LogShipper shipper(&sim, &net, kPrimary, /*shard=*/0, &stream, {replica},
                     options);
  shipper.Start();
  shipper.NotifyAppend();
  size_t max_inflight = 0;
  while (shipper.AckedLsn(replica) < tail && sim.now() < 60 * kSecond) {
    sim.RunFor(500 * kMicrosecond);
    max_inflight = std::max(max_inflight, shipper.InflightBatches(replica));
    EXPECT_LE(shipper.metrics().Get("ship.inflight"), 2);
  }
  EXPECT_EQ(shipper.AckedLsn(replica), tail);
  EXPECT_LE(max_inflight, 2u);
  EXPECT_EQ(max_inflight, 2u);  // the window actually filled
  // The loop parked on a full window instead of over-sending.
  EXPECT_GT(shipper.metrics().Get("ship.window_full"), 0);
  shipper.Stop();
  sim.RunFor(10 * kMillisecond);
}

TEST(PipelineTest, EncodedBatchCacheSharedAcrossReplicaLoops) {
  sim::Simulator sim(21);
  sim::Network net(&sim, sim::Topology::Uniform(2, 20 * kMillisecond),
                   WanOptions());
  const std::vector<NodeId> replicas = {2, 3};
  net.RegisterNode(kPrimary, 0);
  net.RegisterNode(2, 1);
  net.RegisterNode(3, 1);

  LogStream stream;
  const std::string value(150, 'z');
  for (int t = 0; t < 6000; ++t) {
    stream.Append(
        RedoRecord::Insert(t + 1, 1, "key_" + std::to_string(t), value));
    stream.Append(RedoRecord::Commit(t + 1, t + 1));
  }
  const Lsn tail = stream.next_lsn() - 1;

  ShardStore store_a(0), store_b(0);
  Catalog catalog_a, catalog_b;
  sim::CpuScheduler cpu_a(&sim, 4), cpu_b(&sim, 4);
  ReplicaApplier applier_a(&sim, &net, 2, /*shard=*/0, &store_a, &catalog_a,
                           &cpu_a);
  ReplicaApplier applier_b(&sim, &net, 3, /*shard=*/0, &store_b, &catalog_b,
                           &cpu_b);

  LogShipper shipper(&sim, &net, kPrimary, /*shard=*/0, &stream, replicas,
                     ShipperOptions{});
  shipper.Start();
  shipper.NotifyAppend();
  while ((shipper.AckedLsn(2) < tail || shipper.AckedLsn(3) < tail) &&
         sim.now() < 60 * kSecond) {
    sim.RunFor(1 * kMillisecond);
  }
  EXPECT_EQ(applier_a.applied_lsn(), tail);
  EXPECT_EQ(applier_b.applied_lsn(), tail);

  // Both loops walk the same ranges: each range is encoded (and LZ
  // compressed) once, and the second loop's reads are cache hits.
  const int64_t hits = shipper.metrics().Get("ship.cache_hits");
  const int64_t misses = shipper.metrics().Get("ship.cache_misses");
  EXPECT_EQ(hits, misses);
  EXPECT_GT(hits, 0);
  EXPECT_EQ(hits + misses, shipper.metrics().Get("ship.batches"));
  shipper.Stop();
  sim.RunFor(10 * kMillisecond);
}

TEST(PipelineTest, CrashMidCatchupRewindsAndConvergesExactly) {
  sim::Simulator sim(33);
  sim::Network net(&sim, sim::Topology::Uniform(2, 10 * kMillisecond),
                   WanOptions());
  const NodeId replica = 2;
  net.RegisterNode(kPrimary, 0);
  net.RegisterNode(replica, 1);

  LogStream stream;
  const std::string value(120, 'w');
  const int kTxns = 6000;
  for (int t = 0; t < kTxns; ++t) {
    stream.Append(
        RedoRecord::Insert(t + 1, 1, "key_" + std::to_string(t), value));
    stream.Append(RedoRecord::Commit(t + 1, t + 1));
  }
  const Lsn tail = stream.next_lsn() - 1;

  ShardStore store(0);
  Catalog catalog;
  sim::CpuScheduler cpu(&sim, 4);
  ReplicaApplier applier(&sim, &net, replica, /*shard=*/0, &store, &catalog,
                         &cpu);

  ShipperOptions options;
  options.max_batch_bytes = 16 * 1024;
  LogShipper shipper(&sim, &net, kPrimary, /*shard=*/0, &stream, {replica},
                     options);
  shipper.Start();
  shipper.NotifyAppend();

  // Let part of the window land, then crash the replica: all in-flight
  // sends of the window fail (RST), which must charge one failure burst and
  // rewind once — not one failure per in-flight batch.
  sim.RunFor(30 * kMillisecond);
  EXPECT_GT(applier.applied_lsn(), 0u);
  EXPECT_LT(applier.applied_lsn(), tail);
  net.SetNodeUp(replica, false);
  sim.RunFor(600 * kMillisecond);
  EXPECT_FALSE(shipper.IsReplicaHealthy(replica));
  EXPECT_EQ(shipper.metrics().Get("ship.replica_down"), 1);

  net.SetNodeUp(replica, true);
  while (shipper.AckedLsn(replica) < tail && sim.now() < 20 * kSecond) {
    sim.RunFor(5 * kMillisecond);
  }
  EXPECT_EQ(shipper.AckedLsn(replica), tail);
  EXPECT_EQ(applier.applied_lsn(), tail);
  EXPECT_TRUE(shipper.IsReplicaHealthy(replica));
  EXPECT_EQ(shipper.metrics().Get("ship.replica_recovered"), 1);
  // Zero lost and zero duplicated rows: every record applied exactly once.
  EXPECT_EQ(applier.metrics().Get("apply.records"),
            static_cast<int64_t>(tail));
  MvccTable* table = store.GetTable(1);
  ASSERT_NE(table, nullptr);
  const auto rows = table->Scan("", "", kTimestampMax - 1, kInvalidTxnId,
                                2 * kTxns, nullptr);
  EXPECT_EQ(rows.size(), static_cast<size_t>(kTxns));
  shipper.Stop();
  sim.RunFor(10 * kMillisecond);
}

}  // namespace
}  // namespace globaldb
