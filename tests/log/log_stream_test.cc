#include "src/log/log_stream.h"

#include <gtest/gtest.h>

namespace globaldb {
namespace {

RedoRecord MakeData(TxnId txn, const std::string& key) {
  return RedoRecord::Insert(txn, 1, key, "payload_" + key);
}

TEST(LogStreamTest, AppendAssignsDenseLsns) {
  LogStream stream;
  EXPECT_EQ(stream.Append(MakeData(1, "a")), 1u);
  EXPECT_EQ(stream.Append(MakeData(1, "b")), 2u);
  EXPECT_EQ(stream.Append(RedoRecord::Commit(1, 100)), 3u);
  EXPECT_EQ(stream.next_lsn(), 4u);
  EXPECT_EQ(stream.size(), 3u);
}

TEST(LogStreamTest, ReadFromCursor) {
  LogStream stream;
  for (int i = 0; i < 10; ++i) {
    stream.Append(MakeData(1, "k" + std::to_string(i)));
  }
  auto r = stream.Read(4, 100, 1 << 20);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 7u);
  EXPECT_EQ((*r)[0].lsn, 4u);
  EXPECT_EQ((*r)[0].key, "k3");
}

TEST(LogStreamTest, ReadRespectsMaxRecords) {
  LogStream stream;
  for (int i = 0; i < 10; ++i) stream.Append(MakeData(1, "k"));
  auto r = stream.Read(1, 3, 1 << 20);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(LogStreamTest, ReadRespectsMaxBytesButReturnsAtLeastOne) {
  LogStream stream;
  for (int i = 0; i < 5; ++i) {
    stream.Append(RedoRecord::Insert(1, 1, "key", std::string(1000, 'x')));
  }
  auto r = stream.Read(1, 100, 1);  // 1 byte budget
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  auto r2 = stream.Read(1, 100, 2500);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 2u);
}

TEST(LogStreamTest, ReadPastEndIsEmpty) {
  LogStream stream;
  stream.Append(MakeData(1, "a"));
  auto r = stream.Read(5, 10, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(LogStreamTest, TruncationDropsPrefixAndRejectsOldReads) {
  LogStream stream;
  for (int i = 0; i < 10; ++i) stream.Append(MakeData(1, "k"));
  stream.TruncateUntil(6);
  EXPECT_EQ(stream.begin_lsn(), 6u);
  EXPECT_EQ(stream.size(), 5u);
  EXPECT_FALSE(stream.Read(3, 10, 1000).ok());
  auto r = stream.Read(6, 10, 1 << 20);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
  // New appends continue the LSN sequence.
  EXPECT_EQ(stream.Append(MakeData(2, "z")), 11u);
}

TEST(LogStreamTest, AtFetchesSingleRecord) {
  LogStream stream;
  stream.Append(MakeData(1, "a"));
  stream.Append(MakeData(2, "b"));
  auto r = stream.At(2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->txn_id, 2u);
  EXPECT_FALSE(stream.At(3).ok());
  EXPECT_FALSE(stream.At(0).ok());
}

TEST(LogStreamTest, BatchRoundTripUncompressed) {
  LogStream stream;
  for (int i = 0; i < 20; ++i) {
    stream.Append(MakeData(i, "key" + std::to_string(i)));
  }
  auto records = stream.Read(1, 100, 1 << 20);
  ASSERT_TRUE(records.ok());
  std::string batch =
      LogStream::EncodeBatch(*records, CompressionType::kNone);
  std::vector<RedoRecord> decoded;
  ASSERT_TRUE(LogStream::DecodeBatch(batch, &decoded).ok());
  EXPECT_EQ(decoded, *records);
}

TEST(LogStreamTest, BatchRoundTripCompressedIsSmaller) {
  std::vector<RedoRecord> records;
  for (int i = 0; i < 50; ++i) {
    RedoRecord r = RedoRecord::Insert(
        i, 1, "warehouse_key_" + std::to_string(i % 3),
        "customer_payload_field_repeated_content_" + std::to_string(i % 3));
    r.lsn = i + 1;
    records.push_back(r);
  }
  std::string raw = LogStream::EncodeBatch(records, CompressionType::kNone);
  std::string lz = LogStream::EncodeBatch(records, CompressionType::kLz);
  EXPECT_LT(lz.size(), raw.size() / 2);
  std::vector<RedoRecord> decoded;
  ASSERT_TRUE(LogStream::DecodeBatch(lz, &decoded).ok());
  EXPECT_EQ(decoded, records);
}

TEST(LogStreamTest, CompressedBatchFallsBackWhenIncompressible) {
  // A single tiny record may not compress; the batch must still decode.
  std::vector<RedoRecord> records = {RedoRecord::Abort(1)};
  records[0].lsn = 1;
  std::string batch = LogStream::EncodeBatch(records, CompressionType::kLz);
  std::vector<RedoRecord> decoded;
  ASSERT_TRUE(LogStream::DecodeBatch(batch, &decoded).ok());
  EXPECT_EQ(decoded, records);
}

TEST(LogStreamTest, DecodeBatchRejectsGarbage) {
  std::vector<RedoRecord> decoded;
  EXPECT_FALSE(LogStream::DecodeBatch("", &decoded).ok());
  EXPECT_FALSE(LogStream::DecodeBatch("\x07garbage", &decoded).ok());
  std::string bad;
  bad.push_back(static_cast<char>(CompressionType::kNone));
  bad += "\xff\xff\xff";
  EXPECT_FALSE(LogStream::DecodeBatch(bad, &decoded).ok());
}

TEST(LogStreamTest, TotalBytesAccumulates) {
  LogStream stream;
  EXPECT_EQ(stream.total_bytes(), 0u);
  stream.Append(MakeData(1, "a"));
  const uint64_t after_one = stream.total_bytes();
  EXPECT_GT(after_one, 0u);
  stream.Append(MakeData(1, "b"));
  EXPECT_GT(stream.total_bytes(), after_one);
}

}  // namespace
}  // namespace globaldb
