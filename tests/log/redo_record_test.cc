#include "src/log/redo_record.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace globaldb {
namespace {

TEST(RedoRecordTest, EncodeDecodeRoundTripAllTypes) {
  std::vector<RedoRecord> records = {
      RedoRecord::Insert(7, 3, "key1", "value1"),
      RedoRecord::Update(7, 3, "key1", "value2"),
      RedoRecord::Delete(8, 4, "key2"),
      RedoRecord::PendingCommit(7),
      RedoRecord::Commit(7, 1234567),
      RedoRecord::Abort(8),
      RedoRecord::Prepare(9),
      RedoRecord::CommitPrepared(9, 1234999),
      RedoRecord::AbortPrepared(10),
      RedoRecord::Heartbeat(2000000),
      RedoRecord::Ddl(2000001, "CREATE TABLE t"),
  };
  for (size_t i = 0; i < records.size(); ++i) records[i].lsn = i + 1;

  std::string buf;
  for (const auto& r : records) r.EncodeTo(&buf);

  Slice in(buf);
  for (const auto& expected : records) {
    RedoRecord got;
    ASSERT_TRUE(RedoRecord::DecodeFrom(&in, &got).ok());
    EXPECT_EQ(got, expected) << RedoTypeName(expected.type);
  }
  EXPECT_TRUE(in.empty());
}

TEST(RedoRecordTest, EncodedSizeMatchesActual) {
  RedoRecord r = RedoRecord::Insert(123456, 17, "some_key", "some_value");
  r.lsn = 99;
  std::string buf;
  r.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), r.EncodedSize());
}

TEST(RedoRecordTest, DecodeRejectsBadType) {
  std::string buf = "\xff junk";
  Slice in(buf);
  RedoRecord r;
  EXPECT_FALSE(RedoRecord::DecodeFrom(&in, &r).ok());
}

TEST(RedoRecordTest, DecodeRejectsTruncation) {
  RedoRecord r = RedoRecord::Insert(1, 2, "key", "value");
  std::string buf;
  r.EncodeTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    RedoRecord out;
    EXPECT_FALSE(RedoRecord::DecodeFrom(&in, &out).ok()) << "cut=" << cut;
  }
}

TEST(RedoRecordTest, ClassifiersCorrect) {
  EXPECT_TRUE(RedoRecord::Insert(1, 1, "k", "v").IsData());
  EXPECT_TRUE(RedoRecord::Delete(1, 1, "k").IsData());
  EXPECT_FALSE(RedoRecord::Commit(1, 2).IsData());
  EXPECT_TRUE(RedoRecord::Commit(1, 2).IsCommit());
  EXPECT_TRUE(RedoRecord::CommitPrepared(1, 2).IsCommit());
  EXPECT_FALSE(RedoRecord::Abort(1).IsCommit());
  EXPECT_FALSE(RedoRecord::Heartbeat(5).IsCommit());
}

TEST(RedoRecordTest, BinaryKeyAndValueSurvive) {
  std::string key("\x00\x01\xff\x7f", 4);
  std::string value;
  Rng rng(5);
  for (int i = 0; i < 256; ++i) value.push_back(static_cast<char>(i));
  RedoRecord r = RedoRecord::Insert(1, 1, key, value);
  std::string buf;
  r.EncodeTo(&buf);
  Slice in(buf);
  RedoRecord out;
  ASSERT_TRUE(RedoRecord::DecodeFrom(&in, &out).ok());
  EXPECT_EQ(out.key, key);
  EXPECT_EQ(out.value, value);
}

}  // namespace
}  // namespace globaldb
