// In-doubt 2PC outcome resolution on a promoted primary (DESIGN.md §13),
// one deterministic scenario per resolution path:
//   - the owning CN's decision cache answers (abort flavor),
//   - a peer participant shard answers (commit flavor, CN dead),
//   - presumed abort once the CN and every peer answer a definitive
//     "unknown" (decision evicted everywhere),
//   - and a promoted replica that replayed COMMIT_PREPARED rejects a
//     duplicated late abort via its adopted decision memo.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/rpc/rpc_client.h"
#include "src/storage/schema.h"

namespace globaldb {
namespace {

ClusterOptions MakeOptions() {
  ClusterOptions options;
  options.topology = sim::Topology::SingleRegion();
  options.network.nagle_enabled = false;
  // Fast transport failures so re-drives against dead nodes churn quickly.
  options.network.rpc_timeout = 250 * kMillisecond;
  options.num_shards = 2;
  options.cns_per_region = 2;
  options.replicas_per_shard = 2;
  // Sync-quorum: the prepare durability wait puts every PREPARE the CN acted
  // on onto the most-caught-up replica before the decision — the basis of
  // in-doubt transfer at promotion.
  options.shipper.mode = ReplicationMode::kSyncQuorum;
  options.shipper.quorum_replicas = 1;
  // Promotions are driven explicitly by the test.
  options.health.enabled = false;
  return options;
}

TableSchema PairSchema() {
  TableSchema schema;
  schema.name = "pairs";
  schema.columns = {{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  return schema;
}

int64_t KeyOnShard(uint32_t num_shards, ShardId shard, int64_t start) {
  const TableSchema schema = PairSchema();
  for (int64_t id = start;; ++id) {
    if (RouteRowToShard(schema, {id, 0}, num_shards) == shard) return id;
  }
}

void CreatePairsTable(sim::Simulator* sim, Cluster* cluster) {
  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    TableSchema schema = PairSchema();
    EXPECT_TRUE((co_await cluster->cn(0).CreateTable(schema)).ok());
    *ready = true;
  };
  sim->Spawn(setup(cluster, &ready));
  for (int i = 0; i < 200 && !ready; ++i) sim->RunFor(10 * kMillisecond);
  ASSERT_TRUE(ready);
}

/// One cross-shard transaction: insert `a` and `b`, then commit. Reports the
/// commit status and the transaction id.
sim::Task<void> RunPairTxn(Cluster* cluster, int64_t a, int64_t b,
                           Status* commit_status, TxnId* txn_id, bool* done) {
  CoordinatorNode& cn = cluster->cn(0);
  auto txn = co_await cn.Begin();
  EXPECT_TRUE(txn.ok());
  if (!txn.ok()) {
    *done = true;
    co_return;
  }
  if (txn_id != nullptr) *txn_id = txn->id;
  Row row_a = {a, 1};
  Row row_b = {b, 2};
  Status s = co_await cn.Insert(&*txn, "pairs", row_a);
  if (s.ok()) s = co_await cn.Insert(&*txn, "pairs", row_b);
  if (s.ok()) {
    *commit_status = co_await cn.Commit(&*txn);
  } else {
    (void)co_await cn.Abort(&*txn);
    *commit_status = s;
  }
  *done = true;
}

/// Reads `key` through `cn_index` (a regular primary read — a read-only
/// txn's RCP snapshot can be frozen pre-commit when the collector CN or a
/// replica stream died mid-test) and reports whether it exists.
sim::Task<void> ProbeRow(Cluster* cluster, int cn_index, int64_t key,
                         bool* found, bool* done) {
  CoordinatorNode& cn = cluster->cn(cn_index);
  auto txn = co_await cn.Begin();
  EXPECT_TRUE(txn.ok());
  if (txn.ok()) {
    Row key_row = {key};
    auto row = co_await cn.Get(&*txn, "pairs", key_row);
    EXPECT_TRUE(row.ok());
    *found = row.ok() && row->has_value();
    (void)co_await cn.Abort(&*txn);
  }
  *done = true;
}

bool RowExists(sim::Simulator* sim, Cluster* cluster, int cn_index,
               int64_t key) {
  bool found = false;
  bool done = false;
  sim->Spawn(ProbeRow(cluster, cn_index, key, &found, &done));
  for (int i = 0; i < 500 && !done; ++i) sim->RunFor(10 * kMillisecond);
  EXPECT_TRUE(done);
  return found;
}

TEST(InDoubtResolutionTest, ResolvedByOwnerCnAbort) {
  sim::Simulator sim(11);
  ClusterOptions options = MakeOptions();
  Cluster cluster(&sim, options);
  cluster.Start();
  CreatePairsTable(&sim, &cluster);

  const int64_t key0 = KeyOnShard(options.num_shards, 0, 1);
  const int64_t key1 = KeyOnShard(options.num_shards, 1, key0 + 1);

  // The primary of shard 0 dies right after the PREPARE is appended and
  // replicated: the CN sees the precommit fail and aborts, but the crashed
  // shard holds a prepared transaction only its promoted successor can
  // resolve.
  cluster.data_node(0).ArmCrash(CrashStage::kAfterPrepareAppend);
  Status commit_status;
  bool done = false;
  sim.Spawn(RunPairTxn(&cluster, key0, key1, &commit_status, nullptr, &done));
  for (int i = 0; i < 500 && !done; ++i) sim.RunFor(10 * kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(commit_status.ok());
  EXPECT_FALSE(cluster.network().IsNodeUp(Cluster::PrimaryNodeId(0)));
  EXPECT_EQ(cluster.data_node(0).metrics().Get("dn.staged_crashes"), 1);

  // Let the CN's abort re-drive exhaust against the dead primary, then
  // promote. The prepared transaction must arrive in doubt, not be blindly
  // aborted at install.
  sim.RunFor(500 * kMillisecond);
  ASSERT_NE(cluster.PromoteShard(0), kInvalidNodeId);
  DataNode& promoted = cluster.data_node(0);
  EXPECT_EQ(promoted.metrics().Get("dn.promotion_in_doubt"), 1);

  // The resolver queries the owning CN's decision cache and learns ABORTED.
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(promoted.in_doubt_count(), 0u);
  EXPECT_GE(promoted.metrics().Get("dn.outcome_queries"), 1);
  EXPECT_EQ(promoted.metrics().Get("dn.outcome_resolved_by_cn"), 1);
  EXPECT_EQ(promoted.metrics().Get("dn.promotion_aborts_resolved"), 1);
  EXPECT_EQ(promoted.metrics().Get("dn.promotion_aborts_presumed"), 0);
  EXPECT_GE(cluster.cn(0).metrics().Get("cn.outcome_queries_served"), 1);

  // Atomicity: the transaction aborted everywhere — neither row exists.
  EXPECT_FALSE(RowExists(&sim, &cluster, 1, key0));
  EXPECT_FALSE(RowExists(&sim, &cluster, 1, key1));
}

TEST(InDoubtResolutionTest, ResolvedByPeerShardCommit) {
  sim::Simulator sim(22);
  ClusterOptions options = MakeOptions();
  Cluster cluster(&sim, options);
  cluster.Start();
  CreatePairsTable(&sim, &cluster);

  const int64_t key0 = KeyOnShard(options.num_shards, 0, 1);
  const int64_t key1 = KeyOnShard(options.num_shards, 1, key0 + 1);

  // The primary of shard 0 dies when the phase-2 commit arrives (nothing of
  // it applies); shard 1 applies and memoizes the commit. Then the owning CN
  // goes down too: the only remaining source of truth is the peer shard.
  cluster.data_node(0).ArmCrash(CrashStage::kOnCommitArrival);
  Status commit_status;
  bool done = false;
  sim.Spawn(RunPairTxn(&cluster, key0, key1, &commit_status, nullptr, &done));
  for (int i = 0; i < 1000 && cluster.network().IsNodeUp(
                                  Cluster::PrimaryNodeId(0));
       ++i) {
    sim.RunFor(1 * kMillisecond);
  }
  ASSERT_FALSE(cluster.network().IsNodeUp(Cluster::PrimaryNodeId(0)));
  cluster.network().SetNodeUp(Cluster::CnNodeId(0), false);

  sim.RunFor(200 * kMillisecond);
  ASSERT_NE(cluster.PromoteShard(0), kInvalidNodeId);
  DataNode& promoted = cluster.data_node(0);
  EXPECT_EQ(promoted.metrics().Get("dn.promotion_in_doubt"), 1);

  // CN queries fail (it is down); the peer participant answers COMMITTED.
  sim.RunFor(2 * kSecond);
  EXPECT_EQ(promoted.in_doubt_count(), 0u);
  EXPECT_EQ(promoted.metrics().Get("dn.outcome_resolved_by_peer"), 1);
  EXPECT_EQ(promoted.metrics().Get("dn.promotion_commits"), 1);
  EXPECT_GE(cluster.data_node(1).metrics().Get("dn.txn_state_queries"), 1);

  // Atomicity: the transaction committed everywhere — both rows exist
  // (read via the surviving CN).
  EXPECT_TRUE(RowExists(&sim, &cluster, 1, key0));
  EXPECT_TRUE(RowExists(&sim, &cluster, 1, key1));
}

TEST(InDoubtResolutionTest, PresumedAbortWhenEverySourceIsDefinitive) {
  sim::Simulator sim(33);
  ClusterOptions options = MakeOptions();
  // Tiny decision memos: the aborted transaction's outcome is evicted from
  // both the CN cache and the peer shard's memo before promotion, leaving
  // every source answering a definitive "unknown".
  options.coordinator.decision_cache_capacity = 2;
  options.data_node.decision_memo_capacity = 2;
  Cluster cluster(&sim, options);
  cluster.Start();
  CreatePairsTable(&sim, &cluster);

  const int64_t key0 = KeyOnShard(options.num_shards, 0, 1);
  const int64_t key1 = KeyOnShard(options.num_shards, 1, key0 + 1);

  cluster.data_node(0).ArmCrash(CrashStage::kAfterPrepareAppend);
  Status commit_status;
  bool done = false;
  sim.Spawn(RunPairTxn(&cluster, key0, key1, &commit_status, nullptr, &done));
  for (int i = 0; i < 500 && !done; ++i) sim.RunFor(10 * kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(commit_status.ok());

  // Push the aborted decision out of both bounded memos with fresh
  // single-shard transactions on the surviving shard.
  for (int i = 0; i < 4; ++i) {
    const int64_t filler = KeyOnShard(options.num_shards, 1, 10000 + i * 100);
    Status filler_status;
    bool filler_done = false;
    sim.Spawn(RunPairTxn(&cluster, filler, filler + 0, &filler_status,
                         nullptr, &filler_done));
    for (int j = 0; j < 200 && !filler_done; ++j) {
      sim.RunFor(10 * kMillisecond);
    }
    ASSERT_TRUE(filler_done);
  }

  ASSERT_NE(cluster.PromoteShard(0), kInvalidNodeId);
  DataNode& promoted = cluster.data_node(0);
  EXPECT_EQ(promoted.metrics().Get("dn.promotion_in_doubt"), 1);

  // CN: definitive unknown (evicted, not in flight). Peer: definitive
  // unknown (evicted). Only now is presumed abort allowed.
  sim.RunFor(2 * kSecond);
  EXPECT_EQ(promoted.in_doubt_count(), 0u);
  EXPECT_GE(promoted.metrics().Get("dn.outcome_queries"), 2);
  EXPECT_EQ(promoted.metrics().Get("dn.promotion_aborts_presumed"), 1);
  EXPECT_EQ(promoted.metrics().Get("dn.outcome_resolved_by_cn"), 0);
  EXPECT_EQ(promoted.metrics().Get("dn.outcome_resolved_by_peer"), 0);

  EXPECT_FALSE(RowExists(&sim, &cluster, 1, key0));
}

TEST(InDoubtResolutionTest, PromotedReplicaRejectsDuplicatedLateAbort) {
  sim::Simulator sim(44);
  ClusterOptions options = MakeOptions();
  Cluster cluster(&sim, options);
  cluster.Start();
  CreatePairsTable(&sim, &cluster);

  const int64_t key0 = KeyOnShard(options.num_shards, 0, 1);
  const int64_t key1 = KeyOnShard(options.num_shards, 1, key0 + 1);

  // A clean cross-shard commit: replicas replay PREPARE + COMMIT_PREPARED.
  Status commit_status;
  TxnId txn_id = kInvalidTxnId;
  bool done = false;
  sim.Spawn(RunPairTxn(&cluster, key0, key1, &commit_status, &txn_id, &done));
  for (int i = 0; i < 500 && !done; ++i) sim.RunFor(10 * kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(commit_status.ok());
  ASSERT_NE(txn_id, kInvalidTxnId);
  sim.RunFor(300 * kMillisecond);

  // Promote a replica of shard 0: it adopts the replayed decision memo.
  const NodeId promoted_id = cluster.PromoteShard(0);
  ASSERT_NE(promoted_id, kInvalidNodeId);
  DataNode& promoted = cluster.data_node(0);
  sim.RunFor(200 * kMillisecond);
  ASSERT_NE(promoted.decisions().Lookup(txn_id), nullptr);

  // A duplicated, reordered-past-the-promotion abort for the committed
  // transaction must be rejected both times — never applied.
  std::vector<Status> replies;
  bool aborts_done = false;
  auto late_aborts = [](Cluster* cluster, NodeId target, TxnId txn,
                        std::vector<Status>* replies,
                        bool* done) -> sim::Task<void> {
    rpc::RpcClient client(&cluster->network(), Cluster::CnNodeId(0));
    TxnControlRequest late;
    late.txn = txn;
    late.two_phase = true;
    for (int i = 0; i < 2; ++i) {
      auto reply = co_await client.Call(target, kDnAbort, late);
      replies->push_back(reply.status());
    }
    *done = true;
  };
  sim.Spawn(late_aborts(&cluster, promoted_id, txn_id, &replies,
                        &aborts_done));
  for (int i = 0; i < 500 && !aborts_done; ++i) sim.RunFor(10 * kMillisecond);
  ASSERT_TRUE(aborts_done);
  ASSERT_EQ(replies.size(), 2u);
  for (const Status& reply : replies) {
    EXPECT_EQ(reply.code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_GE(promoted.metrics().Get("dn.decision_dedup_hits"), 2);

  // The committed rows survived the duplicated aborts.
  EXPECT_TRUE(RowExists(&sim, &cluster, 0, key0));
  EXPECT_TRUE(RowExists(&sim, &cluster, 0, key1));
}

}  // namespace
}  // namespace globaldb
