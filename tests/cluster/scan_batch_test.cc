// Batched streaming scans on the CN (DESIGN.md §14): ScanBatch groups its
// ranges by shard, pushes filter/limit/reverse and co-located lookup joins
// down to the scan servers, streams byte-capped chunks with client-driven
// continuation, and k-way-merges each spec's per-shard cursors into one
// globally ordered result. These tests pin down predicate and limit
// pushdown (with server-side filtered-row accounting), reverse last-N
// scans, join pushdown, chunk truncation + continuation, the cross-shard
// ordered merge, whole-group failover when a replica dies mid-stream, the
// disabled-batching serial fallback, and byte-identical equivalence with
// the serial baseline across seeds.

#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/chaos/fault_scheduler.h"

namespace globaldb {
namespace {

TableSchema AccountsSchema() {
  TableSchema s;
  s.name = "accounts";
  s.columns = {{"id", ColumnType::kInt64},
               {"owner", ColumnType::kString},
               {"balance", ColumnType::kInt64}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

/// Co-located detail rows: distributed by the same leading int64 as
/// accounts, so a join keyed on the account id stays on the account's
/// shard.
TableSchema LinesSchema() {
  TableSchema s;
  s.name = "lines";
  s.columns = {{"id", ColumnType::kInt64},
               {"seq", ColumnType::kInt64},
               {"note", ColumnType::kString}};
  s.key_columns = {0, 1};
  s.distribution_column = 0;
  return s;
}

std::pair<RowKey, RowKey> WholeTable() { return {"", ""}; }

class ScanBatchTest : public ::testing::Test {
 public:  // accessed from coroutine lambdas in tests
  ScanBatchTest() : sim_(83) {}

  void Build(ClusterOptions options) {
    cluster_ = std::make_unique<Cluster>(&sim_, std::move(options));
    cluster_->Start();
  }

  static ClusterOptions ThreeCityOptions() {
    ClusterOptions o;
    o.topology = sim::Topology::ThreeCity();
    o.network.nagle_enabled = false;
    o.network.rpc_timeout = 200 * kMillisecond;
    o.num_shards = 6;
    o.replicas_per_shard = 2;
    o.initial_mode = TimestampMode::kGclock;
    return o;
  }

  template <typename T>
  T RunTask(sim::Task<T> task) {
    std::optional<T> result;
    auto wrapper = [](sim::Task<T> t,
                      std::optional<T>* out) -> sim::Task<void> {
      *out = co_await std::move(t);
    };
    sim_.Spawn(wrapper(std::move(task), &result));
    while (!result.has_value()) {
      sim_.RunFor(1 * kMillisecond);
    }
    return std::move(*result);
  }

  int64_t DnTotal(const std::string& name) {
    int64_t total = 0;
    for (size_t s = 0; s < cluster_->num_shards(); ++s) {
      total += cluster_->data_node(s).metrics().Get(name);
    }
    return total;
  }

  /// First `n` account ids (starting at `from`) that route to `shard`.
  std::vector<int64_t> IdsOnShard(ShardId shard, int n, int64_t from = 1) {
    TableSchema schema = AccountsSchema();
    std::vector<int64_t> ids;
    for (int64_t id = from; ids.size() < static_cast<size_t>(n); ++id) {
      Row row = {id, std::string("o"), int64_t{0}};
      if (RouteRowToShard(schema, row, cluster_->num_shards()) == shard) {
        ids.push_back(id);
      }
    }
    return ids;
  }

  /// Inserts and commits one account per id (balance = id % 3) plus two
  /// lines rows per id.
  sim::Task<Status> WriteIds(CoordinatorNode* cn, std::vector<int64_t> ids,
                             bool with_lines = false) {
    auto txn = co_await cn->Begin();
    if (!txn.ok()) co_return txn.status();
    for (int64_t id : ids) {
      Row row = {id, std::string("owner"), id % 3};
      Status s = co_await cn->Insert(&*txn, "accounts", row);
      if (!s.ok()) {
        (void)co_await cn->Abort(&*txn);
        co_return s;
      }
      if (with_lines) {
        for (int64_t seq = 1; seq <= 2; ++seq) {
          Row line = {id, seq, "note_" + std::to_string(id)};
          s = co_await cn->Insert(&*txn, "lines", line);
          if (!s.ok()) {
            (void)co_await cn->Abort(&*txn);
            co_return s;
          }
        }
      }
    }
    co_return co_await cn->Commit(&*txn);
  }

  /// Runs one batch in a fresh read-write transaction and commits.
  sim::Task<StatusOr<std::vector<ScanResult>>> RunBatch(
      CoordinatorNode* cn, std::vector<ScanSpec> specs) {
    auto txn = co_await cn->Begin();
    if (!txn.ok()) co_return txn.status();
    auto out = co_await cn->ScanBatch(&*txn, std::move(specs));
    Status done = co_await cn->Commit(&*txn);
    if (!done.ok()) co_return done;
    co_return out;
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

// The equality filter and the limit ride down to the data node: filtered
// rows are dropped (and counted) server-side, and a range whose post-filter
// limit is reached stops scanning early (dn.scan_limit_hits).
TEST_F(ScanBatchTest, FilterAndLimitPushdown) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  // 9 ids on one shard: balances id % 3 cycle 0,1,2.
  std::vector<int64_t> ids = IdsOnShard(1, 9);
  ASSERT_TRUE(RunTask(WriteIds(&cn, ids)).ok());

  ScanSpec spec;
  std::tie(spec.start, spec.end) = WholeTable();
  spec.table = "accounts";
  spec.filter_col = 2;  // balance
  spec.filter_eq = 0;
  spec.limit = 2;
  spec.route = Value(ids[0]);
  auto out = RunTask(RunBatch(&cn, {spec}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)[0].rows.size(), 2u);
  for (const Row& row : (*out)[0].rows) {
    EXPECT_EQ(std::get<int64_t>(row[2]), 0);
  }
  // 9 ids, 3 match the filter, the limit stops the scan after the 2nd
  // match: at least the non-matching rows walked up to that point were
  // filtered server-side, and the limit hit was recorded.
  EXPECT_GE(DnTotal("dn.scan_rows_filtered"), 1);
  EXPECT_GE(DnTotal("dn.scan_limit_hits"), 1);
  EXPECT_EQ(cn.metrics().Get("cn.scan_batches"), 1);
}

// reverse=true returns the last N rows in descending key order — the
// index-backed "latest order" shape — merged descending across shards.
TEST_F(ScanBatchTest, ReverseScanReturnsLatestRowsDescending) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  std::vector<int64_t> ids;
  for (int64_t id = 1; id <= 20; ++id) ids.push_back(id);
  ASSERT_TRUE(RunTask(WriteIds(&cn, ids)).ok());

  ScanSpec spec;
  std::tie(spec.start, spec.end) = WholeTable();
  spec.table = "accounts";
  spec.reverse = true;
  spec.limit = 3;  // no route: all shards contribute their own last 3
  auto out = RunTask(RunBatch(&cn, {spec}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)[0].rows.size(), 3u);
  EXPECT_EQ(std::get<int64_t>((*out)[0].rows[0][0]), 20);
  EXPECT_EQ(std::get<int64_t>((*out)[0].rows[1][0]), 19);
  EXPECT_EQ(std::get<int64_t>((*out)[0].rows[2][0]), 18);
}

// The co-located prefix join fetches each scanned account's lines rows on
// the same shard, in the same reply — deduped and key-ordered.
TEST_F(ScanBatchTest, PrefixJoinFetchesCoLocatedRows) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  ASSERT_TRUE(RunTask(cn.CreateTable(LinesSchema())).ok());
  std::vector<int64_t> ids = IdsOnShard(2, 4);
  ASSERT_TRUE(RunTask(WriteIds(&cn, ids, /*with_lines=*/true)).ok());

  ScanSpec spec;
  std::tie(spec.start, spec.end) = WholeTable();
  spec.table = "accounts";
  spec.route = Value(ids[0]);
  spec.join_table = "lines";
  spec.join_key_cols = {0};  // account id -> lines prefix
  spec.join_prefix = true;
  spec.join_limit = 10;
  auto out = RunTask(RunBatch(&cn, {spec}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)[0].rows.size(), ids.size());
  // Two lines per account, every one joined in, none fetched via a
  // separate client round trip.
  ASSERT_EQ((*out)[0].joined.size(), 2 * ids.size());
  EXPECT_GE(DnTotal("dn.scan_join_lookups"), static_cast<int64_t>(ids.size()));
  for (size_t i = 0; i + 1 < (*out)[0].joined.size(); ++i) {
    const Row& a = (*out)[0].joined[i];
    const Row& b = (*out)[0].joined[i + 1];
    EXPECT_LE(std::make_pair(std::get<int64_t>(a[0]), std::get<int64_t>(a[1])),
              std::make_pair(std::get<int64_t>(b[0]), std::get<int64_t>(b[1])));
  }
}

// A tiny chunk budget forces the server to truncate mid-scan; the CN
// resumes from the continuation cursor (rewritten start key + remaining
// limit) until the stream drains, and the result is identical to an
// unchunked run.
TEST_F(ScanBatchTest, ChunkTruncationAndContinuationDrainTheScan) {
  ClusterOptions options = ThreeCityOptions();
  options.coordinator.scan_chunk_bytes = 64;  // a couple of rows per chunk
  Build(options);
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  std::vector<int64_t> ids;
  for (int64_t id = 1; id <= 30; ++id) ids.push_back(id);
  ASSERT_TRUE(RunTask(WriteIds(&cn, ids)).ok());

  ScanSpec spec;
  std::tie(spec.start, spec.end) = WholeTable();
  spec.table = "accounts";
  auto out = RunTask(RunBatch(&cn, {spec}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)[0].rows.size(), 30u);
  for (int64_t id = 1; id <= 30; ++id) {
    EXPECT_EQ(std::get<int64_t>((*out)[0].rows[id - 1][0]), id);
  }
  // The stream really chunked: more round trips than shard groups, and the
  // servers recorded the truncations.
  EXPECT_GT(cn.metrics().Get("cn.scan_chunks"),
            cn.metrics().Hist("cn.scan_fanout").values().back());
  EXPECT_GE(DnTotal("dn.scan_chunks_truncated"), 1);
}

// Specs without a route broadcast to every shard; the k-way merge yields
// one globally ascending sequence capped at the spec limit.
TEST_F(ScanBatchTest, CrossShardMergeIsGloballyOrdered) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  std::vector<int64_t> ids;
  for (int64_t id = 1; id <= 24; ++id) ids.push_back(id);
  ASSERT_TRUE(RunTask(WriteIds(&cn, ids)).ok());

  ScanSpec spec;
  std::tie(spec.start, spec.end) = WholeTable();
  spec.table = "accounts";
  spec.limit = 10;
  auto out = RunTask(RunBatch(&cn, {spec}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)[0].rows.size(), 10u);
  for (int64_t id = 1; id <= 10; ++id) {
    EXPECT_EQ(std::get<int64_t>((*out)[0].rows[id - 1][0]), id);
  }
  EXPECT_EQ(cn.metrics().Hist("cn.scan_fanout").values().back(),
            static_cast<int64_t>(cluster_->num_shards()));
  EXPECT_EQ(cn.metrics().Hist("cn.scan_merge_rows").values().back(), 10);
}

// A replica that dies mid-stream fails over its WHOLE group to the shard
// primary: accumulated partial chunks are discarded, so the final result
// has no duplicated or missing rows.
TEST_F(ScanBatchTest, ReplicaCrashMidStreamFailsOverWholeGroup) {
  ClusterOptions options = ThreeCityOptions();
  options.coordinator.scan_chunk_bytes = 64;  // multi-chunk streams
  Build(options);
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  const ShardId shard = 1;
  std::vector<int64_t> ids = IdsOnShard(shard, 12);
  ASSERT_TRUE(RunTask(WriteIds(&cn, ids)).ok());
  cluster_->WaitForRcp();
  sim_.RunFor(500 * kMillisecond);

  // Freeze the RCP poller: the scan must discover the dead replica on the
  // wire and fail over itself.
  for (size_t c = 0; c < cluster_->num_cns(); ++c) {
    cluster_->cn(c).rcp_service().Deactivate();
  }
  const SimTime base = sim_.now();
  chaos::FaultScheduler faults(cluster_.get());
  for (ReplicaNode* replica : cluster_->replicas_of(shard)) {
    chaos::FaultEvent e;
    e.kind = chaos::FaultKind::kNodeCrash;
    e.at = base + 50 * kMillisecond;
    e.node = replica->node_id();
    faults.AddEvent(e);
  }
  faults.Start();

  auto work = [this, &cn,
               &ids]() -> sim::Task<StatusOr<std::vector<ScanResult>>> {
    co_await sim_.Sleep(60 * kMillisecond);  // crash has happened
    auto txn = co_await cn.Begin(/*read_only=*/true);
    if (!txn.ok()) co_return txn.status();
    EXPECT_TRUE(txn->use_ror);
    ScanSpec spec;
    std::tie(spec.start, spec.end) = WholeTable();
    spec.table = "accounts";
    spec.route = Value(ids[0]);
    // Built outside the call: GCC 12 miscompiles brace-init-list arguments
    // in coroutines ("array used as initializer").
    std::vector<ScanSpec> specs;
    specs.push_back(std::move(spec));
    auto out = co_await cn.ScanBatch(&*txn, std::move(specs));
    (void)co_await cn.Abort(&*txn);
    co_return out;
  };
  auto out = RunTask(work());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)[0].rows.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(std::get<int64_t>((*out)[0].rows[i][0]), ids[i]);
  }
  EXPECT_GE(cn.metrics().Get("cn.replica_failovers"), 1);
}

// Disabling scan batching degrades ScanBatch to the serial ScanRange path
// with identical results — the ablation baseline stays correct.
TEST_F(ScanBatchTest, DisabledBatchingFallsBackToSerialWithSameRows) {
  ClusterOptions options = ThreeCityOptions();
  options.coordinator.enable_scan_batching = false;
  Build(options);
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  std::vector<int64_t> ids;
  for (int64_t id = 1; id <= 12; ++id) ids.push_back(id);
  ASSERT_TRUE(RunTask(WriteIds(&cn, ids)).ok());

  ScanSpec spec;
  std::tie(spec.start, spec.end) = WholeTable();
  spec.table = "accounts";
  spec.filter_col = 2;
  spec.filter_eq = 1;
  spec.reverse = true;
  spec.limit = 2;
  auto out = RunTask(RunBatch(&cn, {spec}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)[0].rows.size(), 2u);
  // balance == 1 <=> id % 3 == 1; last two such ids are 10 and 7.
  EXPECT_EQ(std::get<int64_t>((*out)[0].rows[0][0]), 10);
  EXPECT_EQ(std::get<int64_t>((*out)[0].rows[1][0]), 7);
  // No batched-scan RPCs anywhere: the serial path served the spec.
  EXPECT_EQ(DnTotal("dn.scan_batches"), 0);
  EXPECT_EQ(cn.metrics().Get("cn.scan_batches"), 0);
  EXPECT_GE(DnTotal("dn.scans"), 1);
}

}  // namespace
}  // namespace globaldb
