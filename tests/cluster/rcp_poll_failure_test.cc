// RCP collector behavior when a replica stops answering status polls: the
// stale status from the last successful poll must be dropped — not kept
// and republished in every broadcast — while peers still learn the replica
// is unhealthy, and a recovered replica re-enters the update stream.

#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <memory>

namespace globaldb {
namespace {

class RcpPollFailureTest : public ::testing::Test {
 public:
  RcpPollFailureTest() : sim_(91) {}

  void Build() {
    ClusterOptions options;
    options.topology = sim::Topology::ThreeCity();
    options.network.nagle_enabled = false;
    // Polls into the dead replica fail in 200 ms, not the 5 s default.
    options.network.rpc_timeout = 200 * kMillisecond;
    options.num_shards = 6;
    options.replicas_per_shard = 2;
    options.initial_mode = TimestampMode::kGclock;
    cluster_ = std::make_unique<Cluster>(&sim_, options);
    cluster_->Start();
  }

  CoordinatorNode* Collector() {
    for (size_t c = 0; c < cluster_->num_cns(); ++c) {
      if (cluster_->cn(c).rcp_service().active()) return &cluster_->cn(c);
    }
    return nullptr;
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(RcpPollFailureTest, FailedReplicaStatusIsDroppedNotRepublished) {
  Build();
  cluster_->WaitForRcp();
  sim_.RunFor(300 * kMillisecond);

  CoordinatorNode* collector = Collector();
  ASSERT_NE(collector, nullptr);
  RcpService& rcp = collector->rcp_service();
  // Steady state: every replica has a polled status and none is failed.
  EXPECT_EQ(rcp.statuses().size(),
            cluster_->num_shards() * 2 /* replicas_per_shard */);
  EXPECT_TRUE(rcp.failed().empty());

  // Crash one replica and let the poller time out on it.
  ReplicaNode* victim = cluster_->replicas_of(0)[0];
  const NodeId victim_node = victim->node_id();
  cluster_->network().SetNodeUp(victim_node, false);
  sim_.RunFor(800 * kMillisecond);

  // The stale status is gone from the collector — broadcasts carry an
  // explicit unhealthy marker instead of last week's freshness.
  EXPECT_EQ(rcp.statuses().count(victim_node), 0u);
  EXPECT_EQ(rcp.failed().count(victim_node), 1u);
  EXPECT_GE(rcp.metrics().Get("rcp.poll_failures"), 1);

  // Every peer CN still learned the replica is unhealthy.
  for (size_t c = 0; c < cluster_->num_cns(); ++c) {
    EXPECT_FALSE(cluster_->cn(c).selector().IsHealthy(victim_node))
        << "cn=" << c;
  }

  // The RCP keeps advancing: the shard's other replica still feeds the
  // per-shard maximum.
  const Timestamp frozen = rcp.rcp();
  sim_.RunFor(500 * kMillisecond);
  EXPECT_GT(rcp.rcp(), frozen);

  // Recovery: the replica answers polls again, its status returns to the
  // update stream, and peers see it healthy.
  cluster_->network().SetNodeUp(victim_node, true);
  victim->Restart();
  sim_.RunFor(800 * kMillisecond);
  EXPECT_EQ(rcp.statuses().count(victim_node), 1u);
  EXPECT_EQ(rcp.failed().count(victim_node), 0u);
  EXPECT_GE(rcp.metrics().Get("rcp.replica_recovered"), 1);
  for (size_t c = 0; c < cluster_->num_cns(); ++c) {
    EXPECT_TRUE(cluster_->cn(c).selector().IsHealthy(victim_node))
        << "cn=" << c;
  }
}

}  // namespace
}  // namespace globaldb
