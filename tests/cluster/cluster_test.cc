#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <optional>

namespace globaldb {
namespace {

TableSchema AccountsSchema() {
  TableSchema s;
  s.name = "accounts";
  s.columns = {{"id", ColumnType::kInt64},
               {"owner", ColumnType::kString},
               {"balance", ColumnType::kInt64}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

class ClusterTest : public ::testing::Test {
 public:  // accessed from plain-function coroutines in tests
  ClusterTest() : sim_(21) {}

  void Build(ClusterOptions options) {
    cluster_ = std::make_unique<Cluster>(&sim_, std::move(options));
    cluster_->Start();
  }

  static ClusterOptions ThreeCityOptions() {
    ClusterOptions o;
    o.topology = sim::Topology::ThreeCity();
    o.network.nagle_enabled = false;
    o.num_shards = 6;
    o.replicas_per_shard = 2;
    o.initial_mode = TimestampMode::kGclock;
    return o;
  }

  /// Runs a coroutine to completion and returns its result.
  template <typename T>
  T RunTask(sim::Task<T> task) {
    std::optional<T> result;
    auto wrapper = [](sim::Task<T> t, std::optional<T>* out) -> sim::Task<void> {
      *out = co_await std::move(t);
    };
    sim_.Spawn(wrapper(std::move(task), &result));
    while (!result.has_value()) {
      sim_.RunFor(1 * kMillisecond);
    }
    return std::move(*result);
  }

  Status CreateAccounts(CoordinatorNode& cn) {
    return RunTask(cn.CreateTable(AccountsSchema()));
  }

  Status InsertAccount(CoordinatorNode& cn, int64_t id,
                       const std::string& owner, int64_t balance) {
    auto work = [](CoordinatorNode* cn, int64_t id, std::string owner,
                   int64_t balance) -> sim::Task<Status> {
      auto txn = co_await cn->Begin();
      if (!txn.ok()) co_return txn.status();
      // Note: braced-init-list temporaries inside co_await expressions
      // miscompile on GCC 12; build rows as locals first.
      Row row = {id, owner, balance};
      Status s = co_await cn->Insert(&*txn, "accounts", row);
      if (!s.ok()) {
        (void)co_await cn->Abort(&*txn);
        co_return s;
      }
      co_return co_await cn->Commit(&*txn);
    };
    return RunTask(work(&cn, id, owner, balance));
  }

  StatusOr<std::optional<Row>> GetAccount(CoordinatorNode& cn, int64_t id,
                                          bool read_only = false) {
    auto work = [](CoordinatorNode* cn, int64_t id,
                   bool ro) -> sim::Task<StatusOr<std::optional<Row>>> {
      auto txn = co_await cn->Begin(ro, /*single_shard=*/true);
      if (!txn.ok()) co_return txn.status();
      Row key = {id};
      co_return co_await cn->Get(&*txn, "accounts", key);
    };
    return RunTask(work(&cn, id, read_only));
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterTest, CreateInsertRead) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  for (int64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(InsertAccount(cn, id, "owner" + std::to_string(id),
                              id * 100).ok())
        << id;
  }
  for (int64_t id = 1; id <= 20; ++id) {
    auto row = GetAccount(cn, id);
    ASSERT_TRUE(row.ok());
    ASSERT_TRUE(row->has_value());
    EXPECT_EQ(std::get<int64_t>((**row)[2]), id * 100);
  }
  // Missing key.
  auto missing = GetAccount(cn, 999);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
}

TEST_F(ClusterTest, DuplicateInsertFails) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  ASSERT_TRUE(InsertAccount(cn, 1, "a", 100).ok());
  Status s = InsertAccount(cn, 1, "b", 200);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  // Original row intact.
  auto row = GetAccount(cn, 1);
  EXPECT_EQ(std::get<std::string>((**row)[1]), "a");
}

TEST_F(ClusterTest, MultiShardTransferIsAtomic) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  // Find two ids on different shards.
  const TableSchema* schema = cn.catalog().FindTable("accounts");
  int64_t a = 1, b = 2;
  while (RouteRowToShard(*schema, {b, std::string(), int64_t{0}}, 6) ==
         RouteRowToShard(*schema, {a, std::string(), int64_t{0}}, 6)) {
    ++b;
  }
  ASSERT_TRUE(InsertAccount(cn, a, "alice", 1000).ok());
  ASSERT_TRUE(InsertAccount(cn, b, "bob", 1000).ok());

  auto transfer = [](CoordinatorNode* cn, int64_t from, int64_t to,
                     int64_t amount) -> sim::Task<Status> {
    auto txn = co_await cn->Begin();
    if (!txn.ok()) co_return txn.status();
    Row from_key = {from};
    Row to_key = {to};
    auto src = co_await cn->Get(&*txn, "accounts", from_key);
    auto dst = co_await cn->Get(&*txn, "accounts", to_key);
    if (!src.ok() || !dst.ok() || !src->has_value() || !dst->has_value()) {
      (void)co_await cn->Abort(&*txn);
      co_return Status::NotFound("account");
    }
    Row src_row = **src, dst_row = **dst;
    std::get<int64_t>(src_row[2]) -= amount;
    std::get<int64_t>(dst_row[2]) += amount;
    Status s1 = co_await cn->Update(&*txn, "accounts", src_row);
    Status s2 = co_await cn->Update(&*txn, "accounts", dst_row);
    if (!s1.ok() || !s2.ok()) {
      (void)co_await cn->Abort(&*txn);
      co_return s1.ok() ? s2 : s1;
    }
    co_return co_await cn->Commit(&*txn);
  };
  ASSERT_TRUE(RunTask(transfer(&cn, a, b, 250)).ok());
  EXPECT_EQ(std::get<int64_t>((**GetAccount(cn, a))[2]), 750);
  EXPECT_EQ(std::get<int64_t>((**GetAccount(cn, b))[2]), 1250);
  EXPECT_EQ(cn.metrics().Get("cn.2pc_commits"), 1);
}

TEST_F(ClusterTest, AbortRollsBackAllShards) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  ASSERT_TRUE(InsertAccount(cn, 1, "a", 100).ok());
  auto work = [](CoordinatorNode* cn) -> sim::Task<Status> {
    auto txn = co_await cn->Begin();
    if (!txn.ok()) co_return txn.status();
    Row row = {int64_t{1}, std::string("a"), int64_t{9999}};
    Status s = co_await cn->Update(&*txn, "accounts", row);
    if (!s.ok()) co_return s;
    Row extra = {int64_t{50}, std::string("x"), int64_t{1}};
    s = co_await cn->Insert(&*txn, "accounts", extra);
    if (!s.ok()) co_return s;
    co_return co_await cn->Abort(&*txn);
  };
  ASSERT_TRUE(RunTask(work(&cn)).ok());
  EXPECT_EQ(std::get<int64_t>((**GetAccount(cn, 1))[2]), 100);
  EXPECT_FALSE(GetAccount(cn, 50)->has_value());
}

TEST_F(ClusterTest, SnapshotIsolationAcrossConcurrentTxns) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  ASSERT_TRUE(InsertAccount(cn, 1, "a", 100).ok());

  // Reader opens a snapshot, then a writer updates and commits; the reader
  // must still see the old value.
  auto scenario = [](CoordinatorNode* cn, int64_t* seen) -> sim::Task<void> {
    auto reader = co_await cn->Begin();
    EXPECT_TRUE(reader.ok());
    auto writer = co_await cn->Begin();
    EXPECT_TRUE(writer.ok());
    Row updated = {int64_t{1}, std::string("a"), int64_t{500}};
    Status s = co_await cn->Update(&*writer, "accounts", updated);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE((co_await cn->Commit(&*writer)).ok());
    Row key = {int64_t{1}};
    auto row = co_await cn->Get(&*reader, "accounts", key);
    EXPECT_TRUE(row.ok());
    *seen = std::get<int64_t>((**row)[2]);
  };
  int64_t seen = -1;
  sim_.Spawn(scenario(&cluster_->cn(0), &seen));
  sim_.RunFor(5 * kSecond);
  EXPECT_EQ(seen, 100);
  // A fresh transaction sees the new value.
  EXPECT_EQ(std::get<int64_t>((**GetAccount(cn, 1))[2]), 500);
}

TEST_F(ClusterTest, WriteConflictAbortsSecondWriter) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  ASSERT_TRUE(InsertAccount(cn, 1, "a", 100).ok());

  Status second_status = Status::OK();
  auto scenario = [](CoordinatorNode* cn, Status* out) -> sim::Task<void> {
    auto t1 = co_await cn->Begin();
    auto t2 = co_await cn->Begin();
    EXPECT_TRUE(t1.ok() && t2.ok());
    Row row1 = {int64_t{1}, std::string("a"), int64_t{111}};
    Row row2 = {int64_t{1}, std::string("a"), int64_t{222}};
    EXPECT_TRUE((co_await cn->Update(&*t1, "accounts", row1)).ok());
    EXPECT_TRUE((co_await cn->Commit(&*t1)).ok());
    // t2's snapshot predates t1's commit: first-committer-wins aborts it.
    // With the pipelined write buffer (the default) the conflict surfaces
    // at the commit flush barrier; with batching off, at the statement.
    Status s = co_await cn->Update(&*t2, "accounts", row2);
    if (s.ok()) s = co_await cn->Commit(&*t2);
    *out = s;
    if (!s.ok()) (void)co_await cn->Abort(&*t2);
  };
  sim_.Spawn(scenario(&cn, &second_status));
  sim_.RunFor(5 * kSecond);
  EXPECT_EQ(second_status.code(), StatusCode::kAborted);
  EXPECT_EQ(std::get<int64_t>((**GetAccount(cn, 1))[2]), 111);
}

TEST_F(ClusterTest, RorReadsServedFromReplicas) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  for (int64_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(InsertAccount(cn, id, "o", id).ok());
  }
  // Let replication and the RCP catch up past the inserts.
  cluster_->WaitForRcp();
  sim_.RunFor(500 * kMillisecond);

  auto row = GetAccount(cn, 5, /*read_only=*/true);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ(std::get<int64_t>((**row)[2]), 5);
  EXPECT_GT(cn.metrics().Get("cn.replica_reads"), 0);
  EXPECT_GT(cn.metrics().Get("cn.ror_txns"), 0);
}

TEST_F(ClusterTest, RcpMonotonicAndRorConsistent) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  auto& remote_cn = cluster_->cn(2);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  ASSERT_TRUE(InsertAccount(cn, 1, "a", 0).ok());
  cluster_->WaitForRcp();
  // Let the RCP move past the insert's commit timestamp on every CN.
  sim_.RunFor(300 * kMillisecond);

  Timestamp last_rcp = 0;
  int64_t last_balance = -1;
  for (int round = 0; round < 20; ++round) {
    // Keep writing; balance only increases.
    auto update = [](CoordinatorNode* cn, int64_t v) -> sim::Task<Status> {
      auto txn = co_await cn->Begin();
      if (!txn.ok()) co_return txn.status();
      Row updated = {int64_t{1}, std::string("a"), v};
      Status s = co_await cn->Update(&*txn, "accounts", updated);
      if (!s.ok()) co_return s;
      co_return co_await cn->Commit(&*txn);
    };
    ASSERT_TRUE(RunTask(update(&cn, (round + 1) * 10)).ok());
    sim_.RunFor(30 * kMillisecond);

    // ROR reads from a remote CN must be monotonic in freshness.
    EXPECT_GE(remote_cn.rcp(), last_rcp);
    last_rcp = remote_cn.rcp();
    auto row = GetAccount(remote_cn, 1, /*read_only=*/true);
    ASSERT_TRUE(row.ok());
    ASSERT_TRUE(row->has_value());
    const int64_t balance = std::get<int64_t>((**row)[2]);
    EXPECT_GE(balance, last_balance);
    last_balance = balance;
  }
  // The final read is reasonably fresh (within a few rounds).
  EXPECT_GE(last_balance, 120);
}

TEST_F(ClusterTest, ReplicaCrashFailsOverToPrimary) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  ASSERT_TRUE(InsertAccount(cn, 1, "a", 42).ok());
  cluster_->WaitForRcp();
  sim_.RunFor(200 * kMillisecond);

  // Kill every replica so ROR reads must fall back.
  for (ShardId s = 0; s < cluster_->num_shards(); ++s) {
    for (uint32_t r = 0; r < 2; ++r) {
      cluster_->network().SetNodeUp(cluster_->ReplicaNodeId(s, r), false);
    }
  }
  auto row = GetAccount(cn, 1, /*read_only=*/true);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ(std::get<int64_t>((**row)[2]), 42);
}

TEST_F(ClusterTest, DdlVisibleOnRorAfterReplay) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  ASSERT_TRUE(InsertAccount(cn, 1, "a", 7).ok());
  // Immediately after DDL the RCP is behind the DDL timestamp: ROR reads
  // fall back to the primary but still succeed.
  auto row = GetAccount(cn, 1, /*read_only=*/true);
  ASSERT_TRUE(row.ok());
  // After replay catches up, replica reads serve the table.
  cluster_->WaitForRcp();
  sim_.RunFor(1 * kSecond);
  EXPECT_GT(cn.rcp(), cn.catalog().MaxDdlTimestamp());
  // Reads of remote-mastered shards now come from replicas (locally
  // mastered shards legitimately prefer the local primary).
  const int64_t replica_reads_before = cn.metrics().Get("cn.replica_reads");
  for (int64_t id = 1; id <= 20; ++id) {
    auto r = GetAccount(cn, id, /*read_only=*/true);
    ASSERT_TRUE(r.ok());
  }
  EXPECT_GT(cn.metrics().Get("cn.replica_reads"), replica_reads_before);
}

TEST_F(ClusterTest, SecondCnSeesDdlAndData) {
  Build(ThreeCityOptions());
  auto& cn0 = cluster_->cn(0);
  auto& cn1 = cluster_->cn(1);
  ASSERT_TRUE(CreateAccounts(cn0).ok());
  ASSERT_TRUE(InsertAccount(cn0, 1, "a", 5).ok());
  ASSERT_NE(cn1.catalog().FindTable("accounts"), nullptr);
  auto row = GetAccount(cn1, 1);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->has_value());
}

TEST_F(ClusterTest, ScanMergesAcrossShards) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  for (int64_t id = 1; id <= 30; ++id) {
    ASSERT_TRUE(InsertAccount(cn, id, "o", id).ok());
  }
  auto work = [](CoordinatorNode* cn) -> sim::Task<StatusOr<std::vector<Row>>> {
    auto txn = co_await cn->Begin();
    if (!txn.ok()) co_return txn.status();
    co_return co_await cn->ScanRange(&*txn, "accounts", "", "", 1000);
  };
  auto rows = RunTask(work(&cn));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 30u);
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ(std::get<int64_t>((*rows)[i][0]), static_cast<int64_t>(i + 1));
  }
}

TEST_F(ClusterTest, LiveModeTransitionUnderTraffic) {
  ClusterOptions options = ThreeCityOptions();
  options.initial_mode = TimestampMode::kGtm;
  Build(options);
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(CreateAccounts(cn).ok());
  ASSERT_TRUE(InsertAccount(cn, 1, "a", 0).ok());

  int commits = 0, aborts = 0;
  bool done = false;
  auto writer = [](ClusterTest* test, CoordinatorNode* cn, int* commits,
                   int* aborts, bool* done) -> sim::Task<void> {
    int64_t v = 0;
    while (!*done) {
      co_await test->sim_.Sleep(10 * kMillisecond);
      auto txn = co_await cn->Begin();
      if (!txn.ok()) {
        ++*aborts;
        continue;
      }
      Row updated = {int64_t{1}, std::string("a"), ++v};
      Status s = co_await cn->Update(&*txn, "accounts", updated);
      if (s.ok()) s = co_await cn->Commit(&*txn);
      if (s.ok()) {
        ++*commits;
      } else {
        ++*aborts;
        (void)co_await cn->Abort(&*txn);
      }
    }
  };
  auto control = [](ClusterTest* test, Cluster* cluster,
                    bool* done) -> sim::Task<void> {
    co_await test->sim_.Sleep(100 * kMillisecond);
    auto up = co_await cluster->transition().SwitchToGclock();
    EXPECT_TRUE(up.ok());
    co_await test->sim_.Sleep(200 * kMillisecond);
    auto down = co_await cluster->transition().SwitchToGtm();
    EXPECT_TRUE(down.ok());
    co_await test->sim_.Sleep(100 * kMillisecond);
    *done = true;
  };
  sim_.Spawn(writer(this, &cn, &commits, &aborts, &done));
  sim_.Spawn(control(this, cluster_.get(), &done));
  sim_.RunFor(10 * kSecond);
  EXPECT_GT(commits, 20);
  // The switch may abort at most a handful of in-flight GTM transactions.
  EXPECT_LE(aborts, 3);
  EXPECT_EQ(cluster_->gtm().mode(), TimestampMode::kGtm);
}

}  // namespace
}  // namespace globaldb
