// Pipelined write batching on the CN (DESIGN.md §10): DoWrite enqueues
// into per-shard buffers and ships kDnWriteBatch RPCs instead of one
// kDnWrite round trip per statement. These tests pin down read-your-writes
// barriers, threshold-triggered pipelining, atomic commit of buffered
// writes, entry-failure abort with full lock release, and the replicated-
// table fan-out on both the batched and the eager path.

#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace globaldb {
namespace {

TableSchema AccountsSchema() {
  TableSchema s;
  s.name = "accounts";
  s.columns = {{"id", ColumnType::kInt64},
               {"owner", ColumnType::kString},
               {"balance", ColumnType::kInt64}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

TableSchema RatesSchema() {
  TableSchema s;
  s.name = "rates";
  s.columns = {{"id", ColumnType::kInt64}, {"bps", ColumnType::kInt64}};
  s.key_columns = {0};
  s.distribution_column = 0;
  s.distribution = DistributionKind::kReplicated;
  return s;
}

class WriteBatchTest : public ::testing::Test {
 public:  // accessed from coroutine lambdas in tests
  WriteBatchTest() : sim_(33) {}

  void Build(ClusterOptions options) {
    cluster_ = std::make_unique<Cluster>(&sim_, std::move(options));
    cluster_->Start();
  }

  static ClusterOptions ThreeCityOptions() {
    ClusterOptions o;
    o.topology = sim::Topology::ThreeCity();
    o.network.nagle_enabled = false;
    o.num_shards = 6;
    o.replicas_per_shard = 2;
    o.initial_mode = TimestampMode::kGclock;
    return o;
  }

  template <typename T>
  T RunTask(sim::Task<T> task) {
    std::optional<T> result;
    auto wrapper = [](sim::Task<T> t, std::optional<T>* out) -> sim::Task<void> {
      *out = co_await std::move(t);
    };
    sim_.Spawn(wrapper(std::move(task), &result));
    while (!result.has_value()) {
      sim_.RunFor(1 * kMillisecond);
    }
    return std::move(*result);
  }

  /// Sum of a metric across every primary data node.
  int64_t DnTotal(const std::string& name) {
    int64_t total = 0;
    for (size_t s = 0; s < cluster_->num_shards(); ++s) {
      total += cluster_->data_node(s).metrics().Get(name);
    }
    return total;
  }

  size_t TotalLocksHeld() {
    size_t total = 0;
    for (size_t s = 0; s < cluster_->num_shards(); ++s) {
      total += cluster_->data_node(s).locks().TotalHeld();
    }
    return total;
  }

  /// First `n` account ids (starting at 1) that route to `shard`.
  std::vector<int64_t> IdsOnShard(ShardId shard, int n) {
    TableSchema schema = AccountsSchema();
    std::vector<int64_t> ids;
    for (int64_t id = 1; ids.size() < static_cast<size_t>(n); ++id) {
      Row row = {id, std::string("o"), int64_t{0}};
      if (RouteRowToShard(schema, row, cluster_->num_shards()) == shard) {
        ids.push_back(id);
      }
    }
    return ids;
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

// A transaction must read its own buffered (not yet flushed) writes: Get
// and ScanRange force a flush barrier first, and the flushed provisional
// versions are visible to the transaction's own snapshot.
TEST_F(WriteBatchTest, ReadYourBufferedWrites) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  auto work = [this, &cn]() -> sim::Task<Status> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    for (int64_t id = 1; id <= 6; ++id) {
      Row row = {id, std::string("owner"), id * 100};
      Status s = co_await cn.Insert(&*txn, "accounts", row);
      if (!s.ok()) co_return s;
    }
    // Point read of a buffered insert: must flush, then see it.
    Row key3 = {int64_t{3}};
    auto got = co_await cn.Get(&*txn, "accounts", key3);
    if (!got.ok()) co_return got.status();
    EXPECT_TRUE(got->has_value());
    if (got->has_value()) {
      EXPECT_EQ(std::get<int64_t>((**got)[2]), 300);
    }

    // Update then read back through another barrier.
    Row row1 = {int64_t{1}, std::string("owner"), int64_t{777}};
    Status s = co_await cn.Update(&*txn, "accounts", row1);
    if (!s.ok()) co_return s;
    Row key1 = {int64_t{1}};
    got = co_await cn.Get(&*txn, "accounts", key1);
    if (!got.ok()) co_return got.status();
    EXPECT_TRUE(got->has_value());
    if (got->has_value()) {
      EXPECT_EQ(std::get<int64_t>((**got)[2]), 777);
    }

    // Scan overlapping the buffer also forces the barrier.
    auto rows = co_await cn.ScanRange(&*txn, "accounts", "", "", 1000);
    if (!rows.ok()) co_return rows.status();
    EXPECT_EQ(rows->size(), 6u);
    co_return co_await cn.Commit(&*txn);
  };
  ASSERT_TRUE(RunTask(work()).ok());

  // Everything went through the batch path; the barriers were counted.
  EXPECT_EQ(DnTotal("dn.writes"), 0);
  EXPECT_EQ(DnTotal("dn.batched_writes"), 7);  // 6 inserts + 1 update
  EXPECT_GE(cn.metrics().Get("cn.flush_barriers"), 2);
  EXPECT_EQ(TotalLocksHeld(), 0u);
}

// With no intervening reads the whole write set rides in per-shard batches
// flushed at commit, and a fresh transaction sees all of it.
TEST_F(WriteBatchTest, CommitFlushesPendingBatchesAtomically) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  auto writer = [this, &cn]() -> sim::Task<Status> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    for (int64_t id = 1; id <= 10; ++id) {
      Row row = {id, std::string("owner"), id};
      Status s = co_await cn.Insert(&*txn, "accounts", row);
      if (!s.ok()) co_return s;
    }
    co_return co_await cn.Commit(&*txn);
  };
  ASSERT_TRUE(RunTask(writer()).ok());

  EXPECT_EQ(DnTotal("dn.writes"), 0);
  EXPECT_EQ(DnTotal("dn.batched_writes"), 10);
  // One batch RPC per touched shard, not one per row.
  const int64_t batches = cn.metrics().Get("cn.write_batches");
  EXPECT_GE(batches, 1);
  EXPECT_LE(batches, 6);
  EXPECT_EQ(DnTotal("dn.write_batches"), batches);

  auto reader = [this, &cn]() -> sim::Task<StatusOr<std::vector<Row>>> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    co_return co_await cn.ScanRange(&*txn, "accounts", "", "", 1000);
  };
  auto rows = RunTask(reader());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

// Filling a shard's buffer past write_batch_max_entries starts the flush
// while the transaction keeps issuing statements: locks are already held
// on the data node before commit is ever called (the pipelining).
TEST_F(WriteBatchTest, ThresholdFlushOverlapsExecution) {
  ClusterOptions options = ThreeCityOptions();
  options.coordinator.write_batch_max_entries = 2;
  Build(options);
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  const ShardId shard = 0;
  std::vector<int64_t> ids = IdsOnShard(shard, 4);
  auto work = [this, &cn, shard, ids]() -> sim::Task<Status> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    for (int64_t id : ids) {
      Row row = {id, std::string("owner"), id};
      Status s = co_await cn.Insert(&*txn, "accounts", row);
      if (!s.ok()) co_return s;
    }
    // Two threshold flushes (4 entries / max 2) are in flight or landed;
    // give them time to arrive and observe the pre-commit locks.
    co_await sim_.Sleep(300 * kMillisecond);
    EXPECT_EQ(cluster_->data_node(shard).locks().TotalHeld(), 4u);
    co_return co_await cn.Commit(&*txn);
  };
  ASSERT_TRUE(RunTask(work()).ok());
  EXPECT_GE(cn.metrics().Get("cn.write_batches"), 2);
  EXPECT_EQ(TotalLocksHeld(), 0u);
}

// Two writes of the same key split across threshold batches must apply in
// statement order. At most one batch per shard is ever on the wire — the
// second flush chains behind the first — so the later value wins regardless
// of network jitter (the sim network has no per-pair FIFO guarantee).
TEST_F(WriteBatchTest, SameKeyAcrossBatchesAppliesInStatementOrder) {
  ClusterOptions options = ThreeCityOptions();
  options.coordinator.write_batch_max_entries = 2;
  Build(options);
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  const ShardId shard = 0;
  std::vector<int64_t> ids = IdsOnShard(shard, 2);
  auto work = [this, &cn, ids]() -> sim::Task<Status> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    // Batch 1: two inserts hit the threshold and the flush departs.
    for (int64_t id : ids) {
      Row row = {id, std::string("owner"), int64_t{1}};
      Status s = co_await cn.Insert(&*txn, "accounts", row);
      if (!s.ok()) co_return s;
    }
    // Batch 2 rewrites the same keys while batch 1 is still on the wire:
    // it must be deferred and chained, never overtake.
    for (int64_t id : ids) {
      Row row = {id, std::string("owner"), int64_t{2}};
      Status s = co_await cn.Update(&*txn, "accounts", row);
      if (!s.ok()) co_return s;
    }
    co_return co_await cn.Commit(&*txn);
  };
  ASSERT_TRUE(RunTask(work()).ok());
  EXPECT_GE(cn.metrics().Get("cn.write_batches"), 2);

  for (int64_t id : ids) {
    auto reader = [this, &cn,
                   id]() -> sim::Task<StatusOr<std::optional<Row>>> {
      auto txn = co_await cn.Begin();
      if (!txn.ok()) co_return txn.status();
      Row key = {id};
      co_return co_await cn.Get(&*txn, "accounts", key);
    };
    auto row = RunTask(reader());
    ASSERT_TRUE(row.ok());
    ASSERT_TRUE(row->has_value());
    EXPECT_EQ(std::get<int64_t>((**row)[2]), 2);
  }
  EXPECT_EQ(TotalLocksHeld(), 0u);
}

// A failing entry (duplicate insert) aborts the transaction at the next
// barrier — here the commit flush — and every lock it took anywhere in the
// cluster is released; its provisional writes are rolled back.
TEST_F(WriteBatchTest, FailedEntryAbortsAndReleasesAllLocks) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  auto insert_one = [this, &cn](int64_t id) -> Status {
    auto work = [&cn, id]() -> sim::Task<Status> {
      auto txn = co_await cn.Begin();
      if (!txn.ok()) co_return txn.status();
      Row row = {id, std::string("owner"), id};
      Status s = co_await cn.Insert(&*txn, "accounts", row);
      if (!s.ok()) {
        (void)co_await cn.Abort(&*txn);
        co_return s;
      }
      co_return co_await cn.Commit(&*txn);
    };
    return RunTask(work());
  };
  ASSERT_TRUE(insert_one(1).ok());

  auto doomed = [this, &cn]() -> sim::Task<Status> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    Row fresh = {int64_t{500}, std::string("owner"), int64_t{1}};
    Status s = co_await cn.Insert(&*txn, "accounts", fresh);
    if (!s.ok()) co_return s;
    Row dup = {int64_t{1}, std::string("owner"), int64_t{2}};
    s = co_await cn.Insert(&*txn, "accounts", dup);
    if (!s.ok()) co_return s;
    co_return co_await cn.Commit(&*txn);
  };
  Status commit = RunTask(doomed());
  EXPECT_FALSE(commit.ok());
  EXPECT_GE(cn.metrics().Get("cn.write_batch_entry_failures"), 1);

  sim_.RunFor(500 * kMillisecond);
  EXPECT_EQ(TotalLocksHeld(), 0u);

  // The fresh row must not have leaked out of the aborted transaction,
  // and its key must be writable again (locks really released).
  auto get500 = [this, &cn]() -> sim::Task<StatusOr<std::optional<Row>>> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    Row key = {int64_t{500}};
    co_return co_await cn.Get(&*txn, "accounts", key);
  };
  auto row = RunTask(get500());
  ASSERT_TRUE(row.ok());
  EXPECT_FALSE(row->has_value());
  EXPECT_TRUE(insert_one(500).ok());
}

// Replicated tables fan out each write to every shard — batched through
// per-shard buffers by default, via one parallel CallAll on the eager path
// — and reads are served by the CN's local primary afterwards. Shared body
// for the two variants below (one cluster per test: a simulator cannot
// host a second cluster after the first is torn down).
class ReplicatedFanOutTest : public WriteBatchTest {
 public:
  void RunScenario(bool batching) {
    ClusterOptions options = ThreeCityOptions();
    options.coordinator.enable_write_batching = batching;
    Build(options);
    auto& cn = cluster_->cn(0);
    ASSERT_TRUE(RunTask(cn.CreateTable(RatesSchema())).ok());

    auto writer = [this, &cn]() -> sim::Task<Status> {
      auto txn = co_await cn.Begin();
      if (!txn.ok()) co_return txn.status();
      Row row = {int64_t{7}, int64_t{125}};
      Status s = co_await cn.Insert(&*txn, "rates", row);
      if (!s.ok()) co_return s;
      co_return co_await cn.Commit(&*txn);
    };
    ASSERT_TRUE(RunTask(writer()).ok()) << "batching=" << batching;

    // One copy applied on every shard, through the expected path.
    if (batching) {
      EXPECT_EQ(DnTotal("dn.batched_writes"), 6);
      EXPECT_EQ(DnTotal("dn.writes"), 0);
    } else {
      EXPECT_EQ(DnTotal("dn.writes"), 6);
      EXPECT_EQ(DnTotal("dn.batched_writes"), 0);
    }

    // Every CN (each in a different region) reads its local copy.
    for (size_t c = 0; c < cluster_->num_cns(); ++c) {
      auto& reader_cn = cluster_->cn(c);
      auto reader = [this,
                     &reader_cn]() -> sim::Task<StatusOr<std::optional<Row>>> {
        auto txn = co_await reader_cn.Begin();
        if (!txn.ok()) co_return txn.status();
        Row key = {int64_t{7}};
        co_return co_await reader_cn.Get(&*txn, "rates", key);
      };
      auto row = RunTask(reader());
      ASSERT_TRUE(row.ok()) << "batching=" << batching << " cn=" << c;
      ASSERT_TRUE(row->has_value()) << "batching=" << batching << " cn=" << c;
      EXPECT_EQ(std::get<int64_t>((**row)[1]), 125);
    }
    EXPECT_EQ(TotalLocksHeld(), 0u);
  }
};

TEST_F(ReplicatedFanOutTest, Batched) { RunScenario(true); }

TEST_F(ReplicatedFanOutTest, Eager) { RunScenario(false); }

}  // namespace
}  // namespace globaldb
