// Regression: a ROR read that parks on a pending-commit transaction
// (WaitResolved) while a snapshot install rebuilds the replica's store must
// re-fetch the table on resume. The install frees every MvccTable, and the
// resolved-signal broadcast fires right after it — a reader that cached the
// table pointer across the wait dereferenced freed memory (seen as a
// BTree::Find segfault in the durability soak after a promotion forced the
// survivors onto reset snapshots).

#include <gtest/gtest.h>

#include "src/cluster/messages.h"
#include "src/cluster/replica_node.h"
#include "src/replication/messages.h"
#include "src/rpc/rpc_client.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/storage/snapshot.h"

namespace globaldb {
namespace {

constexpr NodeId kClient = 1;
constexpr NodeId kReplica = 2;

sim::NetworkOptions NetOptions() {
  sim::NetworkOptions o;
  o.nagle_enabled = false;
  o.jitter_fraction = 0;
  o.rpc_timeout = 500 * kMillisecond;
  return o;
}

ReplSnapshotRequest MakeSnapshot(const ShardStore& store, Lsn checkpoint_lsn,
                                 Timestamp max_commit_ts, bool reset) {
  Catalog catalog;
  ReplSnapshotRequest snap;
  snap.shard = 0;
  snap.checkpoint_lsn = checkpoint_lsn;
  snap.max_commit_ts = max_commit_ts;
  snap.reset = reset;
  snap.catalog_image = EncodeCatalog(catalog);
  snap.store_image = EncodeShardStore(store);
  return snap;
}

TEST(RorSnapshotRaceTest, ParkedReadSurvivesSnapshotInstall) {
  sim::Simulator sim(23);
  sim::Network net(&sim, sim::Topology::Uniform(2, 10 * kMillisecond),
                   NetOptions());
  net.RegisterNode(kClient, 0);
  net.RegisterNode(kReplica, 0);
  ReplicaNode replica(&sim, &net, kReplica, /*shard=*/0);
  rpc::RpcClient client(&net, kClient);

  // Image #1: key "k" written by txn 5, still provisional (captured
  // mid-2PC). A reader at any snapshot must wait for its resolution.
  bool installed_first = false;
  auto install_pending = [&]() -> sim::Task<void> {
    ShardStore source(0);
    MvccTable* t = source.GetOrCreateTable(1);
    t->ApplyInsert("k", "v-pending", 5);
    auto reply = co_await client.Call(
        kReplica, kReplSnapshot, MakeSnapshot(source, 3, 0, /*reset=*/false));
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) co_return;
    EXPECT_TRUE(reply->accepted);
    installed_first = true;
  };
  sim.Spawn(install_pending());
  sim.RunFor(100 * kMillisecond);
  ASSERT_TRUE(installed_first);

  // The read parks on WaitResolved(5).
  bool read_done = false;
  auto reader = [&]() -> sim::Task<void> {
    ReadRequest request;
    request.table = 1;
    request.key = "k";
    request.snapshot = 100;
    auto reply = co_await client.Call(kReplica, kRorRead, request);
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) co_return;
    // Resumed by the install's resolved-signal broadcast: the answer must
    // come from the freshly installed image, through a re-fetched table.
    EXPECT_TRUE(reply->found);
    EXPECT_EQ(reply->value, "v-final");
    read_done = true;
  };
  sim.Spawn(reader());
  sim.RunFor(100 * kMillisecond);
  ASSERT_FALSE(read_done);
  ASSERT_EQ(replica.metrics().Get("ror.pending_waits"), 1);

  // Image #2 (reset, as after a promotion): the whole store is rebuilt —
  // every MvccTable from image #1 is freed — with txn 5 committed at ts 10.
  // Installing it resolves the parked reader.
  auto install_final = [&]() -> sim::Task<void> {
    ShardStore source(0);
    MvccTable* t = source.GetOrCreateTable(1);
    t->ApplyInsert("k", "v-final", 5);
    t->CommitTxn(5, 10);
    auto reply = co_await client.Call(
        kReplica, kReplSnapshot, MakeSnapshot(source, 9, 10, /*reset=*/true));
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) co_return;
    EXPECT_TRUE(reply->accepted);
  };
  sim.Spawn(install_final());
  sim.RunFor(500 * kMillisecond);
  EXPECT_TRUE(read_done);
}

// Same property for the batched scan handler (DESIGN.md §14): a
// kRorScanBatch chunk that parks on a pending-commit transaction holds no
// cursor into the store — after the install frees every MvccTable, the
// whole chunk is rebuilt from the request alone. A server-side iterator
// kept across the wait would dangle (caught under ASan).
TEST(RorSnapshotRaceTest, ParkedScanBatchChunkSurvivesSnapshotInstall) {
  sim::Simulator sim(29);
  sim::Network net(&sim, sim::Topology::Uniform(2, 10 * kMillisecond),
                   NetOptions());
  net.RegisterNode(kClient, 0);
  net.RegisterNode(kReplica, 0);
  ReplicaNode replica(&sim, &net, kReplica, /*shard=*/0);
  rpc::RpcClient client(&net, kClient);

  // Image #1: "a" committed, "k" provisional by txn 5 — the scan must park.
  bool installed_first = false;
  auto install_pending = [&]() -> sim::Task<void> {
    ShardStore source(0);
    MvccTable* t = source.GetOrCreateTable(1);
    t->ApplyInsert("a", "v-old", 4);
    t->CommitTxn(4, 2);
    t->ApplyInsert("k", "v-pending", 5);
    auto reply = co_await client.Call(
        kReplica, kReplSnapshot, MakeSnapshot(source, 3, 2, /*reset=*/false));
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) co_return;
    EXPECT_TRUE(reply->accepted);
    installed_first = true;
  };
  sim.Spawn(install_pending());
  sim.RunFor(100 * kMillisecond);
  ASSERT_TRUE(installed_first);

  bool scan_done = false;
  auto scanner = [&]() -> sim::Task<void> {
    ScanBatchRequest request;
    request.snapshot = 100;
    ScanBatchRequest::Range range;
    range.table = 1;
    request.ranges.push_back(range);  // unbounded: whole table
    auto reply = co_await client.Call(kReplica, kRorScanBatch, request);
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) co_return;
    // Resumed by the install's resolved-signal broadcast: the chunk was
    // re-executed against the freshly installed image end to end.
    EXPECT_EQ(reply->results.size(), 1u);
    if (reply->results.size() != 1u) co_return;
    EXPECT_EQ(reply->results[0].rows.size(), 2u);
    if (reply->results[0].rows.size() != 2u) co_return;
    EXPECT_EQ(reply->results[0].rows[0].first, "k");
    EXPECT_EQ(reply->results[0].rows[0].second, "v-final");
    EXPECT_EQ(reply->results[0].rows[1].first, "z");
    EXPECT_EQ(reply->results[0].rows[1].second, "v-new");
    scan_done = true;
  };
  sim.Spawn(scanner());
  sim.RunFor(100 * kMillisecond);
  ASSERT_FALSE(scan_done);
  ASSERT_EQ(replica.metrics().Get("ror.pending_waits"), 1);

  // Image #2 (reset): the store from image #1 is freed wholesale. "a" is
  // gone, txn 5 committed at ts 10, and a new row "z" exists — the
  // re-executed chunk must reflect exactly this image.
  auto install_final = [&]() -> sim::Task<void> {
    ShardStore source(0);
    MvccTable* t = source.GetOrCreateTable(1);
    t->ApplyInsert("k", "v-final", 5);
    t->CommitTxn(5, 10);
    t->ApplyInsert("z", "v-new", 6);
    t->CommitTxn(6, 11);
    auto reply = co_await client.Call(
        kReplica, kReplSnapshot, MakeSnapshot(source, 9, 11, /*reset=*/true));
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) co_return;
    EXPECT_TRUE(reply->accepted);
  };
  sim.Spawn(install_final());
  sim.RunFor(500 * kMillisecond);
  EXPECT_TRUE(scan_done);
}

}  // namespace
}  // namespace globaldb
