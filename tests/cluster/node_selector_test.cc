#include "src/cluster/node_selector.h"

#include <gtest/gtest.h>

namespace globaldb {
namespace {

class NodeSelectorTest : public ::testing::Test {
 protected:
  NodeSelectorTest() {
    // Shard 0: local cheap replica (10), remote replica (11), busy local
    // replica (12).
    selector_.AddReplica(10, 0, 0, 100 * kMicrosecond);
    selector_.AddReplica(11, 0, 1, 15 * kMillisecond);
    selector_.AddReplica(12, 0, 0, 100 * kMicrosecond);
  }
  NodeSelector selector_;
};

TEST_F(NodeSelectorTest, PicksCheapestFreshReplica) {
  selector_.UpdateStatus(10, 1000, 0);
  selector_.UpdateStatus(11, 2000, 0);
  selector_.UpdateStatus(12, 1500, 5 * kMillisecond);
  auto pick = selector_.Pick(0, 900);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 10u);  // local, idle, fresh enough
}

TEST_F(NodeSelectorTest, FreshnessConstraintOverridesCost) {
  selector_.UpdateStatus(10, 1000, 0);  // cheap but stale
  selector_.UpdateStatus(11, 2000, 0);  // remote but fresh
  auto pick = selector_.Pick(0, 1500);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 11u);
}

TEST_F(NodeSelectorTest, QueueDelayShiftsLoad) {
  // Both local replicas fresh; one has a big CPU backlog.
  selector_.UpdateStatus(10, 1000, 20 * kMillisecond);
  selector_.UpdateStatus(12, 1000, 0);
  auto pick = selector_.Pick(0, 500);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 12u);
}

TEST_F(NodeSelectorTest, FailedNodesExcludedUntilRefresh) {
  selector_.UpdateStatus(10, 1000, 0);
  selector_.UpdateStatus(12, 1000, 1 * kMillisecond);
  selector_.MarkFailed(10);
  auto pick = selector_.Pick(0, 500);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 12u);
  // A status refresh revives it.
  selector_.UpdateStatus(10, 1100, 0);
  pick = selector_.Pick(0, 500);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 10u);
}

TEST_F(NodeSelectorTest, NoQualifyingReplicaIsNotFound) {
  selector_.UpdateStatus(10, 100, 0);
  selector_.UpdateStatus(11, 200, 0);
  selector_.UpdateStatus(12, 150, 0);
  EXPECT_FALSE(selector_.Pick(0, 5000).ok());
  EXPECT_FALSE(selector_.Pick(99, 0).ok());  // unknown shard
}

TEST_F(NodeSelectorTest, SkylineIsParetoFront) {
  selector_.UpdateStatus(10, 1000, 0);                  // cheap, stale
  selector_.UpdateStatus(11, 3000, 0);                  // expensive, freshest
  selector_.UpdateStatus(12, 900, 1 * kMillisecond);    // dominated by 10
  auto skyline = selector_.Skyline(0);
  ASSERT_EQ(skyline.size(), 2u);
  EXPECT_EQ(skyline[0].node, 10u);
  EXPECT_EQ(skyline[1].node, 11u);
}

TEST_F(NodeSelectorTest, SkylineExcludesUnhealthy) {
  selector_.UpdateStatus(10, 1000, 0);
  selector_.UpdateStatus(11, 3000, 0);
  selector_.MarkFailed(11);
  auto skyline = selector_.Skyline(0);
  ASSERT_EQ(skyline.size(), 1u);
  EXPECT_EQ(skyline[0].node, 10u);
}

TEST_F(NodeSelectorTest, StatusTimestampsNeverRegress) {
  selector_.UpdateStatus(10, 1000, 0);
  selector_.UpdateStatus(10, 500, 0);  // stale update arrives late
  EXPECT_EQ(selector_.Get(10)->max_commit_ts, 1000u);
}

}  // namespace
}  // namespace globaldb
