// Reproduces the paper's Fig. 4 example: the Replica Consistency Point of
// three replicated shards is the minimum over shards of each replica's
// maximum replayed commit timestamp, and transactions above it stay
// invisible even when some of their redo has arrived.

#include <gtest/gtest.h>

#include "src/cluster/messages.h"
#include "src/cluster/rcp_service.h"
#include "src/replication/log_shipper.h"
#include "src/replication/replica_applier.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/cpu.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace globaldb {
namespace {

// Timestamps from the figure.
constexpr Timestamp ts1 = 101, ts2 = 102, ts3 = 103, ts4 = 104, ts5 = 105;

sim::Task<StatusOr<RorStatusReply>> ReplicaStatus(ReplicaApplier* applier) {
  RorStatusReply reply;
  reply.max_commit_ts = applier->max_commit_ts();
  reply.applied_lsn = applier->applied_lsn();
  co_return reply;
}

struct Shard {
  LogStream log;
  ShardStore store;
  Catalog catalog;
  sim::CpuScheduler cpu;
  std::unique_ptr<ReplicaApplier> applier;
  std::unique_ptr<LogShipper> shipper;
  std::unique_ptr<rpc::RpcServer> server;

  Shard(sim::Simulator* sim, sim::Network* net, NodeId primary,
        NodeId replica, ShardId shard)
      : store(shard), cpu(sim, 2) {
    net->RegisterNode(primary, 0);
    net->RegisterNode(replica, 0);
    applier = std::make_unique<ReplicaApplier>(sim, net, replica, shard,
                                               &store, &catalog, &cpu);
    shipper = std::make_unique<LogShipper>(sim, net, primary, shard, &log,
                                           std::vector<NodeId>{replica});
    shipper->Start();
    // Serve the status RPC the RCP collector polls (normally registered by
    // ReplicaNode; this test wires the applier directly).
    server = std::make_unique<rpc::RpcServer>(net, replica);
    ReplicaApplier* a = applier.get();
    server->Handle(kRorStatus, [a](NodeId, rpc::EmptyMessage) {
      return ReplicaStatus(a);
    });
  }
};

TEST(RcpPaperExampleTest, Figure4) {
  sim::Simulator sim(55);
  sim::NetworkOptions net_options;
  net_options.nagle_enabled = false;
  sim::Network net(&sim, sim::Topology::SingleRegion(), net_options);

  // Three shards, one replica each. Node ids: primaries 10/11/12,
  // replicas 20/21/22, observer CN 1.
  net.RegisterNode(1, 0);
  Shard shard1(&sim, &net, 10, 20, 0);
  Shard shard2(&sim, &net, 11, 21, 1);
  Shard shard3(&sim, &net, 12, 22, 2);

  // Redo streams as drawn in Fig. 4 (commit timestamps in stream order):
  //   Replica 1: Trx2(ts2), Trx1(ts1), Trx4(ts4)   -> max ts4
  //   Replica 2: Trx2(ts2), Trx3(ts3), Trx5(ts5)   -> max ts5
  //   Replica 3: Trx1(ts1), Trx3(ts3)              -> max ts3
  // Note Trx1's commit appears *after* Trx2's on Replica 1 although
  // ts1 < ts2 (commit records are not timestamp-ordered in the stream).
  auto put = [](Shard& s, TxnId txn, const char* key, Timestamp ts) {
    s.log.Append(RedoRecord::Insert(txn, 1, key, "v"));
    s.log.Append(RedoRecord::Commit(txn, ts));
  };
  put(shard1, 2, "b", ts2);
  put(shard1, 1, "a", ts1);
  put(shard1, 4, "d", ts4);
  put(shard2, 2, "b2", ts2);
  put(shard2, 3, "c", ts3);
  put(shard2, 5, "e", ts5);
  put(shard3, 1, "a3", ts1);
  put(shard3, 3, "c3", ts3);
  shard1.shipper->NotifyAppend();
  shard2.shipper->NotifyAppend();
  shard3.shipper->NotifyAppend();
  sim.RunFor(1 * kSecond);

  EXPECT_EQ(shard1.applier->max_commit_ts(), ts4);
  EXPECT_EQ(shard2.applier->max_commit_ts(), ts5);
  EXPECT_EQ(shard3.applier->max_commit_ts(), ts3);

  // The RCP collector computes min{ts4, ts5, ts3} = ts3.
  NodeSelector selector;
  selector.AddReplica(20, 0, 0, 0);
  selector.AddReplica(21, 1, 0, 0);
  selector.AddReplica(22, 2, 0, 0);
  RcpService rcp(&sim, &net, 1,
                 {{20, 0}, {21, 1}, {22, 2}}, {}, &selector,
                 5 * kMillisecond);
  rcp.Activate();
  sim.RunFor(100 * kMillisecond);
  rcp.Deactivate();

  EXPECT_EQ(rcp.rcp(), ts3);

  // At the RCP snapshot, Trx1/Trx2/Trx3 are visible; Trx4 and Trx5 are not
  // (Trx4 may have shards whose redo has not arrived; Trx5 may depend on
  // Trx4).
  MvccTable* t1 = shard1.store.GetTable(1);
  MvccTable* t2 = shard2.store.GetTable(1);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_TRUE(t1->Read("a", rcp.rcp()).found);   // Trx1
  EXPECT_TRUE(t1->Read("b", rcp.rcp()).found);   // Trx2
  EXPECT_TRUE(t2->Read("c", rcp.rcp()).found);   // Trx3
  EXPECT_FALSE(t1->Read("d", rcp.rcp()).found);  // Trx4 (ts4 > RCP)
  EXPECT_FALSE(t2->Read("e", rcp.rcp()).found);  // Trx5 (ts5 > RCP)

  // The RCP is monotonic: when Replica 3 replays a heartbeat at ts5, the
  // RCP advances to min{ts4, ts5, ts5} = ts4 and Trx4 becomes visible.
  shard3.log.Append(RedoRecord::Heartbeat(ts5));
  shard3.shipper->NotifyAppend();
  rcp.Activate();
  sim.RunFor(100 * kMillisecond);
  EXPECT_EQ(rcp.rcp(), ts4);
  EXPECT_TRUE(t1->Read("d", rcp.rcp()).found);
}

}  // namespace
}  // namespace globaldb
