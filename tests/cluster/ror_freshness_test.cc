// ROR freshness guarantees: bounded-staleness routing (fresh-enough RCP
// serves from replicas, stale RCP falls back to primaries) and the
// monotonic-freshness guarantee across consecutive read-only transactions,
// including when the client moves between CNs.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"

namespace globaldb {
namespace {

class RorFreshnessTest : public ::testing::Test {
 public:
  RorFreshnessTest() : sim_(91) {
    ClusterOptions options;
    options.topology = sim::Topology::ThreeCity();
    options.network.nagle_enabled = false;
    options.initial_mode = TimestampMode::kGclock;
    cluster_ = std::make_unique<Cluster>(&sim_, options);
    cluster_->Start();
  }

  void SetupData() {
    bool done = false;
    auto work = [](Cluster* cluster, bool* done) -> sim::Task<void> {
      CoordinatorNode& cn = cluster->cn(0);
      TableSchema schema;
      schema.name = "t";
      schema.columns = {{"id", ColumnType::kInt64},
                        {"v", ColumnType::kInt64}};
      schema.key_columns = {0};
      schema.distribution_column = 0;
      EXPECT_TRUE((co_await cn.CreateTable(schema)).ok());
      auto txn = co_await cn.Begin();
      for (int64_t id = 1; id <= 12; ++id) {
        Row row = {id, int64_t{0}};
        EXPECT_TRUE((co_await cn.Insert(&*txn, "t", row)).ok());
      }
      EXPECT_TRUE((co_await cn.Commit(&*txn)).ok());
      *done = true;
    };
    sim_.Spawn(work(cluster_.get(), &done));
    while (!done) sim_.RunFor(10 * kMillisecond);
    cluster_->WaitForRcp();
    sim_.RunFor(500 * kMillisecond);
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(RorFreshnessTest, TightStalenessBoundFallsBackToPrimary) {
  SetupData();
  auto scenario = [](Cluster* cluster) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(1);
    // Loose bound (1 s): the RCP qualifies, so the txn is ROR.
    ReadOptions loose;
    loose.max_staleness = 1 * kSecond;
    auto ror = co_await cn.Begin(true, false, loose);
    EXPECT_TRUE(ror.ok());
    EXPECT_TRUE(ror->use_ror);

    // Impossible bound (1 us): the RCP can never be that fresh across
    // cities; the read falls back to a regular timestamped transaction.
    ReadOptions tight;
    tight.max_staleness = 1 * kMicrosecond;
    auto fallback = co_await cn.Begin(true, false, tight);
    EXPECT_TRUE(fallback.ok());
    EXPECT_FALSE(fallback->use_ror);
    EXPECT_GT(cn.metrics().Get("cn.ror_fallbacks"), 0);
  };
  sim_.Spawn(scenario(cluster_.get()));
  sim_.RunFor(2 * kSecond);
}

TEST_F(RorFreshnessTest, ConsecutiveReadsNeverGoBackwards) {
  SetupData();
  // Interleave writes with reads that hop between CNs: the value observed
  // must never regress (RCP monotonicity + distribution to every CN).
  auto scenario = [](Cluster* cluster, sim::Simulator* sim) -> sim::Task<void> {
    int64_t last_seen = -1;
    for (int round = 0; round < 15; ++round) {
      // Bump the value through CN0.
      CoordinatorNode& writer = cluster->cn(0);
      auto wtxn = co_await writer.Begin();
      EXPECT_TRUE(wtxn.ok());
      Row row = {int64_t{5}, int64_t{round + 1}};
      Row key = {int64_t{5}};
      auto cur = co_await writer.GetForUpdate(&*wtxn, "t", key);
      EXPECT_TRUE(cur.ok() && cur->has_value());
      EXPECT_TRUE((co_await writer.Update(&*wtxn, "t", row)).ok());
      EXPECT_TRUE((co_await writer.Commit(&*wtxn)).ok());
      co_await sim->Sleep(60 * kMillisecond);

      // Read from a rotating CN (simulates client re-routing).
      CoordinatorNode& reader = cluster->cn(round % 3);
      auto rtxn = co_await reader.Begin(true, true);
      EXPECT_TRUE(rtxn.ok());
      auto value = co_await reader.Get(&*rtxn, "t", key);
      EXPECT_TRUE(value.ok());
      if (value.ok() && value->has_value()) {
        const int64_t v = std::get<int64_t>((**value)[1]);
        EXPECT_GE(v, last_seen) << "freshness went backwards at round "
                                << round;
        last_seen = std::max(last_seen, v);
      }
    }
    EXPECT_GE(last_seen, 10);  // reads track writes closely
  };
  sim_.Spawn(scenario(cluster_.get(), &sim_));
  sim_.RunFor(10 * kSecond);
}

TEST_F(RorFreshnessTest, RorSnapshotIsTheRcp) {
  SetupData();
  auto scenario = [](Cluster* cluster) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(2);
    const Timestamp rcp_before = cn.rcp();
    auto txn = co_await cn.Begin(true, true);
    EXPECT_TRUE(txn.ok());
    EXPECT_TRUE(txn->use_ror);
    EXPECT_GE(txn->snapshot, rcp_before);
    EXPECT_LE(txn->snapshot, cn.rcp());
  };
  sim_.Spawn(scenario(cluster_.get()));
  sim_.RunFor(1 * kSecond);
}

}  // namespace
}  // namespace globaldb
