// Partition tolerance: what keeps working when regions are cut off.
//  - GClock transactions on an isolated region's local shards keep
//    committing (no central timestamp dependency).
//  - GTM-mode transactions from a region partitioned away from the GTM
//    server fail (the paper's motivation for decentralized timestamps).
//  - ROR reads survive the loss of remote primaries: the local replica
//    still serves consistent (if increasingly stale) snapshots.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"

namespace globaldb {
namespace {

class PartitionTest : public ::testing::Test {
 public:
  void Build(TimestampMode mode) {
    cluster_ = std::make_unique<Cluster>(&sim_, Options(mode));
    cluster_->Start();
    bool done = false;
    auto setup = [](Cluster* cluster, bool* done) -> sim::Task<void> {
      CoordinatorNode& cn = cluster->cn(0);
      TableSchema schema;
      schema.name = "kv";
      schema.columns = {{"k", ColumnType::kInt64},
                        {"v", ColumnType::kInt64}};
      schema.key_columns = {0};
      schema.distribution_column = 0;
      EXPECT_TRUE((co_await cn.CreateTable(schema)).ok());
      auto txn = co_await cn.Begin();
      for (int64_t k = 1; k <= 30; ++k) {
        Row row = {k, k};
        EXPECT_TRUE((co_await cn.Insert(&*txn, "kv", row)).ok());
      }
      EXPECT_TRUE((co_await cn.Commit(&*txn)).ok());
      *done = true;
    };
    sim_.Spawn(setup(cluster_.get(), &done));
    while (!done) sim_.RunFor(10 * kMillisecond);
    cluster_->WaitForRcp();
    sim_.RunFor(300 * kMillisecond);
  }

  static ClusterOptions Options(TimestampMode mode) {
    ClusterOptions o;
    o.topology = sim::Topology::ThreeCity();
    o.network.nagle_enabled = false;
    o.network.rpc_timeout = 500 * kMillisecond;  // fail fast in tests
    o.initial_mode = mode;
    return o;
  }

  /// A key whose shard's primary lives in `region`.
  int64_t KeyInRegion(RegionId region) {
    const TableSchema* schema = cluster_->cn(0).catalog().FindTable("kv");
    for (int64_t k = 1; k <= 30; ++k) {
      Row row = {k, k};
      const ShardId shard = RouteRowToShard(
          *schema, row, static_cast<uint32_t>(cluster_->num_shards()));
      if (cluster_->PrimaryRegion(shard) == region) return k;
    }
    return 1;
  }

  sim::Simulator sim_{61};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(PartitionTest, GclockRegionKeepsCommittingWhenIsolated) {
  Build(TimestampMode::kGclock);
  // Cut region 2 off from regions 0 and 1 (GTM is in region 0, unused).
  cluster_->network().SetRegionPartitioned(2, 0, true);
  cluster_->network().SetRegionPartitioned(2, 1, true);

  Status local_write = Status::Internal("unset");
  auto scenario = [](PartitionTest* test, Status* out) -> sim::Task<void> {
    CoordinatorNode& cn = test->cluster_->cn(2);
    const int64_t key = test->KeyInRegion(2);
    auto txn = co_await cn.Begin();
    if (!txn.ok()) {
      *out = txn.status();
      co_return;
    }
    Row row = {key, int64_t{999}};
    Row key_row = {key};
    auto cur = co_await cn.GetForUpdate(&*txn, "kv", key_row);
    if (!cur.ok()) {
      *out = cur.status();
      co_return;
    }
    Status s = co_await cn.Update(&*txn, "kv", row);
    if (s.ok()) s = co_await cn.Commit(&*txn);
    *out = s;
  };
  sim_.Spawn(scenario(this, &local_write));
  sim_.RunFor(5 * kSecond);
  EXPECT_TRUE(local_write.ok()) << local_write.ToString();
}

TEST_F(PartitionTest, GtmRegionCannotCommitWhenCutFromGtmServer) {
  Build(TimestampMode::kGtm);
  cluster_->network().SetRegionPartitioned(2, 0, true);  // GTM in region 0

  Status result = Status::OK();
  auto scenario = [](PartitionTest* test, Status* out) -> sim::Task<void> {
    CoordinatorNode& cn = test->cluster_->cn(2);
    auto txn = co_await cn.Begin();  // needs a GTM timestamp
    *out = txn.ok() ? Status::OK() : txn.status();
  };
  sim_.Spawn(scenario(this, &result));
  sim_.RunFor(5 * kSecond);
  EXPECT_FALSE(result.ok());
}

TEST_F(PartitionTest, RorReadsSurviveLossOfRemotePrimaries) {
  Build(TimestampMode::kGclock);
  // Kill the primaries mastered in regions 0 and 1; region 2 retains its
  // local replicas of those shards.
  for (ShardId s = 0; s < cluster_->num_shards(); ++s) {
    if (cluster_->PrimaryRegion(s) != 2) {
      cluster_->network().SetNodeUp(Cluster::PrimaryNodeId(s), false);
    }
  }

  int found = 0, errors = 0;
  auto scenario = [](PartitionTest* test, int* found,
                     int* errors) -> sim::Task<void> {
    CoordinatorNode& cn = test->cluster_->cn(2);
    for (int64_t k = 1; k <= 30; ++k) {
      auto txn = co_await cn.Begin(/*read_only=*/true, /*single_shard=*/true);
      if (!txn.ok()) {
        ++*errors;
        continue;
      }
      Row key = {k};
      auto row = co_await cn.Get(&*txn, "kv", key);
      if (row.ok() && row->has_value()) {
        ++*found;
      } else {
        ++*errors;
      }
    }
  };
  sim_.Spawn(scenario(this, &found, &errors));
  sim_.RunFor(30 * kSecond);
  EXPECT_EQ(found, 30);
  EXPECT_EQ(errors, 0);
}

}  // namespace
}  // namespace globaldb
