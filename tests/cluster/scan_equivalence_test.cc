// Pushdown-equivalence oracle (DESIGN.md §14): for any mix of ScanSpecs —
// bounded ranges, filters, limits, reverse order, routes, co-located joins
// — the batched scan path must return byte-for-byte what the serial
// ScanRange baseline returns, including when a tiny chunk budget forces
// mid-scan truncation and client-driven continuation. Randomized across
// three seeds so the spec mix, data distribution, and truncation points
// all vary.

#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

namespace globaldb {
namespace {

TableSchema AccountsSchema() {
  TableSchema s;
  s.name = "accounts";
  s.columns = {{"id", ColumnType::kInt64},
               {"owner", ColumnType::kString},
               {"balance", ColumnType::kInt64}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

TableSchema LinesSchema() {
  TableSchema s;
  s.name = "lines";
  s.columns = {{"id", ColumnType::kInt64},
               {"seq", ColumnType::kInt64},
               {"note", ColumnType::kString}};
  s.key_columns = {0, 1};
  s.distribution_column = 0;
  return s;
}

template <typename T>
T RunTask(sim::Simulator* sim, sim::Task<T> task) {
  std::optional<T> result;
  auto wrapper = [](sim::Task<T> t, std::optional<T>* out) -> sim::Task<void> {
    *out = co_await std::move(t);
  };
  sim->Spawn(wrapper(std::move(task), &result));
  while (!result.has_value()) {
    sim->RunFor(1 * kMillisecond);
  }
  return std::move(*result);
}

sim::Task<Status> LoadData(CoordinatorNode* cn, int64_t num_ids,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto txn = co_await cn->Begin();
  if (!txn.ok()) co_return txn.status();
  for (int64_t id = 1; id <= num_ids; ++id) {
    Row row = {id, "owner_" + std::to_string(id),
               static_cast<int64_t>(rng() % 4)};
    Status s = co_await cn->Insert(&*txn, "accounts", row);
    if (!s.ok()) {
      (void)co_await cn->Abort(&*txn);
      co_return s;
    }
    int64_t lines = 1 + static_cast<int64_t>(rng() % 3);
    for (int64_t seq = 1; seq <= lines; ++seq) {
      Row line = {id, seq, "n" + std::to_string(id * 10 + seq)};
      s = co_await cn->Insert(&*txn, "lines", line);
      if (!s.ok()) {
        (void)co_await cn->Abort(&*txn);
        co_return s;
      }
    }
  }
  co_return co_await cn->Commit(&*txn);
}

/// A random spec over the loaded data: ~half bounded, ~half filtered,
/// a third reversed, ~half routed to a single shard, a third joined.
ScanSpec RandomSpec(std::mt19937_64* rng, int64_t num_ids) {
  ScanSpec spec;
  spec.table = "accounts";
  if ((*rng)() % 2 == 0) {
    int64_t lo = 1 + static_cast<int64_t>((*rng)() % num_ids);
    int64_t hi = lo + 1 + static_cast<int64_t>((*rng)() % num_ids);
    EncodeKeyPart(Value(lo), &spec.start);
    EncodeKeyPart(Value(hi), &spec.end);
  }
  if ((*rng)() % 2 == 0) {
    spec.filter_col = 2;
    spec.filter_eq = static_cast<int64_t>((*rng)() % 4);
  }
  if ((*rng)() % 3 == 0) spec.reverse = true;
  if ((*rng)() % 2 == 0) {
    spec.limit = 1 + static_cast<uint32_t>((*rng)() % 12);
  }
  if ((*rng)() % 2 == 0) {
    spec.route = Value(1 + static_cast<int64_t>((*rng)() % num_ids));
  }
  if ((*rng)() % 3 == 0) {
    spec.join_table = "lines";
    spec.join_key_cols = {0};
    spec.join_prefix = true;
    spec.join_limit = 1 + static_cast<uint32_t>((*rng)() % 4);
  }
  return spec;
}

sim::Task<StatusOr<std::vector<ScanResult>>> RunSpecs(
    CoordinatorNode* cn, std::vector<ScanSpec> specs) {
  auto txn = co_await cn->Begin(/*read_only=*/true);
  if (!txn.ok()) co_return txn.status();
  auto out = co_await cn->ScanBatch(&*txn, std::move(specs));
  (void)co_await cn->Abort(&*txn);
  co_return out;
}

TEST(ScanEquivalenceTest, BatchedMatchesSerialAcrossSeeds) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Simulator sim(seed);
    ClusterOptions options;
    options.topology = sim::Topology::ThreeCity();
    options.network.nagle_enabled = false;
    options.num_shards = 6;
    options.replicas_per_shard = 2;
    options.initial_mode = TimestampMode::kGclock;
    // A couple of rows per chunk: unbounded specs truncate mid-scan and
    // exercise the continuation cursor.
    options.coordinator.scan_chunk_bytes = 96;
    Cluster cluster(&sim, options);
    cluster.Start();
    auto& cn = cluster.cn(0);
    ASSERT_TRUE(RunTask(&sim, cn.CreateTable(AccountsSchema())).ok());
    ASSERT_TRUE(RunTask(&sim, cn.CreateTable(LinesSchema())).ok());
    const int64_t num_ids = 60;
    ASSERT_TRUE(RunTask(&sim, LoadData(&cn, num_ids, seed)).ok());
    // Let RCP advance past the load commit so the read-only snapshot (and
    // the replicas) actually cover the data.
    cluster.WaitForRcp();
    sim.RunFor(500 * kMillisecond);

    std::mt19937_64 rng(seed * 7919);
    std::vector<ScanSpec> specs;
    // One unbounded, unfiltered, unlimited forward scan: every shard holds
    // ~10 rows (well over the 96-byte budget), so this spec always
    // truncates mid-scan and drives the continuation path.
    ScanSpec full;
    full.table = "accounts";
    specs.push_back(full);
    for (int i = 0; i < 7; ++i) specs.push_back(RandomSpec(&rng, num_ids));

    auto batched = RunTask(&sim, RunSpecs(&cn, specs));
    ASSERT_TRUE(batched.ok());
    // The tiny budget really forced continuation: more chunks than the
    // batch had shard groups.
    int64_t fanout = 0;
    for (int64_t f : cn.metrics().Hist("cn.scan_fanout").values()) fanout += f;
    EXPECT_GT(cn.metrics().Get("cn.scan_chunks"), fanout);
    // Both replica- and primary-routed groups were exercised.
    EXPECT_GE(cn.metrics().Get("cn.scan_batch_replica"), 1);

    cn.mutable_options()->enable_scan_batching = false;
    auto serial = RunTask(&sim, RunSpecs(&cn, specs));
    ASSERT_TRUE(serial.ok());
    cn.mutable_options()->enable_scan_batching = true;

    ASSERT_EQ(batched->size(), serial->size());
    for (size_t i = 0; i < specs.size(); ++i) {
      SCOPED_TRACE("spec=" + std::to_string(i));
      const ScanResult& b = (*batched)[i];
      const ScanResult& s = (*serial)[i];
      ASSERT_EQ(b.rows.size(), s.rows.size());
      for (size_t r = 0; r < b.rows.size(); ++r) {
        EXPECT_TRUE(b.rows[r] == s.rows[r]) << "row " << r;
      }
      ASSERT_EQ(b.joined.size(), s.joined.size());
      for (size_t r = 0; r < b.joined.size(); ++r) {
        EXPECT_TRUE(b.joined[r] == s.joined[r]) << "joined row " << r;
      }
    }
  }
}

}  // namespace
}  // namespace globaldb
