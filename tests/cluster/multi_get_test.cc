// Batched multi-get on the CN (DESIGN.md §11): MultiGet dedups its key
// set, runs the read-your-writes check with at most one flush barrier,
// groups keys by shard, and fans the groups out as parallel
// kDnReadBatch/kRorReadBatch RPCs. These tests pin down duplicate-key
// dedup, partial misses, the single flush barrier over buffered writes,
// mixed replica/primary routing, per-group failover when a replica dies
// mid-batch, and byte-identical equivalence with serial Get/GetForUpdate.

#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/chaos/fault_scheduler.h"

namespace globaldb {
namespace {

TableSchema AccountsSchema() {
  TableSchema s;
  s.name = "accounts";
  s.columns = {{"id", ColumnType::kInt64},
               {"owner", ColumnType::kString},
               {"balance", ColumnType::kInt64}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

class MultiGetTest : public ::testing::Test {
 public:  // accessed from coroutine lambdas in tests
  MultiGetTest() : sim_(71) {}

  void Build(ClusterOptions options) {
    cluster_ = std::make_unique<Cluster>(&sim_, std::move(options));
    cluster_->Start();
  }

  static ClusterOptions ThreeCityOptions() {
    ClusterOptions o;
    o.topology = sim::Topology::ThreeCity();
    o.network.nagle_enabled = false;
    // Calls into a dead node fail in 200 ms instead of the 5 s default.
    o.network.rpc_timeout = 200 * kMillisecond;
    o.num_shards = 6;
    o.replicas_per_shard = 2;
    o.initial_mode = TimestampMode::kGclock;
    return o;
  }

  template <typename T>
  T RunTask(sim::Task<T> task) {
    std::optional<T> result;
    auto wrapper = [](sim::Task<T> t, std::optional<T>* out) -> sim::Task<void> {
      *out = co_await std::move(t);
    };
    sim_.Spawn(wrapper(std::move(task), &result));
    while (!result.has_value()) {
      sim_.RunFor(1 * kMillisecond);
    }
    return std::move(*result);
  }

  /// Sum of a metric across every primary data node.
  int64_t DnTotal(const std::string& name) {
    int64_t total = 0;
    for (size_t s = 0; s < cluster_->num_shards(); ++s) {
      total += cluster_->data_node(s).metrics().Get(name);
    }
    return total;
  }

  size_t TotalLocksHeld() {
    size_t total = 0;
    for (size_t s = 0; s < cluster_->num_shards(); ++s) {
      total += cluster_->data_node(s).locks().TotalHeld();
    }
    return total;
  }

  /// First `n` account ids (starting at `from`) that route to `shard`.
  std::vector<int64_t> IdsOnShard(ShardId shard, int n, int64_t from = 1) {
    TableSchema schema = AccountsSchema();
    std::vector<int64_t> ids;
    for (int64_t id = from; ids.size() < static_cast<size_t>(n); ++id) {
      Row row = {id, std::string("o"), int64_t{0}};
      if (RouteRowToShard(schema, row, cluster_->num_shards()) == shard) {
        ids.push_back(id);
      }
    }
    return ids;
  }

  /// Inserts and commits one account row per id (balance = id * 10).
  sim::Task<Status> WriteIds(CoordinatorNode* cn, std::vector<int64_t> ids) {
    auto txn = co_await cn->Begin();
    if (!txn.ok()) co_return txn.status();
    for (int64_t id : ids) {
      Row row = {id, std::string("owner"), id * 10};
      Status s = co_await cn->Insert(&*txn, "accounts", row);
      if (!s.ok()) {
        (void)co_await cn->Abort(&*txn);
        co_return s;
      }
    }
    co_return co_await cn->Commit(&*txn);
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

// Duplicate keys are fetched once and fanned back to every requesting
// slot; missing keys come back as nullopt without failing the batch.
TEST_F(MultiGetTest, DedupsDuplicatesAndReportsPartialMisses) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  ASSERT_TRUE(RunTask(WriteIds(&cn, {1, 2, 3})).ok());

  auto work = [this, &cn]() -> sim::Task<StatusOr<std::vector<std::optional<Row>>>> {
    auto txn = co_await cn.Begin();  // read-write: all groups go to primaries
    if (!txn.ok()) co_return txn.status();
    std::vector<Row> keys = {{int64_t{1}}, {int64_t{3}}, {int64_t{999}},
                             {int64_t{3}}, {int64_t{1}}};
    auto rows = co_await cn.MultiGet(&*txn, "accounts", keys);
    Status done = co_await cn.Commit(&*txn);
    if (!done.ok()) co_return done;
    co_return rows;
  };
  auto rows = RunTask(work());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  // 5 requested slots, 3 unique keys: the data nodes saw exactly 3 reads.
  EXPECT_EQ(DnTotal("dn.batched_reads"), 3);
  EXPECT_EQ(cn.metrics().Hist("cn.read_batch_size").values().back(), 3);
  // Misses are nullopt; duplicates got identical rows.
  ASSERT_TRUE((*rows)[0].has_value());
  ASSERT_TRUE((*rows)[1].has_value());
  EXPECT_FALSE((*rows)[2].has_value());
  EXPECT_EQ((*rows)[3], (*rows)[1]);
  EXPECT_EQ((*rows)[4], (*rows)[0]);
  EXPECT_EQ(std::get<int64_t>((*(*rows)[0])[2]), 10);
  EXPECT_EQ(std::get<int64_t>((*(*rows)[1])[2]), 30);
}

// A MultiGet overlapping the transaction's own buffered writes flushes
// exactly once for the whole key set — not once per overlapping key — and
// then observes every buffered write.
TEST_F(MultiGetTest, ReadYourBufferedWritesWithOneFlushBarrier) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  ASSERT_TRUE(RunTask(WriteIds(&cn, {50, 51})).ok());

  auto work = [this, &cn]() -> sim::Task<Status> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    // Four buffered inserts (threshold 16: nothing departs on its own).
    for (int64_t id = 1; id <= 4; ++id) {
      Row row = {id, std::string("owner"), id * 100};
      Status s = co_await cn.Insert(&*txn, "accounts", row);
      if (!s.ok()) co_return s;
    }
    // All four buffered keys plus two committed ones in one MultiGet.
    std::vector<Row> keys = {{int64_t{1}}, {int64_t{2}}, {int64_t{3}},
                             {int64_t{4}}, {int64_t{50}}, {int64_t{51}}};
    auto rows = co_await cn.MultiGet(&*txn, "accounts", keys);
    if (!rows.ok()) co_return rows.status();
    for (int64_t id = 1; id <= 4; ++id) {
      EXPECT_TRUE((*rows)[id - 1].has_value()) << id;
      if ((*rows)[id - 1].has_value()) {
        EXPECT_EQ(std::get<int64_t>((*(*rows)[id - 1])[2]), id * 100);
      }
    }
    EXPECT_TRUE((*rows)[4].has_value());
    EXPECT_TRUE((*rows)[5].has_value());
    co_return co_await cn.Commit(&*txn);
  };
  ASSERT_TRUE(RunTask(work()).ok());
  EXPECT_EQ(cn.metrics().Get("cn.multiget_flush_barriers"), 1);
  EXPECT_EQ(TotalLocksHeld(), 0u);
}

// A ROR transaction whose key set spans a shard with healthy replicas and
// a shard whose replicas are all down routes the two groups differently:
// one batch to a replica, one to the primary, in the same fan-out.
TEST_F(MultiGetTest, MixedReplicaAndPrimaryRouting) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  // Both shards are mastered in a remote region, so with healthy replicas
  // the local-region replica wins the routing cost comparison. Killing
  // shard A's replicas forces only that group back to its remote primary.
  const ShardId shard_a = 1;
  const ShardId shard_b = 4;
  std::vector<int64_t> a_ids = IdsOnShard(shard_a, 2);
  std::vector<int64_t> b_ids = IdsOnShard(shard_b, 2);
  std::vector<int64_t> all = a_ids;
  all.insert(all.end(), b_ids.begin(), b_ids.end());
  ASSERT_TRUE(RunTask(WriteIds(&cn, all)).ok());
  cluster_->WaitForRcp();
  sim_.RunFor(500 * kMillisecond);  // RCP covers the commits above

  // Kill every replica of shard A and let the RCP poller notice: the
  // selector marks them unhealthy, so shard A's group must go primary.
  for (ReplicaNode* replica : cluster_->replicas_of(shard_a)) {
    cluster_->network().SetNodeUp(replica->node_id(), false);
  }
  sim_.RunFor(600 * kMillisecond);

  auto work = [this, &cn, all]() -> sim::Task<StatusOr<std::vector<std::optional<Row>>>> {
    auto txn = co_await cn.Begin(/*read_only=*/true);
    if (!txn.ok()) co_return txn.status();
    EXPECT_TRUE(txn->use_ror);
    std::vector<Row> keys;
    for (int64_t id : all) keys.push_back({id});
    co_return co_await cn.MultiGet(&*txn, "accounts", keys);
  };
  auto rows = RunTask(work());
  ASSERT_TRUE(rows.ok());
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_TRUE((*rows)[i].has_value()) << all[i];
    EXPECT_EQ(std::get<int64_t>((*(*rows)[i])[2]), all[i] * 10);
  }
  EXPECT_GE(cn.metrics().Get("cn.read_batch_primary"), 1);
  EXPECT_GE(cn.metrics().Get("cn.read_batch_replica"), 1);
  EXPECT_GE(DnTotal("dn.batched_reads"), 2);  // shard A's group on primary
}

// A replica that dies between routing and delivery fails over only its own
// group to the shard primary (cn.replica_failovers), and the MultiGet
// still returns exactly the rows a serial Get sequence sees.
TEST_F(MultiGetTest, ReplicaCrashMidBatchFailsOverOneGroup) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  const ShardId shard_a = 1;
  const ShardId shard_b = 4;
  std::vector<int64_t> a_ids = IdsOnShard(shard_a, 2);
  std::vector<int64_t> b_ids = IdsOnShard(shard_b, 2);
  std::vector<int64_t> all = a_ids;
  all.insert(all.end(), b_ids.begin(), b_ids.end());
  ASSERT_TRUE(RunTask(WriteIds(&cn, all)).ok());
  cluster_->WaitForRcp();
  sim_.RunFor(500 * kMillisecond);

  // Freeze the RCP poller so the crash below goes unnoticed by the
  // selector: the MultiGet must discover the dead replica itself, on the
  // wire, and fail over mid-batch (the serial path's failover semantics).
  for (size_t c = 0; c < cluster_->num_cns(); ++c) {
    cluster_->cn(c).rcp_service().Deactivate();
  }

  // Chaos-style scripted crash of both shard A replicas just before the
  // read fires.
  const SimTime base = sim_.now();
  chaos::FaultScheduler faults(cluster_.get());
  for (ReplicaNode* replica : cluster_->replicas_of(shard_a)) {
    chaos::FaultEvent e;
    e.kind = chaos::FaultKind::kNodeCrash;
    e.at = base + 50 * kMillisecond;
    e.node = replica->node_id();
    faults.AddEvent(e);
  }
  faults.Start();

  auto work = [this, &cn, all]() -> sim::Task<Status> {
    co_await sim_.Sleep(60 * kMillisecond);  // crash has happened
    auto txn = co_await cn.Begin(/*read_only=*/true);
    if (!txn.ok()) co_return txn.status();
    EXPECT_TRUE(txn->use_ror);
    std::vector<Row> keys;
    for (int64_t id : all) keys.push_back({id});
    auto batched = co_await cn.MultiGet(&*txn, "accounts", keys);
    if (!batched.ok()) co_return batched.status();

    // Serial Gets in the same transaction (same snapshot) must agree
    // byte for byte, failover or not.
    for (size_t i = 0; i < all.size(); ++i) {
      Row key = {all[i]};
      auto serial = co_await cn.Get(&*txn, "accounts", key);
      if (!serial.ok()) co_return serial.status();
      EXPECT_EQ((*batched)[i], *serial) << all[i];
      EXPECT_TRUE((*batched)[i].has_value()) << all[i];
      if ((*batched)[i].has_value()) {
        EXPECT_EQ(std::get<int64_t>((*(*batched)[i])[2]), all[i] * 10);
      }
    }
    co_return Status::OK();
  };
  ASSERT_TRUE(RunTask(work()).ok());
  EXPECT_GE(cn.metrics().Get("cn.replica_failovers"), 1);
}

// In one read-write transaction, MultiGet (including a locked key) returns
// exactly what the equivalent serial Get/GetForUpdate calls return, and
// the for_update entry really holds its lock until commit.
TEST_F(MultiGetTest, MatchesSerialReadsByteForByte) {
  Build(ThreeCityOptions());
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  ASSERT_TRUE(RunTask(WriteIds(&cn, {1, 2, 3, 4, 5, 6, 7, 8})).ok());

  auto work = [this, &cn]() -> sim::Task<Status> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    std::vector<MultiGetKey> keys;
    for (int64_t id = 1; id <= 8; ++id) {
      keys.push_back({"accounts", {id}, /*for_update=*/id == 5});
    }
    keys.push_back({"accounts", {int64_t{777}}, false});  // a miss
    auto batched = co_await cn.MultiGet(&*txn, keys);
    if (!batched.ok()) co_return batched.status();

    // The locked entry took its row lock on the primary.
    EXPECT_GE(TotalLocksHeld(), 1u);

    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i].for_update) {
        auto serial =
            co_await cn.GetForUpdate(&*txn, "accounts", keys[i].key_values);
        if (!serial.ok()) co_return serial.status();
        EXPECT_EQ((*batched)[i], *serial) << i;
      } else {
        auto serial = co_await cn.Get(&*txn, "accounts", keys[i].key_values);
        if (!serial.ok()) co_return serial.status();
        EXPECT_EQ((*batched)[i], *serial) << i;
      }
    }
    EXPECT_FALSE((*batched)[8].has_value());
    co_return co_await cn.Commit(&*txn);
  };
  ASSERT_TRUE(RunTask(work()).ok());
  EXPECT_EQ(TotalLocksHeld(), 0u);
}

// Disabling read batching degrades MultiGet to the serial path with
// identical results — the ablation baseline stays correct.
TEST_F(MultiGetTest, DisabledBatchingFallsBackToSerialWithSameRows) {
  ClusterOptions options = ThreeCityOptions();
  options.coordinator.enable_read_batching = false;
  Build(options);
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());
  ASSERT_TRUE(RunTask(WriteIds(&cn, {1, 2, 3})).ok());

  auto work = [this, &cn]() -> sim::Task<StatusOr<std::vector<std::optional<Row>>>> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    std::vector<Row> keys = {{int64_t{1}}, {int64_t{404}}, {int64_t{3}}};
    auto rows = co_await cn.MultiGet(&*txn, "accounts", keys);
    Status done = co_await cn.Commit(&*txn);
    if (!done.ok()) co_return done;
    co_return rows;
  };
  auto rows = RunTask(work());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_TRUE((*rows)[0].has_value());
  EXPECT_FALSE((*rows)[1].has_value());
  EXPECT_TRUE((*rows)[2].has_value());
  // No batch RPCs anywhere: the serial path served every key.
  EXPECT_EQ(DnTotal("dn.read_batches"), 0);
  EXPECT_EQ(cn.metrics().Get("cn.multigets"), 0);
  EXPECT_GE(DnTotal("dn.reads"), 2);
}

}  // namespace
}  // namespace globaldb
