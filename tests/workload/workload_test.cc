#include <gtest/gtest.h>

#include "src/workload/sysbench.h"
#include "src/workload/tpcc.h"

namespace globaldb {
namespace {

ClusterOptions SmallClusterOptions() {
  ClusterOptions o;
  o.topology = sim::Topology::ThreeCity();
  o.network.nagle_enabled = false;
  o.num_shards = 6;
  o.replicas_per_shard = 2;
  o.initial_mode = TimestampMode::kGclock;
  return o;
}

TpccConfig SmallTpcc() {
  TpccConfig c;
  c.num_warehouses = 6;
  c.districts_per_warehouse = 2;
  c.customers_per_district = 10;
  c.items = 50;
  c.initial_orders_per_district = 5;
  return c;
}

TEST(TpccTest, SetupLoadsAllTables) {
  sim::Simulator sim(31);
  Cluster cluster(&sim, SmallClusterOptions());
  cluster.Start();
  TpccWorkload tpcc(&cluster, SmallTpcc());
  ASSERT_TRUE(tpcc.Setup().ok());
  // All ten tables (nine TPC-C + the orders_cust_idx secondary index)
  // exist on every CN.
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    EXPECT_EQ(cluster.cn(i).catalog().NumTables(), 10u);
  }
  // Item is replicated: every shard holds all items.
  const TableSchema* item = cluster.cn(0).catalog().FindTable("item");
  ASSERT_NE(item, nullptr);
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    MvccTable* t = cluster.data_node(s).store().GetTable(item->id);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->KeyCount(), 50u);
  }
  // Warehouses are partitioned: shard key counts sum to the total.
  const TableSchema* wh = cluster.cn(0).catalog().FindTable("warehouse");
  size_t total = 0;
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    MvccTable* t = cluster.data_node(s).store().GetTable(wh->id);
    if (t != nullptr) total += t->KeyCount();
  }
  EXPECT_EQ(total, 6u);
}

TEST(TpccTest, FullMixRunsAndCommits) {
  sim::Simulator sim(32);
  Cluster cluster(&sim, SmallClusterOptions());
  cluster.Start();
  // Enough districts that 12 clients rarely collide (TPC-C pairs terminals
  // with districts ~1:1; snapshot-isolation conflicts abort otherwise).
  TpccConfig mix_config = SmallTpcc();
  mix_config.num_warehouses = 12;
  mix_config.districts_per_warehouse = 10;
  TpccWorkload tpcc(&cluster, mix_config);
  ASSERT_TRUE(tpcc.Setup().ok());
  cluster.WaitForRcp();

  WorkloadDriver::Options options;
  options.clients = 12;
  options.warmup = 200 * kMillisecond;
  options.duration = 2 * kSecond;
  WorkloadDriver driver(&cluster, options);
  WorkloadStats stats = driver.Run(tpcc.MixFn());

  EXPECT_GT(stats.committed, 100);
  EXPECT_LT(stats.AbortRate(), 0.35);
  // All five profiles executed.
  EXPECT_GT(stats.committed_by_kind["neworder"], 0);
  EXPECT_GT(stats.committed_by_kind["payment"], 0);
  EXPECT_GT(stats.committed_by_kind["orderstatus"], 0);
  EXPECT_GT(stats.committed_by_kind["delivery"], 0);
  EXPECT_GT(stats.committed_by_kind["stocklevel"], 0);
}

TEST(TpccTest, ReadOnlyMixUsesReplicas) {
  sim::Simulator sim(33);
  Cluster cluster(&sim, SmallClusterOptions());
  cluster.Start();
  TpccConfig config = SmallTpcc();
  config.read_only_mix = true;
  TpccWorkload tpcc(&cluster, config);
  ASSERT_TRUE(tpcc.Setup().ok());
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options options;
  options.clients = 12;
  options.warmup = 200 * kMillisecond;
  options.duration = 2 * kSecond;
  WorkloadDriver driver(&cluster, options);
  WorkloadStats stats = driver.Run(tpcc.MixFn());

  EXPECT_GT(stats.committed, 100);
  EXPECT_EQ(stats.committed_by_kind["neworder"], 0);
  int64_t replica_reads = 0;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    replica_reads += cluster.cn(i).metrics().Get("cn.replica_reads");
  }
  EXPECT_GT(replica_reads, 0);
}

TEST(TpccTest, NewOrderPreservesOrderIdSequence) {
  sim::Simulator sim(34);
  Cluster cluster(&sim, SmallClusterOptions());
  cluster.Start();
  TpccConfig config = SmallTpcc();
  TpccWorkload tpcc(&cluster, config);
  ASSERT_TRUE(tpcc.Setup().ok());

  // Run a burst of NewOrder transactions, then verify the district
  // next_o_id advanced by exactly the number of committed neworders in
  // that district (no lost updates despite contention).
  WorkloadDriver::Options options;
  options.clients = 8;
  options.warmup = 0;
  options.duration = 1 * kSecond;
  WorkloadDriver driver(&cluster, options);
  TpccConfig no_only = config;
  TpccWorkload neworder_only(&cluster, no_only);
  WorkloadStats stats = driver.Run(
      [&](CoordinatorNode* cn, Rng* rng) -> sim::Task<TxnResult> {
        return neworder_only.NewOrder(cn, rng);
      });
  EXPECT_GT(stats.committed, 10);

  // Sum of (next_o_id - initial) across districts equals the number of
  // committed NewOrders. Transactions in flight at the window boundary finish
  // during the drain and advance districts without being counted, so the
  // sum may exceed the counted commits by at most the client count.
  auto count = [&]() -> sim::Task<void> {
    auto& cn = cluster.cn(0);
    auto txn = co_await cn.Begin();
    EXPECT_TRUE(txn.ok());
    int64_t total_advance = 0;
    for (int64_t w = 1; w <= config.num_warehouses; ++w) {
      for (int64_t d = 1; d <= config.districts_per_warehouse; ++d) {
        Row key = {w, d};
        auto district = co_await cn.Get(&*txn, "district", key);
        EXPECT_TRUE(district.ok() && district->has_value());
        total_advance += std::get<int64_t>((**district)[4]) -
                         (config.initial_orders_per_district + 1);
      }
    }
    EXPECT_GE(total_advance, stats.committed);
    EXPECT_LE(total_advance, stats.committed + options.clients);
  };
  sim.Spawn(count());
  sim.RunFor(5 * kSecond);
}

TEST(SysbenchTest, PointSelectRunsAgainstReplicas) {
  sim::Simulator sim(35);
  Cluster cluster(&sim, SmallClusterOptions());
  cluster.Start();
  SysbenchConfig config;
  config.num_tables = 3;
  config.rows_per_table = 200;
  SysbenchWorkload sysbench(&cluster, config);
  ASSERT_TRUE(sysbench.Setup().ok());
  cluster.WaitForRcp();
  sim.RunFor(200 * kMillisecond);

  WorkloadDriver::Options options;
  options.clients = 12;
  options.warmup = 100 * kMillisecond;
  options.duration = 1 * kSecond;
  WorkloadDriver driver(&cluster, options);
  WorkloadStats stats = driver.Run(sysbench.PointSelectFn());
  EXPECT_GT(stats.committed, 500);
  EXPECT_EQ(stats.aborted, 0);
}

TEST(SysbenchTest, ReadWriteMixCommits) {
  sim::Simulator sim(36);
  Cluster cluster(&sim, SmallClusterOptions());
  cluster.Start();
  SysbenchConfig config;
  config.num_tables = 2;
  config.rows_per_table = 500;
  SysbenchWorkload sysbench(&cluster, config);
  ASSERT_TRUE(sysbench.Setup().ok());
  cluster.WaitForRcp();

  WorkloadDriver::Options options;
  options.clients = 8;
  options.warmup = 100 * kMillisecond;
  options.duration = 1 * kSecond;
  WorkloadDriver driver(&cluster, options);
  WorkloadStats stats = driver.Run(sysbench.ReadWriteFn());
  EXPECT_GT(stats.committed, 8);  // cross-city read-write txns are ~0.5 s
  EXPECT_LT(stats.AbortRate(), 0.5);
}

}  // namespace
}  // namespace globaldb
