#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/future.h"
#include "src/sim/task.h"

namespace globaldb::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.now());
    sim.Schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(10, [&] { ++ran; });
  sim.Schedule(50, [&] { ++ran; });
  sim.RunUntil(20);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 20);
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, StopHaltsLoop) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(1, [&] {
    ++ran;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 1);
  sim.Run();  // resumes
  EXPECT_EQ(ran, 2);
}

Task<void> SleeperTask(Simulator* sim, std::vector<SimTime>* log) {
  log->push_back(sim->now());
  co_await sim->Sleep(100);
  log->push_back(sim->now());
  co_await sim->Sleep(50);
  log->push_back(sim->now());
}

TEST(SimulatorTest, CoroutineSleepAdvancesVirtualTime) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.Spawn(SleeperTask(&sim, &log));
  sim.Run();
  EXPECT_EQ(log, (std::vector<SimTime>{0, 100, 150}));
}

Task<int> Doubler(int x) { co_return x * 2; }

Task<void> AwaitsChild(Simulator* sim, int* out) {
  int a = co_await Doubler(10);
  co_await sim->Sleep(5);
  int b = co_await Doubler(a);
  *out = b;
}

TEST(SimulatorTest, TaskCompositionReturnsValues) {
  Simulator sim;
  int out = 0;
  sim.Spawn(AwaitsChild(&sim, &out));
  sim.Run();
  EXPECT_EQ(out, 40);
}

Task<void> Ping(Simulator* sim, Promise<int> p) {
  co_await sim->Sleep(42);
  p.Set(99);
}

Task<void> Pong(Simulator* sim, Future<int> f, SimTime* when, int* value) {
  *value = co_await f;
  *when = sim->now();
}

TEST(SimulatorTest, FutureResumesWaiterAtSetTime) {
  Simulator sim;
  Promise<int> p(&sim);
  SimTime when = -1;
  int value = 0;
  sim.Spawn(Pong(&sim, p.GetFuture(), &when, &value));
  sim.Spawn(Ping(&sim, p));
  sim.Run();
  EXPECT_EQ(value, 99);
  EXPECT_EQ(when, 42);
}

TEST(SimulatorTest, FutureAlreadyReadyDoesNotSuspend) {
  Simulator sim;
  Promise<int> p(&sim);
  p.Set(7);
  int value = 0;
  SimTime when = -1;
  sim.Spawn(Pong(&sim, p.GetFuture(), &when, &value));
  sim.Run();
  EXPECT_EQ(value, 7);
  EXPECT_EQ(when, 0);
}

TEST(SimulatorTest, PromiseTrySetSecondWriterLoses) {
  Simulator sim;
  Promise<int> p(&sim);
  EXPECT_TRUE(p.TrySet(1));
  EXPECT_FALSE(p.TrySet(2));
  int value = 0;
  SimTime when;
  sim.Spawn(Pong(&sim, p.GetFuture(), &when, &value));
  sim.Run();
  EXPECT_EQ(value, 1);
}

Task<void> Worker(Simulator* sim, WaitGroup* wg, SimDuration d) {
  co_await sim->Sleep(d);
  wg->Done();
}

Task<void> Waiter(Simulator* sim, WaitGroup* wg, SimTime* done_at) {
  co_await wg->Wait();
  *done_at = sim->now();
}

TEST(SimulatorTest, WaitGroupWaitsForAll) {
  Simulator sim;
  WaitGroup wg(&sim);
  wg.Add(3);
  SimTime done_at = -1;
  sim.Spawn(Waiter(&sim, &wg, &done_at));
  sim.Spawn(Worker(&sim, &wg, 10));
  sim.Spawn(Worker(&sim, &wg, 30));
  sim.Spawn(Worker(&sim, &wg, 20));
  sim.Run();
  EXPECT_EQ(done_at, 30);
}

TEST(SimulatorTest, NotificationReleasesAllWaiters) {
  Simulator sim;
  Notification n(&sim);
  int released = 0;
  auto wait_task = [](Notification* n, int* released) -> Task<void> {
    co_await n->Wait();
    ++*released;
  };
  sim.Spawn(wait_task(&n, &released));
  sim.Spawn(wait_task(&n, &released));
  sim.Schedule(10, [&] { n.Notify(); });
  sim.Run();
  EXPECT_EQ(released, 2);
  EXPECT_TRUE(n.HasBeenNotified());
  // Waiting after notification completes immediately.
  sim.Spawn(wait_task(&n, &released));
  sim.Run();
  EXPECT_EQ(released, 3);
}

TEST(SimulatorTest, DeterministicEventCount) {
  auto run = []() {
    Simulator sim(123);
    std::vector<SimTime> log;
    sim.Spawn(SleeperTask(&sim, &log));
    sim.Spawn(SleeperTask(&sim, &log));
    sim.Run();
    return sim.events_executed();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace globaldb::sim
