// Unit checks of the network delay model arithmetic: latency + serialization
// at the effective bandwidth, the CUBIC-vs-BBR utilization curve, and jitter
// bounds.

#include <gtest/gtest.h>

#include "src/sim/network.h"

namespace globaldb::sim {
namespace {

class TransferDelayTest : public ::testing::Test {
 protected:
  TransferDelayTest()
      : sim_(9), net_(&sim_, Topology::ThreeCity(), Options()) {
    net_.RegisterNode(1, 0);
    net_.RegisterNode(2, 1);
    net_.RegisterNode(3, 0);
  }
  static NetworkOptions Options() {
    NetworkOptions o;
    o.jitter_fraction = 0;
    o.nagle_enabled = false;
    o.inter_region_bandwidth = 10e6;  // 10 MB/s for easy math
    return o;
  }
  Simulator sim_;
  Network net_;
};

TEST_F(TransferDelayTest, TinyMessageIsPureLatency) {
  // Xi'an -> Langzhong one-way = 12.5 ms.
  const SimDuration d = net_.TransferDelay(1, 2, 1);
  EXPECT_GE(d, 12500 * kMicrosecond);
  EXPECT_LT(d, 12600 * kMicrosecond);
}

TEST_F(TransferDelayTest, SerializationScalesWithSize) {
  const SimDuration small = net_.TransferDelay(1, 2, 1000);
  const SimDuration large = net_.TransferDelay(1, 2, 1000000);
  // ~1 MB at an effective (CUBIC-degraded) 10 MB/s link: >= 100 ms extra.
  EXPECT_GT(large - small, 90 * kMillisecond);
}

TEST_F(TransferDelayTest, IntraRegionUsesFastPath) {
  const SimDuration d = net_.TransferDelay(1, 3, 100000);
  // 100 us one-way + 100 KB at 1.25 GB/s = well under 1 ms.
  EXPECT_LT(d, 1 * kMillisecond);
}

TEST_F(TransferDelayTest, CubicUtilizationDegradesWithRtt) {
  // Same payload; longer-RTT pair gets less effective bandwidth under the
  // loss-based model, so serialization takes longer.
  const size_t payload = 5 * 1000 * 1000;
  const SimDuration near = net_.TransferDelay(1, 2, payload) -
                           net_.TransferDelay(1, 2, 1);   // 25 ms RTT pair
  net_.RegisterNode(4, 2);
  const SimDuration far = net_.TransferDelay(1, 4, payload) -
                          net_.TransferDelay(1, 4, 1);    // 55 ms RTT pair
  EXPECT_GT(far, near);

  // BBR removes the RTT dependence (both near full utilization).
  net_.mutable_options()->bbr_enabled = true;
  const SimDuration near_bbr = net_.TransferDelay(1, 2, payload) -
                               net_.TransferDelay(1, 2, 1);
  const SimDuration far_bbr = net_.TransferDelay(1, 4, payload) -
                              net_.TransferDelay(1, 4, 1);
  EXPECT_NEAR(static_cast<double>(far_bbr),
              static_cast<double>(near_bbr),
              static_cast<double>(near_bbr) * 0.02);
  EXPECT_LT(far_bbr, far);
}

TEST_F(TransferDelayTest, JitterStaysWithinConfiguredFraction) {
  net_.mutable_options()->jitter_fraction = 0.10;
  const SimDuration base = 12500 * kMicrosecond;
  for (int i = 0; i < 200; ++i) {
    const SimDuration d = net_.TransferDelay(1, 2, 1);
    EXPECT_GE(d, base);
    EXPECT_LE(d, base + base / 10 + 1 * kMicrosecond);
  }
}

}  // namespace
}  // namespace globaldb::sim
