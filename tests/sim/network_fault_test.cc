// Fault-semantics tests for the simulated network:
//  - A call to a down node is refused after one RTT (SYN out, RST back),
//    not after the full RPC timeout.
//  - Crashing a node resets calls already in flight to it promptly.
//  - A partition is a silent black hole: blocked calls ride out the full
//    timeout, both directions are blocked, and healing restores traffic.
#include <gtest/gtest.h>

#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace globaldb::sim {
namespace {

constexpr NodeId kA = 1;  // xian      (region 0)
constexpr NodeId kB = 2;  // langzhong (region 1)
constexpr NodeId kC = 3;  // dongguan  (region 2)

// Xi'an <-> Langzhong RTT in the ThreeCity topology.
constexpr SimDuration kAbRtt = 25 * kMillisecond;

class NetworkFaultTest : public ::testing::Test {
 protected:
  NetworkFaultTest()
      : sim_(3), net_(&sim_, Topology::ThreeCity(), MakeOptions()) {
    net_.RegisterNode(kA, 0);
    net_.RegisterNode(kB, 1);
    net_.RegisterNode(kC, 2);
    for (NodeId node : {kA, kB, kC}) {
      net_.RegisterHandler(node, "echo",
                           [](NodeId, std::string p) -> Task<std::string> {
                             co_return "echo:" + p;
                           });
    }
  }

  static NetworkOptions MakeOptions() {
    NetworkOptions o;
    o.jitter_fraction = 0;  // determinism for latency assertions
    o.nagle_enabled = false;
    return o;
  }

  Task<void> DoCall(NodeId from, NodeId to, StatusOr<std::string>* out,
                    SimTime* completed_at, SimDuration timeout = 0) {
    *out = co_await net_.Call(from, to, "echo", "x", timeout);
    *completed_at = sim_.now();
  }

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkFaultTest, DownNodeRefusesConnectionWithinOneRtt) {
  net_.SetNodeUp(kB, false);
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kA, kB, &result, &completed));
  sim_.Run();
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  // Refused after one round trip, nowhere near the 5 s RPC timeout.
  EXPECT_GE(completed, kAbRtt);
  EXPECT_LT(completed, kAbRtt + 5 * kMillisecond);
}

TEST_F(NetworkFaultTest, CrashResetsInFlightCallPromptly) {
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kA, kB, &result, &completed));
  // Kill the target while the request is still in flight (one-way latency
  // is 12.5 ms). The caller sees whichever comes first: the request arriving
  // at a dead node (12.5 ms) or the RST scheduled at the crash (5 + 12.5 =
  // 17.5 ms) — either way well before the full RTT, let alone the timeout.
  sim_.Schedule(5 * kMillisecond, [&] { net_.SetNodeUp(kB, false); });
  sim_.Run();
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_GE(completed, 12 * kMillisecond);
  EXPECT_LT(completed, 18 * kMillisecond);
  EXPECT_EQ(net_.metrics().Get("rpc.connection_resets"), 1);
}

TEST_F(NetworkFaultTest, PartitionedCallRidesOutFullTimeout) {
  net_.SetPartitioned(kA, kB, true);
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kA, kB, &result, &completed));
  sim_.Run();
  EXPECT_TRUE(result.status().IsUnavailable());
  // Silent black hole: no RST comes back, only the timeout resolves it.
  EXPECT_GE(completed, net_.options().rpc_timeout);
}

TEST_F(NetworkFaultTest, PartitionBlocksBothDirectionsAndHeals) {
  net_.SetPartitioned(kA, kB, true);
  StatusOr<std::string> ab = Status::Internal("unset");
  StatusOr<std::string> ba = Status::Internal("unset");
  SimTime t = 0;
  sim_.Spawn(DoCall(kA, kB, &ab, &t, 100 * kMillisecond));
  sim_.Spawn(DoCall(kB, kA, &ba, &t, 100 * kMillisecond));
  sim_.Run();
  EXPECT_FALSE(ab.ok());
  EXPECT_FALSE(ba.ok());

  net_.SetPartitioned(kA, kB, false);
  sim_.Spawn(DoCall(kA, kB, &ab, &t));
  sim_.Spawn(DoCall(kB, kA, &ba, &t));
  sim_.Run();
  EXPECT_TRUE(ab.ok());
  EXPECT_TRUE(ba.ok());
}

TEST_F(NetworkFaultTest, RegionPartitionSparesThirdRegionAndHeals) {
  net_.SetRegionPartitioned(0, 1, true);
  StatusOr<std::string> ab = Status::Internal("unset");
  StatusOr<std::string> ac = Status::Internal("unset");
  SimTime t = 0;
  sim_.Spawn(DoCall(kA, kB, &ab, &t, 100 * kMillisecond));
  sim_.Spawn(DoCall(kA, kC, &ac, &t));
  sim_.Run();
  EXPECT_FALSE(ab.ok());
  EXPECT_TRUE(ac.ok());  // region 2 unaffected

  net_.SetRegionPartitioned(0, 1, false);
  sim_.Spawn(DoCall(kA, kB, &ab, &t));
  sim_.Run();
  EXPECT_TRUE(ab.ok());
}

TEST_F(NetworkFaultTest, RestartedNodeServesAgain) {
  net_.SetNodeUp(kB, false);
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kA, kB, &result, &completed));
  sim_.Run();
  EXPECT_FALSE(result.ok());

  net_.SetNodeUp(kB, true);
  sim_.Spawn(DoCall(kA, kB, &result, &completed));
  sim_.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "echo:x");
}

}  // namespace
}  // namespace globaldb::sim
