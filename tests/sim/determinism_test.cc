// Whole-cluster determinism: the same seed must produce bit-identical
// behavior (event counts, commit counts, timestamps), and different seeds
// must diverge. This is the property that makes every bug in this codebase
// replayable.

#include <gtest/gtest.h>

#include "src/workload/sysbench.h"
#include "src/workload/tpcc.h"

namespace globaldb {
namespace {

struct RunFingerprint {
  uint64_t events = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  Timestamp final_rcp = 0;
  int64_t replica_reads = 0;

  bool operator==(const RunFingerprint& other) const {
    return events == other.events && committed == other.committed &&
           aborted == other.aborted && final_rcp == other.final_rcp &&
           replica_reads == other.replica_reads;
  }
};

RunFingerprint RunOnce(uint64_t seed) {
  sim::Simulator sim(seed);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  options.initial_mode = TimestampMode::kGclock;
  Cluster cluster(&sim, options);
  cluster.Start();

  TpccConfig config;
  config.num_warehouses = 12;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 10;
  config.items = 80;
  TpccWorkload tpcc(&cluster, config);
  EXPECT_TRUE(tpcc.Setup().ok());
  cluster.WaitForRcp();

  WorkloadDriver::Options driver_options;
  driver_options.clients = 12;
  driver_options.warmup = 100 * kMillisecond;
  driver_options.duration = 1 * kSecond;
  driver_options.seed = seed;
  WorkloadDriver driver(&cluster, driver_options);
  WorkloadStats stats = driver.Run(tpcc.MixFn());

  RunFingerprint fp;
  fp.events = sim.events_executed();
  fp.committed = stats.committed;
  fp.aborted = stats.aborted;
  fp.final_rcp = cluster.cn(0).rcp();
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    fp.replica_reads += cluster.cn(i).metrics().Get("cn.replica_reads");
  }
  return fp;
}

TEST(DeterminismTest, SameSeedIsBitIdentical) {
  RunFingerprint a = RunOnce(42);
  RunFingerprint b = RunOnce(42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.final_rcp, b.final_rcp);
  EXPECT_EQ(a.replica_reads, b.replica_reads);
  EXPECT_GT(a.committed, 0);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  RunFingerprint a = RunOnce(42);
  RunFingerprint b = RunOnce(43);
  // The event count is an extremely fine-grained fingerprint; two different
  // schedules virtually never coincide.
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace globaldb
