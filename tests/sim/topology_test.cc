#include "src/sim/topology.h"

#include <gtest/gtest.h>

namespace globaldb::sim {
namespace {

TEST(TopologyTest, ThreeCityMatchesPaperLatencies) {
  Topology t = Topology::ThreeCity();
  ASSERT_EQ(t.num_regions(), 3u);
  // Section V: Xi'an-Langzhong 25 ms, Langzhong-Dongguan 35 ms,
  // Xi'an-Dongguan 55 ms (RTT); one-way = half.
  EXPECT_EQ(t.rtt[0][1], 25 * kMillisecond);
  EXPECT_EQ(t.rtt[1][2], 35 * kMillisecond);
  EXPECT_EQ(t.rtt[0][2], 55 * kMillisecond);
  EXPECT_EQ(t.OneWayLatency(0, 1), 12500 * kMicrosecond);
  // Symmetry and small diagonal.
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) {
      EXPECT_EQ(t.rtt[a][b], t.rtt[b][a]);
    }
    EXPECT_LT(t.rtt[a][a], 1 * kMillisecond);
  }
}

TEST(TopologyTest, SingleRegionIsRackLocal) {
  Topology t = Topology::SingleRegion();
  ASSERT_EQ(t.num_regions(), 1u);
  EXPECT_LT(t.OneWayLatency(0, 0), 1 * kMillisecond);
}

TEST(TopologyTest, ChainLatencyIsAdditive) {
  Topology t = Topology::Chain(4, 10 * kMillisecond);
  ASSERT_EQ(t.num_regions(), 4u);
  EXPECT_EQ(t.rtt[0][1], 10 * kMillisecond);
  EXPECT_EQ(t.rtt[0][2], 20 * kMillisecond);
  EXPECT_EQ(t.rtt[0][3], 30 * kMillisecond);
  EXPECT_EQ(t.rtt[3][1], 20 * kMillisecond);
}

TEST(TopologyTest, UniformAppliesSameRttEverywhere) {
  Topology t = Topology::Uniform(3, 40 * kMillisecond);
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) {
      if (a == b) {
        EXPECT_LT(t.rtt[a][b], 1 * kMillisecond);
      } else {
        EXPECT_EQ(t.rtt[a][b], 40 * kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace globaldb::sim
