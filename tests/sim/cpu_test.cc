#include "src/sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace globaldb::sim {
namespace {

Task<void> Job(Simulator* sim, CpuScheduler* cpu, SimDuration work,
               std::vector<SimTime>* done) {
  co_await cpu->Consume(work);
  done->push_back(sim->now());
}

TEST(CpuSchedulerTest, SingleCoreSerializesWork) {
  Simulator sim;
  CpuScheduler cpu(&sim, 1);
  std::vector<SimTime> done;
  sim.Spawn(Job(&sim, &cpu, 100, &done));
  sim.Spawn(Job(&sim, &cpu, 100, &done));
  sim.Spawn(Job(&sim, &cpu, 100, &done));
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(cpu.busy_ns(), 300);
}

TEST(CpuSchedulerTest, MultiCoreRunsInParallel) {
  Simulator sim;
  CpuScheduler cpu(&sim, 3);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) sim.Spawn(Job(&sim, &cpu, 100, &done));
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 100, 100}));
}

TEST(CpuSchedulerTest, QueueDelayAccounted) {
  Simulator sim;
  CpuScheduler cpu(&sim, 1);
  std::vector<SimTime> done;
  sim.Spawn(Job(&sim, &cpu, 100, &done));
  sim.Spawn(Job(&sim, &cpu, 50, &done));
  sim.Run();
  // Second job waited 100 ns for the core.
  EXPECT_EQ(cpu.queue_delay_ns(), 100);
  EXPECT_EQ(cpu.CurrentQueueDelay(), 0);
}

TEST(CpuSchedulerTest, CurrentQueueDelayReflectsBacklog) {
  Simulator sim;
  CpuScheduler cpu(&sim, 1);
  std::vector<SimTime> done;
  sim.Schedule(0, [&] {
    sim.Spawn(Job(&sim, &cpu, 1000, &done));
    EXPECT_EQ(cpu.CurrentQueueDelay(), 1000);
  });
  sim.Run();
}

TEST(CpuSchedulerTest, ZeroWorkCompletesImmediately) {
  Simulator sim;
  CpuScheduler cpu(&sim, 2);
  std::vector<SimTime> done;
  sim.Spawn(Job(&sim, &cpu, 0, &done));
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{0}));
}

TEST(CpuSchedulerTest, IdleGapThenNewWorkStartsAtNow) {
  Simulator sim;
  CpuScheduler cpu(&sim, 1);
  std::vector<SimTime> done;
  sim.Spawn(Job(&sim, &cpu, 100, &done));
  sim.Schedule(500, [&] { sim.Spawn(Job(&sim, &cpu, 100, &done)); });
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 600}));
}

}  // namespace
}  // namespace globaldb::sim
