#include "src/sim/hardware_clock.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/sim/simulator.h"

namespace globaldb::sim {
namespace {

TEST(HardwareClockTest, ReadTracksTrueTimeWithinBound) {
  Simulator sim(5);
  HardwareClock clock(&sim, Rng(99));
  for (int i = 1; i <= 1000; ++i) {
    sim.RunUntil(i * 700 * kMicrosecond);
    const SimTime reading = clock.Read();
    const SimDuration bound = clock.ErrorBound();
    EXPECT_LE(std::llabs(reading - sim.now()), bound)
        << "at t=" << sim.now();
  }
}

TEST(HardwareClockTest, MonotonicReads) {
  Simulator sim(7);
  HardwareClock clock(&sim, Rng(100));
  SimTime prev = clock.Read();
  for (int i = 1; i <= 5000; ++i) {
    sim.RunUntil(i * 100 * kMicrosecond);
    const SimTime r = clock.Read();
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(HardwareClockTest, ErrorBoundSmallWhenHealthy) {
  Simulator sim(9);
  HardwareClock clock(&sim, Rng(101));
  sim.RunUntil(10 * kSecond);
  // With 1 ms sync interval, 60 us RTT, 200 PPM drift:
  // bound <= 60us + 200e-6 * 1ms = 60.2 us.
  EXPECT_LE(clock.ErrorBound(), 61 * kMicrosecond);
}

TEST(HardwareClockTest, ErrorBoundGrowsWhenSyncFails) {
  Simulator sim(11);
  HardwareClock clock(&sim, Rng(102));
  sim.RunUntil(1 * kSecond);
  const SimDuration healthy_bound = clock.ErrorBound();
  clock.set_sync_healthy(false);
  sim.RunUntil(11 * kSecond);
  const SimDuration broken_bound = clock.ErrorBound();
  EXPECT_GT(broken_bound, healthy_bound * 10);
  // Recovery shrinks it again.
  clock.set_sync_healthy(true);
  sim.RunUntil(12 * kSecond);
  EXPECT_LE(clock.ErrorBound(), 61 * kMicrosecond);
}

TEST(HardwareClockTest, ErrorBoundGrowsLinearlyDuringOutage) {
  Simulator sim(19);
  HardwareClock clock(&sim, Rng(104));
  sim.RunUntil(1 * kSecond);
  clock.set_sync_healthy(false);
  // With 200 PPM max drift the bound must grow by 200 us per second of
  // outage, deterministically (the bound uses max drift, not actual drift).
  sim.RunUntil(2 * kSecond);
  const SimDuration b1 = clock.ErrorBound();
  sim.RunUntil(3 * kSecond);
  const SimDuration b2 = clock.ErrorBound();
  sim.RunUntil(5 * kSecond);
  const SimDuration b3 = clock.ErrorBound();
  const SimDuration per_second = 200 * kMicrosecond;
  EXPECT_NEAR(static_cast<double>(b2 - b1), static_cast<double>(per_second),
              static_cast<double>(10 * kMicrosecond));
  EXPECT_NEAR(static_cast<double>(b3 - b2),
              static_cast<double>(2 * per_second),
              static_cast<double>(10 * kMicrosecond));
}

TEST(HardwareClockTest, ReAnchorsPromptlyAfterSyncRestored) {
  Simulator sim(21);
  HardwareClock clock(&sim, Rng(105));
  sim.RunUntil(1 * kSecond);
  clock.set_sync_healthy(false);
  sim.RunUntil(6 * kSecond);
  EXPECT_GT(clock.ErrorBound(), 900 * kMicrosecond);  // ~1 ms after 5 s
  clock.set_sync_healthy(true);
  // The very next sync interval (1 ms) re-anchors the bound to steady state;
  // the health monitor relies on this to arm its recovery dwell quickly.
  sim.RunUntil(6 * kSecond + 10 * kMillisecond);
  EXPECT_LE(clock.ErrorBound(), 61 * kMicrosecond);
}

TEST(HardwareClockTest, InjectedOffsetVisible) {
  Simulator sim(13);
  HardwareClock clock(&sim, Rng(103));
  clock.set_sync_healthy(false);  // keep the injected skew
  sim.RunUntil(1 * kSecond);
  const SimTime before = clock.Read();
  clock.InjectOffset(5 * kMillisecond);
  const SimTime after = clock.Read();
  EXPECT_GE(after - before, 4 * kMillisecond);
}

TEST(HardwareClockTest, TwoClocksDisagreeWithinTwiceBound) {
  Simulator sim(17);
  HardwareClock a(&sim, Rng(1)), b(&sim, Rng(2));
  for (int i = 1; i <= 500; ++i) {
    sim.RunUntil(i * kMillisecond);
    const SimTime ra = a.Read();
    const SimTime rb = b.Read();
    EXPECT_LE(std::llabs(ra - rb), a.ErrorBound() + b.ErrorBound() + 2);
  }
}

}  // namespace
}  // namespace globaldb::sim
