#include "src/sim/hardware_clock.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/sim/simulator.h"

namespace globaldb::sim {
namespace {

TEST(HardwareClockTest, ReadTracksTrueTimeWithinBound) {
  Simulator sim(5);
  HardwareClock clock(&sim, Rng(99));
  for (int i = 1; i <= 1000; ++i) {
    sim.RunUntil(i * 700 * kMicrosecond);
    const SimTime reading = clock.Read();
    const SimDuration bound = clock.ErrorBound();
    EXPECT_LE(std::llabs(reading - sim.now()), bound)
        << "at t=" << sim.now();
  }
}

TEST(HardwareClockTest, MonotonicReads) {
  Simulator sim(7);
  HardwareClock clock(&sim, Rng(100));
  SimTime prev = clock.Read();
  for (int i = 1; i <= 5000; ++i) {
    sim.RunUntil(i * 100 * kMicrosecond);
    const SimTime r = clock.Read();
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(HardwareClockTest, ErrorBoundSmallWhenHealthy) {
  Simulator sim(9);
  HardwareClock clock(&sim, Rng(101));
  sim.RunUntil(10 * kSecond);
  // With 1 ms sync interval, 60 us RTT, 200 PPM drift:
  // bound <= 60us + 200e-6 * 1ms = 60.2 us.
  EXPECT_LE(clock.ErrorBound(), 61 * kMicrosecond);
}

TEST(HardwareClockTest, ErrorBoundGrowsWhenSyncFails) {
  Simulator sim(11);
  HardwareClock clock(&sim, Rng(102));
  sim.RunUntil(1 * kSecond);
  const SimDuration healthy_bound = clock.ErrorBound();
  clock.set_sync_healthy(false);
  sim.RunUntil(11 * kSecond);
  const SimDuration broken_bound = clock.ErrorBound();
  EXPECT_GT(broken_bound, healthy_bound * 10);
  // Recovery shrinks it again.
  clock.set_sync_healthy(true);
  sim.RunUntil(12 * kSecond);
  EXPECT_LE(clock.ErrorBound(), 61 * kMicrosecond);
}

TEST(HardwareClockTest, InjectedOffsetVisible) {
  Simulator sim(13);
  HardwareClock clock(&sim, Rng(103));
  clock.set_sync_healthy(false);  // keep the injected skew
  sim.RunUntil(1 * kSecond);
  const SimTime before = clock.Read();
  clock.InjectOffset(5 * kMillisecond);
  const SimTime after = clock.Read();
  EXPECT_GE(after - before, 4 * kMillisecond);
}

TEST(HardwareClockTest, TwoClocksDisagreeWithinTwiceBound) {
  Simulator sim(17);
  HardwareClock a(&sim, Rng(1)), b(&sim, Rng(2));
  for (int i = 1; i <= 500; ++i) {
    sim.RunUntil(i * kMillisecond);
    const SimTime ra = a.Read();
    const SimTime rb = b.Read();
    EXPECT_LE(std::llabs(ra - rb), a.ErrorBound() + b.ErrorBound() + 2);
  }
}

}  // namespace
}  // namespace globaldb::sim
