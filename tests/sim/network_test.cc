#include "src/sim/network.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace globaldb::sim {
namespace {

constexpr NodeId kA = 1;
constexpr NodeId kB = 2;
constexpr NodeId kC = 3;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1), net_(&sim_, Topology::ThreeCity(), MakeOptions()) {
    net_.RegisterNode(kA, 0);  // xian
    net_.RegisterNode(kB, 1);  // langzhong
    net_.RegisterNode(kC, 2);  // dongguan
    net_.RegisterHandler(kB, "echo",
                         [](NodeId from, std::string payload) -> Task<std::string> {
                           co_return "echo:" + payload;
                         });
  }

  static NetworkOptions MakeOptions() {
    NetworkOptions o;
    o.jitter_fraction = 0;  // determinism for latency assertions
    o.nagle_enabled = false;
    return o;
  }

  Task<void> DoCall(NodeId from, NodeId to, std::string payload,
                    StatusOr<std::string>* out, SimTime* completed_at) {
    *out = co_await net_.Call(from, to, "echo", std::move(payload));
    *completed_at = sim_.now();
  }

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, RpcRoundTripLatency) {
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kA, kB, "hi", &result, &completed));
  sim_.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, "echo:hi");
  // Xi'an <-> Langzhong RTT is 25 ms; one-way 12.5 ms each direction plus
  // sub-ms serialization.
  EXPECT_GE(completed, 25 * kMillisecond);
  EXPECT_LT(completed, 27 * kMillisecond);
}

TEST_F(NetworkTest, IntraRegionIsFast) {
  net_.RegisterNode(99, 1);
  net_.RegisterHandler(99, "echo",
                       [](NodeId, std::string p) -> Task<std::string> {
                         co_return p;
                       });
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kB, 99, "x", &result, &completed));
  sim_.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LT(completed, 1 * kMillisecond);
}

TEST_F(NetworkTest, CallToDownNodeFailsUnavailable) {
  net_.SetNodeUp(kB, false);
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kA, kB, "hi", &result, &completed));
  sim_.Run();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
}

TEST_F(NetworkTest, NodeDiesMidFlightReportsError) {
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kA, kB, "hi", &result, &completed));
  // Kill the target while the request is in flight.
  sim_.Schedule(5 * kMillisecond, [&] { net_.SetNodeUp(kB, false); });
  sim_.Run();
  EXPECT_FALSE(result.ok());
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  net_.SetPartitioned(kA, kB, true);
  EXPECT_FALSE(net_.CanReach(kA, kB));
  EXPECT_FALSE(net_.CanReach(kB, kA));
  EXPECT_TRUE(net_.CanReach(kA, kC));
  net_.SetPartitioned(kA, kB, false);
  EXPECT_TRUE(net_.CanReach(kA, kB));
}

TEST_F(NetworkTest, RegionPartition) {
  net_.SetRegionPartitioned(0, 1, true);
  EXPECT_FALSE(net_.CanReach(kA, kB));
  EXPECT_TRUE(net_.CanReach(kB, kC));
  net_.SetRegionPartitioned(0, 1, false);
  EXPECT_TRUE(net_.CanReach(kA, kB));
}

TEST_F(NetworkTest, MissingHandlerIsUnimplemented) {
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  auto call = [&]() -> Task<void> {
    result = co_await net_.Call(kA, kB, "nope", "x");
    completed = sim_.now();
  };
  sim_.Spawn(call());
  sim_.Run();
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(NetworkTest, NagleAddsDelayToSmallCrossRegionMessages) {
  net_.mutable_options()->nagle_enabled = true;
  net_.mutable_options()->nagle_delay = 2 * kMillisecond;
  const SimDuration small = net_.TransferDelay(kA, kB, 100);
  net_.mutable_options()->nagle_enabled = false;
  const SimDuration no_nagle = net_.TransferDelay(kA, kB, 100);
  EXPECT_EQ(small - no_nagle, 2 * kMillisecond);
  // Large messages are unaffected.
  net_.mutable_options()->nagle_enabled = true;
  const SimDuration large_nagle = net_.TransferDelay(kA, kB, 64 * 1024);
  net_.mutable_options()->nagle_enabled = false;
  const SimDuration large = net_.TransferDelay(kA, kB, 64 * 1024);
  EXPECT_EQ(large_nagle, large);
}

TEST_F(NetworkTest, BbrImprovesLongHaulThroughput) {
  // 10 MB transfer Xi'an -> Dongguan (55 ms RTT).
  net_.mutable_options()->bbr_enabled = false;
  const SimDuration cubic = net_.TransferDelay(kA, kC, 10 * 1000 * 1000);
  net_.mutable_options()->bbr_enabled = true;
  const SimDuration bbr = net_.TransferDelay(kA, kC, 10 * 1000 * 1000);
  EXPECT_LT(bbr, cubic);
}

TEST_F(NetworkTest, OneWaySendDelivered) {
  int received = 0;
  net_.RegisterHandler(kC, "notify",
                       [&](NodeId, std::string) -> Task<std::string> {
                         ++received;
                         co_return "";
                       });
  net_.Send(kA, kC, "notify", "data");
  sim_.Run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, OneWaySendToDeadNodeDropped) {
  net_.SetNodeUp(kC, false);
  net_.Send(kA, kC, "notify", "data");
  sim_.Run();  // must not crash or hang
  SUCCEED();
}

TEST_F(NetworkTest, MetricsTrackCrossRegionBytes) {
  StatusOr<std::string> result = Status::Internal("unset");
  SimTime completed = 0;
  sim_.Spawn(DoCall(kA, kB, std::string(1000, 'x'), &result, &completed));
  sim_.Run();
  EXPECT_EQ(net_.metrics().Get("rpc.cross_region_bytes"), 1000);
  EXPECT_EQ(net_.metrics().Get("rpc.calls"), 1);
}

}  // namespace
}  // namespace globaldb::sim
