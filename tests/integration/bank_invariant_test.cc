// End-to-end invariant test: a bank with cross-shard transfers keeps a
// constant total balance under concurrent load, replica crashes and
// recoveries, a full GTM -> GClock -> GTM mode-transition cycle, and
// consistent read-only audits served from replicas throughout.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"

namespace globaldb {
namespace {

constexpr int kAccounts = 40;
constexpr int64_t kInitial = 500;

sim::Task<Status> Transfer(CoordinatorNode* cn, int64_t from, int64_t to,
                           int64_t amount) {
  auto txn = co_await cn->Begin();
  if (!txn.ok()) co_return txn.status();
  Row from_key = {from};
  Row to_key = {to};
  auto src = co_await cn->GetForUpdate(&*txn, "accounts", from_key);
  auto dst = co_await cn->GetForUpdate(&*txn, "accounts", to_key);
  if (!src.ok() || !dst.ok() || !src->has_value() || !dst->has_value()) {
    (void)co_await cn->Abort(&*txn);
    co_return Status::NotFound("account");
  }
  Row src_row = **src, dst_row = **dst;
  std::get<int64_t>(src_row[1]) -= amount;
  std::get<int64_t>(dst_row[1]) += amount;
  Status s = co_await cn->Update(&*txn, "accounts", src_row);
  if (s.ok()) s = co_await cn->Update(&*txn, "accounts", dst_row);
  if (!s.ok()) {
    (void)co_await cn->Abort(&*txn);
    co_return s;
  }
  co_return co_await cn->Commit(&*txn);
}

sim::Task<void> TransferLoop(Cluster* cluster, int cn_index, uint64_t seed,
                             int* commits, const bool* stop) {
  Rng rng(seed);
  CoordinatorNode* cn = &cluster->cn(cn_index);
  while (!*stop) {
    co_await cluster->simulator()->Sleep(
        rng.UniformRange(1 * kMillisecond, 5 * kMillisecond));
    int64_t from = rng.UniformRange(1, kAccounts);
    int64_t to = rng.UniformRange(1, kAccounts);
    if (from == to) continue;
    Status s = co_await Transfer(cn, from, to, rng.UniformRange(1, 20));
    if (s.ok()) ++*commits;
  }
}

/// Audits via a read-only (replica-served when possible) scan; returns the
/// total or -1 on error.
sim::Task<void> Audit(CoordinatorNode* cn, int64_t* out) {
  auto txn = co_await cn->Begin(/*read_only=*/true);
  if (!txn.ok()) {
    *out = -1;
    co_return;
  }
  auto rows = co_await cn->ScanRange(&*txn, "accounts", "", "", 10000);
  if (!rows.ok()) {
    *out = -1;
    co_return;
  }
  int64_t total = 0;
  for (const Row& row : *rows) total += std::get<int64_t>(row[1]);
  // A consistent snapshot may be slightly stale but must never tear a
  // transfer in half.
  EXPECT_EQ(rows->size(), static_cast<size_t>(kAccounts));
  *out = total;
}

TEST(BankInvariantTest, TotalConservedUnderFaultsAndTransitions) {
  sim::Simulator sim(77);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  options.initial_mode = TimestampMode::kGtm;  // exercise transitions too
  Cluster cluster(&sim, options);
  cluster.Start();

  // Schema + initial balances.
  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    TableSchema schema;
    schema.name = "accounts";
    schema.columns = {{"id", ColumnType::kInt64},
                      {"balance", ColumnType::kInt64}};
    schema.key_columns = {0};
    schema.distribution_column = 0;
    EXPECT_TRUE((co_await cn.CreateTable(schema)).ok());
    auto txn = co_await cn.Begin();
    EXPECT_TRUE(txn.ok());
    for (int64_t id = 1; id <= kAccounts; ++id) {
      Row row = {id, kInitial};
      EXPECT_TRUE((co_await cn.Insert(&*txn, "accounts", row)).ok());
    }
    EXPECT_TRUE((co_await cn.Commit(&*txn)).ok());
    *ready = true;
  };
  sim.Spawn(setup(&cluster, &ready));
  while (!ready) sim.RunFor(10 * kMillisecond);
  cluster.WaitForRcp();

  bool stop = false;
  int commits = 0;
  for (int c = 0; c < 6; ++c) {
    sim.Spawn(TransferLoop(&cluster, c % 3, 1000 + c, &commits, &stop));
  }

  // Chaos + audits driven from outside the simulation.
  auto chaos = [](Cluster* cluster, sim::Simulator* sim,
                  bool* stop) -> sim::Task<void> {
    co_await sim->Sleep(300 * kMillisecond);
    // Crash one replica of every shard.
    for (ShardId s = 0; s < cluster->num_shards(); ++s) {
      cluster->network().SetNodeUp(cluster->ReplicaNodeId(s, 0), false);
    }
    co_await sim->Sleep(300 * kMillisecond);
    // Live transition to GClock under load.
    auto up = co_await cluster->transition().SwitchToGclock();
    EXPECT_TRUE(up.ok());
    co_await sim->Sleep(300 * kMillisecond);
    // Replicas recover.
    for (ShardId s = 0; s < cluster->num_shards(); ++s) {
      cluster->network().SetNodeUp(cluster->ReplicaNodeId(s, 0), true);
    }
    co_await sim->Sleep(300 * kMillisecond);
    // And back to GTM.
    auto down = co_await cluster->transition().SwitchToGtm();
    EXPECT_TRUE(down.ok());
    co_await sim->Sleep(300 * kMillisecond);
    *stop = true;
  };
  sim.Spawn(chaos(&cluster, &sim, &stop));

  // Audit from a rotating CN every ~400 ms while chaos unfolds.
  int audits = 0;
  while (!stop) {
    sim.RunFor(100 * kMillisecond);
    int64_t total = -2;
    sim.Spawn(Audit(&cluster.cn(audits % 3), &total));
    sim.RunFor(300 * kMillisecond);  // let the audit finish
    ASSERT_NE(total, -2) << "audit hung";
    EXPECT_EQ(total, kAccounts * kInitial) << "audit " << audits;
    ++audits;
  }
  sim.RunFor(2 * kSecond);

  EXPECT_GT(commits, 20);
  EXPECT_GE(audits, 3);
  // Final ground truth straight from the primaries.
  int64_t primary_total = 0;
  const TableSchema* schema = cluster.cn(0).catalog().FindTable("accounts");
  ASSERT_NE(schema, nullptr);
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    MvccTable* table = cluster.data_node(s).store().GetTable(schema->id);
    if (table == nullptr) continue;
    auto rows = table->Scan("", "", kTimestampMax - 1, kInvalidTxnId, 10000,
                            nullptr);
    for (auto& row : rows) {
      Row decoded;
      ASSERT_TRUE(DecodeRow(Slice(row.value), &decoded).ok());
      primary_total += std::get<int64_t>(decoded[1]);
    }
  }
  EXPECT_EQ(primary_total, kAccounts * kInitial);
}

}  // namespace
}  // namespace globaldb
