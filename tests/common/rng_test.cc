#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace globaldb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, NuRandWithinBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NuRand(255, 0, 999, 123);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(RngTest, AlphaStringLengths) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    std::string s = rng.AlphaString(8, 16);
    EXPECT_GE(s.size(), 8u);
    EXPECT_LE(s.size(), 16u);
  }
  EXPECT_EQ(rng.NumericString(6).size(), 6u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent stream.
  Rng parent2(31);
  (void)parent2.Next();  // same position as parent after Fork
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.Next() == parent2.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace globaldb
