#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/statusor.h"

namespace globaldb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("row 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "row 42");
  EXPECT_EQ(s.ToString(), "NotFound: row 42");
}

TEST(StatusTest, EqualityIgnoresMessage) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::TimedOut("a"));
}

TEST(StatusTest, AllCodeNamesDistinct) {
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  GDB_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("must be positive");
  return x * 2;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

StatusOr<int> ChainsAssign(int x) {
  GDB_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(*ChainsAssign(5), 11);
  EXPECT_FALSE(ChainsAssign(-5).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace globaldb
