#include "src/common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace globaldb {
namespace {

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(Hash64("warehouse_1"), Hash64("warehouse_1"));
  EXPECT_NE(Hash64("warehouse_1"), Hash64("warehouse_2"));
}

TEST(HashTest, EmptyInput) {
  // Must not crash and must be stable.
  EXPECT_EQ(Hash64("", 0), Hash64("", 0));
}

TEST(HashTest, AllTailLengths) {
  // Exercise the 0..7 byte tail switch.
  std::string s = "abcdefghij";
  std::set<uint64_t> hashes;
  for (size_t len = 0; len <= s.size(); ++len) {
    hashes.insert(Hash64(s.data(), len));
  }
  EXPECT_EQ(hashes.size(), s.size() + 1);  // no collisions among prefixes
}

TEST(HashTest, SeedChangesResult) {
  EXPECT_NE(Hash64("key", 3, 1), Hash64("key", 3, 2));
}

TEST(HashTest, ShardDistributionIsRoughlyUniform) {
  // Hash keys into 6 shards (the paper's DN count) and check balance.
  const int kShards = 6;
  const int kKeys = 60000;
  int counts[kShards] = {0};
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "row_" + std::to_string(i);
    counts[Hash64(key) % kShards]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kKeys / kShards, kKeys / kShards * 0.1);
  }
}

}  // namespace
}  // namespace globaldb
